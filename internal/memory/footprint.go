package memory

import (
	"fmt"

	"compass/internal/view"
)

// This file implements footprint certificates: per-location access
// summaries extracted by a recording pre-pass (internal/analysis/
// footprint) and enforced by the machine at runtime.
//
// The certificate fast paths are sound by construction, not by trust:
//
//   - A certified location's latest message is always the *unique*
//     visible message for a certified reader. For an Exclusive location
//     the owner performed every post-setup write, so its view of the
//     location equals the location's maximal timestamp; for a ReadOnly
//     location the last write happened during setup, and every thread's
//     view includes setup (the fork at spawn copies the main thread's
//     post-setup clock). Either way the visible window has size 1, the
//     general path would never consult the strategy (Choose runs only
//     for windows > 1), and the fast path returns exactly the message
//     the general path would — so pruning cannot change any execution's
//     outcome, and outcome histograms are bit-identical with pruning on
//     or off.
//
//   - The clock joins a read performs are no-ops for certified
//     locations: the message clock is a subset of the reader's current
//     clock (an Exclusive message was built from the owner's own clock;
//     a ReadOnly message's clock was inherited at fork), so skipping
//     them changes no view.
//
//   - Race instrumentation on non-atomic accesses (happens-before
//     comparisons and the per-location read-view join) exists to detect
//     cross-thread races. An Exclusive location is touched by one thread
//     and a ReadOnly location is never written after setup, so neither
//     can race — the checks are skipped and counted in RaceChecksSkipped.
//
// Every fast path first *validates* the certificate (owner identity,
// read-only stability, view saturation — a handful of integer compares).
// A violation means the single recorded execution under-covered the
// program's behaviour; the access fails with a CertError and the machine
// aborts the execution as Failed rather than silently mis-simulating.

// LocClass classifies a location's post-setup access pattern.
type LocClass uint8

const (
	// ClassShared makes no claim; the location always takes the general
	// path.
	ClassShared LocClass = iota
	// ClassExclusive: after setup, exactly one thread accesses the
	// location.
	ClassExclusive
	// ClassReadOnly: after setup, the location is never written (reads
	// may come from any number of threads).
	ClassReadOnly
)

func (c LocClass) String() string {
	switch c {
	case ClassShared:
		return "shared"
	case ClassExclusive:
		return "exclusive"
	case ClassReadOnly:
		return "read-only"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// LocCert is one location's certificate.
type LocCert struct {
	Class LocClass
	// Name is the location's allocation-site name, recorded so static
	// access plans (plan.go) can be checked against the certificate
	// before exploration: plan sites are keyed by name, not by the
	// schedule-dependent location index.
	Name string
	// Owner is the accessing thread for ClassExclusive.
	Owner int
	// SetupMax is the location's maximal timestamp when setup finished
	// (1 = only the allocation's initializing write).
	SetupMax view.Time
}

// Footprint is a whole-program certificate: a classification of every
// setup-allocated location. Locations allocated by workers get
// schedule-dependent indices and are never certified.
type Footprint struct {
	// Name identifies the program the footprint was extracted from.
	Name string
	// SetupLocs is the number of locations allocated before the first
	// worker step; Locs has exactly this many entries, indexed by
	// view.Loc. Setup is decision-free (single-threaded, reading only
	// its own writes), so these indices are identical in every schedule
	// — validated again at seal time.
	SetupLocs int
	Locs      []LocCert
	// AllAtomic records that the program performed no non-atomic access
	// after setup; enforced (a post-setup NA access fails the execution)
	// rather than assumed.
	AllAtomic bool
}

// Stats summarizes a footprint for reports.
func (fp *Footprint) Stats() (exclusive, readOnly, shared int) {
	for _, c := range fp.Locs {
		switch c.Class {
		case ClassExclusive:
			exclusive++
		case ClassReadOnly:
			readOnly++
		default:
			shared++
		}
	}
	return
}

func (fp *Footprint) String() string {
	ex, ro, sh := fp.Stats()
	return fmt.Sprintf("footprint(%s: %d locs: %d exclusive, %d read-only, %d shared; all-atomic=%v)",
		fp.Name, fp.SetupLocs, ex, ro, sh, fp.AllAtomic)
}

// CertError reports a runtime violation of an installed footprint
// certificate: the program reached an access pattern the recording
// pre-pass did not observe. The machine aborts such executions as Failed
// — a certificate violation is a harness bug (stale or under-covering
// footprint), never silently ignored.
type CertError struct {
	Loc    view.Loc
	Name   string
	Thread int
	Detail string
}

func (e *CertError) Error() string {
	return fmt.Sprintf("footprint certificate violated at %s (loc %d) by thread %d: %s",
		e.Name, e.Loc, e.Thread, e.Detail)
}

// Certify installs a footprint certificate. Enforcement (and the fast
// paths) begin at SealSetup; until then all accesses take the general
// path, because setup itself writes the locations it initializes.
func (m *Memory) Certify(fp *Footprint) {
	m.fp = fp
}

// SealSetup transitions the memory from the setup phase to the
// concurrent phase: from here on the installed certificate (if any) is
// validated and exploited. The machine calls this exactly when the main
// thread requests its workers. Returns a CertError if the allocation
// count or a read-only location's history already contradicts the
// certificate.
func (m *Memory) SealSetup() error {
	if m.fp == nil {
		return nil
	}
	if len(m.locs) != m.fp.SetupLocs {
		return &CertError{Thread: 0, Detail: fmt.Sprintf(
			"certificate covers %d setup locations but setup allocated %d", m.fp.SetupLocs, len(m.locs))}
	}
	for l, c := range m.fp.Locs {
		if c.Class != ClassShared && m.locs[l].maxT() != c.SetupMax {
			return &CertError{Loc: view.Loc(l), Name: m.locs[l].name, Thread: 0, Detail: fmt.Sprintf(
				"setup history has t=%d but certificate recorded t=%d", m.locs[l].maxT(), c.SetupMax)}
		}
	}
	m.sealed = true
	return nil
}

// PrunedReads returns the number of reads answered by a certificate fast
// path (the visible window was proven to be 1 without consulting the
// history or the strategy).
func (m *Memory) PrunedReads() int64 { return m.prunedReads }

// RaceChecksSkipped returns the number of non-atomic accesses whose race
// instrumentation was skipped under a certificate.
func (m *Memory) RaceChecksSkipped() int64 { return m.raceSkips }

// cert returns the active certificate for l, or nil when l takes the
// general path.
func (m *Memory) cert(l view.Loc) *LocCert {
	if !m.sealed || int(l) >= len(m.fp.Locs) {
		return nil
	}
	c := &m.fp.Locs[l]
	if c.Class == ClassShared {
		return nil
	}
	return c
}

// checkNA enforces the AllAtomic obligation: a certificate claiming an
// all-atomic program makes any post-setup NA access a violation.
func (m *Memory) checkNA(tv *ThreadView, l view.Loc, kind string) error {
	if m.sealed && m.fp.AllAtomic {
		return &CertError{Loc: l, Name: m.locs[l].name, Thread: tv.ID, Detail: fmt.Sprintf(
			"non-atomic %s in a program certified all-atomic", kind)}
	}
	return nil
}

// validateRead checks the certificate invariants a read fast path relies
// on; nil means the latest message is the unique visible one and its
// clock is already contained in the reader's view.
func (m *Memory) validateRead(c *LocCert, tv *ThreadView, l view.Loc) error {
	loc := m.locs[l]
	switch c.Class {
	case ClassExclusive:
		if tv.ID != c.Owner {
			return &CertError{Loc: l, Name: loc.name, Thread: tv.ID, Detail: fmt.Sprintf(
				"read of a location certified exclusive to thread %d", c.Owner)}
		}
	case ClassReadOnly:
		if loc.maxT() != c.SetupMax {
			return &CertError{Loc: l, Name: loc.name, Thread: tv.ID, Detail: fmt.Sprintf(
				"read-only location was written after setup (t=%d, certified t=%d)", loc.maxT(), c.SetupMax)}
		}
	}
	if got := tv.Cur.V.Get(l); got != loc.maxT() {
		return &CertError{Loc: l, Name: loc.name, Thread: tv.ID, Detail: fmt.Sprintf(
			"reader view t=%d does not saturate certified history t=%d", got, loc.maxT())}
	}
	return nil
}

// validateWrite checks that a write to a certified location is one the
// certificate permits (owner write to an exclusive location).
func (m *Memory) validateWrite(c *LocCert, tv *ThreadView, l view.Loc, kind string) error {
	loc := m.locs[l]
	if c.Class == ClassReadOnly {
		return &CertError{Loc: l, Name: loc.name, Thread: tv.ID, Detail: fmt.Sprintf(
			"%s to a location certified read-only after setup", kind)}
	}
	if tv.ID != c.Owner {
		return &CertError{Loc: l, Name: loc.name, Thread: tv.ID, Detail: fmt.Sprintf(
			"%s to a location certified exclusive to thread %d", kind, c.Owner)}
	}
	return nil
}
