package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"compass/internal/telemetry"
)

// runLeaseLocal drives one granted lease exactly as a peer process
// would — fresh engine over the leased frontier, segments to completion
// — and renders the return, without the HTTP transport.
func runLeaseLocal(t *testing.T, grant *LeaseGrant) *LeaseReturn {
	t.Helper()
	spec, w, err := grant.Spec.Normalize()
	if err != nil {
		t.Fatalf("lease spec: %v", err)
	}
	spec.Workers = 1
	state, err := leaseEngineState(w, grant.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	stats := telemetry.New()
	eng, err := newEngine(spec, w, stats, state)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, segErr := eng.segment(DefaultCheckpointEvery)
		if segErr != nil {
			t.Fatalf("lease segment: %v", segErr)
		}
		if done {
			break
		}
	}
	delta, err := eng.state()
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	return &LeaseReturn{
		JobID:     grant.JobID,
		LeaseID:   grant.LeaseID,
		Epoch:     grant.Epoch,
		Engine:    delta,
		Telemetry: &snap,
	}
}

// waitShardPending polls until the coordinator finished its split
// segment and has unleased prefixes.
func waitShardPending(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := j.View()
		if v.Shard != nil && v.Shard.Pending > 0 {
			return
		}
		if v.Status != StatusRunning {
			t.Fatalf("job reached %s before sharding began (err %q)", v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never exposed unleased prefixes")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShardTwoPeersMatchesSingleProcess is the end-to-end sharding
// identity: a coordinator job driven entirely by two peer loops over the
// real /v1 lease API must produce a result byte-identical to the same
// spec run single-process — for a litmus workload and an exhaustive
// library workload with the refinement oracle on.
func TestShardTwoPeersMatchesSingleProcess(t *testing.T) {
	cases := []struct {
		name  string
		spec  JobSpec
		every int
	}{
		{"litmus", JobSpec{Workload: "litmus/SB", POR: "off"}, 4},
		{"lib", JobSpec{Workload: "lib/msqueue", Mode: ModeExhaustive, POR: "source", Refine: true}, 100},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := baseline(t, tc.spec, 2)

			spec := tc.spec
			spec.Coordinator = true
			spec.LeasePrefixes = 2
			m, err := NewManager(Config{StateDir: t.TempDir(), Workers: 1, CheckpointEvery: tc.every})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(Handler(m))
			defer srv.Close()
			j, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			peerDone := make(chan int, 2)
			for i := 0; i < 2; i++ {
				name := string(rune('a' + i))
				go func() {
					p := &Peer{Base: srv.URL, Name: "peer-" + name, Workers: 1, Poll: 5 * time.Millisecond}
					n, _ := p.Run(ctx)
					peerDone <- n
				}()
			}
			m.Wait()
			cancel()
			// Drain the peer loops. Their acked-lease counts can
			// under-report: the coordinator may finish the job (and
			// m.Wait return) before the final return's HTTP response
			// reaches the peer, so sharding is asserted from the
			// coordinator's own done-lease ledger below.
			<-peerDone
			<-peerDone

			got := j.View()
			if got.Status != StatusDone {
				t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
			}
			if got.Shard == nil || got.Shard.Completed == 0 {
				t.Fatalf("no lease completed; the job never sharded (shard view %+v)", got.Shard)
			}
			if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
				t.Errorf("sharded result diverged from single-process run\n got: %s\nwant: %s", g, w)
			}
			if got.Runs != want.Runs {
				t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
			}

			// The final checkpoint's merged telemetry must still validate
			// against the snapshot schema (lease counters included).
			st, err := NewStore(m.store.Dir())
			if err != nil {
				t.Fatal(err)
			}
			cp, err := st.Load(got.ID)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(cp.Telemetry)
			if err != nil {
				t.Fatal(err)
			}
			if err := telemetry.ValidateSnapshotJSON(data); err != nil {
				t.Errorf("merged telemetry snapshot invalid: %v", err)
			}
		})
	}
}

// TestShardPeerKilledMidLease: a peer that takes a lease and dies (never
// renews, never returns) must not lose or double-count work — the lease
// expires, the coordinator reclaims the prefixes, a healthy peer re-runs
// them, and the final result is byte-identical to single-process.
func TestShardPeerKilledMidLease(t *testing.T) {
	t.Parallel()
	base := JobSpec{Workload: "litmus/SB", POR: "off"}
	want := baseline(t, base, 2)

	spec := base
	spec.Coordinator = true
	spec.LeasePrefixes = 1
	spec.LeaseTTLMillis = 50
	m, err := NewManager(Config{StateDir: t.TempDir(), Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitShardPending(t, j)

	// The doomed peer acquires a lease and is never heard from again.
	ghost, err := m.AcquireLease("ghost")
	if err != nil {
		t.Fatalf("ghost acquire: %v", err)
	}

	// A healthy peer drives everything else (and, after expiry, the
	// ghost's reclaimed prefixes) to completion.
	for {
		g, err := m.AcquireLease("healthy")
		if errors.Is(err, ErrNoWork) {
			v := j.View()
			if v.Status == StatusDone || v.Status == StatusFailed {
				break
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := m.ReturnLease(runLeaseLocal(t, g)); err != nil {
			t.Fatalf("return: %v", err)
		}
	}
	m.Wait()

	// The ghost's very late return must be refused, not double-counted.
	if err := m.ReturnLease(runLeaseLocal(t, ghost)); !errors.Is(err, ErrStaleLease) {
		t.Errorf("ghost return error = %v, want ErrStaleLease", err)
	}

	got := j.View()
	if got.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
	}
	if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
		t.Errorf("result diverged after peer death\n got: %s\nwant: %s", g, w)
	}
	snap := m.Stats().Snapshot()
	if snap.Serve.LeasesReclaimed == 0 {
		t.Error("no lease reclaimed; the ghost's lease never expired")
	}
}

// TestShardCoordinatorCrashRecovery: a coordinator that dies with a
// lease outstanding must resume from its checkpoint with the lease
// reclaimed under a bumped epoch — the old holder's late return is
// refused as stale, every leaf still runs exactly once, and the final
// result is byte-identical to single-process.
func TestShardCoordinatorCrashRecovery(t *testing.T) {
	t.Parallel()
	base := JobSpec{Workload: "litmus/SB", POR: "off"}
	want := baseline(t, base, 2)
	dir := t.TempDir()

	spec := base
	spec.Coordinator = true
	spec.LeasePrefixes = 2
	spec.LeaseTTLMillis = 60000 // long: expiry must play no part here
	m1, err := NewManager(Config{StateDir: dir, Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitShardPending(t, j1)
	id := j1.ID

	// Lease A stays outstanding across the crash; lease B is merged and
	// checkpointed before it, so the on-disk lease table records A.
	leaseA, err := m1.AcquireLease("doomed")
	if err != nil {
		t.Fatal(err)
	}
	leaseB, err := m1.AcquireLease("fine")
	if err != nil && !errors.Is(err, ErrNoWork) {
		t.Fatal(err)
	}
	if leaseB != nil {
		if err := m1.ReturnLease(runLeaseLocal(t, leaseB)); err != nil {
			t.Fatalf("return B: %v", err)
		}
	}
	retA := runLeaseLocal(t, leaseA)
	m1.Shutdown() // the last committed checkpoint is the crash state

	m2, err := NewManager(Config{StateDir: dir, Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	resumed, finished, errs := m2.Resume()
	if len(errs) > 0 {
		t.Fatalf("resume errors: %v", errs)
	}
	if resumed != 1 || finished != 0 {
		t.Fatalf("resumed %d finished %d, want 1/0", resumed, finished)
	}
	j2, ok := m2.Job(id)
	if !ok {
		t.Fatalf("job %s missing after resume", id)
	}

	// The pre-crash lease is from the old epoch: refused, not merged.
	if err := m2.ReturnLease(retA); !errors.Is(err, ErrStaleLease) {
		t.Errorf("old-epoch return error = %v, want ErrStaleLease", err)
	}

	for {
		g, err := m2.AcquireLease("successor")
		if errors.Is(err, ErrNoWork) {
			v := j2.View()
			if v.Status == StatusDone || v.Status == StatusFailed {
				break
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := m2.ReturnLease(runLeaseLocal(t, g)); err != nil {
			t.Fatalf("return: %v", err)
		}
	}
	m2.Wait()

	got := j2.View()
	if got.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
	}
	if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
		t.Errorf("post-crash result diverged from single-process run\n got: %s\nwant: %s", g, w)
	}
	if got.Runs != want.Runs {
		t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
	}
}

// TestShardReturnIsIdempotent: a peer that never saw its return's ack
// retries it; the coordinator must re-ack without re-merging.
func TestShardReturnIsIdempotent(t *testing.T) {
	t.Parallel()
	spec := JobSpec{Workload: "litmus/SB", POR: "off", Coordinator: true,
		LeasePrefixes: 1, LeaseTTLMillis: 60000}
	m, err := NewManager(Config{StateDir: t.TempDir(), Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitShardPending(t, j)
	g, err := m.AcquireLease("retry-peer")
	if err != nil {
		t.Fatal(err)
	}
	ret := runLeaseLocal(t, g)
	if err := m.ReturnLease(ret); err != nil {
		t.Fatalf("first return: %v", err)
	}
	runsAfterFirst := j.View().Runs
	if err := m.ReturnLease(ret); err != nil {
		t.Fatalf("retried return: %v", err)
	}
	if got := j.View().Runs; got != runsAfterFirst {
		t.Errorf("retried return changed runs: %d -> %d (double merge)", runsAfterFirst, got)
	}
	j.stop.Store(true)
	m.Shutdown()
}

// TestShardSpecValidation: coordinator combinations the service refuses.
func TestShardSpecValidation(t *testing.T) {
	t.Parallel()
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []JobSpec{
		{Workload: "lib/msqueue", Mode: ModeRandom, Coordinator: true},
		{Workload: "litmus/SB", Coordinator: true, Dedup: true},
		{Workload: "litmus/SB", Coordinator: true, MaxRuns: 100},
		{Workload: "lib/msqueue", Mode: ModeRandom, Dedup: true},
		{Workload: "litmus/SB", DedupCap: 100},
	}
	for _, sp := range cases {
		if _, err := m.Submit(sp); err == nil {
			t.Errorf("Submit(%+v) succeeded, want error", sp)
		}
	}
}

// TestSubmitDuringShutdownRefused is the drain-race regression test: a
// submission after Shutdown began must fail with ErrShuttingDown (the
// HTTP layer maps it to 503) instead of registering a job the drain
// will never stop.
func TestSubmitDuringShutdownRefused(t *testing.T) {
	t.Parallel()
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(JobSpec{Workload: "litmus/SB", POR: "source"}); err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	if _, err := m.Submit(JobSpec{Workload: "litmus/SB", POR: "source"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit during drain: err = %v, want ErrShuttingDown", err)
	}
}

// TestKillResumeDedup extends the kill/resume matrix to dedup jobs: the
// visited set serializes into every checkpoint, so a job segmented
// across kills cuts exactly the duplicate states an uninterrupted run
// cuts — byte-identical result, same (reduced) run count.
func TestKillResumeDedup(t *testing.T) {
	for _, por := range []string{"off", "sleep", "source"} {
		por := por
		t.Run(por, func(t *testing.T) {
			t.Parallel()
			spec := JobSpec{Workload: "litmus/SB", POR: por, Dedup: true}
			plain := baseline(t, JobSpec{Workload: "litmus/SB", POR: por}, 1)
			want := baseline(t, spec, 1)
			if want.Runs > plain.Runs {
				t.Errorf("dedup ran more executions than plain: %d > %d", want.Runs, plain.Runs)
			}
			every := 3
			if por == "source" {
				every = 1
			}
			got, cycles := runSegmented(t, t.TempDir(), spec, every, []int{1, 1})
			if cycles < 3 {
				t.Fatalf("job finished in %d cycles; segment size too large to exercise resume", cycles)
			}
			if got.Status != StatusDone {
				t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
			}
			if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
				t.Errorf("segmented dedup result diverged\n got: %s\nwant: %s", g, w)
			}
			if got.Runs != want.Runs {
				t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
			}
		})
	}
}
