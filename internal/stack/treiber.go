package stack

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// Treiber is the relaxed Treiber stack: pushes publish with a release CAS
// on the head (the push's commit point), successful pops use an acquire
// CAS (the pop's commit point), so lhb edges exist only between matching
// push-pop pairs (§3.3). The head CAS order is the modification order com
// that, joined with lhb, yields the linearization of the LAT_hb^hist spec
// — executably, the commit order itself.
type Treiber struct {
	head view.Loc
	nt   nodeTable
	rec  *core.Recorder

	pushMode memory.Mode // write mode of the push CAS (Rel; buggy: Rlx)
	popMode  memory.Mode // read mode of the pop's head read/CAS (Acq; buggy: Rlx)

	// blindEmpPop makes each thread's first TryPop lie: it reports empty
	// without inspecting the stack and records the EmpPop with a blinded
	// (empty) logical view (NewTreiberBlindEmpPop).
	blindEmpPop bool
	blindSeen   map[int]bool
}

// NewTreiber allocates a Treiber stack with the paper's access modes.
func NewTreiber(th *machine.Thread, name string) *Treiber {
	return &Treiber{head: th.Alloc(name+".head", 0), rec: core.NewRecorder(name),
		pushMode: memory.Rel, popMode: memory.Acq}
}

// NewTreiberBuggyRelaxedPush is the ablation variant whose push CAS is
// relaxed: node contents are not published, so pops race on them.
func NewTreiberBuggyRelaxedPush(th *machine.Thread, name string) *Treiber {
	return &Treiber{head: th.Alloc(name+".head", 0), rec: core.NewRecorder(name),
		pushMode: memory.Rlx, popMode: memory.Acq}
}

// NewTreiberBuggyRelaxedPop is the ablation variant whose pop side is
// relaxed: the popper does not acquire the push it consumes.
func NewTreiberBuggyRelaxedPop(th *machine.Thread, name string) *Treiber {
	return &Treiber{head: th.Alloc(name+".head", 0), rec: core.NewRecorder(name),
		pushMode: memory.Rel, popMode: memory.Rlx}
}

// NewTreiberBlindEmpPop is a seeded *spec-encoding* weakening (not a
// memory-ordering ablation): each thread's first TryPop unconditionally
// reports empty and commits the EmpPop through CommitNewBlind, so the
// recorded logical view is empty regardless of what the thread has
// observed. View-quantifying consistency predicates pass; the refinement
// oracle's po floor still knows the thread's own earlier pushes and
// catches the lie on a push-then-pop thread.
func NewTreiberBlindEmpPop(th *machine.Thread, name string) *Treiber {
	s := NewTreiber(th, name)
	s.blindEmpPop = true
	s.blindSeen = map[int]bool{}
	return s
}

// Recorder implements Stack.
func (s *Treiber) Recorder() *core.Recorder { return s.rec }

// TryPush makes one push attempt (the paper's try_push'): it returns the
// push's event ID and true on success; on a lost CAS it returns false and
// commits nothing. Extra pending events are armed with the push and
// committed atomically right after it — the elimination stack mirrors its
// push events through this hook (§4.1).
func (s *Treiber) TryPush(th *machine.Thread, v int64, extras ...core.Pending) (view.EventID, bool) {
	id := s.rec.Begin(th, core.Push, v)
	n := s.nt.alloc(th, "stk.node", v, int64(id))
	return id, s.pushAttempt(th, id, n, extras)
}

// pushAttempt performs one CAS attempt for a prepared node.
func (s *Treiber) pushAttempt(th *machine.Thread, id view.EventID, n int64, extras []core.Pending) bool {
	h := th.Read(s.head, memory.Rlx)
	th.Write(s.nt.at(n).next, h, memory.NA)
	s.rec.Arm(th, id)
	for _, x := range extras {
		x.Rec.Arm(th, x.ID)
	}
	if _, ok := th.CAS(s.head, h, n, memory.Rlx, s.pushMode); ok {
		s.rec.Commit(th, id) // commit point: the head CAS
		for _, x := range extras {
			x.Rec.Commit(th, x.ID)
		}
		return true
	}
	s.rec.Disarm(th, id)
	for _, x := range extras {
		x.Rec.Disarm(th, x.ID)
	}
	return false
}

// Push implements Stack, retrying until the CAS succeeds.
func (s *Treiber) Push(th *machine.Thread, v int64) {
	id := s.rec.Begin(th, core.Push, v)
	n := s.nt.alloc(th, "stk.node", v, int64(id))
	for !s.pushAttempt(th, id, n, nil) {
		th.Yield()
	}
}

// TryPop makes one pop attempt (the paper's try_pop'). On success it
// returns the value and the matched push's event ID; PopEmpty means the
// popper read a null head (committing an empty pop event); PopRace means
// a lost CAS (FAIL_RACE — no event committed).
func (s *Treiber) TryPop(th *machine.Thread) (int64, view.EventID, PopStatus) {
	if s.blindEmpPop && !s.blindSeen[th.ID()] {
		// Library code between machine steps runs exclusively, so the
		// map needs no locking (same discipline as the recorder).
		s.blindSeen[th.ID()] = true
		s.rec.CommitNewBlind(th, core.EmpPop, 0)
		return 0, view.NoEvent, PopEmpty
	}
	h := th.Read(s.head, s.popMode)
	if h == 0 {
		s.rec.CommitNew(th, core.EmpPop, 0) // commit point: the head read
		return 0, view.NoEvent, PopEmpty
	}
	n := s.nt.at(h)
	next := th.Read(n.next, memory.NA)
	v := th.Read(n.val, memory.NA)
	eid := view.EventID(th.Read(n.eid, memory.NA))
	if _, ok := th.CAS(s.head, h, next, s.popMode, memory.Rlx); ok {
		d := s.rec.CommitNew(th, core.Pop, v) // commit point: the head CAS
		s.rec.AddSo(eid, d)
		return v, eid, PopOK
	}
	return 0, view.NoEvent, PopRace
}

// Pop implements Stack, retrying lost races.
func (s *Treiber) Pop(th *machine.Thread) (int64, bool) {
	for {
		v, _, st := s.TryPop(th)
		switch st {
		case PopOK:
			return v, true
		case PopEmpty:
			return 0, false
		}
		th.Yield()
	}
}
