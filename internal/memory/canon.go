package memory

import (
	"encoding/binary"
	"sort"

	"compass/internal/view"
)

// This file is the canonicalization pass behind state-space deduplication:
// a deterministic binary encoding of the machine-visible memory state
// (per-location message histories with their views, the SC clock, and
// every thread's view) that quotients out the non-semantic identifiers
// two convergent decision prefixes can disagree on.
//
// Two prefixes that reach "the same" state may still differ in
//
//   - raw location IDs: locations are numbered in global allocation
//     order, so schedules that interleave allocations differently name
//     the same logical location with different view.Loc values;
//   - message Step stamps: Message.Step records the global machine step
//     of the write, a path artifact that Independent explicitly calls
//     diagnostics-only.
//
// The encoding removes both: locations are renamed to their canonical
// index — the rank of (name, allocation order among same-named
// locations) — every view is re-indexed through that renaming with
// trailing zeros trimmed (view.View treats them as absent), and Step
// stamps are simply not encoded. Message timestamps need no renaming:
// a timestamp is the 1-based position in the location's history, so the
// positional encoding subsumes it.
//
// Soundness does not rest on the renaming being a complete quotient —
// it is not (same-named locations allocated by racing threads keep
// their global order). It rests on the encoding being *injective up to
// state isomorphism*: equal encodings imply the two states are
// isomorphic under the canonical renaming, so their continuation trees
// produce identical outcome sets. An imperfect quotient only misses
// collisions, which costs pruning, never outcomes. See DESIGN.md §15.

// CanonOrder is the canonical location renaming of one memory state:
// locations sorted by (name, allocation order). It is stable under
// further allocation — new locations always sort after existing
// same-named ones — so the canonical index of a location never changes
// during a run.
type CanonOrder struct {
	// byCanon[i] is the raw location with canonical index i.
	byCanon []view.Loc
}

// CanonicalOrder computes the canonical renaming of m's locations.
func (m *Memory) CanonicalOrder() CanonOrder {
	o := CanonOrder{byCanon: make([]view.Loc, len(m.locs))}
	for i := range o.byCanon {
		o.byCanon[i] = view.Loc(i)
	}
	sort.SliceStable(o.byCanon, func(a, b int) bool {
		la, lb := m.locs[o.byCanon[a]], m.locs[o.byCanon[b]]
		if la.name != lb.name {
			return la.name < lb.name
		}
		return o.byCanon[a] < o.byCanon[b]
	})
	return o
}

// appendView appends the canonical encoding of a view: the timestamps in
// canonical location order, trailing zeros trimmed (a view with trailing
// zeros is equal to one without — view.View.Equal says so — and the
// canonical encoding must respect that).
func (o CanonOrder) appendView(b []byte, v view.View) []byte {
	n := len(o.byCanon)
	for n > 0 && v.Get(o.byCanon[n-1]) == 0 {
		n--
	}
	b = binary.AppendUvarint(b, uint64(n))
	for i := 0; i < n; i++ {
		b = binary.AppendUvarint(b, uint64(v.Get(o.byCanon[i])))
	}
	return b
}

// appendClock appends the canonical encoding of a clock: the physical
// view re-indexed canonically plus the logical view as its sorted event
// IDs. Event IDs are object-local (obj<<32 | seq) and objects are
// created deterministically by program code, so they need no renaming;
// when a workload does allocate recorder objects in racing threads the
// IDs differ, the encodings differ, and the states simply fail to
// collide (lost pruning, never lost soundness).
func (o CanonOrder) appendClock(b []byte, c view.Clock) []byte {
	b = o.appendView(b, c.V)
	evs := c.L.Events()
	b = binary.AppendUvarint(b, uint64(len(evs)))
	for _, e := range evs {
		b = binary.AppendVarint(b, int64(e))
	}
	return b
}

// AppendCanon appends the canonical encoding of the full memory state —
// per-location histories (values, writers, RMW flags, message clocks),
// NA-race bookkeeping, freed flags, and the global SC clock — to b and
// returns the extended slice. Message Step stamps are excluded (path
// artifacts); timestamps are positional.
func (m *Memory) AppendCanon(b []byte, o CanonOrder) []byte {
	b = binary.AppendUvarint(b, uint64(len(m.locs)))
	for _, raw := range o.byCanon {
		loc := m.locs[raw]
		b = binary.AppendUvarint(b, uint64(len(loc.name)))
		b = append(b, loc.name...)
		flags := byte(0)
		if loc.freed {
			flags |= 1
		}
		if loc.hasRead {
			flags |= 2
		}
		b = append(b, flags)
		b = o.appendView(b, loc.readView)
		b = binary.AppendUvarint(b, uint64(len(loc.hist)))
		for i := range loc.hist {
			msg := &loc.hist[i]
			b = binary.AppendVarint(b, msg.Val)
			b = binary.AppendVarint(b, int64(msg.Writer))
			if msg.IsRMW {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = o.appendClock(b, msg.Clk)
		}
	}
	return o.appendClock(b, m.sc)
}

// AppendCanonThread appends the canonical encoding of one thread's view
// state: Cur, Acq, FRel, and the per-location release clocks in
// canonical location order (absent entries skipped, so map iteration
// order never leaks into the encoding).
func (o CanonOrder) AppendCanonThread(b []byte, tv *ThreadView) []byte {
	b = o.appendClock(b, tv.Cur)
	b = o.appendClock(b, tv.Acq)
	b = o.appendClock(b, tv.FRel)
	n := 0
	for _, raw := range o.byCanon {
		if _, ok := tv.RelLoc[raw]; ok {
			n++
		}
	}
	b = binary.AppendUvarint(b, uint64(n))
	for ci, raw := range o.byCanon {
		c, ok := tv.RelLoc[raw]
		if !ok {
			continue
		}
		b = binary.AppendUvarint(b, uint64(ci))
		b = o.appendClock(b, c)
	}
	return b
}

// CanonLocID returns the stable canonical identity of location l for
// incremental hashing: a hash of the location's name mixed with its rank
// among same-named locations in allocation order. Unlike the raw
// view.Loc it is invariant under allocation-order differences between
// distinct-named locations, and unlike a CanonOrder index it is fixed
// the moment the location is allocated (later allocations never change
// it), so per-thread operation histories can fold it in as they go.
func (m *Memory) CanonLocID(l view.Loc) uint64 {
	name := m.locs[l].name
	rank := uint64(0)
	for i := view.Loc(0); i < l; i++ {
		if m.locs[i].name == name {
			rank++
		}
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h ^ (rank * 0x9e3779b97f4a7c15)
}
