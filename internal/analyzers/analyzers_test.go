package analyzers_test

import (
	"testing"

	"compass/internal/analyzers"
	"compass/internal/analyzers/lint/linttest"
)

// TestTreeClean runs the whole analyzer suite over the repository and
// requires zero findings — the same gate as `make lint` and CI. A
// failure here means a determinism/accounting invariant regressed (or a
// new sanctioned site needs its //compass: directive).
func TestTreeClean(t *testing.T) {
	diags, err := analyzers.Check(linttest.Loader(t), "./...")
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuiteRegistry pins the pass roster: removing an analyzer from the
// suite should be a deliberate act, not a refactoring accident.
func TestSuiteRegistry(t *testing.T) {
	want := []string{"detnondet", "zerovalue", "tallysite", "runnerctor", "modecheck", "loctrack", "speccover", "planstale"}
	suite := analyzers.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, e := range suite {
		if e.Analyzer.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, e.Analyzer.Name, want[i])
		}
		if e.Analyzer.Doc == "" {
			t.Errorf("%s has no Doc", e.Analyzer.Name)
		}
	}
}

// TestScopeFilters pins which packages each pass patrols.
func TestScopeFilters(t *testing.T) {
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"detnondet", "compass/internal/machine", true},
		{"detnondet", "compass/internal/memory", true},
		{"detnondet", "compass/internal/view", true},
		{"detnondet", "compass/internal/core", true},
		{"detnondet", "compass/internal/check", false},
		{"detnondet", "compass/internal/fuzz", false},
		{"zerovalue", "compass/internal/queue", true},
		{"tallysite", "compass/internal/telemetry", false},
		{"tallysite", "compass/internal/machine", true},
		{"runnerctor", "compass/internal/machine", false},
		{"runnerctor", "compass/internal/fuzz", true},
		{"modecheck", "compass", true},
		{"loctrack", "compass/internal/queue", true},
		{"loctrack", "compass/internal/deque", true},
		{"loctrack", "compass/internal/lock_test", true},
		{"loctrack", "compass/internal/check", false},
		{"speccover", "compass/internal/check", true},
		{"speccover", "compass/internal/litmus", false},
		{"planstale", "compass/internal/analysis/staticplan", true},
		{"planstale", "compass/internal/check", false},
	}
	byName := map[string]func(string) bool{}
	for _, e := range analyzers.Suite() {
		byName[e.Analyzer.Name] = e.Match
	}
	for _, c := range cases {
		if got := byName[c.analyzer](c.pkg); got != c.want {
			t.Errorf("%s.Match(%s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}
