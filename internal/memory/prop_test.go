package memory

import (
	"math/rand"
	"testing"

	"compass/internal/view"
)

// TestRandomWalkInvariants drives random operation sequences from several
// threads against the memory and checks the machine's structural
// invariants after every step:
//
//   - Cur ⊑ Acq for every thread;
//   - histories are append-only with consecutive timestamps;
//   - every message's clock includes its own (location, timestamp);
//   - a thread's current view never exceeds the existing history;
//   - reads never return a value the location never held.
type walkChooser struct{ r *rand.Rand }

func (c walkChooser) Choose(n int) int { return c.r.Intn(n) }

func TestRandomWalkInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := New()
		root := NewThreadView(0)
		locs := make([]view.Loc, 4)
		written := make([]map[int64]bool, 4)
		for i := range locs {
			locs[i] = m.Alloc(root, "l", 0)
			written[i] = map[int64]bool{0: true}
		}
		threads := []*ThreadView{root.Fork(1), root.Fork(2), root.Fork(3)}
		ch := walkChooser{r: r}
		atomicModes := []Mode{Rlx, Acq, Rel, AcqRel}

		for step := 0; step < 400; step++ {
			tv := threads[r.Intn(len(threads))]
			li := r.Intn(len(locs))
			l := locs[li]
			switch r.Intn(6) {
			case 0, 1: // atomic write
				v := int64(r.Intn(50))
				mode := atomicModes[r.Intn(2)+2] // Rel or AcqRel
				if r.Intn(2) == 0 {
					mode = Rlx
				}
				if err := m.Write(tv, l, v, mode); err != nil {
					t.Fatalf("atomic write errored: %v", err)
				}
				written[li][v] = true
			case 2, 3: // atomic read
				mode := Rlx
				if r.Intn(2) == 0 {
					mode = Acq
				}
				v, err := m.Read(tv, l, mode, ch)
				if err != nil {
					t.Fatalf("atomic read errored: %v", err)
				}
				if !written[li][v] {
					t.Fatalf("read %d from l%d which never held it", v, l)
				}
			case 4: // RMW
				v := int64(r.Intn(50))
				m.Exchange(tv, l, v, atomicModes[r.Intn(4)], atomicModes[r.Intn(4)])
				written[li][v] = true
			case 5: // fence
				switch r.Intn(3) {
				case 0:
					m.Fence(tv, true, false)
				case 1:
					m.Fence(tv, false, true)
				case 2:
					m.FenceSC(tv)
				}
			}
			// Invariants.
			for _, th := range threads {
				if !th.Cur.Leq(th.Acq) {
					t.Fatalf("seed %d step %d: Cur ⋢ Acq", seed, step)
				}
				for _, ll := range locs {
					if th.Cur.V.Get(ll) > m.MaxTime(ll) {
						t.Fatalf("seed %d step %d: view beyond history", seed, step)
					}
				}
			}
			for _, ll := range locs {
				h := m.History(ll)
				for i, msg := range h {
					if msg.T != view.Time(i+1) {
						t.Fatalf("non-consecutive timestamps at l%d", ll)
					}
					if msg.Clk.V.Get(ll) < msg.T {
						t.Fatalf("message clock at l%d misses its own write", ll)
					}
				}
			}
		}
	}
}

// TestMonotonicViews checks that a thread's current view only ever grows
// under a random operation mix.
func TestMonotonicViews(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := New()
	root := NewThreadView(0)
	l := m.Alloc(root, "x", 0)
	tv := root.Fork(1)
	writer := root.Fork(2)
	ch := walkChooser{r: r}
	prev := tv.Cur.V.Clone()
	for i := 0; i < 300; i++ {
		if r.Intn(2) == 0 {
			_ = m.Write(writer, l, int64(i), Rel)
		}
		if _, err := m.Read(tv, l, Acq, ch); err != nil {
			t.Fatal(err)
		}
		if !prev.Leq(tv.Cur.V) {
			t.Fatalf("view shrank at step %d", i)
		}
		prev = tv.Cur.V.Clone()
	}
}
