// Package fuzz is the differential-fuzzing and counterexample-shrinking
// layer: it synthesizes random client programs over the library APIs plus
// raw atomic accesses, runs them under seeded-random and bounded-exhaustive
// exploration, and cross-checks every execution four ways — per-library
// spec conformance, SC-oracle refinement of the observed history, the
// refinement/simulation oracle's abstract transition systems
// (internal/refine; disagreement with the spec predicates is classified
// distinctly, see Failure.Disagreement), and internal machine invariants
// (coherence, race/UB freedom). Failures are
// delta-debugged down to a minimal program and decision sequence and saved
// as replayable artifacts (JSON schedule, generated Go test, DOT graphs).
//
// The package follows the refinement-testing framing of Dalvandi & Dongol
// ("Verifying C11-Style Weak Memory Libraries via Refinement"): an
// implementation is differentially tested against both its event-graph
// spec and a sequentially consistent reference oracle, and mutation modes
// (known spec violations such as a dropped release on the Treiber push)
// prove the fuzzer finds real bugs rather than vacuously passing.
package fuzz

import (
	"encoding/json"
	"fmt"

	"compass/internal/memory"
)

// Op kinds. Library operations are normalized per library (see Build): on
// a queue/stack, "steal" and "exchange" degrade to "consume"; on an
// exchanger every library op is an exchange; on a deque, owner operations
// from non-owner threads degrade to steals. Normalization keeps every
// syntactically well-formed program semantically well-formed, so the
// shrinker can drop threads and ops freely.
const (
	OpProduce  = "produce"   // Enqueue / Push / PushBottom (owner) / Exchange
	OpConsume  = "consume"   // TryDequeue / Pop / TakeBottom (owner)
	OpSteal    = "steal"     // deque Steal; queue/stack: consume
	OpExchange = "exchange"  // exchanger Exchange; queue/stack: consume
	OpRead     = "read"      // raw atomic load of shared location Loc (RMode: rlx|acq)
	OpWrite    = "write"     // raw atomic store Val to Loc (WMode: rlx|rel)
	OpCAS      = "cas"       // raw CAS(Loc, Arg → Val)
	OpFAA      = "faa"       // raw FetchAdd(Loc, Val)
	OpFenceAcq = "fence_acq" // acquire fence
	OpFenceRel = "fence_rel" // release fence
	OpFenceSC  = "fence_sc"  // SC fence
	OpNA       = "na"        // non-atomic write+read of the thread's private cell
	OpYield    = "yield"     // pure scheduling point
)

// Op is one instruction of a generated client program.
type Op struct {
	Kind string `json:"kind"`
	// Loc indexes the program's shared raw locations (raw ops only).
	Loc int `json:"loc,omitempty"`
	// Val is the produced/written value (produce, exchange, write, cas new
	// value, faa delta).
	Val int64 `json:"val,omitempty"`
	// Arg is the op-specific extra: CAS expected value, exchange patience.
	Arg int64 `json:"arg,omitempty"`
	// RMode/WMode are raw access modes ("rlx", "acq" / "rlx", "rel");
	// empty means relaxed.
	RMode string `json:"rmode,omitempty"`
	WMode string `json:"wmode,omitempty"`
}

// Program is a serializable randomly generated client program: a library
// instance (possibly with an injected mutation) shared by Threads, each
// thread a straight-line sequence of ops over the library API, raw shared
// atomics, fences, and a private non-atomic cell.
type Program struct {
	// Lib selects the library under test: "msqueue", "hwqueue", "treiber",
	// "elimstack", "exchanger", "deque", or "none" (raw accesses only —
	// differential testing of the machine itself).
	Lib string `json:"lib"`
	// Mutant optionally injects a known spec violation (see Mutants).
	Mutant string `json:"mutant,omitempty"`
	// Locs is the number of shared raw atomic locations.
	Locs int `json:"locs"`
	// Threads holds one op sequence per worker thread.
	Threads [][]Op `json:"threads"`
	// NoRefine opts this program out of the refinement-oracle cross-check
	// (Config.NoRefine stamps it). It lives on the Program — not the
	// campaign — so Replay, the shrinker, and artifact reproducers judge
	// the execution exactly as the campaign did and failure keys stay
	// stable end to end.
	NoRefine bool `json:"no_refine,omitempty"`
}

// NumThreads returns the worker thread count.
func (p *Program) NumThreads() int { return len(p.Threads) }

// NumOps returns the total op count across threads.
func (p *Program) NumOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}

// MarshalJSON-friendly round trips are part of the artifact contract.
func (p *Program) String() string {
	data, _ := json.Marshal(p)
	return string(data)
}

// ParseProgram decodes a Program from its JSON encoding.
func ParseProgram(data []byte) (Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return Program{}, err
	}
	return p, p.Validate()
}

// readMode parses an op's RMode ("" = relaxed). Raw shared accesses are
// atomic by construction — non-atomics are confined to the per-thread
// private cell — so any Racy verdict signals a machine or library bug,
// never generator noise.
func readMode(s string) (memory.Mode, error) {
	switch s {
	case "", "rlx":
		return memory.Rlx, nil
	case "acq":
		return memory.Acq, nil
	}
	return 0, fmt.Errorf("bad read mode %q", s)
}

func writeMode(s string) (memory.Mode, error) {
	switch s {
	case "", "rlx":
		return memory.Rlx, nil
	case "rel":
		return memory.Rel, nil
	}
	return 0, fmt.Errorf("bad write mode %q", s)
}

// Validate checks the program's static well-formedness: known lib and
// mutant, in-range raw locations, legal access modes, and positive values
// for produced elements (0 and negatives are reserved sentinels in the
// library encodings).
func (p *Program) Validate() error {
	info, ok := libs[p.Lib]
	if !ok {
		return fmt.Errorf("unknown lib %q", p.Lib)
	}
	if p.Mutant != "" {
		found := false
		for _, m := range info.mutants {
			if m == p.Mutant {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("lib %q has no mutant %q (have %v)", p.Lib, p.Mutant, info.mutants)
		}
	}
	if p.Locs < 0 || p.Locs > 16 {
		return fmt.Errorf("locs = %d out of range [0,16]", p.Locs)
	}
	if len(p.Threads) == 0 || len(p.Threads) > 8 {
		return fmt.Errorf("%d threads out of range [1,8]", len(p.Threads))
	}
	for t, ops := range p.Threads {
		for i, op := range ops {
			switch op.Kind {
			case OpProduce, OpExchange:
				if op.Val <= 0 {
					return fmt.Errorf("T%d op %d: %s value %d must be positive", t, i, op.Kind, op.Val)
				}
			case OpConsume, OpSteal, OpFenceAcq, OpFenceRel, OpFenceSC, OpNA, OpYield:
			case OpRead:
				if _, err := readMode(op.RMode); err != nil {
					return fmt.Errorf("T%d op %d: %v", t, i, err)
				}
			case OpWrite:
				if _, err := writeMode(op.WMode); err != nil {
					return fmt.Errorf("T%d op %d: %v", t, i, err)
				}
			case OpCAS, OpFAA:
				if _, err := readMode(op.RMode); err != nil {
					return fmt.Errorf("T%d op %d: %v", t, i, err)
				}
				if _, err := writeMode(op.WMode); err != nil {
					return fmt.Errorf("T%d op %d: %v", t, i, err)
				}
			default:
				return fmt.Errorf("T%d op %d: unknown kind %q", t, i, op.Kind)
			}
			switch op.Kind {
			case OpRead, OpWrite, OpCAS, OpFAA:
				if op.Loc < 0 || op.Loc >= p.Locs {
					return fmt.Errorf("T%d op %d: loc %d out of range [0,%d)", t, i, op.Loc, p.Locs)
				}
			}
		}
	}
	return nil
}
