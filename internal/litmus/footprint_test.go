package litmus

import (
	"errors"
	"reflect"
	"testing"

	"compass/internal/analysis/footprint"
	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// TestFootprintEquivalence is the soundness gate for footprint pruning:
// for every litmus test in the suite plus the footprint-rich workloads,
// exhaustive exploration with an extracted certificate must produce a
// bit-identical outcome histogram — same runs, same completeness, same
// discards, same outcome counts — as exploration without one. Pruning
// removes per-access work, never decision-tree branches; any divergence
// (including a certificate violation turning an execution Failed) shows
// up here as a histogram mismatch.
func TestFootprintEquivalence(t *testing.T) {
	tests := append(Suite(), FootprintSuite()...)
	for _, tc := range tests {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			fp, err := footprint.Extract(tc.Build)
			if err != nil {
				t.Fatalf("extracting footprint: %v", err)
			}
			plain := Run(tc, 0, WithWorkers(1))
			pruned := Run(tc, 0, WithWorkers(1), WithFootprint(fp))
			if plain.Runs != pruned.Runs {
				t.Errorf("runs diverged: %d without footprint, %d with", plain.Runs, pruned.Runs)
			}
			if plain.Complete != pruned.Complete {
				t.Errorf("completeness diverged: %v without footprint, %v with", plain.Complete, pruned.Complete)
			}
			if plain.Discarded != pruned.Discarded {
				t.Errorf("discards diverged: %d without footprint, %d with", plain.Discarded, pruned.Discarded)
			}
			if !reflect.DeepEqual(plain.Outcomes, pruned.Outcomes) {
				t.Errorf("outcome histograms diverged:\nwithout footprint: %v\nwith footprint:    %v",
					plain.Outcomes, pruned.Outcomes)
			}
		})
	}
}

// TestFootprintActuallyPrunes asserts the certificates are not vacuous:
// the rich workloads must classify locations beyond Shared, and their
// pruning counters must move during exploration.
func TestFootprintActuallyPrunes(t *testing.T) {
	tc := FootprintSuite()[0] // FP-counters
	fp, err := footprint.Extract(tc.Build)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]memory.LocClass{}
	for i, c := range fp.Locs {
		classes[[]string{"cfg", "c1", "c2", "flag"}[i]] = c.Class
	}
	if classes["cfg"] != memory.ClassReadOnly {
		t.Errorf("cfg classified %v, want read-only", classes["cfg"])
	}
	if classes["c1"] != memory.ClassExclusive || classes["c2"] != memory.ClassExclusive {
		t.Errorf("counters classified %v/%v, want exclusive", classes["c1"], classes["c2"])
	}
	if classes["flag"] != memory.ClassShared {
		t.Errorf("flag classified %v, want shared", classes["flag"])
	}
	stats := telemetry.New()
	res := Run(tc, 0, WithWorkers(1), WithStats(stats), WithFootprint(fp))
	if !res.Complete {
		t.Fatalf("exploration incomplete: %s", res)
	}
	snap := stats.Snapshot()
	if snap.Machine.PrunedReads == 0 {
		t.Error("no reads were pruned despite certified locations")
	}
	if snap.Machine.RaceChecksSkipped == 0 {
		t.Error("no race checks were skipped despite certified na locations")
	}
}

// TestFootprintViolationFailsExecution pins the enforcement contract: a
// stale or wrong certificate aborts the execution as Failed with a
// CertError — it never silently mis-simulates.
func TestFootprintViolationFailsExecution(t *testing.T) {
	build := func() machine.Program {
		var x view.Loc
		return machine.Program{
			Setup: func(th *machine.Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) { th.Write(x, 1, memory.Rlx) },
				func(th *machine.Thread) { th.Report("r", th.Read(x, memory.Rlx)) },
			},
		}
	}
	cases := []struct {
		name string
		fp   *memory.Footprint
	}{
		{"wrong-owner", &memory.Footprint{Name: "bad", SetupLocs: 1,
			Locs: []memory.LocCert{{Class: memory.ClassExclusive, Owner: 1, SetupMax: 1}}}},
		{"false-read-only", &memory.Footprint{Name: "bad", SetupLocs: 1,
			Locs: []memory.LocCert{{Class: memory.ClassReadOnly, SetupMax: 1}}}},
		{"wrong-alloc-count", &memory.Footprint{Name: "bad", SetupLocs: 3,
			Locs: make([]memory.LocCert, 3)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := check.Options{Footprint: c.fp}.Runner(false).Run(build(), machine.ReplayStrategy(nil))
			if r.Status != machine.Failed {
				t.Fatalf("status %v, want failed (err: %v)", r.Status, r.Err)
			}
			var ce *memory.CertError
			if !errors.As(r.Err, &ce) {
				t.Fatalf("error %v, want a CertError", r.Err)
			}
		})
	}
}
