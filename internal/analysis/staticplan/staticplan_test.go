package staticplan

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"compass/internal/analyzers/lint/linttest"
	"compass/internal/memory"
)

var update = flag.Bool("update", false, "rewrite testdata/plans.json from the current sources")

// corpusPlans extracts the interpreter corpus suite once.
func corpusPlans(t *testing.T) map[string]*memory.Plan {
	t.Helper()
	pkg, err := linttest.Loader(t).LoadDir("testdata/interp")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	in := NewInterp(pkg)
	plans, err := ExtractSuites(in, pkg)
	if err != nil {
		t.Fatalf("extracting corpus: %v", err)
	}
	return plans
}

func wantSite(t *testing.T, tp *memory.ThreadPlan, name string, kinds memory.PlanKind, reads, writes memory.ModeMask) {
	t.Helper()
	if tp.Top {
		t.Fatalf("thread is ⊤ (%s), want site %s", tp.TopReason, name)
	}
	u, ok := tp.Sites[name]
	if !ok {
		t.Fatalf("no site %s (have %v)", name, tp.Sites)
	}
	if u.Kinds != kinds {
		t.Errorf("site %s kinds = %s, want %s", name, u.Kinds, kinds)
	}
	if u.ReadModes != reads {
		t.Errorf("site %s read modes = %s, want %s", name, u.ReadModes, reads)
	}
	if u.WriteModes != writes {
		t.Errorf("site %s write modes = %s, want %s", name, u.WriteModes, writes)
	}
}

func TestDirectPlan(t *testing.T) {
	p := corpusPlans(t)["direct"]
	if p == nil {
		t.Fatal("no plan for direct")
	}
	if len(p.Threads) != 3 {
		t.Fatalf("threads = %d, want 3 (final + 2 workers)", len(p.Threads))
	}
	// Worker 0 is plan thread 1; setup allocations are bindings, not sites.
	wantSite(t, &p.Threads[1], "x", memory.PlanWrite, 0, memory.ModeBit(memory.Rel))
	wantSite(t, &p.Threads[1], "y", memory.PlanRead, memory.ModeBit(memory.Rlx), 0)
	wantSite(t, &p.Threads[2], "y", memory.PlanWrite, 0, memory.ModeBit(memory.Rlx))
	if len(p.Threads[2].Sites) != 1 {
		t.Errorf("worker 1 sites = %v, want only y", p.Threads[2].Sites)
	}
	// The final phase is plan thread 0, and its NA read makes the thread
	// (and only that thread) non-atomic.
	wantSite(t, &p.Threads[0], "x", memory.PlanRead, memory.ModeBit(memory.NA), 0)
	if !p.Threads[0].UsesNA() || p.Threads[1].UsesNA() || p.Threads[2].UsesNA() {
		t.Errorf("UsesNA = %v/%v/%v, want true/false/false",
			p.Threads[0].UsesNA(), p.Threads[1].UsesNA(), p.Threads[2].UsesNA())
	}
	for i := range p.Threads {
		if p.Threads[i].Allocates() {
			t.Errorf("thread %d Allocates, but all allocation is in setup", i)
		}
	}
}

func TestHelperInlining(t *testing.T) {
	p := corpusPlans(t)["helpers"]
	if p == nil || len(p.Threads) != 2 {
		t.Fatalf("plan = %v", p)
	}
	// Names fold through the constructor's concatenation; the method call
	// resolves through the receiver object's concrete type.
	wantSite(t, &p.Threads[1], "p.a", memory.PlanRead, memory.ModeBit(memory.Acq), 0)
	wantSite(t, &p.Threads[1], "p.b", memory.PlanWrite, 0, memory.ModeBit(memory.Rlx))
}

func TestWorkerAlloc(t *testing.T) {
	p := corpusPlans(t)["worker-alloc"]
	if p == nil || len(p.Threads) != 2 {
		t.Fatalf("plan = %v", p)
	}
	wantSite(t, &p.Threads[1], "scratch",
		memory.PlanAlloc|memory.PlanWrite|memory.PlanFree, 0, memory.ModeBit(memory.Rlx))
	if !p.Threads[1].Allocates() {
		t.Error("worker allocates but Allocates() = false")
	}
}

func TestLoopFixpoint(t *testing.T) {
	p := corpusPlans(t)["chain"]
	if p == nil || len(p.Threads) != 2 {
		t.Fatalf("plan = %v", p)
	}
	// The loop-carried chain c←b←a←y stabilizes only after four passes;
	// both x and y must be in the write's may-set.
	wantSite(t, &p.Threads[1], "x", memory.PlanWrite, 0, memory.ModeBit(memory.Rlx))
	wantSite(t, &p.Threads[1], "y", memory.PlanWrite, 0, memory.ModeBit(memory.Rlx))
}

func TestEscapeIsTop(t *testing.T) {
	p := corpusPlans(t)["escape"]
	if p == nil || len(p.Threads) != 2 {
		t.Fatalf("plan = %v", p)
	}
	tp := &p.Threads[1]
	if !tp.Top {
		t.Fatalf("escape worker not ⊤: %v", tp.Sites)
	}
	if !strings.Contains(tp.TopReason, "memory-held") {
		t.Errorf("⊤ reason = %q, want mention of memory-held value", tp.TopReason)
	}
	// ⊤ answers every may-question conservatively.
	if !tp.MayTouch("anything", memory.PlanRead) || !tp.UsesNA() || !tp.Allocates() {
		t.Error("⊤ thread must over-approximate everything")
	}
}

func TestFactoryEntry(t *testing.T) {
	p := corpusPlans(t)["viafactory"]
	if p == nil {
		t.Fatal("no plan for viafactory")
	}
	if p.Program != "factory-prog" {
		t.Errorf("program = %q, want factory-prog (scanned from the factory body)", p.Program)
	}
	if len(p.Threads) != 1 || !p.Threads[0].Top {
		t.Fatalf("factory plan should be the single-⊤-thread plan, got %v", p)
	}
	// Out-of-range threads are ⊤ too.
	if !p.MayTouch(5, "whatever", memory.PlanWrite) {
		t.Error("out-of-range thread must be ⊤")
	}
}

// TestPlansFresh pins the committed fixture to the sources: regeneration
// must reproduce testdata/plans.json byte for byte. Run with -update to
// rewrite it (also exposed as `make plan`).
func TestPlansFresh(t *testing.T) {
	plans, err := ExtractAll(linttest.Loader(t))
	if err != nil {
		t.Fatalf("extracting suite plans: %v", err)
	}
	got, err := Marshal(plans)
	if err != nil {
		t.Fatalf("marshaling: %v", err)
	}
	const fixture = "testdata/plans.json"
	if *update {
		if err := os.WriteFile(fixture, got, 0o644); err != nil {
			t.Fatalf("writing %s: %v", fixture, err)
		}
		return
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("reading %s: %v", fixture, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s is stale: regenerate with `make plan` (or go test ./internal/analysis/staticplan -run TestPlansFresh -update)", fixture)
	}
}

// TestFixtureContents spot-checks the committed fixture: the litmus
// suites get precise plans, the library suite honest ⊤ ones carrying the
// machine program's name.
func TestFixtureContents(t *testing.T) {
	plans, err := Plans()
	if err != nil {
		t.Fatal(err)
	}
	mp := plans["MP+rel+acq"]
	if mp == nil {
		t.Fatal("fixture has no plan for MP+rel+acq")
	}
	if len(mp.Threads) != 3 {
		t.Fatalf("MP+rel+acq threads = %d, want 3", len(mp.Threads))
	}
	for i := range mp.Threads {
		if mp.Threads[i].Top {
			t.Errorf("MP+rel+acq thread %d is ⊤ (%s), want precise", i, mp.Threads[i].TopReason)
		}
	}
	fp := plans["FP-counters"]
	if fp == nil {
		t.Fatal("fixture has no plan for FP-counters")
	}
	for i := range fp.Threads {
		if fp.Threads[i].Top {
			t.Errorf("FP-counters thread %d is ⊤ (%s), want precise", i, fp.Threads[i].TopReason)
		}
	}
	msq := plans["lib/msqueue"]
	if msq == nil {
		t.Fatal("fixture has no plan for lib/msqueue")
	}
	if msq.Program != "queue-mixed" {
		t.Errorf("lib/msqueue plan program = %q, want queue-mixed", msq.Program)
	}
	if len(msq.Threads) != 1 || !msq.Threads[0].Top {
		t.Errorf("lib/msqueue plan should be ⊤: %v", msq)
	}
	dq := plans["lib/deque"]
	if dq == nil || dq.Program != "deque-worksteal" {
		t.Fatalf("lib/deque plan = %v, want ⊤ plan for deque-worksteal", dq)
	}
}
