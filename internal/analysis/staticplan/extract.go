package staticplan

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"compass/internal/analyzers/lint"
	"compass/internal/memory"
)

// This file extracts plans for whole test suites. A suite function is any
// function carrying the //compass:plan-suite directive that returns a
// slice literal of entries with a constant Name field and a Build field;
// the build is either
//
//   - a func() machine.Program literal (the litmus suites) — interpreted
//     by PlanBuild into a per-thread plan, or
//   - a call to a workload factory (the library suite) — the factory's
//     declaration is scanned for its machine.Program literal's Name, and
//     the plan is ⊤ with a reason: library implementations round-trip
//     locations through simulated memory (node tables indexed by values
//     read back from cells), which no static tracking of view.Loc flow
//     can follow. The ⊤ verdict still buys the kind-based Refutes
//     refutations and makes the certificate gate refuse any
//     exclusivity/read-only claim, both of which are the sound answers.

// PlanSuiteDirective marks suite functions whose entries get plans.
const PlanSuiteDirective = "plan-suite"

// ExtractSuites extracts a plan for every entry of every
// //compass:plan-suite function in pkg, keyed by entry name.
func ExtractSuites(in *Interp, pkg *lint.Package) (map[string]*memory.Plan, error) {
	pi := in.pkgInfoFor(pkg)
	if pi == nil {
		return nil, fmt.Errorf("staticplan: package %s is not loaded in this interpreter", pkg.PkgPath)
	}
	plans := map[string]*memory.Plan{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !lint.HasDirective(fd.Doc, PlanSuiteDirective) {
				continue
			}
			if err := in.extractSuite(pi, fd, plans); err != nil {
				return nil, err
			}
		}
	}
	return plans, nil
}

// pkgInfoFor finds the interpreter's view of a loaded package.
func (in *Interp) pkgInfoFor(pkg *lint.Package) *pkgInfo {
	for _, pi := range in.pkgs {
		if pi.pkg == pkg || pi.pkg.PkgPath == pkg.PkgPath {
			return pi
		}
	}
	return nil
}

// extractSuite walks one suite function's returned slice literal.
func (in *Interp) extractSuite(pi *pkgInfo, fd *ast.FuncDecl, plans map[string]*memory.Plan) error {
	lit := suiteLiteral(fd)
	if lit == nil {
		return fmt.Errorf("staticplan: %s: plan-suite function does not return a slice literal", fd.Name.Name)
	}
	for _, el := range lit.Elts {
		entry, ok := ast.Unparen(el).(*ast.CompositeLit)
		if !ok {
			return fmt.Errorf("staticplan: %s: suite entry is not a composite literal", fd.Name.Name)
		}
		var name string
		var build ast.Expr
		for _, kv := range entry.Elts {
			pair, ok := kv.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := pair.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Name":
				if tv, ok := pi.info.Types[pair.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					name = constant.StringVal(tv.Value)
				}
			case "Build":
				build = pair.Value
			}
		}
		if name == "" {
			return fmt.Errorf("staticplan: %s: suite entry without a constant Name", fd.Name.Name)
		}
		if _, dup := plans[name]; dup {
			return fmt.Errorf("staticplan: duplicate suite entry name %q", name)
		}
		plans[name] = in.planEntry(pi, name, build)
	}
	return nil
}

// suiteLiteral finds the slice composite literal a suite function
// returns.
func suiteLiteral(fd *ast.FuncDecl) *ast.CompositeLit {
	if fd.Body == nil {
		return nil
	}
	for _, s := range fd.Body.List {
		ret, ok := s.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		if cl, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit); ok {
			if _, isSlice := cl.Type.(*ast.ArrayType); isSlice {
				return cl
			}
		}
	}
	return nil
}

// planEntry derives one suite entry's plan from its Build expression.
func (in *Interp) planEntry(pi *pkgInfo, name string, build ast.Expr) *memory.Plan {
	switch b := ast.Unparen(build).(type) {
	case *ast.FuncLit:
		return in.PlanBuild(pi, b, name)
	case *ast.CallExpr:
		// A workload factory call: the machine program's name lives in the
		// factory's Program literal; the plan itself is ⊤ (see file doc).
		fn, _ := lint.PkgFunc(pi.info, b.Fun).(*types.Func)
		if fn == nil {
			return topPlan("", fmt.Sprintf("workload factory %s is not resolvable", types.ExprString(b.Fun)))
		}
		di := in.decls[objKey(fn)]
		if di == nil {
			return topPlan("", fmt.Sprintf("workload factory %s has no loaded source", types.ExprString(b.Fun)))
		}
		return topPlan(progNameIn(di), fmt.Sprintf(
			"library workload built by %s: locations are recovered from memory-held values", types.ExprString(b.Fun)))
	case nil:
		return topPlan("", "suite entry has no Build field")
	}
	return topPlan("", "Build is neither a function literal nor a factory call")
}

// progNameIn scans a workload factory declaration for the Name of the
// machine.Program literal it constructs ("" when none is found).
func progNameIn(di *declInfo) string {
	name := ""
	ast.Inspect(di.decl, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := di.pkg.info.Types[cl]
		if !ok {
			return true
		}
		path, tn, ok := lint.NamedTypePath(tv.Type)
		if !ok || tn != "Program" || !strings.HasSuffix(path, "internal/machine") {
			return true
		}
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
				if v, ok := di.pkg.info.Types[kv.Value]; ok && v.Value != nil && v.Value.Kind() == constant.String {
					name = constant.StringVal(v.Value)
					return false
				}
			}
		}
		return true
	})
	return name
}

// ExtractAll loads the packages that declare plan suites and extracts
// every suite entry's plan — the fixture regeneration entry point.
func ExtractAll(l *lint.Loader) (map[string]*memory.Plan, error) {
	pkgs, err := l.Load("compass/internal/litmus", "compass/internal/check")
	if err != nil {
		return nil, err
	}
	var lp []*lint.Package
	for _, p := range pkgs {
		if !strings.HasSuffix(p.PkgPath, "_test") {
			lp = append(lp, p)
		}
	}
	in := NewInterp(lp...)
	plans := map[string]*memory.Plan{}
	for _, p := range lp {
		got, err := ExtractSuites(in, p)
		if err != nil {
			return nil, err
		}
		for name, plan := range got {
			if _, dup := plans[name]; dup {
				return nil, fmt.Errorf("staticplan: suite entry %q declared in more than one package", name)
			}
			plans[name] = plan
		}
	}
	return plans, nil
}
