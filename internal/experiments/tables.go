package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"compass/internal/check"
	"compass/internal/core"
	"compass/internal/exchanger"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/spec"
	"compass/internal/stack"
	"compass/internal/view"
)

// repoRoot locates the repository root relative to this source file.
func repoRoot() (string, bool) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", false
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..")), true
}

// countLoC counts non-blank lines of a file (0 if unreadable).
func countLoC(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// funcLoC extracts the non-blank line counts of each top-level function in
// a file (naive brace matching; adequate for gofmt-formatted sources).
func funcLoC(path string) map[string]int {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	out := map[string]int{}
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		if !strings.HasPrefix(l, "func ") {
			continue
		}
		name := strings.TrimPrefix(l, "func ")
		if idx := strings.IndexAny(name, "(["); idx >= 0 {
			name = name[:idx]
		}
		count := 0
		for j := i; j < len(lines); j++ {
			if strings.TrimSpace(lines[j]) != "" {
				count++
			}
			if lines[j] == "}" { // top-level closing brace under gofmt
				i = j
				break
			}
		}
		out[strings.TrimSpace(name)] = count
	}
	return out
}

// T1Effort reproduces the §1.2 mechanization-size claims as a measured
// LoC table: per-library implementation+verification size vs per-client
// size. The paper reports libraries at 1.5-3.0 KLOC (median 2.1) and
// clients at 0.1-0.5 KLOC (median 0.2) — a ~10x gap; the *shape* to
// reproduce is that library artifacts are much larger than client
// artifacts, with the same ordering.
func T1Effort(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## T1 — §1.2 verification-effort analogue (measured LoC)\n\n")
	root, ok := repoRoot()
	if !ok {
		return Summary{Name: "T1 effort", OK: false, Detail: "cannot locate repo root"}
	}
	lib := func(paths ...string) int {
		n := 0
		for _, p := range paths {
			n += countLoC(filepath.Join(root, p))
		}
		return n
	}
	libraries := []struct {
		Name string
		LoC  int
	}{
		{"Michael-Scott queue", lib("internal/queue/msqueue.go", "internal/queue/queue.go")},
		{"Herlihy-Wing queue", lib("internal/queue/hwqueue.go")},
		{"Treiber stack", lib("internal/stack/treiber.go", "internal/stack/stack.go")},
		{"Exchanger", lib("internal/exchanger/exchanger.go")},
		{"Elimination stack", lib("internal/stack/elimination.go")},
	}
	clientFns := funcLoC(filepath.Join(root, "internal/check/clients.go"))
	exFns := funcLoC(filepath.Join(root, "internal/check/exchanger_workloads.go"))
	clients := []struct {
		Name string
		LoC  int
	}{
		{"MP client (Fig. 1/3)", clientFns["MPQueue"]},
		{"SPSC client (§3.2)", clientFns["SPSC"]},
		{"Odd/even client (§2.2)", clientFns["OddEven"]},
		{"Resource exchange (§4.2)", exFns["ResourceExchange"]},
	}
	cfg.printf("| artifact | kind | LoC |\n|---|---|---:|\n")
	var libLoCs, clientLoCs []int
	for _, l := range libraries {
		cfg.printf("| %s | library impl+spec glue | %d |\n", l.Name, l.LoC)
		libLoCs = append(libLoCs, l.LoC)
	}
	for _, c := range clients {
		cfg.printf("| %s | client | %d |\n", c.Name, c.LoC)
		clientLoCs = append(clientLoCs, c.LoC)
	}
	sort.Ints(libLoCs)
	sort.Ints(clientLoCs)
	medLib := libLoCs[len(libLoCs)/2]
	medCli := clientLoCs[len(clientLoCs)/2]
	ratio := float64(medLib) / float64(medCli)
	cfg.printf("\nmedian library %d LoC, median client %d LoC — ratio %.1fx (paper: 2.1 KLOC vs 0.2 KLOC ≈ 10x)\n",
		medLib, medCli, ratio)
	return Summary{Name: "T1 effort table", OK: medLib > medCli && ratio >= 1.5,
		Detail: fmt.Sprintf("median library %d LoC vs median client %d LoC (%.1fx)", medLib, medCli, ratio)}
}

// bruteLinearizableNoMemo is the no-structure baseline of T2: a naive
// permutation search with neither graph-based consistency conditions nor
// memoization — the analogue of deciding correctness by whole-history
// linearizability reasoning instead of COMPASS's local graph conditions.
func bruteLinearizableNoMemo(events []*stackEvent, remaining int, st []int64, budget *int) bool {
	if remaining == 0 {
		return true
	}
	if *budget <= 0 {
		return false
	}
	*budget--
	for _, e := range events {
		if e.used {
			continue
		}
		blocked := false
		for _, p := range events {
			if p != e && !p.used && e.preds[p.id] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		next, legal := applyStack(st, e)
		if !legal {
			continue
		}
		e.used = true
		if bruteLinearizableNoMemo(events, remaining-1, next, budget) {
			e.used = false
			return true
		}
		e.used = false
	}
	return false
}

type stackEvent struct {
	id    view.EventID
	kind  string
	val   int64
	preds map[view.EventID]bool
	used  bool
}

func applyStack(st []int64, e *stackEvent) ([]int64, bool) {
	switch e.kind {
	case "push":
		return append(st[:len(st):len(st)], e.val), true
	case "pop":
		if len(st) == 0 || st[len(st)-1] != e.val {
			return st, false
		}
		return st[:len(st)-1], true
	case "emp":
		return st, len(st) == 0
	}
	return st, false
}

// buggyStackGraph builds a stack graph containing one LIFO violation
// (push 1, push 2 on top of it, pop 1 while 2 is never popped) plus m
// independent matched push/pop pairs. The graph has no valid
// linearization, so a naive search must exhaust the exponential
// interleaving space of the m pairs, while the COMPASS graph condition
// STACK-LIFO detects the violation locally.
func buggyStackGraph(m int) *core.Graph {
	b := core.NewGraphBuilder("t2")
	e0 := b.Add(core.Push, 1, 0)
	e1 := b.Add(core.Push, 2, 0, e0)
	d := b.Add(core.Pop, 1, 0, e0, e1)
	b.So(e0, d)
	for i := 0; i < m; i++ {
		p := b.Add(core.Push, int64(100+i), 0)
		q := b.Add(core.Pop, int64(100+i), 0, p)
		b.So(p, q)
	}
	return b.Graph()
}

// toStackEvents converts a graph to the naive checker's representation,
// scrambled so the commit order gives no hint.
func toStackEvents(g *core.Graph) []*stackEvent {
	var evs []*stackEvent
	for _, e := range g.Events() {
		se := &stackEvent{id: e.ID, val: e.Val, preds: map[view.EventID]bool{}}
		switch e.Kind {
		case core.Push:
			se.kind = "push"
		case core.Pop:
			se.kind = "pop"
		default:
			se.kind = "emp"
		}
		for _, p := range e.LogView.Events() {
			se.preds[p] = true
		}
		evs = append(evs, se)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].kind != evs[j].kind {
			return evs[i].kind < evs[j].kind
		}
		return evs[i].val > evs[j].val
	})
	return evs
}

// T2CheckerCost reproduces the §6 comparison with Dalvandi-Dongol (their
// Treiber verification: 12 KLOC Isabelle; COMPASS: 2.2 KLOC Coq) as a
// measured cost comparison. Two workloads:
//
//  1. Correct Treiber executions: the commit order (logical atomicity)
//     gives an O(n) witness check for most graphs.
//  2. Graphs with a LIFO violation: COMPASS's local graph conditions
//     detect the defect in polynomial time, while a naive linearizability
//     decision must exhaust an exponential search space to prove that no
//     valid history exists.
func T2CheckerCost(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## T2 — §6 checking-cost analogue\n\n")

	// Part 1: correct Treiber executions, witness checking.
	n := cfg.Executions
	if n > 100 {
		n = 100
	}
	var witnessTime time.Duration
	checked, fastDecided := 0, 0
	for i := 0; i < n; i++ {
		var s *stack.Treiber
		c := check.StackMixed(func(th *machine.Thread) stack.Stack {
			s = stack.NewTreiber(th, "trb")
			return s
		}, spec.LevelHB, 2, 2, 2, 3)()
		res := check.Options{}.Runner(false).Run(c.Prog, machine.NewRandomBiased(cfg.Seed+int64(i), cfg.StaleBias))
		if res.Status != machine.OK {
			continue
		}
		g := s.Recorder().Graph()
		checked++
		t0 := time.Now()
		var probe spec.Result
		spec.ReplayCommitOrder(g, spec.SeqStack{}, true, &probe)
		if len(probe.Violations) == 0 {
			fastDecided++
		} else {
			spec.Linearizable(g, spec.SeqStack{}, 0)
		}
		witnessTime += time.Since(t0)
	}
	cfg.printf("correct executions: %d graphs, %d decided by the O(n) commit-order witness, total %v\n\n",
		checked, fastDecided, witnessTime)

	// Part 2: violation detection on unsatisfiable graphs.
	cfg.printf("| pairs m | events | COMPASS graph conditions | naive linearizability decision |\n|---:|---:|---:|---:|\n")
	ok := true
	var lastCompass, lastNaive time.Duration
	for _, m := range []int{2, 4, 6, 8} {
		g := buggyStackGraph(m)
		t0 := time.Now()
		r := spec.CheckStack(g, spec.LevelHB)
		compassT := time.Since(t0)
		if r.OK() {
			ok = false // the violation must be detected
		}
		evs := toStackEvents(g)
		t0 = time.Now()
		budget := 2_000_000
		found := bruteLinearizableNoMemo(evs, len(evs), nil, &budget)
		naiveT := time.Since(t0)
		if found {
			ok = false // no linearization exists
		}
		note := ""
		if budget == 0 {
			note = " (budget hit)"
		}
		cfg.printf("| %d | %d | %v | %v%s |\n", m, 3+2*m, compassT, naiveT, note)
		lastCompass, lastNaive = compassT, naiveT
	}
	speedup := float64(lastNaive) / float64(lastCompass+1)
	cfg.printf("\nat m=8 the local graph conditions are %.0fx faster than the naive decision\n", speedup)
	return Summary{Name: "T2 checker cost", OK: ok && lastCompass < lastNaive,
		Detail: fmt.Sprintf("graph conditions decide violations %.0fx faster than naive linearizability at 19 events", speedup)}
}

// A1Ablations verifies that every deliberately broken variant (missing
// release/acquire somewhere) is caught by the checkers, reporting how many
// executions the detection took and the first violated rule.
func A1Ablations(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## A1 — ablations: the checkers catch missing synchronization\n\n")
	cfg.printf("| variant | defect | detected after | first diagnosis |\n|---|---|---:|---|\n")
	type ablation struct {
		name, defect string
		build        func() check.Checked
	}
	ablations := []ablation{
		{"MS queue", "link CAS rlx (no publish)",
			check.QueueMixed(func(th *machine.Thread) queue.Queue {
				return queue.NewMSBuggyRelaxedLink(th, "msq")
			}, spec.LevelHB, 2, 3, 2, 4)},
		{"MS queue", "pointer loads rlx (no acquire)",
			check.QueueMixed(func(th *machine.Thread) queue.Queue {
				return queue.NewMSBuggyRelaxedRead(th, "msq")
			}, spec.LevelHB, 2, 3, 2, 4)},
		{"HW queue", "slot write rlx (no publish)",
			check.QueueMixed(func(th *machine.Thread) queue.Queue {
				return queue.NewHWBuggyRelaxedSlot(th, "hwq", 64)
			}, spec.LevelHB, 2, 3, 2, 4)},
		{"HW queue", "scan side rlx (no acquire)",
			check.QueueMixed(func(th *machine.Thread) queue.Queue {
				return queue.NewHWBuggyRelaxedScan(th, "hwq", 64)
			}, spec.LevelHB, 2, 3, 2, 4)},
		{"Treiber stack", "push CAS rlx (no publish)",
			check.StackMixed(func(th *machine.Thread) stack.Stack {
				return stack.NewTreiberBuggyRelaxedPush(th, "trb")
			}, spec.LevelHB, 2, 3, 2, 4)},
		{"Treiber stack", "pop side rlx (no acquire)",
			check.StackMixed(func(th *machine.Thread) stack.Stack {
				return stack.NewTreiberBuggyRelaxedPop(th, "trb")
			}, spec.LevelHB, 2, 3, 2, 4)},
		{"Exchanger", "offer CAS rlx (no publish)",
			check.ExchangerPairs(func(th *machine.Thread) *exchanger.Exchanger {
				return exchanger.NewBuggyRelaxedOffer(th, "ex")
			}, 2, 8)},
		{"Exchanger", "response write rlx (no resource transfer)",
			check.ResourceExchange(func(th *machine.Thread) *exchanger.Exchanger {
				return exchanger.NewBuggyRelaxedResponse(th, "ex")
			})},
		{"MP client", "flag rlx (no external sync)",
			check.MPQueue(func(th *machine.Thread) queue.Queue {
				return queue.NewHW(th, "hwq", 16)
			}, spec.LevelHB, false)},
	}
	ok := true
	runner := check.Options{}.Runner(false)
	for _, a := range ablations {
		detected, after, diag := false, 0, ""
		for i := 0; i < cfg.Executions*5 && !detected; i++ {
			c := a.build()
			res := runner.Run(c.Prog, machine.NewRandomBiased(cfg.Seed+int64(i), 0.6))
			after++
			switch res.Status {
			case machine.Racy, machine.Failed:
				detected, diag = true, res.Err.Error()
			case machine.OK:
				if viols, _ := c.Check(); len(viols) > 0 {
					detected, diag = true, viols[0].String()
				}
			}
		}
		if !detected {
			ok = false
			diag = "NOT DETECTED"
		}
		if len(diag) > 80 {
			diag = diag[:80] + "…"
		}
		cfg.printf("| %s | %s | %d executions | %s |\n", a.name, a.defect, after, diag)
	}
	return Summary{Name: "A1 ablations", OK: ok,
		Detail: fmt.Sprintf("all %d broken variants detected", len(ablations))}
}
