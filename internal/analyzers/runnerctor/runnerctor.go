// Package runnerctor funnels machine.Runner construction through
// check.Options.Runner. Scattered &machine.Runner{...} literals are how
// option plumbing regresses: a site that forgets Stats silently drops
// telemetry, one that forgets Budget hangs on divergent mutants (both
// happened before PR 3 unified construction). Sanctioned constructors
// carry //compass:runner-ctor.
package runnerctor

import (
	"go/ast"

	"compass/internal/analyzers/lint"
)

// Analyzer is the runnerctor pass.
var Analyzer = &lint.Analyzer{
	Name: "runnerctor",
	Doc: `require machine.Runner construction to go through check.Options.Runner

A machine.Runner composite literal outside the machine package itself
must be inside a function marked //compass:runner-ctor (the sanctioned
constructor, check.Options.Runner). Everything else should build its
runner from an Options value so Budget/Trace/Stats plumbing cannot be
forgotten site by site.`,
	Run: run,
}

const machinePath = "compass/internal/machine"

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok {
				return true
			}
			pkgPath, name, ok := lint.NamedTypePath(tv.Type)
			if !ok || pkgPath != machinePath || name != "Runner" {
				return true
			}
			if lint.FuncDirective(file, cl.Pos(), "runner-ctor") {
				return true
			}
			pass.Reportf(cl.Pos(), "machine.Runner constructed directly: go through check.Options.Runner so Budget/Trace/Stats plumbing stays uniform (sanctioned constructors carry //compass:runner-ctor)")
			return true
		})
	}
	return nil
}
