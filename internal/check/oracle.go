package check

import (
	"compass/internal/core"
	"compass/internal/spec"
	"compass/internal/view"
)

// readOnly reports whether the event is a read-only (failing) operation:
// an empty dequeue/pop/steal or a failed exchange. These are exactly the
// operations the weaker spec levels leave unconstrained, so the SC oracle
// can be asked to ignore them.
func readOnly(e *core.Event) bool {
	switch e.Kind {
	case core.EmpDeq, core.EmpPop, core.EmpSteal:
		return true
	case core.Exchange:
		return e.Val2 == core.ExFail
	}
	return false
}

// restrictGraph returns a copy of g containing only the events for which
// keep returns true, in commit order, with lhb restricted to the kept
// events (transitively closed through GraphBuilder). so edges are not
// copied: the oracle consumes only events and lhb.
func restrictGraph(g *core.Graph, keep func(*core.Event) bool) *core.Graph {
	b := core.NewGraphBuilder(g.Name)
	old2new := map[view.EventID]view.EventID{}
	for _, e := range g.Events() {
		if !keep(e) {
			continue
		}
		var lhb []view.EventID
		for _, p := range e.LogView.Events() {
			if n, ok := old2new[p]; ok {
				lhb = append(lhb, n)
			}
		}
		old2new[e.ID] = b.Add(e.Kind, e.Val, e.Val2, lhb...)
	}
	return b.Graph()
}

// SCOracle is the sequentially-consistent reference oracle: it checks that
// the observed history of g refines the sequential object obj, i.e. that
// some total order extending lhb interprets as a valid sequential history
// (linearizability of the observed history). This is a library-agnostic
// cross-check, independent of the per-library consistency conditions: a
// lost element, a duplicated element, or a value conjured from nowhere
// fails the oracle even if a structural checker would have missed it.
//
// With includeReadOnly=false the failing (read-only) operations — empty
// dequeues/pops/steals, failed exchanges — are dropped before the search,
// matching the weaker spec levels under which stale emptiness is legal
// (e.g. the Herlihy-Wing queue at LAT_hb). With includeReadOnly=true the
// oracle is the full LAT_hb^hist-strength obligation.
//
// Returns the violations found and the number of undecided checks (the
// linearizability search exceeding maxEvents reports unknown, not failure).
func SCOracle(g *core.Graph, obj spec.SeqObject, maxEvents int, includeReadOnly bool) ([]spec.Violation, int) {
	h := g
	if !includeReadOnly {
		h = restrictGraph(g, func(e *core.Event) bool { return !readOnly(e) })
	}
	ok, unknown := spec.Linearizable(h, obj, maxEvents)
	if unknown {
		return nil, 1
	}
	if !ok {
		return []spec.Violation{{
			Rule: "SC-ORACLE",
			Detail: "observed history does not refine the sequential " + obj.Name() +
				" oracle: no total order ⊇ lhb is a valid sequential history",
		}}, 0
	}
	return nil, 0
}
