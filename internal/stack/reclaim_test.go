package stack_test

import (
	"strings"
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/spec"
	"compass/internal/stack"
)

// hpWorkload drives pushers and poppers on a reclaiming stack and checks
// the stack spec plus reclamation progress.
func hpWorkload(useHP bool, pushers, perPusher, poppers, attempts int) func() check.Checked {
	return func() check.Checked {
		var s *stack.TreiberHP
		workers := make([]func(*machine.Thread), 0, pushers+poppers)
		for p := 0; p < pushers; p++ {
			p := p
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < perPusher; i++ {
					s.Push(th, int64(1000*(p+1)+i+1))
				}
			})
		}
		for c := 0; c < poppers; c++ {
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < attempts; i++ {
					s.Pop(th)
				}
			})
		}
		return check.Checked{
			Prog: machine.Program{
				Name: "treiber-hp",
				Setup: func(th *machine.Thread) {
					if useHP {
						s = stack.NewTreiberHP(th, "hps", pushers+poppers)
					} else {
						s = stack.NewTreiberEagerFree(th, "hps")
					}
				},
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckStack(s.Recorder().Graph(), spec.LevelHB))
			},
		}
	}
}

func TestTreiberHPNoUseAfterFree(t *testing.T) {
	// With hazard pointers, no explored execution ever hits use-after-free,
	// and the stack spec holds throughout.
	requirePass(t, check.Run("hp/safe",
		hpWorkload(true, 2, 3, 2, 4),
		check.Options{Executions: 500, StaleBias: 0.6}))
}

func TestTreiberHPActuallyReclaims(t *testing.T) {
	// Reclamation must make progress: across executions, popped nodes do
	// get freed (the hazard scan is not vacuously keeping everything).
	freed, popped := 0, 0
	for seed := int64(1); seed <= 100; seed++ {
		var s *stack.TreiberHP
		prog := machine.Program{
			Setup: func(th *machine.Thread) { s = stack.NewTreiberHP(th, "hps", 4) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) {
					for i := int64(1); i <= 3; i++ {
						s.Push(th, i)
					}
				},
				func(th *machine.Thread) {
					for i := 0; i < 4; i++ {
						if _, ok := s.Pop(th); ok {
							popped++
						}
					}
				},
			},
		}
		r := (&machine.Runner{}).Run(prog, machine.NewRandomBiased(seed, 0.5))
		if r.Status != machine.OK {
			t.Fatalf("seed %d: %v (%v)", seed, r.Status, r.Err)
		}
		freed += s.FreedNodes()
	}
	if popped == 0 || freed == 0 {
		t.Fatalf("no reclamation progress: popped=%d freed=%d", popped, freed)
	}
	t.Logf("freed %d of %d popped nodes across 100 executions", freed, popped)
}

func TestTreiberEagerFreeCaught(t *testing.T) {
	// Without hazard protection, a concurrent reader dereferences a freed
	// node: the machine reports use-after-free.
	rep := check.Run("hp/eager",
		hpWorkload(false, 2, 3, 2, 4),
		check.Options{Executions: 1000, StaleBias: 0.6})
	requireFailureFound(t, rep)
	found := false
	for _, f := range rep.Failures {
		if f.Err != nil && strings.Contains(f.Err.Error(), "use-after-free") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a use-after-free diagnosis: %s", rep)
	}
}

func TestTreiberHPSequential(t *testing.T) {
	build := func() check.Checked {
		var s *stack.TreiberHP
		return check.Checked{
			Prog: machine.Program{
				Setup: func(th *machine.Thread) { s = stack.NewTreiberHP(th, "hps", 2) },
				Workers: []func(*machine.Thread){func(th *machine.Thread) {
					s.Push(th, 1)
					s.Push(th, 2)
					if v, ok := s.Pop(th); !ok || v != 2 {
						th.Failf("pop = %d,%v; want 2", v, ok)
					}
					if v, ok := s.Pop(th); !ok || v != 1 {
						th.Failf("pop = %d,%v; want 1", v, ok)
					}
					if _, ok := s.Pop(th); ok {
						th.Failf("pop from empty succeeded")
					}
				}},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckStack(s.Recorder().Graph(), spec.LevelSC))
			},
		}
	}
	requirePass(t, check.Run("hp/seq", build, check.Options{Executions: 20}))
}
