package fuzz

import (
	"testing"

	"compass/internal/telemetry"
)

// TestRefineEquivalenceUnmutated is the cross-oracle property: on every
// unmutated library, a seeded campaign must end with zero spec/refine
// disagreements — the declarative consistency predicates and the
// refinement oracle's abstract transition systems accept exactly the same
// executions. CI runs this as the refine-equivalence job; the POR-mode
// sweep of the same property lives in internal/check
// (TestRefineVerdictPORInvariant), since the fuzzer's own exhaustive
// phase does not parameterize reduction.
func TestRefineEquivalenceUnmutated(t *testing.T) {
	for _, lib := range []string{"msqueue", "hwqueue", "treiber", "elimstack", "exchanger", "deque"} {
		lib := lib
		t.Run(lib, func(t *testing.T) {
			t.Parallel()
			stats := telemetry.New()
			rep, err := Fuzz(Config{
				Seed:           11,
				Programs:       6,
				Execs:          50,
				ExhaustiveRuns: 80,
				MaxFailures:    3,
				Stats:          stats,
				Gen:            GenConfig{Libs: []string{lib}, LibBias: 0.8},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Failures {
				t.Errorf("false positive (oracle %s, disagreement %q): %s err=%s viols=%v",
					f.Oracle, f.Disagreement, f.Key, f.Err, f.Violations)
			}
			snap := stats.Snapshot()
			if snap.Refine.TracesChecked == 0 {
				t.Fatal("campaign judged no traces with the refinement oracle")
			}
			if snap.Refine.Disagreements != 0 {
				t.Fatalf("%d refine/spec disagreements on unmutated %s",
					snap.Refine.Disagreements, lib)
			}
			t.Logf("%s: %d traces refined, 0 disagreements", lib, snap.Refine.TracesChecked)
		})
	}
}

// TestRefineDisagreementClassified pins the disagreement classification
// end to end: the blind-empty mutant is invisible to the view-quantified
// predicates and the SC oracle (which drops failing operations for the MS
// queue), so the campaign's failure must be attributed to the refinement
// oracle alone, classified spec-accepts/refine-rejects, and still shrink
// through the delta-debugger to a replayable schedule.
func TestRefineDisagreementClassified(t *testing.T) {
	stats := telemetry.New()
	rep, err := Fuzz(Config{
		Seed:     5,
		Programs: 60,
		Execs:    40,
		Stats:    stats,
		Gen:      GenConfig{Libs: []string{"msqueue"}, Mutant: "blind-empty", LibBias: 0.9, MaxOpsPerThread: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatalf("blind-empty not detected in %d programs / %d execs", rep.Programs, rep.Execs)
	}
	f := rep.Failures[0]
	if f.Oracle != "refine" {
		t.Fatalf("failure attributed to %q, want refine-only: %v", f.Oracle, f.Violations)
	}
	if f.Disagreement != DisagreeSpecAcceptsRefineRejects {
		t.Fatalf("disagreement %q, want %q", f.Disagreement, DisagreeSpecAcceptsRefineRejects)
	}
	if !f.Shrunk {
		t.Fatal("refine-found failure skipped the shrinker")
	}
	if snap := stats.Snapshot(); snap.Refine.Disagreements == 0 {
		t.Fatal("telemetry recorded no disagreements for a refine-only kill")
	}
	// The shrunk schedule must replay to the same refine-only class.
	g, err := Replay(f.Program, f.Decisions, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.Key != f.Key || g.Oracle != "refine" {
		t.Fatalf("replay got %+v, want key %s oracle refine", g, f.Key)
	}
}

// TestNoRefineOptOut pins the opt-out path: a campaign with NoRefine set
// stamps the programs, judges without the refinement oracle, and records
// no refine telemetry — so the blind-empty mutant sails through.
func TestNoRefineOptOut(t *testing.T) {
	stats := telemetry.New()
	rep, err := Fuzz(Config{
		Seed:     5,
		Programs: 15,
		Execs:    40,
		NoRefine: true,
		Stats:    stats,
		Gen:      GenConfig{Libs: []string{"msqueue"}, Mutant: "blind-empty", LibBias: 0.9, MaxOpsPerThread: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("NoRefine campaign still failed: oracle %s, %s", f.Oracle, f.Key)
	}
	if n := stats.Snapshot().Refine.TracesChecked; n != 0 {
		t.Fatalf("NoRefine campaign judged %d traces with the refinement oracle", n)
	}
}
