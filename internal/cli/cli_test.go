package cli

import (
	"os"
	"path/filepath"
	"testing"

	"compass/internal/check"
	"compass/internal/litmus"
	"compass/internal/telemetry"
)

// TestFlagSeed pins the -seed flag encoding: an explicit 0 on the command
// line means the literal seed 0, which the harness spells SeedZero because
// Options.Seed's zero value selects the default. Everything else passes
// through untouched.
func TestFlagSeed(t *testing.T) {
	cases := []struct {
		in, want int64
	}{
		{0, check.SeedZero},
		{1, 1},
		{42, 42},
		{-7, -7},
		{check.SeedZero, check.SeedZero},
	}
	for _, c := range cases {
		if got := FlagSeed(c.in); got != c.want {
			t.Errorf("FlagSeed(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestFlagStaleBias pins the -stale flag encoding: an explicit 0 means
// "always read the latest message", which the harness spells BiasZero
// because Options.StaleBias's zero value selects the default bias.
func TestFlagStaleBias(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, check.BiasZero},
		{0.5, 0.5},
		{1, 1},
		{check.BiasZero, check.BiasZero},
	}
	for _, c := range cases {
		if got := FlagStaleBias(c.in); got != c.want {
			t.Errorf("FlagStaleBias(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestFlagNormalizationRoundTrips checks the sentinels decode back to the
// values the user asked for: -seed 0 must actually run seed 0, and
// -stale 0 must actually run bias 0 — the zero-value traps PR 1–3 hit.
func TestFlagNormalizationRoundTrips(t *testing.T) {
	if got := check.NormalizeSeed(FlagSeed(0), 99); got != 0 {
		t.Errorf("Seed 0 round-trips to %d, want 0", got)
	}
	if got := check.NormalizeSeed(FlagSeed(7), 99); got != 7 {
		t.Errorf("Seed 7 round-trips to %d, want 7", got)
	}
	if got := check.NormalizeStaleBias(FlagStaleBias(0), 0.9); got != 0 {
		t.Errorf("StaleBias 0 round-trips to %v, want 0", got)
	}
	if got := check.NormalizeStaleBias(FlagStaleBias(0.3), 0.9); got != 0.3 {
		t.Errorf("StaleBias 0.3 round-trips to %v, want 0.3", got)
	}
}

func TestWriteStatsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	stats := telemetry.New()
	if err := WriteStatsFile(path, stats); err != nil {
		t.Fatalf("WriteStatsFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateSnapshotJSON(data); err != nil {
		t.Errorf("written snapshot does not validate: %v", err)
	}
}

func TestWriteStatsFileBadPath(t *testing.T) {
	if err := WriteStatsFile(filepath.Join(t.TempDir(), "no", "such", "dir.json"), telemetry.New()); err == nil {
		t.Error("want error for unwritable path, got nil")
	}
}

func TestWriteTraceFile(t *testing.T) {
	// Any recorded execution will do; the litmus suite's first test traced
	// under its default schedule is deterministic and cheap.
	tc := litmus.Suite()[0]
	res := litmus.TraceTest(tc)
	if len(res.Events) == 0 {
		t.Fatal("traced execution recorded no events")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, tc.Name, res); err != nil {
		t.Fatalf("WriteTraceFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTraceJSON(data); err != nil {
		t.Errorf("written trace does not validate: %v", err)
	}
}

func TestWriteTraceFileBadPath(t *testing.T) {
	res := litmus.TraceTest(litmus.Suite()[0])
	if err := WriteTraceFile(filepath.Join(t.TempDir(), "no", "such", "trace.json"), "t", res); err == nil {
		t.Error("want error for unwritable path, got nil")
	}
}
