package stack

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// TreiberHP is a Treiber stack with safe memory reclamation via hazard
// pointers [55] — the paper's other named future-work target (§6: "safe
// memory reclamation schemes for lock-free data structures"). Popped nodes
// are eventually freed (the simulator flags any later access as
// use-after-free), and readers protect the node they are about to
// dereference by publishing it in a per-thread hazard slot:
//
//	h := head;  hp[me] := h;  SC fence;  if head != h retry;  ...deref h...
//
// A reclaimer scans the hazard slots (after its own SC fence) and frees
// only unprotected nodes; the SC fence pairing guarantees that either the
// scanner sees the reader's hazard, or the reader's re-validation sees the
// unlink and retries — so no freed node is ever dereferenced.
//
// NewTreiberEagerFree is the ablation without protection: the winner of a
// pop frees the node immediately, and concurrent readers of the same node
// hit use-after-free (caught by the machine).
type TreiberHP struct {
	head view.Loc
	hp   []view.Loc // hazard slots, indexed by thread ID
	nt   nodeTable
	rec  *core.Recorder

	retired []int64 // unlinked, awaiting reclamation (scheduler-serialized)
	freed   int
	useHP   bool
}

// NewTreiberHP allocates a reclaiming Treiber stack with hazard slots for
// thread IDs 0..maxThreads (workers are 1..N).
func NewTreiberHP(th *machine.Thread, name string, maxThreads int) *TreiberHP {
	s := &TreiberHP{
		head:  th.Alloc(name+".head", 0),
		rec:   core.NewRecorder(name),
		useHP: true,
	}
	s.hp = make([]view.Loc, maxThreads+1)
	for i := range s.hp {
		s.hp[i] = th.Alloc(name+".hp", 0)
	}
	return s
}

// NewTreiberEagerFree allocates the ablation variant that frees popped
// nodes immediately, without hazard protection.
func NewTreiberEagerFree(th *machine.Thread, name string) *TreiberHP {
	return &TreiberHP{head: th.Alloc(name+".head", 0), rec: core.NewRecorder(name)}
}

// Recorder implements Stack.
func (s *TreiberHP) Recorder() *core.Recorder { return s.rec }

// FreedNodes reports how many nodes have been reclaimed so far.
func (s *TreiberHP) FreedNodes() int { return s.freed }

// RetiredNodes reports how many nodes await reclamation.
func (s *TreiberHP) RetiredNodes() int { return len(s.retired) }

// Push implements Stack (same protocol as the plain Treiber stack).
func (s *TreiberHP) Push(th *machine.Thread, v int64) {
	id := s.rec.Begin(th, core.Push, v)
	n := s.nt.alloc(th, "hps.node", v, int64(id))
	for {
		h := th.Read(s.head, memory.Rlx)
		th.Write(s.nt.at(n).next, h, memory.NA)
		s.rec.Arm(th, id)
		if _, ok := th.CAS(s.head, h, n, memory.Rlx, memory.Rel); ok {
			s.rec.Commit(th, id)
			return
		}
		s.rec.Disarm(th, id)
		th.Yield()
	}
}

// Pop implements Stack: hazard-protect the head node, dereference it,
// unlink it, then retire it for reclamation.
//
//compass:loctrack-top hazard-pointer slot selected by the runtime thread id
func (s *TreiberHP) Pop(th *machine.Thread) (int64, bool) {
	var slot view.Loc
	if s.useHP {
		slot = s.hp[th.ID()]
	}
	for {
		h := th.Read(s.head, memory.Acq)
		if h == 0 {
			s.rec.CommitNew(th, core.EmpPop, 0)
			return 0, false
		}
		if s.useHP {
			th.Write(slot, h, memory.Rel)
			th.FenceSC()
			if th.Read(s.head, memory.Acq) != h {
				th.Write(slot, 0, memory.Rlx)
				th.Yield()
				continue
			}
		}
		n := s.nt.at(h)
		next := th.Read(n.next, memory.NA)
		v := th.Read(n.val, memory.NA)
		eid := view.EventID(th.Read(n.eid, memory.NA))
		if _, ok := th.CAS(s.head, h, next, memory.Acq, memory.Rlx); ok {
			d := s.rec.CommitNew(th, core.Pop, v)
			s.rec.AddSo(eid, d)
			if s.useHP {
				th.Write(slot, 0, memory.Rlx)
				s.retire(th, h)
			} else {
				s.freeNode(th, h) // ablation: immediate, unprotected free
			}
			return v, true
		}
		if s.useHP {
			th.Write(slot, 0, memory.Rlx)
		}
		th.Yield()
	}
}

// retire queues the unlinked node and reclaims everything unprotected.
// The scan spans machine steps, so concurrent retirers could otherwise
// interleave on the shared retired list and double-free: each scanner
// first *claims* the whole list (between steps, while it runs
// exclusively), scans its private batch, and hands survivors back.
func (s *TreiberHP) retire(th *machine.Thread, h int64) {
	mine := append(s.retired, h)
	s.retired = nil
	// Scan: SC fence, then read every hazard slot; free the claimed nodes
	// no reader protects.
	th.FenceSC()
	hazards := map[int64]bool{}
	for _, slot := range s.hp {
		if p := th.Read(slot, memory.Acq); p != 0 {
			hazards[p] = true
		}
	}
	for _, node := range mine {
		if hazards[node] {
			s.retired = append(s.retired, node)
		} else {
			s.freeNode(th, node)
		}
	}
}

// freeNode deallocates the node's cells.
func (s *TreiberHP) freeNode(th *machine.Thread, h int64) {
	n := s.nt.at(h)
	th.Free(n.val)
	th.Free(n.eid)
	th.Free(n.next)
	s.freed++
}
