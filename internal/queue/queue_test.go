package queue_test

import (
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/spec"
)

func msFactory(th *machine.Thread) queue.Queue { return queue.NewMS(th, "msq") }
func hwFactory(th *machine.Thread) queue.Queue { return queue.NewHW(th, "hwq", 64) }
func scFactory(th *machine.Thread) queue.Queue { return queue.NewSC(th, "scq", 64) }

func requirePass(t *testing.T, rep *check.Report) {
	t.Helper()
	if !rep.Passed() {
		t.Fatalf("%s", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("no execution completed: %s", rep)
	}
}

func requireFailureFound(t *testing.T, rep *check.Report) {
	t.Helper()
	if rep.Passed() {
		t.Fatalf("expected violations, none found: %s", rep)
	}
}

// --- Michael-Scott queue: the paper verifies it at LAT_hb^abs (§3.2). ---

func TestMSQueueHB(t *testing.T) {
	requirePass(t, check.Run("ms/hb",
		check.QueueMixed(msFactory, spec.LevelHB, 2, 3, 2, 4), check.Options{Executions: 300}))
}

func TestMSQueueAbsHB(t *testing.T) {
	requirePass(t, check.Run("ms/abs",
		check.QueueMixed(msFactory, spec.LevelAbsHB, 2, 3, 2, 4), check.Options{Executions: 300}))
}

func TestMSQueueHist(t *testing.T) {
	requirePass(t, check.Run("ms/hist",
		check.QueueMixed(msFactory, spec.LevelHist, 2, 2, 2, 3), check.Options{Executions: 200}))
}

func TestMSQueueFailsSCLevel(t *testing.T) {
	// A weak dequeue can report empty although the queue is non-empty at
	// its commit point (§2.3) — the SC-level spec is too strong for MS.
	requireFailureFound(t, check.Run("ms/sc",
		check.QueueMixed(msFactory, spec.LevelSC, 2, 3, 2, 4),
		check.Options{Executions: 500, StaleBias: 0.7}))
}

func TestMSQueueSingleThreadedIsSC(t *testing.T) {
	// Without concurrency there are no relaxed behaviours: even the SC
	// level passes.
	build := func() check.Checked {
		var q queue.Queue
		return check.Checked{
			Prog: machine.Program{
				Setup: func(th *machine.Thread) { q = msFactory(th) },
				Workers: []func(*machine.Thread){func(th *machine.Thread) {
					q.TryDequeue(th)
					q.Enqueue(th, 1)
					q.Enqueue(th, 2)
					if v, ok := q.TryDequeue(th); !ok || v != 1 {
						th.Failf("sequential dequeue = %d,%v", v, ok)
					}
					if v, ok := q.TryDequeue(th); !ok || v != 2 {
						th.Failf("sequential dequeue = %d,%v", v, ok)
					}
					if _, ok := q.TryDequeue(th); ok {
						th.Failf("dequeue from empty succeeded")
					}
				}},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckQueue(q.Recorder().Graph(), spec.LevelSC))
			},
		}
	}
	requirePass(t, check.Run("ms/seq", build, check.Options{Executions: 20}))
}

func TestMSFencedQueueAbsHB(t *testing.T) {
	// The fence-published variant (release fence + relaxed CASes) must
	// satisfy the same LAT_hb^abs specs as the release-CAS version.
	f := func(th *machine.Thread) queue.Queue { return queue.NewMSFenced(th, "msq") }
	requirePass(t, check.Run("ms-fenced/abs",
		check.QueueMixed(f, spec.LevelAbsHB, 2, 3, 2, 4),
		check.Options{Executions: 400, StaleBias: 0.6}))
}

func TestMSFencedSPSC(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewMSFenced(th, "msq") }
	requirePass(t, check.Run("ms-fenced/spsc",
		check.SPSC(f, spec.LevelHB, 5), check.Options{Executions: 300, StaleBias: 0.5}))
}

// --- Herlihy-Wing queue: LAT_hb holds; LAT_hb^abs does not (§3.2). ---

func TestHWQueueHB(t *testing.T) {
	requirePass(t, check.Run("hw/hb",
		check.QueueMixed(hwFactory, spec.LevelHB, 2, 3, 2, 4), check.Options{Executions: 300}))
}

func TestHWQueueHBHighContention(t *testing.T) {
	requirePass(t, check.Run("hw/hb-hot",
		check.QueueMixed(hwFactory, spec.LevelHB, 3, 2, 3, 3),
		check.Options{Executions: 200, StaleBias: 0.6}))
}

func TestHWQueueFailsAbsLevel(t *testing.T) {
	// The abstract state is not constructible at HW commit points: a
	// dequeue's exchange can commit on a later slot while an earlier
	// enqueue had already committed (§3.2).
	requireFailureFound(t, check.Run("hw/abs",
		check.QueueMixed(hwFactory, spec.LevelAbsHB, 2, 3, 2, 4),
		check.Options{Executions: 800, StaleBias: 0.6}))
}

func TestHWQueueDrainHB(t *testing.T) {
	requirePass(t, check.Run("hw/drain",
		check.QueueDrain(hwFactory, spec.LevelHB, 2, 3, 2), check.Options{Executions: 200}))
}

// --- SC queue baseline: satisfies every level including SC (§2.2). ---

func TestSCQueueAllLevels(t *testing.T) {
	for _, lvl := range spec.Levels {
		rep := check.Run("sc/"+lvl.String(),
			check.QueueMixed(scFactory, lvl, 2, 3, 2, 4), check.Options{Executions: 200})
		requirePass(t, rep)
	}
}

// --- Ablations: the checkers must catch missing synchronization. ---

func TestMSQueueBuggyRelaxedLinkCaught(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewMSBuggyRelaxedLink(th, "msq") }
	requireFailureFound(t, check.Run("ms-buggy-link",
		check.QueueMixed(f, spec.LevelHB, 2, 3, 2, 4),
		check.Options{Executions: 500, StaleBias: 0.6}))
}

func TestMSQueueBuggyRelaxedReadCaught(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewMSBuggyRelaxedRead(th, "msq") }
	requireFailureFound(t, check.Run("ms-buggy-read",
		check.QueueMixed(f, spec.LevelHB, 2, 3, 2, 4),
		check.Options{Executions: 500, StaleBias: 0.6}))
}

func TestHWQueueBuggyRelaxedSlotCaught(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewHWBuggyRelaxedSlot(th, "hwq", 64) }
	requireFailureFound(t, check.Run("hw-buggy-slot",
		check.QueueMixed(f, spec.LevelHB, 2, 3, 2, 4),
		check.Options{Executions: 500, StaleBias: 0.6}))
}

func TestHWQueueBuggyRelaxedScanCaught(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewHWBuggyRelaxedScan(th, "hwq", 64) }
	requireFailureFound(t, check.Run("hw-buggy-scan",
		check.QueueMixed(f, spec.LevelHB, 2, 3, 2, 4),
		check.Options{Executions: 500, StaleBias: 0.6}))
}

// --- Clients (Fig. 1, Fig. 3, §3.2, §2.2). ---

func TestMPQueueClientMS(t *testing.T) {
	requirePass(t, check.Run("mp/ms",
		check.MPQueue(msFactory, spec.LevelHB, true), check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestMPQueueClientHW(t *testing.T) {
	requirePass(t, check.Run("mp/hw",
		check.MPQueue(hwFactory, spec.LevelHB, true), check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestMPQueueClientSC(t *testing.T) {
	requirePass(t, check.Run("mp/sc",
		check.MPQueue(scFactory, spec.LevelSC, true), check.Options{Executions: 200}))
}

func TestMPQueueClientRelaxedFlagFails(t *testing.T) {
	// Without the release/acquire flag the external synchronization is
	// gone: the right thread's dequeue can return empty.
	requireFailureFound(t, check.Run("mp/hw-rlx",
		check.MPQueue(hwFactory, spec.LevelHB, false),
		check.Options{Executions: 800, StaleBias: 0.7}))
}

func TestSPSCClient(t *testing.T) {
	for name, f := range map[string]check.QueueFactory{"ms": msFactory, "hw": hwFactory, "sc": scFactory} {
		requirePass(t, check.Run("spsc/"+name,
			check.SPSC(f, spec.LevelHB, 6), check.Options{Executions: 300, StaleBias: 0.5}))
	}
}

func TestPipelineClient(t *testing.T) {
	for name, f := range map[string]check.QueueFactory{"ms": msFactory, "hw": hwFactory} {
		requirePass(t, check.Run("pipeline/"+name,
			check.Pipeline(f, spec.LevelHB, 4), check.Options{Executions: 300, StaleBias: 0.5}))
	}
}

func TestOddEvenClient(t *testing.T) {
	requirePass(t, check.Run("oddeven/ms",
		check.OddEven(msFactory, spec.LevelHB, 2, 3), check.Options{Executions: 200}))
}

func TestHWQueueCapacityExceededFails(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewHW(th, "hwq", 2) }
	rep := check.Run("hw/cap", check.QueueMixed(f, spec.LevelHB, 1, 3, 0, 0),
		check.Options{Executions: 5})
	requireFailureFound(t, rep)
}
