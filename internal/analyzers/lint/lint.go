// Package lint is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not vendored — the repository has no
// external dependencies, and the analyzers only need the narrow slice of
// the API that the standard library's go/ast and go/types already
// provide. The loader (load.go) substitutes for go/packages by combining
// `go list -export` with go/importer, and linttest substitutes for
// analysistest with the same `// want` golden-comment convention, so the
// passes themselves read exactly like x/tools passes and could be ported
// to the real driver by changing only import paths.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description shown by `compasslint -help`:
	// first line = summary, rest = the invariant being mechanized.
	Doc string
	// Run inspects one package via the Pass and reports findings through
	// pass.Reportf. A non-nil error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	report    func(Diagnostic)
}

// Diagnostic is one finding, positioned in the file set.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies the analyzer to pkg and returns its diagnostics sorted by
// position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// DirectivePrefix introduces a compass lint directive comment:
// //compass:<name>. Directives attach to the function whose doc comment
// (or body comment block) contains them and grant that function an
// analyzer-specific permission (e.g. //compass:accounting for tallysite).
const DirectivePrefix = "//compass:"

// HasDirective reports whether the comment group contains the directive
// //compass:<name> on a line of its own (trailing explanation after a
// space is allowed).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := DirectivePrefix + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// DirectiveArg returns the argument text following //compass:<name> in
// the comment group (the rest of the line, space-trimmed) and whether
// the directive is present at all. A bare directive yields ("", true).
func DirectiveArg(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	want := DirectivePrefix + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, want+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FuncDirective reports whether the function declaration enclosing pos in
// file carries the directive, either in its doc comment or in a comment
// anywhere inside its body (so a directive can sit next to the one
// statement it excuses).
func FuncDirective(file *ast.File, pos token.Pos, name string) bool {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		if HasDirective(fd.Doc, name) {
			return true
		}
	}
	// Comments inside the enclosing function's body.
	for _, cg := range file.Comments {
		if cg.Pos() >= fileDeclStart(file, pos) && cg.End() <= fileDeclEnd(file, pos) && HasDirective(cg, name) {
			return true
		}
	}
	return false
}

func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

func fileDeclStart(file *ast.File, pos token.Pos) token.Pos {
	if fd := enclosingFunc(file, pos); fd != nil {
		return fd.Pos()
	}
	return pos
}

func fileDeclEnd(file *ast.File, pos token.Pos) token.Pos {
	if fd := enclosingFunc(file, pos); fd != nil {
		return fd.End()
	}
	return pos
}

// IsTestFile reports whether the position lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgFunc resolves the types.Object a selector or identifier call target
// refers to, unwrapping parentheses; nil when it cannot be resolved.
func PkgFunc(info *types.Info, fun ast.Expr) types.Object {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

// ObjPkgPath returns the import path of the object's package ("" for
// builtins and package-less objects).
func ObjPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// NamedTypePath returns (package path, type name) for a named or aliased
// struct/defined type, resolving through pointers; ok is false otherwise.
func NamedTypePath(t types.Type) (pkgPath, name string, ok bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(tt)
			continue
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() == nil {
				return "", obj.Name(), true
			}
			return obj.Pkg().Path(), obj.Name(), true
		default:
			return "", "", false
		}
	}
}
