package machine

import (
	"fmt"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// StepKind classifies one traced machine operation.
type StepKind uint8

const (
	StepAlloc StepKind = iota
	StepRead
	StepWrite
	StepFree
	StepFence
	StepFenceSC
	StepCAS
	StepFAA
	StepXchg
	// StepUpdate is a generic read-modify-write applied via Thread.Update
	// (the typed RMWs above record their own kinds).
	StepUpdate
)

func (k StepKind) String() string {
	switch k {
	case StepAlloc:
		return "alloc"
	case StepRead:
		return "read"
	case StepWrite:
		return "write"
	case StepFree:
		return "free"
	case StepFence:
		return "fence"
	case StepFenceSC:
		return "fence-sc"
	case StepCAS:
		return "cas"
	case StepFAA:
		return "faa"
	case StepXchg:
		return "xchg"
	case StepUpdate:
		return "update"
	}
	return fmt.Sprintf("step(%d)", uint8(k))
}

// StepEvent is one typed entry of the per-step operation log (recorded
// only when Runner.Trace is set). It replaces the old unstructured
// []string trace: String() renders the exact legacy line, while the
// structured fields feed the Chrome trace exporter and programmatic
// consumers.
type StepEvent struct {
	// Step is the machine step index at which the operation executed
	// (deterministic under replay — the exporter uses it as the
	// timestamp axis).
	Step   int
	Thread int
	Kind   StepKind
	Loc    view.Loc
	// LocName is the location's debug name (empty for fences).
	LocName string
	// RMode/WMode are the access modes (reads use RMode, writes WMode,
	// RMWs both).
	RMode, WMode memory.Mode
	// Val is the value read/written (the delta for FAA, the new value
	// for CAS/Xchg, the initial value for Alloc).
	Val int64
	// Arg is the CAS comparand.
	Arg int64
	// Old is the previous value returned by an RMW.
	Old int64
	// OK is the CAS success flag.
	OK bool
	// Acquire/Release are the fence directions.
	Acquire, Release bool
	// Race marks the access that aborted the execution as racy.
	Race bool
}

// Access projects the traced operation back onto the POR access metadata
// the thread announced at its scheduling point — the same classification
// the dynamic conflict scan (memory.Conflicting) and the static oracle
// (memory.Independent) judge. Fences of every flavour map to AccFence,
// matching what Thread.Fence/FenceSC announce.
func (e StepEvent) Access() memory.Access {
	switch e.Kind {
	case StepAlloc:
		return memory.Access{Kind: memory.AccAlloc}
	case StepRead:
		return memory.Access{Kind: memory.AccRead, Loc: e.Loc}
	case StepWrite:
		return memory.Access{Kind: memory.AccWrite, Loc: e.Loc}
	case StepFree:
		return memory.Access{Kind: memory.AccFree, Loc: e.Loc}
	case StepFence, StepFenceSC:
		return memory.Access{Kind: memory.AccFence}
	case StepCAS, StepFAA, StepXchg, StepUpdate:
		return memory.Access{Kind: memory.AccRMW, Loc: e.Loc}
	}
	return memory.Access{}
}

// String renders the event in the legacy trace format (the lines Explain
// and -explain always printed).
func (e StepEvent) String() string {
	switch e.Kind {
	case StepAlloc:
		return fmt.Sprintf("T%d  alloc   %s (l%d) := %d", e.Thread, e.LocName, e.Loc, e.Val)
	case StepRead:
		if e.Race {
			return fmt.Sprintf("T%d  RACE    read_%v %s", e.Thread, e.RMode, e.LocName)
		}
		return fmt.Sprintf("T%d  read    %s =%v= %d", e.Thread, e.LocName, e.RMode, e.Val)
	case StepWrite:
		if e.Race {
			return fmt.Sprintf("T%d  RACE    write_%v %s", e.Thread, e.WMode, e.LocName)
		}
		return fmt.Sprintf("T%d  write   %s :=%v= %d", e.Thread, e.LocName, e.WMode, e.Val)
	case StepFree:
		return fmt.Sprintf("T%d  free    %s", e.Thread, e.LocName)
	case StepFence:
		return fmt.Sprintf("T%d  fence   acq=%v rel=%v", e.Thread, e.Acquire, e.Release)
	case StepFenceSC:
		return fmt.Sprintf("T%d  fence   sc", e.Thread)
	case StepCAS:
		return fmt.Sprintf("T%d  cas     %s %d→%d (read %d, ok=%v)", e.Thread, e.LocName, e.Arg, e.Val, e.Old, e.OK)
	case StepFAA:
		return fmt.Sprintf("T%d  faa     %s += %d (old %d)", e.Thread, e.LocName, e.Val, e.Old)
	case StepXchg:
		return fmt.Sprintf("T%d  xchg    %s := %d (old %d)", e.Thread, e.LocName, e.Val, e.Old)
	case StepUpdate:
		return fmt.Sprintf("T%d  update  %s (read %d, wrote=%v)", e.Thread, e.LocName, e.Old, e.OK)
	}
	return fmt.Sprintf("T%d  %v", e.Thread, e.Kind)
}

// chromeName is the short label chrome://tracing shows on the slice.
func (e StepEvent) chromeName() string {
	switch e.Kind {
	case StepAlloc:
		return "alloc " + e.LocName
	case StepRead:
		if e.Race {
			return "RACE read " + e.LocName
		}
		return "read " + e.LocName
	case StepWrite:
		if e.Race {
			return "RACE write " + e.LocName
		}
		return "write " + e.LocName
	case StepFree:
		return "free " + e.LocName
	case StepFence:
		return "fence"
	case StepFenceSC:
		return "fence sc"
	case StepCAS:
		return "cas " + e.LocName
	case StepFAA:
		return "faa " + e.LocName
	case StepXchg:
		return "xchg " + e.LocName
	case StepUpdate:
		return "update " + e.LocName
	}
	return e.Kind.String()
}

// chromeArgs are the detail fields shown when a slice is selected.
func (e StepEvent) chromeArgs() map[string]interface{} {
	args := map[string]interface{}{"op": e.String()}
	switch e.Kind {
	case StepRead:
		args["mode"] = e.RMode.String()
		args["val"] = e.Val
	case StepWrite, StepAlloc:
		args["mode"] = e.WMode.String()
		args["val"] = e.Val
	case StepCAS:
		args["expected"] = e.Arg
		args["new"] = e.Val
		args["read"] = e.Old
		args["ok"] = e.OK
	case StepFAA:
		args["delta"] = e.Val
		args["old"] = e.Old
	case StepXchg:
		args["new"] = e.Val
		args["old"] = e.Old
	case StepUpdate:
		args["old"] = e.Old
		args["wrote"] = e.OK
	}
	return args
}

// ChromeTraceEvents converts a traced Result into Chrome trace_event
// entries under the given pid (one pid per execution lets a single file
// hold several executions side by side). The timestamp axis is the
// deterministic machine step index, not wall clock, so a replayed
// schedule exports a byte-identical trace; each operation is a 1-step
// slice on its thread's track, and the final status is an instant event.
func ChromeTraceEvents(pid int, name string, r *Result) []telemetry.TraceEvent {
	out := []telemetry.TraceEvent{telemetry.ProcessName(pid, name)}
	threads := map[int]bool{}
	for _, e := range r.Events {
		if !threads[e.Thread] {
			threads[e.Thread] = true
			tn := fmt.Sprintf("T%d", e.Thread)
			if e.Thread == 0 {
				tn = "T0 (main)"
			}
			out = append(out, telemetry.ThreadName(pid, e.Thread, tn))
		}
		out = append(out, telemetry.TraceEvent{
			Name: e.chromeName(),
			Cat:  "machine",
			Ph:   "X",
			TS:   int64(e.Step),
			Dur:  1,
			PID:  pid,
			TID:  e.Thread,
			Args: e.chromeArgs(),
		})
	}
	out = append(out, telemetry.TraceEvent{
		Name: "status " + r.Status.String(),
		Cat:  "machine",
		Ph:   "i",
		TS:   int64(r.Steps) + 1,
		PID:  pid,
		TID:  0,
	})
	return out
}
