package memory

import (
	"testing"

	"compass/internal/view"
)

// byteChooser resolves read nondeterminism from the fuzz input itself, so
// the corpus explores stale-read choices as well as op sequences.
type byteChooser struct {
	data []byte
	pos  int
}

func (c *byteChooser) Choose(n int) int {
	if c.pos >= len(c.data) {
		return n - 1
	}
	b := c.data[c.pos]
	c.pos++
	return int(b) % n
}

// FuzzMemorySteps drives random atomic traffic from two threads over two
// shared locations and checks the machine's core coherence invariants
// after every step:
//
//   - per-location read coherence: a thread's view of a location never goes
//     backwards, so successive reads never observe older messages
//   - Cur ⊑ Acq (the acquire clock dominates the current clock)
//   - reads only return values some write actually put at that location
//   - the location history stays contiguous (MaxTime == len(History))
func FuzzMemorySteps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 9, 0, 0, 3, 9, 1, 0, 0, 0, 1, 1, 5, 0, 4, 9})
	f.Add([]byte{2, 1, 0, 0, 2, 3, 0, 1, 0, 0, 0, 1, 3, 7, 1, 1, 1, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := New()
		tvs := []*ThreadView{NewThreadView(0), NewThreadView(1)}
		setup := NewThreadView(99)
		locs := []view.Loc{
			m.Alloc(setup, "x", 0),
			m.Alloc(setup, "y", 0),
		}
		// Threads start having observed the initial writes, as machine
		// threads do after Setup.
		for _, tv := range tvs {
			tv.JoinClock(setup.Cur)
		}
		// written[l] is the set of values ever stored at l.
		written := []map[int64]bool{{0: true}, {0: true}}
		// seen[tid][l] is the thread's coherence frontier for l.
		seen := [2][2]view.Time{}
		ch := &byteChooser{data: data}

		invariants := func(tid int, l int) {
			tv := tvs[tid]
			if ts := tv.Cur.V.Get(locs[l]); ts < seen[tid][l] {
				t.Fatalf("T%d view of loc %d went backwards: %d < %d", tid, l, ts, seen[tid][l])
			} else {
				seen[tid][l] = ts
			}
			if !tv.Cur.Leq(tv.Acq) {
				t.Fatalf("T%d: invariant Cur ⊑ Acq violated: cur=%v acq=%v", tid, tv.Cur, tv.Acq)
			}
			if int(m.MaxTime(locs[l])) != len(m.History(locs[l])) {
				t.Fatalf("loc %d history not contiguous: MaxTime=%d, %d messages",
					l, m.MaxTime(locs[l]), len(m.History(locs[l])))
			}
		}

		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 7
			tid := int(data[i+1]) % 2
			l := int(data[i+2]) % 2
			val := int64(data[i+3]%16) + 1
			tv := tvs[tid]
			switch op {
			case 0, 1: // relaxed / acquire read
				mode := Rlx
				if op == 1 {
					mode = Acq
				}
				v, err := m.Read(tv, locs[l], mode, ch)
				if err != nil {
					t.Fatalf("atomic read errored: %v", err)
				}
				if !written[l][v] {
					t.Fatalf("T%d read %d from loc %d, which was never written there", tid, v, l)
				}
			case 2, 3: // relaxed / release write
				mode := Rlx
				if op == 3 {
					mode = Rel
				}
				if err := m.Write(tv, locs[l], val, mode); err != nil {
					t.Fatalf("atomic write errored: %v", err)
				}
				written[l][val] = true
			case 4: // CAS (its read side obeys coherence too)
				old, ok := m.CAS(tv, locs[l], int64(data[i+3]%4), val, Acq, Rel)
				if !written[l][old] {
					t.Fatalf("T%d CAS read %d from loc %d, which was never written there", tid, old, l)
				}
				if ok {
					written[l][val] = true
				}
			case 5:
				m.Fence(tv, data[i+3]%2 == 0, data[i+3]%3 == 0)
			case 6:
				m.FenceSC(tv)
			}
			invariants(tid, l)
		}
	})
}
