package experiments

import (
	"io"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit testing each experiment.
func tiny(execs int) Config {
	return Config{Executions: execs, Seed: 1, StaleBias: 0.5, Out: io.Discard}
}

func requireReproduced(t *testing.T, s Summary) {
	t.Helper()
	if !s.OK {
		t.Fatalf("experiment did not reproduce: %s", s)
	}
}

func TestL1(t *testing.T)  { requireReproduced(t, L1Litmus(tiny(0))) }
func TestF1(t *testing.T)  { requireReproduced(t, Fig1MP(tiny(60))) }
func TestF1b(t *testing.T) { requireReproduced(t, F1bSpecStrength(tiny(1))) }
func TestF3(t *testing.T)  { requireReproduced(t, Fig3DeqPerm(tiny(60))) }
func TestF4(t *testing.T)  { requireReproduced(t, Fig4HistStack(tiny(80))) }
func TestF5(t *testing.T)  { requireReproduced(t, Fig5Exchanger(tiny(60))) }
func TestE1(t *testing.T)  { requireReproduced(t, E1ElimStack(tiny(60))) }
func TestE2(t *testing.T)  { requireReproduced(t, E2SPSC(tiny(60))) }
func TestT1(t *testing.T)  { requireReproduced(t, T1Effort(tiny(1))) }
func TestT2(t *testing.T)  { requireReproduced(t, T2CheckerCost(tiny(20))) }
func TestA1(t *testing.T)  { requireReproduced(t, A1Ablations(tiny(40))) }
func TestW1(t *testing.T)  { requireReproduced(t, W1WorkStealing(tiny(50))) }
func TestM1(t *testing.T)  { requireReproduced(t, M1RingQueue(tiny(60))) }
func TestW2(t *testing.T)  { requireReproduced(t, W2Reclamation(tiny(60))) }

func TestF2(t *testing.T) {
	if testing.Short() {
		t.Skip("full spec matrix is slow")
	}
	requireReproduced(t, Fig2SpecMatrix(tiny(40)))
}

func TestX1(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow")
	}
	requireReproduced(t, X1Exhaustive(tiny(1)))
}

func TestExperimentOutputIsMarkdown(t *testing.T) {
	var b strings.Builder
	cfg := tiny(30)
	cfg.Out = &b
	Fig1MP(cfg)
	out := b.String()
	if !strings.Contains(out, "## F1") || !strings.Contains(out, "| queue |") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Name: "x", OK: true, Detail: "d"}
	if got := s.String(); !strings.Contains(got, "REPRODUCED") {
		t.Fatalf("got %q", got)
	}
	s.OK = false
	if got := s.String(); !strings.Contains(got, "MISMATCH") {
		t.Fatalf("got %q", got)
	}
}

func TestCellRendering(t *testing.T) {
	// covered indirectly; ensure helpers exist for the levels table.
	if len(levelNames) != 4 {
		t.Fatalf("levelNames = %d", len(levelNames))
	}
}
