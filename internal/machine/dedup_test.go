package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// outcomeSet runs an exhaustive exploration and returns the multiset-free
// outcome set (sorted rendered outcomes of OK runs), the per-status run
// counts, and the exploration result.
func dedupExplore(t *testing.T, build func() Program, opts ExploreOpts) (map[string]bool, map[Status]int, ExploreResult) {
	t.Helper()
	outcomes := map[string]bool{}
	statuses := map[Status]int{}
	res := Explore(build, opts, func(r *Result) bool {
		statuses[r.Status]++
		if r.Status == OK {
			outcomes[renderOutcome(r.Outcome)] = true
		}
		return true
	})
	if !res.Complete {
		t.Fatalf("exploration incomplete (%d runs)", res.Runs)
	}
	return outcomes, statuses, res
}

func renderOutcome(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, m[k])
	}
	return b.String()
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// buildMP is a message-passing shape with more convergence than SB: two
// independent writers into disjoint locations plus a reader, so many
// interleavings reach identical states.
func buildMP() Program {
	var x, y, f view.Loc
	return Program{
		Name: "MPDedup",
		Setup: func(t *Thread) {
			x = t.Alloc("x", 0)
			y = t.Alloc("y", 0)
			f = t.Alloc("f", 0)
		},
		Workers: []func(*Thread){
			func(t *Thread) { t.Write(x, 1, memory.Rlx); t.Write(f, 1, memory.Rel) },
			func(t *Thread) { t.Write(y, 1, memory.Rlx) },
			func(t *Thread) {
				if t.Read(f, memory.Acq) == 1 {
					t.Report("r", t.Read(x, memory.Rlx))
				} else {
					t.Report("r", -1)
				}
			},
		},
	}
}

// TestDedupOutcomeEquivalence: dedup on must preserve the exact outcome
// set of dedup off in every POR mode, while never running more
// executions. This is the machine-level core of the golden equivalence
// criterion (the corpus-wide version lives in internal/check).
func TestDedupOutcomeEquivalence(t *testing.T) {
	for _, por := range []PORMode{POROff, PORSleep, PORSource} {
		for _, build := range []func() Program{buildSB, buildMP} {
			name := build().Name
			t.Run(fmt.Sprintf("%s/por=%s", name, por), func(t *testing.T) {
				base, _, baseRes := dedupExplore(t, build, ExploreOpts{POR: por})
				stats := telemetry.New()
				ded, statuses, dedRes := dedupExplore(t, build, ExploreOpts{POR: por, Dedup: NewDedup(0), Stats: stats})
				if !equalSets(base, ded) {
					t.Fatalf("outcome sets differ: off=%v on=%v", base, ded)
				}
				if dedRes.Runs > baseRes.Runs {
					t.Fatalf("dedup ran more executions: %d > %d", dedRes.Runs, baseRes.Runs)
				}
				if got := stats.Explore.DedupHits.Load(); got != int64(statuses[Deduped]) {
					t.Fatalf("telemetry hits %d != Deduped runs %d", got, statuses[Deduped])
				}
				if stats.Explore.DedupEvictions.Load() != 0 {
					t.Fatalf("unexpected evictions under default cap")
				}
			})
		}
	}
}

// TestDedupSerialParallelRunCounts: the visited-set hit pattern — and
// therefore the run count — must be identical whether the exploration
// runs sequentially or on many workers. Checked points are a
// deterministic function of each decision path and the claimed states
// are the reachable quotient states, both schedule-independent (absent
// eviction, which the default cap rules out at this size).
func TestDedupSerialParallelRunCounts(t *testing.T) {
	for _, por := range []PORMode{POROff, PORSleep, PORSource} {
		t.Run(fmt.Sprintf("por=%s", por), func(t *testing.T) {
			serialStats := telemetry.New()
			serialOut, serialStatuses, serialRes := dedupExplore(t, buildMP,
				ExploreOpts{POR: por, Dedup: NewDedup(0), Stats: serialStats})

			parStats := telemetry.New()
			parOutcomes := map[string]bool{}
			parStatuses := map[Status]int{}
			var mu = make(chan struct{}, 1)
			mu <- struct{}{}
			parRes := ExploreParallel(ExploreOpts{POR: por, Dedup: NewDedup(0), Stats: parStats, Workers: 4},
				func() (func() Program, func(*Result) bool) {
					return buildMP, func(r *Result) bool {
						<-mu
						parStatuses[r.Status]++
						if r.Status == OK {
							parOutcomes[renderOutcome(r.Outcome)] = true
						}
						mu <- struct{}{}
						return true
					}
				})
			if !parRes.Complete {
				t.Fatalf("parallel exploration incomplete")
			}
			if parRes.Runs != serialRes.Runs {
				t.Fatalf("run counts differ: serial=%d parallel=%d", serialRes.Runs, parRes.Runs)
			}
			if !equalSets(serialOut, parOutcomes) {
				t.Fatalf("outcome sets differ: serial=%v parallel=%v", serialOut, parOutcomes)
			}
			if serialStatuses[Deduped] != parStatuses[Deduped] {
				t.Fatalf("dedup cut counts differ: serial=%d parallel=%d",
					serialStatuses[Deduped], parStatuses[Deduped])
			}
			if s, p := serialStats.Explore.DedupStates.Load(), parStats.Explore.DedupStates.Load(); s != p {
				t.Fatalf("distinct state counts differ: serial=%d parallel=%d", s, p)
			}
		})
	}
}

// TestDedupPrunesRuns: dedup must actually cut something on a program
// with convergent prefixes, or the whole mechanism is dead weight.
func TestDedupPrunesRuns(t *testing.T) {
	_, _, base := dedupExplore(t, buildMP, ExploreOpts{})
	_, statuses, ded := dedupExplore(t, buildMP, ExploreOpts{Dedup: NewDedup(0)})
	if statuses[Deduped] == 0 {
		t.Fatalf("no runs deduped on a convergent program")
	}
	if ded.Runs >= base.Runs {
		t.Fatalf("dedup did not shrink runs: %d >= %d", ded.Runs, base.Runs)
	}
}

// TestDedupResumeRoundTrip: a paused exploration that serializes both
// frontier and visited set must finish with the same total run count and
// outcomes as an uninterrupted one — the property serve checkpoints
// depend on.
func TestDedupResumeRoundTrip(t *testing.T) {
	unOut, _, unRes := dedupExplore(t, buildMP, ExploreOpts{Dedup: NewDedup(0)})

	d := NewDedup(0)
	outcomes := map[string]bool{}
	total := 0
	visit := func(r *Result) bool {
		if r.Status == OK {
			outcomes[renderOutcome(r.Outcome)] = true
		}
		return true
	}
	newWorker := func() (func() Program, func(*Result) bool) { return buildMP, visit }
	res := ExploreParallel(ExploreOpts{Dedup: d, Workers: 1, PauseRuns: 3}, newWorker)
	total += res.Runs
	for !res.Complete {
		// Serialize and restore the visited set between segments, as a
		// checkpoint/restart would.
		blob, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		d2 := &Dedup{}
		if err := json.Unmarshal(blob, d2); err != nil {
			t.Fatal(err)
		}
		d = d2
		res = ExploreParallel(ExploreOpts{Dedup: d, Workers: 1, PauseRuns: 3, Resume: res.Frontier}, newWorker)
		total += res.Runs
	}
	if total != unRes.Runs {
		t.Fatalf("segmented total %d != uninterrupted %d", total, unRes.Runs)
	}
	if !equalSets(outcomes, unOut) {
		t.Fatalf("outcome sets differ: segmented=%v uninterrupted=%v", outcomes, unOut)
	}
}

// TestDedupJSONRoundTrip: marshal/unmarshal must preserve keys, order,
// and cap exactly.
func TestDedupJSONRoundTrip(t *testing.T) {
	d := NewDedup(8)
	for i := 0; i < 5; i++ {
		d.checkAndMark([]byte{byte(i)}, nil)
	}
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	d2 := &Dedup{}
	if err := json.Unmarshal(blob, d2); err != nil {
		t.Fatal(err)
	}
	if d2.Cap() != 8 || d2.Len() != 5 {
		t.Fatalf("round trip: cap=%d len=%d", d2.Cap(), d2.Len())
	}
	blob2, err := json.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", blob, blob2)
	}
	// Restored entries must still count as seen.
	for i := 0; i < 5; i++ {
		if !d2.checkAndMark([]byte{byte(i)}, nil) {
			t.Fatalf("restored set lost key %d", i)
		}
	}
}

// TestDedupEviction: the cap must hold and evictions must be counted.
func TestDedupEviction(t *testing.T) {
	stats := telemetry.New()
	d := NewDedup(2)
	d.checkAndMark([]byte{1}, stats) // miss: {1}
	d.checkAndMark([]byte{2}, stats) // miss: {2,1}
	d.checkAndMark([]byte{1}, stats) // hit, refreshes 1: {1,2}
	d.checkAndMark([]byte{3}, stats) // miss, evicts 2 (coldest): {3,1}
	if d.Len() != 2 {
		t.Fatalf("len %d after eviction, want 2", d.Len())
	}
	if got := stats.Explore.DedupEvictions.Load(); got != 1 {
		t.Fatalf("evictions %d, want 1", got)
	}
	if d.checkAndMark([]byte{2}, stats) { // miss, evicts 1: {2,3}
		t.Fatalf("evicted key still reported seen")
	}
	if !d.checkAndMark([]byte{3}, stats) {
		t.Fatalf("hot key lost")
	}
	if got, want := stats.Explore.DedupStates.Load(), int64(4); got != want {
		t.Fatalf("misses %d, want %d", got, want)
	}
	if got, want := stats.Explore.DedupHits.Load(), int64(2); got != want {
		t.Fatalf("hits %d, want %d", got, want)
	}
}
