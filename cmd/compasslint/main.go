// Command compasslint runs the compass static-analysis suite over the
// given packages (default ./...) and exits nonzero on any finding. It is
// part of `make check`; see DESIGN.md §9 for the invariants each pass
// mechanizes.
//
// Usage:
//
//	compasslint [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compass/internal/analyzers"
	"compass/internal/analyzers/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: compasslint [-list] [packages]\n\nRuns the compass analyzer suite (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range analyzers.Suite() {
			doc := e.Analyzer.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-12s %s\n", e.Analyzer.Name, doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "compasslint:", err)
		os.Exit(2)
	}
	diags, err := analyzers.Check(loader, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compasslint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "compasslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
