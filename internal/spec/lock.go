package spec

import (
	"compass/internal/core"
)

// CheckLock checks LockConsistent over a lock's event graph:
//
//   - LOCK-KINDS: only LockAcq/LockRel events.
//   - LOCK-ALTERNATION: the commit order strictly alternates acquire,
//     release, acquire, release, ... starting with an acquire — mutual
//     exclusion means two acquires never commit without a release in
//     between.
//   - LOCK-OWNER: each release is performed by the thread that performed
//     the preceding acquire.
//   - LOCK-SO: every acquire after the first is synchronized-with the
//     immediately preceding release (so edge), with the usual lhb and
//     view-transfer obligations (the critical section's effects are
//     published to the next holder).
func CheckLock(g *core.Graph) Result {
	res := Result{Level: LevelHB}
	checkLogviewCommitClosed(g, &res)
	checkSoImpliesLhbAndViews(g, &res)
	events := g.Events()
	_, consToProd := matchOf(g)
	for i, e := range events {
		switch e.Kind {
		case core.LockAcq:
			if i%2 != 0 {
				res.addf("LOCK-ALTERNATION", "commit #%d %v: expected a release", i, e)
			}
			if i == 0 {
				continue
			}
			prev := events[i-1]
			rel, ok := consToProd[e.ID]
			if !ok {
				res.addf("LOCK-SO", "%v acquired without synchronizing with a release", e)
			} else if prev.Kind == core.LockRel && rel != prev.ID {
				res.addf("LOCK-SO", "%v synchronized with %v, not the preceding release %v",
					e, g.Event(rel), prev)
			}
		case core.LockRel:
			if i%2 != 1 {
				res.addf("LOCK-ALTERNATION", "commit #%d %v: expected an acquire", i, e)
				continue
			}
			if prev := events[i-1]; prev.Kind == core.LockAcq && prev.Thread != e.Thread {
				res.addf("LOCK-OWNER", "%v released by thread %d but acquired by thread %d",
					e, e.Thread, prev.Thread)
			}
		default:
			res.addf("LOCK-KINDS", "foreign event %v in lock graph", e)
		}
	}
	return res
}
