package litmus

import (
	"encoding/json"
	"reflect"
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/telemetry"
)

// TestDedupEquivalence is the golden soundness gate for state-space
// deduplication, modeled on TestPOREquivalence: for every litmus test in
// the suite plus the footprint-rich workloads, in every POR mode,
// exhaustive exploration with a dedup visited set must produce the
// identical outcome set — and therefore the identical verdict — as
// exploration without one, while never exploring more runs. Evictions
// must not fire at these sizes (they would make run counts
// order-dependent).
func TestDedupEquivalence(t *testing.T) {
	tests := append(Suite(), FootprintSuite()...)
	for _, tc := range tests {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range []check.PORMode{check.POROff, check.PORSleep, check.PORSource} {
				plain := Run(tc, 0, WithWorkers(1), WithPORMode(mode))
				stats := telemetry.New()
				ded := Run(tc, 0, WithWorkers(1), WithPORMode(mode),
					WithDedup(machine.NewDedup(0)), WithStats(stats))
				if !plain.Complete || !ded.Complete {
					t.Fatalf("completeness diverged under %v: plain=%v dedup=%v", mode, plain.Complete, ded.Complete)
				}
				if got, want := outcomeKeySet(ded), outcomeKeySet(plain); !reflect.DeepEqual(got, want) {
					t.Errorf("outcome sets diverged under %v:\nwithout dedup: %v\nwith dedup:    %v", mode, want, got)
				}
				if plain.OK() != ded.OK() {
					t.Errorf("verdict diverged under %v: plain=%v dedup=%v", mode, plain.OK(), ded.OK())
				}
				if ded.Runs > plain.Runs {
					t.Errorf("dedup explored more runs (%d) than plain exploration (%d) under %v",
						ded.Runs, plain.Runs, mode)
				}
				if ev := stats.Explore.DedupEvictions.Load(); ev != 0 {
					t.Errorf("dedup evicted %d entries under %v; corpus must fit the default cap", ev, mode)
				}
			}
		})
	}
}

// TestLibraryDedupEquivalence extends the gate to the library refinement
// corpus under source-DPOR (the mode the golden corpus and the service
// default to): the cross-oracle verdict must be identical with and
// without dedup, with no more runs.
func TestLibraryDedupEquivalence(t *testing.T) {
	for _, lt := range LibrarySuite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			bare := RunLib(lt, 0, WithWorkers(1), WithPORMode(check.PORSource))
			ded := RunLib(lt, 0, WithWorkers(1), WithPORMode(check.PORSource),
				WithDedup(machine.NewDedup(0)))
			if got, want := ded.GoldenLine(), bare.GoldenLine(); got != want {
				t.Errorf("verdict diverged:\nwithout dedup: %s\nwith dedup:    %s", want, got)
			}
			if bare.OK() != ded.OK() {
				t.Errorf("OK diverged: bare=%v dedup=%v", bare.OK(), ded.OK())
			}
			if ded.Runs > bare.Runs {
				t.Errorf("dedup explored more runs (%d) than bare exploration (%d)", ded.Runs, bare.Runs)
			}
		})
	}
}

// TestDedupReductionBites pins the acceptance bar: dedup must actually
// shrink exploration somewhere on the core suite, or the mechanism is
// dead weight.
func TestDedupReductionBites(t *testing.T) {
	hits := 0
	for _, tc := range Suite() {
		plain := Run(tc, 0, WithWorkers(1))
		ded := Run(tc, 0, WithWorkers(1), WithDedup(machine.NewDedup(0)))
		if !reflect.DeepEqual(outcomeKeySet(plain), outcomeKeySet(ded)) {
			t.Fatalf("%s: outcome sets diverged", tc.Name)
		}
		if ded.Runs < plain.Runs {
			hits++
			t.Logf("%s: %d -> %d executions (%.1fx)", tc.Name, plain.Runs, ded.Runs,
				float64(plain.Runs)/float64(ded.Runs))
		}
	}
	if hits < 3 {
		t.Fatalf("only %d suite tests shrank under dedup, want >= 3", hits)
	}
}

// TestJobDedupResume: a litmus job whose JobState — frontier AND dedup
// visited set — round-trips through JSON between segments must finish
// with the same run count and outcome set as an uninterrupted dedup run.
// This is the property serve checkpoints of dedup jobs depend on.
func TestJobDedupResume(t *testing.T) {
	var tc Test
	for _, c := range Suite() {
		if c.Name == "SB" {
			tc = c
			break
		}
	}
	if tc.Name == "" {
		t.Fatal("SB not in suite")
	}
	whole := NewJob()
	whole.RunSegment(tc, 0, 0, WithWorkers(1), WithDedup(machine.NewDedup(0)))
	un := whole.Finish(tc)

	s := NewJob()
	s.Dedup = machine.NewDedup(0)
	for {
		done := s.RunSegment(tc, 0, 3, WithWorkers(1))
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		restored := &JobState{}
		if err := json.Unmarshal(blob, restored); err != nil {
			t.Fatal(err)
		}
		s = restored
		if done {
			break
		}
	}
	seg := s.Finish(tc)
	if seg.Runs != un.Runs {
		t.Fatalf("segmented runs %d != uninterrupted %d", seg.Runs, un.Runs)
	}
	if got, want := outcomeKeySet(seg), outcomeKeySet(un); !reflect.DeepEqual(got, want) {
		t.Fatalf("outcome sets diverged:\nsegmented:     %v\nuninterrupted: %v", got, want)
	}
	if seg.OK() != un.OK() {
		t.Fatalf("verdict diverged: segmented=%v uninterrupted=%v", seg.OK(), un.OK())
	}
}
