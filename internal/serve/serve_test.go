package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compass/internal/telemetry"
)

// baseline runs a spec to completion on an in-memory manager (no state
// dir, nothing to resume) and returns the terminal view.
func baseline(t *testing.T, spec JobSpec, workers int) JobView {
	t.Helper()
	m, err := NewManager(Config{Workers: workers})
	if err != nil {
		t.Fatalf("baseline manager: %v", err)
	}
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	m.Wait()
	return j.View()
}

// runSegmented runs a spec through repeated kill/resume cycles: submit on
// one manager that pauses after one segment (startPaused makes the kill
// point a deterministic segment boundary), then resume on a fresh manager
// (rotating the worker count) that also runs exactly one segment, until
// the job finishes. The job crosses managers once per segment.
func runSegmented(t *testing.T, dir string, spec JobSpec, every int, workerRotation []int) (JobView, int) {
	t.Helper()
	m, err := NewManager(Config{StateDir: dir, Workers: workerRotation[0], CheckpointEvery: every})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	m.startPaused = true
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := j.ID
	m.Shutdown()
	if v := j.View(); v.Status == StatusDone || v.Status == StatusFailed {
		return v, 1
	}
	for cycle := 1; ; cycle++ {
		if cycle > 10000 {
			t.Fatalf("job %s made no progress after %d cycles", id, cycle)
		}
		workers := workerRotation[cycle%len(workerRotation)]
		m, err := NewManager(Config{StateDir: dir, Workers: workers, CheckpointEvery: every})
		if err != nil {
			t.Fatalf("cycle %d manager: %v", cycle, err)
		}
		m.startPaused = true
		resumed, finished, errs := m.Resume()
		if len(errs) > 0 {
			t.Fatalf("cycle %d resume errors: %v", cycle, errs)
		}
		if resumed+finished != 1 {
			t.Fatalf("cycle %d: resumed %d finished %d jobs, want 1 total", cycle, resumed, finished)
		}
		rj, ok := m.Job(id)
		if !ok {
			t.Fatalf("cycle %d: job %s not found after resume", cycle, id)
		}
		if finished == 1 {
			return rj.View(), cycle
		}
		m.Shutdown()
		v := rj.View()
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v, cycle
		}
	}
}

func resultJSON(t *testing.T, v JobView) string {
	t.Helper()
	if v.Result == nil {
		t.Fatalf("job %s: terminal view has no result (status %s, err %q)", v.ID, v.Status, v.Error)
	}
	data, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(data)
}

// TestKillResumeLitmusMatrix is the resume-invariant matrix: a litmus job
// killed at every segment boundary and resumed on alternating worker
// counts must produce the byte-identical outcome histogram, run count,
// and Complete verdict of an uninterrupted run — under each POR mode.
func TestKillResumeLitmusMatrix(t *testing.T) {
	for _, por := range []string{"off", "sleep", "source"} {
		por := por
		t.Run(por, func(t *testing.T) {
			t.Parallel()
			spec := JobSpec{Workload: "litmus/SB", POR: por}
			want := baseline(t, spec, 2)
			// Source DPOR prunes SB to a handful of runs; shrink the
			// segment so even the reduced tree spans several resumes.
			every := 5
			if por == "source" {
				every = 1
			}
			got, cycles := runSegmented(t, t.TempDir(), spec, every, []int{1, 4})
			if cycles < 3 {
				t.Fatalf("job finished in %d cycles; segment size too large to exercise resume", cycles)
			}
			if got.Status != StatusDone {
				t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
			}
			if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
				t.Errorf("segmented result diverged from uninterrupted run\n got: %s\nwant: %s", g, w)
			}
			if !got.Result.Complete {
				t.Errorf("segmented run not Complete")
			}
			if got.Runs != want.Runs {
				t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
			}
		})
	}
}

// TestKillResumeExhaustiveLib runs a library workload exhaustively with
// the refinement oracle across kill/resume cycles and checks the full
// report (counts, completeness, failures) matches an uninterrupted run.
// The job must run to a Complete enumeration: a MaxRuns-truncated
// exhaustive run explores an order-dependent subset of the tree, so
// only the full leaf set is comparable across worker counts.
func TestKillResumeExhaustiveLib(t *testing.T) {
	t.Parallel()
	spec := JobSpec{Workload: "lib/msqueue", Mode: ModeExhaustive, POR: "source", Refine: true}
	want := baseline(t, spec, 2)
	got, cycles := runSegmented(t, t.TempDir(), spec, 500, []int{1, 4})
	if cycles < 3 {
		t.Fatalf("job finished in %d cycles; segment size too large to exercise resume", cycles)
	}
	if got.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
	}
	if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
		t.Errorf("segmented result diverged from uninterrupted run\n got: %s\nwant: %s", g, w)
	}
	if !got.Result.Complete {
		t.Error("exhaustive lib job did not reach a Complete enumeration")
	}
}

// TestKillResumeRandomLib checks the random-mode identity: execution i
// always uses Seed+i, so a job segmented across kills samples exactly the
// same executions as an uninterrupted one.
func TestKillResumeRandomLib(t *testing.T) {
	t.Parallel()
	spec := JobSpec{Workload: "lib/msqueue", Mode: ModeRandom, Executions: 40, Seed: 7}
	want := baseline(t, spec, 2)
	got, cycles := runSegmented(t, t.TempDir(), spec, 6, []int{1, 4})
	if cycles < 3 {
		t.Fatalf("job finished in %d cycles; segment size too large to exercise resume", cycles)
	}
	if got.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
	}
	if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
		t.Errorf("segmented result diverged from uninterrupted run\n got: %s\nwant: %s", g, w)
	}
	if got.Runs != 40 {
		t.Errorf("runs = %d, want 40", got.Runs)
	}
}

// TestResumeTelemetryContinuity: the resumed job's telemetry continues
// the writer's monotone stream — the final checkpoint's cumulative
// counters equal an uninterrupted run's, not just the final segment's.
func TestResumeTelemetryContinuity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := JobSpec{Workload: "litmus/SB", POR: "sleep"}

	mBase, err := NewManager(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	jBase, err := mBase.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	mBase.Wait()
	base := jBase.stats.Snapshot()

	got, _ := runSegmented(t, dir, spec, 5, []int{1, 4})
	if got.Status != StatusDone {
		t.Fatalf("status %s, want done", got.Status)
	}
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := st.Load(got.ID)
	if err != nil {
		t.Fatalf("load final checkpoint: %v", err)
	}
	if cp.Telemetry == nil {
		t.Fatal("final checkpoint has no telemetry snapshot")
	}
	if cp.Telemetry.Machine.Execs != base.Machine.Execs {
		t.Errorf("telemetry execs %d != uninterrupted %d: stream did not survive resume",
			cp.Telemetry.Machine.Execs, base.Machine.Execs)
	}
	if cp.Telemetry.Machine.Steps != base.Machine.Steps {
		t.Errorf("telemetry steps %d != uninterrupted %d", cp.Telemetry.Machine.Steps, base.Machine.Steps)
	}
	data, err := json.Marshal(cp.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateSnapshotJSON(data); err != nil {
		t.Errorf("final snapshot invalid: %v (%s)", err, data)
	}
}

// TestStoreRefusesStaleAndTorn covers every refusal path of the
// checkpoint store: format-version drift, a tampered spec, torn JSON,
// and leftover temp files from a kill mid-write.
func TestStoreRefusesStaleAndTorn(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, _, err := JobSpec{Workload: "litmus/SB"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{JobID: "job-a", Spec: spec, Runs: 3, Engine: json.RawMessage(`{"runs":3,"outcomes":{}}`)}
	if _, err := st.Save(cp); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := st.Load("job-a"); err != nil {
		t.Fatalf("load freshly saved: %v", err)
	}

	tamper := func(name string, mutate func(map[string]interface{})) {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "job-a.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]interface{}
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), out, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Version drift.
	tamper("job-version", func(m map[string]interface{}) {
		m["version"] = CheckpointVersion + 1
		m["job_id"] = "job-version"
	})
	if _, err := st.Load("job-version"); err == nil || !strings.Contains(err.Error(), "stale format version") {
		t.Errorf("version drift: err = %v, want stale format version", err)
	}

	// Tampered spec: recorded hash no longer matches.
	tamper("job-spec", func(m map[string]interface{}) {
		m["job_id"] = "job-spec"
		sp := m["spec"].(map[string]interface{})
		sp["workload"] = "litmus/LB"
	})
	if _, err := st.Load("job-spec"); err == nil || !strings.Contains(err.Error(), "stale spec hash") {
		t.Errorf("tampered spec: err = %v, want stale spec hash", err)
	}

	// Torn file: truncated JSON.
	data, err := os.ReadFile(filepath.Join(dir, "job-a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-torn.json"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("job-torn"); err == nil || !strings.Contains(err.Error(), "torn or corrupt") {
		t.Errorf("torn file: err = %v, want torn or corrupt", err)
	}

	// A kill mid-write leaves only a .tmp file; List must ignore it.
	if err := os.WriteFile(filepath.Join(dir, "job-midwrite.json.tmp"), data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if strings.Contains(id, "midwrite") {
			t.Errorf("List surfaced temp file: %v", ids)
		}
	}

	// Resume must skip (and report) every bad checkpoint without
	// touching the good one.
	m, err := NewManager(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resumed, finished, errs := m.Resume()
	if resumed != 1 || finished != 0 {
		t.Errorf("resumed %d finished %d, want 1/0", resumed, finished)
	}
	if len(errs) != 3 {
		t.Errorf("resume reported %d errors, want 3 (version, spec, torn): %v", len(errs), errs)
	}
	m.Wait()
	j, ok := m.Job("job-a")
	if !ok {
		t.Fatal("good checkpoint not resumed")
	}
	if v := j.View(); v.Status != StatusDone {
		t.Errorf("resumed job status %s (err %q), want done", v.Status, v.Error)
	}
}

// TestSubmitValidation exercises spec normalization failures.
func TestSubmitValidation(t *testing.T) {
	t.Parallel()
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []JobSpec{
		{Workload: "no/such"},
		{Workload: "litmus/SB", Mode: "random"},
		{Workload: "litmus/SB", Mode: "banana"},
		{Workload: "lib/msqueue", POR: "banana"},
	}
	for _, sp := range cases {
		if _, err := m.Submit(sp); err == nil {
			t.Errorf("Submit(%+v) succeeded, want error", sp)
		}
	}
}

// TestWorkloadRegistry sanity-checks the registry the daemon exposes.
func TestWorkloadRegistry(t *testing.T) {
	t.Parallel()
	names := WorkloadNames()
	if len(names) == 0 {
		t.Fatal("empty workload registry")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate workload %q", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "litmus/") && !strings.HasPrefix(n, "lib/") {
			t.Errorf("workload %q outside litmus// lib/ namespaces", n)
		}
	}
	for _, want := range []string{"litmus/SB", "litmus/IRIW", "lib/msqueue", "lib/lock"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

// TestSpecHashIgnoresScheduling: worker count and segment size are
// non-semantic, so re-sharding must not invalidate a checkpoint.
func TestSpecHashIgnoresScheduling(t *testing.T) {
	t.Parallel()
	a := JobSpec{Workload: "litmus/SB", POR: "sleep", Workers: 1, CheckpointEvery: 10}
	b := JobSpec{Workload: "litmus/SB", POR: "sleep", Workers: 8, CheckpointEvery: 999}
	if a.Hash() != b.Hash() {
		t.Error("hash depends on scheduling knobs")
	}
	c := JobSpec{Workload: "litmus/SB", POR: "source"}
	if a.Hash() == c.Hash() {
		t.Error("hash ignores semantic field POR")
	}
	// Sharding knobs are scheduling too: a checkpoint taken by a
	// coordinator must resume under different lease sizing or none.
	d := JobSpec{Workload: "litmus/SB", POR: "sleep",
		Coordinator: true, LeaseTTLMillis: 5000, LeasePrefixes: 4}
	if a.Hash() != d.Hash() {
		t.Error("hash depends on sharding knobs")
	}
	// Dedup changes the execution count the checkpoint carries: semantic.
	e := JobSpec{Workload: "litmus/SB", POR: "sleep", Dedup: true}
	if a.Hash() == e.Hash() {
		t.Error("hash ignores semantic field Dedup")
	}
	f := JobSpec{Workload: "litmus/SB", POR: "sleep", Dedup: true, DedupCap: 64}
	if e.Hash() == f.Hash() {
		t.Error("hash ignores semantic field DedupCap")
	}
}
