package view

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genView builds a View from a compact description usable by testing/quick.
type viewDesc []uint8

func (viewDesc) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(8)
	d := make(viewDesc, n)
	for i := range d {
		d[i] = uint8(r.Intn(6)) // timestamp 0..5 for location i
	}
	return reflect.ValueOf(d)
}

func (d viewDesc) view() View {
	v := New()
	for l, t := range d {
		if t > 0 {
			v.Set(Loc(l), Time(t))
		}
	}
	return v
}

type logDesc []bool

func (logDesc) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(10)
	d := make(logDesc, n)
	for i := range d {
		d[i] = r.Intn(2) == 0
	}
	return reflect.ValueOf(d)
}

func (d logDesc) log() LogView {
	lv := NewLog()
	for e, in := range d {
		if in {
			lv.Add(EventID(e))
		}
	}
	return lv
}

func TestViewBasics(t *testing.T) {
	v := New()
	if v.Get(3) != 0 {
		t.Fatalf("empty view Get = %d, want 0", v.Get(3))
	}
	v.Set(3, 7)
	if got := v.Get(3); got != 7 {
		t.Fatalf("Get after Set = %d, want 7", got)
	}
	v.Set(3, 5) // must not go backwards
	if got := v.Get(3); got != 7 {
		t.Fatalf("Set must keep maximum; Get = %d, want 7", got)
	}
	v.Set(3, 9)
	if got := v.Get(3); got != 9 {
		t.Fatalf("Get after larger Set = %d, want 9", got)
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d, want 1", v.Len())
	}
}

func TestViewCloneIndependence(t *testing.T) {
	v := New()
	v.Set(1, 2)
	c := v.Clone()
	c.Set(1, 10)
	c.Set(2, 1)
	if v.Get(1) != 2 || v.Get(2) != 0 {
		t.Fatalf("Clone is not independent: v = %v", v)
	}
}

func TestViewJoinIsLub(t *testing.T) {
	f := func(a, b viewDesc) bool {
		va, vb := a.view(), b.view()
		j := va.Join(vb)
		// upper bound
		if !va.Leq(j) || !vb.Leq(j) {
			return false
		}
		// least: j(l) is max of the two everywhere we can probe
		for l := Loc(0); l < 10; l++ {
			m := va.Get(l)
			if vb.Get(l) > m {
				m = vb.Get(l)
			}
			if j.Get(l) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewJoinCommutativeAssociativeIdempotent(t *testing.T) {
	comm := func(a, b viewDesc) bool {
		return a.view().Join(b.view()).Equal(b.view().Join(a.view()))
	}
	assoc := func(a, b, c viewDesc) bool {
		va, vb, vc := a.view(), b.view(), c.view()
		return va.Join(vb).Join(vc).Equal(va.Join(vb.Join(vc)))
	}
	idem := func(a viewDesc) bool {
		v := a.view()
		return v.Join(v).Equal(v)
	}
	for name, f := range map[string]interface{}{"comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestViewLeqPartialOrder(t *testing.T) {
	refl := func(a viewDesc) bool { v := a.view(); return v.Leq(v) }
	antisym := func(a, b viewDesc) bool {
		va, vb := a.view(), b.view()
		if va.Leq(vb) && vb.Leq(va) {
			return va.Equal(vb)
		}
		return true
	}
	trans := func(a, b, c viewDesc) bool {
		va, vb, vc := a.view(), b.view(), c.view()
		if va.Leq(vb) && vb.Leq(vc) {
			return va.Leq(vc)
		}
		return true
	}
	for name, f := range map[string]interface{}{"refl": refl, "antisym": antisym, "trans": trans} {
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestViewBottom(t *testing.T) {
	f := func(a viewDesc) bool {
		v := a.view()
		bot := New()
		return bot.Leq(v) && v.Join(bot).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogViewBasics(t *testing.T) {
	lv := NewLog()
	if lv.Has(0) || lv.Len() != 0 {
		t.Fatal("fresh logview must be empty")
	}
	lv.Add(4)
	lv.Add(4)
	lv.Add(1)
	if !lv.Has(4) || !lv.Has(1) || lv.Has(2) {
		t.Fatalf("membership wrong: %v", lv)
	}
	if lv.Len() != 2 {
		t.Fatalf("Len = %d, want 2", lv.Len())
	}
	if es := lv.Events(); len(es) != 2 || es[0] != 1 || es[1] != 4 {
		t.Fatalf("Events = %v, want [1 4]", es)
	}
}

func TestLogViewJoinLattice(t *testing.T) {
	ub := func(a, b logDesc) bool {
		la, lb := a.log(), b.log()
		j := la.Join(lb)
		return la.Subset(j) && lb.Subset(j) && j.Len() <= la.Len()+lb.Len()
	}
	comm := func(a, b logDesc) bool {
		return a.log().Join(b.log()).Equal(b.log().Join(a.log()))
	}
	assoc := func(a, b, c logDesc) bool {
		la, lb, lc := a.log(), b.log(), c.log()
		return la.Join(lb).Join(lc).Equal(la.Join(lb.Join(lc)))
	}
	idem := func(a logDesc) bool { l := a.log(); return l.Join(l).Equal(l) }
	for name, f := range map[string]interface{}{"ub": ub, "comm": comm, "assoc": assoc, "idem": idem} {
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLogViewSubsetOrder(t *testing.T) {
	trans := func(a, b, c logDesc) bool {
		la, lb, lc := a.log(), b.log(), c.log()
		if la.Subset(lb) && lb.Subset(lc) {
			return la.Subset(lc)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogViewCloneIndependence(t *testing.T) {
	a := NewLog()
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Fatal("Clone is not independent")
	}
}

func TestClockJoinBothComponents(t *testing.T) {
	f := func(av, bv viewDesc, al, bl logDesc) bool {
		a := Clock{V: av.view(), L: al.log()}
		b := Clock{V: bv.view(), L: bl.log()}
		j := a.Join(b)
		return a.Leq(j) && b.Leq(j) &&
			j.V.Equal(a.V.Join(b.V)) && j.L.Equal(a.L.Join(b.L))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockJoinIntoMutatesReceiverOnly(t *testing.T) {
	a := NewClock()
	a.V.Set(0, 1)
	a.L.Add(0)
	b := NewClock()
	b.V.Set(1, 2)
	b.L.Add(1)
	a.JoinInto(b)
	if !a.L.Has(1) || a.V.Get(1) != 2 {
		t.Fatalf("JoinInto missed components: %v", a)
	}
	if b.L.Has(0) || b.V.Get(0) != 0 {
		t.Fatalf("JoinInto mutated argument: %v", b)
	}
}

func TestStringRendering(t *testing.T) {
	v := New()
	v.Set(2, 3)
	v.Set(0, 1)
	if got, want := v.String(), "{l0@1, l2@3}"; got != want {
		t.Fatalf("View.String = %q, want %q", got, want)
	}
	lv := NewLog()
	lv.Add(5)
	lv.Add(2)
	if got, want := lv.String(), "{e2, e5}"; got != want {
		t.Fatalf("LogView.String = %q, want %q", got, want)
	}
}
