package stack

import (
	"compass/internal/core"
	"compass/internal/lock"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// SCStack is the coarse-grained lock-based baseline: all operations run
// under a spin lock, so the commit order equals the critical-section order
// and the stack satisfies the strongest (SC) spec — an empty pop commits
// only on a truly empty abstract state.
type SCStack struct {
	lk   *lock.SpinLock
	buf  []view.Loc
	eids []view.Loc
	top  view.Loc // stack size (non-atomic, lock-protected)
	rec  *core.Recorder
}

// NewSC allocates a lock-based bounded stack; cap bounds the maximum
// concurrent depth.
func NewSC(th *machine.Thread, name string, cap int) *SCStack {
	s := &SCStack{
		lk:  lock.New(th, name+".lock"),
		top: th.Alloc(name+".top", 0),
		rec: core.NewRecorder(name),
	}
	s.buf = make([]view.Loc, cap)
	s.eids = make([]view.Loc, cap)
	for i := 0; i < cap; i++ {
		s.buf[i] = th.Alloc(name+".buf", 0)
		s.eids[i] = th.Alloc(name+".eid", -1)
	}
	return s
}

// Recorder implements Stack.
func (s *SCStack) Recorder() *core.Recorder { return s.rec }

// Push implements Stack.
//
//compass:loctrack-top buffer slot selected by a memory-held top index
func (s *SCStack) Push(th *machine.Thread, v int64) {
	s.lk.Lock(th)
	t := th.Read(s.top, memory.NA)
	if int(t) >= len(s.buf) {
		th.Failf("scstack: capacity %d exceeded", len(s.buf))
	}
	id := s.rec.Begin(th, core.Push, v)
	th.Write(s.buf[t], v, memory.NA)
	th.Write(s.eids[t], int64(id), memory.NA)
	s.rec.Arm(th, id)
	th.Write(s.top, t+1, memory.NA) // commit point: the top bump
	s.rec.Commit(th, id)
	s.lk.Unlock(th)
}

// Pop implements Stack. Under the lock, emptiness is exact.
//
//compass:loctrack-top buffer slot selected by a memory-held top index
func (s *SCStack) Pop(th *machine.Thread) (int64, bool) {
	s.lk.Lock(th)
	t := th.Read(s.top, memory.NA)
	if t == 0 {
		s.rec.CommitNew(th, core.EmpPop, 0)
		s.lk.Unlock(th)
		return 0, false
	}
	v := th.Read(s.buf[t-1], memory.NA)
	eid := th.Read(s.eids[t-1], memory.NA)
	th.Write(s.top, t-1, memory.NA) // commit point: the top bump
	d := s.rec.CommitNew(th, core.Pop, v)
	s.rec.AddSo(view.EventID(eid), d)
	s.lk.Unlock(th)
	return v, true
}
