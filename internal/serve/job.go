package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"compass/internal/telemetry"
)

// DefaultCheckpointEvery is the default segment size: executions between
// checkpoint opportunities.
const DefaultCheckpointEvery = 2000

// Config configures a Manager.
type Config struct {
	// StateDir is the checkpoint directory; "" runs jobs in memory only
	// (no checkpoints, nothing to resume).
	StateDir string
	// Workers is the default per-job exploration worker count (0 =
	// GOMAXPROCS); a job's spec overrides it.
	Workers int
	// CheckpointEvery is the default segment size (0 =
	// DefaultCheckpointEvery); a job's spec overrides it.
	CheckpointEvery int
	// Stats receives the service-level job/checkpoint counters (nil
	// allocates a private sink, exposed on /stats).
	Stats *telemetry.Stats
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// ErrShuttingDown refuses a submission that races Shutdown: the drain
// has begun, so a job accepted now could neither run nor checkpoint.
var ErrShuttingDown = errors.New("manager is shutting down")

// Manager owns the job table: submission, execution, checkpointing, and
// resume.
type Manager struct {
	cfg   Config
	store *Store
	stats *telemetry.Stats

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool
	wg       sync.WaitGroup

	// startPaused pre-stops every started job so it pauses after exactly
	// one segment. Test-only: makes kill/resume cycles deterministic
	// instead of racing Shutdown against fast jobs.
	startPaused bool
}

// NewManager builds a manager; with a StateDir it opens (creating if
// needed) the checkpoint store but does not resume — call Resume.
func NewManager(cfg Config) (*Manager, error) {
	m := &Manager{cfg: cfg, stats: cfg.Stats, jobs: map[string]*Job{}}
	if m.stats == nil {
		m.stats = telemetry.New()
	}
	if cfg.StateDir != "" {
		st, err := NewStore(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		m.store = st
	}
	return m, nil
}

// Stats returns the service-level telemetry sink.
func (m *Manager) Stats() *telemetry.Stats { return m.stats }

// Job is one submitted verification job.
type Job struct {
	ID   string
	Spec JobSpec

	m     *Manager
	eng   engine
	stats *telemetry.Stats
	done  chan struct{}
	stop  atomic.Bool

	// shard is the lease table of a coordinator job (nil otherwise).
	// shardMu guards it together with every engine access and checkpoint
	// in the sharding phase, and is always acquired before mu.
	shardMu sync.Mutex
	shard   *shardState

	mu     sync.Mutex
	status JobStatus
	runs   int
	err    error
	result *JobResult
	subs   map[chan telemetry.Snapshot]struct{}
}

// JobView is the status snapshot rendered on the API.
type JobView struct {
	ID     string     `json:"id"`
	Spec   JobSpec    `json:"spec"`
	Status JobStatus  `json:"status"`
	Runs   int        `json:"runs"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
	// Shard summarizes a coordinator job's lease table.
	Shard *ShardView `json:"shard,omitempty"`
}

// View renders the job's current status.
func (j *Job) View() JobView {
	var sv *ShardView
	if j.shard != nil {
		j.shardMu.Lock()
		sv = j.shard.viewLocked()
		j.shardMu.Unlock()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, Spec: j.Spec, Status: j.status, Runs: j.runs, Result: j.result, Shard: sv}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe registers an event listener: one telemetry snapshot per
// completed segment (buffered; a slow listener drops intermediate
// snapshots, never blocks the job). cancel unregisters.
func (j *Job) Subscribe() (ch <-chan telemetry.Snapshot, cancel func()) {
	c := make(chan telemetry.Snapshot, 16)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = map[chan telemetry.Snapshot]struct{}{}
	}
	j.subs[c] = struct{}{}
	terminal := j.status == StatusDone || j.status == StatusFailed
	j.mu.Unlock()
	if terminal {
		// Deliver one final snapshot so late subscribers still observe
		// the job's totals before the stream closes.
		c <- j.stats.Snapshot()
		close(c)
		return c, func() {}
	}
	return c, func() {
		j.mu.Lock()
		if _, ok := j.subs[c]; ok {
			delete(j.subs, c)
			close(c)
		}
		j.mu.Unlock()
	}
}

func (j *Job) broadcast(snap telemetry.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := range j.subs {
		select {
		case c <- snap:
		default:
		}
	}
}

// closeSubs closes every listener after the final snapshot delivery.
func (j *Job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := range j.subs {
		close(c)
		delete(j.subs, c)
	}
}

// newJobID derives a filename-safe unique ID from the workload name.
func newJobID(workload string) string {
	var b strings.Builder
	for _, r := range workload {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	var suffix [6]byte
	if _, err := rand.Read(suffix[:]); err != nil {
		panic(fmt.Sprintf("serve: job id entropy: %v", err))
	}
	return b.String() + "-" + hex.EncodeToString(suffix[:])
}

// Submit validates the spec, registers the job, and starts running it.
//
//compass:accounting
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	spec, w, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if spec.Workers == 0 {
		spec.Workers = m.cfg.Workers
	}
	stats := telemetry.New()
	eng, err := newEngine(spec, w, stats, nil)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:     newJobID(spec.Workload),
		Spec:   spec,
		m:      m,
		eng:    eng,
		stats:  stats,
		done:   make(chan struct{}),
		status: StatusRunning,
		runs:   eng.runs(),
	}
	if spec.Coordinator {
		j.shard = newShardState(spec)
	}
	if err := m.register(j); err != nil {
		return nil, err
	}
	m.stats.JobSubmitted()
	m.start(j)
	return j, nil
}

// start launches the job's segment loop under the manager's wait group.
func (m *Manager) start(j *Job) {
	if m.startPaused {
		j.stop.Store(true)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		j.run()
	}()
}

// register inserts the job into the table, refusing it when the manager
// is draining: a job registered after Shutdown began would be invisible
// to the drain's stop sweep and keep running past it.
func (m *Manager) register(j *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return ErrShuttingDown
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	return nil
}

// Job looks up a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// JobViews renders all jobs in submission order (resumed jobs first, in
// checkpoint-store order).
func (m *Manager) JobViews() []JobView {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.Job(id); ok {
			views = append(views, j.View())
		}
	}
	return views
}

// Shutdown pauses every running job at its next segment boundary — the
// last committed checkpoint is then the exact resumable state — and
// waits for the segment loops to exit. Jobs keep their "running" status;
// a restarted daemon resumes them. With no state dir the paused progress
// is simply lost (there is nowhere to resume from). Submissions racing
// the drain are refused with ErrShuttingDown — a job slipping in after
// the stop sweep would run past the drain unsupervised.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.draining = true
	for _, j := range m.jobs {
		j.stop.Store(true)
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Wait blocks until every currently-registered job is terminal.
func (m *Manager) Wait() {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		<-j.Done()
	}
}

// checkpointEvery resolves the job's segment size.
func (j *Job) checkpointEvery() int {
	if j.Spec.CheckpointEvery > 0 {
		return j.Spec.CheckpointEvery
	}
	if j.m.cfg.CheckpointEvery > 0 {
		return j.m.cfg.CheckpointEvery
	}
	return DefaultCheckpointEvery
}

// run is the job's segment loop: explore one segment, account it,
// checkpoint at the quiescent pause point, stream the telemetry
// snapshot, repeat until terminal. GOMAXPROCS-sharding happens inside
// the segment (machine.ExploreParallel fans the frontier across
// Spec.Workers goroutines); the loop itself is the only writer of the
// job's engine state, so pause points are true quiescence.
//
//compass:accounting
func (j *Job) run() {
	if j.shard != nil {
		j.runSharded()
		return
	}
	every := j.checkpointEvery()
	prev := j.eng.runs()
	for {
		done, segErr := j.eng.segment(every)
		runs := j.eng.runs()
		j.stats.SegmentDone(runs - prev)
		prev = runs

		var result *JobResult
		if done || segErr != nil {
			result = j.eng.result()
		}
		j.mu.Lock()
		j.runs = runs
		j.mu.Unlock()

		if err := j.checkpoint(done && segErr == nil, result, segErr); err != nil && segErr == nil {
			// A job that cannot persist its state must not keep burning
			// work it would repeat after a restart.
			segErr = err
			result = j.eng.result()
		}
		j.broadcast(j.stats.Snapshot())
		if segErr != nil {
			j.finalize(StatusFailed, result, segErr)
			return
		}
		if done {
			j.finalize(StatusDone, result, nil)
			return
		}
		if j.stop.Load() {
			// Graceful pause: the checkpoint above is the resumable
			// state; the job stays "running" for a future Resume.
			return
		}
	}
}

// checkpoint persists the current quiescent state (no-op without a
// store). For a coordinator job the caller holds shardMu, so the engine
// state and the lease table are captured together — a return merged
// after this snapshot cannot leak only half its effect into the file.
//
//compass:accounting
func (j *Job) checkpoint(done bool, result *JobResult, segErr error) error {
	if j.m.store == nil {
		return nil
	}
	state, err := j.eng.state()
	if err != nil {
		return fmt.Errorf("encode engine state: %w", err)
	}
	snap := j.stats.Snapshot()
	cp := &Checkpoint{
		JobID:     j.ID,
		Spec:      j.Spec,
		Runs:      j.eng.runs(),
		Done:      done,
		Engine:    state,
		Telemetry: &snap,
	}
	if j.shard != nil {
		cp.Shard = j.shard.checkpointLocked()
	}
	if done {
		cp.Result = result
	}
	if segErr != nil {
		cp.Error = segErr.Error()
	}
	n, err := j.m.store.Save(cp)
	if err != nil {
		return fmt.Errorf("write checkpoint: %w", err)
	}
	j.stats.CheckpointWritten(n)
	return nil
}

// finalize moves the job to a terminal state and wakes waiters.
//
//compass:accounting
func (j *Job) finalize(status JobStatus, result *JobResult, err error) {
	j.mu.Lock()
	j.status = status
	j.result = result
	j.err = err
	j.mu.Unlock()
	j.m.stats.JobDone(status == StatusFailed)
	j.closeSubs()
	close(j.done)
}

// Resume rebuilds jobs from the checkpoint store: finished jobs load as
// terminal records, unfinished jobs continue from their last quiescent
// state — on this manager's worker configuration, which may differ from
// the writer's. Stale or unreadable checkpoints are skipped and
// reported; they never crash the daemon or silently restart a job from
// scratch.
//
//compass:accounting
func (m *Manager) Resume() (resumed, finished int, errs []error) {
	if m.store == nil {
		return 0, 0, nil
	}
	ids, err := m.store.List()
	if err != nil {
		return 0, 0, []error{err}
	}
	for _, id := range ids {
		cp, err := m.store.Load(id)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		spec, w, err := cp.Spec.Normalize()
		if err != nil {
			errs = append(errs, fmt.Errorf("checkpoint %s: %w", id, err))
			continue
		}
		// Re-shard onto this server's configuration: worker count and
		// segment size are non-semantic (excluded from the spec hash).
		if m.cfg.Workers > 0 {
			spec.Workers = m.cfg.Workers
		}
		stats := telemetry.New()
		if cp.Telemetry != nil {
			restored, err := telemetry.Restore(*cp.Telemetry)
			if err != nil {
				errs = append(errs, fmt.Errorf("checkpoint %s: %w", id, err))
				continue
			}
			stats = restored
		}
		eng, err := newEngine(spec, w, stats, cp.Engine)
		if err != nil {
			errs = append(errs, fmt.Errorf("checkpoint %s: %w", id, err))
			continue
		}
		j := &Job{
			ID:     id,
			Spec:   spec,
			m:      m,
			eng:    eng,
			stats:  stats,
			done:   make(chan struct{}),
			status: StatusRunning,
			runs:   eng.runs(),
		}
		if spec.Coordinator {
			if cp.Shard != nil {
				// Bump the epoch and reclaim every outstanding lease: the
				// crashed coordinator may have granted work it never saw
				// returned, and any late return from the old epoch must
				// be refused rather than double-counted.
				sh, reclaimed := restoreShardState(spec, cp.Shard)
				j.shard = sh
				for i := 0; i < reclaimed; i++ {
					m.stats.LeaseReclaimed()
				}
			} else {
				j.shard = newShardState(spec)
			}
		}
		if err := m.register(j); err != nil {
			errs = append(errs, fmt.Errorf("checkpoint %s: %w", id, err))
			continue
		}
		if cp.Done {
			status := StatusDone
			var jerr error
			if cp.Error != "" {
				status = StatusFailed
				jerr = fmt.Errorf("%s", cp.Error)
			}
			result := cp.Result
			if result == nil {
				result = eng.result()
			}
			j.mu.Lock()
			j.status = status
			j.result = result
			j.err = jerr
			j.mu.Unlock()
			close(j.done)
			finished++
			continue
		}
		m.stats.JobResumed()
		resumed++
		m.start(j)
	}
	sort.Slice(errs, func(i, k int) bool { return errs[i].Error() < errs[k].Error() })
	return resumed, finished, errs
}
