package check

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/refine"
	"compass/internal/spec"
	"compass/internal/stack"
)

// StackFactory constructs a fresh stack (called in Setup).
type StackFactory func(th *machine.Thread) stack.Stack

// StackMixed is the general stack verification workload: pushers push
// unique positive values while poppers attempt pops (which may report
// empty); the final graph is checked at the given spec level.
func StackMixed(f StackFactory, level spec.Level, pushers, perPusher, poppers, attempts int) func() Checked {
	return func() Checked {
		var s stack.Stack
		workers := make([]func(*machine.Thread), 0, pushers+poppers)
		for p := 0; p < pushers; p++ {
			p := p
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < perPusher; i++ {
					s.Push(th, int64(1000*(p+1)+i+1))
				}
			})
		}
		for c := 0; c < poppers; c++ {
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < attempts; i++ {
					s.Pop(th)
				}
			})
		}
		return Checked{
			Prog: machine.Program{
				Name:    "stack-mixed",
				Setup:   func(th *machine.Thread) { s = f(th) },
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return Collect(spec.CheckStack(s.Recorder().Graph(), level))
			},
			Refine: refine.Checker(refine.Stack, func() *core.Graph { return s.Recorder().Graph() }),
		}
	}
}

// StackPingPong drives pairs of threads that both push and pop — the
// workload that exercises elimination (a push racing a pop can match on
// the exchanger instead of the base stack).
func StackPingPong(f StackFactory, level spec.Level, pairs, rounds int) func() Checked {
	return func() Checked {
		var s stack.Stack
		workers := make([]func(*machine.Thread), 0, 2*pairs)
		for p := 0; p < pairs; p++ {
			p := p
			workers = append(workers,
				func(th *machine.Thread) {
					for i := 0; i < rounds; i++ {
						s.Push(th, int64(1000*(p+1)+i+1))
					}
				},
				func(th *machine.Thread) {
					for i := 0; i < rounds; i++ {
						s.Pop(th)
					}
				})
		}
		return Checked{
			Prog: machine.Program{
				Name:    "stack-pingpong",
				Setup:   func(th *machine.Thread) { s = f(th) },
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return Collect(spec.CheckStack(s.Recorder().Graph(), level))
			},
			Refine: refine.Checker(refine.Stack, func() *core.Graph { return s.Recorder().Graph() }),
		}
	}
}

// ElimStackComposed runs the ping-pong workload on an elimination stack
// and checks all three graphs: the ElimStack's own graph at the given
// level, the base Treiber stack's graph, and the exchanger's graph — the
// compositional verification of §4.1 (the ES satisfies the same stack
// specs as its base, relying only on the components' specs).
func ElimStackComposed(level spec.Level, pairs, rounds int) func() Checked {
	return func() Checked {
		var s *stack.ElimStack
		workers := make([]func(*machine.Thread), 0, 2*pairs)
		for p := 0; p < pairs; p++ {
			p := p
			workers = append(workers,
				func(th *machine.Thread) {
					for i := 0; i < rounds; i++ {
						s.Push(th, int64(1000*(p+1)+i+1))
					}
				},
				func(th *machine.Thread) {
					for i := 0; i < rounds; i++ {
						s.Pop(th)
					}
				})
		}
		return Checked{
			Prog: machine.Program{
				Name:    "elimstack-composed",
				Setup:   func(th *machine.Thread) { s = stack.NewElim(th, "es") },
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return Collect(
					spec.CheckStack(s.Recorder().Graph(), level),
					spec.CheckStack(s.Base().Recorder().Graph(), spec.LevelHB),
					spec.CheckExchanger(s.Exchanger().Recorder().Graph()),
				)
			},
			// Refinement mirrors the compositional check: the ES graph must
			// refine a stack, and so must the base Treiber graph (eliminated
			// pairs never reach it); the exchanger graph must refine the
			// exchanger object.
			Refine: refine.Checkers(
				refine.Checker(refine.Stack, func() *core.Graph { return s.Recorder().Graph() }),
				refine.Checker(refine.Stack, func() *core.Graph { return s.Base().Recorder().Graph() }),
				refine.Checker(refine.Exchanger, func() *core.Graph { return s.Exchanger().Recorder().Graph() }),
			),
		}
	}
}
