// Facade tests: the public API surface exercised end to end, the way a
// downstream user would.
package compass_test

import (
	"strings"
	"testing"

	"compass"
)

func TestQuickstartFlow(t *testing.T) {
	var q compass.Queue
	prog := compass.Program{
		Setup: func(th *compass.Thread) { q = compass.NewMSQueue(th, "q") },
		Workers: []func(*compass.Thread){
			func(th *compass.Thread) {
				q.Enqueue(th, 41)
				q.Enqueue(th, 42)
			},
			func(th *compass.Thread) {
				for i := 0; i < 3; i++ {
					q.TryDequeue(th)
				}
			},
		},
	}
	res := (&compass.Runner{}).Run(prog, compass.NewRandomStrategy(7))
	if res.Status != compass.StatusOK {
		t.Fatalf("status %v: %v", res.Status, res.Err)
	}
	g := q.Recorder().Graph()
	if len(g.Events()) < 2 {
		t.Fatalf("graph too small: %s", g)
	}
	r := compass.CheckQueue(g, compass.LevelAbsHB)
	if !r.OK() {
		t.Fatalf("violations: %v", r.Violations)
	}
}

func TestAllLibraryConstructors(t *testing.T) {
	prog := compass.Program{
		Workers: []func(*compass.Thread){func(th *compass.Thread) {
			qs := []compass.Queue{
				compass.NewMSQueue(th, "ms"),
				compass.NewMSQueueFenced(th, "msf"),
				compass.NewHWQueue(th, "hw", 8),
				compass.NewSCQueue(th, "sc", 8),
			}
			for _, q := range qs {
				q.Enqueue(th, 5)
				if v, ok := q.TryDequeue(th); !ok || v != 5 {
					th.Failf("queue round trip = %d, %v", v, ok)
				}
			}
			ss := []compass.Stack{
				compass.NewTreiberStack(th, "trb"),
				compass.NewSCStack(th, "scs", 8),
				compass.NewElimStack(th, "es"),
			}
			for _, s := range ss {
				s.Push(th, 7)
				if v, ok := s.Pop(th); !ok || v != 7 {
					th.Failf("stack round trip = %d, %v", v, ok)
				}
			}
			d := compass.NewWorkStealingDeque(th, "wsq", 8)
			d.PushBottom(th, 9)
			if v, ok := d.TakeBottom(th); !ok || v != 9 {
				th.Failf("deque round trip = %d, %v", v, ok)
			}
			x := compass.NewExchanger(th, "x")
			if r := x.Exchange(th, 3, 1); r != compass.ExFail {
				th.Failf("lone exchange = %d", r)
			}
		}},
	}
	res := (&compass.Runner{}).Run(prog, compass.NewRandomStrategy(1))
	if res.Status != compass.StatusOK {
		t.Fatalf("status %v: %v", res.Status, res.Err)
	}
}

func TestRunCheckedAndClients(t *testing.T) {
	ms := func(th *compass.Thread) compass.Queue { return compass.NewMSQueue(th, "q") }
	for name, build := range map[string]func() compass.Checked{
		"mixed": compass.QueueMixedWorkload(ms, compass.LevelHB, 1, 2, 1, 2),
		"mp":    compass.MPQueueClient(ms, compass.LevelHB, true),
		"spsc":  compass.SPSCClient(ms, compass.LevelHB, 4),
	} {
		rep := compass.RunChecked(name, build, compass.CheckOptions{Executions: 50})
		if !rep.Passed() {
			t.Fatalf("%s: %s", name, rep)
		}
	}
}

func TestRunExhaustiveFacade(t *testing.T) {
	ms := func(th *compass.Thread) compass.Queue { return compass.NewMSQueue(th, "q") }
	rep := compass.RunExhaustive("tiny",
		compass.QueueMixedWorkload(ms, compass.LevelAbsHB, 1, 1, 1, 1), 100000, 2000)
	if !rep.Passed() || !rep.Complete {
		t.Fatalf("%s", rep)
	}
}

func TestLitmusFacade(t *testing.T) {
	suite := compass.LitmusSuite()
	if len(suite) < 8 {
		t.Fatalf("suite size = %d", len(suite))
	}
	res := compass.RunLitmus(suite[0], 400000)
	if !res.OK() {
		t.Fatalf("%s", res)
	}
	if !strings.Contains(res.String(), "PASS") {
		t.Fatalf("rendering: %s", res)
	}
}

func TestSeenFacade(t *testing.T) {
	var q compass.Queue
	prog := compass.Program{
		Setup: func(th *compass.Thread) { q = compass.NewMSQueue(th, "q") },
		Workers: []func(*compass.Thread){func(th *compass.Thread) {
			q.Enqueue(th, 1)
			if compass.Seen(th).Len() != 1 {
				th.Failf("Seen = %v", compass.Seen(th))
			}
		}},
	}
	res := (&compass.Runner{}).Run(prog, compass.NewRandomStrategy(1))
	if res.Status != compass.StatusOK {
		t.Fatalf("status %v: %v", res.Status, res.Err)
	}
}

func TestBuggyVariantsExported(t *testing.T) {
	f := func(th *compass.Thread) compass.Queue {
		return compass.NewMSQueueBuggyRelaxedLink(th, "q")
	}
	rep := compass.RunChecked("buggy",
		compass.QueueMixedWorkload(f, compass.LevelHB, 2, 3, 2, 4),
		compass.CheckOptions{Executions: 400, StaleBias: 0.6})
	if rep.Passed() {
		t.Fatal("the broken variant must be caught")
	}
}
