package refine_test

import (
	"strings"
	"testing"

	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/refine"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// accept asserts the graph refines lib's abstract object.
func accept(t *testing.T, lib refine.Library, g *core.Graph) {
	t.Helper()
	viols, unknown := refine.Check(lib, g, refine.Options{})
	if len(viols) != 0 || unknown != 0 {
		t.Fatalf("%s rejected: viols=%v unknown=%d\n%s", lib, viols, unknown, g)
	}
}

// reject asserts the refinement check fails with the given rule.
func reject(t *testing.T, lib refine.Library, g *core.Graph, rule string) {
	t.Helper()
	viols, unknown := refine.Check(lib, g, refine.Options{})
	if unknown != 0 {
		t.Fatalf("%s unknown on a small instance\n%s", lib, g)
	}
	if len(viols) == 0 {
		t.Fatalf("%s accepted a graph that must be rejected\n%s", lib, g)
	}
	for _, v := range viols {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("%s rejected with %v, want rule %s", lib, viols, rule)
}

// setThread reassigns an event's thread (the builder defaults to 0).
func setThread(g *core.Graph, id view.EventID, th int) {
	g.Event(id).Thread = th
}

func TestQueueFIFOAccepted(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0)
	d1 := b.Add(core.Deq, 1, 0, e1, e2)
	d2 := b.Add(core.Deq, 2, 0, d1)
	g := b.Graph()
	setThread(g, d1, 1)
	setThread(g, d2, 1)
	accept(t, refine.Queue, g)
}

func TestQueueFIFOViolationRejected(t *testing.T) {
	// Same-thread enqueues are po-ordered 1 then 2; the consumer (also
	// po-serial) claims to dequeue 2 first — no abstract FIFO trace
	// exists.
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0)
	d2 := b.Add(core.Deq, 2, 0, e1, e2)
	d1 := b.Add(core.Deq, 1, 0, d2)
	g := b.Graph()
	setThread(g, d2, 1)
	setThread(g, d1, 1)
	reject(t, refine.Queue, g, "REFINE-SIM")
}

func TestStaleEmptyDequeueAccepted(t *testing.T) {
	// The empty dequeue never observed the enqueue (different thread,
	// empty view): a legal stale-empty external step.
	b := core.NewGraphBuilder("q")
	b.Add(core.Enq, 1, 0)
	emp := b.Add(core.EmpDeq, 0, 0)
	g := b.Graph()
	setThread(g, emp, 1)
	accept(t, refine.Queue, g)
}

func TestKnownNonEmptyDequeueRejected(t *testing.T) {
	// The empty dequeue HAS the enqueue in its view and nobody consumes
	// the element: the observer knew the queue was non-empty.
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	emp := b.Add(core.EmpDeq, 0, 0, e1)
	g := b.Graph()
	setThread(g, emp, 1)
	reject(t, refine.Queue, g, "REFINE-SIM")
}

func TestBlindViewKilledByPoFloor(t *testing.T) {
	// A same-thread enqueue followed by an empty dequeue whose recorded
	// view is (dishonestly) empty: the po floor re-derives the thread's
	// own history, so stripping the view cannot blind the simulation —
	// the unit-level core of the blind-empty mutant kill.
	b := core.NewGraphBuilder("q")
	b.Add(core.Enq, 1, 0)
	b.Add(core.EmpDeq, 0, 0) // same thread, no recorded view
	reject(t, refine.Queue, b.Graph(), "REFINE-SIM")
}

func TestStackLIFOAccepted(t *testing.T) {
	b := core.NewGraphBuilder("s")
	p1 := b.Add(core.Push, 1, 0)
	p2 := b.Add(core.Push, 2, 0)
	q2 := b.Add(core.Pop, 2, 0, p1, p2)
	q1 := b.Add(core.Pop, 1, 0, q2)
	g := b.Graph()
	setThread(g, q2, 1)
	setThread(g, q1, 1)
	accept(t, refine.Stack, g)
}

func TestStackOrderViolationRejected(t *testing.T) {
	// Pops in FIFO order after observing both pushes: no abstract LIFO
	// trace exists.
	b := core.NewGraphBuilder("s")
	p1 := b.Add(core.Push, 1, 0)
	p2 := b.Add(core.Push, 2, 0)
	q1 := b.Add(core.Pop, 1, 0, p1, p2)
	q2 := b.Add(core.Pop, 2, 0, q1)
	g := b.Graph()
	setThread(g, q1, 1)
	setThread(g, q2, 1)
	reject(t, refine.Stack, g, "REFINE-SIM")
}

func TestDequeExistenceOnlyEmptyAccepted(t *testing.T) {
	// The thief observed the push, yet the element is still abstractly
	// present when the empty steal must fire (the owner's pop is forced
	// after it). DEQUE-EMP is existence-only — the element IS consumed —
	// so the deque accepts; the identical shape on the stack is rejected
	// (strict empty rule), demonstrating the per-library external-step
	// treatment.
	build := func(empKind, consKind core.Kind) *core.Graph {
		b := core.NewGraphBuilder("d")
		p := b.Add(core.Push, 100, 0)
		emp := b.Add(empKind, 0, 0, p)
		pop := b.Add(consKind, 100, 0, emp)
		g := b.Graph()
		setThread(g, emp, 1)
		setThread(g, pop, 0)
		return g
	}
	accept(t, refine.Deque, build(core.EmpSteal, core.Pop))
	reject(t, refine.Stack, build(core.EmpPop, core.Pop), "REFINE-SIM")
}

func TestDequeUnconsumedVisibleEmptyRejected(t *testing.T) {
	// Existence-only still has teeth: a visible element nobody ever
	// consumes refutes the empty observation.
	b := core.NewGraphBuilder("d")
	p := b.Add(core.Push, 100, 0)
	emp := b.Add(core.EmpSteal, 0, 0, p)
	g := b.Graph()
	setThread(g, emp, 1)
	reject(t, refine.Deque, g, "REFINE-SIM")
}

func TestDequeDoubleConsumptionRejected(t *testing.T) {
	// One push, two consumers (the no-SC-fence take/steal race): the
	// second consume finds no element.
	b := core.NewGraphBuilder("d")
	p := b.Add(core.Push, 100, 0)
	st := b.Add(core.Steal, 100, 0, p)
	pop := b.Add(core.Pop, 100, 0, p)
	g := b.Graph()
	setThread(g, st, 1)
	setThread(g, pop, 0)
	reject(t, refine.Deque, g, "REFINE-SIM")
}

func TestExchangerPairAccepted(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 1, 2)
	p := b.Add(core.Exchange, 2, 1, a) // observed the partner
	g := b.Graph()
	setThread(g, p, 1)
	accept(t, refine.Exchanger, g)
}

func TestExchangerUnpairedRejected(t *testing.T) {
	b := core.NewGraphBuilder("x")
	b.Add(core.Exchange, 1, 2) // claims success, no partner exists
	reject(t, refine.Exchanger, b.Graph(), "REFINE-MATCH")
}

func TestExchangerNoVisibilityRejected(t *testing.T) {
	// Crossed payloads but neither side observed the other: the match
	// transferred nothing and refines no atomic exchange.
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 1, 2)
	p := b.Add(core.Exchange, 2, 1)
	g := b.Graph()
	setThread(g, p, 1)
	_ = a
	reject(t, refine.Exchanger, g, "REFINE-SIM")
}

func TestExchangerFailedAlwaysAccepted(t *testing.T) {
	b := core.NewGraphBuilder("x")
	b.Add(core.Exchange, 1, core.ExFail)
	f2 := b.Add(core.Exchange, 2, core.ExFail)
	g := b.Graph()
	setThread(g, f2, 1)
	accept(t, refine.Exchanger, g)
}

func TestLockAlternationAccepted(t *testing.T) {
	b := core.NewGraphBuilder("l")
	a1 := b.Add(core.LockAcq, 0, 0)
	r1 := b.Add(core.LockRel, 0, 0, a1)
	a2 := b.Add(core.LockAcq, 0, 0, r1)
	r2 := b.Add(core.LockRel, 0, 0, a2)
	g := b.Graph()
	setThread(g, a2, 1)
	setThread(g, r2, 1)
	accept(t, refine.Lock, g)
}

func TestLockDoubleAcquireRejected(t *testing.T) {
	b := core.NewGraphBuilder("l")
	b.Add(core.LockAcq, 0, 0)
	a2 := b.Add(core.LockAcq, 0, 0)
	g := b.Graph()
	setThread(g, a2, 1)
	reject(t, refine.Lock, g, "REFINE-SIM")
}

func TestLockAcquireWithoutViewTransferRejected(t *testing.T) {
	// The second acquirer never observed the release: the critical
	// section's effects did not transfer.
	b := core.NewGraphBuilder("l")
	a1 := b.Add(core.LockAcq, 0, 0)
	b.Add(core.LockRel, 0, 0, a1)
	a2 := b.Add(core.LockAcq, 0, 0) // no view of r1
	g := b.Graph()
	setThread(g, a2, 1)
	reject(t, refine.Lock, g, "REFINE-SIM")
}

func TestForeignKindRejected(t *testing.T) {
	b := core.NewGraphBuilder("q")
	b.Add(core.Push, 1, 0) // a stack event in a queue graph
	reject(t, refine.Queue, b.Graph(), "REFINE-KINDS")
}

func TestOversizedInstanceUnknown(t *testing.T) {
	b := core.NewGraphBuilder("q")
	for i := 0; i < refine.DefaultMaxEvents+1; i++ {
		b.Add(core.Enq, int64(i+1), 0)
	}
	viols, unknown := refine.Check(refine.Queue, b.Graph(), refine.Options{})
	if len(viols) != 0 || unknown != 1 {
		t.Fatalf("viols=%v unknown=%d, want none/1", viols, unknown)
	}
	// An explicit larger bound decides the same instance.
	viols, unknown = refine.Check(refine.Queue, b.Graph(), refine.Options{MaxEvents: 40})
	if len(viols) != 0 || unknown != 0 {
		t.Fatalf("with raised bound: viols=%v unknown=%d", viols, unknown)
	}
}

func TestFanoutTelemetryRecorded(t *testing.T) {
	stats := telemetry.New()
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	b.Add(core.Deq, 1, 0, e1)
	if viols, _ := refine.Check(refine.Queue, b.Graph(), refine.Options{Stats: stats}); len(viols) != 0 {
		t.Fatalf("rejected: %v", viols)
	}
	if snap := stats.Snapshot(); snap.Refine.StateFanout.Count == 0 {
		t.Fatal("no fan-out samples recorded")
	}
}

func TestStreamCheckWindowAndSeriality(t *testing.T) {
	// Windows outside the stream and overlapping same-thread operations
	// must be flagged; the checker is a no-op without a recorded stream.
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0)
	g := b.Graph()
	b.SetSteps(e1, 0, 3)
	b.SetSteps(e2, 1, 2) // starts before e1 commits: same-thread overlap
	r := &machine.Result{Events: []machine.StepEvent{
		{Step: 1, Thread: 0}, {Step: 2, Thread: 0}, {Step: 3, Thread: 0},
	}}
	viols, _ := refine.CheckTrace(refine.Queue, g, r, refine.Options{})
	found := false
	for _, v := range viols {
		if v.Rule == "REFINE-STREAM" && strings.Contains(v.Detail, "overlap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("overlap not flagged: %v", viols)
	}

	b2 := core.NewGraphBuilder("q")
	e := b2.Add(core.Enq, 1, 0)
	b2.SetSteps(e, 0, 9) // commit beyond the 2-step stream
	r2 := &machine.Result{Events: []machine.StepEvent{{Thread: 0}, {Thread: 0}}}
	viols, _ = refine.CheckTrace(refine.Queue, b2.Graph(), r2, refine.Options{})
	found = false
	for _, v := range viols {
		if v.Rule == "REFINE-STREAM" && strings.Contains(v.Detail, "outside") {
			found = true
		}
	}
	if !found {
		t.Fatalf("out-of-stream window not flagged: %v", viols)
	}

	// Foreign-thread-only window: the operation's thread executed no
	// instruction inside its own span.
	b3 := core.NewGraphBuilder("q")
	e = b3.Add(core.Enq, 1, 0)
	b3.SetSteps(e, 0, 2)
	r3 := &machine.Result{Events: []machine.StepEvent{{Thread: 5}, {Thread: 5}}}
	viols, _ = refine.CheckTrace(refine.Queue, b3.Graph(), r3, refine.Options{})
	found = false
	for _, v := range viols {
		if v.Rule == "REFINE-STREAM" && strings.Contains(v.Detail, "executed none") {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreign-thread window not flagged: %v", viols)
	}

	// No stream recorded: stream checks are skipped entirely.
	viols, _ = refine.CheckTrace(refine.Queue, b3.Graph(), &machine.Result{}, refine.Options{})
	for _, v := range viols {
		if v.Rule == "REFINE-STREAM" {
			t.Fatalf("stream violation without a stream: %v", viols)
		}
	}
}

func TestCheckersComposition(t *testing.T) {
	bq := core.NewGraphBuilder("q")
	e1 := bq.Add(core.Enq, 1, 0)
	bq.Add(core.Deq, 1, 0, e1)
	bs := core.NewGraphBuilder("s")
	bs.Add(core.Push, 1, 0)
	bs.Add(core.EmpPop, 0, 0) // same thread: rejected via po floor
	f := refine.Checkers(
		refine.Checker(refine.Queue, func() *core.Graph { return bq.Graph() }),
		refine.Checker(refine.Stack, func() *core.Graph { return bs.Graph() }),
	)
	viols, unknown := f(nil, nil)
	if unknown != 0 || len(viols) == 0 {
		t.Fatalf("composed checker: viols=%v unknown=%d", viols, unknown)
	}
}
