package check_test

import (
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/spec"
	"compass/internal/stack"
)

// Stress tests: wider thread counts and op counts than the unit workloads,
// validating that the harness and checkers scale beyond litmus-sized
// instances. Skipped in -short mode.

func TestStressMSQueue4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f := func(th *machine.Thread) queue.Queue { return queue.NewMS(th, "q") }
	rep := check.Run("stress/ms-4x4",
		check.QueueMixed(f, spec.LevelAbsHB, 4, 4, 4, 5),
		check.Options{Executions: 150, StaleBias: 0.5})
	if !rep.Passed() || rep.OK == 0 {
		t.Fatalf("%s", rep)
	}
	t.Logf("%s", rep)
}

func TestStressHWQueueWideScan(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f := func(th *machine.Thread) queue.Queue { return queue.NewHW(th, "q", 128) }
	rep := check.Run("stress/hw-4x4",
		check.QueueMixed(f, spec.LevelHB, 4, 4, 4, 5),
		check.Options{Executions: 150, StaleBias: 0.6})
	if !rep.Passed() || rep.OK == 0 {
		t.Fatalf("%s", rep)
	}
}

func TestStressTreiberDeepHist(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Larger graphs exercise the hist fast path and the search fallback on
	// instances near the linearizer's bound.
	f := func(th *machine.Thread) stack.Stack { return stack.NewTreiber(th, "s") }
	rep := check.Run("stress/treiber-hist",
		check.StackMixed(f, spec.LevelHist, 3, 3, 3, 4),
		check.Options{Executions: 150, StaleBias: 0.6})
	if !rep.Passed() || rep.OK == 0 {
		t.Fatalf("%s", rep)
	}
	if rep.Unknown > 0 {
		t.Logf("note: %d hist checks exceeded the search bound (reported, not failed)", rep.Unknown)
	}
}

func TestStressElimStackContention(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rep := check.Run("stress/es-3pairs",
		check.ElimStackComposed(spec.LevelHB, 3, 3),
		check.Options{Executions: 150, StaleBias: 0.6})
	if !rep.Passed() || rep.OK == 0 {
		t.Fatalf("%s", rep)
	}
}

func TestStressPipelineLong(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f := func(th *machine.Thread) queue.Queue { return queue.NewMS(th, "q") }
	rep := check.Run("stress/pipeline-10",
		check.Pipeline(f, spec.LevelHB, 10),
		check.Options{Executions: 100, StaleBias: 0.5})
	if !rep.Passed() || rep.OK == 0 {
		t.Fatalf("%s", rep)
	}
}
