// Command litmus runs the ORC11 litmus suite: each test is explored
// exhaustively over all thread interleavings and relaxed read choices, and
// the observed outcome histogram is compared against the memory model's
// allowed/forbidden sets.
//
//	go run ./cmd/litmus            # the whole suite
//	go run ./cmd/litmus -test SB   # one test
//	go run ./cmd/litmus -test SB -stats sb.json -trace-out sb.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compass"
	"compass/internal/cli"
)

func main() {
	name := flag.String("test", "", "run only the named test (e.g. MP+rel+acq, SB, LB)")
	maxRuns := flag.Int("max-runs", 400000, "exploration bound per test")
	workers := flag.Int("workers", 0, "parallel exploration workers (0 = GOMAXPROCS)")
	prune := flag.Bool("prune", false, "extract a footprint certificate per test and prune race instrumentation and read windows (outcomes are identical)")
	plan := flag.Bool("plan", false, "consult the committed static access plan per test: gate footprint certificates against it and sharpen source-DPOR conflict detection (outcomes are identical)")
	por := flag.String("por", "off", "partial-order reduction: off, sleep (static sleep sets), or source (source-DPOR: dynamic race reversal plus wakeup read floors); outcome sets are identical in every mode, far fewer executions")
	refine := flag.Bool("refine", false, "also run the library refinement corpus: each library workload is explored exhaustively with the refinement/simulation oracle judging every execution against the abstract transition system")
	statsOut := flag.String("stats", "", "write a telemetry JSON snapshot of the exploration to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the first test's default schedule to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	cli.StartPprof(*pprofAddr)

	porMode, err := compass.ParsePORMode(*por)
	if err != nil {
		fmt.Fprintf(os.Stderr, "litmus: -por: %v\n", err)
		os.Exit(2)
	}
	compass.OnPORFallback(func(threads int) {
		fmt.Fprintf(os.Stderr, "litmus: warning: partial-order reduction disabled: %d threads exceed the 64-thread sleep-mask limit; exploring unreduced\n", threads)
	})

	var stats *compass.Telemetry
	if *statsOut != "" {
		stats = compass.NewTelemetry()
	}
	failed := false
	ran := 0
	for _, t := range compass.LitmusSuite() {
		if *name != "" && !strings.EqualFold(t.Name, *name) {
			continue
		}
		ran++
		var fp *compass.Footprint
		if *prune {
			var err error
			if fp, err = compass.ExtractFootprint(t.Build); err != nil {
				fmt.Fprintf(os.Stderr, "litmus: %s: footprint extraction failed, exploring unpruned: %v\n", t.Name, err)
			}
		}
		var pl *compass.Plan
		if *plan {
			pl = compass.PlanFor(t.Name)
			if pl == nil {
				fmt.Fprintf(os.Stderr, "litmus: %s: no committed static plan; run `make plan`\n", t.Name)
			} else if err := compass.GateFootprint(fp, pl, len(t.Build().Workers)+1); err != nil {
				fmt.Fprintf(os.Stderr, "litmus: %s: certificate refused, exploring unpruned: %v\n", t.Name, err)
				fp = nil
				stats.CertRefused()
			}
		}
		if fp != nil {
			fp.Name = t.Name
			fmt.Println(fp)
		}
		res := compass.RunLitmus(t, *maxRuns,
			compass.WithWorkers(*workers), compass.WithStats(stats),
			compass.WithFootprint(fp), compass.WithPORMode(porMode), compass.WithPlan(pl))
		fmt.Println(res)
		fmt.Println()
		if !res.OK() {
			failed = true
		}
		if ran == 1 && *traceOut != "" {
			r := compass.TraceLitmus(t)
			if err := cli.WriteTraceFile(*traceOut, t.Name, r); err != nil {
				fmt.Fprintf(os.Stderr, "litmus: trace-out: %v\n", err)
				os.Exit(2)
			}
		}
	}
	if *refine {
		for _, lt := range compass.LibrarySuite() {
			if *name != "" && !strings.EqualFold(lt.Name, *name) {
				continue
			}
			ran++
			var fp *compass.Footprint
			if *prune && !lt.SkipPrune {
				var err error
				if fp, err = compass.ExtractLibFootprint(lt); err != nil {
					fmt.Fprintf(os.Stderr, "litmus: %s: footprint extraction failed, exploring unpruned: %v\n", lt.Name, err)
				}
			}
			var pl *compass.Plan
			if *plan {
				pl = compass.PlanFor(lt.Name)
				if pl == nil {
					fmt.Fprintf(os.Stderr, "litmus: %s: no committed static plan; run `make plan`\n", lt.Name)
				} else if err := compass.GateFootprint(fp, pl, len(lt.Build().Prog.Workers)+1); err != nil {
					fmt.Fprintf(os.Stderr, "litmus: %s: certificate refused, exploring unpruned: %v\n", lt.Name, err)
					fp = nil
					stats.CertRefused()
				}
			}
			if fp != nil {
				fp.Name = lt.Name
				fmt.Println(fp)
			}
			res := compass.RunLibRefinement(lt, 600000,
				compass.WithWorkers(*workers), compass.WithStats(stats),
				compass.WithFootprint(fp), compass.WithPORMode(porMode), compass.WithPlan(pl))
			fmt.Println(res)
			fmt.Println()
			if !res.OK() {
				failed = true
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no test named %q; available:\n", *name)
		for _, t := range compass.LitmusSuite() {
			fmt.Fprintf(os.Stderr, "  %s\n", t.Name)
		}
		for _, lt := range compass.LibrarySuite() {
			fmt.Fprintf(os.Stderr, "  %s (with -refine)\n", lt.Name)
		}
		os.Exit(2)
	}
	if *statsOut != "" {
		if err := cli.WriteStatsFile(*statsOut, stats); err != nil {
			fmt.Fprintf(os.Stderr, "litmus: stats: %v\n", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}
