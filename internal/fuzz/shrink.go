package fuzz

import (
	"io"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/telemetry"
)

// shrinkBudget caps the replays one Shrink call may spend; minimization is
// best-effort and the counterexample is already in hand, so we refuse to
// let a pathological case stall the campaign.
const shrinkBudget = 50000

// rescheduleRuns caps one depth-capped DFS pass of the rescheduler.
const rescheduleRuns = 15000

// shrinker carries the state of one minimization.
type shrinker struct {
	key     string
	budget  int // machine steps per replay
	replays int
	log     io.Writer
	stats   *telemetry.Stats // shrink-attempt telemetry (nil disables)
}

func (s *shrinker) spent() bool { return s.replays >= shrinkBudget }

// attempt replays the candidate and reports whether it still fails with
// the original failure class. On success the returned failure carries the
// candidate program and decisions.
func (s *shrinker) attempt(p Program, ds []machine.Decision) *Failure {
	if s.spent() {
		return nil
	}
	s.replays++
	f, err := Replay(p, ds, s.budget)
	if err != nil || f == nil || f.Key != s.key {
		s.stats.FuzzShrink(false)
		return nil
	}
	s.stats.FuzzShrink(true)
	return f
}

// rediscover searches for the failure class on a reduced program whose old
// decision sequence no longer reproduces it: a few dozen deterministic
// seeded-random probes, then a small exhaustive sweep. Dropping a thread
// or op perturbs the decision tree, so this is what keeps aggressive
// structural shrinks viable.
func (s *shrinker) rediscover(p Program) *Failure {
	runner := check.Options{Budget: s.budget}.Runner(false)
	for seed := int64(0); seed < 80 && !s.spent(); seed++ {
		inst, err := Build(p)
		if err != nil {
			return nil
		}
		strat := machine.Record(machine.NewRandomBiased(seed, 0.7))
		r := runner.Run(inst.Checked.Prog, strat)
		s.replays++
		if f, _ := judge(p, inst, r, strat.Trace, nil); f != nil && f.Key == s.key {
			return f
		}
	}
	if s.spent() {
		return nil
	}
	remaining := shrinkBudget - s.replays
	if remaining > 600 {
		remaining = 600
	}
	f, runs, _, _, _ := explore(p, remaining, s.budget, nil)
	s.replays += runs
	if f != nil && f.Key == s.key {
		return f
	}
	return nil
}

// reduce tries a structural candidate: first the current decisions (a
// removed op often doesn't disturb the prefix), then rediscovery.
func (s *shrinker) reduce(p Program, ds []machine.Decision) *Failure {
	if f := s.attempt(p, ds); f != nil {
		return f
	}
	return s.rediscover(p)
}

func dropThread(p Program, t int) Program {
	q := p
	q.Threads = make([][]Op, 0, len(p.Threads)-1)
	for i, ops := range p.Threads {
		if i != t {
			q.Threads = append(q.Threads, ops)
		}
	}
	return q
}

func swapThreads(p Program, a, b int) Program {
	q := p
	q.Threads = make([][]Op, len(p.Threads))
	copy(q.Threads, p.Threads)
	q.Threads[a], q.Threads[b] = q.Threads[b], q.Threads[a]
	return q
}

func dropOp(p Program, t, i int) Program {
	q := p
	q.Threads = make([][]Op, len(p.Threads))
	copy(q.Threads, p.Threads)
	ops := make([]Op, 0, len(p.Threads[t])-1)
	for j, op := range p.Threads[t] {
		if j != i {
			ops = append(ops, op)
		}
	}
	q.Threads[t] = ops
	return q
}

// Shrink minimizes a failure with delta debugging to a fixpoint: drop
// whole threads, then single ops, then minimize the decision sequence
// (truncation — out-of-prefix decisions replay as defaults — plus
// zeroing individual picks). Every accepted step replays deterministically
// to the same failure class, so the result is as trustworthy as the
// original counterexample and far easier to read.
func Shrink(f *Failure, budget int, log io.Writer) *Failure {
	return ShrinkStats(f, budget, log, nil)
}

// ShrinkStats is Shrink with a telemetry sink: every candidate replay is
// recorded as a shrink attempt, accepted when it reproduced the failure
// class (nil stats disables recording).
func ShrinkStats(f *Failure, budget int, log io.Writer, stats *telemetry.Stats) *Failure {
	s := &shrinker{key: f.Key, budget: budget, log: log, stats: stats}
	cur := f
	for round := 0; round < 8; round++ {
		changed := false
		// Threads, last first: higher indices never own the deque.
		for t := cur.Program.NumThreads() - 1; t >= 0 && cur.Program.NumThreads() > 1; t-- {
			if g := s.reduce(dropThread(cur.Program, t), cur.Decisions); g != nil {
				cur, changed = g, true
			}
		}
		// Single ops, last first within each thread.
		for t := 0; t < cur.Program.NumThreads(); t++ {
			for i := len(cur.Program.Threads[t]) - 1; i >= 0; i-- {
				if g := s.reduce(dropOp(cur.Program, t, i), cur.Decisions); g != nil {
					cur, changed = g, true
				}
			}
		}
		if g := s.shrinkDecisions(cur); g != nil {
			cur, changed = g, true
		}
		// Reorder threads: replay defaults to the lowest-index runnable
		// thread, so moving the late-switching thread to the front turns
		// schedule suffixes into default picks, which then truncate away.
		// Accept a swap only if it makes the schedule shorter.
		for a := 0; a < cur.Program.NumThreads(); a++ {
			for b := a + 1; b < cur.Program.NumThreads(); b++ {
				g := s.rediscover(swapThreads(cur.Program, a, b))
				if g == nil {
					continue
				}
				if h := s.shrinkDecisions(g); h != nil {
					g = h
				}
				if len(g.Decisions) < len(cur.Decisions) {
					cur, changed = g, true
				}
			}
		}
		if !changed || s.spent() {
			break
		}
	}
	// Reduction of the found schedule has converged; now search the final
	// program for an entirely different, shorter schedule of the same
	// failure class.
	if g := s.reschedule(cur); g != nil {
		if h := s.shrinkDecisions(g); h != nil {
			g = h
		}
		cur = g
	}
	cur.Shrunk = true
	return cur
}

// effLen is the effective decision length: trailing default picks replay
// for free, so they don't count.
func effLen(ds []machine.Decision) int {
	n := len(ds)
	for n > 0 && ds[n-1].Pick == 0 {
		n--
	}
	return n
}

// reschedule iteratively deepens downwards: each pass runs a DFS whose
// branching is capped at one decision less than the current best, so any
// failure it finds is strictly shorter. Stops at the first depth that
// yields nothing within the run cap.
func (s *shrinker) reschedule(f *Failure) *Failure {
	best := f
	for !s.spent() {
		target := effLen(best.Decisions) - 1
		if target <= 0 {
			break
		}
		g := s.exploreDepth(best.Program, target)
		if g == nil {
			break
		}
		best = g
	}
	if best == f {
		return nil
	}
	return best
}

// exploreDepth is the explorer from run.go with branching capped at
// maxDepth decisions: decisions past the cap always replay the default
// branch, so every found failure has effLen ≤ maxDepth.
func (s *shrinker) exploreDepth(p Program, maxDepth int) *Failure {
	runner := check.Options{Budget: s.budget}.Runner(false)
	var prefix []machine.Decision
	for runs := 0; runs < rescheduleRuns && !s.spent(); runs++ {
		inst, err := Build(p)
		if err != nil {
			return nil
		}
		strat := machine.ReplayStrategy(prefix)
		r := runner.Run(inst.Checked.Prog, strat)
		s.replays++
		if g, _ := judge(p, inst, r, strat.Trace, nil); g != nil && g.Key == s.key {
			g.Decisions = append([]machine.Decision(nil), strat.Trace[:effLen(strat.Trace)]...)
			return g
		}
		trace := strat.Trace
		i := len(trace) - 1
		if i >= maxDepth {
			i = maxDepth - 1
		}
		for ; i >= 0; i-- {
			if trace[i].Pick+1 < trace[i].N {
				break
			}
		}
		if i < 0 {
			return nil
		}
		prefix = append(append([]machine.Decision{}, trace[:i]...),
			machine.Decision{N: trace[i].N, Pick: trace[i].Pick + 1})
	}
	return nil
}

// shrinkDecisions minimizes the schedule for a fixed program, iterating
// its passes to a fixpoint. Returns the improved failure, or nil if
// nothing got smaller.
func (s *shrinker) shrinkDecisions(f *Failure) *Failure {
	best := f
	improved := false
	try := func(ds []machine.Decision) bool {
		if g := s.attempt(best.Program, ds); g != nil {
			g.Decisions = append([]machine.Decision(nil), ds...)
			best, improved = g, true
			return true
		}
		return false
	}
	for pass := true; pass && !s.spent(); {
		pass = false
		// Truncate: halving, then linear step-down. A truncated prefix
		// replays with default picks past its end.
		for n := len(best.Decisions) / 2; n > 0; n /= 2 {
			if try(best.Decisions[:n]) {
				pass = true
			}
		}
		for n := len(best.Decisions) - 1; n >= 0; n-- {
			if !try(best.Decisions[:n]) {
				break
			}
			pass = true
		}
		// Splice out interior decisions, deepest first; the suffix shifts
		// one slot earlier, which often still drives the same interleaving.
		for i := len(best.Decisions) - 1; i >= 0; i-- {
			ds := append([]machine.Decision(nil), best.Decisions[:i]...)
			ds = append(ds, best.Decisions[i+1:]...)
			if try(ds) {
				pass = true
			}
		}
		// Zero individual picks: a 0 pick is the default branch, so every
		// zeroed decision makes the schedule more canonical.
		for i := 0; i < len(best.Decisions); i++ {
			if best.Decisions[i].Pick == 0 {
				continue
			}
			ds := append([]machine.Decision(nil), best.Decisions...)
			ds[i].Pick = 0
			if try(ds) {
				pass = true
			}
		}
		// Strip trailing default decisions — replay reconstructs them.
		n := len(best.Decisions)
		for n > 0 && best.Decisions[n-1].Pick == 0 {
			n--
		}
		if n < len(best.Decisions) && try(best.Decisions[:n]) {
			pass = true
		}
	}
	if !improved {
		return nil
	}
	return best
}
