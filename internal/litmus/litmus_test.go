package litmus

import (
	"testing"

	"compass/internal/machine"
	"compass/internal/telemetry"
)

func TestSuiteAllPass(t *testing.T) {
	for _, tc := range Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			res := Run(tc, 400000)
			if !res.OK() {
				t.Fatalf("%s", res)
			}
		})
	}
}

func TestOutcomeKeyCanonical(t *testing.T) {
	k := outcomeKey(map[string]int64{"b": 2, "a": 1})
	if k != "a=1 b=2" {
		t.Fatalf("key = %q", k)
	}
}

func TestResultStringHasVerdict(t *testing.T) {
	res := Run(Suite()[0], 400000)
	s := res.String()
	if len(s) == 0 || res.Outcomes == nil {
		t.Fatal("empty result rendering")
	}
}

func TestForbiddenDetection(t *testing.T) {
	// A deliberately wrong expectation must be flagged, proving the
	// harness actually checks something.
	bad := Suite()[1] // MP+rlx: the weak outcome IS observed
	bad.Forbidden = []string{"d=0 f=1"}
	res := Run(bad, 400000)
	if res.OK() || len(res.ForbiddenSeen) == 0 {
		t.Fatalf("harness failed to flag a seen forbidden outcome: %s", res)
	}
}

func TestRequiredDetection(t *testing.T) {
	bad := Suite()[0] // MP+rel+acq: stale data never happens
	bad.Required = append(bad.Required, "d=0 f=1")
	res := Run(bad, 400000)
	if res.OK() || len(res.RequiredMissing) == 0 {
		t.Fatalf("harness failed to flag a missing required outcome: %s", res)
	}
}

// TestRunWorkersMatchesSequential asserts parallel exhaustive exploration
// visits exactly the executions the sequential explorer does: same run
// count, same Complete verdict, same outcome histogram, for every test in
// the suite.
func TestRunWorkersMatchesSequential(t *testing.T) {
	for _, lt := range Suite() {
		seq := Run(lt, 400000, WithWorkers(1))
		par := Run(lt, 400000, WithWorkers(4))
		if seq.Runs != par.Runs || seq.Complete != par.Complete {
			t.Errorf("%s: runs/complete diverged: seq %d/%v, par %d/%v",
				lt.Name, seq.Runs, seq.Complete, par.Runs, par.Complete)
		}
		if len(seq.Outcomes) != len(par.Outcomes) {
			t.Errorf("%s: outcome sets diverged: %v vs %v", lt.Name, seq.Outcomes, par.Outcomes)
			continue
		}
		for k, n := range seq.Outcomes {
			if par.Outcomes[k] != n {
				t.Errorf("%s: outcome %q: seq %d, par %d", lt.Name, k, n, par.Outcomes[k])
			}
		}
	}
}

// TestRunWorkersStatsAgree asserts the telemetry exec counters equal the
// litmus result's accounting, including budget-discarded executions.
func TestRunWorkersStatsAgree(t *testing.T) {
	stats := telemetry.New()
	res := Run(Suite()[0], 400000, WithWorkers(4), WithStats(stats))
	if !res.OK() {
		t.Fatalf("%s", res)
	}
	snap := stats.Snapshot()
	if snap.Machine.Execs != int64(res.Runs) {
		t.Fatalf("telemetry %d execs != %d runs", snap.Machine.Execs, res.Runs)
	}
	if snap.Machine.ExecsByStatus["budget"] != int64(res.Discarded) {
		t.Fatalf("telemetry %d budget != %d discarded", snap.Machine.ExecsByStatus["budget"], res.Discarded)
	}

	// A spinning test under a tiny budget: every execution is discarded,
	// and telemetry agrees.
	spin := Test{Name: "spin", Build: func() machine.Program {
		return machine.Program{Workers: []func(*machine.Thread){
			func(th *machine.Thread) {
				for {
					th.Yield()
				}
			},
		}}
	}}
	stats = telemetry.New()
	res = Run(spin, 0, WithWorkers(1), WithStats(stats))
	// Budget is the machine default here, so force discards via MaxDepth-free
	// exploration with the default budget: the spin loop exhausts it.
	if res.Discarded == 0 || res.Discarded != res.Runs {
		t.Fatalf("spin test: %d discarded of %d runs", res.Discarded, res.Runs)
	}
	snap = stats.Snapshot()
	if snap.Machine.ExecsByStatus["budget"] != int64(res.Discarded) {
		t.Fatalf("telemetry %d budget != %d discarded", snap.Machine.ExecsByStatus["budget"], res.Discarded)
	}
}
