// Package check is the verification harness: it runs workload programs
// many times under seeded-random scheduling (or exhaustively for small
// programs), extracts each execution's event graphs, evaluates the spec
// checkers on them, and aggregates verdicts with replayable counterexample
// seeds. It is the executable counterpart of the paper's per-library and
// per-client Coq proofs: a proof shows every execution satisfies the spec;
// the harness checks the spec on every explored execution.
package check

import (
	"fmt"
	"strings"

	"compass/internal/machine"
	"compass/internal/spec"
)

// Checked is one runnable, checkable instance of a workload: a fresh
// program plus a post-execution check closure over its recorders.
type Checked struct {
	Prog machine.Program
	// Check is invoked after an execution completes with status OK; it
	// returns the spec violations found in the execution's event graphs,
	// plus the number of checks that could not be decided.
	Check func() (violations []spec.Violation, unknown int)
}

// Options configures a harness run.
type Options struct {
	// Executions is the number of random executions (default 200).
	Executions int
	// Seed is the first seed; execution i uses Seed+i (default 1).
	Seed int64
	// Budget caps machine steps per execution (default 100000).
	Budget int
	// StaleBias is the probability of deliberately stale reads (default
	// 0.4); higher values explore weaker behaviours more aggressively.
	StaleBias float64
	// MaxFailures stops the run early after this many failing executions
	// (default 5).
	MaxFailures int
	// KeepGoing disables the early stop.
	KeepGoing bool
}

func (o Options) withDefaults() Options {
	if o.Executions == 0 {
		o.Executions = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.StaleBias == 0 {
		o.StaleBias = 0.4
	}
	if o.MaxFailures == 0 {
		o.MaxFailures = 5
	}
	return o
}

// Failure records one failing execution with its replay seed.
type Failure struct {
	Seed       int64
	Status     machine.Status
	Err        error
	Violations []spec.Violation
}

func (f Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d (%v)", f.Seed, f.Status)
	if f.Err != nil {
		fmt.Fprintf(&b, ": %v", f.Err)
	}
	for _, v := range f.Violations {
		fmt.Fprintf(&b, "\n    %s", v)
	}
	return b.String()
}

// Report aggregates a harness run.
type Report struct {
	Name       string
	Executions int
	OK         int // executions that completed and passed all checks
	Discarded  int // budget-exhausted executions (neither pass nor fail)
	Failures   []Failure
	Unknown    int // checks that could not be decided
	Steps      int // total machine steps across executions
	// Exhaustive and Complete are set by Exhaustive: when Complete is
	// true, every execution of the bounded program was explored, so a pass
	// is a proof for the instance rather than statistical evidence.
	Exhaustive bool
	Complete   bool
}

// Passed reports whether no execution failed (discarded and unknown
// executions do not fail a run, but they are reported).
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%-34s %s  %d executions, %d ok, %d discarded, %d unknown, %d steps",
		r.Name, verdict, r.Executions, r.OK, r.Discarded, r.Unknown, r.Steps)
	if r.Exhaustive {
		if r.Complete {
			b.WriteString(" [exhaustive: all executions explored]")
		} else {
			b.WriteString(" [exhaustive: bound hit, incomplete]")
		}
	}
	for i, f := range r.Failures {
		if i == 3 {
			fmt.Fprintf(&b, "\n  ... and %d more failures", len(r.Failures)-3)
			break
		}
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return b.String()
}

// Run executes build()'s programs Executions times under seeded random
// strategies, checking each OK execution.
func Run(name string, build func() Checked, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{Name: name, Executions: opt.Executions}
	runner := &machine.Runner{Budget: opt.Budget}
	for i := 0; i < opt.Executions; i++ {
		seed := opt.Seed + int64(i)
		c := build()
		res := runner.Run(c.Prog, machine.NewRandomBiased(seed, opt.StaleBias))
		rep.Steps += res.Steps
		switch res.Status {
		case machine.Budget:
			rep.Discarded++
			continue
		case machine.Racy, machine.Failed:
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Status: res.Status, Err: res.Err})
		case machine.OK:
			viols, unknown := c.Check()
			rep.Unknown += unknown
			if len(viols) == 0 {
				rep.OK++
			} else {
				rep.Failures = append(rep.Failures, Failure{Seed: seed, Status: res.Status, Violations: viols})
			}
		}
		if !opt.KeepGoing && len(rep.Failures) >= opt.MaxFailures {
			break
		}
	}
	return rep
}

// Exhaustive explores every execution of the workload (all interleavings
// and all read choices) up to maxRuns, checking each one. When the
// returned report has Complete set, a pass is a *proof* for the bounded
// instance — the executable analogue of the paper's per-implementation
// theorems, on a finite workload.
func Exhaustive(name string, build func() Checked, maxRuns, budget int) *Report {
	rep := &Report{Name: name, Exhaustive: true}
	var cur Checked
	res := machine.Explore(func() machine.Program {
		cur = build()
		return cur.Prog
	}, machine.ExploreOpts{MaxRuns: maxRuns, Budget: budget}, func(r *machine.Result) bool {
		rep.Executions++
		rep.Steps += r.Steps
		switch r.Status {
		case machine.Budget:
			rep.Discarded++
		case machine.Racy, machine.Failed:
			rep.Failures = append(rep.Failures, Failure{Seed: -1, Status: r.Status, Err: r.Err})
		case machine.OK:
			viols, unknown := cur.Check()
			rep.Unknown += unknown
			if len(viols) == 0 {
				rep.OK++
			} else {
				rep.Failures = append(rep.Failures, Failure{Seed: -1, Status: r.Status, Violations: viols})
			}
		}
		return len(rep.Failures) < 5
	})
	rep.Complete = res.Complete
	return rep
}

// Explain replays the execution with the given seed under tracing and
// returns the per-step operation log together with the violations found —
// for diagnosing a Failure reported by Run.
func Explain(build func() Checked, seed int64, staleBias float64, budget int) (machine.Status, []string, []spec.Violation) {
	if staleBias == 0 {
		staleBias = 0.4
	}
	c := build()
	res := (&machine.Runner{Budget: budget, Trace: true}).Run(c.Prog, machine.NewRandomBiased(seed, staleBias))
	var viols []spec.Violation
	if res.Status == machine.OK {
		viols, _ = c.Check()
	}
	return res.Status, res.Trace, viols
}

// Collect merges several spec results into the (violations, unknown) pair
// a Checked.Check closure returns.
func Collect(results ...spec.Result) ([]spec.Violation, int) {
	var out []spec.Violation
	unknown := 0
	for _, r := range results {
		out = append(out, r.Violations...)
		if r.Unknown {
			unknown++
		}
	}
	return out, unknown
}
