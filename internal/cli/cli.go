// Package cli holds the plumbing shared by the command-line front ends
// (cmd/compass, cmd/fuzz, cmd/litmus): flag-value normalization onto the
// harness option encoding, snapshot and Chrome trace file export, and the
// opt-in pprof listener. Keeping it in one place means the binaries
// cannot drift in how they spell the -seed/-stale/-stats/-trace-out/
// -pprof behaviour.
package cli

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only when -pprof is set
	"os"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/telemetry"
)

// FlagSeed maps a -seed flag value onto the harness Options encoding:
// the harness treats Seed == 0 as "use the default", so a user's explicit
// -seed 0 becomes the check.SeedZero sentinel and means the literal seed
// 0. Every other value passes through.
func FlagSeed(seed int64) int64 {
	if seed == 0 {
		return check.SeedZero
	}
	return seed
}

// FlagStaleBias maps a -stale flag value onto the harness Options
// encoding: an explicit -stale 0 becomes the check.BiasZero sentinel
// ("every read observes the latest message"), since the zero value of
// Options.StaleBias selects the default bias. Every other value passes
// through.
func FlagStaleBias(bias float64) float64 {
	if bias == 0 {
		return check.BiasZero
	}
	return bias
}

// StartPprof serves net/http/pprof on addr in the background. Empty addr
// disables it (the default: no listener is ever opened unless asked for).
func StartPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
		}
	}()
}

// WriteStatsFile writes a telemetry snapshot of stats as JSON to path.
func WriteStatsFile(path string, stats *telemetry.Stats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := stats.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// WriteTraceFile writes a Chrome trace_event file for one recorded
// execution (Runner.Trace must have been on so r.Events is populated).
func WriteTraceFile(path, name string, r *machine.Result) error {
	tr := telemetry.NewChromeTrace()
	tr.Append(machine.ChromeTraceEvents(0, name, r)...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}
