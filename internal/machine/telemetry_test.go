package machine

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildSB returns a fresh store-buffering program (the classic 2-thread
// litmus shape) with enough branching to exercise both thread-pick and
// read-choice decisions.
func buildSB() Program {
	var x, y view.Loc
	return Program{
		Name:  "SB",
		Setup: func(t *Thread) { x = t.Alloc("x", 0); y = t.Alloc("y", 0) },
		Workers: []func(*Thread){
			func(t *Thread) { t.Write(x, 1, memory.Rlx); t.Report("r1", t.Read(y, memory.Rlx)) },
			func(t *Thread) { t.Write(y, 1, memory.Rlx); t.Report("r2", t.Read(x, memory.Rlx)) },
		},
	}
}

func TestStatusNamesMatchTelemetry(t *testing.T) {
	// telemetry cannot import machine, so its status-name table is pinned
	// by hand; this is the cross-check keeping the two in sync.
	if telemetry.NumStatuses != int(Deduped)+1 {
		t.Fatalf("telemetry tracks %d statuses, machine has %d", telemetry.NumStatuses, int(Deduped)+1)
	}
	for s := OK; s <= Deduped; s++ {
		if got := telemetry.StatusName(uint8(s)); got != s.String() {
			t.Fatalf("status %d: telemetry name %q != machine name %q", s, got, s.String())
		}
	}
}

func TestStepEventLegacyStrings(t *testing.T) {
	// The typed events must render the exact strings the old []string
	// trace contained — Explain output is part of the tool's interface.
	cases := []struct {
		ev   StepEvent
		want string
	}{
		{StepEvent{Thread: 0, Kind: StepAlloc, Loc: 0, LocName: "x", Val: 7},
			"T0  alloc   x (l0) := 7"},
		{StepEvent{Thread: 1, Kind: StepRead, LocName: "x", RMode: memory.Acq, Val: 1},
			"T1  read    x =acq= 1"},
		{StepEvent{Thread: 1, Kind: StepRead, LocName: "x", RMode: memory.NA, Race: true},
			"T1  RACE    read_na x"},
		{StepEvent{Thread: 2, Kind: StepWrite, LocName: "y", WMode: memory.Rel, Val: 3},
			"T2  write   y :=rel= 3"},
		{StepEvent{Thread: 2, Kind: StepWrite, LocName: "y", WMode: memory.Rlx, Race: true},
			"T2  RACE    write_rlx y"},
		{StepEvent{Thread: 0, Kind: StepFree, LocName: "x"},
			"T0  free    x"},
		{StepEvent{Thread: 1, Kind: StepFence, Acquire: true, Release: false},
			"T1  fence   acq=true rel=false"},
		{StepEvent{Thread: 1, Kind: StepFenceSC},
			"T1  fence   sc"},
		{StepEvent{Thread: 1, Kind: StepCAS, LocName: "x", Arg: 1, Val: 2, Old: 1, OK: true},
			"T1  cas     x 1→2 (read 1, ok=true)"},
		{StepEvent{Thread: 1, Kind: StepFAA, LocName: "x", Val: 5, Old: 2},
			"T1  faa     x += 5 (old 2)"},
		{StepEvent{Thread: 1, Kind: StepXchg, LocName: "x", Val: 9, Old: 7},
			"T1  xchg    x := 9 (old 7)"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("StepEvent.String() = %q, want %q", got, c.want)
		}
	}
}

func TestExploreStatsSerialEqualsParallel(t *testing.T) {
	// ExploreParallel partitions the decision tree so that every leaf is
	// executed exactly once with the same decision sequence as the
	// sequential DFS; machine-level telemetry must therefore be identical.
	serial := telemetry.New()
	resS := Explore(buildSB, ExploreOpts{Stats: serial}, func(*Result) bool { return true })
	if !resS.Complete {
		t.Fatalf("serial exploration incomplete: %+v", resS)
	}

	par := telemetry.New()
	resP := ExploreParallel(ExploreOpts{Stats: par, Workers: 4},
		func() (func() Program, func(*Result) bool) {
			return buildSB, func(*Result) bool { return true }
		})
	if !resP.Complete || resP.Runs != resS.Runs {
		t.Fatalf("parallel: %+v, serial: %+v", resP, resS)
	}

	ss, ps := serial.Snapshot(), par.Snapshot()
	if !reflect.DeepEqual(ss.Machine, ps.Machine) {
		t.Fatalf("machine telemetry differs between serial and parallel:\nserial:   %+v\nparallel: %+v",
			ss.Machine, ps.Machine)
	}
	// Exec counters agree with the explorer's own run count in both modes.
	if ss.Machine.Execs != int64(resS.Runs) {
		t.Fatalf("serial: %d execs counted, %d runs reported", ss.Machine.Execs, resS.Runs)
	}
	if ss.Explore.Prefixes != int64(resS.Runs) || ps.Explore.Prefixes != int64(resP.Runs) {
		t.Fatalf("prefixes: serial %d/%d, parallel %d/%d",
			ss.Explore.Prefixes, resS.Runs, ps.Explore.Prefixes, resP.Runs)
	}
	if ss.Machine.ReadChoices == 0 || ss.Machine.StaleReads == 0 {
		t.Fatalf("SB exploration should exercise stale read choices: %+v", ss.Machine)
	}
}

func TestExploreStatsCountBudgetExecs(t *testing.T) {
	// Budget-exhausted executions must show up under the "budget" status,
	// in agreement with the per-status Result accounting.
	spin := func() Program {
		return Program{Setup: func(t *Thread) {
			l := t.Alloc("x", 0)
			for {
				t.Read(l, memory.Rlx)
			}
		}}
	}
	stats := telemetry.New()
	budgeted := 0
	res := Explore(spin, ExploreOpts{Budget: 50, MaxRuns: 3, Stats: stats}, func(r *Result) bool {
		if r.Status == Budget {
			budgeted++
		}
		return true
	})
	snap := stats.Snapshot()
	if budgeted == 0 || snap.Machine.ExecsByStatus["budget"] != int64(budgeted) {
		t.Fatalf("budget execs: visited %d, counted %v", budgeted, snap.Machine.ExecsByStatus)
	}
	if snap.Machine.Execs != int64(res.Runs) {
		t.Fatalf("execs %d != runs %d", snap.Machine.Execs, res.Runs)
	}
}

func TestStatsAddNoPerStepAllocations(t *testing.T) {
	// The acceptance bar: enabling counters (no tracing) must not
	// allocate per machine step. Compare whole-run allocations with and
	// without a Stats sink; the fixed per-run setup (channels, goroutine,
	// memory) is identical on both sides.
	build := func() Program {
		return Program{Setup: func(t *Thread) {
			l := t.Alloc("x", 0)
			for i := 0; i < 400; i++ {
				t.Write(l, int64(i), memory.Rlx)
				t.Read(l, memory.Rlx)
			}
		}}
	}
	base := testing.AllocsPerRun(10, func() {
		(&Runner{}).Run(build(), ReplayStrategy(nil))
	})
	stats := telemetry.New()
	with := testing.AllocsPerRun(10, func() {
		(&Runner{Stats: stats}).Run(build(), ReplayStrategy(nil))
	})
	// 800+ steps per run: any per-step allocation would add hundreds.
	if with-base > 16 {
		t.Fatalf("stats added %.1f allocations per run (base %.1f)", with-base, base)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	// A replayed schedule must export a byte-identical Chrome trace: the
	// timestamp axis is the machine step index, not wall clock.
	r := (&Runner{Trace: true}).Run(buildSB(), ReplayStrategy([]Decision{
		{N: 2, Pick: 1}, // schedule T2 first
		{N: 2, Pick: 0},
		{N: 2, Pick: 0},
	}))
	if r.Status != OK {
		t.Fatalf("replay status %v (%v)", r.Status, r.Err)
	}
	tr := telemetry.NewChromeTrace()
	tr.Append(ChromeTraceEvents(0, "SB", r)...)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace does not validate: %v", err)
	}

	golden := filepath.Join("testdata", "chrome_sb.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace differs from golden (run with -update to regenerate):\n%s", buf.String())
	}
}
