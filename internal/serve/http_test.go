package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"compass/internal/telemetry"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	m, err := NewManager(Config{Workers: 2, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPJobLifecycle(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t)

	// Registry and liveness.
	var names []string
	if code := getJSON(t, srv.URL+"/workloads", &names); code != http.StatusOK {
		t.Fatalf("GET /workloads: %d", code)
	}
	if len(names) == 0 {
		t.Fatal("empty workload list")
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}

	// Submit a job.
	body, _ := json.Marshal(JobSpec{Workload: "litmus/SB", POR: "sleep"})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	if view.ID == "" || view.Status != StatusRunning && view.Status != StatusDone {
		t.Fatalf("unexpected submit view: %+v", view)
	}

	// Poll status until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for view.Status == StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", view.ID)
		}
		time.Sleep(10 * time.Millisecond)
		if code := getJSON(t, srv.URL+"/jobs/"+view.ID, &view); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", view.ID, code)
		}
	}
	if view.Status != StatusDone {
		t.Fatalf("job failed: %q", view.Error)
	}
	if view.Result == nil || !view.Result.Complete || !view.Result.Passed {
		t.Fatalf("unexpected result: %+v", view.Result)
	}
	if len(view.Result.Outcomes) == 0 {
		t.Fatal("no outcome histogram in result")
	}

	// The job appears in the listing.
	var list []JobView
	if code := getJSON(t, srv.URL+"/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET /jobs: %d", code)
	}
	found := false
	for _, v := range list {
		found = found || v.ID == view.ID
	}
	if !found {
		t.Fatalf("job %s missing from /jobs listing", view.ID)
	}

	// The event stream replays at least the final telemetry snapshot,
	// every line independently valid against the v1 schema.
	eresp, err := http.Get(srv.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		if err := telemetry.ValidateSnapshotJSON(sc.Bytes()); err != nil {
			t.Errorf("event line %d invalid: %v", lines, err)
		}
	}
	if lines == 0 {
		t.Error("event stream delivered no snapshots")
	}

	// Service stats snapshot validates too.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if err := telemetry.ValidateSnapshotJSON(buf.Bytes()); err != nil {
		t.Errorf("/stats snapshot invalid: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Serve.JobsSubmitted < 1 || snap.Serve.JobsDone < 1 {
		t.Errorf("serve counters missing the job: %+v", snap.Serve)
	}
}

func TestHTTPErrors(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t)

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
	if code := post(`{"workload":"no/such"}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload: %d, want 400", code)
	}
	if code := post(`{"workload":"litmus/SB","mode":"random"}`); code != http.StatusBadRequest {
		t.Errorf("litmus random: %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("GET /jobs/nope: %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/jobs/nope/events", nil); code != http.StatusNotFound {
		t.Errorf("GET /jobs/nope/events: %d, want 404", code)
	}
}

// TestHTTPEventStreamLive subscribes before the job finishes and watches
// per-segment snapshots arrive with monotonically non-decreasing
// execution counts.
func TestHTTPEventStreamLive(t *testing.T) {
	t.Parallel()
	m, err := NewManager(Config{Workers: 2, CheckpointEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(JobSpec{Workload: "litmus/IRIW", POR: "off"})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	eresp, err := http.Get(srv.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var prev int64 = -1
	lines := 0
	for sc.Scan() {
		lines++
		var snap telemetry.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("event line %d: %v", lines, err)
		}
		if snap.Machine.Execs < prev {
			t.Fatalf("event line %d: execs went backwards (%d after %d)", lines, snap.Machine.Execs, prev)
		}
		prev = snap.Machine.Execs
	}
	if lines < 2 {
		t.Errorf("live stream delivered %d snapshots, want per-segment updates", lines)
	}
	m.Wait()
}

