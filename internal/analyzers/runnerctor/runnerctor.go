// Package runnerctor funnels machine.Runner and machine.ExploreOpts
// construction through check.Options. Scattered &machine.Runner{...}
// literals are how option plumbing regresses: a site that forgets Stats
// silently drops telemetry, one that forgets Budget hangs on divergent
// mutants (both happened before PR 3 unified construction), and an
// ExploreOpts literal that forgets POR silently explores the full tree.
// Sanctioned constructors carry //compass:runner-ctor (Runner) or
// //compass:explore-ctor (ExploreOpts).
package runnerctor

import (
	"go/ast"

	"compass/internal/analyzers/lint"
)

// Analyzer is the runnerctor pass.
var Analyzer = &lint.Analyzer{
	Name: "runnerctor",
	Doc: `require machine.Runner and machine.ExploreOpts construction to go through check.Options

A machine.Runner composite literal outside the machine package itself
must be inside a function marked //compass:runner-ctor (the sanctioned
constructor, check.Options.Runner); a machine.ExploreOpts literal must
likewise be inside a function marked //compass:explore-ctor
(check.Options.ExploreOpts). Everything else should build its runner or
exploration options from an Options value so Budget/Trace/Stats/POR
plumbing cannot be forgotten site by site.`,
	Run: run,
}

const machinePath = "compass/internal/machine"

// policed maps the funneled machine types to their sanctioning directive
// and diagnostic.
var policed = map[string]struct {
	directive string
	message   string
}{
	"Runner": {
		directive: "runner-ctor",
		message:   "machine.Runner constructed directly: go through check.Options.Runner so Budget/Trace/Stats plumbing stays uniform (sanctioned constructors carry //compass:runner-ctor)",
	},
	"ExploreOpts": {
		directive: "explore-ctor",
		message:   "machine.ExploreOpts constructed directly: go through check.Options.ExploreOpts so MaxRuns/Workers/Stats/Footprint/POR plumbing stays uniform (sanctioned constructors carry //compass:explore-ctor)",
	},
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok {
				return true
			}
			pkgPath, name, ok := lint.NamedTypePath(tv.Type)
			if !ok || pkgPath != machinePath {
				return true
			}
			rule, ok := policed[name]
			if !ok {
				return true
			}
			if lint.FuncDirective(file, cl.Pos(), rule.directive) {
				return true
			}
			pass.Reportf(cl.Pos(), "%s", rule.message)
			return true
		})
	}
	return nil
}
