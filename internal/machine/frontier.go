package machine

import "encoding/json"

// Frontier is the checkpointable work-list of an exhaustive exploration:
// the pinned decision prefixes of every subtree that has not been explored
// yet. Because an execution is a deterministic function of its decision
// sequence (and the POR sleep state is a pure function of the prefix), a
// frontier fully determines the remaining work of an exploration — the
// set of leaves below its prefixes is exactly the set of executions an
// uninterrupted run would still visit. That makes a frontier snapshot a
// sound checkpoint: serialize it (JSON via MarshalJSON), kill the
// process, deserialize, and resume via ExploreOpts.Resume on any worker
// count; the union of executions across all segments is identical to one
// uninterrupted run, leaf for leaf.
//
// A Frontier is owned by a single explorer at a time and is not safe for
// concurrent use; the parallel explorer guards it with its own mutex.
type Frontier struct {
	// prefixes is the LIFO stack of pinned prefixes (deepest popped
	// first, mirroring the sequential DFS order). A nil prefix is the
	// root: the whole tree.
	prefixes [][]Decision
}

// NewFrontier returns the frontier of an unstarted exploration: the root
// subtree only.
func NewFrontier() *Frontier { return &Frontier{prefixes: [][]Decision{nil}} }

// RestoreFrontier rebuilds a frontier from prefixes saved by Prefixes (or
// decoded from a checkpoint). The slices are deep-copied, so the caller's
// buffers can be reused.
func RestoreFrontier(prefixes [][]Decision) *Frontier {
	f := &Frontier{prefixes: make([][]Decision, len(prefixes))}
	for i, p := range prefixes {
		if p == nil {
			continue
		}
		cp := make([]Decision, len(p))
		copy(cp, p)
		f.prefixes[i] = cp
	}
	return f
}

// Len returns the number of pending subtree prefixes.
func (f *Frontier) Len() int {
	if f == nil {
		return 0
	}
	return len(f.prefixes)
}

// Empty reports whether no work remains.
func (f *Frontier) Empty() bool { return f.Len() == 0 }

// Prefixes returns a deep copy of the pending prefixes, deepest-first in
// pop order. The copy is safe to serialize or to feed to RestoreFrontier
// while the original keeps exploring.
func (f *Frontier) Prefixes() [][]Decision {
	if f == nil {
		return nil
	}
	out := make([][]Decision, len(f.prefixes))
	for i, p := range f.prefixes {
		if p == nil {
			continue
		}
		cp := make([]Decision, len(p))
		copy(cp, p)
		out[i] = cp
	}
	return out
}

// Clone returns an independent deep copy.
func (f *Frontier) Clone() *Frontier { return RestoreFrontier(f.Prefixes()) }

// push appends children onto the work stack (LIFO: the last pushed is
// popped first).
func (f *Frontier) push(children [][]Decision) { f.prefixes = append(f.prefixes, children...) }

// pop removes and returns the most recently pushed prefix; callers check
// Empty first.
func (f *Frontier) pop() []Decision {
	n := len(f.prefixes)
	p := f.prefixes[n-1]
	f.prefixes = f.prefixes[:n-1]
	return p
}

// MarshalJSON encodes the frontier as a JSON array of decision sequences
// (the root prefix encodes as null).
func (f *Frontier) MarshalJSON() ([]byte, error) { return json.Marshal(f.prefixes) }

// UnmarshalJSON decodes a frontier encoded by MarshalJSON.
func (f *Frontier) UnmarshalJSON(data []byte) error {
	var prefixes [][]Decision
	if err := json.Unmarshal(data, &prefixes); err != nil {
		return err
	}
	f.prefixes = prefixes
	return nil
}
