// Package litmus validates the ORC11 machine against the classic litmus
// tests: which weak behaviours the model must allow (store buffering,
// IRIW, relaxed message passing) and which it must forbid (load buffering
// — po ∪ rf is acyclic in ORC11, §1.2 —, coherence violations, stale
// reads through release/acquire).
//
// Each test is explored exhaustively over all schedules and read choices,
// so a verdict is a proof about the machine (for that bounded program),
// not a sample.
package litmus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// Test is one litmus test.
type Test struct {
	Name string
	// Build returns a fresh program; outcomes are recorded via Report.
	Build func() machine.Program
	// Forbidden outcomes must never be observed.
	Forbidden []string
	// Required outcomes must be observed at least once (witnesses of
	// allowed weak behaviour).
	Required []string
	// Note documents model-specific expectations (e.g. 2+2W).
	Note string
}

// Result summarizes the exhaustive exploration of one test.
type Result struct {
	Test     Test
	Runs     int
	Complete bool
	Outcomes map[string]int
	// Discarded counts budget-exhausted executions; they contribute no
	// outcome and are consistent with the check harness's "discarded"
	// accounting.
	Discarded int
	// ForbiddenSeen lists forbidden outcomes that were observed.
	ForbiddenSeen []string
	// RequiredMissing lists required outcomes never observed.
	RequiredMissing []string
}

// OK reports whether the machine matched the test's expectations.
func (r *Result) OK() bool {
	return r.Complete && len(r.ForbiddenSeen) == 0 && len(r.RequiredMissing) == 0
}

func (r *Result) String() string {
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %s  %d executions (complete=%v)", r.Test.Name, verdict, r.Runs, r.Complete)
	if r.Discarded > 0 {
		fmt.Fprintf(&b, " %d discarded", r.Discarded)
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "\n    %-28s %6d", k, r.Outcomes[k])
	}
	for _, f := range r.ForbiddenSeen {
		fmt.Fprintf(&b, "\n    FORBIDDEN OUTCOME SEEN: %s", f)
	}
	for _, m := range r.RequiredMissing {
		fmt.Fprintf(&b, "\n    REQUIRED OUTCOME MISSING: %s", m)
	}
	return b.String()
}

// outcomeKey renders an outcome map canonically: "a=0 b=1" in key order.
func outcomeKey(o map[string]int64) string {
	keys := make([]string, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, o[k])
	}
	return strings.Join(parts, " ")
}

// Option configures one exhaustive litmus exploration. The zero
// configuration (no options) explores across GOMAXPROCS workers with no
// telemetry, no footprint certificate, and no partial-order reduction.
type Option func(*config)

// config is the resolved option set of one Run call.
type config struct {
	workers int
	stats   *telemetry.Stats
	fp      *memory.Footprint
	por     check.PORMode
	plan    *memory.Plan
	dedup   *machine.Dedup
}

// WithWorkers sets the parallel exploration worker count (0 = GOMAXPROCS,
// 1 = sequential). The outcome histogram is a deterministic function of
// the test regardless of worker count: the parallel explorer visits
// exactly the executions the sequential one does.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithStats attaches a telemetry sink: the exploration's
// exec/step/prefix counters are recorded into stats (nil disables). The
// exec counters equal Runs and the "budget" status count equals
// Discarded — litmus accounts budget-exhausted executions the same way
// the check harness does.
func WithStats(stats *telemetry.Stats) Option { return func(c *config) { c.stats = stats } }

// WithFootprint installs a footprint certificate (see
// internal/analysis/footprint): certified locations skip race
// instrumentation and read-window computation. The outcome histogram is
// identical with or without a valid certificate — pruning removes
// per-access work, never decision-tree branches — which the equivalence
// test in this package asserts bit-for-bit over the whole suite.
func WithFootprint(fp *memory.Footprint) Option { return func(c *config) { c.fp = fp } }

// WithPOR toggles sleep-set partial-order reduction (see
// machine.ExploreOpts.POR): scheduling branches that can only replay an
// explored equivalence class are skipped. The outcome *set* — which
// distinct outcomes appear, and therefore the verdict — is identical with
// POR on and off; the histogram counts and Runs shrink, which is the
// point. The equivalence test in this package asserts set-identity over
// the whole suite. WithPOR(true) selects sleep sets (the PR 5 boolean's
// meaning); use WithPORMode for source-DPOR.
func WithPOR(on bool) Option {
	return func(c *config) {
		if on {
			c.por = check.PORSleep
		} else {
			c.por = check.POROff
		}
	}
}

// WithPlan installs a static access plan (see
// internal/analysis/staticplan) consulted by source-DPOR: provably
// conflict-free pending accesses are forced as singleton persistent sets
// and conservative wake verdicts on allocations and frees are refuted.
// Plans are may-over-approximations of every schedule's accesses, so the
// outcome *set* is identical with and without one — asserted bit-for-bit
// by the plan-equivalence test in this package — while the execution
// count shrinks further than source-DPOR alone. Modes other than
// check.PORSource ignore the plan.
func WithPlan(p *memory.Plan) Option { return func(c *config) { c.plan = p } }

// WithDedup installs a state-space dedup visited set (see machine.Dedup):
// runs reaching a canonical state an earlier run already claimed are cut
// short. The outcome *set* — which distinct outcomes appear, and
// therefore the verdict — is identical with and without dedup in every
// POR mode (asserted over the whole suite by the dedup-equivalence test
// in this package); the histogram counts and Runs shrink. Reuse one
// Dedup only across the segments of one logical exploration: the handle
// is retained in the JobState so paused/resumed jobs keep their claimed
// states (and serialize them with the frontier).
func WithDedup(d *machine.Dedup) Option { return func(c *config) { c.dedup = d } }

// WithPORMode selects the partial-order reduction mode explicitly:
// check.POROff, check.PORSleep, or check.PORSource. Source-DPOR reverses
// only dynamically observed races and prunes stale read-value branches
// through wakeup read floors, reducing IRIW-class tests by a further
// ~5x over sleep sets at provably identical outcome sets (the three-way
// equivalence test in this package asserts set-identity across all
// modes, over the whole suite).
func WithPORMode(m check.PORMode) Option { return func(c *config) { c.por = m } }

// Run explores the test exhaustively (bounded by maxRuns; 0 means the
// explorer default) and evaluates its expectations. Options modify the
// exploration; Run(t, n) alone keeps its historical meaning (all
// GOMAXPROCS workers, nothing else).
func Run(t Test, maxRuns int, opts ...Option) *Result {
	s := NewJob()
	s.RunSegment(t, maxRuns, 0, opts...)
	return s.Finish(t)
}

// JobState is the resumable state of one exhaustive litmus exploration:
// the outcome histogram accumulated so far and the frontier of unexplored
// decision-prefix subtrees. All fields serialize to JSON, so a paused job
// is a checkpoint: write the state out, kill the process, decode, and
// keep exploring — on any worker count — with a final Result identical to
// an uninterrupted Run's, because every decision-tree leaf is executed
// exactly once across all segments. The compassd service
// (internal/serve) drives its litmus jobs through this type.
type JobState struct {
	Runs      int               `json:"runs"`
	Discarded int               `json:"discarded"`
	Outcomes  map[string]int    `json:"outcomes"`
	Frontier  *machine.Frontier `json:"frontier,omitempty"`
	// Dedup is the visited set of canonical state fingerprints, retained
	// (and serialized) across segments so a resumed job never re-claims —
	// and re-explores — states a pre-pause segment already covered. Nil
	// means dedup is off. Installed by WithDedup on the first segment or
	// set directly before it.
	Dedup *machine.Dedup `json:"dedup,omitempty"`
	// Complete is set when the whole tree was explored; Done when no
	// further segment will make progress (complete, maxRuns exhausted, or
	// an early stop).
	Complete bool `json:"complete"`
	Done     bool `json:"done"`
}

// NewJob returns the state of an unstarted litmus exploration.
func NewJob() *JobState { return &JobState{Outcomes: map[string]int{}} }

// RunSegment explores until the tree is exhausted, maxRuns cumulative
// executions are reached (0 means the explorer default, bounding the job
// across all its segments), or — when pauseRuns > 0 — at least pauseRuns
// more executions completed this segment. It returns s.Done: false means
// the job paused and a later RunSegment (in this process or a resumed
// one) continues it.
func (s *JobState) RunSegment(t Test, maxRuns, pauseRuns int, opts ...Option) bool {
	if s.Done {
		return true
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if s.Outcomes == nil {
		s.Outcomes = map[string]int{}
	}
	if maxRuns <= 0 {
		maxRuns = check.DefaultMaxRuns
	}
	if s.Dedup == nil {
		s.Dedup = cfg.dedup
	}
	eo := check.Options{MaxRuns: maxRuns, Workers: cfg.workers, Stats: cfg.stats, Footprint: cfg.fp, POR: cfg.por, Plan: cfg.plan, Dedup: s.Dedup}.ExploreOpts()
	eo.Resume = s.Frontier
	eo.PauseRuns = pauseRuns
	// The explorer bounds one call; the job bound spans segments.
	eo.MaxRuns = maxRuns - s.Runs
	if eo.MaxRuns <= 0 {
		s.Done = true
		return true
	}
	var mu sync.Mutex
	er := machine.ExploreParallel(eo,
		func() (func() machine.Program, func(*machine.Result) bool) {
			return t.Build, func(r *machine.Result) bool {
				switch r.Status {
				case machine.OK:
					key := outcomeKey(r.Outcome)
					mu.Lock()
					s.Outcomes[key]++
					mu.Unlock()
				case machine.Budget:
					mu.Lock()
					s.Discarded++
					mu.Unlock()
				}
				return true
			}
		})
	s.Runs += er.Runs
	s.Complete = er.Complete
	s.Frontier = er.Frontier
	// Paused with maxRuns budget left → resumable. Anything else
	// (complete, bound exhausted, early stop) ends the job.
	s.Done = !er.Paused || s.Runs >= maxRuns
	return s.Done
}

// Finish evaluates the test's expectations against the accumulated
// histogram and renders the Result. Call after Done (calling earlier
// yields the partial verdict of the explored subset).
func (s *JobState) Finish(t Test) *Result {
	res := &Result{
		Test:      t,
		Runs:      s.Runs,
		Complete:  s.Complete,
		Discarded: s.Discarded,
		Outcomes:  s.Outcomes,
	}
	if res.Outcomes == nil {
		res.Outcomes = map[string]int{}
	}
	for _, f := range t.Forbidden {
		if res.Outcomes[f] > 0 {
			res.ForbiddenSeen = append(res.ForbiddenSeen, f)
		}
	}
	for _, q := range t.Required {
		if res.Outcomes[q] == 0 {
			res.RequiredMissing = append(res.RequiredMissing, q)
		}
	}
	return res
}

// RunWorkers is Run with an explicit worker count.
//
// Deprecated: use Run(t, maxRuns, WithWorkers(workers)).
func RunWorkers(t Test, maxRuns, workers int) *Result {
	return Run(t, maxRuns, WithWorkers(workers))
}

// RunWorkersStats is RunWorkers with a telemetry sink.
//
// Deprecated: use Run(t, maxRuns, WithWorkers(workers), WithStats(stats)).
func RunWorkersStats(t Test, maxRuns, workers int, stats *telemetry.Stats) *Result {
	return Run(t, maxRuns, WithWorkers(workers), WithStats(stats))
}

// RunWorkersFootprint is RunWorkersStats with an optional footprint
// certificate.
//
// Deprecated: use Run(t, maxRuns, WithWorkers(workers), WithStats(stats),
// WithFootprint(fp)).
func RunWorkersFootprint(t Test, maxRuns, workers int, stats *telemetry.Stats, fp *memory.Footprint) *Result {
	return Run(t, maxRuns, WithWorkers(workers), WithStats(stats), WithFootprint(fp))
}

// TraceTest replays the test's default schedule (every decision takes
// branch 0, the one serial exploration visits first) with step-event
// recording, for Chrome trace export. The replay is deterministic, so the
// exported trace is golden-testable.
func TraceTest(t Test) *machine.Result {
	strat := machine.ReplayStrategy(nil)
	return check.Options{}.Runner(true).Run(t.Build(), strat)
}

// twoLoc allocates the standard two shared locations.
func twoLoc(x, y *view.Loc) func(*machine.Thread) {
	return func(th *machine.Thread) {
		*x = th.Alloc("x", 0)
		*y = th.Alloc("y", 0)
	}
}

// Suite returns the litmus tests for the ORC11 machine.
//
//compass:plan-suite
func Suite() []Test {
	return []Test{
		{
			Name: "MP+rel+acq",
			Note: "message passing with release/acquire: stale data forbidden",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.Write(y, 1, memory.Rel)
						},
						func(th *machine.Thread) {
							th.Report("f", th.Read(y, memory.Acq))
							th.Report("d", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Forbidden: []string{"d=0 f=1"},
			Required:  []string{"d=1 f=1", "d=0 f=0"},
		},
		{
			Name: "MP+rlx",
			Note: "relaxed message passing: stale data allowed",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.Write(y, 1, memory.Rlx)
						},
						func(th *machine.Thread) {
							th.Report("f", th.Read(y, memory.Rlx))
							th.Report("d", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Required: []string{"d=0 f=1", "d=1 f=1"},
		},
		{
			Name: "MP+fences",
			Note: "relaxed accesses with release/acquire fences: stale data forbidden",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.Fence(false, true)
							th.Write(y, 1, memory.Rlx)
						},
						func(th *machine.Thread) {
							f := th.Read(y, memory.Rlx)
							th.Fence(true, false)
							th.Report("f", f)
							th.Report("d", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Forbidden: []string{"d=0 f=1"},
			Required:  []string{"d=1 f=1"},
		},
		{
			Name: "SB",
			Note: "store buffering: both-stale allowed without SC accesses (RC11)",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rel)
							th.Report("r1", th.Read(y, memory.Acq))
						},
						func(th *machine.Thread) {
							th.Write(y, 1, memory.Rel)
							th.Report("r2", th.Read(x, memory.Acq))
						},
					},
				}
			},
			Required: []string{"r1=0 r2=0", "r1=1 r2=1"},
		},
		{
			Name: "SB+scfence",
			Note: "store buffering with SC fences: both-stale forbidden",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.FenceSC()
							th.Report("r1", th.Read(y, memory.Rlx))
						},
						func(th *machine.Thread) {
							th.Write(y, 1, memory.Rlx)
							th.FenceSC()
							th.Report("r2", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Forbidden: []string{"r1=0 r2=0"},
			Required:  []string{"r1=1 r2=1", "r1=1 r2=0", "r1=0 r2=1"},
		},
		{
			Name: "LB",
			Note: "load buffering: forbidden in ORC11 (po ∪ rf acyclic)",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Report("r1", th.Read(x, memory.Rlx))
							th.Write(y, 1, memory.Rlx)
						},
						func(th *machine.Thread) {
							th.Report("r2", th.Read(y, memory.Rlx))
							th.Write(x, 1, memory.Rlx)
						},
					},
				}
			},
			Forbidden: []string{"r1=1 r2=1"},
			Required:  []string{"r1=0 r2=0", "r1=0 r2=1", "r1=1 r2=0"},
		},
		{
			Name: "CoRR",
			Note: "coherence of read-read: no location-level reordering",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.Write(x, 2, memory.Rlx)
						},
						func(th *machine.Thread) {
							th.Report("a", th.Read(x, memory.Rlx))
							th.Report("b", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Forbidden: []string{"a=2 b=1", "a=1 b=0", "a=2 b=0"},
			Required:  []string{"a=0 b=0", "a=1 b=2", "a=2 b=2", "a=1 b=1"},
		},
		{
			Name: "IRIW",
			Note: "independent reads of independent writes: readers may disagree (no SC accesses)",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) { th.Write(x, 1, memory.Rel) },
						func(th *machine.Thread) { th.Write(y, 1, memory.Rel) },
						func(th *machine.Thread) {
							th.Report("r1", th.Read(x, memory.Acq))
							th.Report("r2", th.Read(y, memory.Acq))
						},
						func(th *machine.Thread) {
							th.Report("r3", th.Read(y, memory.Acq))
							th.Report("r4", th.Read(x, memory.Acq))
						},
					},
				}
			},
			Required: []string{"r1=1 r2=0 r3=1 r4=0"},
		},
		{
			Name: "2+2W",
			Note: "2+2W weak outcome (mo against execution order) is unreachable in this machine — stricter than RC11, which allows it; realizing it needs promises/speculation (see DESIGN.md)",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.Write(y, 2, memory.Rlx)
						},
						func(th *machine.Thread) {
							th.Write(y, 1, memory.Rlx)
							th.Write(x, 2, memory.Rlx)
						},
					},
					Final: func(th *machine.Thread) {
						th.Report("x", th.Read(x, memory.Rlx))
						th.Report("y", th.Read(y, memory.Rlx))
					},
				}
			},
			Forbidden: []string{"x=1 y=1"},
		},
		{
			Name: "MP+rmw-publish",
			Note: "publication through a release FAA instead of a plain release store",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.FetchAdd(y, 1, memory.Rlx, memory.Rel)
						},
						func(th *machine.Thread) {
							th.Report("f", th.Read(y, memory.Acq))
							th.Report("d", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Forbidden: []string{"d=0 f=1"},
			Required:  []string{"d=1 f=1", "d=0 f=0"},
		},
		{
			Name: "CoWR",
			Note: "coherence of write-read: a thread cannot read a value older than its own write",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) { th.Write(x, 1, memory.Rlx) },
						func(th *machine.Thread) {
							th.Write(x, 2, memory.Rlx)
							th.Report("r", th.Read(x, memory.Rlx))
						},
					},
				}
			},
			Forbidden: []string{"r=0"},
			Required:  []string{"r=2", "r=1"},
		},
		{
			Name: "RMW-atomicity",
			Note: "parallel fetch-and-adds never lose updates",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) { th.FetchAdd(x, 1, memory.Rlx, memory.Rlx) },
						func(th *machine.Thread) { th.FetchAdd(x, 1, memory.Rlx, memory.Rlx) },
						func(th *machine.Thread) { th.FetchAdd(x, 1, memory.Rlx, memory.Rlx) },
					},
					Final: func(th *machine.Thread) {
						th.Report("x", th.Read(x, memory.Rlx))
					},
				}
			},
			Forbidden: []string{"x=0", "x=1", "x=2"},
			Required:  []string{"x=3"},
		},
		{
			Name: "REL-SEQ",
			Note: "release sequence through a relaxed RMW",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rlx)
							th.Write(y, 1, memory.Rel)
						},
						func(th *machine.Thread) {
							th.FetchAdd(y, 1, memory.Rlx, memory.Rlx)
						},
						func(th *machine.Thread) {
							f := th.Read(y, memory.Acq)
							d := th.Read(x, memory.Rlx)
							if f == 2 && d == 0 {
								th.Report("broken", 1)
							} else {
								th.Report("broken", 0)
							}
						},
					},
				}
			},
			Forbidden: []string{"broken=1"},
			Required:  []string{"broken=0"},
		},
		{
			Name: "STAR5",
			Note: "four independent release-writers fanned into one acquire-reader; 5 threads, exhaustively checkable under source-DPOR",
			Build: func() machine.Program {
				var a, b, c, d view.Loc
				return machine.Program{
					Setup: func(th *machine.Thread) {
						a = th.Alloc("a", 0)
						b = th.Alloc("b", 0)
						c = th.Alloc("c", 0)
						d = th.Alloc("d", 0)
					},
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) { th.Write(a, 1, memory.Rel) },
						func(th *machine.Thread) { th.Write(b, 1, memory.Rel) },
						func(th *machine.Thread) { th.Write(c, 1, memory.Rel) },
						func(th *machine.Thread) { th.Write(d, 1, memory.Rel) },
						func(th *machine.Thread) {
							th.Report("r1", th.Read(a, memory.Acq))
							th.Report("r2", th.Read(b, memory.Acq))
							th.Report("r3", th.Read(c, memory.Acq))
							th.Report("r4", th.Read(d, memory.Acq))
						},
					},
				}
			},
			// The writers are mutually independent, so every combination of
			// observed/missed writes is reachable.
			Required: []string{
				"r1=0 r2=0 r3=0 r4=0",
				"r1=1 r2=1 r3=1 r4=1",
				"r1=1 r2=0 r3=0 r4=1",
			},
		},
	}
}
