package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilStatsIsFree(t *testing.T) {
	var s *Stats
	// Every recording method must be a no-op on nil, not a panic.
	s.ExecDone(0, 10)
	s.ReadChoice(3, 1)
	s.ThreadPick(2)
	s.PrefixClaimed(4)
	s.ChildrenPushed(2, 7)
	s.ExploreEarlyStop()
	s.ExploreDepthCapped()
	s.Merge(New())
	New().Merge(s)
	snap := s.Snapshot()
	if snap.Machine.Execs != 0 || snap.Schema != SnapshotSchema {
		t.Fatalf("nil snapshot: %+v", snap)
	}
	if n := testing.AllocsPerRun(100, func() {
		s.ExecDone(0, 10)
		s.ReadChoice(3, 1)
		s.ThreadPick(2)
	}); n != 0 {
		t.Fatalf("nil stats allocated %.1f per run", n)
	}
}

func TestEnabledStatsDoNotAllocatePerStep(t *testing.T) {
	s := New()
	if n := testing.AllocsPerRun(100, func() {
		s.ReadChoice(3, 1)
		s.ThreadPick(2)
		s.ExecDone(0, 10)
	}); n != 0 {
		t.Fatalf("enabled stats allocated %.1f per run", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1024, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 9 || s.Max != 1024 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	// Expected buckets: {0:2 (v=0,-5)}, {1:1}, {2-3:2}, {4-7:2}, {8-15:1}, {1024-2047:1}
	want := []Bucket{
		{0, 0, 2}, {1, 1, 1}, {2, 3, 2}, {4, 7, 2}, {8, 15, 1}, {1024, 2047, 1},
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestStaleRateAndFanout(t *testing.T) {
	s := New()
	s.ReadChoice(2, 1) // latest
	s.ReadChoice(2, 0) // stale
	s.ReadChoice(4, 3) // latest
	s.ReadChoice(4, 0) // stale
	snap := s.Snapshot()
	if snap.Machine.ReadChoices != 4 || snap.Machine.StaleReads != 2 {
		t.Fatalf("choices=%d stale=%d", snap.Machine.ReadChoices, snap.Machine.StaleReads)
	}
	if snap.Machine.StaleRate != 0.5 {
		t.Fatalf("stale rate = %v", snap.Machine.StaleRate)
	}
	if snap.Machine.ReadFanout.Sum != 12 {
		t.Fatalf("fanout sum = %d", snap.Machine.ReadFanout.Sum)
	}
}

func TestMergeEqualsConcurrentSharing(t *testing.T) {
	// Recording into per-worker stats then merging must equal recording
	// into one shared Stats — the invariant check.runParallel relies on.
	shared := New()
	var wg sync.WaitGroup
	workers := make([]*Stats, 4)
	for w := range workers {
		workers[w] = New()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				workers[w].ExecDone(uint8(i%4), i%97)
				workers[w].ReadChoice(2+i%3, i%2)
				workers[w].ThreadPick(i % 6)
				shared.ExecDone(uint8(i%4), i%97)
				shared.ReadChoice(2+i%3, i%2)
				shared.ThreadPick(i % 6)
			}
		}(w)
	}
	wg.Wait()
	merged := New()
	for _, w := range workers {
		merged.Merge(w)
	}
	if !reflect.DeepEqual(merged.Snapshot(), shared.Snapshot()) {
		t.Fatalf("merged != shared:\n%+v\n%+v", merged.Snapshot(), shared.Snapshot())
	}
}

func TestSnapshotJSONRoundTripAndValidate(t *testing.T) {
	s := New()
	s.ExecDone(0, 100)
	s.ExecDone(2, 50) // budget
	s.ReadChoice(3, 0)
	s.ThreadPick(0)
	s.ThreadPick(1)
	s.PrefixClaimed(2)
	s.ChildrenPushed(3, 3)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(buf.Bytes()); err != nil {
		t.Fatalf("emitted snapshot does not validate: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Machine.ExecsByStatus["ok"] != 1 || snap.Machine.ExecsByStatus["budget"] != 1 {
		t.Fatalf("by-status: %v", snap.Machine.ExecsByStatus)
	}
	if len(snap.Machine.ThreadPicks) != 2 {
		t.Fatalf("thread picks: %v", snap.Machine.ThreadPicks)
	}
}

func TestValidateSnapshotRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"wrong schema":   `{"schema":"nope","machine":{"execs_by_status":{},"execs":0,"steps":0,"steps_per_exec":{"count":0,"sum":0,"max":0,"mean":0},"read_choices":0,"stale_reads":0,"stale_rate":0,"read_fanout":{"count":0,"sum":0,"max":0,"mean":0}},"explore":{"prefixes":0,"children":0,"prefix_depth":{"count":0,"sum":0,"max":0,"mean":0},"frontier_peak":0,"early_stops":0,"depth_capped":0},"fuzz":{"programs":0,"execs":0,"discarded":0,"failures":0,"shrink_attempts":0,"shrink_accepted":0,"artifacts":0}}`,
		"unknown status": `{"schema":"compass/telemetry/v1","machine":{"execs_by_status":{"weird":1},"execs":1,"steps":0,"steps_per_exec":{"count":1,"sum":0,"max":0,"mean":0},"read_choices":0,"stale_reads":0,"stale_rate":0,"read_fanout":{"count":0,"sum":0,"max":0,"mean":0}},"explore":{"prefixes":0,"children":0,"prefix_depth":{"count":0,"sum":0,"max":0,"mean":0},"frontier_peak":0,"early_stops":0,"depth_capped":0},"fuzz":{"programs":0,"execs":0,"discarded":0,"failures":0,"shrink_attempts":0,"shrink_accepted":0,"artifacts":0}}`,
		"total mismatch": `{"schema":"compass/telemetry/v1","machine":{"execs_by_status":{"ok":2},"execs":1,"steps":0,"steps_per_exec":{"count":1,"sum":0,"max":0,"mean":0},"read_choices":0,"stale_reads":0,"stale_rate":0,"read_fanout":{"count":0,"sum":0,"max":0,"mean":0}},"explore":{"prefixes":0,"children":0,"prefix_depth":{"count":0,"sum":0,"max":0,"mean":0},"frontier_peak":0,"early_stops":0,"depth_capped":0},"fuzz":{"programs":0,"execs":0,"discarded":0,"failures":0,"shrink_attempts":0,"shrink_accepted":0,"artifacts":0}}`,
	}
	for name, data := range cases {
		if err := ValidateSnapshotJSON([]byte(data)); err == nil {
			t.Fatalf("%s: validation passed unexpectedly", name)
		}
	}
}

func TestChromeTraceWriteAndValidate(t *testing.T) {
	tr := NewChromeTrace()
	tr.Append(
		ProcessName(0, "litmus SB"),
		ThreadName(0, 0, "T0 (main)"),
		TraceEvent{Name: "write x", Cat: "machine", Ph: "X", TS: 1, Dur: 1, PID: 0, TID: 1,
			Args: map[string]interface{}{"mode": "rel", "val": int64(1)}},
		TraceEvent{Name: "status ok", Ph: "i", TS: 9, PID: 0, TID: 0},
	)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace does not validate: %v", err)
	}
	for _, bad := range []string{
		`{}`, // missing traceEvents
		`{"traceEvents":[{"name":"","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		`{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		`{"traceEvents":[{"name":"x","ph":"X","ts":-1,"pid":0,"tid":0}]}`,
	} {
		if err := ValidateChromeTraceJSON([]byte(bad)); err == nil {
			t.Fatalf("bad trace validated: %s", bad)
		}
	}
}

func TestStartProgress(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	stop := StartProgress(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), time.Millisecond, func() string { return "tick" })
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "tick") {
		t.Fatalf("no progress lines: %q", out)
	}
	// Disabled variants are no-ops.
	StartProgress(nil, time.Second, func() string { return "x" })()
	StartProgress(&buf, 0, func() string { return "x" })()
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
