package deque_test

import (
	"testing"

	"compass/internal/check"
	"compass/internal/deque"
	"compass/internal/machine"
	"compass/internal/spec"
)

func good(th *machine.Thread) *deque.Deque { return deque.New(th, "wsq", 64) }

func requirePass(t *testing.T, rep *check.Report) {
	t.Helper()
	if !rep.Passed() {
		t.Fatalf("%s", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("no execution completed: %s", rep)
	}
}

func requireFailureFound(t *testing.T, rep *check.Report) {
	t.Helper()
	if rep.Passed() {
		t.Fatalf("expected violations, none found: %s", rep)
	}
}

func TestDequeHB(t *testing.T) {
	requirePass(t, check.Run("wsq/hb",
		check.DequeWorkStealing(good, spec.LevelHB, 4, 2, 3),
		check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestDequeHBHighContention(t *testing.T) {
	requirePass(t, check.Run("wsq/hb-hot",
		check.DequeWorkStealing(good, spec.LevelHB, 3, 3, 3),
		check.Options{Executions: 400, StaleBias: 0.7}))
}

func TestDequeHist(t *testing.T) {
	requirePass(t, check.Run("wsq/hist",
		check.DequeWorkStealing(good, spec.LevelHist, 3, 2, 2),
		check.Options{Executions: 300, StaleBias: 0.5}))
}

func TestDequeBuggyNoSCFenceCaught(t *testing.T) {
	// Without the SC fences, the take/steal race on the last element can
	// consume it twice — the documented Chase-Lev weak-memory pitfall.
	f := func(th *machine.Thread) *deque.Deque { return deque.NewBuggyNoSCFence(th, "wsq", 64) }
	requireFailureFound(t, check.Run("wsq/no-sc-fence",
		check.DequeWorkStealing(f, spec.LevelHB, 4, 2, 3),
		check.Options{Executions: 1500, StaleBias: 0.7}))
}

func TestDequeSequentialOwner(t *testing.T) {
	// Pure owner usage behaves like a stack (LIFO at the bottom).
	build := func() check.Checked {
		var d *deque.Deque
		return check.Checked{
			Prog: machine.Program{
				Setup: func(th *machine.Thread) { d = good(th) },
				Workers: []func(*machine.Thread){func(th *machine.Thread) {
					if _, ok := d.TakeBottom(th); ok {
						th.Failf("take from empty succeeded")
					}
					d.PushBottom(th, 1)
					d.PushBottom(th, 2)
					if v, ok := d.TakeBottom(th); !ok || v != 2 {
						th.Failf("take = %d,%v; want 2", v, ok)
					}
					if v, ok := d.TakeBottom(th); !ok || v != 1 {
						th.Failf("take = %d,%v; want 1", v, ok)
					}
				}},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckDeque(d.Recorder().Graph(), spec.LevelSC))
			},
		}
	}
	requirePass(t, check.Run("wsq/seq", build, check.Options{Executions: 20}))
}

func TestDequeStealsFIFO(t *testing.T) {
	// With only thieves consuming, elements leave in push order.
	build := func() check.Checked {
		var d *deque.Deque
		return check.Checked{
			Prog: machine.Program{
				Setup: func(th *machine.Thread) {
					d = good(th)
				},
				Workers: []func(*machine.Thread){
					func(th *machine.Thread) {
						for i := int64(1); i <= 4; i++ {
							d.PushBottom(th, i)
						}
					},
					func(th *machine.Thread) {
						last := int64(0)
						for i := 0; i < 8; i++ {
							if v, ok := d.Steal(th); ok {
								if v <= last {
									th.Failf("steals out of order: %d after %d", v, last)
								}
								last = v
							}
						}
					},
				},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckDeque(d.Recorder().Graph(), spec.LevelHB))
			},
		}
	}
	requirePass(t, check.Run("wsq/fifo-steals", build, check.Options{Executions: 300, StaleBias: 0.5}))
}

func TestDequeCapacityExceeded(t *testing.T) {
	f := func(th *machine.Thread) *deque.Deque { return deque.New(th, "wsq", 2) }
	rep := check.Run("wsq/cap", check.DequeWorkStealing(f, spec.LevelHB, 4, 0, 0),
		check.Options{Executions: 5})
	requireFailureFound(t, rep)
}

func TestDequeRejectsNonPositive(t *testing.T) {
	prog := machine.Program{
		Workers: []func(*machine.Thread){func(th *machine.Thread) {
			d := deque.New(th, "wsq", 4)
			d.PushBottom(th, 0)
		}},
	}
	res := (&machine.Runner{}).Run(prog, machine.NewRandom(1))
	if res.Status != machine.Failed {
		t.Fatalf("status = %v, want Failed", res.Status)
	}
}
