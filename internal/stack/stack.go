// Package stack provides the paper's stack implementations on the
// simulated ORC11 memory:
//
//   - Treiber: the relaxed Treiber stack [70] (release CAS pushes, acquire
//     CAS pops), verified in the paper against the LAT_hb^hist specs
//     (§3.3) — its commit (CAS) order on the head is the total order the
//     linearization is built from.
//   - SCStack: a coarse-grained lock-based baseline satisfying the SC spec.
//   - ElimStack: the elimination stack of Hendler, Shavit and Yerushalmi
//     [32], composed from a base Treiber stack and an exchanger with no
//     additional atomic instructions, exactly as in §4.1. Its events are
//     mirrored onto the base stack's commit points and onto the
//     exchanger's atomic pair commits.
package stack

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/view"
)

// PopStatus is the outcome of a single pop attempt.
type PopStatus uint8

const (
	// PopOK: an element was popped.
	PopOK PopStatus = iota
	// PopEmpty: the popper saw an empty stack (possibly stale, §3.3).
	PopEmpty
	// PopRace: the attempt lost a CAS race (FAIL_RACE in the paper).
	PopRace
)

func (s PopStatus) String() string {
	switch s {
	case PopOK:
		return "ok"
	case PopEmpty:
		return "empty"
	case PopRace:
		return "race"
	}
	return "popstatus(?)"
}

// Stack is the common interface of the stack implementations. Values must
// be positive (negative values are reserved for the elimination sentinel).
type Stack interface {
	// Push inserts v, retrying contention until it succeeds.
	Push(th *machine.Thread, v int64)
	// Pop removes the most recent element, retrying contention; false
	// means the popper saw an empty stack.
	Pop(th *machine.Thread) (int64, bool)
	// Recorder exposes the event graph recorder.
	Recorder() *core.Recorder
}

// nodeCells is the layout of one stack node: immutable value/event-ID/next
// cells, all non-atomic, published by the release CAS on the head.
type nodeCells struct {
	val  view.Loc
	eid  view.Loc
	next view.Loc
}

type nodeTable struct {
	nodes []nodeCells
}

func (nt *nodeTable) alloc(th *machine.Thread, name string, v, eid int64) int64 {
	n := nodeCells{
		val:  th.Alloc(name+".val", v),
		eid:  th.Alloc(name+".eid", eid),
		next: th.Alloc(name+".next", 0),
	}
	nt.nodes = append(nt.nodes, n)
	return int64(len(nt.nodes))
}

// at resolves a non-nil handle (see the queue nodeTable: the decode is
// why stack workloads carry a ⊤ static plan).
//
//compass:loctrack-top node table indexed by memory-held handles
func (nt *nodeTable) at(h int64) nodeCells { return nt.nodes[h-1] }
