package litmus

import (
	"reflect"
	"sort"
	"testing"

	"compass/internal/analysis/footprint"
	"compass/internal/check"
)

// outcomeKeySet returns the sorted set of distinct outcome keys observed
// by a result — the invariant POR preserves. (The histogram counts are
// NOT preserved: POR's whole point is visiting fewer representatives of
// each equivalence class.)
func outcomeKeySet(r *Result) []string {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestPOREquivalence is the soundness gate for partial-order reduction,
// modeled on TestFootprintEquivalence but asserting the weaker (and
// correct) invariant: for every litmus test in the suite plus the
// footprint-rich workloads, exhaustive exploration under sleep sets and
// under source-DPOR must each produce the identical outcome *set* — and
// therefore the identical verdict — as exploration without reduction,
// with no more runs; and source-DPOR must explore no more runs than
// sleep sets.
func TestPOREquivalence(t *testing.T) {
	tests := append(Suite(), FootprintSuite()...)
	for _, tc := range tests {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			plain := Run(tc, 0, WithWorkers(1))
			runs := map[check.PORMode]int{}
			for _, mode := range []check.PORMode{check.PORSleep, check.PORSource} {
				reduced := Run(tc, 0, WithWorkers(1), WithPORMode(mode))
				if !plain.Complete || !reduced.Complete {
					t.Fatalf("completeness diverged or lost under %v: plain=%v por=%v", mode, plain.Complete, reduced.Complete)
				}
				if got, want := outcomeKeySet(reduced), outcomeKeySet(plain); !reflect.DeepEqual(got, want) {
					t.Errorf("outcome sets diverged under %v:\nwithout POR: %v\nwith POR:    %v", mode, want, got)
				}
				if plain.OK() != reduced.OK() {
					t.Errorf("verdict diverged under %v: plain=%v por=%v", mode, plain.OK(), reduced.OK())
				}
				if reduced.Runs > plain.Runs {
					t.Errorf("%v explored more runs (%d) than full exploration (%d)", mode, reduced.Runs, plain.Runs)
				}
				runs[mode] = reduced.Runs
			}
			if runs[check.PORSource] > runs[check.PORSleep] {
				t.Errorf("source-DPOR explored more runs (%d) than sleep sets (%d)",
					runs[check.PORSource], runs[check.PORSleep])
			}
		})
	}
}

// TestPORReductionBites pins the acceptance bar: at least three tests of
// the core litmus suite must explore at least 3x fewer executions under
// POR at identical outcome sets. (Currently SB, LB and IRIW clear the
// bar; IRIW — four threads, two locations — collapses by ~88x.)
func TestPORReductionBites(t *testing.T) {
	hits := 0
	for _, tc := range Suite() {
		plain := Run(tc, 0, WithWorkers(1))
		reduced := Run(tc, 0, WithWorkers(1), WithPOR(true))
		if !reflect.DeepEqual(outcomeKeySet(plain), outcomeKeySet(reduced)) {
			t.Fatalf("%s: outcome sets diverged", tc.Name)
		}
		if reduced.Runs*3 <= plain.Runs {
			hits++
			t.Logf("%s: %d -> %d executions (%.1fx)", tc.Name, plain.Runs, reduced.Runs,
				float64(plain.Runs)/float64(reduced.Runs))
		}
	}
	if hits < 3 {
		t.Fatalf("only %d suite tests achieved a 3x reduction, want >= 3", hits)
	}
}

// TestSourceDPORBitesOnIRIW pins this PR's acceptance bar: on IRIW —
// four threads, two locations, where sleep sets leave the read-choice
// blowup untouched — source-DPOR's read floors must cut executions to
// at most a fifth of the sleep-set count, at the identical outcome set.
func TestSourceDPORBitesOnIRIW(t *testing.T) {
	var iriw Test
	for _, tc := range Suite() {
		if tc.Name == "IRIW" {
			iriw = tc
			break
		}
	}
	if iriw.Name == "" {
		t.Fatal("IRIW not in suite")
	}
	sleep := Run(iriw, 0, WithWorkers(1), WithPORMode(check.PORSleep))
	source := Run(iriw, 0, WithWorkers(1), WithPORMode(check.PORSource))
	if !sleep.Complete || !source.Complete {
		t.Fatalf("incomplete: sleep=%v source=%v", sleep.Complete, source.Complete)
	}
	if !reflect.DeepEqual(outcomeKeySet(sleep), outcomeKeySet(source)) {
		t.Fatalf("outcome sets diverged:\nsleep:  %v\nsource: %v", outcomeKeySet(sleep), outcomeKeySet(source))
	}
	if source.Runs*5 > sleep.Runs {
		t.Fatalf("source-DPOR on IRIW: %d runs, want <= 1/5 of sleep's %d", source.Runs, sleep.Runs)
	}
	t.Logf("IRIW: sleep=%d source=%d (%.1fx)", sleep.Runs, source.Runs,
		float64(sleep.Runs)/float64(source.Runs))
}

// TestSTAR5ExhaustiveUnderSource pins that the five-thread STAR5 test —
// added with this PR precisely because it is out of comfortable reach
// without dynamic reduction — explores exhaustively under source-DPOR
// and agrees with the unreduced outcome set.
func TestSTAR5ExhaustiveUnderSource(t *testing.T) {
	var star Test
	for _, tc := range Suite() {
		if tc.Name == "STAR5" {
			star = tc
			break
		}
	}
	if star.Name == "" {
		t.Fatal("STAR5 not in suite")
	}
	source := Run(star, 0, WithWorkers(1), WithPORMode(check.PORSource))
	if !source.Complete {
		t.Fatalf("STAR5 incomplete under source-DPOR after %d runs", source.Runs)
	}
	if !source.OK() {
		t.Fatalf("STAR5 failed under source-DPOR:\n%s", source)
	}
	plain := Run(star, 0, WithWorkers(1))
	if !plain.Complete {
		t.Fatalf("STAR5 incomplete unreduced after %d runs", plain.Runs)
	}
	if !reflect.DeepEqual(outcomeKeySet(plain), outcomeKeySet(source)) {
		t.Fatalf("outcome sets diverged:\nplain:  %v\nsource: %v", outcomeKeySet(plain), outcomeKeySet(source))
	}
	t.Logf("STAR5: plain=%d source=%d", plain.Runs, source.Runs)
}

// TestPORComposesWithFootprintAndWorkers exercises the full stack at
// once, in both reduction modes: POR plus a footprint certificate plus
// parallel subtree exploration must visit exactly the runs the serial
// POR exploration does and observe the same outcome set. For source-DPOR
// this doubles as the purity gate — wakes and read floors must be a
// function of the decision prefix alone, or the pinned-prefix parallel
// explorer would produce a different tree.
func TestPORComposesWithFootprintAndWorkers(t *testing.T) {
	tests := append(Suite(), FootprintSuite()...)
	for _, tc := range tests {
		for _, mode := range []check.PORMode{check.PORSleep, check.PORSource} {
			tc, mode := tc, mode
			t.Run(tc.Name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				fp, err := footprint.Extract(tc.Build)
				if err != nil {
					t.Fatalf("extracting footprint: %v", err)
				}
				serial := Run(tc, 0, WithWorkers(1), WithPORMode(mode))
				stacked := Run(tc, 0, WithWorkers(4), WithPORMode(mode), WithFootprint(fp))
				if stacked.Runs != serial.Runs {
					t.Errorf("runs diverged: serial POR %d, POR+footprint+workers %d", serial.Runs, stacked.Runs)
				}
				if !reflect.DeepEqual(outcomeKeySet(serial), outcomeKeySet(stacked)) {
					t.Errorf("outcome sets diverged:\nserial:  %v\nstacked: %v",
						outcomeKeySet(serial), outcomeKeySet(stacked))
				}
				if serial.OK() != stacked.OK() {
					t.Errorf("verdict diverged: serial=%v stacked=%v", serial.OK(), stacked.OK())
				}
			})
		}
	}
}
