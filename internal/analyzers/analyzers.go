// Package analyzers registers the compasslint pass suite: which
// analyzers exist and which packages each one patrols. cmd/compasslint
// drives it from the command line; TestTreeClean keeps the tree itself
// lint-clean in CI.
package analyzers

import (
	"strings"

	"compass/internal/analyzers/detnondet"
	"compass/internal/analyzers/lint"
	"compass/internal/analyzers/loctrack"
	"compass/internal/analyzers/modecheck"
	"compass/internal/analyzers/planstale"
	"compass/internal/analyzers/runnerctor"
	"compass/internal/analyzers/speccover"
	"compass/internal/analyzers/tallysite"
	"compass/internal/analyzers/zerovalue"
)

// Entry pairs an analyzer with the package filter that scopes it.
type Entry struct {
	Analyzer *lint.Analyzer
	// Match reports whether the analyzer applies to the package. Filters
	// see real import paths; golden testdata packages bypass them by
	// running the analyzer directly through linttest.
	Match func(pkgPath string) bool
}

// corePkgs are the determinism-critical simulator packages detnondet
// patrols: an execution is replayed from its decision sequence by code
// in exactly these packages.
var corePkgs = []string{
	"compass/internal/machine",
	"compass/internal/memory",
	"compass/internal/view",
	"compass/internal/core",
}

// libPkgs are the library implementation packages loctrack patrols: the
// code whose location flow the static plan analysis must either follow
// or find annotated.
var libPkgs = []string{
	"compass/internal/queue",
	"compass/internal/stack",
	"compass/internal/deque",
	"compass/internal/exchanger",
	"compass/internal/lock",
}

// Suite returns the registered passes in reporting order.
func Suite() []Entry {
	return []Entry{
		{detnondet.Analyzer, func(p string) bool {
			for _, core := range corePkgs {
				if p == core || p == core+"_test" {
					return true
				}
			}
			return false
		}},
		{zerovalue.Analyzer, func(string) bool { return true }},
		{tallysite.Analyzer, func(p string) bool {
			// The telemetry package mutates its own cells by definition.
			return trimTest(p) != "compass/internal/telemetry"
		}},
		{runnerctor.Analyzer, func(p string) bool {
			// The machine package constructs its own runners (explorer
			// workers, replay helpers).
			return trimTest(p) != "compass/internal/machine"
		}},
		{modecheck.Analyzer, func(string) bool { return true }},
		{loctrack.Analyzer, func(p string) bool {
			for _, lib := range libPkgs {
				if trimTest(p) == lib {
					return true
				}
			}
			return false
		}},
		{speccover.Analyzer, func(p string) bool {
			return trimTest(p) == "compass/internal/check"
		}},
		{planstale.Analyzer, func(p string) bool {
			return trimTest(p) == "compass/internal/analysis/staticplan"
		}},
	}
}

func trimTest(pkgPath string) string { return strings.TrimSuffix(pkgPath, "_test") }

// Check loads the patterns and runs every suite entry over the packages
// it matches, returning all diagnostics in package order.
func Check(loader *lint.Loader, patterns ...string) ([]lint.Diagnostic, error) {
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, e := range Suite() {
			if !e.Match(pkg.PkgPath) {
				continue
			}
			diags, err := lint.Run(e.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	return all, nil
}
