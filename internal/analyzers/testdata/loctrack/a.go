// Package loctrack is the golden corpus for the loctrack analyzer.
package loctrack

import (
	"compass/internal/machine"
	"compass/internal/view"
)

type cells struct {
	locs []view.Loc
}

type entry struct {
	val int64
	loc view.Loc
}

// goodAlloc uses derivable names: constants, string parameters, and
// their concatenations all fold statically.
func goodAlloc(th *machine.Thread, name string) view.Loc {
	_ = th.Alloc("head", 0)
	return th.Alloc(name+".tail", 0)
}

func badName(th *machine.Thread, i rune) view.Loc {
	return th.Alloc(string(i), 0) // want `allocation name is not statically derivable`
}

func discarded(th *machine.Thread) {
	th.Alloc("x", 0) // want `allocation result discarded`
}

func erased(th *machine.Thread) int64 {
	return int64(th.Alloc("x", 0)) // want `allocation result converted away from view\.Loc`
}

// tracked destinations: assignments, composite literals, stores into
// Loc slices, and ordinary call arguments are all analyzable flow.
func trackedFlow(th *machine.Thread, c *cells, i int) {
	x := th.Alloc("a", 0)
	c.locs[i] = th.Alloc("b", 0)
	use(th.Alloc("c", 0))
	_ = x
}

func use(l view.Loc) {}

func undecodedRead(c *cells, i int64) view.Loc {
	return c.locs[i] // want `location recovered by a non-constant index`
}

// nodeAt is the sanctioned node-table decoder pattern.
//
//compass:loctrack-top node table indexed by memory-held handles
func nodeAt(c *cells, i int64) view.Loc {
	return c.locs[i] // ok: loctrack-top acknowledges the ⊤ plan
}

func fixedRead(c *cells) view.Loc {
	return c.locs[0] // ok: constant index is a fixed site
}

func structElem(es []entry, i int) entry {
	return es[i] // want `location recovered by a non-constant index`
}

func plainInts(xs []int64, i int) int64 {
	return xs[i] // ok: no location identity in the elements
}
