package litmus

import (
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// FootprintSuite returns exploration workloads (NOT part of Suite — the
// golden corpus pins that) whose locations actually earn footprint
// certificates: read-only configuration, thread-exclusive scratch state,
// and a shared flag that keeps the exploration branching. The equivalence
// test runs them alongside the suite, and cmd/benchreport sweeps them to
// measure how much per-access work pruning removes.
//
//compass:plan-suite
func FootprintSuite() []Test {
	return []Test{
		{
			Name: "FP-counters",
			Note: "read-only config + per-thread na counters + one shared rlx flag",
			Build: func() machine.Program {
				var cfg, c1, c2, flag view.Loc
				return machine.Program{
					Setup: func(th *machine.Thread) {
						cfg = th.Alloc("cfg", 7)
						c1 = th.Alloc("c1", 0)
						c2 = th.Alloc("c2", 0)
						flag = th.Alloc("flag", 0)
					},
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							n := th.Read(cfg, memory.Rlx)
							for i := int64(0); i < n%3; i++ {
								th.Write(c1, th.Read(c1, memory.NA)+1, memory.NA)
							}
							th.Write(flag, 1, memory.Rel)
							th.Report("c1", th.Read(c1, memory.NA))
						},
						func(th *machine.Thread) {
							th.Report("f", th.Read(flag, memory.Acq))
							th.Write(c2, th.Read(cfg, memory.Rlx), memory.NA)
							th.Report("c2", th.Read(c2, memory.NA))
						},
					},
				}
			},
		},
		{
			Name: "FP-mixed",
			Note: "exclusive atomics alongside a genuinely contended location",
			Build: func() machine.Program {
				var mine, shared view.Loc
				return machine.Program{
					Setup: func(th *machine.Thread) {
						mine = th.Alloc("mine", 0)
						shared = th.Alloc("shared", 0)
					},
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(mine, 1, memory.Rlx)
							th.Write(shared, th.Read(mine, memory.Rlx), memory.Rlx)
						},
						func(th *machine.Thread) {
							th.Report("s", th.Read(shared, memory.Rlx))
						},
					},
					Final: func(th *machine.Thread) {
						th.Report("final", th.Read(shared, memory.Rlx))
					},
				}
			},
		},
	}
}
