// Command mpqueue reproduces Figure 1 of the paper: the Message-Passing
// client over a weakly consistent queue. The left thread enqueues 41 and
// 42 and raises a flag; the middle thread dequeues once; the right thread
// waits for the flag and then dequeues — and can never see an empty queue,
// because the two enqueues happen-before its dequeue through the external
// release/acquire synchronization and at most one was consumed.
//
// Run with -relaxed-flag to drop the flag's release/acquire: the property
// then fails in some executions (the harness prints the witnessing seed),
// demonstrating that it is exactly the combination of the library's
// internal partial orders with the client's external synchronization that
// makes the argument go through — the reasoning Cosmo's so-only specs
// cannot express (§1.1).
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	impl := flag.String("impl", "hw", "queue implementation: ms, hw, sc")
	execs := flag.Int("n", 2000, "number of random executions")
	relaxed := flag.Bool("relaxed-flag", false, "use a relaxed flag (ablation: property fails)")
	seed := flag.Int64("seed", 1, "first scheduler seed")
	flag.Parse()

	var factory compass.QueueFactory
	level := compass.LevelHB
	switch *impl {
	case "ms":
		factory = func(th *compass.Thread) compass.Queue { return compass.NewMSQueue(th, "q") }
	case "hw":
		factory = func(th *compass.Thread) compass.Queue { return compass.NewHWQueue(th, "q", 16) }
	case "sc":
		factory = func(th *compass.Thread) compass.Queue { return compass.NewSCQueue(th, "q", 16) }
		level = compass.LevelSC
	default:
		fmt.Fprintf(os.Stderr, "unknown -impl %q\n", *impl)
		os.Exit(2)
	}

	build := compass.MPQueueClient(factory, level, !*relaxed)
	rep := compass.RunChecked(fmt.Sprintf("MP/%s", *impl), build, compass.CheckOptions{
		Executions: *execs, Seed: *seed, StaleBias: 0.6,
	})
	fmt.Println(rep)
	if !rep.Passed() {
		if *relaxed {
			fmt.Println("\n(expected: without the release flag the right thread's dequeue can be empty)")
			return
		}
		os.Exit(1)
	}
	fmt.Println("\nFig. 1 property verified on every explored execution:")
	fmt.Println("the right thread's dequeue always returned 41 or 42, never empty.")
}
