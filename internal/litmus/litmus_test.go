package litmus

import (
	"testing"
)

func TestSuiteAllPass(t *testing.T) {
	for _, tc := range Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			res := Run(tc, 400000)
			if !res.OK() {
				t.Fatalf("%s", res)
			}
		})
	}
}

func TestOutcomeKeyCanonical(t *testing.T) {
	k := outcomeKey(map[string]int64{"b": 2, "a": 1})
	if k != "a=1 b=2" {
		t.Fatalf("key = %q", k)
	}
}

func TestResultStringHasVerdict(t *testing.T) {
	res := Run(Suite()[0], 400000)
	s := res.String()
	if len(s) == 0 || res.Outcomes == nil {
		t.Fatal("empty result rendering")
	}
}

func TestForbiddenDetection(t *testing.T) {
	// A deliberately wrong expectation must be flagged, proving the
	// harness actually checks something.
	bad := Suite()[1] // MP+rlx: the weak outcome IS observed
	bad.Forbidden = []string{"d=0 f=1"}
	res := Run(bad, 400000)
	if res.OK() || len(res.ForbiddenSeen) == 0 {
		t.Fatalf("harness failed to flag a seen forbidden outcome: %s", res)
	}
}

func TestRequiredDetection(t *testing.T) {
	bad := Suite()[0] // MP+rel+acq: stale data never happens
	bad.Required = append(bad.Required, "d=0 f=1")
	res := Run(bad, 400000)
	if res.OK() || len(res.RequiredMissing) == 0 {
		t.Fatalf("harness failed to flag a missing required outcome: %s", res)
	}
}
