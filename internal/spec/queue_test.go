package spec

import (
	"strings"
	"testing"

	"compass/internal/core"
)

// hasViolation reports whether the result contains a violation of rule.
func hasViolation(r Result, rule string) bool {
	for _, v := range r.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func requireOK(t *testing.T, r Result) {
	t.Helper()
	if !r.OK() {
		var lines []string
		for _, v := range r.Violations {
			lines = append(lines, v.String())
		}
		t.Fatalf("check failed at %v:\n%s", r.Level, strings.Join(lines, "\n"))
	}
}

func requireRule(t *testing.T, r Result, rule string) {
	t.Helper()
	if !hasViolation(r, rule) {
		t.Fatalf("expected violation of %s, got %v", rule, r.Violations)
	}
}

// validQueueGraph: e0=Enq(1), e1=Enq(2) (after e0), d2=Deq(1), d3=Deq(2),
// d4=EmpDeq observing everything.
func validQueueGraph() *core.Graph {
	b := core.NewGraphBuilder("q")
	e0 := b.Add(core.Enq, 1, 0)
	e1 := b.Add(core.Enq, 2, 0, e0)
	d2 := b.Add(core.Deq, 1, 0, e0)
	d3 := b.Add(core.Deq, 2, 0, e1, d2)
	b.Add(core.EmpDeq, 0, 0, e0, e1, d2, d3)
	b.So(e0, d2)
	b.So(e1, d3)
	return b.Graph()
}

func TestQueueValidAllLevels(t *testing.T) {
	g := validQueueGraph()
	for _, lvl := range Levels {
		requireOK(t, CheckQueue(g, lvl))
	}
}

func TestQueueEmptyGraphValid(t *testing.T) {
	g := core.NewGraphBuilder("q").Graph()
	for _, lvl := range Levels {
		requireOK(t, CheckQueue(g, lvl))
	}
}

func TestQueueMatchesViolation(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	d := b.Add(core.Deq, 99, 0, e)
	b.So(e, d)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-MATCHES")
}

func TestQueueUnmatchedDeqViolation(t *testing.T) {
	b := core.NewGraphBuilder("q")
	b.Add(core.Deq, 1, 0)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-MATCHED")
}

func TestQueueDoubleDequeueViolation(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	d1 := b.Add(core.Deq, 1, 0, e)
	d2 := b.Add(core.Deq, 1, 0, e)
	b.So(e, d1)
	b.So(e, d2)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-UNIQ")
}

func TestQueueSoShapeViolation(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	d := b.Add(core.EmpDeq, 0, 0, e)
	b.So(e, d) // so must target a successful dequeue
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-SO-SHAPE")
}

func TestQueueFIFOUnmatchedEarlierEnqueue(t *testing.T) {
	// e0 happens-before e1; e1 is dequeued but e0 never is → FIFO violated.
	b := core.NewGraphBuilder("q")
	e0 := b.Add(core.Enq, 1, 0)
	e1 := b.Add(core.Enq, 2, 0, e0)
	d := b.Add(core.Deq, 2, 0, e1)
	b.So(e1, d)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-FIFO")
}

func TestQueueFIFOLateDequeueOfEarlierEnqueue(t *testing.T) {
	// e0 lhb e1; d2 dequeues e1 first, d3 dequeues e0 after → FIFO violated
	// (e0's dequeue commits after e1's).
	b := core.NewGraphBuilder("q")
	e0 := b.Add(core.Enq, 1, 0)
	e1 := b.Add(core.Enq, 2, 0, e0)
	d2 := b.Add(core.Deq, 2, 0, e1)
	d3 := b.Add(core.Deq, 1, 0, e0)
	b.So(e1, d2)
	b.So(e0, d3)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-FIFO")
}

func TestQueueFIFOAllowsUnorderedEnqueues(t *testing.T) {
	// e0 and e1 unordered in lhb: dequeuing in either order is fine.
	b := core.NewGraphBuilder("q")
	e0 := b.Add(core.Enq, 1, 0)
	e1 := b.Add(core.Enq, 2, 0)
	d2 := b.Add(core.Deq, 2, 0, e1)
	d3 := b.Add(core.Deq, 1, 0, e0)
	b.So(e1, d2)
	b.So(e0, d3)
	requireOK(t, CheckQueue(b.Graph(), LevelHB))
}

func TestQueueEmpDeqViolation(t *testing.T) {
	// An enqueue happens-before the empty dequeue but is never dequeued.
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	b.Add(core.EmpDeq, 0, 0, e)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-EMPDEQ")
}

func TestQueueEmpDeqDequeuedLaterStillViolates(t *testing.T) {
	// The enqueue is dequeued, but only after the empty dequeue committed.
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	b.Add(core.EmpDeq, 0, 0, e)
	d := b.Add(core.Deq, 1, 0, e)
	b.So(e, d)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-EMPDEQ")
}

func TestQueueEmpDeqInvisibleEnqueueAllowed(t *testing.T) {
	// The enqueue does NOT happen-before the empty dequeue: a weak dequeue
	// may miss it (the RMC-realistic behaviour of §2.3).
	b := core.NewGraphBuilder("q")
	b.Add(core.Enq, 1, 0)
	b.Add(core.EmpDeq, 0, 0)
	requireOK(t, CheckQueue(b.Graph(), LevelHB))
}

func TestQueueAbsLevelRejectsNonFIFOCommitOrder(t *testing.T) {
	// Unordered enqueues dequeued out of commit order: fine at LevelHB,
	// rejected at LevelAbsHB (abstract state not constructible at commits).
	b := core.NewGraphBuilder("q")
	e0 := b.Add(core.Enq, 1, 0)
	e1 := b.Add(core.Enq, 2, 0)
	d2 := b.Add(core.Deq, 2, 0, e1)
	d3 := b.Add(core.Deq, 1, 0, e0)
	b.So(e1, d2)
	b.So(e0, d3)
	requireOK(t, CheckQueue(b.Graph(), LevelHB))
	requireRule(t, CheckQueue(b.Graph(), LevelAbsHB), "ABS-STATE")
}

func TestQueueSCRejectsStaleEmptyHistAccepts(t *testing.T) {
	// EmpDeq commits while the queue is non-empty, but the enqueue is not
	// lhb-ordered before it: LevelHist finds a linearization placing the
	// empty dequeue first; LevelSC rejects.
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	b.Add(core.EmpDeq, 0, 0) // no lhb from e
	d := b.Add(core.Deq, 1, 0, e)
	b.So(e, d)
	requireOK(t, CheckQueue(b.Graph(), LevelHist))
	requireRule(t, CheckQueue(b.Graph(), LevelSC), "SC-STATE")
}

func TestQueueHistRejectsImpossibleHistory(t *testing.T) {
	// EmpDeq lhb-after an undequeued enqueue cannot be linearized (and also
	// violates EMPDEQ).
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	b.Add(core.EmpDeq, 0, 0, e)
	r := CheckQueue(b.Graph(), LevelHist)
	if r.OK() {
		t.Fatal("expected failure")
	}
	requireRule(t, r, "HIST-LINEARIZABLE")
}

func TestQueueLhbOrderViolation(t *testing.T) {
	// An event whose logical view contains a later-committed event breaks
	// logical atomicity (LHB-ORDER).
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	d := b.Add(core.Deq, 1, 0, e)
	b.So(e, d)
	b.AddLhb(d, e) // e claims to have observed d, which commits later
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "LHB-ORDER")
}

func TestQueueForeignKind(t *testing.T) {
	b := core.NewGraphBuilder("q")
	b.Add(core.Push, 1, 0)
	requireRule(t, CheckQueue(b.Graph(), LevelHB), "QUEUE-KINDS")
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		LevelHB: "LAT_hb", LevelAbsHB: "LAT_hb^abs", LevelHist: "LAT_hb^hist", LevelSC: "SC",
	} {
		if lvl.String() != want {
			t.Fatalf("%d.String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
}
