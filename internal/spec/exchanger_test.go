package spec

import (
	"testing"

	"compass/internal/core"
)

func TestExchangerValidPair(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, 20)
	c := b.Add(core.Exchange, 20, 10, a)
	b.So(a, c)
	b.So(c, a)
	b.SetSteps(a, 1, 5)
	b.SetSteps(c, 2, 5)
	requireOK(t, CheckExchanger(b.Graph()))
}

func TestExchangerFailedUnmatchedOK(t *testing.T) {
	b := core.NewGraphBuilder("x")
	b.Add(core.Exchange, 10, core.ExFail)
	requireOK(t, CheckExchanger(b.Graph()))
}

func TestExchangerSuccessWithoutPartner(t *testing.T) {
	b := core.NewGraphBuilder("x")
	b.Add(core.Exchange, 10, 20)
	requireRule(t, CheckExchanger(b.Graph()), "EX-SYM")
}

func TestExchangerAsymmetricSo(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, 20)
	c := b.Add(core.Exchange, 20, 10, a)
	b.So(a, c) // missing the reverse edge
	requireRule(t, CheckExchanger(b.Graph()), "EX-SYM")
}

func TestExchangerSelfMatch(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, 10)
	b.So(a, a)
	requireRule(t, CheckExchanger(b.Graph()), "EX-SYM")
}

func TestExchangerValuesNotSwapped(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, 99)
	c := b.Add(core.Exchange, 20, 10, a)
	b.So(a, c)
	b.So(c, a)
	requireRule(t, CheckExchanger(b.Graph()), "EX-MATCHES")
}

func TestExchangerNonAdjacentCommits(t *testing.T) {
	// A third commit between the pair's commits breaks pair atomicity.
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, 20)
	b.Add(core.Exchange, 5, core.ExFail)
	c := b.Add(core.Exchange, 20, 10, a)
	b.So(a, c)
	b.So(c, a)
	requireRule(t, CheckExchanger(b.Graph()), "EX-ATOMIC-PAIR")
}

func TestExchangerNoOverlap(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, 20)
	c := b.Add(core.Exchange, 20, 10, a)
	b.So(a, c)
	b.So(c, a)
	b.SetSteps(a, 1, 2)
	b.SetSteps(c, 10, 11) // c begins after a's commit... and a commits before c starts
	requireRule(t, CheckExchanger(b.Graph()), "EX-OVERLAP")
}

func TestExchangerFailedButMatched(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 10, core.ExFail)
	c := b.Add(core.Exchange, 20, 10, a)
	b.So(a, c)
	b.So(c, a)
	requireRule(t, CheckExchanger(b.Graph()), "EX-SYM")
}

func TestExchangerForeignKind(t *testing.T) {
	b := core.NewGraphBuilder("x")
	b.Add(core.Push, 1, 0)
	requireRule(t, CheckExchanger(b.Graph()), "EX-KINDS")
}

func TestExchangerTwoPairs(t *testing.T) {
	b := core.NewGraphBuilder("x")
	a := b.Add(core.Exchange, 1, 2)
	c := b.Add(core.Exchange, 2, 1, a)
	d := b.Add(core.Exchange, 3, 4)
	e := b.Add(core.Exchange, 4, 3, d)
	b.So(a, c)
	b.So(c, a)
	b.So(d, e)
	b.So(e, d)
	b.SetSteps(a, 1, 2)
	b.SetSteps(c, 1, 2)
	b.SetSteps(d, 3, 4)
	b.SetSteps(e, 3, 4)
	requireOK(t, CheckExchanger(b.Graph()))
}
