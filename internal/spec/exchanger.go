package spec

import (
	"compass/internal/core"
	"compass/internal/view"
)

// CheckExchanger checks ExchangerConsistent (§4.2, Fig. 5) over the graph:
//
//   - EX-KINDS: only Exchange events.
//   - EX-SYM: so is symmetric and relates each successful exchange to
//     exactly one partner; no self-matches; failed exchanges (v2 = ⊥) are
//     unmatched.
//   - EX-MATCHES: matched exchanges swapped their values
//     (a received what b offered and vice versa).
//   - EX-ATOMIC-PAIR: a matched pair commits atomically together — the two
//     events are adjacent in the commit order, so no other commit can
//     observe the intermediate state between the helpee's and the helper's
//     commit (the helping discipline of §4.2).
//   - EX-OVERLAP: the beginning of each exchange call happens before the
//     end of its match (the paper's footnote 7 on hb between matched
//     exchanges).
//
// The exchanger has a single spec level (LAT_hb); abstract-state and
// history levels do not apply because exchangers have no useful sequential
// behaviours (§1.1).
func CheckExchanger(g *core.Graph) Result {
	res := Result{Level: LevelHB}
	checkLogviewCommitClosed(g, &res)
	idx := commitIndex(g)

	partner := map[view.EventID][]view.EventID{}
	for _, p := range g.So() {
		a, b := p[0], p[1]
		ea, eb := g.Event(a), g.Event(b)
		if ea.Kind != core.Exchange || eb.Kind != core.Exchange {
			res.addf("EX-KINDS", "so edge (%v, %v) not between exchanges", ea, eb)
			continue
		}
		if a == b {
			res.addf("EX-SYM", "%v matched with itself", ea)
			continue
		}
		partner[a] = append(partner[a], b)
	}
	// Symmetry and uniqueness.
	for a, bs := range partner {
		if len(bs) > 1 {
			res.addf("EX-SYM", "%v matched with %d partners", g.Event(a), len(bs))
			continue
		}
		b := bs[0]
		back, ok := partner[b]
		if !ok || len(back) != 1 || back[0] != a {
			res.addf("EX-SYM", "so edge (%v, %v) has no symmetric counterpart", g.Event(a), g.Event(b))
		}
	}
	for _, e := range g.Events() {
		if e.Kind != core.Exchange {
			res.addf("EX-KINDS", "foreign event %v in exchanger graph", e)
			continue
		}
		bs, matched := partner[e.ID]
		if e.Val2 == core.ExFail {
			if matched {
				res.addf("EX-SYM", "failed exchange %v is matched", e)
			}
			continue
		}
		if !matched {
			res.addf("EX-SYM", "successful exchange %v has no partner", e)
			continue
		}
		b := g.Event(bs[0])
		if e.Val2 != b.Val || b.Val2 != e.Val {
			res.addf("EX-MATCHES", "values not swapped between %v and %v", e, b)
		}
		// Atomic pair commit: adjacent in commit order.
		da := idx[e.ID] - idx[b.ID]
		if da != 1 && da != -1 {
			res.addf("EX-ATOMIC-PAIR",
				"matched exchanges %v and %v commit %d positions apart (must be adjacent)",
				e, b, da)
		}
		// Call overlap: each call begins before the other's commit.
		if e.StartStep > b.CommitStep || b.StartStep > e.CommitStep {
			res.addf("EX-OVERLAP", "matched exchanges %v and %v do not overlap in time", e, b)
		}
	}
	return res
}
