// Package zerovalue flags literal-zero writes to Seed and StaleBias
// fields. Options zero values select defaults (Seed: 0 means "seed 1",
// StaleBias: 0 means "default bias"), so code that wants an actual zero
// must say SeedZero / BiasZero — the sentinel fix from PR 1 that this
// pass mechanizes.
package zerovalue

import (
	"go/ast"
	"go/constant"
	"go/types"

	"compass/internal/analyzers/lint"
)

// Analyzer is the zerovalue pass.
var Analyzer = &lint.Analyzer{
	Name: "zerovalue",
	Doc: `flag literal 0 assigned to Seed/StaleBias fields

Seed: 0 and StaleBias: 0 are indistinguishable from "unset" and select
the defaults, so a literal zero almost never means what it says. Request
a true zero with the SeedZero/BiasZero sentinels; silence a deliberate
trap demonstration with //compass:zerovalue-ok on the function.`,
	Run: run,
}

// sentinels maps the trapped field name to the sentinel to suggest.
var sentinels = map[string]string{
	"Seed":      "SeedZero",
	"StaleBias": "BiasZero",
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLit(pass, file, n)
			case *ast.AssignStmt:
				checkAssign(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkLit(pass *lint.Pass, file *ast.File, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if sentinel, trapped := sentinels[key.Name]; trapped {
			report(pass, file, kv.Value, key.Name, sentinel)
		}
	}
}

func checkAssign(pass *lint.Pass, file *ast.File, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		// Only field selections, not same-named methods or package names.
		if s := pass.TypesInfo.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
			continue
		}
		if sentinel, trapped := sentinels[sel.Sel.Name]; trapped {
			report(pass, file, as.Rhs[i], sel.Sel.Name, sentinel)
		}
	}
}

// report flags value when it is the constant 0 and the site is not
// excused by //compass:zerovalue-ok.
func report(pass *lint.Pass, file *ast.File, value ast.Expr, field, sentinel string) {
	tv, ok := pass.TypesInfo.Types[value]
	if !ok || tv.Value == nil {
		return
	}
	if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
		return
	}
	if constant.Sign(tv.Value) != 0 {
		return
	}
	if lint.FuncDirective(file, value.Pos(), "zerovalue-ok") {
		return
	}
	pass.Reportf(value.Pos(), "%s: 0 selects the default, not zero; use %s for a literal zero (or drop the field for the default)", field, sentinel)
}
