package fuzz

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"compass/internal/machine"
	"compass/internal/spec"
)

// Failure is one discovered counterexample: a program plus the decision
// sequence that drives the machine into the failing execution, with the
// verdict that condemned it. Program + Decisions fully determine the
// execution, so a Failure replays byte-for-byte via Replay.
type Failure struct {
	Program   Program            `json:"program"`
	Decisions []machine.Decision `json:"decisions"`
	Status    string             `json:"status"`
	Err       string             `json:"err,omitempty"`
	Violations []spec.Violation  `json:"violations,omitempty"`
	// Key is the failure class (status + sorted violation rules); the
	// shrinker preserves it, and campaign deduplication buckets on it.
	Key string `json:"key"`
	// Shrunk records whether the minimizer ran to a fixpoint.
	Shrunk bool `json:"shrunk"`
}

// failureKey classifies a failing execution so that shrinking can insist
// on reproducing the *same* bug and the campaign can deduplicate. Volatile
// detail (error text, event IDs) is excluded.
func failureKey(status machine.Status, viols []spec.Violation) string {
	rules := map[string]bool{}
	for _, v := range viols {
		rules[v.Rule] = true
	}
	sorted := make([]string, 0, len(rules))
	for r := range rules {
		sorted = append(sorted, r)
	}
	sort.Strings(sorted)
	return status.String() + "|" + strings.Join(sorted, ",")
}

// judge evaluates one completed execution against all three cross-checks.
// It returns nil for a clean run; budget exhaustion is a discard (the
// schedule spun, nothing to conclude), counted by the caller via unknown.
func judge(p Program, inst *Instance, r *machine.Result, trace []machine.Decision) (*Failure, int) {
	switch r.Status {
	case machine.Budget:
		return nil, 0
	case machine.Racy, machine.Failed:
		errText := ""
		if r.Err != nil {
			errText = r.Err.Error()
		}
		return &Failure{
			Program:   p,
			Decisions: trace,
			Status:    r.Status.String(),
			Err:       errText,
			Key:       failureKey(r.Status, nil),
		}, 0
	}
	viols, unknown := inst.Checked.Evaluate()
	if len(viols) == 0 {
		return nil, unknown
	}
	return &Failure{
		Program:    p,
		Decisions:  trace,
		Status:     r.Status.String(),
		Violations: viols,
		Key:        failureKey(r.Status, viols),
	}, unknown
}

// Replay rebuilds the program and re-runs it under the exact decision
// sequence, returning the failure it reproduces (nil if the execution is
// clean — e.g. after a bad shrink candidate). This is the function the
// emitted reproducer artifacts call.
func Replay(p Program, ds []machine.Decision, budget int) (*Failure, error) {
	inst, err := Build(p)
	if err != nil {
		return nil, err
	}
	runner := &machine.Runner{Budget: budget}
	strat := machine.ReplayStrategy(ds)
	r := runner.Run(inst.Checked.Prog, strat)
	f, _ := judge(p, inst, r, strat.Trace)
	return f, nil
}

// explore enumerates the program's executions depth-first (the same
// backtracking scheme as machine.Explore, rebuilt here so each run's
// decision trace is captured for counterexample artifacts), returning the
// first failure, the number of runs, whether the tree was exhausted, and
// the unknown-verdict count.
func explore(p Program, maxRuns, budget int) (*Failure, int, bool, int) {
	runner := &machine.Runner{Budget: budget}
	var prefix []machine.Decision
	runs, unknowns := 0, 0
	for runs < maxRuns {
		inst, err := Build(p)
		if err != nil {
			return nil, runs, false, unknowns
		}
		strat := machine.ReplayStrategy(prefix)
		r := runner.Run(inst.Checked.Prog, strat)
		runs++
		f, unk := judge(p, inst, r, strat.Trace)
		unknowns += unk
		if f != nil {
			return f, runs, false, unknowns
		}
		trace := strat.Trace
		i := len(trace) - 1
		for ; i >= 0; i-- {
			if trace[i].Pick+1 < trace[i].N {
				break
			}
		}
		if i < 0 {
			return nil, runs, true, unknowns
		}
		prefix = append(append([]machine.Decision{}, trace[:i]...),
			machine.Decision{N: trace[i].N, Pick: trace[i].Pick + 1})
	}
	return nil, runs, false, unknowns
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Seed makes the whole campaign deterministic: program generation and
	// every random execution derive from it.
	Seed int64
	// Programs bounds the number of generated programs (default 50; with
	// Duration set, whichever limit is hit first stops the campaign).
	Programs int
	// Duration bounds wall-clock time (0 = no time bound).
	Duration time.Duration
	// Execs is the number of seeded-random executions per program
	// (default 200).
	Execs int
	// StaleBias is the random strategy's stale-read bias (default 0.6 —
	// aggressive weak behaviors).
	StaleBias float64
	// Budget caps machine steps per execution (default 50000).
	Budget int
	// ExhaustiveRuns additionally explores up to this many executions of
	// each program bounded-exhaustively (0 disables; small programs complete
	// the proof within a few hundred runs).
	ExhaustiveRuns int
	// MaxFailures stops the campaign once this many distinct failure
	// classes were found (default 1).
	MaxFailures int
	// NoShrink skips counterexample minimization.
	NoShrink bool
	// Gen shapes program generation.
	Gen GenConfig
	// ArtifactDir, when set, receives one artifact bundle per distinct
	// failure (JSON schedule, Go reproducer, DOT event graphs).
	ArtifactDir string
	// Log, when set, receives campaign progress lines.
	Log io.Writer
}

func (c Config) norm() Config {
	if c.Programs <= 0 {
		c.Programs = 50
		if c.Duration > 0 {
			c.Programs = 1 << 30 // duration-bound campaigns: no program cap
		}
	}
	if c.Execs <= 0 {
		c.Execs = 200
	}
	if c.StaleBias <= 0 {
		c.StaleBias = 0.6
	}
	if c.Budget <= 0 {
		c.Budget = 50000
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 1
	}
	return c
}

// Report summarizes a campaign.
type Report struct {
	Programs int
	Execs    int
	// Unknown counts undecided spec/oracle verdicts (budget-bounded
	// linearizability searches), not failures.
	Unknown  int
	Failures []*Failure // one per distinct failure class, shrunk
	// Artifacts lists the artifact directories written (parallel to
	// Failures when ArtifactDir was set).
	Artifacts []string
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// Fuzz runs a campaign: generate a program, hammer it with seeded-random
// schedules (recording every decision), then sweep it bounded-exhaustively;
// the first execution to fail any cross-check becomes a counterexample,
// which is shrunk to a minimal program + decision sequence and optionally
// written out as a replayable artifact bundle.
func Fuzz(cfg Config) (*Report, error) {
	cfg = cfg.norm()
	rep := &Report{}
	seen := map[string]bool{}
	start := time.Now()
	for i := 0; i < cfg.Programs; i++ {
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		p := Generate(rng, cfg.Gen)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("generated invalid program: %v", err)
		}
		rep.Programs++
		f := fuzzProgram(cfg, rep, p, cfg.Seed+int64(i)*1_000_003)
		if f == nil || seen[f.Key] {
			continue
		}
		seen[f.Key] = true
		logf(cfg.Log, "program %d (%s): FAILURE %s (%d threads, %d ops, %d decisions)",
			i, p.Lib, f.Key, f.Program.NumThreads(), f.Program.NumOps(), len(f.Decisions))
		if !cfg.NoShrink {
			f = Shrink(f, cfg.Budget, cfg.Log)
			logf(cfg.Log, "  shrunk to %d threads, %d ops, %d decisions",
				f.Program.NumThreads(), f.Program.NumOps(), len(f.Decisions))
		}
		rep.Failures = append(rep.Failures, f)
		if cfg.ArtifactDir != "" {
			dir, err := WriteArtifacts(cfg.ArtifactDir, f, cfg.Budget)
			if err != nil {
				return rep, fmt.Errorf("writing artifacts: %v", err)
			}
			rep.Artifacts = append(rep.Artifacts, dir)
			logf(cfg.Log, "  artifacts: %s", dir)
		}
		if len(rep.Failures) >= cfg.MaxFailures {
			break
		}
	}
	return rep, nil
}

// fuzzProgram runs both exploration phases on one program and returns its
// first failure (or nil).
func fuzzProgram(cfg Config, rep *Report, p Program, seed int64) *Failure {
	runner := &machine.Runner{Budget: cfg.Budget}
	for j := 0; j < cfg.Execs; j++ {
		inst, err := Build(p)
		if err != nil {
			return nil
		}
		strat := machine.Record(machine.NewRandomBiased(seed+int64(j), cfg.StaleBias))
		r := runner.Run(inst.Checked.Prog, strat)
		rep.Execs++
		f, unk := judge(p, inst, r, strat.Trace)
		rep.Unknown += unk
		if f != nil {
			return f
		}
	}
	if cfg.ExhaustiveRuns > 0 {
		f, runs, _, unk := explore(p, cfg.ExhaustiveRuns, cfg.Budget)
		rep.Execs += runs
		rep.Unknown += unk
		if f != nil {
			return f
		}
	}
	return nil
}
