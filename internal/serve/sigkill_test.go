package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"
)

const (
	killChildEnv = "COMPASS_SERVE_KILL_CHILD"
	killDirEnv   = "COMPASS_SERVE_KILL_DIR"
	peerChildEnv = "COMPASS_SERVE_PEER_CHILD"
	peerURLEnv   = "COMPASS_SERVE_PEER_URL"
)

// TestMain lets the SIGKILL tests re-exec this binary as a compassd-like
// child process (whole-service or lease-holding peer) that can be killed
// for real, mid-job.
func TestMain(m *testing.M) {
	if os.Getenv(killChildEnv) == "1" {
		runKillChild()
		return
	}
	if os.Getenv(peerChildEnv) == "1" {
		runPeerChild()
		return
	}
	os.Exit(m.Run())
}

// runKillChild is the re-exec'd process: it starts a manager on the
// state dir from the environment, submits one long job, announces the
// job ID on stdout, and runs until killed.
func runKillChild() {
	m, err := NewManager(Config{
		StateDir:        os.Getenv(killDirEnv),
		Workers:         2,
		CheckpointEvery: 200,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	j, err := m.Submit(JobSpec{Workload: "litmus/IRIW", POR: "off"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(j.ID)
	m.Wait()
}

// runPeerChild is the re-exec'd peer process for the multi-process kill
// matrix: it acquires one lease over the real /v1 API, announces the
// lease ID on stdout, and then just keeps renewing — holding the lease
// live, never returning it — until the parent SIGKILLs it. Its death is
// what stops the renewals and lets the lease expire.
func runPeerChild() {
	base := os.Getenv(peerURLEnv)
	p := &Peer{Base: base, Name: "victim"}
	ctx := context.Background()
	var grant LeaseGrant
	for {
		err := p.post(ctx, "/v1/shard/leases", map[string]string{"peer": "victim"}, &grant)
		if err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println(grant.LeaseID)
	renew := map[string]interface{}{
		"job_id": grant.JobID, "lease_id": grant.LeaseID, "epoch": grant.Epoch,
	}
	for {
		time.Sleep(50 * time.Millisecond)
		p.post(ctx, "/v1/shard/leases/renew", renew, nil)
	}
}

// TestShardPeerSIGKILL is the multi-process half of the kill matrix: a
// real peer process acquires a lease over HTTP and is SIGKILLed while
// holding it. The kill is what ends its renewals, so the lease expires,
// the coordinator reclaims the prefixes, and a healthy peer drives the
// job to a result byte-identical to a single-process run — the SIGKILLed
// peer neither loses nor double-counts work.
func TestShardPeerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec smoke test")
	}
	base := JobSpec{Workload: "litmus/SB", POR: "off"}
	want := baseline(t, base, 2)

	spec := base
	spec.Coordinator = true
	spec.LeasePrefixes = 1
	spec.LeaseTTLMillis = 250
	m, err := NewManager(Config{StateDir: t.TempDir(), Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitShardPending(t, j)

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), peerChildEnv+"=1", peerURLEnv+"="+srv.URL)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("peer child announced no lease: %v", sc.Err())
	}
	t.Logf("peer child holds lease %s; killing it", sc.Text())
	// Let at least one renewal land so the kill provably interrupts a
	// live, renewing peer rather than one that never checked in.
	granted := m.Stats().Snapshot().Serve.LeasesGranted
	deadline := time.Now().Add(30 * time.Second)
	for m.Stats().Snapshot().Serve.LeasesRenewed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer child never renewed its lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// A healthy peer finishes everything, including the dead peer's
	// reclaimed prefixes once the lease expires.
	for {
		g, err := m.AcquireLease("healthy")
		if errors.Is(err, ErrNoWork) {
			v := j.View()
			if v.Status == StatusDone || v.Status == StatusFailed {
				break
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := m.ReturnLease(runLeaseLocal(t, g)); err != nil {
			t.Fatalf("return: %v", err)
		}
	}
	m.Wait()

	got := j.View()
	if got.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", got.Status, got.Error)
	}
	if g, w := resultJSON(t, got), resultJSON(t, want); g != w {
		t.Errorf("result diverged after peer SIGKILL\n got: %s\nwant: %s", g, w)
	}
	if got.Runs != want.Runs {
		t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
	}
	snap := m.Stats().Snapshot()
	if snap.Serve.LeasesReclaimed == 0 {
		t.Error("the SIGKILLed peer's lease was never reclaimed")
	}
	if snap.Serve.LeasesGranted <= granted {
		t.Error("no lease granted after the kill; reclaimed work was not re-leased")
	}
}

// TestSIGKILLResume is the end-to-end crash test: a separate process
// runs a job, is SIGKILLed mid-frontier (no deferred cleanup, no
// graceful pause), and a fresh manager resumes from whatever checkpoint
// the dead process last committed — on a different worker count — with a
// final result byte-identical to an uninterrupted run's.
func TestSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec smoke test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), killChildEnv+"=1", killDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("child produced no job ID: %v", sc.Err())
	}
	id := sc.Text()

	// Wait for the child's first committed checkpoint, then kill it hard.
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cp *Checkpoint
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint for job %s within deadline", id)
		}
		if c, err := st.Load(id); err == nil && c.Runs > 0 {
			cp = c
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if cp.Done {
		t.Fatalf("job finished (%d runs) before the kill; raise the workload size", cp.Runs)
	}
	t.Logf("killed child at >= %d runs", cp.Runs)

	// Resume on a different worker count and compare against an
	// uninterrupted run.
	m, err := NewManager(Config{StateDir: dir, Workers: 4, CheckpointEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	resumed, finished, errs := m.Resume()
	if len(errs) > 0 {
		t.Fatalf("resume errors: %v", errs)
	}
	if resumed != 1 || finished != 0 {
		t.Fatalf("resumed %d finished %d, want 1/0", resumed, finished)
	}
	j, ok := m.Job(id)
	if !ok {
		t.Fatalf("job %s not registered after resume", id)
	}
	m.Wait()
	got := j.View()
	if got.Status != StatusDone {
		t.Fatalf("resumed job status %s (err %q)", got.Status, got.Error)
	}

	want := baseline(t, JobSpec{Workload: "litmus/IRIW", POR: "off"}, 2)
	g, err := json.Marshal(got.Result)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("post-SIGKILL result diverged from uninterrupted run\n got: %s\nwant: %s", g, w)
	}
	if got.Runs != want.Runs {
		t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
	}
}
