package fuzz

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"compass/internal/machine"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(rand.New(rand.NewSource(seed)), GenConfig{})
		b := Generate(rand.New(rand.NewSource(seed)), GenConfig{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid program: %v", seed, err)
		}
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	p := Generate(rand.New(rand.NewSource(7)), GenConfig{})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip changed program:\n%v\n%v", p, q)
	}
}

// TestCleanOnCorrectLibraries is the no-false-positives guarantee: a
// campaign over the unmutated libraries must find nothing.
func TestCleanOnCorrectLibraries(t *testing.T) {
	rep, err := Fuzz(Config{
		Seed:           1,
		Programs:       12,
		Execs:          60,
		ExhaustiveRuns: 150,
		MaxFailures:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("false positive on %s (mutant %q): %s err=%s viols=%v",
			f.Program.Lib, f.Program.Mutant, f.Key, f.Err, f.Violations)
	}
	t.Logf("programs=%d execs=%d unknown=%d", rep.Programs, rep.Execs, rep.Unknown)
}

// TestArtifactBundle runs a short mutated campaign with an artifact dir
// and validates the bundle: the JSON schedule replays to the same failure
// class, and the reproducer + DOT renderings exist.
func TestArtifactBundle(t *testing.T) {
	dir := t.TempDir()
	rep, err := Fuzz(Config{
		Seed:        42,
		Programs:    20,
		Execs:       150,
		ArtifactDir: dir,
		Gen:         GenConfig{Libs: []string{"treiber"}, Mutant: "relaxed-push", LibBias: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Artifacts) == 0 {
		t.Fatal("campaign wrote no artifacts")
	}
	bundle := rep.Artifacts[0]
	data, err := os.ReadFile(filepath.Join(bundle, "failure.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f Failure
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("failure.json does not parse: %v", err)
	}
	g, err := Replay(f.Program, f.Decisions, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.Key != f.Key {
		t.Fatalf("saved schedule replays to %+v, want failure class %s", g, f.Key)
	}
	repro, err := os.ReadFile(filepath.Join(bundle, "repro_test.go.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fuzz.ParseProgram", "machine.UnmarshalDecisions", "fuzz.Replay", f.Key} {
		if !strings.Contains(string(repro), want) {
			t.Errorf("reproducer missing %q", want)
		}
	}
	dot, err := os.ReadFile(filepath.Join(bundle, "graph-0.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") {
		t.Error("graph-0.dot is not a DOT rendering")
	}
}

// TestDecisionJSONStability pins the artifact schedule encoding.
func TestDecisionJSONStability(t *testing.T) {
	data, err := machine.MarshalDecisions([]machine.Decision{{N: 3, Pick: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), `[{"n":3,"pick":1}]`; got != want {
		t.Fatalf("decision encoding drifted: %s, want %s", got, want)
	}
}

// mutantCampaigns pins generation per mutant; tuned against the known
// detection envelopes from the check package's ablation tests.
var mutantCampaigns = []struct {
	lib, mutant string
	cfg         Config
}{
	{"msqueue", "relaxed-link", Config{Programs: 40, Execs: 250, ExhaustiveRuns: 200}},
	{"treiber", "relaxed-push", Config{Programs: 40, Execs: 250, ExhaustiveRuns: 200}},
	{"exchanger", "relaxed-offer", Config{Programs: 40, Execs: 300, ExhaustiveRuns: 200}},
	{"deque", "no-sc-fence", Config{Programs: 60, Execs: 500, ExhaustiveRuns: 300, StaleBias: 0.7}},
}

// TestMutantsDetectedAndShrunk is the acceptance criterion: every seeded
// mutation is found within a bounded run, and its shrunk reproducer
// replays deterministically to the same failure with ≤4 threads and ≤16
// decisions.
func TestMutantsDetectedAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation campaigns are long")
	}
	for _, mc := range mutantCampaigns {
		mc := mc
		t.Run(mc.lib+"/"+mc.mutant, func(t *testing.T) {
			t.Parallel()
			cfg := mc.cfg
			cfg.Seed = 42
			cfg.Gen = GenConfig{Libs: []string{mc.lib}, Mutant: mc.mutant, LibBias: 0.9, MaxOpsPerThread: 6}
			start := time.Now()
			rep, err := Fuzz(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Failures) == 0 {
				t.Fatalf("mutant not detected in %d programs / %d execs (%v)",
					rep.Programs, rep.Execs, time.Since(start))
			}
			f := rep.Failures[0]
			t.Logf("detected %s after %d programs / %d execs in %v; shrunk to %d threads, %d ops, %d decisions",
				f.Key, rep.Programs, rep.Execs, time.Since(start),
				f.Program.NumThreads(), f.Program.NumOps(), len(f.Decisions))
			if n := f.Program.NumThreads(); n > 4 {
				t.Errorf("shrunk program has %d threads, want ≤4", n)
			}
			if n := len(f.Decisions); n > 16 {
				t.Errorf("shrunk schedule has %d decisions, want ≤16", n)
			}
			// The reproducer must be deterministic: two replays, same class.
			for i := 0; i < 2; i++ {
				g, err := Replay(f.Program, f.Decisions, 50000)
				if err != nil {
					t.Fatal(err)
				}
				if g == nil || g.Key != f.Key {
					t.Fatalf("replay %d: got %+v, want failure class %s", i, g, f.Key)
				}
			}
		})
	}
}
