// Package speccover keeps the two oracle families in lockstep: every
// workload factory that checks a library against its declarative spec
// (internal/spec) must also register the corresponding
// refinement/simulation checker (internal/refine). The cross-oracle
// disagreement counter is the strongest evidence the corpus produces —
// a workload that consults only one oracle silently opts out of it.
// Paper-client workloads that deliberately check predicates only (their
// verdict is the client invariant, not library refinement) carry
// //compass:speccover-skip with a reason.
package speccover

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"compass/internal/analyzers/lint"
)

// Analyzer is the speccover pass.
var Analyzer = &lint.Analyzer{
	Name: "speccover",
	Doc: `require every spec-checked library workload to register a refinement checker

A function that calls spec.Check<Lib> builds a library workload whose
verdict should be cross-checked: it must also register a
refine.Checker/CheckerMax for the same library, or carry
//compass:speccover-skip <reason> documenting why predicate checking
alone is intended (e.g. paper clients whose verdict is the client's own
invariant).`,
	Run: run,
}

// SkipDirective exempts a deliberate predicate-only workload.
const SkipDirective = "speccover-skip"

// specLibs maps internal/spec checker function names to the refine
// library identifier they must be paired with. Spec variants (SPSC) pair
// with their base library's refinement model.
var specLibs = map[string]string{
	"CheckQueue":     "Queue",
	"CheckQueueSPSC": "Queue",
	"CheckStack":     "Stack",
	"CheckDeque":     "Deque",
	"CheckExchanger": "Exchanger",
	"CheckLock":      "Lock",
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if lint.HasDirective(fd.Doc, SkipDirective) {
				continue
			}
			specUsed := map[string]ast.Node{}
			refined := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := lint.PkgFunc(pass.TypesInfo, call.Fun)
				fn, ok := obj.(*types.Func)
				if !ok {
					return true
				}
				path := lint.ObjPkgPath(fn)
				switch {
				case strings.HasSuffix(path, "internal/spec"):
					if lib, ok := specLibs[fn.Name()]; ok {
						if _, seen := specUsed[lib]; !seen {
							specUsed[lib] = call
						}
					}
				case strings.HasSuffix(path, "internal/refine"):
					if fn.Name() != "Checker" && fn.Name() != "CheckerMax" {
						return true
					}
					if len(call.Args) == 0 {
						return true
					}
					if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
						refined[sel.Sel.Name] = true
					}
				}
				return true
			})
			libs := make([]string, 0, len(specUsed))
			for lib := range specUsed {
				libs = append(libs, lib)
			}
			sort.Strings(libs)
			for _, lib := range libs {
				if refined[lib] {
					continue
				}
				pass.Reportf(specUsed[lib].Pos(),
					"workload checks the %s spec but registers no refine.%s checker: add a refine.Checker so the cross-oracle disagreement counter covers it, or mark the factory //compass:speccover-skip with a reason",
					strings.ToLower(lib), lib)
			}
		}
	}
	return nil
}
