package fuzz

// Stream tags separating the independent seed streams derived from one
// campaign seed. Any distinct constants work; these spell out the stream
// names in ASCII for debuggability of dumped seeds.
const (
	streamGen  uint64 = 0x67656e2d70726f67 // "gen-prog": program generation
	streamExec uint64 = 0x657865632d736571 // "exec-seq": per-program execution base
	streamStep uint64 = 0x657865632d6f6e65 // "exec-one": per-execution seed
)

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014): a
// bijective avalanche mix in which every input bit affects every output
// bit. math/rand does not scramble nearby seeds, so deriving campaign
// seed streams by plain arithmetic (the old cfg.Seed + i*7919 scheme)
// made campaigns with nearby seeds replay overlapping execution streams;
// mixing through splitmix64 makes the streams statistically disjoint.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deriveSeed derives the i-th seed of the given stream from a base seed.
// The derivation is pure, so any recorded derived seed (Failure.GenSeed,
// Failure.ExecSeed) replays without knowing the campaign structure.
func deriveSeed(base int64, stream uint64, i int64) int64 {
	return int64(splitmix64(splitmix64(uint64(base)^stream) + uint64(i)))
}
