package spec

import (
	"testing"

	"compass/internal/core"
	"compass/internal/view"
)

// fig1BadGraph is the behaviour the Fig. 1 client must exclude, as an
// abstract event graph: two enqueues ordered by lhb, one consumed, and an
// empty dequeue that happens-after both (through the external flag).
func fig1BadGraph() *core.Graph {
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 41, 0)
	e2 := b.Add(core.Enq, 42, 0, e1)
	d := b.Add(core.Deq, 41, 0, e1)
	b.So(e1, d)
	b.Add(core.EmpDeq, 0, 0, e1, e2) // the right thread's empty dequeue
	return b.Graph()
}

func TestSoAbsCannotExcludeFig1Behaviour(t *testing.T) {
	g := fig1BadGraph()
	// The Cosmo-style fragment is satisfied: views transfer, the abstract
	// state is constructible, and empty dequeues are unconstrained.
	requireOK(t, CheckQueueSoAbs(g))
	// The LAT_hb^abs/LAT_hb style excludes it via QUEUE-EMPDEQ.
	requireRule(t, CheckQueue(g, LevelHB), "QUEUE-EMPDEQ")
}

func TestSoAbsStillChecksMatchingAndState(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	d := b.Add(core.Deq, 99, 0, e)
	b.So(e, d)
	requireRule(t, CheckQueueSoAbs(b.Graph()), "QUEUE-MATCHES")

	b2 := core.NewGraphBuilder("q")
	b2.Add(core.Enq, 1, 0)
	e2 := b2.Add(core.Enq, 2, 0)
	d2 := b2.Add(core.Deq, 2, 0, e2)
	b2.So(e2, d2) // dequeues 2 while 1 is at the front of the commit order
	requireRule(t, CheckQueueSoAbs(b2.Graph()), "ABS-STATE")
}

func TestSPSCValid(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0, e1)
	d1 := b.Add(core.Deq, 1, 0, e1)
	d2 := b.Add(core.Deq, 2, 0, e2, d1)
	b.So(e1, d1)
	b.So(e2, d2)
	// Mark producer/consumer threads.
	b.Graph().Event(e1).Thread = 1
	b.Graph().Event(e2).Thread = 1
	b.Graph().Event(d1).Thread = 2
	b.Graph().Event(d2).Thread = 2
	requireOK(t, CheckQueueSPSC(b.Graph()))
}

func TestSPSCOrderViolation(t *testing.T) {
	// Consumer takes the second enqueue first: strict SPSC FIFO violated
	// even though the general (weak) FIFO conditions cannot be evaluated
	// without lhb between the enqueues.
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0, e1)
	d1 := b.Add(core.Deq, 2, 0, e2)
	d2 := b.Add(core.Deq, 1, 0, e1, d1)
	b.So(e2, d1)
	b.So(e1, d2)
	for _, id := range []struct {
		id view.EventID
		th int
	}{{e1, 1}, {e2, 1}, {d1, 2}, {d2, 2}} {
		b.Graph().Event(id.id).Thread = id.th
	}
	requireRule(t, CheckQueueSPSC(b.Graph()), "SPSC-ORDER")
}

func TestSPSCMultipleProducersRejected(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0)
	b.Graph().Event(e1).Thread = 1
	b.Graph().Event(e2).Thread = 3
	requireRule(t, CheckQueueSPSC(b.Graph()), "SPSC-SINGLE-PRODUCER")
}
