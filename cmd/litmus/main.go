// Command litmus runs the ORC11 litmus suite: each test is explored
// exhaustively over all thread interleavings and relaxed read choices, and
// the observed outcome histogram is compared against the memory model's
// allowed/forbidden sets.
//
//	go run ./cmd/litmus            # the whole suite
//	go run ./cmd/litmus -test SB   # one test
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compass"
)

func main() {
	name := flag.String("test", "", "run only the named test (e.g. MP+rel+acq, SB, LB)")
	maxRuns := flag.Int("max-runs", 400000, "exploration bound per test")
	workers := flag.Int("workers", 0, "parallel exploration workers (0 = GOMAXPROCS)")
	flag.Parse()

	failed := false
	ran := 0
	for _, t := range compass.LitmusSuite() {
		if *name != "" && !strings.EqualFold(t.Name, *name) {
			continue
		}
		ran++
		res := compass.RunLitmusWorkers(t, *maxRuns, *workers)
		fmt.Println(res)
		fmt.Println()
		if !res.OK() {
			failed = true
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no test named %q; available:\n", *name)
		for _, t := range compass.LitmusSuite() {
			fmt.Fprintf(os.Stderr, "  %s\n", t.Name)
		}
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
