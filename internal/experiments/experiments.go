// Package experiments regenerates the paper's evaluation artifacts — every
// figure and every quantitative claim — on the executable COMPASS stack.
// Each experiment prints a markdown table and returns a machine-checkable
// summary; cmd/experiments drives them all, and bench_test.go exposes one
// benchmark per experiment. EXPERIMENTS.md records paper-vs-measured for
// each (shape, not absolute numbers: the substrate is a simulator).
package experiments

import (
	"fmt"
	"io"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/spec"
	"compass/internal/stack"
)

// Config tunes experiment scale.
type Config struct {
	// Executions per table cell (default 300).
	Executions int
	// Seed is the first scheduler seed (default 1).
	Seed int64
	// StaleBias is the stale-read probability (default 0.5).
	StaleBias float64
	// Workers is the number of parallel harness workers per run
	// (default GOMAXPROCS).
	Workers int
	// Out receives the rendered tables (must be non-nil).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Executions == 0 {
		c.Executions = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StaleBias == 0 {
		c.StaleBias = 0.5
	}
	return c
}

func (c Config) opts() check.Options {
	return check.Options{
		Executions: c.Executions, Seed: c.Seed, StaleBias: c.StaleBias,
		Workers: c.Workers, KeepGoing: false,
	}
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// queueImpls returns the queue implementations of the matrix, in display
// order.
func queueImpls() []struct {
	Name    string
	Factory check.QueueFactory
} {
	return []struct {
		Name    string
		Factory check.QueueFactory
	}{
		{"SC queue (lock)", func(th *machine.Thread) queue.Queue { return queue.NewSC(th, "scq", 64) }},
		{"Michael-Scott", func(th *machine.Thread) queue.Queue { return queue.NewMS(th, "msq") }},
		{"Herlihy-Wing", func(th *machine.Thread) queue.Queue { return queue.NewHW(th, "hwq", 64) }},
	}
}

// stackImpls returns the stack implementations of the matrix.
func stackImpls() []struct {
	Name    string
	Factory check.StackFactory
} {
	return []struct {
		Name    string
		Factory check.StackFactory
	}{
		{"SC stack (lock)", func(th *machine.Thread) stack.Stack { return stack.NewSC(th, "scs", 64) }},
		{"Treiber", func(th *machine.Thread) stack.Stack { return stack.NewTreiber(th, "trb") }},
		{"Elimination", func(th *machine.Thread) stack.Stack { return stack.NewElim(th, "es") }},
	}
}

// cell renders a matrix cell from a report: pass, fail (first rule), or
// undecided.
func cell(rep *check.Report) string {
	if !rep.Passed() {
		rule := "violation"
		for _, f := range rep.Failures {
			if len(f.Violations) > 0 {
				rule = f.Violations[0].Rule
				break
			}
			if f.Err != nil {
				rule = string(f.Status.String())
			}
		}
		return "✗ " + rule
	}
	if rep.Unknown > 0 {
		return "✓ (" + fmt.Sprint(rep.Unknown) + " undecided)"
	}
	return "✓"
}

// Summary is the machine-checkable outcome of an experiment.
type Summary struct {
	Name string
	// OK means the experiment reproduced the expected shape.
	OK bool
	// Detail captures key measured numbers for EXPERIMENTS.md.
	Detail string
}

func (s Summary) String() string {
	v := "REPRODUCED"
	if !s.OK {
		v = "MISMATCH"
	}
	return fmt.Sprintf("[%s] %s — %s", v, s.Name, s.Detail)
}

// All runs every experiment in order and returns their summaries.
func All(cfg Config) []Summary {
	cfg = cfg.withDefaults()
	sums := []Summary{
		L1Litmus(cfg),
		Fig1MP(cfg),
		F1bSpecStrength(cfg),
		Fig2SpecMatrix(cfg),
		Fig3DeqPerm(cfg),
		Fig4HistStack(cfg),
		Fig5Exchanger(cfg),
		E1ElimStack(cfg),
		E2SPSC(cfg),
		T1Effort(cfg),
		T2CheckerCost(cfg),
		A1Ablations(cfg),
		X1Exhaustive(cfg),
		W1WorkStealing(cfg),
		W2Reclamation(cfg),
		M1RingQueue(cfg),
	}
	cfg.printf("\n## Summary\n\n")
	for _, s := range sums {
		cfg.printf("- %s\n", s)
	}
	return sums
}

// expectPass asserts a report passed, updating ok.
func expectPass(ok *bool, rep *check.Report) {
	if !rep.Passed() || rep.OK == 0 {
		*ok = false
	}
}

// expectFail asserts a report found violations, updating ok.
func expectFail(ok *bool, rep *check.Report) {
	if rep.Passed() {
		*ok = false
	}
}

// levelNames lists the spec levels with display names.
var levelNames = []struct {
	Level spec.Level
	Name  string
}{
	{spec.LevelHB, "LAT_hb"},
	{spec.LevelAbsHB, "LAT_hb^abs"},
	{spec.LevelHist, "LAT_hb^hist"},
	{spec.LevelSC, "SC"},
}
