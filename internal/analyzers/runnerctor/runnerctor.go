// Package runnerctor funnels machine.Runner and machine.ExploreOpts
// construction through check.Options. Scattered &machine.Runner{...}
// literals are how option plumbing regresses: a site that forgets Stats
// silently drops telemetry, one that forgets Budget hangs on divergent
// mutants (both happened before PR 3 unified construction), and an
// ExploreOpts literal that forgets POR silently explores the full tree.
// Sanctioned constructors carry //compass:runner-ctor (Runner) or
// //compass:explore-ctor (ExploreOpts).
package runnerctor

import (
	"go/ast"

	"compass/internal/analyzers/lint"
)

// Analyzer is the runnerctor pass.
var Analyzer = &lint.Analyzer{
	Name: "runnerctor",
	Doc: `require machine.Runner and machine.ExploreOpts construction to go through check.Options

A machine.Runner composite literal outside the machine package itself
must be inside a function marked //compass:runner-ctor (the sanctioned
constructor, check.Options.Runner); a machine.ExploreOpts literal must
likewise be inside a function marked //compass:explore-ctor
(check.Options.ExploreOpts). Everything else should build its runner or
exploration options from an Options value so Budget/Trace/Stats/POR
plumbing cannot be forgotten site by site.

The pass also flags calls to the deprecated run-API shims left behind by
the consolidation (check.Exhaustive/ExhaustiveOpt/Explain/TraceChecked,
litmus.RunWorkers*, machine.RunRandom) from outside their defining
packages, so new code reaches the consolidated entry points directly.`,
	Run: run,
}

const machinePath = "compass/internal/machine"

// deprecatedRunners maps the run-API entry points retired by the
// consolidation (Deprecated in their doc comments, kept only as thin
// delegating shims) to the replacement a caller should use. A call from
// any package other than the defining one is flagged: the shims exist
// for source compatibility until their removal milestone, not for new
// call sites. Test files are skipped like the rest of this pass.
var deprecatedRunners = map[string]string{
	"compass/internal/check.Exhaustive":           "check.Run with Options{Mode: ModeExhaustive}",
	"compass/internal/check.ExhaustiveOpt":        "check.Run with Options{Mode: ModeExhaustive}",
	"compass/internal/check.Explain":              "check.ExplainOpt",
	"compass/internal/check.TraceChecked":         "check.TraceCheckedOpt",
	"compass/internal/litmus.RunWorkers":          "litmus.Run with WithWorkers",
	"compass/internal/litmus.RunWorkersStats":     "litmus.Run with WithWorkers and WithStats",
	"compass/internal/litmus.RunWorkersFootprint": "litmus.Run with WithWorkers, WithStats, and WithFootprint",
	"compass/internal/machine.RunRandom":          "machine.RunRandomOpt",
}

// policed maps the funneled machine types to their sanctioning directive
// and diagnostic.
var policed = map[string]struct {
	directive string
	message   string
}{
	"Runner": {
		directive: "runner-ctor",
		message:   "machine.Runner constructed directly: go through check.Options.Runner so Budget/Trace/Stats plumbing stays uniform (sanctioned constructors carry //compass:runner-ctor)",
	},
	"ExploreOpts": {
		directive: "explore-ctor",
		message:   "machine.ExploreOpts constructed directly: go through check.Options.ExploreOpts so MaxRuns/Workers/Stats/Footprint/POR plumbing stays uniform (sanctioned constructors carry //compass:explore-ctor)",
	},
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkDeprecated(pass, call)
				return true
			}
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok {
				return true
			}
			pkgPath, name, ok := lint.NamedTypePath(tv.Type)
			if !ok || pkgPath != machinePath {
				return true
			}
			rule, ok := policed[name]
			if !ok {
				return true
			}
			if lint.FuncDirective(file, cl.Pos(), rule.directive) {
				return true
			}
			pass.Reportf(cl.Pos(), "%s", rule.message)
			return true
		})
	}
	return nil
}

// checkDeprecated flags calls to run-API shims retired by the
// consolidation, from any package but the defining one.
func checkDeprecated(pass *lint.Pass, call *ast.CallExpr) {
	obj := lint.PkgFunc(pass.TypesInfo, call.Fun)
	if obj == nil {
		return
	}
	pkgPath := lint.ObjPkgPath(obj)
	if pkgPath == "" || pkgPath == pass.Pkg.Path() {
		return
	}
	repl, ok := deprecatedRunners[pkgPath+"."+obj.Name()]
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "call to deprecated %s.%s: use %s (run-API consolidation; see the README deprecation table for the removal milestone)",
		obj.Pkg().Name(), obj.Name(), repl)
}
