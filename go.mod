module compass

go 1.22
