package serve

import (
	"encoding/json"
	"errors"
	"fmt"

	"compass/internal/check"
	"compass/internal/litmus"
	"compass/internal/machine"
	"compass/internal/spec"
	"compass/internal/telemetry"
)

// engine is one job's resumable execution strategy. Segment runs up to
// pauseRuns more executions and reports whether the job is finished;
// state/restore round-trip the engine through checkpoint bytes; result
// renders the client-facing summary (partial until done).
type engine interface {
	segment(pauseRuns int) (done bool, err error)
	state() (json.RawMessage, error)
	result() *JobResult
	runs() int
}

// sharder is implemented by engines whose exhaustive frontier can be
// leased to peer processes (litmus and exhaustive library engines; the
// random engine has no frontier). takeFrontier removes the engine's
// pending prefixes — after it the engine must not run local segments
// until finishShard declares the leased exploration complete; mergeDelta
// folds one returned lease delta (an engine state accumulated from a
// fresh start over the leased frontier) into the totals and returns the
// peer's unexplored leftover, if any.
type sharder interface {
	takeFrontier() *machine.Frontier
	mergeDelta(delta json.RawMessage) (leftover *machine.Frontier, err error)
	finishShard()
}

// JobResult is the client-facing outcome of a job: common verdict fields
// plus the kind-specific detail (litmus outcome histogram or library
// report).
type JobResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Runs     int    `json:"runs"`
	// Complete marks a finished exhaustive enumeration (a proof for the
	// bounded instance); random jobs are never Complete.
	Complete bool `json:"complete"`
	Passed   bool `json:"passed"`
	// Litmus detail.
	Outcomes        map[string]int `json:"outcomes,omitempty"`
	ForbiddenSeen   []string       `json:"forbidden_seen,omitempty"`
	RequiredMissing []string       `json:"required_missing,omitempty"`
	// Library detail.
	Report *ReportState `json:"report,omitempty"`
}

// ReportState is the JSON projection of a check.Report that checkpoints
// and job results carry. It round-trips everything the resume invariant
// promises: counts, completeness, and the failure list (errors flattened
// to strings).
type ReportState struct {
	Executions int            `json:"executions"`
	OK         int            `json:"ok"`
	Discarded  int            `json:"discarded"`
	Unknown    int            `json:"unknown"`
	Steps      int            `json:"steps"`
	Complete   bool           `json:"complete"`
	Failures   []FailureState `json:"failures,omitempty"`
}

// FailureState is the serializable form of a check.Failure.
type FailureState struct {
	Seed       int64            `json:"seed"`
	Status     int              `json:"status"`
	Err        string           `json:"err,omitempty"`
	Violations []spec.Violation `json:"violations,omitempty"`
}

// projectReport flattens a live report into its checkpoint form.
func projectReport(rep *check.Report) *ReportState {
	st := &ReportState{
		Executions: rep.Executions,
		OK:         rep.OK,
		Discarded:  rep.Discarded,
		Unknown:    rep.Unknown,
		Steps:      rep.Steps,
		Complete:   rep.Complete,
	}
	for _, f := range rep.Failures {
		fs := FailureState{Seed: f.Seed, Status: int(f.Status), Violations: f.Violations}
		if f.Err != nil {
			fs.Err = f.Err.Error()
		}
		st.Failures = append(st.Failures, fs)
	}
	return st
}

// restoreReport rebuilds a live report from its checkpoint form.
func restoreReport(name string, st *ReportState) *check.Report {
	rep := &check.Report{
		Name:       name,
		Executions: st.Executions,
		OK:         st.OK,
		Discarded:  st.Discarded,
		Unknown:    st.Unknown,
		Steps:      st.Steps,
		Complete:   st.Complete,
	}
	for _, f := range st.Failures {
		cf := check.Failure{Seed: f.Seed, Status: machine.Status(f.Status), Violations: f.Violations}
		if f.Err != "" {
			cf.Err = errors.New(f.Err)
		}
		rep.Failures = append(rep.Failures, cf)
	}
	return rep
}

// newEngine builds a fresh engine for a normalized spec, or rebuilds one
// from checkpointed state bytes when state is non-nil.
func newEngine(sp JobSpec, w Workload, stats *telemetry.Stats, state json.RawMessage) (engine, error) {
	switch {
	case w.Kind == KindLitmus:
		e := &litmusEngine{spec: sp, test: w.Litmus, stats: stats, job: litmus.NewJob()}
		if state != nil {
			e.job = &litmus.JobState{}
			if err := json.Unmarshal(state, e.job); err != nil {
				return nil, fmt.Errorf("litmus state: %w", err)
			}
		}
		// A restored state carries its own visited set; a fresh dedup job
		// starts an empty one.
		if sp.Dedup && e.job.Dedup == nil {
			e.job.Dedup = machine.NewDedup(sp.DedupCap)
		}
		return e, nil
	case sp.Mode == ModeRandom:
		e := &randomEngine{spec: sp, test: w.Lib, stats: stats, rep: &ReportState{}}
		if state != nil {
			if err := json.Unmarshal(state, &e.rep); err != nil {
				return nil, fmt.Errorf("random state: %w", err)
			}
		}
		return e, nil
	default:
		e := &exhaustEngine{spec: sp, test: w.Lib, stats: stats, job: check.NewExhaustJob(w.Name)}
		if state != nil {
			var st exhaustState
			if err := json.Unmarshal(state, &st); err != nil {
				return nil, fmt.Errorf("exhaustive state: %w", err)
			}
			e.job = check.ResumeExhaustJob(restoreReport(w.Name, st.Report), st.Frontier)
			e.job.Done = st.Done
			e.dedup = st.Dedup
		}
		if sp.Dedup && e.dedup == nil {
			e.dedup = machine.NewDedup(sp.DedupCap)
		}
		return e, nil
	}
}

// leaseEngineState renders the engine state a peer starts a leased
// segment from: an empty report/histogram plus the leased frontier, so
// the peer's accumulated state IS the delta the coordinator merges.
func leaseEngineState(w Workload, f *machine.Frontier) (json.RawMessage, error) {
	if w.Kind == KindLitmus {
		return json.Marshal(&litmus.JobState{Outcomes: map[string]int{}, Frontier: f})
	}
	return json.Marshal(&exhaustState{Report: &ReportState{}, Frontier: f})
}

// litmusEngine drives one litmus test through litmus.JobState.
type litmusEngine struct {
	spec  JobSpec
	test  litmus.Test
	stats *telemetry.Stats
	job   *litmus.JobState
}

func (e *litmusEngine) segment(pauseRuns int) (bool, error) {
	done := e.job.RunSegment(e.test, e.spec.MaxRuns, pauseRuns,
		litmus.WithWorkers(e.spec.Workers),
		litmus.WithStats(e.stats),
		litmus.WithPORMode(e.spec.porMode()))
	return done, nil
}

func (e *litmusEngine) state() (json.RawMessage, error) { return json.Marshal(e.job) }

func (e *litmusEngine) runs() int { return e.job.Runs }

func (e *litmusEngine) result() *JobResult {
	res := e.job.Finish(e.test)
	return &JobResult{
		Workload:        "litmus/" + e.test.Name,
		Mode:            ModeExhaustive,
		Runs:            res.Runs,
		Complete:        res.Complete,
		Passed:          res.OK(),
		Outcomes:        res.Outcomes,
		ForbiddenSeen:   res.ForbiddenSeen,
		RequiredMissing: res.RequiredMissing,
	}
}

func (e *litmusEngine) takeFrontier() *machine.Frontier {
	f := e.job.Frontier
	e.job.Frontier = nil
	return f
}

func (e *litmusEngine) mergeDelta(delta json.RawMessage) (*machine.Frontier, error) {
	var d litmus.JobState
	if err := json.Unmarshal(delta, &d); err != nil {
		return nil, fmt.Errorf("litmus lease delta: %w", err)
	}
	e.job.Runs += d.Runs
	e.job.Discarded += d.Discarded
	if e.job.Outcomes == nil {
		e.job.Outcomes = map[string]int{}
	}
	for k, n := range d.Outcomes {
		e.job.Outcomes[k] += n
	}
	return d.Frontier, nil
}

func (e *litmusEngine) finishShard() {
	e.job.Complete = true
	e.job.Done = true
}

// exhaustState is the checkpoint form of an exhaustEngine.
type exhaustState struct {
	Report   *ReportState      `json:"report"`
	Frontier *machine.Frontier `json:"frontier,omitempty"`
	// Dedup is the visited set of canonical state fingerprints, carried
	// across segments so a resumed dedup job never re-claims states a
	// pre-pause segment covered.
	Dedup *machine.Dedup `json:"dedup,omitempty"`
	Done  bool           `json:"done"`
}

// exhaustEngine drives one library workload exhaustively through
// check.ExhaustJob.
type exhaustEngine struct {
	spec  JobSpec
	test  litmus.LibTest
	stats *telemetry.Stats
	job   *check.ExhaustJob
	dedup *machine.Dedup
}

func (e *exhaustEngine) options() check.Options {
	return check.Options{
		Mode:        check.ModeExhaustive,
		MaxRuns:     e.spec.MaxRuns,
		Budget:      e.spec.Budget,
		Refine:      e.spec.Refine,
		KeepGoing:   e.spec.KeepGoing,
		MaxFailures: e.spec.MaxFailures,
		Workers:     e.spec.Workers,
		POR:         e.spec.porMode(),
		Stats:       e.stats,
		Dedup:       e.dedup,
	}
}

func (e *exhaustEngine) segment(pauseRuns int) (bool, error) {
	return e.job.RunSegment(e.test.Build, e.options(), pauseRuns), nil
}

func (e *exhaustEngine) state() (json.RawMessage, error) {
	return json.Marshal(exhaustState{
		Report:   projectReport(e.job.Report),
		Frontier: e.job.Frontier,
		Dedup:    e.dedup,
		Done:     e.job.Done,
	})
}

func (e *exhaustEngine) runs() int { return e.job.Report.Executions }

func (e *exhaustEngine) takeFrontier() *machine.Frontier {
	f := e.job.Frontier
	e.job.Frontier = nil
	return f
}

func (e *exhaustEngine) mergeDelta(delta json.RawMessage) (*machine.Frontier, error) {
	var st exhaustState
	if err := json.Unmarshal(delta, &st); err != nil {
		return nil, fmt.Errorf("exhaustive lease delta: %w", err)
	}
	if st.Report == nil {
		return nil, errors.New("exhaustive lease delta: missing report")
	}
	rep := e.job.Report
	rep.Executions += st.Report.Executions
	rep.OK += st.Report.OK
	rep.Discarded += st.Report.Discarded
	rep.Unknown += st.Report.Unknown
	rep.Steps += st.Report.Steps
	for _, f := range st.Report.Failures {
		cf := check.Failure{Seed: f.Seed, Status: machine.Status(f.Status), Violations: f.Violations}
		if f.Err != "" {
			cf.Err = errors.New(f.Err)
		}
		rep.Failures = append(rep.Failures, cf)
	}
	return st.Frontier, nil
}

func (e *exhaustEngine) finishShard() {
	e.job.Report.Complete = true
	e.job.Done = true
}

func (e *exhaustEngine) result() *JobResult {
	rep := e.job.Report
	return &JobResult{
		Workload: e.test.Name,
		Mode:     ModeExhaustive,
		Runs:     rep.Executions,
		Complete: rep.Complete,
		Passed:   rep.Passed(),
		Report:   projectReport(rep),
	}
}

// randomEngine drives one library workload through seeded-random
// segments. Execution i always uses Seed+i, so segmentation never
// changes which executions run: each segment picks up at the next seed
// index and the merged report equals an uninterrupted run's, including
// the early-stop point (MaxFailures counts failures across the whole
// job).
type randomEngine struct {
	spec  JobSpec
	test  litmus.LibTest
	stats *telemetry.Stats
	rep   *ReportState
}

func (e *randomEngine) segment(pauseRuns int) (bool, error) {
	// Resolve the job-level defaults once per segment; the per-segment
	// options below are derived from these so segmentation is invisible.
	execs := e.spec.Executions
	if execs == 0 {
		execs = check.DefaultExecutions
	}
	maxFail := e.spec.MaxFailures
	if maxFail == 0 {
		maxFail = check.DefaultMaxFails
	}
	seed := check.NormalizeSeed(e.spec.Seed, check.DefaultSeed)
	if !e.spec.KeepGoing && len(e.rep.Failures) >= maxFail {
		return true, nil
	}
	remaining := execs - e.rep.Executions
	if remaining <= 0 {
		return true, nil
	}
	chunk := remaining
	if pauseRuns > 0 && pauseRuns < chunk {
		chunk = pauseRuns
	}
	segSeed := seed + int64(e.rep.Executions)
	if segSeed == 0 {
		segSeed = check.SeedZero
	}
	rep := check.Run(e.test.Name, e.test.Build, check.Options{
		Executions: chunk,
		Seed:       segSeed,
		Budget:     e.spec.Budget,
		StaleBias:  e.spec.StaleBias,
		Refine:     e.spec.Refine,
		KeepGoing:  e.spec.KeepGoing,
		// The failure budget spans the job: failures already
		// checkpointed count against this segment's early stop.
		MaxFailures: maxFail - len(e.rep.Failures),
		Workers:     e.spec.Workers,
		Stats:       e.stats,
	})
	seg := projectReport(rep)
	e.rep.Executions += seg.Executions
	e.rep.OK += seg.OK
	e.rep.Discarded += seg.Discarded
	e.rep.Unknown += seg.Unknown
	e.rep.Steps += seg.Steps
	e.rep.Failures = append(e.rep.Failures, seg.Failures...)
	if !e.spec.KeepGoing && len(e.rep.Failures) >= maxFail {
		return true, nil
	}
	return e.rep.Executions >= execs, nil
}

func (e *randomEngine) state() (json.RawMessage, error) { return json.Marshal(e.rep) }

func (e *randomEngine) runs() int { return e.rep.Executions }

func (e *randomEngine) result() *JobResult {
	return &JobResult{
		Workload: e.test.Name,
		Mode:     ModeRandom,
		Runs:     e.rep.Executions,
		Passed:   len(e.rep.Failures) == 0,
		Report:   e.rep,
	}
}
