package check_test

import (
	"strings"
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/spec"
)

func msFactory(th *machine.Thread) queue.Queue { return queue.NewMS(th, "q") }
func hwFactory(th *machine.Thread) queue.Queue { return queue.NewHW(th, "q", 32) }

func TestRunAggregates(t *testing.T) {
	rep := check.Run("agg", check.QueueMixed(msFactory, spec.LevelHB, 1, 2, 1, 2),
		check.Options{Executions: 50})
	if !rep.Passed() || rep.OK != 50 || rep.Executions != 50 {
		t.Fatalf("report: %s", rep)
	}
	if rep.Steps == 0 {
		t.Fatal("steps not accumulated")
	}
	if !strings.Contains(rep.String(), "PASS") {
		t.Fatalf("rendering: %s", rep)
	}
}

func TestRunStopsAtMaxFailures(t *testing.T) {
	boom := func() check.Checked {
		return check.Checked{
			Prog: machine.Program{Workers: []func(*machine.Thread){
				func(th *machine.Thread) { th.Failf("always") },
			}},
		}
	}
	rep := check.Run("boom", boom, check.Options{Executions: 100, MaxFailures: 3})
	if len(rep.Failures) != 3 {
		t.Fatalf("failures = %d, want 3 (early stop)", len(rep.Failures))
	}
	rep = check.Run("boom", boom, check.Options{Executions: 10, KeepGoing: true})
	if len(rep.Failures) != 10 {
		t.Fatalf("failures = %d, want 10 (keep going)", len(rep.Failures))
	}
	if rep.Passed() {
		t.Fatal("failing run must not pass")
	}
	if !strings.Contains(rep.String(), "FAIL") || !strings.Contains(rep.String(), "more failures") {
		t.Fatalf("rendering: %s", rep)
	}
}

func TestRunCountsDiscarded(t *testing.T) {
	spin := func() check.Checked {
		return check.Checked{
			Prog: machine.Program{Workers: []func(*machine.Thread){
				func(th *machine.Thread) {
					for {
						th.Yield()
					}
				},
			}},
		}
	}
	rep := check.Run("spin", spin, check.Options{Executions: 5, Budget: 50})
	if rep.Discarded != 5 || !rep.Passed() {
		t.Fatalf("discarded = %d passed = %v; want 5, true", rep.Discarded, rep.Passed())
	}
}

func TestExhaustiveProvesTinyHWQueue(t *testing.T) {
	// Exhaustively explore a 1-enqueue/1-dequeue Herlihy-Wing instance:
	// every interleaving and read choice, checked at LAT_hb — a bounded
	// proof, the closest executable analogue of the paper's theorems.
	f := func(th *machine.Thread) queue.Queue { return queue.NewHW(th, "q", 4) }
	rep := check.Run("hw-tiny",
		check.QueueMixed(f, spec.LevelHB, 1, 1, 1, 1),
		check.Options{Mode: check.ModeExhaustive, MaxRuns: 300000})
	if !rep.Passed() || !rep.Complete {
		t.Fatalf("%s", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("nothing explored: %s", rep)
	}
	if !strings.Contains(rep.String(), "exhaustive: all executions explored") {
		t.Fatalf("rendering: %s", rep)
	}
	t.Logf("%s", rep)
}

func TestExhaustiveProvesTinyMSQueue(t *testing.T) {
	rep := check.Run("ms-tiny",
		check.QueueMixed(msFactory, spec.LevelAbsHB, 1, 1, 1, 1),
		check.Options{Mode: check.ModeExhaustive, MaxRuns: 400000})
	if !rep.Passed() || !rep.Complete {
		t.Fatalf("%s", rep)
	}
	t.Logf("%s", rep)
}

func TestExhaustiveFindsInjectedBug(t *testing.T) {
	// The exhaustive explorer must find the HW abs-level violation
	// somewhere in the space of a 2-enqueue/1-dequeue instance.
	rep := check.Run("hw-abs-tiny",
		check.QueueMixed(hwFactory, spec.LevelAbsHB, 2, 1, 1, 1),
		check.Options{Mode: check.ModeExhaustive, MaxRuns: 400000})
	if rep.Passed() {
		t.Fatalf("expected the abs-level violation to be found: %s", rep)
	}
}

func TestCollect(t *testing.T) {
	r1 := spec.Result{}
	r2 := spec.Result{Violations: []spec.Violation{{Rule: "X", Detail: "d"}}, Unknown: true}
	viols, unknown := check.Collect(r1, r2)
	if len(viols) != 1 || unknown != 1 {
		t.Fatalf("collect = %v, %d", viols, unknown)
	}
}

func TestFailureString(t *testing.T) {
	f := check.Failure{Seed: 42, Status: machine.Failed,
		Violations: []spec.Violation{{Rule: "R", Detail: "boom"}}}
	s := f.String()
	if !strings.Contains(s, "seed 42") || !strings.Contains(s, "R: boom") {
		t.Fatalf("rendering: %s", s)
	}
}

func TestMPQueueReportsRightValue(t *testing.T) {
	c := check.MPQueue(msFactory, spec.LevelHB, true)()
	res := (&machine.Runner{}).Run(c.Prog, machine.NewRandom(5))
	if res.Status != machine.OK {
		t.Fatalf("status %v: %v", res.Status, res.Err)
	}
	if v := res.Outcome["right"]; v != 41 && v != 42 {
		t.Fatalf("right = %d", v)
	}
}
