package spec

import (
	"math/rand"
	"testing"

	"compass/internal/core"
	"compass/internal/view"
)

func TestSeqQueueSemantics(t *testing.T) {
	st := SeqQueue{}.Init()
	apply := func(k core.Kind, v int64, strict, want bool) {
		t.Helper()
		next, ok := st.Apply(&core.Event{Kind: k, Val: v}, strict)
		if ok != want {
			t.Fatalf("Apply(%v,%d) ok=%v want %v (state %s)", k, v, ok, want, st.Key())
		}
		if ok {
			st = next
		}
	}
	apply(core.EmpDeq, 0, true, true) // empty queue: strict empty dequeue OK
	apply(core.Enq, 1, true, true)
	apply(core.Enq, 2, true, true)
	apply(core.EmpDeq, 0, true, false) // strict: queue not empty
	apply(core.EmpDeq, 0, false, true) // non-strict: unconstrained
	apply(core.Deq, 2, true, false)    // not the front
	apply(core.Deq, 1, true, true)
	apply(core.Deq, 2, true, true)
	apply(core.Deq, 3, true, false) // empty
}

func TestSeqStackSemantics(t *testing.T) {
	st := SeqStack{}.Init()
	apply := func(k core.Kind, v int64, strict, want bool) {
		t.Helper()
		next, ok := st.Apply(&core.Event{Kind: k, Val: v}, strict)
		if ok != want {
			t.Fatalf("Apply(%v,%d) ok=%v want %v (state %s)", k, v, ok, want, st.Key())
		}
		if ok {
			st = next
		}
	}
	apply(core.Push, 1, true, true)
	apply(core.Push, 2, true, true)
	apply(core.Pop, 1, true, false) // not the top
	apply(core.Pop, 2, true, true)
	apply(core.EmpPop, 0, true, false)
	apply(core.Pop, 1, true, true)
	apply(core.EmpPop, 0, true, true)
}

func TestSeqStateImmutability(t *testing.T) {
	s0 := SeqQueue{}.Init()
	s1, _ := s0.Apply(&core.Event{Kind: core.Enq, Val: 1}, true)
	s2a, _ := s1.Apply(&core.Event{Kind: core.Enq, Val: 2}, true)
	s2b, _ := s1.Apply(&core.Event{Kind: core.Enq, Val: 3}, true)
	if s2a.Key() == s2b.Key() {
		t.Fatalf("states aliased: %s vs %s", s2a.Key(), s2b.Key())
	}
	if s0.Key() != "" {
		t.Fatalf("initial state mutated: %s", s0.Key())
	}
}

// bruteLinearizable enumerates all permutations respecting lhb and checks
// strict sequential validity — an oracle for Linearizable on tiny graphs.
func bruteLinearizable(g *core.Graph, obj SeqObject) bool {
	events := g.Events()
	n := len(events)
	used := make([]bool, n)
	pos := map[view.EventID]int{}
	for i, e := range events {
		pos[e.ID] = i
	}
	var rec func(k int, st SeqState) bool
	rec = func(k int, st SeqState) bool {
		if k == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			ok := true
			for _, p := range events[i].LogView.Events() {
				if j, exists := pos[p]; exists && !used[j] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next, legal := st.Apply(events[i], true)
			if !legal {
				continue
			}
			used[i] = true
			if rec(k+1, next) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0, obj.Init())
}

// randomQueueGraph builds a random (possibly inconsistent) small queue
// graph for differential testing of the linearizability checkers.
func randomQueueGraph(r *rand.Rand) *core.Graph {
	b := core.NewGraphBuilder("q")
	var enqs []view.EventID
	var all []view.EventID
	n := 2 + r.Intn(5)
	for i := 0; i < n; i++ {
		// random lhb predecessors among existing events
		var lhb []view.EventID
		for _, e := range all {
			if r.Intn(3) == 0 {
				lhb = append(lhb, e)
			}
		}
		switch r.Intn(3) {
		case 0:
			id := b.Add(core.Enq, int64(100+i), 0, lhb...)
			enqs = append(enqs, id)
			all = append(all, id)
		case 1:
			if len(enqs) > 0 {
				k := r.Intn(len(enqs))
				e := enqs[k]
				enqs = append(enqs[:k], enqs[k+1:]...)
				id := b.Add(core.Deq, b.Graph().Event(e).Val, 0, append(lhb, e)...)
				b.So(e, id)
				all = append(all, id)
			}
		case 2:
			id := b.Add(core.EmpDeq, 0, 0, lhb...)
			all = append(all, id)
		}
	}
	return b.Graph()
}

func TestLinearizableMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	agree, found := 0, 0
	for i := 0; i < 300; i++ {
		g := randomQueueGraph(r)
		got, unknown := Linearizable(g, SeqQueue{}, 0)
		if unknown {
			t.Fatalf("unexpected unknown on %d events", len(g.Events()))
		}
		want := bruteLinearizable(g, SeqQueue{})
		if got != want {
			t.Fatalf("disagreement on graph:\n%s\nsearch=%v brute=%v", g, got, want)
		}
		agree++
		if got {
			found++
		}
	}
	if found == 0 || found == agree {
		t.Fatalf("degenerate test corpus: %d/%d linearizable", found, agree)
	}
}

// randomStackGraph builds a random (possibly inconsistent) small stack
// graph for differential testing.
func randomStackGraph(r *rand.Rand) *core.Graph {
	b := core.NewGraphBuilder("s")
	var live []view.EventID // pushed, not yet popped (any may be popped)
	var all []view.EventID
	n := 2 + r.Intn(5)
	for i := 0; i < n; i++ {
		var lhb []view.EventID
		for _, e := range all {
			if r.Intn(3) == 0 {
				lhb = append(lhb, e)
			}
		}
		switch r.Intn(3) {
		case 0:
			id := b.Add(core.Push, int64(100+i), 0, lhb...)
			live = append(live, id)
			all = append(all, id)
		case 1:
			if len(live) > 0 {
				k := r.Intn(len(live))
				e := live[k]
				live = append(live[:k], live[k+1:]...)
				id := b.Add(core.Pop, b.Graph().Event(e).Val, 0, append(lhb, e)...)
				b.So(e, id)
				all = append(all, id)
			}
		case 2:
			id := b.Add(core.EmpPop, 0, 0, lhb...)
			all = append(all, id)
		}
	}
	return b.Graph()
}

func TestStackLinearizableMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	found, total := 0, 0
	for i := 0; i < 300; i++ {
		g := randomStackGraph(r)
		got, unknown := Linearizable(g, SeqStack{}, 0)
		if unknown {
			t.Fatalf("unexpected unknown on %d events", len(g.Events()))
		}
		want := bruteLinearizable(g, SeqStack{})
		if got != want {
			t.Fatalf("disagreement on graph:\n%s\nsearch=%v brute=%v", g, got, want)
		}
		total++
		if got {
			found++
		}
	}
	if found == 0 || found == total {
		t.Fatalf("degenerate test corpus: %d/%d linearizable", found, total)
	}
}

func TestLinearizableUnknownOnHugeGraph(t *testing.T) {
	b := core.NewGraphBuilder("q")
	for i := 0; i < 70; i++ {
		b.Add(core.Enq, int64(i), 0)
	}
	_, unknown := Linearizable(b.Graph(), SeqQueue{}, 0)
	if !unknown {
		t.Fatal("expected unknown beyond the event bound")
	}
	var res Result
	CheckHist(b.Graph(), SeqQueue{}, 10, &res)
	// 70 enqueues replay fine in commit order, so the fast path decides it.
	if res.Unknown || len(res.Violations) != 0 {
		t.Fatalf("fast path should have decided: %+v", res)
	}
}

func TestReplayCommitOrderViolationDetail(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e := b.Add(core.Enq, 1, 0)
	d := b.Add(core.Deq, 2, 0, e)
	b.So(e, d)
	var res Result
	ReplayCommitOrder(b.Graph(), SeqQueue{}, false, &res)
	if len(res.Violations) != 1 || res.Violations[0].Rule != "ABS-STATE" {
		t.Fatalf("violations = %v", res.Violations)
	}
}
