// Package zerovalue is the golden corpus for the zerovalue analyzer.
package zerovalue

import "compass/internal/check"

// localConfig mirrors the Seed/StaleBias zero-value trap in a local
// type: the field names alone mark the hazard.
type localConfig struct {
	Seed      int64
	StaleBias float64
}

func literals() []check.Options {
	return []check.Options{
		{Executions: 100, Seed: 0},                   // want `Seed: 0 selects the default`
		{Executions: 100, StaleBias: 0},              // want `StaleBias: 0 selects the default`
		{Executions: 100, Seed: check.SeedZero},      // ok: sentinel requests a true zero
		{Executions: 100, StaleBias: check.BiasZero}, // ok: sentinel
		{Executions: 100, Seed: 7, StaleBias: 0.5},   // ok: nonzero literals
		{Executions: 100},                            // ok: field omitted on purpose
		{Mode: check.ModeExhaustive, POR: check.PORSleep}, // ok: Mode/POR zero values are honest (ModeRandom, reduction off), no sentinel needed
	}
}

func localLiteral() localConfig {
	return localConfig{Seed: 0} // want `Seed: 0 selects the default`
}

func assignments(o *check.Options) {
	o.Seed = 0              // want `Seed: 0 selects the default`
	o.StaleBias = 0         // want `StaleBias: 0 selects the default`
	o.Seed = check.SeedZero // ok: sentinel
	o.Seed = 42             // ok: nonzero
}

// pinTrap deliberately exercises the zero-value trap (the way
// TestOptionSentinels does) and opts out of the check.
//
//compass:zerovalue-ok
func pinTrap() check.Options {
	return check.Options{Seed: 0} // ok: function opted out
}
