// Package check is the verification harness: it runs workload programs
// many times under seeded-random scheduling (or exhaustively for small
// programs), extracts each execution's event graphs, evaluates the spec
// checkers on them, and aggregates verdicts with replayable counterexample
// seeds. It is the executable counterpart of the paper's per-library and
// per-client Coq proofs: a proof shows every execution satisfies the spec;
// the harness checks the spec on every explored execution.
package check

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/refine"
	"compass/internal/spec"
	"compass/internal/telemetry"
)

// Checked is one runnable, checkable instance of a workload: a fresh
// program plus a post-execution check closure over its recorders.
type Checked struct {
	Prog machine.Program
	// Check is invoked after an execution completes with status OK; it
	// returns the spec violations found in the execution's event graphs,
	// plus the number of checks that could not be decided.
	Check func() (violations []spec.Violation, unknown int)
	// Oracle optionally cross-checks the same execution against an
	// independent reference model (e.g. SCOracle refinement of the observed
	// history); its violations and unknowns are merged with Check's. The
	// differential-fuzzing harness sets it so every execution is judged by
	// both the per-library spec and the sequential oracle.
	Oracle func() (violations []spec.Violation, unknown int)
	// Refine optionally judges the same execution against the library's
	// abstract transition system by forward simulation (see
	// internal/refine) — an operational characterization independent of
	// the declarative predicates in Check. It runs only when
	// Options.Refine is set (the harness then records step-event traces
	// so the oracle can cross-validate the committed events against the
	// executed instruction stream) and its disagreements with
	// Check/Oracle are counted in the refine telemetry.
	Refine refine.CheckFunc
}

// Evaluate runs the spec check and the oracle (when present) on the
// completed execution and merges their verdicts.
func (c *Checked) Evaluate() ([]spec.Violation, int) {
	var viols []spec.Violation
	unknown := 0
	if c.Check != nil {
		viols, unknown = c.Check()
	}
	if c.Oracle != nil {
		ov, ou := c.Oracle()
		viols = append(viols, ov...)
		unknown += ou
	}
	return viols, unknown
}

// evaluate judges one OK execution under the options: the spec check and
// oracle always run; when opt.Refine is set and the instance carries a
// refinement checker, the refinement oracle joins, its verdict is merged,
// and an agree/disagree sample is recorded into the refine telemetry.
func (o Options) evaluate(c *Checked, r *machine.Result) ([]spec.Violation, int) {
	viols, unknown := c.Evaluate()
	if o.Refine && c.Refine != nil {
		rv, ru := c.Refine(r, o.Stats)
		o.Stats.RefineTrace((len(rv) > 0) != (len(viols) > 0))
		viols = append(viols, rv...)
		unknown += ru
	}
	return viols, unknown
}

// Sentinels for option values whose natural encoding collides with the
// zero value of Options (which selects defaults). Pass these to request
// the literal value 0.
const (
	// SeedZero requests the actual seed 0. Options.Seed's zero value
	// selects the default seed 1, so seed 0 needs an explicit sentinel.
	SeedZero int64 = math.MinInt64
	// BiasZero requests a stale-read bias of exactly 0: every read
	// returns the latest message, SC-like per location. Any negative
	// StaleBias normalizes to 0; Options.StaleBias's zero value selects
	// the default 0.4.
	BiasZero float64 = -1
)

// Mode selects the harness execution strategy: seeded-random sampling
// (the zero value) or bounded-exhaustive exploration.
type Mode uint8

const (
	// ModeRandom runs Options.Executions seeded-random executions
	// (statistical evidence). The zero value, so existing Options literals
	// keep their meaning.
	ModeRandom Mode = iota
	// ModeExhaustive explores every execution of the bounded program up to
	// Options.MaxRuns (a proof for the instance when the report is
	// Complete).
	ModeExhaustive
)

// Options configures a harness run.
type Options struct {
	// Mode selects random sampling (ModeRandom, the default) or
	// bounded-exhaustive exploration (ModeExhaustive). Run dispatches on
	// it; the mode-specific fields below document which mode reads them.
	Mode Mode
	// Executions is the number of random executions (default 200).
	Executions int
	// Seed is the first seed; execution i uses Seed+i (default 1; pass
	// SeedZero for the literal seed 0).
	Seed int64
	// Budget caps machine steps per execution (default 100000).
	Budget int
	// StaleBias is the probability of deliberately stale reads (default
	// 0.4); higher values explore weaker behaviours more aggressively.
	// Pass BiasZero (or any negative value) for a bias of exactly 0.
	StaleBias float64
	// MaxFailures stops the run early after this many failing executions
	// (default 5).
	MaxFailures int
	// KeepGoing disables the early stop.
	KeepGoing bool
	// Workers is the number of parallel harness workers (default
	// GOMAXPROCS; 1 = sequential). The report is identical either way:
	// executions are still seeded Seed..Seed+Executions-1 and merged in
	// seed order, including the early-stop point.
	Workers int
	// MaxRuns caps the number of executions explored in ModeExhaustive
	// (default 200000). ModeRandom ignores it.
	MaxRuns int
	// Stats, when non-nil, receives telemetry for the run: one ExecDone
	// per execution that the Report accounts for (so its exec counters
	// always equal the Report's totals, even when parallel workers
	// overshoot an early stop) plus step-level machine counters. The
	// final Report carries a Snapshot of it.
	Stats *telemetry.Stats
	// Footprint, when non-nil, is a location-footprint certificate
	// (extracted by internal/analysis/footprint) installed into every
	// execution: certified locations skip race instrumentation and
	// read-window computation, without changing any outcome.
	Footprint *memory.Footprint
	// Refine enables the refinement oracle: each OK execution with a
	// Checked.Refine checker is additionally judged by forward
	// simulation against the library's abstract transition system, in
	// both modes. Runners then record step-event traces (the oracle
	// cross-validates commit stamps against the executed instruction
	// stream), and every judged execution lands in the
	// refine_traces_checked / refine_disagreements telemetry.
	Refine bool
	// POR selects the partial-order reduction mode in ModeExhaustive:
	// PORSleep prunes with static sleep sets, PORSource with source-DPOR
	// (dynamic race reversal plus wakeup read floors). Either way
	// scheduling branches that can only replay an explored equivalence
	// class are skipped, shrinking the number of executions needed for a
	// Complete verdict without changing the set of reachable outcomes
	// (see machine.ExploreOpts.POR). ModeRandom ignores it — random
	// sampling has no branch tree to prune.
	POR PORMode
	// Plan, when non-nil, is a static access plan (extracted by
	// internal/analysis/staticplan) consulted by source-DPOR to skip
	// scheduling branches no statically-possible access can distinguish.
	// Plans are may-over-approximations, so outcome sets are identical
	// with or without one; modes other than PORSource ignore it.
	Plan *memory.Plan
	// Dedup, when non-nil, is the shared visited set of canonical state
	// fingerprints consulted by ModeExhaustive: runs reaching an
	// already-claimed state are cut without changing the set of reachable
	// outcomes (see machine.ExploreOpts.Dedup). The caller owns the
	// handle so it can persist across the segments of a paused/resumed
	// job — reuse one Dedup only within one logical exploration.
	// ModeRandom ignores it.
	Dedup *machine.Dedup
}

// PORMode is re-exported from machine so harness callers configure the
// reduction without importing the machine package.
type PORMode = machine.PORMode

// POR modes, re-exported from machine.
const (
	POROff    = machine.POROff
	PORSleep  = machine.PORSleep
	PORSource = machine.PORSource
)

// ParsePORMode parses a -por flag value ("off", "sleep", "source"; "on"
// is an alias for "sleep").
func ParsePORMode(s string) (PORMode, error) { return machine.ParsePORMode(s) }

// Default option values, shared with the other harness front ends so a
// zero value means the same thing everywhere.
const (
	DefaultExecutions = 200
	DefaultSeed       = int64(1)
	DefaultBudget     = 100000
	DefaultStaleBias  = 0.4
	DefaultMaxFails   = 5
	DefaultMaxRuns    = 200000
)

// NormalizeStaleBias maps the harness encoding of a stale-read bias onto
// its effective value: 0 (the zero value of an options struct) selects
// def, any negative value (BiasZero) selects exactly 0, and everything
// else is taken literally. Both check.Options and fuzz.Config route
// their bias handling through this helper so that StaleBias: 0 and
// StaleBias: BiasZero mean the same thing in every package.
func NormalizeStaleBias(bias, def float64) float64 {
	if bias == 0 {
		return def
	}
	if bias < 0 {
		return 0
	}
	return bias
}

// NormalizeSeed maps the Options seed encoding onto its effective value:
// 0 selects def, SeedZero selects the literal seed 0.
func NormalizeSeed(seed, def int64) int64 {
	if seed == 0 {
		return def
	}
	if seed == SeedZero {
		return 0
	}
	return seed
}

// withDefaults is the single place option normalization happens: every
// entry point (Run in both modes, Explain, the deprecated wrappers) and every runner they build
// goes through it, so a zero-value Options means the documented defaults
// on all paths.
func (o Options) withDefaults() Options {
	if o.Executions == 0 {
		o.Executions = DefaultExecutions
	}
	o.Seed = NormalizeSeed(o.Seed, DefaultSeed)
	if o.Budget <= 0 {
		o.Budget = DefaultBudget
	}
	o.StaleBias = NormalizeStaleBias(o.StaleBias, DefaultStaleBias)
	if o.MaxFailures == 0 {
		o.MaxFailures = DefaultMaxFails
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = DefaultMaxRuns
	}
	return o
}

// Runner builds the machine runner for a normalized Options. All runner
// construction outside the machine package goes through here (enforced
// by the runnerctor analyzer) so budget and telemetry plumbing cannot
// drift between the sequential, parallel, replay, and fuzzing paths.
//
//compass:runner-ctor
func (o Options) Runner(trace bool) *machine.Runner {
	return &machine.Runner{Budget: o.Budget, Trace: trace, Stats: o.Stats, Footprint: o.Footprint, Plan: o.Plan}
}

// ExploreOpts builds the machine exploration options for a harness-level
// Options. All machine.ExploreOpts construction outside the machine
// package goes through here (enforced by the runnerctor analyzer) so
// MaxRuns/Budget/Workers/Stats/Footprint/POR plumbing cannot drift
// between the check and litmus exhaustive paths. It maps fields verbatim
// — zero values defer to the machine defaults — so callers that want the
// check defaults normalize with withDefaults first.
//
//compass:explore-ctor
func (o Options) ExploreOpts() machine.ExploreOpts {
	return machine.ExploreOpts{
		MaxRuns:   o.MaxRuns,
		Budget:    o.Budget,
		Workers:   o.Workers,
		Stats:     o.Stats,
		Footprint: o.Footprint,
		Trace:     o.Refine,
		POR:       o.POR,
		Plan:      o.Plan,
		Dedup:     o.Dedup,
	}
}

// Failure records one failing execution with its replay seed.
type Failure struct {
	Seed       int64
	Status     machine.Status
	Err        error
	Violations []spec.Violation
}

func (f Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d (%v)", f.Seed, f.Status)
	if f.Err != nil {
		fmt.Fprintf(&b, ": %v", f.Err)
	}
	for _, v := range f.Violations {
		fmt.Fprintf(&b, "\n    %s", v)
	}
	return b.String()
}

// Report aggregates a harness run.
type Report struct {
	Name       string
	Executions int
	OK         int // executions that completed and passed all checks
	Discarded  int // budget-exhausted executions (neither pass nor fail)
	Failures   []Failure
	Unknown    int // checks that could not be decided
	Steps      int // total machine steps across executions
	// Exhaustive and Complete are set by Exhaustive: when Complete is
	// true, every execution of the bounded program was explored, so a pass
	// is a proof for the instance rather than statistical evidence.
	Exhaustive bool
	Complete   bool
	// Stats is a telemetry snapshot taken when the run finished; nil
	// unless Options.Stats was set. Its exec counters equal this report's
	// totals when the Stats was fresh for this run (a shared Stats
	// accumulates across runs).
	Stats *telemetry.Snapshot
}

// Passed reports whether no execution failed (discarded and unknown
// executions do not fail a run, but they are reported).
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%-34s %s  %d executions, %d ok, %d discarded, %d unknown, %d steps",
		r.Name, verdict, r.Executions, r.OK, r.Discarded, r.Unknown, r.Steps)
	if r.Exhaustive {
		if r.Complete {
			b.WriteString(" [exhaustive: all executions explored]")
		} else {
			b.WriteString(" [exhaustive: bound hit, incomplete]")
		}
	}
	for i, f := range r.Failures {
		if i == 3 {
			fmt.Fprintf(&b, "\n  ... and %d more failures", len(r.Failures)-3)
			break
		}
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return b.String()
}

// execOutcome is the fully evaluated result of one seeded execution,
// buffered by the parallel harness for the in-order merge.
type execOutcome struct {
	status     machine.Status
	err        error
	steps      int
	violations []spec.Violation
	unknown    int
	done       bool
}

// Run executes build()'s programs Executions times under seeded random
// strategies, checking each OK execution. Executions fan out across
// opt.Workers workers; the report is a deterministic function of the
// options alone — bit-identical to a sequential (Workers: 1) run.
func Run(name string, build func() Checked, opt Options) *Report {
	opt = opt.withDefaults()
	if opt.Mode == ModeExhaustive {
		return runExhaustive(name, build, opt)
	}
	if opt.Workers == 1 {
		return runSequential(name, build, opt)
	}
	return runParallel(name, build, opt)
}

// runSequential is the reference execution loop; it accounts for every
// result it records, one ExecDone per execution.
//
//compass:accounting
func runSequential(name string, build func() Checked, opt Options) *Report {
	rep := &Report{Name: name}
	runner := opt.Runner(opt.Refine)
	for i := 0; i < opt.Executions; i++ {
		seed := opt.Seed + int64(i)
		c := build()
		res := runner.Run(c.Prog, machine.NewRandomBiased(seed, opt.StaleBias))
		rep.Executions++
		rep.Steps += res.Steps
		opt.Stats.ExecDone(uint8(res.Status), res.Steps)
		switch res.Status {
		case machine.Budget:
			rep.Discarded++
			continue
		case machine.Racy, machine.Failed:
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Status: res.Status, Err: res.Err})
		case machine.OK:
			viols, unknown := opt.evaluate(&c, res)
			rep.Unknown += unknown
			if len(viols) == 0 {
				rep.OK++
			} else {
				rep.Failures = append(rep.Failures, Failure{Seed: seed, Status: res.Status, Violations: viols})
			}
		}
		if !opt.KeepGoing && len(rep.Failures) >= opt.MaxFailures {
			break
		}
	}
	return rep.attachStats(opt)
}

// attachStats snapshots the run's telemetry into the report.
func (r *Report) attachStats(opt Options) *Report {
	if opt.Stats != nil {
		snap := opt.Stats.Snapshot()
		r.Stats = &snap
	}
	return r
}

// runParallel distributes executions over a worker pool and then merges
// the buffered outcomes in seed order, replaying the sequential loop's
// exact accounting — including where it would have stopped early.
//
// Determinism argument: workers claim execution indices from an atomic
// counter, so the set of executed indices is always a contiguous prefix
// [0, K). The stop flag is raised only after at least MaxFailures
// failures have completed, all of which lie inside the prefix, so K is
// at least the index at which the sequential loop stops. The merge then
// walks outcomes in index order applying the sequential stop rule,
// discarding whatever overshoot the workers produced past it.
//
//compass:accounting
func runParallel(name string, build func() Checked, opt Options) *Report {
	outcomes := make([]execOutcome, opt.Executions)
	var next, failures, stop int64
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := opt.Runner(opt.Refine)
			for {
				if atomic.LoadInt64(&stop) != 0 {
					return
				}
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(opt.Executions) {
					return
				}
				seed := opt.Seed + i
				c := build()
				res := runner.Run(c.Prog, machine.NewRandomBiased(seed, opt.StaleBias))
				out := execOutcome{status: res.Status, err: res.Err, steps: res.Steps, done: true}
				if res.Status == machine.OK {
					out.violations, out.unknown = opt.evaluate(&c, res)
				}
				outcomes[i] = out
				failed := res.Status == machine.Racy || res.Status == machine.Failed ||
					(res.Status == machine.OK && len(out.violations) > 0)
				if failed && !opt.KeepGoing &&
					atomic.AddInt64(&failures, 1) >= int64(opt.MaxFailures) {
					atomic.StoreInt64(&stop, 1)
				}
			}
		}()
	}
	wg.Wait()

	rep := &Report{Name: name}
	for i := 0; i < opt.Executions; i++ {
		out := outcomes[i]
		if !out.done {
			break
		}
		seed := opt.Seed + int64(i)
		// Executions counts what the report accounts for, not what the
		// workers ran: outcomes past the sequential stop point (or never
		// claimed) are excluded, and ExecDone is recorded here — not in
		// the workers — so telemetry exec totals always equal the
		// report's.
		rep.Executions++
		rep.Steps += out.steps
		opt.Stats.ExecDone(uint8(out.status), out.steps)
		switch out.status {
		case machine.Budget:
			rep.Discarded++
			continue
		case machine.Racy, machine.Failed:
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Status: out.status, Err: out.err})
		case machine.OK:
			rep.Unknown += out.unknown
			if len(out.violations) == 0 {
				rep.OK++
			} else {
				rep.Failures = append(rep.Failures, Failure{Seed: seed, Status: out.status, Violations: out.violations})
			}
		}
		if !opt.KeepGoing && len(rep.Failures) >= opt.MaxFailures {
			break
		}
	}
	return rep.attachStats(opt)
}

// Exhaustive explores every execution of the workload up to maxRuns.
//
// Deprecated: use Run with Options{Mode: ModeExhaustive, MaxRuns: maxRuns,
// Budget: budget}. Kept as a thin delegating wrapper for source
// compatibility with the positional API.
func Exhaustive(name string, build func() Checked, maxRuns, budget int) *Report {
	return Run(name, build, Options{Mode: ModeExhaustive, MaxRuns: maxRuns, Budget: budget})
}

// ExhaustiveOpt explores every execution of the workload driven by
// Options.
//
// Deprecated: use Run with Options{Mode: ModeExhaustive, ...}; this
// wrapper only forces the mode and delegates.
func ExhaustiveOpt(name string, build func() Checked, opt Options) *Report {
	opt.Mode = ModeExhaustive
	return Run(name, build, opt)
}

// runExhaustive explores every execution of the workload (all
// interleavings and all read choices): MaxRuns and Budget bound the
// exploration, MaxFailures/KeepGoing control the early stop exactly as in
// the random mode, Workers fans the decision-tree subtrees across a
// worker pool (the tree partitioning is machine.ExploreParallel's), and
// POR prunes scheduling branches that replay explored equivalence
// classes. When the returned report has Complete set, a pass is a *proof*
// for the bounded instance — the executable analogue of the paper's
// per-implementation theorems, on a finite workload. The counts in a
// Complete report are a deterministic function of the workload regardless
// of Workers; with an early stop the explored subset — but never the
// verdict's soundness — may vary. Exhaustive executions have no seed, so
// Failures carry Seed -1. opt has been normalized by Run.
func runExhaustive(name string, build func() Checked, opt Options) *Report {
	j := NewExhaustJob(name)
	j.RunSegment(build, opt, 0)
	return j.Report.attachStats(opt)
}

// ExhaustJob is the resumable state of one exhaustive verification run:
// the partial Report accumulated so far and the frontier of unexplored
// decision-prefix subtrees. It is the check-level face of the machine's
// checkpointable frontier (machine.Frontier): a job paused between
// segments can be serialized (Report rendered by the caller, Frontier via
// its JSON round trip), the process killed, and the job resumed — on any
// worker count — with a final Report identical to an uninterrupted run's
// (same Executions, OK, Discarded, Unknown, Steps, Complete, and failure
// multiset), because every leaf of the decision tree is executed exactly
// once across all segments. The compassd service (internal/serve) drives
// its exhaustive jobs through this type.
type ExhaustJob struct {
	// Report accumulates across segments; Name and Exhaustive are set at
	// construction.
	Report *Report
	// Frontier is the remaining work after the last segment; nil before
	// the first segment (meaning the whole tree) and after completion.
	Frontier *machine.Frontier
	// Done is set when no further segment will make progress: the tree
	// completed, the MaxRuns bound was exhausted, or an early stop
	// (MaxFailures without KeepGoing) abandoned the remaining subtrees.
	Done bool
}

// NewExhaustJob returns the state of an unstarted exhaustive run.
func NewExhaustJob(name string) *ExhaustJob {
	return &ExhaustJob{Report: &Report{Name: name, Exhaustive: true}}
}

// Resume rebuilds a job mid-flight from checkpointed state: the partial
// report (ownership transfers to the job) and the saved frontier.
func ResumeExhaustJob(rep *Report, frontier *machine.Frontier) *ExhaustJob {
	rep.Exhaustive = true
	return &ExhaustJob{Report: rep, Frontier: frontier}
}

// RunSegment explores until the tree is exhausted, the MaxRuns bound is
// hit, an early stop fires, or — when pauseRuns > 0 — at least pauseRuns
// more executions completed. It returns j.Done: false means the job
// paused and a later RunSegment (or a resumed process) continues it.
// Accounting matches the uninterrupted path exactly: every visited
// execution lands in the Report and in opt.Stats once.
//
//compass:accounting
func (j *ExhaustJob) RunSegment(build func() Checked, opt Options, pauseRuns int) bool {
	if j.Done {
		return true
	}
	opt = opt.withDefaults()
	rep := j.Report
	var mu sync.Mutex
	// MaxFailures applies to the job, not the segment: failures already
	// checkpointed count against the budget of this segment.
	failures := int64(len(rep.Failures))
	eo := opt.ExploreOpts()
	eo.Resume = j.Frontier
	eo.PauseRuns = pauseRuns
	eo.MaxRuns = opt.MaxRuns - rep.Executions
	if eo.MaxRuns <= 0 {
		j.Done = true
		return true
	}
	res := machine.ExploreParallel(
		eo,
		func() (func() machine.Program, func(*machine.Result) bool) {
			var cur Checked
			buildProg := func() machine.Program {
				cur = build()
				return cur.Prog
			}
			visit := func(r *machine.Result) bool {
				var f *Failure
				var viols []spec.Violation
				unknown := 0
				if r.Status == machine.OK {
					// Run the spec checkers outside the merge lock; they
					// only touch this worker's recorders.
					viols, unknown = opt.evaluate(&cur, r)
				}
				switch r.Status {
				case machine.Racy, machine.Failed:
					f = &Failure{Seed: -1, Status: r.Status, Err: r.Err}
				case machine.OK:
					if len(viols) > 0 {
						f = &Failure{Seed: -1, Status: r.Status, Violations: viols}
					}
				}
				mu.Lock()
				rep.Executions++
				rep.Steps += r.Steps
				switch r.Status {
				case machine.Budget:
					rep.Discarded++
				case machine.OK:
					rep.Unknown += unknown
					if f == nil {
						rep.OK++
					}
				}
				if f != nil {
					rep.Failures = append(rep.Failures, *f)
				}
				mu.Unlock()
				if f != nil && !opt.KeepGoing {
					return atomic.AddInt64(&failures, 1) < int64(opt.MaxFailures)
				}
				return true
			}
			return buildProg, visit
		})
	rep.Complete = res.Complete
	j.Frontier = res.Frontier
	// Paused on pauseRuns with MaxRuns budget left → resumable. Anything
	// else (complete, MaxRuns exhausted, early stop) ends the job.
	j.Done = !res.Paused || rep.Executions >= opt.MaxRuns
	return j.Done
}

// ExplainOpt replays the execution with the given seed under tracing and
// returns the per-step operation log together with the violations found —
// for diagnosing a Failure reported by Run. The judgment is the same one
// Run applies (opt.evaluate): with opt.Refine set the refinement oracle
// runs on the replay too, so refine-attributed failures reproduce instead
// of silently vanishing. Pass the Options the original Run used.
func ExplainOpt(build func() Checked, seed int64, opt Options) (machine.Status, []string, []spec.Violation) {
	opt = opt.withDefaults()
	c := build()
	res := opt.Runner(true).Run(c.Prog, machine.NewRandomBiased(seed, opt.StaleBias))
	var viols []spec.Violation
	if res.Status == machine.OK {
		viols, _ = opt.evaluate(&c, res)
	}
	return res.Status, res.Trace(), viols
}

// Explain is ExplainOpt with only the bias and budget options threaded.
//
// Deprecated: Explain judges the replay without the refinement oracle, so
// a refine-attributed failure replays as a spurious pass. Use ExplainOpt
// with the Options the original Run used.
func Explain(build func() Checked, seed int64, staleBias float64, budget int) (machine.Status, []string, []spec.Violation) {
	return ExplainOpt(build, seed, Options{StaleBias: staleBias, Budget: budget})
}

// TraceCheckedOpt is the structured sibling of ExplainOpt: it replays the
// execution with the given seed under step-event recording and returns the
// machine result (Events populated, ready for Chrome trace export)
// together with the violations found, judged exactly as Run judges them
// (refinement oracle included when opt.Refine is set).
func TraceCheckedOpt(build func() Checked, seed int64, opt Options) (*machine.Result, []spec.Violation) {
	opt = opt.withDefaults()
	c := build()
	res := opt.Runner(true).Run(c.Prog, machine.NewRandomBiased(seed, opt.StaleBias))
	var viols []spec.Violation
	if res.Status == machine.OK {
		viols, _ = opt.evaluate(&c, res)
	}
	return res, viols
}

// TraceChecked is TraceCheckedOpt with only the bias and budget options
// threaded.
//
// Deprecated: TraceChecked judges the replay without the refinement
// oracle. Use TraceCheckedOpt with the Options the original Run used.
func TraceChecked(build func() Checked, seed int64, staleBias float64, budget int) (*machine.Result, []spec.Violation) {
	return TraceCheckedOpt(build, seed, Options{StaleBias: staleBias, Budget: budget})
}

// Collect merges several spec results into the (violations, unknown) pair
// a Checked.Check closure returns.
func Collect(results ...spec.Result) ([]spec.Violation, int) {
	var out []spec.Violation
	unknown := 0
	for _, r := range results {
		out = append(out, r.Violations...)
		if r.Unknown {
			unknown++
		}
	}
	return out, unknown
}
