package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"compass/internal/machine"
	"compass/internal/telemetry"
)

// Lease tuning defaults (non-semantic; see JobSpec).
const (
	// DefaultLeaseTTL is how long a lease stays valid without a renewal.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultLeasePrefixes is the maximum frontier prefixes per lease.
	DefaultLeasePrefixes = 8
)

// Lease protocol errors, mapped onto HTTP codes by the handler.
var (
	// ErrNoWork means no coordinator job currently has unleased prefixes;
	// the peer polls again later.
	ErrNoWork = errors.New("no shardable work available")
	// ErrStaleLease refuses a renewal or return whose lease is unknown,
	// expired and reclaimed, or from a previous coordinator epoch. The
	// peer must discard its delta — the coordinator has re-leased (or
	// will re-lease) those prefixes, so merging the stale delta would
	// double-count their executions.
	ErrStaleLease = errors.New("stale or unknown lease")
)

// LeaseGrant is the coordinator's response to a successful acquire: a
// batch of frontier prefixes, the identity needed to renew and return
// it, and the spec the peer must run the segment under.
type LeaseGrant struct {
	JobID   string `json:"job_id"`
	LeaseID string `json:"lease_id"`
	// Epoch is the coordinator's per-job lease epoch; a coordinator
	// resumed from a checkpoint bumps it, so returns from leases granted
	// before the crash are refused as stale rather than double-counted.
	Epoch int64 `json:"epoch"`
	// Spec is the job's normalized spec with the scheduling knobs
	// cleared; the peer applies its own worker configuration.
	Spec JobSpec `json:"spec"`
	// Frontier is the leased batch of unexplored decision prefixes.
	Frontier *machine.Frontier `json:"frontier"`
	// TTLMillis is the renewal deadline interval.
	TTLMillis int64 `json:"ttl_millis"`
}

// LeaseReturn is the peer's completed (or paused) segment: the engine
// state accumulated from a fresh start over the leased frontier — its
// totals ARE the delta — plus the telemetry the segment recorded. Any
// unexplored leftover rides inside the engine state's frontier field and
// goes back into the coordinator's unleased pool.
type LeaseReturn struct {
	JobID     string              `json:"job_id"`
	LeaseID   string              `json:"lease_id"`
	Epoch     int64               `json:"epoch"`
	Engine    json.RawMessage     `json:"engine"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// LeaseState is the checkpoint form of one outstanding lease.
type LeaseState struct {
	ID       string              `json:"id"`
	Epoch    int64               `json:"epoch"`
	Peer     string              `json:"peer,omitempty"`
	Prefixes [][]machine.Decision `json:"prefixes"`
}

// ShardState is the checkpoint form of a coordinator job's lease table.
// Outstanding leases are persisted so a SIGKILLed coordinator loses no
// work: on resume their prefixes return to the unleased pool under a
// bumped epoch (their original holders' late returns are refused as
// stale). Completed lease IDs are persisted so a return that was merged
// and checkpointed — but whose ack the peer never saw — is re-acked
// idempotently instead of re-merged.
type ShardState struct {
	Epoch     int64                `json:"epoch"`
	NextSeq   int64                `json:"next_seq"`
	Installed bool                 `json:"installed"`
	Frontier  [][]machine.Decision `json:"frontier,omitempty"`
	Leases    []LeaseState         `json:"leases,omitempty"`
	Done      []string             `json:"done_leases,omitempty"`
}

// ShardView is the shard summary rendered on the job API.
type ShardView struct {
	Epoch       int64 `json:"epoch"`
	Pending     int   `json:"pending_prefixes"`
	Outstanding int   `json:"outstanding_leases"`
	Completed   int   `json:"completed_leases"`
}

// lease is one outstanding grant.
type lease struct {
	id       string
	epoch    int64
	peer     string
	prefixes [][]machine.Decision
	deadline time.Time
}

// shardState is the runtime lease table of one coordinator job. All
// fields are guarded by mu; engine merges and checkpoints triggered by
// lease returns also run under mu, making the coordinator's
// merge-then-checkpoint-then-ack sequence atomic with respect to
// concurrent returns and the reclaim scan.
type shardState struct {
	epoch     int64
	nextSeq   int64
	installed bool
	frontier  [][]machine.Decision
	leases    map[string]*lease
	done      map[string]bool
	ttl       time.Duration
	batch     int
	// wake nudges the coordinator loop after a return or reclaim so job
	// completion is detected promptly.
	wake chan struct{}
}

func newShardState(sp JobSpec) *shardState {
	ttl := DefaultLeaseTTL
	if sp.LeaseTTLMillis > 0 {
		ttl = time.Duration(sp.LeaseTTLMillis) * time.Millisecond
	}
	batch := sp.LeasePrefixes
	if batch <= 0 {
		batch = DefaultLeasePrefixes
	}
	return &shardState{
		leases: map[string]*lease{},
		done:   map[string]bool{},
		ttl:    ttl,
		batch:  batch,
		wake:   make(chan struct{}, 1),
	}
}

// restoreShardState rebuilds the runtime table from a checkpoint,
// reclaiming every outstanding lease under a bumped epoch. It returns
// the number of leases reclaimed.
func restoreShardState(sp JobSpec, st *ShardState) (*shardState, int) {
	sh := newShardState(sp)
	sh.epoch = st.Epoch + 1
	sh.nextSeq = st.NextSeq
	sh.installed = st.Installed
	sh.frontier = append(sh.frontier, st.Frontier...)
	for _, l := range st.Leases {
		sh.frontier = append(sh.frontier, l.Prefixes...)
	}
	for _, id := range st.Done {
		sh.done[id] = true
	}
	return sh, len(st.Leases)
}

// checkpointLocked renders the checkpoint form. Callers hold the shard
// lock (via the job's withShard).
func (sh *shardState) checkpointLocked() *ShardState {
	st := &ShardState{
		Epoch:     sh.epoch,
		NextSeq:   sh.nextSeq,
		Installed: sh.installed,
		Frontier:  sh.frontier,
	}
	for _, l := range sh.leases {
		st.Leases = append(st.Leases, LeaseState{ID: l.id, Epoch: l.epoch, Peer: l.peer, Prefixes: l.prefixes})
	}
	for id := range sh.done {
		st.Done = append(st.Done, id)
	}
	return st
}

func (sh *shardState) viewLocked() *ShardView {
	return &ShardView{
		Epoch:       sh.epoch,
		Pending:     len(sh.frontier),
		Outstanding: len(sh.leases),
		Completed:   len(sh.done),
	}
}

// grantLocked pops up to batch prefixes off the unleased pool (LIFO:
// deepest first, mirroring the in-process explorer's claim order) into a
// fresh lease. Returns nil when the pool is empty.
func (sh *shardState) grantLocked(jobID, peer string, now time.Time) *lease {
	if !sh.installed || len(sh.frontier) == 0 {
		return nil
	}
	n := sh.batch
	if n > len(sh.frontier) {
		n = len(sh.frontier)
	}
	cut := len(sh.frontier) - n
	prefixes := append([][]machine.Decision(nil), sh.frontier[cut:]...)
	sh.frontier = sh.frontier[:cut]
	sh.nextSeq++
	l := &lease{
		id:       fmt.Sprintf("%s-l%d", jobID, sh.nextSeq),
		epoch:    sh.epoch,
		peer:     peer,
		prefixes: prefixes,
		deadline: now.Add(sh.ttl),
	}
	sh.leases[l.id] = l
	return l
}

// reclaimLocked returns expired leases' prefixes to the unleased pool
// and drops the leases; their holders' late returns will be refused as
// stale. Returns the number reclaimed.
func (sh *shardState) reclaimLocked(now time.Time) int {
	n := 0
	for id, l := range sh.leases {
		if now.After(l.deadline) {
			sh.frontier = append(sh.frontier, l.prefixes...)
			delete(sh.leases, id)
			n++
		}
	}
	return n
}

// idleLocked reports shard completion: nothing unleased, nothing
// outstanding.
func (sh *shardState) idleLocked() bool {
	return sh.installed && len(sh.frontier) == 0 && len(sh.leases) == 0
}

func (sh *shardState) nudge() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// AcquireLease grants a batch of frontier prefixes from the first
// running coordinator job that has unleased work. peer is a display
// name recorded in the lease table. Returns ErrNoWork when nothing can
// be granted right now (the caller polls again; the coordinator may
// still be splitting, or all prefixes may be out on lease).
//
//compass:accounting
func (m *Manager) AcquireLease(peer string) (*LeaseGrant, error) {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		j, ok := m.Job(id)
		if !ok || j.shard == nil {
			continue
		}
		grant := func() *LeaseGrant {
			j.shardMu.Lock()
			defer j.shardMu.Unlock()
			j.mu.Lock()
			running := j.status == StatusRunning
			j.mu.Unlock()
			if !running {
				return nil
			}
			l := j.shard.grantLocked(j.ID, peer, time.Now())
			if l == nil {
				return nil
			}
			spec := j.Spec
			spec.Coordinator = false
			spec.Workers = 0
			spec.CheckpointEvery = 0
			return &LeaseGrant{
				JobID:     j.ID,
				LeaseID:   l.id,
				Epoch:     l.epoch,
				Spec:      spec,
				Frontier:  machine.RestoreFrontier(l.prefixes),
				TTLMillis: j.shard.ttl.Milliseconds(),
			}
		}()
		if grant != nil {
			m.stats.LeaseGranted()
			return grant, nil
		}
	}
	return nil, ErrNoWork
}

// RenewLease extends an outstanding lease's deadline.
//
//compass:accounting
func (m *Manager) RenewLease(jobID, leaseID string, epoch int64) error {
	j, ok := m.Job(jobID)
	if !ok || j.shard == nil {
		return ErrStaleLease
	}
	j.shardMu.Lock()
	defer j.shardMu.Unlock()
	l, ok := j.shard.leases[leaseID]
	if !ok || l.epoch != epoch {
		return ErrStaleLease
	}
	l.deadline = time.Now().Add(j.shard.ttl)
	m.stats.LeaseRenewed()
	return nil
}

// ReturnLease merges one completed lease segment into the job. The
// sequence is merge, checkpoint, ack: the lease is marked done before
// the checkpoint is written, so a coordinator killed between merge and
// ack re-acks the retried return idempotently instead of re-merging it,
// and one killed before the checkpoint loses the merge *and* the done
// marker together — the resumed epoch then refuses the retry and
// re-leases the prefixes, keeping every leaf exactly-once either way.
//
//compass:accounting
func (m *Manager) ReturnLease(ret *LeaseReturn) error {
	j, ok := m.Job(ret.JobID)
	if !ok || j.shard == nil {
		return ErrStaleLease
	}
	j.shardMu.Lock()
	defer j.shardMu.Unlock()
	sh := j.shard
	if sh.done[ret.LeaseID] {
		return nil // idempotent re-ack of an already-merged return
	}
	l, ok := sh.leases[ret.LeaseID]
	if !ok || l.epoch != ret.Epoch {
		return ErrStaleLease
	}
	leftover, err := j.eng.(sharder).mergeDelta(ret.Engine)
	if err != nil {
		// A malformed delta is the peer's bug; the lease stays live so
		// its expiry re-leases the prefixes.
		return err
	}
	if ret.Telemetry != nil {
		seg, err := telemetry.Restore(*ret.Telemetry)
		if err == nil {
			j.stats.Merge(seg)
		}
	}
	if leftover != nil {
		sh.frontier = append(sh.frontier, leftover.Prefixes()...)
	}
	delete(sh.leases, ret.LeaseID)
	sh.done[ret.LeaseID] = true
	j.mu.Lock()
	j.runs = j.eng.runs()
	j.mu.Unlock()
	if err := j.checkpoint(false, nil, nil); err != nil {
		// The merge is in memory but not durable; the done marker above
		// still guards a peer retry against double-merge in this
		// process, and a crash loses marker and merge together.
		return err
	}
	m.stats.LeaseReturned()
	j.broadcast(j.stats.Snapshot())
	sh.nudge()
	return nil
}

// runSharded is the coordinator job loop: one local segment splits the
// decision tree into a frontier, which is then only advanced by peer
// lease returns. The loop's own duties are reclaiming expired leases
// and detecting completion (frontier empty, no lease outstanding).
//
//compass:accounting
func (j *Job) runSharded() {
	sh := j.shard
	if !sh.installed {
		done, segErr := j.eng.segment(j.checkpointEvery())
		runs := j.eng.runs()
		j.stats.SegmentDone(runs)
		j.mu.Lock()
		j.runs = runs
		j.mu.Unlock()
		j.shardMu.Lock()
		switch {
		case segErr != nil:
			j.checkpoint(false, nil, segErr)
			j.shardMu.Unlock()
			j.broadcast(j.stats.Snapshot())
			j.finalize(StatusFailed, j.eng.result(), segErr)
			return
		case done:
			// The split segment finished the whole tree locally; no
			// sharding needed.
			result := j.eng.result()
			j.checkpoint(true, result, nil)
			j.shardMu.Unlock()
			j.broadcast(j.stats.Snapshot())
			j.finalize(StatusDone, result, nil)
			return
		}
		if f := j.eng.(sharder).takeFrontier(); f != nil {
			sh.frontier = append(sh.frontier, f.Prefixes()...)
		}
		sh.installed = true
		err := j.checkpoint(false, nil, nil)
		j.shardMu.Unlock()
		j.broadcast(j.stats.Snapshot())
		if err != nil {
			j.finalize(StatusFailed, j.eng.result(), err)
			return
		}
	}
	poll := sh.ttl / 4
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	if poll <= 0 {
		poll = time.Millisecond
	}
	for {
		j.shardMu.Lock()
		if n := sh.reclaimLocked(time.Now()); n > 0 {
			for i := 0; i < n; i++ {
				j.m.stats.LeaseReclaimed()
			}
			j.checkpoint(false, nil, nil)
		}
		idle := sh.idleLocked()
		var result *JobResult
		var cpErr error
		if idle {
			j.eng.(sharder).finishShard()
			result = j.eng.result()
			j.mu.Lock()
			j.runs = j.eng.runs()
			j.mu.Unlock()
			cpErr = j.checkpoint(true, result, nil)
		}
		j.shardMu.Unlock()
		if idle {
			j.broadcast(j.stats.Snapshot())
			if cpErr != nil {
				j.finalize(StatusFailed, result, cpErr)
			} else {
				j.finalize(StatusDone, result, nil)
			}
			return
		}
		if j.stop.Load() {
			// Graceful pause: the lease table is already checkpointed at
			// every mutation; a restarted coordinator bumps the epoch and
			// reclaims whatever is still out.
			return
		}
		select {
		case <-sh.wake:
		case <-time.After(poll):
		}
	}
}
