package spec

import (
	"fmt"
	"strings"

	"compass/internal/core"
	"compass/internal/view"
)

// SeqObject gives the sequential semantics (the paper's interp, Fig. 4)
// against which histories are interpreted.
type SeqObject interface {
	Name() string
	Init() SeqState
}

// SeqState is one abstract state of a sequential object.
type SeqState interface {
	// Apply interprets one event against the state. strict additionally
	// validates read-only operations (an empty dequeue/pop is legal only
	// if the state is truly empty). It returns the successor state and
	// whether the event was legal.
	Apply(e *core.Event, strict bool) (SeqState, bool)
	// Key returns a canonical encoding of the state (for memoization).
	Key() string
}

// SeqQueue is the sequential FIFO queue semantics.
type SeqQueue struct{}

// Name implements SeqObject.
func (SeqQueue) Name() string { return "queue" }

// Init implements SeqObject.
func (SeqQueue) Init() SeqState { return queueState(nil) }

type queueState []int64

func (s queueState) Apply(e *core.Event, strict bool) (SeqState, bool) {
	switch e.Kind {
	case core.Enq:
		return append(s[:len(s):len(s)], e.Val), true
	case core.Deq:
		if len(s) == 0 || s[0] != e.Val {
			return s, false
		}
		return s[1:], true
	case core.EmpDeq:
		return s, !strict || len(s) == 0
	}
	return s, false
}

func (s queueState) Key() string { return keyOf([]int64(s)) }

// SeqStack is the sequential LIFO stack semantics (the paper's interp in
// Fig. 4: a push adds to the head, a pop removes the head, an empty pop
// happens only on the empty stack).
type SeqStack struct{}

// Name implements SeqObject.
func (SeqStack) Name() string { return "stack" }

// Init implements SeqObject.
func (SeqStack) Init() SeqState { return stackState(nil) }

type stackState []int64 // top is the last element

func (s stackState) Apply(e *core.Event, strict bool) (SeqState, bool) {
	switch e.Kind {
	case core.Push:
		return append(s[:len(s):len(s)], e.Val), true
	case core.Pop:
		if len(s) == 0 || s[len(s)-1] != e.Val {
			return s, false
		}
		return s[:len(s)-1], true
	case core.EmpPop:
		return s, !strict || len(s) == 0
	}
	return s, false
}

func (s stackState) Key() string { return keyOf([]int64(s)) }

func keyOf(vs []int64) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// ReplayCommitOrder interprets the graph's total commit order against the
// sequential semantics. With strict=false this is the LAT_hb^abs check:
// the abstract state must be constructible at every commit point, i.e.
// every successful operation transforms the state as the spec's
// postcondition describes (read-only operations are unconstrained). With
// strict=true it is the SC-level check of §2.2, where e.g. an empty
// dequeue may only commit on a truly empty abstract state.
func ReplayCommitOrder(g *core.Graph, obj SeqObject, strict bool, res *Result) {
	rule := "ABS-STATE"
	if strict {
		rule = "SC-STATE"
	}
	st := obj.Init()
	var pos int
	for _, e := range g.Events() {
		next, ok := st.Apply(e, strict)
		if !ok {
			res.addf(rule, "commit #%d %v is inconsistent with abstract %s state [%s]",
				pos, e, obj.Name(), st.Key())
			return
		}
		st = next
		pos++
	}
}

// Linearizable searches for a total order to of the committed events that
// (a) extends lhb (H.lhb ⊆ to) and (b) is a valid strict sequential
// history (interp(to, vs), including read-only operations). This is the
// LAT_hb^hist obligation of §3.3 (HIST-HB-STACK-LINEARIZABLE).
//
// The search is exponential in the worst case; maxEvents bounds the
// instance size (0 means 26). Returns (found, unknown): unknown is set if
// the instance exceeds the bound.
func Linearizable(g *core.Graph, obj SeqObject, maxEvents int) (bool, bool) {
	if maxEvents <= 0 {
		maxEvents = 26
	}
	events := g.Events()
	n := len(events)
	if n > maxEvents || n > 62 {
		return false, true
	}
	// preds[i] = bitmask of events that must precede event i (lhb).
	pos := map[view.EventID]int{}
	for i, e := range events {
		pos[e.ID] = i
	}
	preds := make([]uint64, n)
	for i, e := range events {
		for _, p := range e.LogView.Events() {
			if j, ok := pos[p]; ok {
				preds[i] |= 1 << uint(j)
			}
		}
	}
	full := uint64(1)<<uint(n) - 1
	failed := map[string]bool{}
	var dfs func(mask uint64, st SeqState) bool
	dfs = func(mask uint64, st SeqState) bool {
		if mask == full {
			return true
		}
		key := fmt.Sprintf("%x|%s", mask, st.Key())
		if failed[key] {
			return false
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 || preds[i]&^mask != 0 {
				continue
			}
			if next, ok := st.Apply(events[i], true); ok {
				if dfs(mask|bit, next) {
					return true
				}
			}
		}
		failed[key] = true
		return false
	}
	return dfs(0, obj.Init()), false
}

// CheckHist runs the LAT_hb^hist obligation, with a fast path: if the
// commit order itself is already a strict sequential history it is the
// witness to; otherwise the full search runs.
func CheckHist(g *core.Graph, obj SeqObject, maxEvents int, res *Result) {
	var probe Result
	ReplayCommitOrder(g, obj, true, &probe)
	if len(probe.Violations) == 0 {
		return // commit order is itself a valid linearization
	}
	ok, unknown := Linearizable(g, obj, maxEvents)
	if unknown {
		res.Unknown = true
		return
	}
	if !ok {
		res.addf("HIST-LINEARIZABLE",
			"no total order to ⊇ lhb interprets as a sequential %s history (%d events)",
			obj.Name(), len(g.Events()))
	}
}
