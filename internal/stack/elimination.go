package stack

import (
	"compass/internal/core"
	"compass/internal/exchanger"
	"compass/internal/machine"
	"compass/internal/view"
)

// Sentinel is the value a pop offers on the exchanger (the paper's
// SENTINEL). It is distinct from ⊥ and from every stack value (which must
// be positive).
const Sentinel int64 = -1

// ElimStack is the elimination stack of §4.1: a base Treiber stack
// composed with an exchanger, with no additional atomic instructions.
//
//	try_push(s, v) ::= if try_push'(s.base, v) then true
//	                   else exchange(s.ex, v) == SENTINEL
//	try_pop(s)     ::= let v = try_pop'(s.base) in
//	                   if v != FAIL_RACE then v
//	                   else let v' = exchange(s.ex, SENTINEL) in
//	                        if v' ∉ {SENTINEL, ⊥} then v' else FAIL_RACE
//
// The verification structure of the paper becomes executable event
// mirroring: every base-stack operation is simulated by an ElimStack event
// committed atomically with the base commit (via the base stack's extras
// hook for pushes, and adjacent commits for pops), and a successful
// exchange between a value and a SENTINEL is simulated by an ElimStack
// push immediately followed by the matching pop, both committed by the
// exchange's helper at its commit point — so the elimination is atomic and
// no concurrent operation can observe the intermediate state (the property
// §4.2's intermediate-state discussion demands). Other exchange matches
// (push-push, pop-pop) are ignored by the simulation.
type ElimStack struct {
	base *Treiber
	ex   *exchanger.Exchanger
	rec  *core.Recorder
	// baseToES maps base push events to their mirrored ElimStack events,
	// for wiring the mirrored pop's so edge. Only the scheduled thread
	// mutates it.
	baseToES map[view.EventID]view.EventID
	// Patience bounds exchange attempts per elimination try (default 3).
	Patience int
}

// NewElim allocates an elimination stack (base Treiber + exchanger).
func NewElim(th *machine.Thread, name string) *ElimStack {
	return &ElimStack{
		base:     NewTreiber(th, name+".base"),
		ex:       exchanger.New(th, name+".ex"),
		rec:      core.NewRecorder(name),
		baseToES: map[view.EventID]view.EventID{},
		Patience: 3,
	}
}

// Recorder implements Stack (the ElimStack's own event graph).
func (s *ElimStack) Recorder() *core.Recorder { return s.rec }

// Base exposes the base stack's recorder (for compositional checking).
func (s *ElimStack) Base() *Treiber { return s.base }

// Exchanger exposes the exchanger (for compositional checking).
func (s *ElimStack) Exchanger() *exchanger.Exchanger { return s.ex }

// onMatch is the exchange helper's callback: if the matched pair is a
// value-SENTINEL pair, commit the mirrored ElimStack push and pop — at the
// helper's commit point, atomically.
func (s *ElimStack) onMatch(th *machine.Thread, helpee, helper view.EventID, helpeeVal, helperVal int64) {
	var pushVal int64
	switch {
	case helpeeVal != Sentinel && helperVal == Sentinel:
		pushVal = helpeeVal
	case helpeeVal == Sentinel && helperVal != Sentinel:
		pushVal = helperVal
	default:
		return // push-push or pop-pop match: ignored by the simulation
	}
	esPush := s.rec.CommitNew(th, core.Push, pushVal)
	esPop := s.rec.CommitNew(th, core.Pop, pushVal)
	s.rec.AddSo(esPush, esPop)
}

// TryPush makes one elimination-stack push attempt.
func (s *ElimStack) TryPush(th *machine.Thread, v int64) bool {
	if v <= 0 {
		th.Failf("elimstack: values must be positive, got %d", v)
	}
	esID := s.rec.Begin(th, core.Push, v)
	baseID, ok := s.base.TryPush(th, v, core.Pending{Rec: s.rec, ID: esID})
	if ok {
		s.baseToES[baseID] = esID
		return true
	}
	// Contention: try to eliminate against a concurrent pop. The mirrored
	// events of a successful elimination are committed by the exchange
	// helper; the pre-begun esID stays pending and is discarded.
	return s.ex.ExchangeMatch(th, v, s.Patience, s.onMatch) == Sentinel
}

// TryPop makes one elimination-stack pop attempt.
func (s *ElimStack) TryPop(th *machine.Thread) (int64, PopStatus) {
	v, matched, st := s.base.TryPop(th)
	switch st {
	case PopOK:
		// Mirror atomically: the base pop committed at its CAS and no
		// machine step has happened since.
		esPop := s.rec.CommitNew(th, core.Pop, v)
		if esPush, ok := s.baseToES[matched]; ok {
			s.rec.AddSo(esPush, esPop)
		}
		return v, PopOK
	case PopEmpty:
		s.rec.CommitNew(th, core.EmpPop, 0)
		return 0, PopEmpty
	}
	// FAIL_RACE: try to eliminate against a concurrent push.
	r := s.ex.ExchangeMatch(th, Sentinel, s.Patience, s.onMatch)
	if r != core.ExFail && r != Sentinel {
		return r, PopOK
	}
	return 0, PopRace
}

// Push implements Stack, retrying until an attempt succeeds.
func (s *ElimStack) Push(th *machine.Thread, v int64) {
	for !s.TryPush(th, v) {
		th.Yield()
	}
}

// Pop implements Stack, retrying lost races.
func (s *ElimStack) Pop(th *machine.Thread) (int64, bool) {
	for {
		v, st := s.TryPop(th)
		switch st {
		case PopOK:
			return v, true
		case PopEmpty:
			return 0, false
		}
		th.Yield()
	}
}
