package check

import (
	"compass/internal/core"
	"compass/internal/deque"
	"compass/internal/machine"
	"compass/internal/refine"
	"compass/internal/spec"
)

// DequeFactory constructs a fresh work-stealing deque (called in Setup).
type DequeFactory func(th *machine.Thread) *deque.Deque

// DequeWorkStealing is the Chase-Lev verification workload: one owner
// pushes perOwner elements and interleaves takes; thieves attempt steals.
// The final graph is checked at the given spec level.
func DequeWorkStealing(f DequeFactory, level spec.Level, perOwner, thieves, steals int) func() Checked {
	return func() Checked {
		var d *deque.Deque
		workers := make([]func(*machine.Thread), 0, 1+thieves)
		workers = append(workers, func(th *machine.Thread) { // owner
			for i := 0; i < perOwner; i++ {
				d.PushBottom(th, int64(100+i))
				if i%2 == 1 {
					d.TakeBottom(th)
				}
			}
			for i := 0; i < perOwner; i++ {
				d.TakeBottom(th)
			}
		})
		for t := 0; t < thieves; t++ {
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < steals; i++ {
					d.Steal(th)
				}
			})
		}
		return Checked{
			Prog: machine.Program{
				Name:    "deque-worksteal",
				Setup:   func(th *machine.Thread) { d = f(th) },
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return Collect(spec.CheckDeque(d.Recorder().Graph(), level))
			},
			Refine: refine.Checker(refine.Deque, func() *core.Graph { return d.Recorder().Graph() }),
		}
	}
}
