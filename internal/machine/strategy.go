package machine

import (
	"encoding/json"
	"math/rand"
	"runtime"
	"sync"

	"compass/internal/memory"
	"compass/internal/telemetry"
)

// RandomStrategy resolves all nondeterminism with a seeded PRNG, making
// executions replayable from the seed alone. StaleBias controls how often
// a read deliberately picks a stale (non-latest) visible message; the
// remaining probability mass goes to the latest message so spin loops
// terminate quickly.
type RandomStrategy struct {
	rng       *rand.Rand
	staleBias float64
}

// NewRandom returns a random strategy with the given seed and a default
// stale-read bias of 0.4.
func NewRandom(seed int64) *RandomStrategy {
	return &RandomStrategy{rng: rand.New(rand.NewSource(seed)), staleBias: 0.4}
}

// NewRandomBiased returns a random strategy with an explicit stale-read
// bias in [0,1]: 0 always reads the latest message (SC-like per location),
// 1 picks uniformly among all visible messages.
func NewRandomBiased(seed int64, staleBias float64) *RandomStrategy {
	return &RandomStrategy{rng: rand.New(rand.NewSource(seed)), staleBias: staleBias}
}

// PickThread picks uniformly among the runnable threads.
func (s *RandomStrategy) PickThread(runnable []int) int {
	return s.rng.Intn(len(runnable))
}

// Choose picks a visible message: with probability staleBias uniformly
// among all n candidates, otherwise the latest (index n-1).
func (s *RandomStrategy) Choose(n int) int {
	if s.rng.Float64() < s.staleBias {
		return s.rng.Intn(n)
	}
	return n - 1
}

// Decision is one resolved nondeterministic choice: a thread pick or a
// read-message pick with N alternatives, of which Pick (0-based) was
// taken. An execution is a deterministic function of the program and its
// decision sequence, so a []Decision is a complete, serializable
// counterexample schedule: any harness (check, litmus, fuzz) can save the
// sequence and replay it byte-for-byte via ReplayStrategy.
type Decision struct {
	N    int `json:"n"` // number of alternatives at this decision point
	Pick int `json:"pick"`
}

// MarshalDecisions encodes a decision sequence as JSON.
func MarshalDecisions(ds []Decision) ([]byte, error) { return json.Marshal(ds) }

// UnmarshalDecisions decodes a decision sequence encoded by
// MarshalDecisions.
func UnmarshalDecisions(data []byte) ([]Decision, error) {
	var ds []Decision
	err := json.Unmarshal(data, &ds)
	return ds, err
}

// TraceStrategy replays an explicit decision sequence; decisions beyond
// the recorded prefix default to 0 (first runnable thread, oldest visible
// message). It also records every decision it makes, so a prefix can be
// extended — this is the engine of the exhaustive explorer.
type TraceStrategy struct {
	prefix []Decision
	pos    int
	// Trace is the full decision sequence of the current run.
	Trace []Decision
	// DefaultLast makes out-of-prefix read choices pick the latest message
	// instead of the oldest.
	DefaultLast bool
}

// ReplayStrategy returns a strategy that replays the given decision
// sequence exactly; decisions beyond it take the default branch (pick 0).
// The sequence is not aliased, so a saved artifact can be replayed many
// times.
func ReplayStrategy(ds []Decision) *TraceStrategy {
	prefix := make([]Decision, len(ds))
	copy(prefix, ds)
	return &TraceStrategy{prefix: prefix}
}

func (s *TraceStrategy) next(n int) int {
	pick := 0
	if s.pos < len(s.prefix) {
		pick = s.prefix[s.pos].Pick
		if pick >= n { // program changed shape under replay; clamp
			pick = n - 1
		}
	} else if s.DefaultLast {
		pick = n - 1
	}
	s.pos++
	s.Trace = append(s.Trace, Decision{N: n, Pick: pick})
	return pick
}

// PickThread replays or defaults the next scheduling decision.
func (s *TraceStrategy) PickThread(runnable []int) int { return s.next(len(runnable)) }

// Choose replays or defaults the next read choice.
func (s *TraceStrategy) Choose(n int) int { return s.next(n) }

// FreeDecisions reports whether the replay prefix is exhausted, i.e.
// subsequent decisions are free rather than pinned. The runner's dedup
// check fires only at free decisions (see Runner.Dedup).
func (s *TraceStrategy) FreeDecisions() bool { return s.pos >= len(s.prefix) }

// ExploreOpts bounds an exhaustive exploration.
type ExploreOpts struct {
	// MaxRuns caps the number of executions (default 200000).
	MaxRuns int
	// Budget caps steps per execution (default 100000).
	Budget int
	// MaxDepth caps the decision depth that is branched on; decisions
	// beyond it take the default branch only (0 = unlimited).
	MaxDepth int
	// Workers is the number of parallel exploration workers used by
	// ExploreParallel (default GOMAXPROCS; 1 = sequential). Explore
	// ignores it: a single shared build/visit pair cannot be run
	// concurrently.
	Workers int
	// Stats, when non-nil, receives exploration telemetry: one ExecDone
	// per visited execution plus prefix-tree counters (subtree claims,
	// children pushed, frontier high-water mark, early stops, depth
	// capping). The same Stats is threaded into every Runner for
	// step-level counters; it must therefore be safe for concurrent use,
	// which telemetry.Stats is.
	Stats *telemetry.Stats
	// Footprint, when non-nil, is installed into every execution's Runner
	// (see Runner.Footprint): certified locations skip race
	// instrumentation and read-window computation without changing any
	// outcome, so an exploration with a valid footprint visits the same
	// executions as one without.
	Footprint *memory.Footprint
	// Trace enables step-event recording in every execution's Runner (see
	// Runner.Trace): each visited Result carries its typed StepEvent
	// stream. Recording never changes decisions or outcomes; it exists for
	// consumers — like the refinement oracle — that cross-check the event
	// graph against the executed instruction stream.
	Trace bool
	// Resume, when non-nil, starts the exploration from a saved frontier
	// instead of the tree root: only the subtrees below the frontier's
	// pinned prefixes are explored. Together with PauseRuns this is the
	// checkpoint/resume mechanism — a paused exploration's remaining
	// frontier (ExploreResult.Frontier) fed back through Resume visits
	// exactly the leaves the uninterrupted run would have, regardless of
	// the worker count of either segment. The frontier is cloned, never
	// mutated.
	Resume *Frontier
	// PauseRuns, when > 0, pauses the exploration after at least that
	// many executions in this call: workers stop claiming new prefixes,
	// in-flight executions complete (and are visited and accounted), and
	// the remaining work is returned in ExploreResult.Frontier with
	// Paused set. A paused exploration is not an early stop: no subtree
	// is abandoned, it is merely deferred.
	PauseRuns int
	// POR selects the partial-order reduction mode applied in every
	// execution's Runner (see Runner.POR and PORMode): PORSleep shrinks
	// scheduling decisions to the threads whose next step is not known to
	// commute with everything since they were last considered; PORSource
	// further wakes sleepers only on dynamically observed conflicts and
	// prunes stale read-value branches via wakeup read floors, so whole
	// subtrees that replay explored equivalence classes are never
	// branched on. The set of reachable outcomes — and the meaning of
	// Complete as a bounded proof over them — is preserved; only Runs
	// shrinks. Composes with Footprint (which prunes per-access work, not
	// branches) and with ExploreParallel's subtree partitioning (the
	// reduced tree is still a deterministic function of the decision
	// prefix, so pinned prefixes replay it exactly).
	POR PORMode
	// Plan, when non-nil, is installed into every execution's Runner (see
	// Runner.Plan): under PORSource the static access-plan oracle refutes
	// spurious dynamic conflicts and forces plan-invisible steps, further
	// shrinking Runs at provably identical outcome sets. Ignored in the
	// other POR modes.
	Plan *memory.Plan
	// Dedup, when non-nil, is the shared visited set of canonical state
	// fingerprints installed into every execution's Runner (see
	// Runner.Dedup): runs reaching an already-claimed state are cut as
	// Deduped, shrinking Runs at provably identical outcome sets across
	// every POR mode. The same Dedup must be reused across the segments
	// of one paused/resumed exploration (serialize it with the frontier);
	// sharing it across unrelated explorations is unsound.
	Dedup *Dedup
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Runs     int
	Complete bool // true if the decision tree was exhausted within bounds
	// Paused is true when the exploration stopped with work remaining but
	// nothing abandoned: PauseRuns was reached or MaxRuns was hit while
	// the frontier still held subtrees. Frontier then carries the pending
	// prefixes for a later ExploreOpts.Resume. An early stop (a visit
	// returning false) is neither Complete nor Paused — its pruned
	// subtrees are deliberately unexplored and no frontier is returned.
	Paused   bool
	Frontier *Frontier
}

// Explore enumerates executions of the program depth-first over all
// scheduling and read-choice decisions, invoking visit for each completed
// execution. build must return a fresh Program (fresh closures and
// recorders) on every call. visit returning false stops the exploration.
//
// Exploration is exhaustive — and therefore a *proof* over the bounded
// program — when the returned result has Complete == true.
//
//compass:accounting
func Explore(build func() Program, opts ExploreOpts, visit func(*Result) bool) ExploreResult {
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 200000
	}
	runner := &Runner{Budget: opts.Budget, Trace: opts.Trace, Stats: opts.Stats, Footprint: opts.Footprint, POR: opts.POR, Plan: opts.Plan, Dedup: opts.Dedup}
	if opts.Plan != nil {
		opts.Stats.PlanSites(int64(opts.Plan.SiteCount()))
	}
	var prefix []Decision
	res := ExploreResult{}
	for res.Runs < maxRuns {
		opts.Stats.PrefixClaimed(len(prefix))
		strat := &TraceStrategy{prefix: prefix}
		r := runner.Run(build(), strat)
		res.Runs++
		opts.Stats.ExecDone(uint8(r.Status), r.Steps)
		if !visit(r) {
			opts.Stats.ExploreEarlyStop()
			return res
		}
		// Backtrack: find the deepest decision with an unexplored branch.
		trace := strat.Trace
		i := len(trace) - 1
		if opts.MaxDepth > 0 && i >= opts.MaxDepth {
			i = opts.MaxDepth - 1
			opts.Stats.ExploreDepthCapped()
		}
		for ; i >= 0; i-- {
			if trace[i].Pick+1 < trace[i].N {
				break
			}
		}
		if i < 0 {
			res.Complete = true
			return res
		}
		prefix = append(append([]Decision{}, trace[:i]...),
			Decision{N: trace[i].N, Pick: trace[i].Pick + 1})
	}
	return res
}

// ExploreParallel explores the decision tree like Explore, but with
// opts.Workers workers running disjoint subtrees concurrently.
//
// The tree is partitioned by prefix splitting: every completed execution
// enumerates the unexplored sibling branches along its own decision trace
// (each as an explicit pinned prefix) and pushes them onto a shared LIFO
// frontier; a pinned prefix is never backtracked into, so every leaf of
// the tree is executed exactly once and the total run count — and
// therefore the Complete verdict — is identical to the sequential
// explorer's. Complete is true only when the frontier drained with no
// worker stopped and the run bound unexhausted, i.e. exactly when the
// bounded program's executions were all explored.
//
// newWorker is invoked once per worker and must return a fresh
// (build, visit) pair; each pair is used serially by its own worker, so
// visit may safely accumulate into worker-local state, but pairs run
// concurrently with each other — shared state needs the caller's own
// synchronization. A visit returning false stops the whole exploration,
// though results already in flight on other workers are still visited.
//
// ExploreParallel is a sanctioned spawn point: its goroutines are harness
// workers above the simulator, each running whole executions through the
// lockstep scheduler, never simulated threads.
//
//compass:scheduler
func ExploreParallel(opts ExploreOpts, newWorker func() (build func() Program, visit func(*Result) bool)) ExploreResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 && opts.Resume == nil && opts.PauseRuns <= 0 {
		build, visit := newWorker()
		return Explore(build, opts, visit)
	}
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 200000
	}
	frontier := NewFrontier()
	if opts.Resume != nil {
		frontier = opts.Resume.Clone()
	}
	if opts.Plan != nil {
		opts.Stats.PlanSites(int64(opts.Plan.SiteCount()))
	}
	e := &parallelExplorer{opts: opts, maxRuns: maxRuns, frontier: frontier}
	e.cond = sync.NewCond(&e.mu)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			build, visit := newWorker()
			e.worker(build, visit)
		}()
	}
	wg.Wait()
	res := ExploreResult{Runs: e.runs}
	switch {
	case e.stopped:
		// Early stop: subtrees were deliberately abandoned; the frontier
		// is not a faithful remainder.
	case e.frontier.Empty():
		res.Complete = true
	default:
		res.Paused = true
		res.Frontier = e.frontier
	}
	return res
}

// parallelExplorer is the shared state of one ExploreParallel call.
type parallelExplorer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	frontier *Frontier // unexplored subtree prefixes (LIFO)
	inflight int       // workers currently running a prefix
	runs     int
	maxRuns  int
	stopped  bool // a visit returned false
	paused   bool // maxRuns or PauseRuns hit with work remaining
	opts     ExploreOpts
}

// next claims the deepest unexplored prefix, blocking while the frontier
// is empty but runs are still in flight (they may push new prefixes).
func (e *parallelExplorer) next() ([]Decision, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped || e.paused {
			return nil, false
		}
		if !e.frontier.Empty() {
			if e.runs >= e.maxRuns || (e.opts.PauseRuns > 0 && e.runs >= e.opts.PauseRuns) {
				e.paused = true
				return nil, false
			}
			prefix := e.frontier.pop()
			e.inflight++
			e.runs++
			e.opts.Stats.PrefixClaimed(len(prefix))
			return prefix, true
		}
		if e.inflight == 0 {
			return nil, false
		}
		e.cond.Wait()
	}
}

// done publishes the children of a completed run and wakes waiting workers.
func (e *parallelExplorer) done(children [][]Decision, keep bool) {
	e.mu.Lock()
	e.frontier.push(children)
	e.opts.Stats.ChildrenPushed(len(children), e.frontier.Len())
	e.inflight--
	if !keep {
		e.stopped = true
		e.opts.Stats.ExploreEarlyStop()
	}
	e.mu.Unlock()
	e.cond.Broadcast()
}

// worker drains the shared frontier, accounting for every execution it
// completes (one ExecDone per run, even past an early stop — the
// overshoot is what the exec-by-status counters deliberately include).
//
//compass:accounting
func (e *parallelExplorer) worker(build func() Program, visit func(*Result) bool) {
	runner := &Runner{Budget: e.opts.Budget, Trace: e.opts.Trace, Stats: e.opts.Stats, Footprint: e.opts.Footprint, POR: e.opts.POR, Plan: e.opts.Plan, Dedup: e.opts.Dedup}
	for {
		prefix, ok := e.next()
		if !ok {
			return
		}
		strat := &TraceStrategy{prefix: prefix}
		r := runner.Run(build(), strat)
		e.opts.Stats.ExecDone(uint8(r.Status), r.Steps)
		keep := visit(r)
		var children [][]Decision
		if keep {
			// Unexplored branches of this trace: for every decision at or
			// below the pinned prefix, each untaken pick becomes a new
			// pinned prefix. Pushed shallow-to-deep so the LIFO frontier
			// pops deepest-first, mirroring the sequential DFS order.
			trace := strat.Trace
			top := len(trace) - 1
			if e.opts.MaxDepth > 0 && top >= e.opts.MaxDepth {
				top = e.opts.MaxDepth - 1
				e.opts.Stats.ExploreDepthCapped()
			}
			for i := len(prefix); i <= top; i++ {
				for p := trace[i].Pick + 1; p < trace[i].N; p++ {
					child := make([]Decision, i+1)
					copy(child, trace[:i])
					child[i] = Decision{N: trace[i].N, Pick: p}
					children = append(children, child)
				}
			}
		}
		e.done(children, keep)
		if !keep {
			return
		}
	}
}

// Recorded wraps an arbitrary strategy and records every decision it
// resolves. A failing run under any strategy (e.g. a seeded RandomStrategy)
// can then be replayed byte-for-byte — and shrunk decision by decision —
// via ReplayStrategy(rec.Trace), independent of the original seed.
type Recorded struct {
	Inner Strategy
	// Trace is the decision sequence of the current run.
	Trace []Decision
}

// Record returns a recording wrapper around inner.
func Record(inner Strategy) *Recorded { return &Recorded{Inner: inner} }

// PickThread delegates to the inner strategy and records the decision.
func (s *Recorded) PickThread(runnable []int) int {
	p := s.Inner.PickThread(runnable)
	s.Trace = append(s.Trace, Decision{N: len(runnable), Pick: p})
	return p
}

// Choose delegates to the inner strategy and records the decision.
func (s *Recorded) Choose(n int) int {
	p := s.Inner.Choose(n)
	s.Trace = append(s.Trace, Decision{N: n, Pick: p})
	return p
}

// RunRandomOpt executes the program n times with seeds seed, seed+1, ...,
// invoking visit for each result, and returns the number of executions
// that completed with status OK. The runner is built exactly as the
// explorers build theirs — Budget, Trace, Stats, Footprint, and POR all
// taken from opts — and every execution is accounted with one ExecDone,
// so telemetry totals equal what visit observed. MaxRuns, MaxDepth,
// Workers, Resume, and PauseRuns are exploration-tree concepts and are
// ignored: random sampling has no decision tree.
//
//compass:accounting
func RunRandomOpt(build func() Program, n int, seed int64, opts ExploreOpts, visit func(*Result) bool) int {
	runner := &Runner{Budget: opts.Budget, Trace: opts.Trace, Stats: opts.Stats, Footprint: opts.Footprint, POR: opts.POR, Plan: opts.Plan, Dedup: opts.Dedup}
	ok := 0
	for i := 0; i < n; i++ {
		r := runner.Run(build(), NewRandom(seed+int64(i)))
		opts.Stats.ExecDone(uint8(r.Status), r.Steps)
		if r.Status == OK {
			ok++
		}
		if !visit(r) {
			break
		}
	}
	return ok
}

// RunRandom executes the program n times with seeds seed, seed+1, ...,
// invoking visit for each result.
//
// Deprecated: use RunRandomOpt. This wrapper used to construct a bare
// Runner with no Stats/Footprint/POR plumbing and recorded no ExecDone,
// silently diverging from the accounted paths; it now delegates to
// RunRandomOpt with only the budget set, preserving its historical
// behaviour (no telemetry) without a second runner-construction site.
func RunRandom(build func() Program, n int, seed int64, budget int, visit func(*Result) bool) int {
	return RunRandomOpt(build, n, seed, ExploreOpts{Budget: budget}, visit)
}
