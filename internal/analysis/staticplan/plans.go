package staticplan

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"

	"compass/internal/memory"
)

// plansJSON is the committed plan fixture: the canonical JSON rendering
// of ExtractAll over the repository's suites. `make plan` (or
// `go test ./internal/analysis/staticplan -run TestPlansFresh -update`)
// regenerates it; the planstale lint pass and TestPlansFresh fail when
// it drifts from the sources.
//
//go:embed testdata/plans.json
var plansJSON []byte

var plansOnce sync.Once
var plansVal map[string]*memory.Plan
var plansErr error

// Plans returns the committed plan fixture, keyed by suite entry name
// (litmus test names like "MP+rel+acq", library workload names like
// "lib/msqueue"). The fixture is the canonical output of ExtractAll over
// the plan-suite functions of internal/litmus.
//
//compass:plan-fixture testdata/plans.json
//compass:plan-module
func Plans() (map[string]*memory.Plan, error) {
	plansOnce.Do(func() {
		plansErr = json.Unmarshal(plansJSON, &plansVal)
		if plansErr != nil {
			plansErr = fmt.Errorf("staticplan: decoding embedded plan fixture: %w", plansErr)
		}
	})
	return plansVal, plansErr
}

// PlanFor returns the committed plan for one suite entry, or nil when
// the fixture has none (callers treat nil as "no static knowledge").
func PlanFor(name string) *memory.Plan {
	plans, err := Plans()
	if err != nil {
		return nil
	}
	return plans[name]
}

// Marshal renders a plan set canonically: sorted keys, two-space
// indentation, trailing newline. Fixture comparison is byte equality of
// this rendering.
func Marshal(plans map[string]*memory.Plan) ([]byte, error) {
	b, err := json.MarshalIndent(plans, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
