package telemetry

import (
	"fmt"
	"io"
	"time"
)

// StartProgress emits line() to w every interval until the returned stop
// function is called (stop flushes one final line and waits for the
// reporter goroutine to exit). Long exhaustive explorations and fuzz
// campaigns use it for liveness: the line closure reads atomic Stats
// counters, so it is safe to call concurrently with the workers.
//
// A nil writer or non-positive interval disables reporting; the returned
// stop is then a no-op.
func StartProgress(w io.Writer, interval time.Duration, line func() string) (stop func()) {
	if w == nil || interval <= 0 || line == nil {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, line())
			case <-done:
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-exited
		fmt.Fprintln(w, line())
	}
}

// Rate formats n events over elapsed as "N/s" with sub-second elapsed
// clamped so early progress lines do not print absurd rates.
func Rate(n int64, elapsed time.Duration) string {
	if elapsed < time.Millisecond {
		elapsed = time.Millisecond
	}
	return fmt.Sprintf("%.0f/s", float64(n)/elapsed.Seconds())
}
