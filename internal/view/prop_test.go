package view

import (
	"math/rand"
	"testing"
)

// refView is the map-based reference model the slice-backed View is
// checked against: the representation the package used before the dense
// vector-clock encoding.
type refView map[Loc]Time

func (r refView) Get(l Loc) Time { return r[l] }

func (r refView) Set(l Loc, t Time) {
	if t > r[l] {
		r[l] = t
	}
}

func (r refView) Clone() refView {
	c := make(refView, len(r))
	for l, t := range r {
		c[l] = t
	}
	return c
}

func (r refView) JoinInto(o refView) {
	for l, t := range o {
		if t > r[l] {
			r[l] = t
		}
	}
}

func (r refView) Leq(o refView) bool {
	for l, t := range r {
		if t > o[l] {
			return false
		}
	}
	return true
}

func (r refView) Len() int {
	n := 0
	for _, t := range r {
		if t != 0 {
			n++
		}
	}
	return n
}

const propLocs = 12 // dense location space exercised by the generators

// agree asserts the View and its reference model record exactly the same
// observations.
func agree(t *testing.T, step string, v View, r refView) {
	t.Helper()
	for l := Loc(0); l < propLocs+2; l++ {
		if v.Get(l) != r.Get(l) {
			t.Fatalf("%s: location l%d: View has %d, reference has %d (view %v)",
				step, l, v.Get(l), r.Get(l), v)
		}
	}
	if v.Len() != r.Len() {
		t.Fatalf("%s: Len: View %d, reference %d", step, v.Len(), r.Len())
	}
}

// randPair generates a random (View, refView) pair recording the same
// observations.
func randPair(rng *rand.Rand) (View, refView) {
	v, r := New(), refView{}
	for n := rng.Intn(propLocs); n > 0; n-- {
		l, t := Loc(rng.Intn(propLocs)), Time(rng.Intn(6))
		v.Set(l, t)
		r.Set(l, t)
	}
	return v, r
}

// TestViewMatchesReferenceModel drives random op sequences through the
// slice-backed View and the map-based model in lockstep.
func TestViewMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		v, r := New(), refView{}
		for step := 0; step < 40; step++ {
			switch rng.Intn(4) {
			case 0: // Set
				l, tm := Loc(rng.Intn(propLocs)), Time(rng.Intn(6))
				v.Set(l, tm)
				r.Set(l, tm)
			case 1: // JoinInto a random other view
				o, or := randPair(rng)
				v.JoinInto(o)
				r.JoinInto(or)
			case 2: // Clone both; mutate the clone; original must not move
				c, cr := v.Clone(), r.Clone()
				l, tm := Loc(rng.Intn(propLocs)), Time(1+rng.Intn(6))
				c.Set(l, tm)
				cr.Set(l, tm)
				agree(t, "clone", c, cr)
			case 3: // Join is fresh and leaves operands untouched
				o, or := randPair(rng)
				j := v.Join(o)
				jr := r.Clone()
				jr.JoinInto(or)
				agree(t, "join", j, jr)
				agree(t, "join operand", o, or)
			}
			agree(t, "step", v, r)
		}
	}
}

// TestViewLeqMatchesReference checks the partial order against the model
// on random pairs, including pairs built to be comparable.
func TestViewLeqMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		a, ar := randPair(rng)
		b, br := randPair(rng)
		if got, want := a.Leq(b), ar.Leq(br); got != want {
			t.Fatalf("Leq(%v, %v) = %v, reference says %v", a, b, got, want)
		}
		// A view is always below its join with anything.
		j := a.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			t.Fatalf("operand not below join: %v, %v vs %v", a, b, j)
		}
	}
}

// TestViewLatticeLaws checks the join-semilattice laws on random views:
// idempotence, commutativity, associativity, identity, and the
// characterization a ⊑ b ⇔ a ⊔ b = b.
func TestViewLatticeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		a, _ := randPair(rng)
		b, _ := randPair(rng)
		c, _ := randPair(rng)
		if !a.Join(a).Equal(a) {
			t.Fatalf("idempotence: %v", a)
		}
		if !a.Join(b).Equal(b.Join(a)) {
			t.Fatalf("commutativity: %v, %v", a, b)
		}
		if !a.Join(b).Join(c).Equal(a.Join(b.Join(c))) {
			t.Fatalf("associativity: %v, %v, %v", a, b, c)
		}
		if !a.Join(New()).Equal(a) {
			t.Fatalf("bottom identity: %v", a)
		}
		if a.Leq(b) != a.Join(b).Equal(b) {
			t.Fatalf("order/join characterization: %v, %v", a, b)
		}
	}
}

// TestViewCloneIndependent pins the ownership contract: a clone never
// shares storage with its origin, in either mutation direction.
func TestViewCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		v, r := randPair(rng)
		c := v.Clone()
		v.Set(Loc(rng.Intn(propLocs)), Time(1+rng.Intn(9)))
		agree(t, "clone after origin mutation", c, r)
		v2, r2 := randPair(rng)
		c2 := v2.Clone()
		c2.Set(Loc(rng.Intn(propLocs)), Time(1+rng.Intn(9)))
		agree(t, "origin after clone mutation", v2, r2)
	}
}

// TestViewZeroTailSemantics pins the invariants of the dense encoding:
// trailing zero storage is invisible to Get/Len/Leq/Equal/String.
func TestViewZeroTailSemantics(t *testing.T) {
	a := View{ts: []Time{0, 0, 5}}
	bWide := View{ts: []Time{0, 0, 5, 0, 0, 0}} // same observations, wider storage
	if !a.Equal(bWide) || !bWide.Equal(a) {
		t.Fatalf("trailing zeros broke Equal: %v vs %v", a, bWide)
	}
	if got := bWide.String(); got != "{l2@5}" {
		t.Fatalf("String leaked zero entries: %q", got)
	}
	if !a.Leq(bWide) || !bWide.Leq(a) {
		t.Fatalf("trailing zeros broke Leq")
	}
	if a.Len() != 1 || bWide.Len() != 1 {
		t.Fatalf("Len counted zero entries: %d, %d", a.Len(), bWide.Len())
	}
	var zero View
	if zero.Get(3) != 0 || zero.Len() != 0 || !zero.Leq(a) {
		t.Fatalf("zero view misbehaves")
	}
	if a.Get(100) != 0 {
		t.Fatalf("out-of-span Get should be 0")
	}
	// Set of timestamp 0 beyond the span must not allocate a span.
	var z View
	z.Set(50, 0)
	if z.Width() != 0 {
		t.Fatalf("Set(l, 0) widened an empty view to %d", z.Width())
	}
}
