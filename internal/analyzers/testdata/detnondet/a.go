// Package detnondet is the golden corpus for the detnondet analyzer:
// each `// want` line must be flagged, everything else must stay silent.
package detnondet

import (
	"math/rand"
	"sort"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want `call to time.Now: wall-clock reads`
	time.Sleep(0)            // ok: does not read the clock
	return time.Since(start) // want `call to time.Since: wall-clock reads`
}

func globalRand() int {
	n := rand.Intn(4)                  // want `global math/rand Intn: the process-global stream breaks replay`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand Shuffle`
	return n
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: explicitly seeded
	return rng.Intn(4)                    // ok: method on the seeded generator
}

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `iteration over map: order is nondeterministic`
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// mapSum folds a commutative operation over the map, so visit order
// cannot be observed.
//
//compass:orderinsensitive
func mapSum(m map[int]int) int {
	total := 0
	for _, v := range m { // ok: function is marked order-insensitive
		total += v
	}
	return total
}

func spawn(done chan struct{}) {
	go func() { close(done) }() // want `goroutine spawned outside the scheduler`
}

// schedule is the sanctioned spawn point standing in for the lockstep
// scheduler.
//
//compass:scheduler
func schedule(done chan struct{}) {
	go func() { close(done) }() // ok: the scheduler itself
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // ok: slice iteration is ordered
		total += v
	}
	return total
}
