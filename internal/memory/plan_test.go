package memory

import (
	"encoding/json"
	"testing"
)

func TestThreadPlanMaySet(t *testing.T) {
	var tp ThreadPlan
	tp.AddSite("x", SiteUse{Kinds: PlanRead, ReadModes: ModeBit(Acq)})
	tp.AddSite("x", SiteUse{Kinds: PlanWrite, WriteModes: ModeBit(Rel)})
	tp.AddSite("y", SiteUse{Kinds: PlanAlloc})

	if !tp.MayTouch("x", PlanRead) || !tp.MayTouch("x", PlanWrite) {
		t.Error("merged x use lost a kind")
	}
	if tp.MayTouch("x", PlanFree) || tp.MayTouch("z", PlanRead) {
		t.Error("MayTouch over-reports")
	}
	if u := tp.Sites["x"]; !u.ReadModes.Has(Acq) || !u.WriteModes.Has(Rel) || u.ReadModes.Has(NA) {
		t.Errorf("merged modes = r:%s w:%s", u.ReadModes, u.WriteModes)
	}
	if tp.UsesNA() {
		t.Error("UsesNA without any NA mode")
	}
	if !tp.Allocates() {
		t.Error("PlanAlloc site not reported by Allocates")
	}
	tp.AddSite("x", SiteUse{Kinds: PlanRead, ReadModes: ModeBit(NA)})
	if !tp.UsesNA() {
		t.Error("NA mode not reported by UsesNA")
	}
}

func TestTopAndOutOfRangeThreads(t *testing.T) {
	top := ThreadPlan{Top: true, TopReason: "because"}
	if !top.MayTouch("anything", PlanFree) || !top.UsesNA() || !top.Allocates() {
		t.Error("⊤ thread must over-approximate everything")
	}
	p := &Plan{Program: "p", Threads: []ThreadPlan{{}}}
	if !p.MayTouch(7, "x", PlanRead) {
		t.Error("out-of-range thread must answer like ⊤")
	}
	if p.MayTouch(0, "x", PlanRead) {
		t.Error("empty in-range thread has no sites and must answer false")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{Program: "p", Threads: make([]ThreadPlan, 2)}
	p.Threads[1].AddSite("x", SiteUse{Kinds: PlanRead | PlanWrite, ReadModes: ModeBit(Rlx), WriteModes: ModeBit(Rel)})
	p.Threads[0].Top = true
	p.Threads[0].TopReason = "r"
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if q.Program != "p" || len(q.Threads) != 2 || !q.Threads[0].Top ||
		q.Threads[1].Sites["x"] != p.Threads[1].Sites["x"] {
		t.Errorf("round trip lost data: %v", q.String())
	}
	if p.SiteCount() != 1 {
		t.Errorf("SiteCount = %d, want 1", p.SiteCount())
	}
}

// planMem allocates x (loc 0) and y (loc 1) so the oracle can resolve
// names.
func planMem() *Memory {
	m := New()
	tv := NewThreadView(0)
	m.Alloc(tv, "x", 0)
	m.Alloc(tv, "y", 0)
	return m
}

func TestOracleMayConflict(t *testing.T) {
	p := &Plan{Program: "p", Threads: make([]ThreadPlan, 2)}
	p.Threads[1].AddSite("x", SiteUse{Kinds: PlanRead, ReadModes: ModeBit(Rlx)})
	o := NewPlanOracle(p, planMem())

	rdX := Access{Kind: AccRead, Loc: 0}
	wrX := Access{Kind: AccWrite, Loc: 0}
	wrY := Access{Kind: AccWrite, Loc: 1}
	// Thread 1 only reads x: a pending read of x cannot conflict with it,
	// a pending write of x can (read-write), a write of y cannot.
	if o.MayConflict(1, rdX) {
		t.Error("read-read on x reported as possible conflict")
	}
	if !o.MayConflict(1, wrX) {
		t.Error("planned read of x must conflict with a pending write")
	}
	if o.MayConflict(1, wrY) {
		t.Error("thread 1 never touches y")
	}
	// Fences and other non-location kinds are conservatively conflicting.
	if !o.MayConflict(1, Access{Kind: AccFence}) {
		t.Error("fence must stay conservatively conflicting")
	}
	// Thread 0 has an empty may-set: nothing conflicts.
	if o.MayConflict(0, wrX) {
		t.Error("empty thread plan must refute the conflict")
	}
	// Out-of-range threads are ⊤.
	if !o.MayConflict(5, wrX) {
		t.Error("out-of-range thread must stay conflicting")
	}
	// A nil oracle (no plan) never refutes.
	var nilO *PlanOracle
	if !nilO.MayConflict(0, rdX) {
		t.Error("nil oracle must answer conservatively")
	}
}

func TestOracleRefutes(t *testing.T) {
	o := NewPlanOracle(&Plan{Program: "p"}, planMem())
	alloc := Access{Kind: AccAlloc, Loc: 1}
	rd0 := Access{Kind: AccRead, Loc: 0}
	wr0 := Access{Kind: AccWrite, Loc: 0}
	free0 := Access{Kind: AccFree, Loc: 0}
	free1 := Access{Kind: AccFree, Loc: 1}
	fence := Access{Kind: AccFence}

	// The refutations are plan-content-independent: an allocation commutes
	// with any concrete access, and frees commute with concrete accesses
	// of other locations.
	if !o.Refutes(alloc, rd0) || !o.Refutes(wr0, alloc) {
		t.Error("alloc vs concrete access not refuted")
	}
	if !o.Refutes(free1, rd0) || !o.Refutes(free0, free1) {
		t.Error("free vs other-location access not refuted")
	}
	if o.Refutes(free0, rd0) {
		t.Error("free vs same-location access wrongly refuted")
	}
	if o.Refutes(alloc, fence) || o.Refutes(fence, free0) {
		t.Error("fences must never be refuted")
	}
	if o.Refutes(rd0, wr0) {
		t.Error("genuine read-write conflict refuted")
	}
	var nilO *PlanOracle
	if nilO.Refutes(alloc, rd0) {
		t.Error("nil oracle must not refute")
	}
}
