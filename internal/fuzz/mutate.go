package fuzz

import (
	"sort"

	"compass/internal/deque"
	"compass/internal/exchanger"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/stack"
)

// libInfo is the static registry entry for one library under test: the
// mutants that can be injected into it, and whether the SC oracle may keep
// read-only (failing) operations. Strict oracles are only sound for
// libraries proven at LAT_hb^hist — the Treiber and elimination stacks;
// the queues and the deque legally admit stale emptiness, so their oracles
// drop failing operations before the linearizability search.
type libInfo struct {
	mutants      []string
	strictOracle bool
}

// libs registers the libraries the fuzzer can target. "none" generates
// raw-access-only programs that differentially test the machine itself.
var libs = map[string]libInfo{
	"none":      {},
	"msqueue":   {mutants: []string{"relaxed-link", "relaxed-read", "blind-empty"}},
	"hwqueue":   {mutants: []string{"relaxed-slot", "relaxed-scan"}},
	"treiber":   {mutants: []string{"relaxed-push", "relaxed-pop", "blind-emppop"}, strictOracle: true},
	"elimstack": {strictOracle: true},
	"exchanger": {mutants: []string{"relaxed-offer", "relaxed-response"}},
	"deque":     {mutants: []string{"no-sc-fence"}},
}

// Libs returns the registered library names, sorted.
func Libs() []string {
	out := make([]string, 0, len(libs))
	for name := range libs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MutantsOf returns the injectable known-bug mutations for a library; the
// empty string (no mutation) is always legal and not listed.
func MutantsOf(lib string) []string {
	return append([]string(nil), libs[lib].mutants...)
}

// The per-library constructors dispatch on the mutant name. An unknown
// mutant cannot reach these: Validate rejects it first.

func newMSQueue(th *machine.Thread, mutant string) *queue.MSQueue {
	switch mutant {
	case "relaxed-link":
		return queue.NewMSBuggyRelaxedLink(th, "q")
	case "relaxed-read":
		return queue.NewMSBuggyRelaxedRead(th, "q")
	case "blind-empty":
		// Spec-encoding weakening (blinded EmpDeq views): invisible to the
		// view-quantified predicates, killed by the refinement oracle's po
		// floor.
		return queue.NewMSBlindEmpty(th, "q")
	}
	return queue.NewMS(th, "q")
}

func newHWQueue(th *machine.Thread, mutant string, cap int) *queue.HWQueue {
	switch mutant {
	case "relaxed-slot":
		return queue.NewHWBuggyRelaxedSlot(th, "q", cap)
	case "relaxed-scan":
		return queue.NewHWBuggyRelaxedScan(th, "q", cap)
	}
	return queue.NewHW(th, "q", cap)
}

func newTreiber(th *machine.Thread, mutant string) *stack.Treiber {
	switch mutant {
	case "relaxed-push":
		return stack.NewTreiberBuggyRelaxedPush(th, "s")
	case "relaxed-pop":
		return stack.NewTreiberBuggyRelaxedPop(th, "s")
	case "blind-emppop":
		// Spec-encoding weakening (blinded EmpPop views): the stack analog
		// of the queue's blind-empty, likewise refine-only.
		return stack.NewTreiberBlindEmpPop(th, "s")
	}
	return stack.NewTreiber(th, "s")
}

func newExchanger(th *machine.Thread, mutant string) *exchanger.Exchanger {
	switch mutant {
	case "relaxed-offer":
		return exchanger.NewBuggyRelaxedOffer(th, "x")
	case "relaxed-response":
		return exchanger.NewBuggyRelaxedResponse(th, "x")
	}
	return exchanger.New(th, "x")
}

func newDeque(th *machine.Thread, mutant string, cap int) *deque.Deque {
	if mutant == "no-sc-fence" {
		return deque.NewBuggyNoSCFence(th, "d", cap)
	}
	return deque.New(th, "d", cap)
}
