package memory

import (
	"errors"
	"testing"

	"compass/internal/view"
)

// setupMem allocates n locations from a fresh memory via thread 0,
// returning the memory and the allocating thread's view.
func setupMem(n int) (*Memory, *ThreadView, []view.Loc) {
	m := New()
	tv := NewThreadView(0)
	locs := make([]view.Loc, n)
	for i := range locs {
		locs[i] = m.Alloc(tv, "l", 0)
	}
	return m, tv, locs
}

func TestSealSetupValidatesAllocCount(t *testing.T) {
	m, _, _ := setupMem(2)
	m.Certify(&Footprint{Name: "t", SetupLocs: 3, Locs: make([]LocCert, 3)})
	var ce *CertError
	if err := m.SealSetup(); !errors.As(err, &ce) {
		t.Fatalf("SealSetup = %v, want CertError on alloc-count mismatch", err)
	}
}

func TestSealSetupValidatesSetupHistory(t *testing.T) {
	m, tv, locs := setupMem(1)
	if err := m.Write(tv, locs[0], 1, NA); err != nil {
		t.Fatal(err)
	}
	// Certificate recorded only the allocation (t=1), but setup wrote again.
	m.Certify(&Footprint{Name: "t", SetupLocs: 1,
		Locs: []LocCert{{Class: ClassReadOnly, SetupMax: 1}}})
	var ce *CertError
	if err := m.SealSetup(); !errors.As(err, &ce) {
		t.Fatalf("SealSetup = %v, want CertError on setup-history mismatch", err)
	}
}

func TestSealSetupNilFootprintIsNoop(t *testing.T) {
	m, _, _ := setupMem(1)
	if err := m.SealSetup(); err != nil {
		t.Fatalf("SealSetup without certificate = %v, want nil", err)
	}
	if m.PrunedReads() != 0 || m.RaceChecksSkipped() != 0 {
		t.Fatal("counters moved without a certificate")
	}
}

func TestCertifiedFastPathsCountAndMatchGeneralPath(t *testing.T) {
	run := func(fp *Footprint) (int64, int64, int64) {
		m, tv, locs := setupMem(2)
		if fp != nil {
			m.Certify(fp)
		}
		if err := m.SealSetup(); err != nil {
			t.Fatal(err)
		}
		// Owner thread 0 exercises the exclusive location; everyone may
		// read the read-only one.
		if err := m.Write(tv, locs[0], 41, NA); err != nil {
			t.Fatal(err)
		}
		v1, err := m.Read(tv, locs[0], NA, nil)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := m.Read(tv, locs[1], Acq, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v1 + v2, m.PrunedReads(), m.RaceChecksSkipped()
	}
	fp := &Footprint{Name: "t", SetupLocs: 2, Locs: []LocCert{
		{Class: ClassExclusive, Owner: 0, SetupMax: 1},
		{Class: ClassReadOnly, SetupMax: 1},
	}}
	plainSum, p0, r0 := run(nil)
	certSum, p1, r1 := run(fp)
	if plainSum != certSum {
		t.Errorf("certified values %d differ from general path %d", certSum, plainSum)
	}
	if p0 != 0 || r0 != 0 {
		t.Errorf("uncertified run counted pruning: %d/%d", p0, r0)
	}
	if p1 != 1 {
		t.Errorf("pruned reads = %d, want 1 (the acquire read of the read-only loc)", p1)
	}
	if r1 != 2 {
		t.Errorf("race checks skipped = %d, want 2 (na write + na read of the exclusive loc)", r1)
	}
}

func TestCertifiedViolationsReturnCertError(t *testing.T) {
	newSealed := func() (*Memory, []view.Loc) {
		m, _, locs := setupMem(2)
		m.Certify(&Footprint{Name: "t", SetupLocs: 2, Locs: []LocCert{
			{Class: ClassExclusive, Owner: 1, SetupMax: 1},
			{Class: ClassReadOnly, SetupMax: 1},
		}})
		if err := m.SealSetup(); err != nil {
			t.Fatal(err)
		}
		return m, locs
	}
	var ce *CertError

	m, locs := newSealed()
	intruder := NewThreadView(2)
	intruder.Cur.V.Set(locs[0], 1) // synced view; only identity is wrong
	if _, err := m.Read(intruder, locs[0], Rlx, nil); !errors.As(err, &ce) {
		t.Errorf("non-owner read = %v, want CertError", err)
	}
	if err := m.Write(intruder, locs[1], 9, Rlx); !errors.As(err, &ce) {
		t.Errorf("write to read-only loc = %v, want CertError", err)
	}
	if err := m.Free(intruder, locs[1]); !errors.As(err, &ce) {
		t.Errorf("free of read-only loc = %v, want CertError", err)
	}

	// RMWs validate as writes and panic (no error channel).
	m, locs = newSealed()
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Error("rmw on read-only loc did not panic")
			} else if _, ok := p.(*CertError); !ok {
				t.Errorf("rmw panic = %v, want *CertError", p)
			}
		}()
		owner := NewThreadView(1)
		owner.Cur.V.Set(locs[1], 1)
		m.FetchAdd(owner, locs[1], 1, Rlx, Rlx)
	}()

	// An unsynchronized owner view means the recording under-covered the
	// program: saturation validation must catch it.
	m, locs = newSealed()
	staleOwner := NewThreadView(1) // never observed the initializing write
	if _, err := m.Read(staleOwner, locs[0], Rlx, nil); !errors.As(err, &ce) {
		t.Errorf("unsaturated owner read = %v, want CertError", err)
	}
}

func TestAllAtomicRejectsNAAfterSeal(t *testing.T) {
	m, tv, locs := setupMem(1)
	m.Certify(&Footprint{Name: "t", SetupLocs: 1,
		Locs: []LocCert{{Class: ClassShared}}, AllAtomic: true})
	if err := m.SealSetup(); err != nil {
		t.Fatal(err)
	}
	var ce *CertError
	if _, err := m.Read(tv, locs[0], NA, nil); !errors.As(err, &ce) {
		t.Errorf("na read under all-atomic certificate = %v, want CertError", err)
	}
	if err := m.Write(tv, locs[0], 1, NA); !errors.As(err, &ce) {
		t.Errorf("na write under all-atomic certificate = %v, want CertError", err)
	}
	if _, err := m.Read(tv, locs[0], Rlx, nil); err != nil {
		t.Errorf("rlx read under all-atomic certificate = %v, want nil", err)
	}
}
