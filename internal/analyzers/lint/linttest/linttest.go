// Package linttest checks analyzers against golden testdata packages
// using the x/tools analysistest convention: a `// want "regex"` comment
// on a source line declares that the analyzer must report a diagnostic
// on that line matching the regex, and any diagnostic without a matching
// want comment is an error. Multiple expectations stack as
// `// want "a" "b"`.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"compass/internal/analyzers/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// Loader returns a process-wide shared loader rooted in the current
// directory's module; sharing it across tests amortizes the export-data
// listing.
func Loader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = lint.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("linttest: creating loader: %v", loaderErr)
	}
	return loader
}

// Run loads the golden package in dir, applies the analyzer, and fails
// the test on any mismatch between reported diagnostics and `// want`
// expectations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := Loader(t).LoadDir(dir)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	diags, err := lint.Run(a, pkg)
	if err != nil {
		t.Fatalf("linttest: running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	want := make(map[key][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("linttest: %s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					want[k] = append(want[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		var matched bool
		for _, exp := range want[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for k, exps := range want {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", a.Name, k.file, k.line, exp.re)
			}
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..." "..."`
// comment; ok is false for ordinary comments.
func parseWant(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var patterns []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			return nil, false
		}
		patterns = append(patterns, lit)
		rest = remainder
	}
	if len(patterns) == 0 {
		return nil, false
	}
	return patterns, true
}

// cutStringLit splits one leading Go string literal (double- or
// back-quoted) off s.
func cutStringLit(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				unq, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return unq, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	default:
		return "", "", fmt.Errorf("expected string literal")
	}
}
