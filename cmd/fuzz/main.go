// Command fuzz is the differential-fuzzing front end: it generates random
// client programs over the library APIs plus raw atomic accesses, explores
// them under seeded-random and bounded-exhaustive scheduling, and
// cross-checks every execution against the library's COMPASS spec, the SC
// reference oracle, and the machine's own race/coherence invariants. A
// failing execution is delta-debugged to a minimal program + schedule and
// written out as a replayable artifact bundle.
//
//	go run ./cmd/fuzz -duration 10s                         # sweep all libs
//	go run ./cmd/fuzz -lib deque -seed 7 -programs 100
//	go run ./cmd/fuzz -lib treiber -mutate relaxed-push -expect-failure
//	go run ./cmd/fuzz -lib msqueue -mutate relaxed-link -artifact-dir out/
//
// Exit status: 0 when the outcome matches expectation (no failures, or a
// failure found under -expect-failure), 1 otherwise, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"compass/internal/cli"
	"compass/internal/fuzz"
	"compass/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "campaign seed (generation and scheduling both derive from it)")
		duration    = flag.Duration("duration", 0, "wall-clock bound (0 = bounded by -programs)")
		programs    = flag.Int("programs", 0, "number of generated programs (default 50, unlimited with -duration)")
		execs       = flag.Int("execs", 200, "seeded-random executions per program")
		exhaustive  = flag.Int("exhaustive", 300, "bounded-exhaustive executions per program (0 = off)")
		budget      = flag.Int("budget", 50000, "machine steps per execution")
		stale       = flag.Float64("stale", 0.6, "stale-read bias of the random scheduler")
		lib         = flag.String("lib", "", "pin generation to one library (default: all)")
		mutate      = flag.String("mutate", "", "inject a known spec violation (requires -lib; see -list)")
		maxFailures = flag.Int("max-failures", 1, "stop after this many distinct failure classes")
		noShrink    = flag.Bool("no-shrink", false, "skip counterexample minimization")
		refine      = flag.Bool("refine", true, "cross-check every execution with the refinement/simulation oracle")
		artifactDir = flag.String("artifact-dir", "", "write replayable artifact bundles here")
		expectFail  = flag.Bool("expect-failure", false, "invert the verdict: exit 0 only if a failure is found")
		expectOrcl  = flag.String("expect-oracle", "", "with -expect-failure: require this oracle (machine|spec|oracle|refine) among those that fired")
		list        = flag.Bool("list", false, "list libraries and their mutants")
		quiet       = flag.Bool("q", false, "suppress progress output")
		statsOut    = flag.String("stats", "", "write a telemetry JSON snapshot of the campaign to this file")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace of a representative execution to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		progress    = flag.Duration("progress", 5*time.Second, "interval between campaign progress lines (0 = off)")
	)
	flag.Parse()
	cli.StartPprof(*pprofAddr)

	if *list {
		for _, l := range fuzz.Libs() {
			muts := fuzz.MutantsOf(l)
			if len(muts) == 0 {
				fmt.Println(l)
			} else {
				fmt.Printf("%s (mutants: %s)\n", l, strings.Join(muts, ", "))
			}
		}
		return
	}
	cfg := fuzz.Config{
		Seed:           *seed,
		Duration:       *duration,
		Programs:       *programs,
		Execs:          *execs,
		ExhaustiveRuns: *exhaustive,
		Budget:         *budget,
		StaleBias:      cli.FlagStaleBias(*stale),
		MaxFailures:    *maxFailures,
		NoShrink:       *noShrink,
		NoRefine:       !*refine,
		ArtifactDir:    *artifactDir,
	}
	if *expectOrcl != "" && !*expectFail {
		fmt.Fprintln(os.Stderr, "fuzz: -expect-oracle requires -expect-failure")
		os.Exit(2)
	}
	if *statsOut != "" || *traceOut != "" {
		cfg.Stats = telemetry.New()
	}
	if !*quiet {
		cfg.Log = os.Stderr
		if *progress > 0 {
			cfg.Progress = os.Stderr
			cfg.ProgressEvery = *progress
		}
	}
	if *lib != "" {
		cfg.Gen.Libs = []string{*lib}
	}
	if *mutate != "" {
		if *lib == "" {
			fmt.Fprintln(os.Stderr, "fuzz: -mutate requires -lib")
			os.Exit(2)
		}
		cfg.Gen.Mutant = *mutate
		// Mutation campaigns hunt a known bug: bias generation toward
		// library traffic so the injected violation gets exercised.
		cfg.Gen.LibBias = 0.9
		cfg.Gen.MaxOpsPerThread = 6
	}

	start := time.Now()
	rep, err := fuzz.Fuzz(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("fuzz: %d programs, %d executions (%d discarded), %d unknown verdicts, %d failure classes in %v\n",
		rep.Programs, rep.Execs, rep.Discarded, rep.Unknown, len(rep.Failures), time.Since(start).Round(time.Millisecond))
	if *statsOut != "" {
		if err := cli.WriteStatsFile(*statsOut, cfg.Stats); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: stats: %v\n", err)
			os.Exit(2)
		}
	}
	if *traceOut != "" {
		res, name, err := fuzz.TraceExecution(cfg, rep)
		if err == nil {
			err = cli.WriteTraceFile(*traceOut, name, res)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: trace-out: %v\n", err)
			os.Exit(2)
		}
	}
	for i, f := range rep.Failures {
		fmt.Printf("failure %d: %s on %s", i+1, f.Key, f.Program.Lib)
		if f.Program.Mutant != "" {
			fmt.Printf(" (mutant %s)", f.Program.Mutant)
		}
		fmt.Printf(" — oracle %s, %d threads, %d ops, %d decisions\n",
			f.Oracle, f.Program.NumThreads(), f.Program.NumOps(), len(f.Decisions))
		if f.Disagreement != "" {
			fmt.Printf("  spec/refine disagreement: %s\n", f.Disagreement)
		}
		for _, v := range f.Violations {
			fmt.Printf("  %s\n", v)
		}
		if f.Err != "" {
			fmt.Printf("  %s\n", f.Err)
		}
	}
	if *expectFail != (len(rep.Failures) > 0) {
		if *expectFail {
			fmt.Println("fuzz: FAIL — expected a failure, found none")
		} else {
			fmt.Println("fuzz: FAIL — unexpected failures")
		}
		os.Exit(1)
	}
	if *expectOrcl != "" && !anyOracleFired(rep.Failures, *expectOrcl) {
		fmt.Printf("fuzz: FAIL — expected oracle %q to fire, found %s\n",
			*expectOrcl, oracleSummary(rep.Failures))
		os.Exit(1)
	}
	fmt.Println("fuzz: OK")
}

// anyOracleFired reports whether some failure was condemned by the named
// oracle ("+"-joined identities are split into their components).
func anyOracleFired(failures []*fuzz.Failure, want string) bool {
	for _, f := range failures {
		for _, o := range strings.Split(f.Oracle, "+") {
			if o == want {
				return true
			}
		}
	}
	return false
}

// oracleSummary renders the oracle identities that actually fired.
func oracleSummary(failures []*fuzz.Failure) string {
	var out []string
	for _, f := range failures {
		out = append(out, f.Oracle)
	}
	if len(out) == 0 {
		return "none"
	}
	return strings.Join(out, ", ")
}
