// Command statcheck validates telemetry artifacts emitted by the other
// front ends: JSON snapshots (-stats output) against the snapshot schema
// and Chrome trace files (-trace-out output) against the trace_event
// format. CI runs it on the files a litmus invocation writes.
//
//	go run ./cmd/statcheck -snapshot sb.json -trace sb.trace.json
//
// A snapshot written under a different schema version (say an old
// compass/telemetry/v0 file) fails with a one-line diagnostic naming both
// versions, not a pile of unknown-field errors.
//
// Exit status: 0 when every given file validates, 1 otherwise, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"compass"
)

func main() {
	snapshot := flag.String("snapshot", "", "telemetry JSON snapshot to validate")
	trace := flag.String("trace", "", "Chrome trace_event file to validate")
	flag.Parse()
	os.Exit(run(*snapshot, *trace, os.Stdout, os.Stderr))
}

// run validates the given snapshot and/or trace files, reporting one line
// per file. It returns the process exit code.
func run(snapshot, trace string, stdout, stderr io.Writer) int {
	if snapshot == "" && trace == "" {
		fmt.Fprintln(stderr, "statcheck: give -snapshot and/or -trace")
		return 2
	}
	failed := false
	check := func(path, kind string, validate func([]byte) error) {
		if path == "" {
			return
		}
		data, err := os.ReadFile(path)
		if err == nil {
			err = validate(data)
		}
		if err != nil {
			fmt.Fprintf(stderr, "statcheck: %s: %v\n", kind, err)
			failed = true
			return
		}
		fmt.Fprintf(stdout, "statcheck: %s %s OK\n", kind, path)
	}
	check(snapshot, "snapshot", compass.ValidateTelemetryJSON)
	check(trace, "trace", compass.ValidateChromeTraceJSON)
	if failed {
		return 1
	}
	return 0
}
