package core

import (
	"fmt"
	"sort"
	"strings"

	"compass/internal/view"
)

// DOT renders the event graph in Graphviz format: one node per committed
// event (labeled with its payload and committing thread), solid edges for
// the so relation, and dashed edges for the transitive reduction of the
// lhb relation (restricted to this object's events, for readability).
//
// Map iteration order is unobservable here: the first pass fills the
// reduced-edge set (commutative inserts) and the second collects edges
// that are sorted before rendering.
//
//compass:orderinsensitive
func (g *Graph) DOT() string {
	events := g.Events()
	// lhb edges within this graph.
	lhb := map[[2]view.EventID]bool{}
	for _, d := range events {
		for _, e := range d.LogView.Events() {
			if g.Owns(e) {
				lhb[[2]view.EventID{e, d.ID}] = true
			}
		}
	}
	// Transitive reduction: drop e→d if some f has e→f and f→d.
	reduced := map[[2]view.EventID]bool{}
	for edge := range lhb {
		e, d := edge[0], edge[1]
		redundant := false
		for _, f := range events {
			if f.ID != e && f.ID != d && lhb[[2]view.EventID{e, f.ID}] && lhb[[2]view.EventID{f.ID, d}] {
				redundant = true
				break
			}
		}
		if !redundant {
			reduced[edge] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n", g.Name)
	for i, e := range events {
		fmt.Fprintf(&b, "  e%d [label=\"#%d %s\\nT%d\"];\n", e.ID.Local(), i, e.String(), e.Thread)
	}
	for _, p := range g.So() {
		fmt.Fprintf(&b, "  e%d -> e%d [label=\"so\", penwidth=2];\n", p[0].Local(), p[1].Local())
	}
	edges := make([][2]view.EventID, 0, len(reduced))
	for edge := range reduced {
		edges = append(edges, edge)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, edge := range edges {
		fmt.Fprintf(&b, "  e%d -> e%d [style=dashed, color=gray];\n", edge[0].Local(), edge[1].Local())
	}
	b.WriteString("}\n")
	return b.String()
}
