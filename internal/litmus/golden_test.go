package litmus

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"compass/internal/check"
	"compass/internal/memory"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_litmus.txt from the current machine")

const goldenPath = "testdata/golden_litmus.txt"

// goldenLine renders one test's exact reachable-outcome set: every outcome
// key the exhaustive exploration observed, sorted, with the completeness
// verdict. Counts are deliberately excluded — they encode the decision
// tree's shape, which legitimate machine refactors may change; the
// *reachable set* is the memory-model semantics and must not drift.
func goldenLine(r *Result) string {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	verdict := "complete"
	if !r.Complete {
		verdict = "bounded"
	}
	return fmt.Sprintf("%s: %s: %s", r.Test.Name, verdict, strings.Join(keys, " | "))
}

// TestGoldenLitmusCorpus locks the exact outcome set of every litmus test
// under exhaustive exploration into a committed golden file. Any machine
// change that adds or removes a reachable weak behaviour — even one the
// Forbidden/Required spot checks don't mention — shows up as a diff.
// Regenerate deliberately with:
//
//	go test ./internal/litmus -run TestGoldenLitmusCorpus -update
func TestGoldenLitmusCorpus(t *testing.T) {
	var lines []string
	for _, tc := range Suite() {
		res := Run(tc, 400000)
		if !res.Complete {
			t.Errorf("%s: exploration did not complete within bounds (%d runs); golden outcome sets must be proofs", tc.Name, res.Runs)
		}
		lines = append(lines, goldenLine(res))
		// The corpus must be invariant under partial-order reduction, in
		// both modes: POR prunes executions, never reachable outcomes, so
		// the golden line — set plus completeness verdict — is
		// byte-identical.
		for _, mode := range []check.PORMode{check.PORSleep, check.PORSource} {
			if por := goldenLine(Run(tc, 400000, WithPORMode(mode))); por != lines[len(lines)-1] {
				t.Errorf("%s: POR mode %v changed the golden outcome set:\n  off: %s\n  por: %s",
					tc.Name, mode, lines[len(lines)-1], por)
			}
		}
	}
	// Library refinement corpus: each workload's canonical verdict is the
	// acceptance configuration — exhaustive under source-DPOR with a
	// footprint certificate — and must be byte-identical in every swept
	// POR mode and without pruning: reduction and pruning remove
	// executions and per-access work, never verdicts.
	for _, lt := range LibrarySuite() {
		var fp *memory.Footprint
		if !lt.SkipPrune {
			var err error
			if fp, err = LibFootprint(lt); err != nil {
				t.Errorf("%s: footprint extraction failed: %v", lt.Name, err)
			}
		}
		res := RunLib(lt, 600000, WithPORMode(check.PORSource), WithFootprint(fp))
		if !res.Complete {
			t.Errorf("%s: exploration did not complete within bounds (%d runs); golden verdicts must be proofs", lt.Name, res.Runs)
		}
		if res.TracesChecked == 0 {
			t.Errorf("%s: refinement oracle judged no traces", lt.Name)
		}
		lines = append(lines, res.GoldenLine())
		for _, mode := range lt.Modes() {
			if got := RunLib(lt, 600000, WithPORMode(mode)).GoldenLine(); got != lines[len(lines)-1] {
				t.Errorf("%s: POR mode %v (unpruned) changed the golden verdict:\n  canonical: %s\n  got:       %s",
					lt.Name, mode, lines[len(lines)-1], got)
			}
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d tests)", goldenPath, len(lines))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v (run with -update to create it)", err)
	}
	if got == string(want) {
		return
	}
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i, g := range lines {
		if i >= len(wantLines) {
			t.Errorf("unexpected extra test: %s", g)
			continue
		}
		if g != wantLines[i] {
			t.Errorf("outcome set drifted:\n  golden:  %s\n  current: %s", wantLines[i], g)
		}
	}
	for i := len(lines); i < len(wantLines); i++ {
		t.Errorf("test disappeared from suite: %s", wantLines[i])
	}
}
