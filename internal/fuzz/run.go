package fuzz

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/spec"
	"compass/internal/telemetry"
)

// Failure is one discovered counterexample: a program plus the decision
// sequence that drives the machine into the failing execution, with the
// verdict that condemned it. Program + Decisions fully determine the
// execution, so a Failure replays byte-for-byte via Replay.
type Failure struct {
	Program    Program            `json:"program"`
	Decisions  []machine.Decision `json:"decisions"`
	Status     string             `json:"status"`
	Err        string             `json:"err,omitempty"`
	Violations []spec.Violation   `json:"violations,omitempty"`
	// Oracle identifies which cross-check(s) condemned the execution:
	// "machine" (race/UB/assertion), "spec" (consistency predicates),
	// "oracle" (SC reference oracle), "refine" (refinement/simulation
	// oracle), joined with "+" when several fired at once.
	Oracle string `json:"oracle,omitempty"`
	// Disagreement classifies a spec/refine split verdict (one of the
	// Disagree* constants); empty when the two library characterizations
	// agree. A non-empty value is the differential fuzzer's highest-value
	// signal: one of the two formulations is wrong.
	Disagreement string `json:"disagreement,omitempty"`
	// Key is the failure class (status + sorted violation rules); the
	// shrinker preserves it, and campaign deduplication buckets on it.
	Key string `json:"key"`
	// Shrunk records whether the minimizer ran to a fixpoint.
	Shrunk bool `json:"shrunk"`
	// GenSeed and ExecSeed record the derived seeds that generated the
	// program and drove the failing execution (provenance; replay itself
	// needs only Decisions). ExecSeed is 0 for failures found by the
	// exhaustive phase, which is seedless.
	GenSeed  int64 `json:"gen_seed,omitempty"`
	ExecSeed int64 `json:"exec_seed,omitempty"`
}

// failureKey classifies a failing execution so that shrinking can insist
// on reproducing the *same* bug and the campaign can deduplicate. Volatile
// detail (error text, event IDs) is excluded.
func failureKey(status machine.Status, viols []spec.Violation) string {
	rules := map[string]bool{}
	for _, v := range viols {
		rules[v.Rule] = true
	}
	sorted := make([]string, 0, len(rules))
	for r := range rules {
		sorted = append(sorted, r)
	}
	sort.Strings(sorted)
	return status.String() + "|" + strings.Join(sorted, ",")
}

// The two spec/refine disagreement classes a judged execution can land
// in. Both count toward refine_disagreements in the telemetry.
const (
	// DisagreeSpecAcceptsRefineRejects: the consistency predicates (and SC
	// oracle) accepted the execution but the refinement oracle found no
	// abstract trace — either the predicates are too weak or the ATS too
	// strong.
	DisagreeSpecAcceptsRefineRejects = "spec-accepts/refine-rejects"
	// DisagreeRefineAcceptsSpecRejects: the refinement oracle simulated
	// the execution but a predicate or the SC oracle condemned it — either
	// the predicates are too strong or the ATS too weak.
	DisagreeRefineAcceptsSpecRejects = "refine-accepts/spec-rejects"
)

// oracleOf names the cross-check(s) that condemned the execution, from
// its status and violation rules.
func oracleOf(status machine.Status, viols []spec.Violation) string {
	if status == machine.Racy || status == machine.Failed {
		return "machine"
	}
	var bySpec, byOracle, byRefine bool
	for _, v := range viols {
		switch {
		case strings.HasPrefix(v.Rule, "REFINE"):
			byRefine = true
		case strings.HasPrefix(v.Rule, "SC-ORACLE"):
			byOracle = true
		default:
			bySpec = true
		}
	}
	var parts []string
	if bySpec {
		parts = append(parts, "spec")
	}
	if byOracle {
		parts = append(parts, "oracle")
	}
	if byRefine {
		parts = append(parts, "refine")
	}
	return strings.Join(parts, "+")
}

// judge evaluates one completed execution against all the cross-checks:
// the machine's own race/UB verdict, the consistency predicates plus SC
// oracle, and — unless the program opted out — the refinement oracle,
// whose agree/disagree sample lands in the refine telemetry (stats may be
// nil). It returns nil for a clean run; budget exhaustion is a discard
// (the schedule spun, nothing to conclude), counted by the caller via
// unknown.
func judge(p Program, inst *Instance, r *machine.Result, trace []machine.Decision, stats *telemetry.Stats) (*Failure, int) {
	switch r.Status {
	case machine.Budget:
		return nil, 0
	case machine.Racy, machine.Failed:
		errText := ""
		if r.Err != nil {
			errText = r.Err.Error()
		}
		return &Failure{
			Program:   p,
			Decisions: trace,
			Status:    r.Status.String(),
			Err:       errText,
			Oracle:    "machine",
			Key:       failureKey(r.Status, nil),
		}, 0
	}
	viols, unknown := inst.Checked.Evaluate()
	disagreement := ""
	if inst.Checked.Refine != nil {
		rv, ru := inst.Checked.Refine(r, stats)
		unknown += ru
		if (len(rv) > 0) != (len(viols) > 0) {
			if len(rv) > 0 {
				disagreement = DisagreeSpecAcceptsRefineRejects
			} else {
				disagreement = DisagreeRefineAcceptsSpecRejects
			}
		}
		stats.RefineTrace(disagreement != "")
		viols = append(viols, rv...)
	}
	if len(viols) == 0 {
		return nil, unknown
	}
	return &Failure{
		Program:      p,
		Decisions:    trace,
		Status:       r.Status.String(),
		Violations:   viols,
		Oracle:       oracleOf(r.Status, viols),
		Disagreement: disagreement,
		Key:          failureKey(r.Status, viols),
	}, unknown
}

// Replay rebuilds the program and re-runs it under the exact decision
// sequence, returning the failure it reproduces (nil if the execution is
// clean — e.g. after a bad shrink candidate). This is the function the
// emitted reproducer artifacts call.
func Replay(p Program, ds []machine.Decision, budget int) (*Failure, error) {
	inst, err := Build(p)
	if err != nil {
		return nil, err
	}
	runner := check.Options{Budget: budget}.Runner(false)
	strat := machine.ReplayStrategy(ds)
	r := runner.Run(inst.Checked.Prog, strat)
	f, _ := judge(p, inst, r, strat.Trace, nil)
	return f, nil
}

// explore enumerates the program's executions depth-first (the same
// backtracking scheme as machine.Explore, rebuilt here so each run's
// decision trace is captured for counterexample artifacts), returning the
// first failure, the number of runs, whether the tree was exhausted, and
// the unknown-verdict and discarded counts. stats (nil disables)
// receives one ExecDone/FuzzExec per run.
//
//compass:accounting
func explore(p Program, maxRuns, budget int, stats *telemetry.Stats) (f *Failure, runs int, complete bool, unknowns, discards int) {
	runner := check.Options{Budget: budget, Stats: stats}.Runner(false)
	var prefix []machine.Decision
	for runs < maxRuns {
		inst, err := Build(p)
		if err != nil {
			return nil, runs, false, unknowns, discards
		}
		strat := machine.ReplayStrategy(prefix)
		r := runner.Run(inst.Checked.Prog, strat)
		runs++
		if r.Status == machine.Budget {
			discards++
		}
		stats.ExecDone(uint8(r.Status), r.Steps)
		stats.FuzzExec(r.Status == machine.Budget)
		f, unk := judge(p, inst, r, strat.Trace, stats)
		unknowns += unk
		if f != nil {
			return f, runs, false, unknowns, discards
		}
		trace := strat.Trace
		i := len(trace) - 1
		for ; i >= 0; i-- {
			if trace[i].Pick+1 < trace[i].N {
				break
			}
		}
		if i < 0 {
			return nil, runs, true, unknowns, discards
		}
		prefix = append(append([]machine.Decision{}, trace[:i]...),
			machine.Decision{N: trace[i].N, Pick: trace[i].Pick + 1})
	}
	return nil, runs, false, unknowns, discards
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Seed makes the whole campaign deterministic: program generation and
	// every random execution derive from it.
	Seed int64
	// Programs bounds the number of generated programs (default 50; with
	// Duration set, whichever limit is hit first stops the campaign).
	Programs int
	// Duration bounds wall-clock time (0 = no time bound).
	Duration time.Duration
	// Execs is the number of seeded-random executions per program
	// (default 200).
	Execs int
	// StaleBias is the random strategy's stale-read bias. It follows the
	// same convention as check.Options.StaleBias: the zero value selects
	// the default (0.6 here — aggressive weak behaviors), and
	// check.BiasZero (or any negative value) selects exactly 0.
	StaleBias float64
	// Budget caps machine steps per execution (default 50000).
	Budget int
	// ExhaustiveRuns additionally explores up to this many executions of
	// each program bounded-exhaustively (0 disables; small programs complete
	// the proof within a few hundred runs).
	ExhaustiveRuns int
	// MaxFailures stops the campaign once this many distinct failure
	// classes were found (default 1).
	MaxFailures int
	// NoShrink skips counterexample minimization.
	NoShrink bool
	// NoRefine opts the campaign out of the refinement-oracle cross-check
	// (on by default). The setting is stamped into every generated
	// program (Program.NoRefine) so replays, shrinking, and artifact
	// reproducers judge identically to the campaign.
	NoRefine bool
	// Gen shapes program generation.
	Gen GenConfig
	// ArtifactDir, when set, receives one artifact bundle per distinct
	// failure (JSON schedule, Go reproducer, DOT event graphs).
	ArtifactDir string
	// Log, when set, receives campaign progress lines.
	Log io.Writer
	// Stats, when non-nil, receives campaign telemetry: program/exec/
	// failure/shrink/artifact counters plus the machine-level counters of
	// every campaign execution (shrink replays count only as shrink
	// attempts). The final Report carries a Snapshot of it.
	Stats *telemetry.Stats
	// Progress, when set, receives a periodic one-line campaign summary
	// (programs, execs, rate, failures) every ProgressEvery.
	Progress io.Writer
	// ProgressEvery is the progress-line interval (default 5s).
	ProgressEvery time.Duration
}

// DefaultStaleBias is the campaign default stale-read bias.
const DefaultStaleBias = 0.6

func (c Config) norm() Config {
	if c.Programs <= 0 {
		c.Programs = 50
		if c.Duration > 0 {
			c.Programs = 1 << 30 // duration-bound campaigns: no program cap
		}
	}
	if c.Execs <= 0 {
		c.Execs = 200
	}
	c.StaleBias = check.NormalizeStaleBias(c.StaleBias, DefaultStaleBias)
	if c.Budget <= 0 {
		c.Budget = 50000
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 1
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 5 * time.Second
	}
	return c
}

// Report summarizes a campaign.
type Report struct {
	Programs int
	Execs    int
	// Discarded counts budget-exhausted executions (consistent with the
	// check harness's "discarded" accounting: neither pass nor fail).
	Discarded int
	// Unknown counts undecided spec/oracle verdicts (budget-bounded
	// linearizability searches), not failures.
	Unknown  int
	Failures []*Failure // one per distinct failure class, shrunk
	// Artifacts lists the artifact directories written (parallel to
	// Failures when ArtifactDir was set).
	Artifacts []string
	// Stats is a telemetry snapshot taken when the campaign finished; nil
	// unless Config.Stats or Config.Progress was set.
	Stats *telemetry.Snapshot
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// Fuzz runs a campaign: generate a program, hammer it with seeded-random
// schedules (recording every decision), then sweep it bounded-exhaustively;
// the first execution to fail any cross-check becomes a counterexample,
// which is shrunk to a minimal program + decision sequence and optionally
// written out as a replayable artifact bundle.
func Fuzz(cfg Config) (*Report, error) {
	cfg = cfg.norm()
	if cfg.Stats == nil && cfg.Progress != nil {
		// Progress lines read the counters, so recording must be on.
		cfg.Stats = telemetry.New()
	}
	rep := &Report{}
	seen := map[string]bool{}
	start := time.Now()
	stopProgress := telemetry.StartProgress(cfg.Progress, cfg.ProgressEvery, func() string {
		snap := cfg.Stats.Snapshot()
		return fmt.Sprintf("fuzz: %d programs, %d execs (%s, %d discarded), %d failures, %d shrink attempts",
			snap.Fuzz.Programs, snap.Fuzz.Execs, telemetry.Rate(snap.Fuzz.Execs, time.Since(start)),
			snap.Fuzz.Discarded, snap.Fuzz.Failures, snap.Fuzz.ShrinkAttempts)
	})
	defer stopProgress()
	for i := 0; i < cfg.Programs; i++ {
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		// Both per-program seed streams are splitmix64-derived: plain
		// arithmetic derivation (seed + i*prime) let campaigns with nearby
		// seeds replay overlapping execution streams.
		genSeed := deriveSeed(cfg.Seed, streamGen, int64(i))
		rng := rand.New(rand.NewSource(genSeed))
		p := Generate(rng, cfg.Gen)
		p.NoRefine = cfg.NoRefine
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("generated invalid program: %v", err)
		}
		rep.Programs++
		cfg.Stats.FuzzProgram()
		f := fuzzProgram(cfg, rep, p, deriveSeed(cfg.Seed, streamExec, int64(i)))
		if f == nil || seen[f.Key] {
			continue
		}
		f.GenSeed = genSeed
		seen[f.Key] = true
		cfg.Stats.FuzzFailure()
		logf(cfg.Log, "program %d (%s): FAILURE %s (%d threads, %d ops, %d decisions)",
			i, p.Lib, f.Key, f.Program.NumThreads(), f.Program.NumOps(), len(f.Decisions))
		if !cfg.NoShrink {
			f = ShrinkStats(f, cfg.Budget, cfg.Log, cfg.Stats)
			logf(cfg.Log, "  shrunk to %d threads, %d ops, %d decisions",
				f.Program.NumThreads(), f.Program.NumOps(), len(f.Decisions))
		}
		rep.Failures = append(rep.Failures, f)
		if cfg.ArtifactDir != "" {
			dir, err := WriteArtifacts(cfg.ArtifactDir, f, cfg.Budget)
			if err != nil {
				return rep, fmt.Errorf("writing artifacts: %v", err)
			}
			rep.Artifacts = append(rep.Artifacts, dir)
			cfg.Stats.FuzzArtifact()
			logf(cfg.Log, "  artifacts: %s", dir)
		}
		if len(rep.Failures) >= cfg.MaxFailures {
			break
		}
	}
	if cfg.Stats != nil {
		snap := cfg.Stats.Snapshot()
		rep.Stats = &snap
	}
	return rep, nil
}

// fuzzProgram runs both exploration phases on one program and returns its
// first failure (or nil). execBase seeds the random phase: execution j
// runs under deriveSeed(execBase, streamStep, j), which the returned
// failure records as ExecSeed.
//
//compass:accounting
func fuzzProgram(cfg Config, rep *Report, p Program, execBase int64) *Failure {
	runner := check.Options{Budget: cfg.Budget, Stats: cfg.Stats}.Runner(false)
	for j := 0; j < cfg.Execs; j++ {
		inst, err := Build(p)
		if err != nil {
			return nil
		}
		execSeed := deriveSeed(execBase, streamStep, int64(j))
		strat := machine.Record(machine.NewRandomBiased(execSeed, cfg.StaleBias))
		r := runner.Run(inst.Checked.Prog, strat)
		rep.Execs++
		if r.Status == machine.Budget {
			rep.Discarded++
		}
		cfg.Stats.ExecDone(uint8(r.Status), r.Steps)
		cfg.Stats.FuzzExec(r.Status == machine.Budget)
		f, unk := judge(p, inst, r, strat.Trace, cfg.Stats)
		rep.Unknown += unk
		if f != nil {
			f.ExecSeed = execSeed
			return f
		}
	}
	if cfg.ExhaustiveRuns > 0 {
		f, runs, _, unk, disc := explore(p, cfg.ExhaustiveRuns, cfg.Budget, cfg.Stats)
		rep.Execs += runs
		rep.Unknown += unk
		rep.Discarded += disc
		if f != nil {
			return f
		}
	}
	return nil
}
