package machine

import (
	"fmt"
	"strings"
	"testing"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

func TestSequentialProgram(t *testing.T) {
	var x view.Loc
	prog := Program{
		Name: "seq",
		Setup: func(th *Thread) {
			x = th.Alloc("x", 0)
			th.Write(x, 5, memory.NA)
		},
		Workers: []func(*Thread){
			func(th *Thread) {
				v := th.Read(x, memory.NA)
				th.Write(x, v+1, memory.NA)
			},
		},
		Final: func(th *Thread) {
			v := th.Read(x, memory.NA)
			th.Report("x", v)
		},
	}
	r := (&Runner{}).Run(prog, NewRandom(1))
	if r.Status != OK {
		t.Fatalf("status = %v, err = %v", r.Status, r.Err)
	}
	if r.Outcome["x"] != 6 {
		t.Fatalf("x = %d, want 6", r.Outcome["x"])
	}
}

func TestForkAndJoinSynchronize(t *testing.T) {
	// Worker writes na; Final reads na. Fork/join provide the necessary
	// happens-before, so this must never race under any schedule.
	build := func() Program {
		var x view.Loc
		return Program{
			Setup: func(th *Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*Thread){
				func(th *Thread) { th.Write(x, 1, memory.NA) },
				func(th *Thread) { y := th.Alloc("y", 0); th.Write(y, 2, memory.NA) },
			},
			Final: func(th *Thread) {
				if v := th.Read(x, memory.NA); v != 1 {
					th.Failf("x = %d, want 1", v)
				}
			},
		}
	}
	res := Explore(build, ExploreOpts{MaxRuns: 5000}, func(r *Result) bool {
		if r.Status != OK {
			t.Fatalf("status = %v, err = %v", r.Status, r.Err)
		}
		return true
	})
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
}

// mpProgram builds the classic message-passing litmus test. flagMode
// selects the write mode of the flag (Rel vs Rlx); readMode the read side.
func mpProgram(flagWrite, flagRead memory.Mode, outcomes map[string]int) func() Program {
	return func() Program {
		var data, flag view.Loc
		return Program{
			Setup: func(th *Thread) {
				data = th.Alloc("data", 0)
				flag = th.Alloc("flag", 0)
			},
			Workers: []func(*Thread){
				func(th *Thread) {
					th.Write(data, 1, memory.Rlx)
					th.Write(flag, 1, flagWrite)
				},
				func(th *Thread) {
					f := th.Read(flag, flagRead)
					d := th.Read(data, memory.Rlx)
					th.Report("f", f)
					th.Report("d", d)
				},
			},
		}
	}
}

func collectMP(t *testing.T, flagWrite, flagRead memory.Mode) map[string]int {
	t.Helper()
	outcomes := map[string]int{}
	res := Explore(mpProgram(flagWrite, flagRead, outcomes), ExploreOpts{MaxRuns: 100000}, func(r *Result) bool {
		if r.Status != OK {
			t.Fatalf("status = %v err = %v", r.Status, r.Err)
		}
		outcomes[fmt.Sprintf("f=%d d=%d", r.Outcome["f"], r.Outcome["d"])]++
		return true
	})
	if !res.Complete {
		t.Fatalf("MP exploration incomplete after %d runs", res.Runs)
	}
	return outcomes
}

func TestMPReleaseAcquireForbidsStaleData(t *testing.T) {
	out := collectMP(t, memory.Rel, memory.Acq)
	if n := out["f=1 d=0"]; n != 0 {
		t.Fatalf("rel/acq MP: forbidden outcome f=1,d=0 observed %d times (%v)", n, out)
	}
	for _, allowed := range []string{"f=0 d=0", "f=1 d=1"} {
		if out[allowed] == 0 {
			t.Fatalf("allowed outcome %q never observed (%v)", allowed, out)
		}
	}
}

func TestMPRelaxedAllowsStaleData(t *testing.T) {
	out := collectMP(t, memory.Rlx, memory.Rlx)
	if out["f=1 d=0"] == 0 {
		t.Fatalf("rlx MP: weak outcome f=1,d=0 never observed (%v)", out)
	}
}

func TestStoreBufferingAllowed(t *testing.T) {
	// SB: both threads write then read the other location. Without SC
	// accesses, r1=r2=0 is allowed even with rel/acq (per RC11).
	build := func() Program {
		var x, y view.Loc
		return Program{
			Setup: func(th *Thread) {
				x = th.Alloc("x", 0)
				y = th.Alloc("y", 0)
			},
			Workers: []func(*Thread){
				func(th *Thread) {
					th.Write(x, 1, memory.Rel)
					th.Report("r1", th.Read(y, memory.Acq))
				},
				func(th *Thread) {
					th.Write(y, 1, memory.Rel)
					th.Report("r2", th.Read(x, memory.Acq))
				},
			},
		}
	}
	both0 := 0
	res := Explore(build, ExploreOpts{MaxRuns: 100000}, func(r *Result) bool {
		if r.Outcome["r1"] == 0 && r.Outcome["r2"] == 0 {
			both0++
		}
		return true
	})
	if !res.Complete {
		t.Fatalf("SB exploration incomplete after %d runs", res.Runs)
	}
	if both0 == 0 {
		t.Fatal("SB weak outcome r1=r2=0 never observed; model is too strong")
	}
}

func TestCoherenceCoRR(t *testing.T) {
	// CoRR: one writer does x:=1; x:=2 (rlx); a reader reading x twice must
	// not see 2 then 1.
	build := func() Program {
		var x view.Loc
		return Program{
			Setup: func(th *Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*Thread){
				func(th *Thread) {
					th.Write(x, 1, memory.Rlx)
					th.Write(x, 2, memory.Rlx)
				},
				func(th *Thread) {
					th.Report("a", th.Read(x, memory.Rlx))
					th.Report("b", th.Read(x, memory.Rlx))
				},
			},
		}
	}
	res := Explore(build, ExploreOpts{MaxRuns: 100000}, func(r *Result) bool {
		a, b := r.Outcome["a"], r.Outcome["b"]
		if a == 2 && b == 1 {
			t.Fatalf("coherence violation: read 2 then 1")
		}
		if a > 0 && b == 0 {
			t.Fatalf("coherence violation: read %d then 0", a)
		}
		return true
	})
	if !res.Complete {
		t.Fatalf("CoRR exploration incomplete after %d runs", res.Runs)
	}
}

func TestBudgetAbortsSpin(t *testing.T) {
	prog := Program{
		Workers: []func(*Thread){
			func(th *Thread) {
				for {
					th.Yield()
				}
			},
		},
	}
	r := (&Runner{Budget: 100}).Run(prog, NewRandom(3))
	if r.Status != Budget {
		t.Fatalf("status = %v, want Budget", r.Status)
	}
}

func TestRaceIsReported(t *testing.T) {
	build := func() Program {
		var x view.Loc
		return Program{
			Setup: func(th *Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*Thread){
				func(th *Thread) { th.Write(x, 1, memory.NA) },
				func(th *Thread) { th.Write(x, 2, memory.NA) },
			},
		}
	}
	racy := 0
	Explore(build, ExploreOpts{MaxRuns: 1000}, func(r *Result) bool {
		if r.Status == Racy {
			racy++
		}
		return true
	})
	if racy == 0 {
		t.Fatal("unsynchronized na/na writes never reported as a race")
	}
}

func TestFailf(t *testing.T) {
	prog := Program{
		Workers: []func(*Thread){
			func(th *Thread) { th.Failf("boom %d", 7) },
		},
	}
	r := (&Runner{}).Run(prog, NewRandom(1))
	if r.Status != Failed || r.Err == nil {
		t.Fatalf("status = %v err = %v; want Failed", r.Status, r.Err)
	}
	if got := r.Err.Error(); got != "boom 7" {
		t.Fatalf("err = %q", got)
	}
}

func TestRandomReplayIsDeterministic(t *testing.T) {
	build := func() Program {
		var x view.Loc
		return Program{
			Setup: func(th *Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*Thread){
				func(th *Thread) {
					for i := int64(0); i < 5; i++ {
						th.Write(x, i, memory.Rel)
					}
				},
				func(th *Thread) {
					var sum int64
					for i := 0; i < 5; i++ {
						sum = sum*10 + th.Read(x, memory.Acq)
					}
					th.Report("sum", sum)
				},
			},
		}
	}
	run := func(seed int64) int64 {
		r := (&Runner{}).Run(build(), NewRandom(seed))
		if r.Status != OK {
			t.Fatalf("status = %v", r.Status)
		}
		return r.Outcome["sum"]
	}
	for seed := int64(0); seed < 20; seed++ {
		if run(seed) != run(seed) {
			t.Fatalf("seed %d: two runs differ", seed)
		}
	}
	// And different seeds produce at least two distinct behaviours.
	distinct := map[int64]bool{}
	for seed := int64(0); seed < 20; seed++ {
		distinct[run(seed)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("random strategy shows no variety across seeds")
	}
}

func TestExploreRespectsMaxRuns(t *testing.T) {
	build := mpProgram(memory.Rel, memory.Acq, nil)
	res := Explore(build, ExploreOpts{MaxRuns: 3}, func(r *Result) bool { return true })
	if res.Runs != 3 || res.Complete {
		t.Fatalf("runs=%d complete=%v; want 3,false", res.Runs, res.Complete)
	}
}

func TestExploreVisitStops(t *testing.T) {
	build := mpProgram(memory.Rel, memory.Acq, nil)
	count := 0
	res := Explore(build, ExploreOpts{}, func(r *Result) bool {
		count++
		return count < 2
	})
	if res.Runs != 2 {
		t.Fatalf("runs = %d, want 2", res.Runs)
	}
}

func TestRunRandomCountsOK(t *testing.T) {
	build := mpProgram(memory.Rel, memory.Acq, nil)
	stats := telemetry.New()
	n := RunRandomOpt(build, 10, 42, ExploreOpts{Stats: stats}, func(r *Result) bool { return true })
	if n != 10 {
		t.Fatalf("ok count = %d, want 10", n)
	}
	// The sanctioned runner path accounts every execution: one ExecDone
	// per run, so telemetry totals equal what visit observed.
	snap := stats.Snapshot()
	if snap.Machine.Execs != 10 || snap.Machine.ExecsByStatus["ok"] != 10 {
		t.Fatalf("telemetry execs = %d (ok=%d), want 10 accounted ok executions",
			snap.Machine.Execs, snap.Machine.ExecsByStatus["ok"])
	}
	// The deprecated wrapper delegates: same results, no telemetry.
	if w := RunRandomOpt(build, 10, 42, ExploreOpts{}, func(r *Result) bool { return true }); w != n {
		t.Fatalf("RunRandom wrapper ok count = %d, want %d", w, n)
	}
}

func TestTraceRecording(t *testing.T) {
	var x view.Loc
	prog := Program{
		Setup: func(th *Thread) { x = th.Alloc("x", 0) },
		Workers: []func(*Thread){func(th *Thread) {
			th.Write(x, 1, memory.Rel)
			th.Read(x, memory.Acq)
			th.CAS(x, 1, 2, memory.Acq, memory.Rel)
			th.FetchAdd(x, 1, memory.Rlx, memory.Rlx)
			th.Exchange(x, 9, memory.Rlx, memory.Rlx)
			th.Fence(true, true)
			th.FenceSC()
		}},
	}
	r := (&Runner{Trace: true}).Run(prog, NewRandom(1))
	if r.Status != OK {
		t.Fatalf("status %v", r.Status)
	}
	joined := fmt.Sprint(r.Trace())
	for _, want := range []string{"alloc", "write", "read", "cas", "faa", "xchg", "fence"} {
		if !contains(r.Trace(), want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}
	// Without Trace, no log is kept.
	r = (&Runner{}).Run(prog, NewRandom(1))
	if len(r.Events) != 0 {
		t.Fatalf("trace recorded without Trace option: %v", r.Events)
	}
}

func contains(lines []string, sub string) bool {
	for _, l := range lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{OK: "ok", Racy: "racy", Budget: "budget", Failed: "failed"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestWorkersSeeSetupState(t *testing.T) {
	// Fork must transfer the parent's view: na reads of setup-written
	// locations from workers are race free.
	build := func() Program {
		var x view.Loc
		return Program{
			Setup: func(th *Thread) {
				x = th.Alloc("x", 0)
				th.Write(x, 9, memory.NA)
			},
			Workers: []func(*Thread){
				func(th *Thread) {
					if v := th.Read(x, memory.NA); v != 9 {
						th.Failf("worker saw %d", v)
					}
				},
			},
		}
	}
	r := (&Runner{}).Run(build(), NewRandom(0))
	if r.Status != OK {
		t.Fatalf("status = %v err = %v", r.Status, r.Err)
	}
}

func TestRecordedReplaysIdentically(t *testing.T) {
	// A run under any strategy, recorded, must replay byte-for-byte under
	// ReplayStrategy: same outcome and same decision sequence.
	build := func() Program {
		var x, y view.Loc
		return Program{
			Setup: func(th *Thread) {
				x = th.Alloc("x", 0)
				y = th.Alloc("y", 0)
			},
			Workers: []func(*Thread){
				func(th *Thread) {
					th.Write(x, 1, memory.Rlx)
					th.Write(y, 1, memory.Rel)
				},
				func(th *Thread) {
					th.Report("f", th.Read(y, memory.Acq))
					th.Report("d", th.Read(x, memory.Rlx))
				},
			},
		}
	}
	runner := &Runner{}
	for seed := int64(0); seed < 30; seed++ {
		rec := Record(NewRandomBiased(seed, 0.7))
		r1 := runner.Run(build(), rec)

		data, err := MarshalDecisions(rec.Trace)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := UnmarshalDecisions(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != len(rec.Trace) {
			t.Fatalf("JSON round trip lost decisions: %d != %d", len(ds), len(rec.Trace))
		}

		replay := ReplayStrategy(ds)
		r2 := runner.Run(build(), replay)
		if r1.Status != r2.Status || fmt.Sprint(r1.Outcome) != fmt.Sprint(r2.Outcome) {
			t.Fatalf("seed %d: replay diverged: %v/%v vs %v/%v", seed, r1.Status, r1.Outcome, r2.Status, r2.Outcome)
		}
		if fmt.Sprint(replay.Trace) != fmt.Sprint(rec.Trace) {
			t.Fatalf("seed %d: replayed decisions differ:\n%v\n%v", seed, replay.Trace, rec.Trace)
		}
	}
}
