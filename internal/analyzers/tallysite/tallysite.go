// Package tallysite restricts telemetry execution accounting to
// designated accounting functions. PR 3 established by hand that
// ExecDone is recorded only by result-accounting layers, so telemetry
// exec totals always equal Report totals; this pass turns that review
// convention into a compile-time check keyed off //compass:accounting
// directives.
package tallysite

import (
	"go/ast"

	"compass/internal/analyzers/lint"
)

// Analyzer is the tallysite pass.
var Analyzer = &lint.Analyzer{
	Name: "tallysite",
	Doc: `restrict telemetry counter mutations to //compass:accounting functions

ExecDone and raw Counter/Gauge/Histogram mutations on
compass/internal/telemetry types may appear only inside functions whose
doc comment carries //compass:accounting. Keeping the accounting sites
explicit is what guarantees telemetry exec totals equal Report totals
(one ExecDone per accounted result, never per raw machine run).`,
	Run: run,
}

const telemetryPath = "compass/internal/telemetry"

// mutators are the accounting-sensitive methods on telemetry types.
// Ordinary recording helpers (ReadChoice, ThreadPick, ...) are
// deliberately not listed: they are per-event instrumentation, not
// result accounting.
var mutators = map[string]bool{
	"ExecDone": true, // Stats: one per accounted execution
	"Inc":      true, // raw Counter
	"Add":      true, // raw Counter
	"Set":      true, // raw Gauge
	"Observe":  true, // raw Histogram
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !mutators[sel.Sel.Name] {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil {
				return true // package-qualified call, not a method
			}
			pkgPath, _, ok := lint.NamedTypePath(s.Recv())
			if !ok || pkgPath != telemetryPath {
				return true
			}
			if !lint.FuncDirective(file, call.Pos(), "accounting") {
				pass.Reportf(call.Pos(), "telemetry %s outside a //compass:accounting function: execution accounting must stay in the result-accounting layer so telemetry totals equal Report totals", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
