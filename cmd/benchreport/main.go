// Command benchreport runs the tier-1 benchmark set with -benchmem and
// writes the parsed results to BENCH_<date>.json in the repository root,
// seeding the performance trajectory: each entry records ns/op, B/op, and
// allocs/op per benchmark, plus the environment, so successive snapshots
// are diffable.
//
//	go run ./cmd/benchreport                    # write BENCH_<today>.json
//	go run ./cmd/benchreport -out results.json
//	go run ./cmd/benchreport -bench 'ViewClone|ReleaseWrite' -benchtime 100x
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"compass"
)

// tierOnePackages is the benchmark set tracked across snapshots: the
// view-lattice and memory-subsystem microbenchmarks plus the end-to-end
// harness benchmarks at the repository root.
var tierOnePackages = []string{".", "./internal/view", "./internal/memory", "./internal/spec"}

// tierOneBenchmarks is the default -bench regex: the stable cross-snapshot
// set. The root package's per-figure experiment benchmarks run a whole
// experiment per iteration and are deliberately excluded from the default;
// pass -bench explicitly to include them.
const tierOneBenchmarks = "^(" + tierOneBenchNames + ")$"

const tierOneBenchNames = "BenchmarkViewJoinInto16|BenchmarkViewClone16|BenchmarkViewLeq16|" +
	"BenchmarkLogViewJoin32|BenchmarkClockJoin|" +
	"BenchmarkReleaseWrite|BenchmarkAcquireRead|BenchmarkCAS|BenchmarkFenceSC|" +
	"BenchmarkMessagePassingRoundTrip|" +
	"BenchmarkCheckQueueHB32|BenchmarkCheckQueueAbs32|BenchmarkReplayCommitOrder128|" +
	"BenchmarkLinearizableSearch|" +
	"BenchmarkMachineSteps|BenchmarkT1EffortTable|BenchmarkExhaustiveMP|" +
	"BenchmarkMSQueueVerifiedExecution|BenchmarkHWQueueVerifiedExecution|" +
	"BenchmarkTreiberVerifiedExecution"

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the file format of BENCH_<date>.json.
type Report struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	GOARCH     string         `json:"goarch"`
	GOOS       string         `json:"goos"`
	NumCPU     int            `json:"num_cpu"`
	BenchTime  string         `json:"benchtime"`
	BenchRegex string         `json:"bench_regex"`
	Results    []Result       `json:"results"`
	Pruning    *PruningReport `json:"pruning,omitempty"`
	POR        *PORReport     `json:"por,omitempty"`
	Plan       *PlanReport    `json:"plan,omitempty"`
	Dedup      *DedupReport   `json:"dedup,omitempty"`
}

// PruningReport records footprint-pruning effectiveness: the litmus suite
// plus the footprint-rich workloads, explored exhaustively once without
// and once with footprint certificates, with the telemetry counters of
// each sweep side by side. Outcome histograms are identical by
// construction (the equivalence test in internal/litmus asserts it); what
// successive BENCH_*.json snapshots track here is how much per-access
// work the certificates remove. Classic litmus locations are all
// cross-thread shared, so the nonzero pruning counters come from the
// footprint-rich workloads — exactly the split the report is meant to
// surface.
type PruningReport struct {
	Tests    int         `json:"tests"`
	Unpruned PruningSide `json:"unpruned"`
	Pruned   PruningSide `json:"pruned"`
}

// PruningSide is one sweep's telemetry: total executions, read choices
// offered to the strategy, reads answered from a certificate without
// window computation, and race checks skipped on certified locations.
type PruningSide struct {
	Execs             int64   `json:"execs"`
	ReadChoices       int64   `json:"read_choices"`
	PrunedReads       int64   `json:"pruned_reads"`
	RaceChecksSkipped int64   `json:"race_checks_skipped"`
	Seconds           float64 `json:"seconds"`
}

// measurePruning runs the exhaustive litmus suite twice — certificates off,
// then on — and returns the two telemetry snapshots reduced to the pruning
// counters. Any test failure aborts: a BENCH file must never record numbers
// from a sweep whose outcomes were wrong.
func measurePruning(maxRuns int) (*PruningReport, error) {
	rep := &PruningReport{}
	tests := append(compass.LitmusSuite(), compass.LitmusFootprintSuite()...)
	sweep := func(prune bool) (PruningSide, error) {
		stats := compass.NewTelemetry()
		start := time.Now()
		for _, t := range tests {
			var fp *compass.Footprint
			if prune {
				var err error
				if fp, err = compass.ExtractFootprint(t.Build); err != nil {
					return PruningSide{}, fmt.Errorf("%s: footprint extraction: %v", t.Name, err)
				}
			}
			res := compass.RunLitmus(t, maxRuns, compass.WithStats(stats), compass.WithFootprint(fp))
			if !res.OK() {
				return PruningSide{}, fmt.Errorf("%s: exploration failed (prune=%v):\n%s", t.Name, prune, res)
			}
		}
		snap := stats.Snapshot()
		return PruningSide{
			Execs:             snap.Machine.Execs,
			ReadChoices:       snap.Machine.ReadChoices,
			PrunedReads:       snap.Machine.PrunedReads,
			RaceChecksSkipped: snap.Machine.RaceChecksSkipped,
			Seconds:           time.Since(start).Seconds(),
		}, nil
	}
	var err error
	if rep.Unpruned, err = sweep(false); err != nil {
		return nil, err
	}
	if rep.Pruned, err = sweep(true); err != nil {
		return nil, err
	}
	rep.Tests = len(tests)
	return rep, nil
}

// PORReport records partial-order reduction effectiveness: the litmus
// suite plus the footprint-rich workloads, each explored exhaustively
// three times — reduction off, static sleep sets, and source-DPOR.
// Unlike footprint pruning — which removes per-access work at identical
// execution counts — POR removes whole executions, so the headline
// numbers here are per-test execution counts and the sweeps' wall-clock
// deltas. Outcome *sets* are identical in all three modes by
// construction (the equivalence test in internal/litmus asserts it, and
// measurePOR re-checks per test and mode before recording).
type PORReport struct {
	Tests         []PORTest `json:"tests"`
	SecondsOff    float64   `json:"seconds_off"`
	SecondsSleep  float64   `json:"seconds_sleep"`
	SecondsSource float64   `json:"seconds_source"`
	// BranchesSkipped is the sleep-set sweep's por_branches_skipped
	// telemetry total: scheduling branches not taken because the thread
	// was asleep.
	BranchesSkipped int64 `json:"branches_skipped"`
	// RacesReversed is the source-DPOR sweep's por_races_reversed
	// telemetry total: dynamically observed conflicts whose reversal the
	// exploration branched on (each is one wakeup-tree node).
	RacesReversed int64 `json:"races_reversed"`
	// StaleReadsSkipped is the source-DPOR sweep's
	// por_stale_reads_skipped total: read-value branches pruned by wakeup
	// read floors.
	StaleReadsSkipped int64 `json:"stale_reads_skipped"`
}

// PORTest is one test's execution counts in the three reduction modes.
type PORTest struct {
	Name        string `json:"name"`
	ExecsOff    int    `json:"execs_off"`
	ExecsSleep  int    `json:"execs_sleep"`
	ExecsSource int    `json:"execs_source"`
}

// outcomeSetsEqual reports whether the two histograms have the same key
// set — POR's invariant (counts legitimately differ).
func outcomeSetsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// measurePOR runs the exhaustive litmus suite three times — reduction
// off, sleep sets, source-DPOR — and records per-test execution counts
// plus the per-sweep wall clock. Any test failure or outcome-set
// divergence aborts: a BENCH file must never record reduction numbers
// from a sweep whose outcomes were wrong.
func measurePOR(maxRuns int) (*PORReport, error) {
	rep := &PORReport{}
	tests := append(compass.LitmusSuite(), compass.LitmusFootprintSuite()...)
	startOff := time.Now()
	off := make([]*compass.LitmusResult, len(tests))
	for i, t := range tests {
		off[i] = compass.RunLitmus(t, maxRuns)
		if !off[i].OK() {
			return nil, fmt.Errorf("%s: exploration failed (por=off):\n%s", t.Name, off[i])
		}
	}
	rep.SecondsOff = time.Since(startOff).Seconds()

	sweep := func(mode compass.PORMode) ([]int, float64, *compass.Telemetry, error) {
		stats := compass.NewTelemetry()
		start := time.Now()
		runs := make([]int, len(tests))
		for i, t := range tests {
			res := compass.RunLitmus(t, maxRuns, compass.WithStats(stats), compass.WithPORMode(mode))
			if !res.OK() {
				return nil, 0, nil, fmt.Errorf("%s: exploration failed (por=%v):\n%s", t.Name, mode, res)
			}
			if !outcomeSetsEqual(off[i].Outcomes, res.Outcomes) {
				return nil, 0, nil, fmt.Errorf("%s: outcome sets diverged under por=%v:\noff: %v\npor: %v",
					t.Name, mode, off[i].Outcomes, res.Outcomes)
			}
			runs[i] = res.Runs
		}
		return runs, time.Since(start).Seconds(), stats, nil
	}

	sleepRuns, sleepSecs, sleepStats, err := sweep(compass.PORSleep)
	if err != nil {
		return nil, err
	}
	sourceRuns, sourceSecs, sourceStats, err := sweep(compass.PORSource)
	if err != nil {
		return nil, err
	}
	rep.SecondsSleep = sleepSecs
	rep.SecondsSource = sourceSecs
	rep.BranchesSkipped = sleepStats.Snapshot().Explore.PORBranchesSkipped
	srcSnap := sourceStats.Snapshot()
	rep.RacesReversed = srcSnap.Explore.PORRacesReversed
	rep.StaleReadsSkipped = srcSnap.Explore.PORStaleReadsSkipped
	for i, t := range tests {
		rep.Tests = append(rep.Tests, PORTest{
			Name: t.Name, ExecsOff: off[i].Runs, ExecsSleep: sleepRuns[i], ExecsSource: sourceRuns[i],
		})
	}
	return rep, nil
}

// PlanReport records static access-plan effectiveness under source-DPOR:
// the litmus suite, the footprint-rich workloads, and the library
// refinement corpus, each explored exhaustively at -por=source once
// without and once with the committed static plan installed. The plan
// refutes conservative dependence verdicts (and forces provably
// invisible steps), so the headline numbers are per-test execution
// counts; outcome sets / golden verdicts are identical by construction
// and re-checked per test before recording.
type PlanReport struct {
	Tests          []PlanTest `json:"tests"`
	SecondsBare    float64    `json:"seconds_bare"`
	SecondsPlanned float64    `json:"seconds_planned"`
	// PlanChecks is the planned sweep's plan_checks telemetry total:
	// conflict verdicts the source-DPOR explorer asked the plan oracle
	// about.
	PlanChecks int64 `json:"plan_checks"`
	// PlanConflictsRefuted is the planned sweep's plan_conflicts_refuted
	// total: conservative conflicts the plan proved impossible (each one
	// removes a race-reversal branch).
	PlanConflictsRefuted int64 `json:"plan_conflicts_refuted"`
}

// PlanTest is one test's execution counts at -por=source, plan off/on.
type PlanTest struct {
	Name         string `json:"name"`
	ExecsBare    int    `json:"execs_bare"`
	ExecsPlanned int    `json:"execs_planned"`
}

// measurePlan runs everything at -por=source twice — without and with
// the committed static plans — re-checking outcome-set (litmus) or
// golden-verdict (library) equality per test. Any divergence aborts: a
// BENCH file must never record reduction numbers from an unsound sweep.
func measurePlan(maxRuns int) (*PlanReport, error) {
	rep := &PlanReport{}
	stats := compass.NewTelemetry()
	tests := append(compass.LitmusSuite(), compass.LitmusFootprintSuite()...)
	startBare := time.Now()
	bare := make([]*compass.LitmusResult, len(tests))
	for i, t := range tests {
		bare[i] = compass.RunLitmus(t, maxRuns, compass.WithPORMode(compass.PORSource))
		if !bare[i].OK() {
			return nil, fmt.Errorf("%s: exploration failed (plan=off):\n%s", t.Name, bare[i])
		}
	}
	libs := compass.LibrarySuite()
	libBare := make([]*compass.LibResult, len(libs))
	for i, lt := range libs {
		libBare[i] = compass.RunLibRefinement(lt, 600000, compass.WithPORMode(compass.PORSource))
		if !libBare[i].OK() {
			return nil, fmt.Errorf("%s: exploration failed (plan=off)", lt.Name)
		}
	}
	rep.SecondsBare = time.Since(startBare).Seconds()

	startPlanned := time.Now()
	for i, t := range tests {
		pl := compass.PlanFor(t.Name)
		if pl == nil {
			return nil, fmt.Errorf("%s: no committed static plan; run `make plan`", t.Name)
		}
		res := compass.RunLitmus(t, maxRuns,
			compass.WithPORMode(compass.PORSource), compass.WithPlan(pl), compass.WithStats(stats))
		if !res.OK() {
			return nil, fmt.Errorf("%s: exploration failed (plan=on):\n%s", t.Name, res)
		}
		if !outcomeSetsEqual(bare[i].Outcomes, res.Outcomes) {
			return nil, fmt.Errorf("%s: outcome sets diverged with the plan installed:\nbare: %v\nplan: %v",
				t.Name, bare[i].Outcomes, res.Outcomes)
		}
		rep.Tests = append(rep.Tests, PlanTest{Name: t.Name, ExecsBare: bare[i].Runs, ExecsPlanned: res.Runs})
	}
	for i, lt := range libs {
		pl := compass.PlanFor(lt.Name)
		if pl == nil {
			return nil, fmt.Errorf("%s: no committed static plan; run `make plan`", lt.Name)
		}
		res := compass.RunLibRefinement(lt, 600000,
			compass.WithPORMode(compass.PORSource), compass.WithPlan(pl), compass.WithStats(stats))
		if !res.OK() {
			return nil, fmt.Errorf("%s: exploration failed (plan=on)", lt.Name)
		}
		if libBare[i].GoldenLine() != res.GoldenLine() {
			return nil, fmt.Errorf("%s: golden verdict diverged with the plan installed:\nbare: %s\nplan: %s",
				lt.Name, libBare[i].GoldenLine(), res.GoldenLine())
		}
		rep.Tests = append(rep.Tests, PlanTest{Name: lt.Name, ExecsBare: libBare[i].Runs, ExecsPlanned: res.Runs})
	}
	rep.SecondsPlanned = time.Since(startPlanned).Seconds()
	snap := stats.Snapshot()
	rep.PlanChecks = snap.Explore.PlanChecks
	rep.PlanConflictsRefuted = snap.Explore.PlanConflictsRefuted
	return rep, nil
}

// DedupReport records state-space deduplication effectiveness: the
// litmus suite plus the footprint-rich workloads, each explored
// exhaustively in every POR mode — off, sleep sets, source-DPOR — twice:
// without and with a fresh unbounded dedup visited set. Dedup composes
// with POR (it cuts runs that re-enter an already-claimed canonical
// state at a free decision), so the headline numbers are per-test,
// per-mode execution counts plus the two sweeps' wall clocks. Outcome
// sets are identical by construction (TestDedupEquivalence in
// internal/litmus asserts it, and measureDedup re-checks per test and
// mode before recording). Single-worker on both sides: with parallel
// workers the fingerprint claim order is racy and the dedup-side counts
// would not be comparable across snapshots.
type DedupReport struct {
	Tests        []DedupTest `json:"tests"`
	SecondsPlain float64     `json:"seconds_plain"`
	SecondsDedup float64     `json:"seconds_dedup"`
	// DedupStates is the dedup sweep's dedup_states telemetry total:
	// distinct canonical fingerprints entered into the visited sets.
	DedupStates int64 `json:"dedup_states"`
	// DedupHits is the dedup sweep's dedup_hits total: arrivals at an
	// already-claimed fingerprint, each cutting one run short.
	DedupHits int64 `json:"dedup_hits"`
}

// DedupTest is one test's execution counts in one POR mode, dedup
// off/on.
type DedupTest struct {
	Name       string `json:"name"`
	Mode       string `json:"mode"`
	ExecsPlain int    `json:"execs_plain"`
	ExecsDedup int    `json:"execs_dedup"`
}

// measureDedup runs the exhaustive litmus suite in each POR mode twice —
// dedup off, then dedup on with a fresh unbounded visited set per test —
// re-checking outcome-set equality per test and mode. Any test failure
// or divergence aborts: a BENCH file must never record reduction numbers
// from an unsound sweep.
func measureDedup(maxRuns int) (*DedupReport, error) {
	rep := &DedupReport{}
	stats := compass.NewTelemetry()
	tests := append(compass.LitmusSuite(), compass.LitmusFootprintSuite()...)
	modes := []struct {
		name string
		mode compass.PORMode
	}{{"off", compass.POROff}, {"sleep", compass.PORSleep}, {"source", compass.PORSource}}
	for _, m := range modes {
		for _, t := range tests {
			start := time.Now()
			plain := compass.RunLitmus(t, maxRuns, compass.WithWorkers(1), compass.WithPORMode(m.mode))
			rep.SecondsPlain += time.Since(start).Seconds()
			if !plain.OK() {
				return nil, fmt.Errorf("%s: exploration failed (por=%s, dedup=off):\n%s", t.Name, m.name, plain)
			}
			start = time.Now()
			ded := compass.RunLitmus(t, maxRuns, compass.WithWorkers(1), compass.WithPORMode(m.mode),
				compass.WithDedup(compass.NewDedup(0)), compass.WithStats(stats))
			rep.SecondsDedup += time.Since(start).Seconds()
			if !ded.OK() {
				return nil, fmt.Errorf("%s: exploration failed (por=%s, dedup=on):\n%s", t.Name, m.name, ded)
			}
			if !outcomeSetsEqual(plain.Outcomes, ded.Outcomes) {
				return nil, fmt.Errorf("%s: outcome sets diverged under dedup (por=%s):\nplain: %v\ndedup: %v",
					t.Name, m.name, plain.Outcomes, ded.Outcomes)
			}
			rep.Tests = append(rep.Tests, DedupTest{
				Name: t.Name, Mode: m.name, ExecsPlain: plain.Runs, ExecsDedup: ded.Runs,
			})
		}
	}
	snap := stats.Snapshot()
	rep.DedupStates = snap.Explore.DedupStates
	rep.DedupHits = snap.Explore.DedupHits
	return rep, nil
}

func main() {
	bench := flag.String("bench", tierOneBenchmarks, "benchmark name regex passed to -bench")
	benchtime := flag.String("benchtime", "", "passed to -benchtime (e.g. 100x, 0.5s); empty = go default")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	pruning := flag.Bool("pruning", true, "measure footprint-pruning effectiveness over the litmus suite")
	pruneRuns := flag.Int("prune-max-runs", 400000, "exploration bound per litmus test for the pruning measurement")
	por := flag.Bool("por", true, "measure partial-order reduction effectiveness (off vs sleep vs source) over the litmus suite")
	planOn := flag.Bool("plan", true, "measure static access-plan effectiveness (plan off vs on at -por=source) over the litmus and library suites")
	dedup := flag.Bool("dedup", true, "measure state-space dedup effectiveness (dedup off vs on in every POR mode) over the litmus suite")
	flag.Parse()

	rep := &Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOOS:       runtime.GOOS,
		NumCPU:     runtime.NumCPU(),
		BenchTime:  *benchtime,
		BenchRegex: *bench,
	}

	for _, pkg := range tierOnePackages {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", pkg}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		fmt.Fprintf(os.Stderr, "benchreport: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, parse(pkg, buf.Bytes())...)
	}

	if *pruning {
		fmt.Fprintln(os.Stderr, "benchreport: measuring footprint pruning over the litmus suite")
		pr, err := measurePruning(*pruneRuns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: pruning: %v\n", err)
			os.Exit(1)
		}
		rep.Pruning = pr
	}

	if *por {
		fmt.Fprintln(os.Stderr, "benchreport: measuring partial-order reduction over the litmus suite")
		pr, err := measurePOR(*pruneRuns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: por: %v\n", err)
			os.Exit(1)
		}
		rep.POR = pr
		for _, t := range pr.Tests {
			fmt.Fprintf(os.Stderr, "benchreport: por: %-16s off %6d | sleep %6d | source %6d executions\n",
				t.Name, t.ExecsOff, t.ExecsSleep, t.ExecsSource)
		}
	}

	if *planOn {
		fmt.Fprintln(os.Stderr, "benchreport: measuring static access plans at -por=source over the litmus and library suites")
		pr, err := measurePlan(*pruneRuns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: plan: %v\n", err)
			os.Exit(1)
		}
		rep.Plan = pr
		for _, t := range pr.Tests {
			fmt.Fprintf(os.Stderr, "benchreport: plan: %-16s bare %6d | planned %6d executions\n",
				t.Name, t.ExecsBare, t.ExecsPlanned)
		}
	}

	if *dedup {
		fmt.Fprintln(os.Stderr, "benchreport: measuring state-space dedup in every POR mode over the litmus suite")
		dr, err := measureDedup(*pruneRuns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: dedup: %v\n", err)
			os.Exit(1)
		}
		rep.Dedup = dr
		for _, t := range dr.Tests {
			fmt.Fprintf(os.Stderr, "benchreport: dedup: %-16s por=%-6s plain %6d | dedup %6d executions\n",
				t.Name, t.Mode, t.ExecsPlain, t.ExecsDedup)
		}
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Results))
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op
//
// from go test output.
func parse(pkg string, out []byte) []Result {
	var rs []Result
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := Result{Name: name, Package: pkg, Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			n, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				r.BytesPerOp = n
			case "allocs/op":
				r.AllocsPerOp = n
			}
		}
		rs = append(rs, r)
	}
	return rs
}
