// Package interp is the interpreter corpus for staticplan: small
// programs exercising the tracked dataflow fragment (helper inlining,
// struct fields, name folding, loop fixpoints) and the ⊤ escapes.
package interp

import (
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// Test mirrors the litmus suite entry shape the extractor walks.
type Test struct {
	Name  string
	Build func() machine.Program
}

// twoLoc mimics the litmus setup helper: out-parameters bound through
// pointers.
func twoLoc(x, y *view.Loc) func(*machine.Thread) {
	return func(th *machine.Thread) {
		*x = th.Alloc("x", 0)
		*y = th.Alloc("y", 0)
	}
}

type pair struct{ a, b view.Loc }

// mkPair allocates under concatenated names, like the library
// constructors do.
func mkPair(th *machine.Thread, name string) *pair {
	return &pair{a: th.Alloc(name+".a", 0), b: th.Alloc(name+".b", 0)}
}

func (p *pair) readA(th *machine.Thread) int64 { return th.Read(p.a, memory.Acq) }

// factory mimics a library workload constructor: entries built through a
// call get a ⊤ plan named after the machine.Program literal inside.
func factory(rounds int) func() machine.Program {
	return func() machine.Program {
		return machine.Program{Name: "factory-prog"}
	}
}

// Corpus is the suite the extractor test walks.
//
//compass:plan-suite
func Corpus() []Test {
	return []Test{
		{
			Name: "direct",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							th.Write(x, 1, memory.Rel)
							th.Read(y, memory.Rlx)
						},
						func(th *machine.Thread) {
							for i := 0; i < 3; i++ {
								th.Write(y, int64(i), memory.Rlx)
							}
						},
					},
					Final: func(th *machine.Thread) {
						th.Read(x, memory.NA)
					},
				}
			},
		},
		{
			Name: "helpers",
			Build: func() machine.Program {
				var p *pair
				return machine.Program{
					Setup: func(th *machine.Thread) { p = mkPair(th, "p") },
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							p.readA(th)
							th.Write(p.b, 1, memory.Rlx)
						},
					},
				}
			},
		},
		{
			Name: "worker-alloc",
			Build: func() machine.Program {
				return machine.Program{
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) {
							scratch := th.Alloc("scratch", 0)
							th.Write(scratch, 1, memory.Rlx)
							th.Free(scratch)
						},
					},
				}
			},
		},
		{
			Name: "chain",
			Build: func() machine.Program {
				var x, y view.Loc
				return machine.Program{
					Setup: twoLoc(&x, &y),
					Workers: []func(*machine.Thread){
						// The loop-carried assignment chain needs four body
						// passes before the write's may-set includes y — the
						// fixpoint case a bounded-pass interpreter gets wrong.
						func(th *machine.Thread) {
							a, b, c := x, x, x
							for i := 0; i < 4; i++ {
								th.Write(c, 1, memory.Rlx)
								c = b
								b = a
								a = y
							}
						},
					},
				}
			},
		},
		{
			Name: "escape",
			Build: func() machine.Program {
				var x view.Loc
				return machine.Program{
					Setup: func(th *machine.Thread) { x = th.Alloc("x", 0) },
					Workers: []func(*machine.Thread){
						// A location recovered from a memory-held value is the
						// canonical unanalyzable access: the thread is ⊤.
						func(th *machine.Thread) {
							l := view.Loc(th.Read(x, memory.Rlx))
							th.Write(l, 1, memory.Rlx)
						},
					},
				}
			},
		},
		{
			Name:  "viafactory",
			Build: factory(2),
		},
	}
}
