package core

import (
	"strings"
	"testing"
)

func TestDOTRendersEventsAndRelations(t *testing.T) {
	b := NewGraphBuilder("q")
	e0 := b.Add(Enq, 1, 0)
	e1 := b.Add(Enq, 2, 0, e0)
	d := b.Add(Deq, 1, 0, e1) // lhb from e1 (and transitively e0)
	b.So(e0, d)
	dot := b.Graph().DOT()
	for _, want := range []string{
		"digraph \"q\"",
		"e0 [label=\"#0 e0:Enq(1)",
		"e2 [label=\"#2 e2:Deq(1)",
		"e0 -> e2 [label=\"so\"",
		"e0 -> e1 [style=dashed", // reduced lhb
		"e1 -> e2 [style=dashed",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Transitive reduction: the edge e0 -> e2 (implied via e1) must not
	// appear as a dashed lhb edge.
	if strings.Contains(dot, "e0 -> e2 [style=dashed") {
		t.Fatalf("transitive lhb edge not reduced:\n%s", dot)
	}
}

func TestDOTEmptyGraph(t *testing.T) {
	dot := NewGraphBuilder("empty").Graph().DOT()
	if !strings.Contains(dot, "digraph") {
		t.Fatalf("bad dot: %s", dot)
	}
}
