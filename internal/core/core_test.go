package core

import (
	"testing"

	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// run executes a single-worker program and requires it to finish OK.
func run(t *testing.T, setup func(*machine.Thread), workers ...func(*machine.Thread)) {
	t.Helper()
	prog := machine.Program{Setup: setup, Workers: workers}
	r := (&machine.Runner{}).Run(prog, machine.NewRandomBiased(1, 0))
	if r.Status != machine.OK {
		t.Fatalf("status = %v, err = %v", r.Status, r.Err)
	}
}

func TestCommitNewBuildsGraph(t *testing.T) {
	rec := NewRecorder("q")
	run(t, nil, func(th *machine.Thread) {
		e := rec.CommitNew(th, Enq, 41)
		d := rec.CommitNew(th, Enq, 42)
		if e.Local() != 0 || d.Local() != 1 {
			th.Failf("local ids = %d,%d", e.Local(), d.Local())
		}
	})
	g := rec.Graph()
	evs := g.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != Enq || evs[0].Val != 41 || !evs[0].Committed {
		t.Fatalf("event 0 wrong: %+v", evs[0])
	}
	// Program order yields lhb between same-thread commits.
	e0, e1 := evs[0].ID, evs[1].ID
	if !g.Lhb(e0, e1) {
		t.Fatal("e0 must happen-before e1 (same thread)")
	}
	if g.Lhb(e1, e0) || g.Lhb(e0, e0) {
		t.Fatal("lhb must be irreflexive and asymmetric here")
	}
	if len(g.CommitOrder) != 2 || g.CommitOrder[0] != e0 {
		t.Fatalf("commit order = %v", g.CommitOrder)
	}
}

func TestLogicalViewRidesOnReleaseAcquire(t *testing.T) {
	rec := NewRecorder("q")
	var flag view.Loc
	var dLog view.LogView
	var enqID, deqID view.EventID
	var sawEnq bool
	prog := machine.Program{
		Setup: func(th *machine.Thread) { flag = th.Alloc("flag", 0) },
		Workers: []func(*machine.Thread){
			func(th *machine.Thread) {
				enqID = rec.Begin(th, Enq, 7)
				rec.Arm(th, enqID)
				th.Write(flag, 1, memory.Rel) // commit instruction
				rec.Commit(th, enqID)
			},
			func(th *machine.Thread) {
				for th.Read(flag, memory.Acq) == 0 {
					th.Yield()
				}
				deqID = rec.CommitNew(th, Deq, 7)
				dLog = rec.Graph().Event(deqID).LogView.Clone()
				sawEnq = dLog.Has(enqID)
			},
		},
	}
	r := (&machine.Runner{}).Run(prog, machine.NewRandomBiased(1, 0.2))
	if r.Status != machine.OK {
		t.Fatalf("status = %v err = %v", r.Status, r.Err)
	}
	if !sawEnq {
		t.Fatalf("dequeue's logview %v must contain the enqueue acquired via rel/acq", dLog)
	}
	if !rec.Graph().Lhb(enqID, deqID) {
		t.Fatal("Lhb(enq, deq) must hold")
	}
}

func TestRelaxedPublishDoesNotTransferLogview(t *testing.T) {
	rec := NewRecorder("q")
	var flag view.Loc
	var rlxEnqID view.EventID
	var leaked bool
	prog := machine.Program{
		Setup: func(th *machine.Thread) { flag = th.Alloc("flag", 0) },
		Workers: []func(*machine.Thread){
			func(th *machine.Thread) {
				rlxEnqID = rec.Begin(th, Enq, 7)
				rec.Arm(th, rlxEnqID)
				th.Write(flag, 1, memory.Rlx) // relaxed: must not carry the clock
				rec.Commit(th, rlxEnqID)
			},
			func(th *machine.Thread) {
				for th.Read(flag, memory.Acq) == 0 {
					th.Yield()
				}
				leaked = Seen(th).Has(rlxEnqID)
			},
		},
	}
	r := (&machine.Runner{}).Run(prog, machine.NewRandomBiased(1, 0.2))
	if r.Status != machine.OK {
		t.Fatalf("status = %v err = %v", r.Status, r.Err)
	}
	if leaked {
		t.Fatal("relaxed write must not transfer the logical view")
	}
}

func TestSoAdjacency(t *testing.T) {
	rec := NewRecorder("q")
	var e, d view.EventID
	run(t, nil, func(th *machine.Thread) {
		e = rec.CommitNew(th, Enq, 1)
		d = rec.CommitNew(th, Deq, 1)
		rec.AddSo(e, d)
	})
	g := rec.Graph()
	if got := g.SoFrom(e); len(got) != 1 || got[0] != d {
		t.Fatalf("SoFrom(e) = %v", got)
	}
	if got := g.SoTo(d); len(got) != 1 || got[0] != e {
		t.Fatalf("SoTo(d) = %v", got)
	}
	if so := g.So(); len(so) != 1 || so[0] != [2]view.EventID{e, d} {
		t.Fatalf("So() = %v", so)
	}
}

func TestHelpingCommitForeign(t *testing.T) {
	rec := NewRecorder("x")
	var id1, id2 view.EventID
	run(t, nil, func(th *machine.Thread) {
		// Helpee begins its event (as another thread would); the helper
		// commits it, then itself, atomically in the commit order.
		id1 = rec.Begin(th, Exchange, 10)
		id2 = rec.Begin(th, Exchange, 20)
		rec.CommitForeign(th, id1, 20)
		rec.Commit(th, id2)
		rec.SetVal2(id2, 10)
		rec.AddSo(id1, id2)
		rec.AddSo(id2, id1)
	})
	g := rec.Graph()
	if len(g.CommitOrder) != 2 || g.CommitOrder[0] != id1 || g.CommitOrder[1] != id2 {
		t.Fatalf("commit order = %v, want [%d %d]", g.CommitOrder, id1, id2)
	}
	e1, e2 := g.Event(id1), g.Event(id2)
	if e1.Val != 10 || e1.Val2 != 20 || e2.Val != 20 || e2.Val2 != 10 {
		t.Fatalf("payloads wrong: %v %v", e1, e2)
	}
	// Helper committed both, so its own event sees the helpee.
	if !g.Lhb(id1, id2) {
		t.Fatal("helpee must be in helper's logview")
	}
}

func TestPendingExcluded(t *testing.T) {
	rec := NewRecorder("x")
	run(t, nil, func(th *machine.Thread) {
		rec.Begin(th, Exchange, 1) // never committed (retracted offer)
		rec.CommitNew(th, Exchange, 2)
	})
	g := rec.Graph()
	if len(g.Events()) != 1 {
		t.Fatalf("committed events = %d, want 1", len(g.Events()))
	}
	if p := g.Pending(); len(p) != 1 || p[0].ID.Local() != 0 {
		t.Fatalf("pending = %v", p)
	}
	if g.NumEvents() != 2 {
		t.Fatalf("NumEvents = %d, want 2", g.NumEvents())
	}
}

func TestDoubleCommitPanics(t *testing.T) {
	rec := NewRecorder("x")
	run(t, nil, func(th *machine.Thread) {
		id := rec.CommitNew(th, Enq, 1)
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			rec.Commit(th, id)
			return false
		}()
		if !panicked {
			th.Failf("expected panic on double commit")
		}
	})
}

func TestSeenSnapshotIsIndependent(t *testing.T) {
	rec := NewRecorder("q")
	run(t, nil, func(th *machine.Thread) {
		id := rec.CommitNew(th, Enq, 1)
		s := Seen(th)
		if !s.Has(id) {
			th.Failf("Seen must contain own commit")
		}
		s.Add(view.MakeEventID(99999, 0))
		if Seen(th).Has(view.MakeEventID(99999, 0)) {
			th.Failf("Seen must return an independent snapshot")
		}
	})
}

func TestLogviewExcludesSelfAndOnlyEarlierCommits(t *testing.T) {
	rec := NewRecorder("q")
	run(t, nil, func(th *machine.Thread) {
		for i := 0; i < 5; i++ {
			rec.CommitNew(th, Enq, int64(i))
		}
	})
	g := rec.Graph()
	for i, e := range g.Events() {
		if e.LogView.Has(e.ID) {
			t.Fatalf("event %v contains itself in logview", e)
		}
		if e.LogView.Len() != i {
			t.Fatalf("event %v logview size = %d, want %d", e, e.LogView.Len(), i)
		}
	}
}

func TestEventAndGraphString(t *testing.T) {
	rec := NewRecorder("q")
	var x, ed view.EventID
	run(t, nil, func(th *machine.Thread) {
		x = rec.CommitNew(th, Exchange, 5)
		rec.SetVal2(x, 6)
		ed = rec.CommitNew(th, EmpDeq, 0)
	})
	g := rec.Graph()
	if got := g.Event(x).String(); got != "e0:Exchange(5,6)" {
		t.Fatalf("String = %q", got)
	}
	if got := g.Event(ed).String(); got != "e1:Deq(ε)" {
		t.Fatalf("String = %q", got)
	}
	if s := g.String(); len(s) == 0 {
		t.Fatal("empty graph string")
	}
	for k, want := range map[Kind]string{Enq: "Enq", Deq: "Deq", EmpDeq: "Deq(ε)", Push: "Push",
		Pop: "Pop", EmpPop: "Pop(ε)", Exchange: "Exchange", LockAcq: "LockAcq", LockRel: "LockRel"} {
		if k.String() != want {
			t.Fatalf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
}
