package check_test

import (
	"strings"
	"testing"

	"compass/internal/check"
	"compass/internal/spec"
)

// refineSeed hunts down a seed whose execution Run attributes to the
// refinement oracle (a REFINE-* violation) on the blind-empty MSQueue
// mutant. The workload is single-threaded and deterministic, so every
// seed reproduces the same execution — but the test goes through Run's
// failure report to exercise the real diagnose-a-Failure workflow.
func refineSeed(t *testing.T) int64 {
	t.Helper()
	rep := check.Run("blind-empty/find-seed", refineOnly(blindQueueWorkload),
		check.Options{Executions: 50, Refine: true})
	for _, f := range rep.Failures {
		for _, v := range f.Violations {
			if strings.HasPrefix(v.Rule, "REFINE") {
				return f.Seed
			}
		}
	}
	t.Fatalf("no refine-attributed failure to replay: %s", rep)
	return 0
}

// TestExplainReproducesRefineViolation is the regression test for the
// replay/oracle divergence: Explain used to judge the replay with the
// bare consistency predicates (c.Evaluate) instead of the same evaluate
// path Run uses, so a refine-attributed failure replayed as a spurious
// pass. ExplainOpt with the original Options must reproduce the REFINE
// violation.
func TestExplainReproducesRefineViolation(t *testing.T) {
	seed := refineSeed(t)
	status, trace, viols := check.ExplainOpt(refineOnly(blindQueueWorkload), seed,
		check.Options{Refine: true})
	if !hasRefineViolation(viols) {
		t.Fatalf("ExplainOpt did not reproduce the REFINE violation (status %v, %d violations, %d trace lines): %v",
			status, len(viols), len(trace), viols)
	}
	// Sanity: without Refine the predicates alone still pass the mutant —
	// the violation above is genuinely the oracle's.
	_, _, noRefine := check.ExplainOpt(refineOnly(blindQueueWorkload), seed, check.Options{})
	if len(noRefine) != 0 {
		t.Fatalf("predicates-only replay unexpectedly failed: %v", noRefine)
	}
}

// TestTraceCheckedReproducesRefineViolation covers the structured replay
// sibling with the same fix.
func TestTraceCheckedReproducesRefineViolation(t *testing.T) {
	seed := refineSeed(t)
	res, viols := check.TraceCheckedOpt(refineOnly(blindQueueWorkload), seed,
		check.Options{Refine: true})
	if !hasRefineViolation(viols) {
		t.Fatalf("TraceCheckedOpt did not reproduce the REFINE violation (status %v): %v",
			res.Status, viols)
	}
	if len(res.Events) == 0 {
		t.Fatal("TraceCheckedOpt returned no step events")
	}
}

func hasRefineViolation(viols []spec.Violation) bool {
	for _, v := range viols {
		if strings.HasPrefix(v.Rule, "REFINE") {
			return true
		}
	}
	return false
}
