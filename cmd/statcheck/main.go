// Command statcheck validates telemetry artifacts emitted by the other
// front ends: JSON snapshots (-stats output) against the snapshot schema
// and Chrome trace files (-trace-out output) against the trace_event
// format. CI runs it on the files a litmus invocation writes.
//
//	go run ./cmd/statcheck -snapshot sb.json -trace sb.trace.json
//
// Exit status: 0 when every given file validates, 1 otherwise, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	snapshot := flag.String("snapshot", "", "telemetry JSON snapshot to validate")
	trace := flag.String("trace", "", "Chrome trace_event file to validate")
	flag.Parse()

	if *snapshot == "" && *trace == "" {
		fmt.Fprintln(os.Stderr, "statcheck: give -snapshot and/or -trace")
		os.Exit(2)
	}
	failed := false
	check := func(path, kind string, validate func([]byte) error) {
		if path == "" {
			return
		}
		data, err := os.ReadFile(path)
		if err == nil {
			err = validate(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "statcheck: %s: %v\n", kind, err)
			failed = true
			return
		}
		fmt.Printf("statcheck: %s %s OK\n", kind, path)
	}
	check(*snapshot, "snapshot", compass.ValidateTelemetryJSON)
	check(*trace, "trace", compass.ValidateChromeTraceJSON)
	if failed {
		os.Exit(1)
	}
}
