package view

import "testing"

func benchView(n int) View {
	v := New()
	for i := 0; i < n; i++ {
		v.Set(Loc(i), Time(i+1))
	}
	return v
}

func BenchmarkViewJoinInto16(b *testing.B) {
	a := benchView(16)
	c := benchView(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.JoinInto(c)
	}
}

func BenchmarkViewClone16(b *testing.B) {
	v := benchView(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Clone()
	}
}

func BenchmarkViewLeq16(b *testing.B) {
	a := benchView(16)
	c := benchView(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Leq(c)
	}
}

func BenchmarkLogViewJoin32(b *testing.B) {
	a := NewLog()
	c := NewLog()
	for i := 0; i < 32; i++ {
		a.Add(MakeEventID(1, i))
		c.Add(MakeEventID(2, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.JoinInto(c)
	}
}

func BenchmarkClockJoin(b *testing.B) {
	a := Clock{V: benchView(8), L: NewLog()}
	c := Clock{V: benchView(8), L: NewLog()}
	for i := 0; i < 8; i++ {
		c.L.Add(MakeEventID(1, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.JoinInto(c)
	}
}
