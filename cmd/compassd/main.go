// Command compassd is the verification service: it runs litmus and
// library workloads as sharded, resumable jobs behind a versioned HTTP
// API (/v1; the unversioned paths remain as deprecated aliases).
//
// Server mode:
//
//	go run ./cmd/compassd -addr localhost:8723 -state /var/lib/compassd
//
// Jobs shard their decision-prefix frontier across worker goroutines and
// checkpoint atomically every -checkpoint-every executions; SIGTERM (or
// SIGINT) pauses every job at its next segment boundary and exits, and a
// restart with the same -state resumes each unfinished job from its last
// checkpoint — on any -workers count — with a final result identical to
// an uninterrupted run's.
//
//	curl -s localhost:8723/v1/workloads
//	curl -s -X POST localhost:8723/v1/jobs -d '{"workload":"litmus/SB","por":"source"}'
//	curl -s localhost:8723/v1/jobs/<id>
//	curl -sN localhost:8723/v1/jobs/<id>/events   # NDJSON telemetry stream
//
// Peer mode joins a coordinator and processes leased frontier segments
// until interrupted; jobs submitted with "coordinator": true shard
// across every joined peer, survive peer SIGKILL via lease expiry, and
// merge to a result byte-identical to a single-process run:
//
//	go run ./cmd/compassd -join http://coordinator:8723 -peer-name worker-1
//
// Client mode fans the whole corpus (or a -filter substring of it)
// across a running server and waits for the verdicts:
//
//	go run ./cmd/compassd -client -server http://localhost:8723 -por source
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"compass/internal/serve"
)

func main() {
	var (
		client = flag.Bool("client", false, "run as batch client against -server instead of serving")
		addr   = flag.String("addr", "localhost:8723", "server listen address")
		state  = flag.String("state", "", "checkpoint directory; empty disables checkpoints and resume")
		worker = flag.Int("workers", 0, "default exploration workers per job (0 = GOMAXPROCS)")
		every  = flag.Int("checkpoint-every", 0, "executions per segment between checkpoints (0 = default)")

		join     = flag.String("join", "", "peer mode: coordinator base URL to lease work from")
		peerName = flag.String("peer-name", "", "peer mode: name in the coordinator's lease table (default host:pid)")

		server  = flag.String("server", "http://localhost:8723", "client mode: server base URL")
		filter  = flag.String("filter", "", "client mode: only workloads containing this substring")
		por     = flag.String("por", "source", "client mode: POR mode for exhaustive jobs (off|sleep|source)")
		libMode = flag.String("lib-mode", serve.ModeRandom, "client mode: mode for library workloads (exhaustive|random)")
		execs   = flag.Int("n", 0, "client mode: executions per random library job (0 = default)")
		maxRuns = flag.Int("max-runs", 0, "client mode: run cap per exhaustive job (0 = default)")
		refine  = flag.Bool("refine", true, "client mode: enable the refinement oracle on library jobs")
	)
	flag.Parse()

	if *client {
		os.Exit(runClient(*server, *filter, *por, *libMode, *execs, *maxRuns, *refine))
	}
	if *join != "" {
		os.Exit(runPeer(*join, *peerName, *worker, *every))
	}
	os.Exit(runServer(*addr, *state, *worker, *every))
}

func runServer(addr, state string, workers, every int) int {
	m, err := serve.NewManager(serve.Config{
		StateDir:        state,
		Workers:         workers,
		CheckpointEvery: every,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	resumed, finished, errs := m.Resume()
	for _, err := range errs {
		log.Printf("resume: skipping checkpoint: %v", err)
	}
	if resumed+finished > 0 {
		log.Printf("resumed %d unfinished job(s), loaded %d finished", resumed, finished)
	}

	srv := &http.Server{Addr: addr, Handler: serve.Handler(m)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if state != "" {
		log.Printf("compassd listening on %s (state %s)", addr, state)
	} else {
		log.Printf("compassd listening on %s (no state dir: jobs are not resumable)", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Print(err)
		return 1
	case s := <-sig:
		log.Printf("%s: pausing jobs at their next segment boundary", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancel()
	m.Shutdown()
	if state != "" {
		log.Printf("jobs checkpointed; restart with -state %s to resume", state)
	}
	return 0
}

// runPeer joins a coordinator and processes leases until interrupted.
func runPeer(base, name string, workers, every int) int {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("%s: finishing the current lease, then exiting", s)
		cancel()
	}()
	p := &serve.Peer{Base: base, Name: name, Workers: workers, PauseEvery: every}
	log.Printf("peer %s joining %s", name, base)
	n, err := p.Run(ctx)
	if err != nil {
		log.Printf("peer: %v", err)
		return 1
	}
	log.Printf("peer %s exiting: %d lease(s) completed", name, n)
	return 0
}

// runClient fans the registry across the service and reports verdicts.
func runClient(server, filter, por, libMode string, execs, maxRuns int, refine bool) int {
	names, err := fetchWorkloads(server)
	if err != nil {
		log.Print(err)
		return 1
	}
	var specs []serve.JobSpec
	for _, name := range names {
		if filter != "" && !strings.Contains(name, filter) {
			continue
		}
		sp := serve.JobSpec{Workload: name}
		if strings.HasPrefix(name, "litmus/") {
			sp.POR = por
			sp.MaxRuns = maxRuns
		} else {
			sp.Mode = libMode
			sp.Refine = refine
			if libMode == serve.ModeExhaustive {
				sp.POR = por
				sp.MaxRuns = maxRuns
			} else {
				sp.Executions = execs
			}
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		log.Printf("no workloads match filter %q", filter)
		return 1
	}

	ids := make(map[string]string, len(specs)) // job ID -> workload
	for _, sp := range specs {
		view, err := submitJob(server, sp)
		if err != nil {
			log.Printf("%s: %v", sp.Workload, err)
			return 1
		}
		ids[view.ID] = sp.Workload
		fmt.Printf("submitted %-24s %s\n", sp.Workload, view.ID)
	}

	fail := 0
	pending := make([]string, 0, len(ids))
	for id := range ids {
		pending = append(pending, id)
	}
	sort.Strings(pending)
	for len(pending) > 0 {
		next := pending[:0]
		for _, id := range pending {
			view, err := getJob(server, id)
			if err != nil {
				log.Printf("%s: %v", id, err)
				return 1
			}
			if view.Status == serve.StatusRunning {
				next = append(next, id)
				continue
			}
			verdict := "PASS"
			switch {
			case view.Status == serve.StatusFailed:
				verdict = "ERROR " + view.Error
				fail++
			case view.Result == nil || !view.Result.Passed:
				verdict = "FAIL"
				fail++
			}
			fmt.Printf("%-24s runs=%-7d complete=%-5v %s\n",
				ids[id], view.Runs, view.Result != nil && view.Result.Complete, verdict)
		}
		pending = next
		if len(pending) > 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}
	if fail > 0 {
		fmt.Printf("%d of %d jobs failed\n", fail, len(ids))
		return 1
	}
	fmt.Printf("all %d jobs passed\n", len(ids))
	return 0
}

func fetchWorkloads(server string) ([]string, error) {
	resp, err := http.Get(server + "/v1/workloads")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/workloads: %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}

func submitJob(server string, sp serve.JobSpec) (serve.JobView, error) {
	var view serve.JobView
	body, err := json.Marshal(sp)
	if err != nil {
		return view, err
	}
	resp, err := http.Post(server+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return view, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	return view, err
}

func getJob(server, id string) (serve.JobView, error) {
	var view serve.JobView
	resp, err := http.Get(server + "/v1/jobs/" + id)
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return view, fmt.Errorf("GET /v1/jobs/%s: %s", id, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	return view, err
}
