package queue_test

import (
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/queue"
	"compass/internal/spec"
	"compass/internal/view"
)

func ringFactory(th *machine.Thread) queue.Queue { return queue.NewRing(th, "ring", 64) }

// ringWeak runs the mixed workload checking CheckQueueWeakEmpty (the spec
// the ring actually satisfies).
func ringWeak(level spec.Level, producers, perProducer, consumers, attempts int) func() check.Checked {
	return func() check.Checked {
		var q queue.Queue
		return check.Checked{
			Prog: machine.Program{
				Name:    "ring-weak",
				Setup:   func(th *machine.Thread) { q = ringFactory(th) },
				Workers: makeRingWorkers(&q, producers, perProducer, consumers, attempts),
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckQueueWeakEmpty(q.Recorder().Graph(), level))
			},
		}
	}
}

func makeRingWorkers(q *queue.Queue, producers, perProducer, consumers, attempts int) []func(*machine.Thread) {
	var workers []func(*machine.Thread)
	for p := 0; p < producers; p++ {
		p := p
		workers = append(workers, func(th *machine.Thread) {
			for i := 0; i < perProducer; i++ {
				(*q).Enqueue(th, int64(1000*(p+1)+i+1))
			}
		})
	}
	for c := 0; c < consumers; c++ {
		workers = append(workers, func(th *machine.Thread) {
			for i := 0; i < attempts; i++ {
				(*q).TryDequeue(th)
			}
		})
	}
	return workers
}

func TestRingWeakEmptySpec(t *testing.T) {
	requirePass(t, check.Run("ring/weak-empty",
		ringWeak(spec.LevelHB, 2, 3, 2, 4),
		check.Options{Executions: 400, StaleBias: 0.6}))
}

func TestRingFailsAbsLevelWithTwoProducers(t *testing.T) {
	// Like the Herlihy-Wing queue, the ring's abstract state is not
	// constructible at its commit points: producer A can claim slot 0 and
	// publish after producer B published slot 1, so the dequeue of slot 0
	// contradicts the commit-order state.
	requireFailureFound(t, check.Run("ring/abs",
		ringWeak(spec.LevelAbsHB, 2, 3, 2, 4),
		check.Options{Executions: 600, StaleBias: 0.6}))
}

func TestRingViolatesEmpDeqWithTwoProducers(t *testing.T) {
	// The documented weakness needs external synchronization to become
	// observable as lhb: producer A claims position 0; producer B enqueues
	// (possibly position 1) and raises a flag; the consumer acquires the
	// flag — so B's enqueue happens-before its dequeue — yet can still see
	// position 0 unpublished and report empty → QUEUE-EMPDEQ violated.
	build := func() check.Checked {
		var q queue.Queue
		var flag view.Loc
		return check.Checked{
			Prog: machine.Program{
				Name: "ring-mp-2prod",
				Setup: func(th *machine.Thread) {
					q = ringFactory(th)
					flag = th.Alloc("flag", 0)
				},
				Workers: []func(*machine.Thread){
					func(th *machine.Thread) { q.Enqueue(th, 1001) },
					func(th *machine.Thread) {
						q.Enqueue(th, 2001)
						th.Write(flag, 1, memory.Rel)
					},
					func(th *machine.Thread) {
						for th.Read(flag, memory.Acq) == 0 {
							th.Yield()
						}
						q.TryDequeue(th)
					},
				},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckQueue(q.Recorder().Graph(), spec.LevelHB))
			},
		}
	}
	requireFailureFound(t, check.Run("ring/empdeq-mp", build,
		check.Options{Executions: 2000, StaleBias: 0.6}))
}

func TestRingSingleProducerSatisfiesFullSpec(t *testing.T) {
	// With one producer the unpublished-hole scenario needs two claimants
	// and cannot arise: the full spec (including EMPDEQ) holds.
	requirePass(t, check.Run("ring/spsc-full",
		check.QueueMixed(ringFactory, spec.LevelHB, 1, 4, 2, 4),
		check.Options{Executions: 600, StaleBias: 0.6}))
}

func TestRingSPSCClient(t *testing.T) {
	requirePass(t, check.Run("ring/spsc",
		check.SPSC(ringFactory, spec.LevelHB, 6),
		check.Options{Executions: 300, StaleBias: 0.5}))
}

func TestRingSequential(t *testing.T) {
	build := func() check.Checked {
		var q queue.Queue
		return check.Checked{
			Prog: machine.Program{
				Setup: func(th *machine.Thread) { q = ringFactory(th) },
				Workers: []func(*machine.Thread){func(th *machine.Thread) {
					if _, ok := q.TryDequeue(th); ok {
						th.Failf("dequeue from empty succeeded")
					}
					q.Enqueue(th, 1)
					q.Enqueue(th, 2)
					if v, ok := q.TryDequeue(th); !ok || v != 1 {
						th.Failf("deq = %d,%v; want 1", v, ok)
					}
					if v, ok := q.TryDequeue(th); !ok || v != 2 {
						th.Failf("deq = %d,%v; want 2", v, ok)
					}
				}},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckQueue(q.Recorder().Graph(), spec.LevelSC))
			},
		}
	}
	requirePass(t, check.Run("ring/seq", build, check.Options{Executions: 20}))
}

func TestRingCapacityExceeded(t *testing.T) {
	f := func(th *machine.Thread) queue.Queue { return queue.NewRing(th, "ring", 2) }
	rep := check.Run("ring/cap", check.QueueMixed(f, spec.LevelHB, 1, 3, 0, 0),
		check.Options{Executions: 5})
	requireFailureFound(t, rep)
}

func TestRingRejectsNonPositive(t *testing.T) {
	prog := machine.Program{
		Workers: []func(*machine.Thread){func(th *machine.Thread) {
			q := queue.NewRing(th, "ring", 4)
			q.Enqueue(th, 0)
		}},
	}
	res := (&machine.Runner{}).Run(prog, machine.NewRandom(1))
	if res.Status != machine.Failed {
		t.Fatalf("status = %v, want Failed", res.Status)
	}
}
