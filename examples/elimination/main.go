// Command elimination reproduces the compositional verification of §4.1:
// the elimination stack — a Treiber base stack composed with an exchanger,
// with no additional atomic instructions — is driven under contention and
// its event graph is checked against the same stack specs as the base,
// together with the base stack's and the exchanger's own consistency. The
// run also reports how often elimination (an exchange-matched push/pop
// pair, committed atomically by the exchange helper) actually happened.
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	pairs := flag.Int("pairs", 2, "pusher/popper thread pairs")
	rounds := flag.Int("rounds", 2, "operations per thread")
	execs := flag.Int("n", 1000, "number of random executions")
	hist := flag.Bool("hist", false, "check the ES graph at LAT_hb^hist instead of LAT_hb")
	flag.Parse()

	level := compass.LevelHB
	if *hist {
		level = compass.LevelHist
	}
	rep := compass.RunChecked("elimination-stack",
		compass.ElimStackComposedWorkload(level, *pairs, *rounds),
		compass.CheckOptions{Executions: *execs, StaleBias: 0.5})
	fmt.Println(rep)
	if !rep.Passed() {
		os.Exit(1)
	}

	// Count eliminations across a sample of executions.
	eliminations, executions := 0, 0
	for seed := int64(1); seed <= 200; seed++ {
		var s *compass.ElimStack
		var workers []func(*compass.Thread)
		for p := 0; p < 3; p++ {
			p := p
			workers = append(workers, func(th *compass.Thread) {
				for i := 0; i < 2; i++ {
					s.Push(th, int64(100*(p+1)+i+1))
					s.Pop(th)
				}
			})
		}
		prog := compass.Program{
			Setup:   func(th *compass.Thread) { s = compass.NewElimStack(th, "es") },
			Workers: workers,
		}
		res := compass.CheckOptions{}.Runner(false).Run(prog, compass.NewRandomStrategyBiased(seed, 0.5))
		if res.Status != compass.StatusOK {
			continue
		}
		executions++
		for _, e := range s.Exchanger().Recorder().Graph().Events() {
			if e.Val2 != compass.ExFail {
				eliminations++
			}
		}
	}
	fmt.Printf("\nelimination rate: %d matched exchange events across %d contended executions\n",
		eliminations, executions)
	fmt.Println("the ES satisfies the same stack specs as its base (§4.1), checked per execution.")
}
