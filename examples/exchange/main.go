// Command exchange reproduces the exchanger spec of §4.2 (Fig. 5) and its
// derived resource-transfer spec: n threads exchange values through a
// single exchanger, and the consistency checker validates symmetric
// matching, value swapping, atomic pair commits (helping), and call
// overlap. The resource client then exchanges *ownership*: two threads
// swap non-atomic cells through the exchanger and read each other's secret
// race-free — exactly the resource-exchange reasoning the paper derives.
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	threads := flag.Int("threads", 4, "number of exchanging threads")
	patience := flag.Int("patience", 6, "exchange attempts before giving up")
	execs := flag.Int("n", 1000, "number of random executions")
	flag.Parse()

	factory := func(th *compass.Thread) *compass.Exchanger { return compass.NewExchanger(th, "x") }

	rep := compass.RunChecked("exchanger-pairs",
		compass.ExchangerPairsWorkload(factory, *threads, *patience),
		compass.CheckOptions{Executions: *execs, StaleBias: 0.5})
	fmt.Println(rep)
	if !rep.Passed() {
		os.Exit(1)
	}

	rep = compass.RunChecked("resource-exchange",
		compass.ResourceExchangeClient(factory),
		compass.CheckOptions{Executions: *execs, StaleBias: 0.5})
	fmt.Println(rep)
	if !rep.Passed() {
		os.Exit(1)
	}
	fmt.Println("\nExchangerConsistent (Fig. 5) and the derived resource-transfer spec")
	fmt.Println("verified on every explored execution.")
}
