# Developer entry points. `make check` is the gate for every change: the
# harness and explorer are concurrent, so the race detector is mandatory,
# and the repo's own invariants (determinism, telemetry accounting, option
# sentinels, runner construction, ordering constants) are compiler-checked
# by compasslint. CI's lint job runs `make check`, so the flags here and
# there are identical by construction.

GO ?= go

.PHONY: check lint build vet test race bench benchreport fuzz fuzznative golden telemetry serve servesmoke shardsmoke plan

check: lint build race

# Static analysis: go vet plus the repo's own analyzer suite (see
# DESIGN.md §9 and internal/analyzers).
lint: vet
	$(GO) run ./cmd/compasslint ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Differential fuzzing smoke: a clean sweep over all libraries must stay
# silent, and a seeded mutant must be caught and shrunk. Longer campaigns:
# `go run ./cmd/fuzz -duration 5m` (see README and DESIGN.md §7).
fuzz:
	$(GO) run ./cmd/fuzz -duration 10s -q
	$(GO) run ./cmd/fuzz -lib treiber -mutate relaxed-push -expect-failure -q

# Native Go fuzz targets, short deterministic pass over the seed corpus
# plus a bounded fuzzing run each.
FUZZTIME ?= 30s
fuzznative:
	$(GO) test -fuzz FuzzViewOps -fuzztime $(FUZZTIME) ./internal/view
	$(GO) test -fuzz FuzzMemorySteps -fuzztime $(FUZZTIME) ./internal/memory

# Golden litmus corpus: verify the reachable-outcome sets; regenerate
# deliberately with `make golden UPDATE=-update` after an intentional
# memory-model change.
golden:
	$(GO) test ./internal/litmus -run TestGoldenLitmusCorpus $(UPDATE)

# Telemetry artifact smoke: emit stats + Chrome trace from a litmus run
# and validate both against their schemas (what CI's telemetry job does).
telemetry:
	$(GO) run ./cmd/litmus -test SB -por=source -prune -plan -stats /tmp/compass_sb.json -trace-out /tmp/compass_sb.trace.json
	$(GO) run ./cmd/statcheck -snapshot /tmp/compass_sb.json -trace /tmp/compass_sb.trace.json

# Regenerate the committed static access-plan fixture from the suite
# sources (internal/analysis/staticplan/testdata/plans.json), then verify
# it round-trips. The planstale lint pass and TestPlansFresh fail until a
# workload edit that changes its plan is followed by this target.
plan:
	$(GO) test ./internal/analysis/staticplan -run TestPlansFresh -update -count=1
	$(GO) test ./internal/analysis/staticplan -run TestPlansFresh -count=1

# Run the verification service with a persistent checkpoint directory;
# SIGTERM pauses jobs at their next segment boundary and a restart
# resumes them (see README "Verification as a service").
STATEDIR ?= /tmp/compassd-state
serve:
	$(GO) run ./cmd/compassd -addr localhost:8723 -state $(STATEDIR)

# compassd crash smoke: the kill/resume identity matrix plus the re-exec
# SIGKILL test (a real process killed mid-frontier, resumed on a
# different worker count, final report diffed against an uninterrupted
# run). CI's compassd job runs these and a shell-level binary smoke.
servesmoke:
	$(GO) test ./internal/serve -run 'TestKillResume|TestSIGKILLResume' -count=1 -v

# Multi-process sharding smoke: the lease matrix (two peers vs
# single-process byte-identity, peer SIGKILLed mid-lease, coordinator
# crash + epoch-bumped resume, idempotent returns) and the /v1 HTTP
# lifecycle. CI's compassd-shard job runs these and a shell-level
# coordinator + two-peer smoke with one peer killed mid-run.
shardsmoke:
	$(GO) test ./internal/serve -run 'TestShard|TestHTTP|TestSubmitDuringShutdown|TestKillResumeDedup' -count=1 -v

# Quick benchmark pass over the tier-1 set (see cmd/benchreport).
bench:
	$(GO) test -run '^$$' -bench 'ViewClone16|ReleaseWrite|T1EffortTable|ExhaustiveMP' -benchmem . ./internal/view ./internal/memory

# Full tier-1 snapshot written to BENCH_<date>.json.
benchreport:
	$(GO) run ./cmd/benchreport
