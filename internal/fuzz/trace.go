package fuzz

import (
	"fmt"
	"math/rand"

	"compass/internal/check"
	"compass/internal/machine"
)

// TraceExecution replays one representative execution of a finished
// campaign with step-event recording, for Chrome trace export: the first
// failure's minimized schedule when the campaign found one, otherwise the
// first execution of the first generated program. Both replays derive
// every seed from cfg, so the exported trace is deterministic for a fixed
// (cfg, rep) pair and therefore golden-testable.
func TraceExecution(cfg Config, rep *Report) (*machine.Result, string, error) {
	cfg = cfg.norm()
	if rep != nil && len(rep.Failures) > 0 {
		f := rep.Failures[0]
		inst, err := Build(f.Program)
		if err != nil {
			return nil, "", fmt.Errorf("trace: rebuild failure: %w", err)
		}
		r := check.Options{Budget: cfg.Budget}.Runner(true).
			Run(inst.Checked.Prog, machine.ReplayStrategy(f.Decisions))
		return r, "failure " + f.Key, nil
	}
	genSeed := deriveSeed(cfg.Seed, streamGen, 0)
	p := Generate(rand.New(rand.NewSource(genSeed)), cfg.Gen)
	inst, err := Build(p)
	if err != nil {
		return nil, "", fmt.Errorf("trace: build program 0: %w", err)
	}
	execSeed := deriveSeed(deriveSeed(cfg.Seed, streamExec, 0), streamStep, 0)
	r := check.Options{Budget: cfg.Budget}.Runner(true).
		Run(inst.Checked.Prog, machine.NewRandomBiased(execSeed, cfg.StaleBias))
	return r, fmt.Sprintf("%s program 0 exec 0", p.Lib), nil
}
