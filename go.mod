module compass

go 1.23
