// Command experiments regenerates every table and figure of the paper's
// evaluation on the executable COMPASS stack (see EXPERIMENTS.md for the
// paper-vs-measured record). Output is markdown.
//
//	go run ./cmd/experiments              # all experiments, default scale
//	go run ./cmd/experiments -n 500       # more executions per cell
//	go run ./cmd/experiments -only F2,L1  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compass/internal/experiments"
)

func main() {
	execs := flag.Int("n", 300, "executions per experiment cell")
	seed := flag.Int64("seed", 1, "first scheduler seed")
	stale := flag.Float64("stale", 0.5, "stale-read bias in [0,1]")
	workers := flag.Int("workers", 0, "parallel harness workers per run (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated experiment ids (F1,F1B,F2,F3,F4,F5,E1,E2,T1,T2,L1,A1,X1,W1,W2,M1)")
	flag.Parse()

	cfg := experiments.Config{
		Executions: *execs, Seed: *seed, StaleBias: *stale, Workers: *workers, Out: os.Stdout,
	}

	byID := map[string]func(experiments.Config) experiments.Summary{
		"L1":  experiments.L1Litmus,
		"F1":  experiments.Fig1MP,
		"F2":  experiments.Fig2SpecMatrix,
		"F3":  experiments.Fig3DeqPerm,
		"F4":  experiments.Fig4HistStack,
		"F5":  experiments.Fig5Exchanger,
		"E1":  experiments.E1ElimStack,
		"E2":  experiments.E2SPSC,
		"T1":  experiments.T1Effort,
		"T2":  experiments.T2CheckerCost,
		"A1":  experiments.A1Ablations,
		"F1B": experiments.F1bSpecStrength,
		"X1":  experiments.X1Exhaustive,
		"M1":  experiments.M1RingQueue,
		"W2":  experiments.W2Reclamation,
		"W1":  experiments.W1WorkStealing,
	}

	fmt.Println("# COMPASS experiments")
	fmt.Printf("\nexecutions per cell: %d, seed: %d, stale bias: %.2f\n", *execs, *seed, *stale)

	var sums []experiments.Summary
	if *only == "" {
		sums = experiments.All(cfg)
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			f, ok := byID[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			sums = append(sums, f(cfg))
		}
		fmt.Printf("\n## Summary\n\n")
		for _, s := range sums {
			fmt.Printf("- %s\n", s)
		}
	}
	for _, s := range sums {
		if !s.OK {
			os.Exit(1)
		}
	}
}
