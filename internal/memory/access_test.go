package memory

import (
	"testing"

	"compass/internal/view"
)

func TestIndependentSymmetric(t *testing.T) {
	kinds := []AccessKind{AccNone, AccRead, AccWrite, AccRMW, AccFence, AccAlloc, AccFree, AccReport}
	locs := []view.Loc{0, 1}
	names := []string{"", "a", "b"}
	var all []Access
	for _, k := range kinds {
		for _, l := range locs {
			for _, n := range names {
				all = append(all, Access{Kind: k, Loc: l, Name: n})
			}
		}
	}
	for _, a := range all {
		for _, b := range all {
			if Independent(a, b) != Independent(b, a) {
				t.Fatalf("Independent not symmetric on %+v, %+v", a, b)
			}
		}
	}
}

func TestIndependentRelation(t *testing.T) {
	rd := func(l view.Loc) Access { return Access{Kind: AccRead, Loc: l} }
	wr := func(l view.Loc) Access { return Access{Kind: AccWrite, Loc: l} }
	rep := func(n string) Access { return Access{Kind: AccReport, Name: n} }
	cases := []struct {
		name string
		a, b Access
		want bool
	}{
		{"yield vs anything", Access{Kind: AccNone}, wr(0), true},
		{"yield vs fence", Access{Kind: AccNone}, Access{Kind: AccFence}, true},
		{"read/read same loc", rd(3), rd(3), true},
		{"read/write same loc", rd(3), wr(3), false},
		{"write/write same loc", wr(3), wr(3), false},
		{"read/write disjoint", rd(3), wr(4), true},
		{"write/write disjoint", wr(3), wr(4), true},
		{"rmw vs disjoint read", Access{Kind: AccRMW, Loc: 3}, rd(4), false},
		{"rmw vs rmw disjoint", Access{Kind: AccRMW, Loc: 3}, Access{Kind: AccRMW, Loc: 4}, false},
		{"fence vs read", Access{Kind: AccFence}, rd(0), false},
		{"alloc vs alloc", Access{Kind: AccAlloc}, Access{Kind: AccAlloc}, false},
		{"alloc vs write", Access{Kind: AccAlloc}, wr(0), false},
		{"free vs read", Access{Kind: AccFree, Loc: 3}, rd(4), false},
		{"report vs report same name", rep("x"), rep("x"), false},
		{"report vs report distinct names", rep("x"), rep("y"), true},
		{"report vs write", rep("x"), wr(0), true},
		{"report vs fence", rep("x"), Access{Kind: AccFence}, true},
		{"report vs rmw", rep("x"), Access{Kind: AccRMW, Loc: 0}, true},
	}
	for _, c := range cases {
		if got := Independent(c.a, c.b); got != c.want {
			t.Errorf("%s: Independent(%+v, %+v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}
