package speccover_test

import (
	"testing"

	"compass/internal/analyzers/lint/linttest"
	"compass/internal/analyzers/speccover"
)

// TestGolden diffs the analyzer against its testdata corpus: every
// `// want` line must produce a matching diagnostic and nothing else
// may be reported.
func TestGolden(t *testing.T) {
	linttest.Run(t, speccover.Analyzer, "../testdata/speccover")
}
