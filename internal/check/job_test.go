package check_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/spec"
)

// msqueueBuild is a small exhaustively-explorable library workload
// (por_test.go's msqueue @ hb instance): ~72 executions with POR off,
// fewer under the reductions.
func msqueueBuild() func() check.Checked {
	return check.QueueMixed(func(th *machine.Thread) queue.Queue {
		return queue.NewMS(th, "q")
	}, spec.LevelHB, 1, 1, 1, 1)
}

// jobReportKey flattens the Report fields the checkpoint invariant
// promises to preserve into a comparable string. (parallel_test.go's
// reportKey compares seed sequences, which exhaustive runs don't have.)
func jobReportKey(rep *check.Report) string {
	return fmt.Sprintf("execs=%d ok=%d discarded=%d unknown=%d steps=%d complete=%v failures=%d",
		rep.Executions, rep.OK, rep.Discarded, rep.Unknown, rep.Steps, rep.Complete, len(rep.Failures))
}

// TestExhaustJobSegmentsMatchUninterrupted proves the checkpoint
// invariant at the check level: an exhaustive job paused every few runs —
// with the frontier JSON-round-tripped between segments and the worker
// count re-sharded per segment — accumulates a Report identical to one
// uninterrupted exploration, in every POR mode.
func TestExhaustJobSegmentsMatchUninterrupted(t *testing.T) {
	for _, por := range []check.PORMode{check.POROff, check.PORSleep, check.PORSource} {
		t.Run(fmt.Sprint(por), func(t *testing.T) {
			opt := check.Options{Mode: check.ModeExhaustive, Budget: 4000, Refine: true, POR: por}
			want := check.Run("msqueue/uninterrupted", msqueueBuild(), opt)
			if !want.Complete {
				t.Fatalf("baseline did not complete: %s", want)
			}

			j := check.NewExhaustJob("msqueue/segmented")
			workers := []int{1, 4, 2}
			segments := 0
			for !j.Done {
				segOpt := opt
				segOpt.Workers = workers[segments%len(workers)]
				j.RunSegment(msqueueBuild(), segOpt, 5)
				segments++
				if j.Done {
					break
				}
				// Model a process death between segments: the frontier
				// survives only as bytes, the job is rebuilt from them.
				data, err := json.Marshal(j.Frontier)
				if err != nil {
					t.Fatalf("marshal frontier: %v", err)
				}
				f := &machine.Frontier{}
				if err := json.Unmarshal(data, f); err != nil {
					t.Fatalf("unmarshal frontier: %v", err)
				}
				j = check.ResumeExhaustJob(j.Report, f)
			}
			if segments < 2 {
				t.Fatalf("job finished in %d segment(s); want an actual pause", segments)
			}
			if got, wantKey := jobReportKey(j.Report), jobReportKey(want); got != wantKey {
				t.Fatalf("segmented report diverged after %d segments:\nuninterrupted %s\nsegmented     %s",
					segments, wantKey, got)
			}
		})
	}
}

// TestExhaustJobMaxRunsSpansSegments pins that MaxRuns bounds the job,
// not the segment: a job resumed after a pause stops once the cumulative
// execution count reaches the bound.
func TestExhaustJobMaxRunsSpansSegments(t *testing.T) {
	opt := check.Options{Mode: check.ModeExhaustive, Budget: 4000, MaxRuns: 7}
	j := check.NewExhaustJob("msqueue/bounded")
	for !j.Done {
		j.RunSegment(msqueueBuild(), opt, 3)
	}
	if j.Report.Complete {
		t.Fatalf("MaxRuns 7 unexpectedly completed the tree: %s", j.Report)
	}
	if j.Report.Executions != 7 {
		t.Fatalf("job executed %d runs across segments; MaxRuns is 7", j.Report.Executions)
	}
}
