package spec

import (
	"compass/internal/core"
)

// SeqDeque is the sequential work-stealing deque semantics: the owner
// pushes and takes at the back, thieves steal from the front.
type SeqDeque struct{}

// Name implements SeqObject.
func (SeqDeque) Name() string { return "deque" }

// Init implements SeqObject.
func (SeqDeque) Init() SeqState { return dequeState(nil) }

type dequeState []int64 // front = steal end, back = owner end

func (s dequeState) Apply(e *core.Event, strict bool) (SeqState, bool) {
	switch e.Kind {
	case core.Push:
		return append(s[:len(s):len(s)], e.Val), true
	case core.Pop: // owner take: back
		if len(s) == 0 || s[len(s)-1] != e.Val {
			return s, false
		}
		return s[:len(s)-1], true
	case core.Steal: // thief: front
		if len(s) == 0 || s[0] != e.Val {
			return s, false
		}
		return s[1:], true
	case core.EmpPop, core.EmpSteal:
		return s, !strict || len(s) == 0
	}
	return s, false
}

func (s dequeState) Key() string { return keyOf([]int64(s)) }

// CheckDeque checks the work-stealing deque consistency conditions — the
// COMPASS-style spec for the paper's §6 future-work library:
//
//   - DEQUE-KINDS/SO-SHAPE: owner events are Push/Pop/EmpPop from a single
//     thread; thieves produce Steal/EmpSteal; so relates a push to exactly
//     one consumer (owner take or steal).
//   - DEQUE-MATCHES / DEQUE-UNIQ: consumed values were pushed, and every
//     element is consumed at most once (the condition the missing-SC-fence
//     ablation violates through the take/steal race).
//   - SO-LHB / SO-VIEW: matched pairs synchronize (lhb + view transfer).
//   - DEQUE-EMP: an element whose push happens-before an empty take/steal
//     must be consumed (existence; the owner's take has a commit window, so
//     no commit-index strictness is imposed — see the package docs).
//
// LevelAbsHB/LevelHist/LevelSC additionally interpret the history against
// SeqDeque.
func CheckDeque(g *core.Graph, level Level) Result {
	res := Result{Level: level}
	checkLogviewCommitClosed(g, &res)
	checkSoImpliesLhbAndViews(g, &res)

	ownerThread := -1
	consDeg := map[int64]int{}
	prodDeg := map[int64]int{}
	for _, p := range g.So() {
		e, d := g.Event(p[0]), g.Event(p[1])
		if e.Kind != core.Push || (d.Kind != core.Pop && d.Kind != core.Steal) {
			res.addf("DEQUE-SO-SHAPE", "so edge (%v, %v) is not Push→{Pop,Steal}", e, d)
			continue
		}
		if e.Val != d.Val {
			res.addf("DEQUE-MATCHES", "%v consumed a value different from its push %v", d, e)
		}
		consDeg[int64(d.ID)]++
		prodDeg[int64(p[0])]++
	}
	for id, n := range prodDeg {
		if n > 1 {
			res.addf("DEQUE-UNIQ", "push e%d consumed %d times (take/steal race)", id, n)
		}
	}
	for _, e := range g.Events() {
		switch e.Kind {
		case core.Push, core.Pop, core.EmpPop:
			if ownerThread == -1 {
				ownerThread = e.Thread
			} else if e.Thread != ownerThread {
				res.addf("DEQUE-OWNER", "owner operations from threads %d and %d", ownerThread, e.Thread)
			}
			if e.Kind == core.Pop && consDeg[int64(e.ID)] != 1 {
				res.addf("DEQUE-MATCHED", "take %v matched %d times", e, consDeg[int64(e.ID)])
			}
		case core.Steal:
			if consDeg[int64(e.ID)] != 1 {
				res.addf("DEQUE-MATCHED", "steal %v matched %d times", e, consDeg[int64(e.ID)])
			}
		case core.EmpSteal:
		default:
			res.addf("DEQUE-KINDS", "foreign event %v in deque graph", e)
		}
	}
	// DEQUE-EMP: visible pushes must be consumed somewhere.
	prodToCons, _ := matchOf(g)
	for _, d := range g.Events() {
		if d.Kind != core.EmpPop && d.Kind != core.EmpSteal {
			continue
		}
		for _, e := range g.Events() {
			if e.Kind != core.Push || !g.Lhb(e.ID, d.ID) {
				continue
			}
			if _, ok := prodToCons[e.ID]; !ok {
				res.addf("DEQUE-EMP", "%v happens-before %v but is never consumed", e, d)
			}
		}
	}
	switch level {
	case LevelAbsHB:
		ReplayCommitOrder(g, SeqDeque{}, false, &res)
	case LevelHist:
		CheckHist(g, SeqDeque{}, 0, &res)
	case LevelSC:
		ReplayCommitOrder(g, SeqDeque{}, true, &res)
	}
	return res
}
