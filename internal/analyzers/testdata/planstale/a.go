// Package planstale is the golden corpus for the planstale analyzer.
package planstale

import (
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

type entry struct {
	Name  string
	Build func() machine.Program
}

// Corpus is the plan suite the fixture files pin.
//
//compass:plan-suite
func Corpus() []entry {
	return []entry{
		{
			Name: "solo",
			Build: func() machine.Program {
				var x view.Loc
				return machine.Program{
					Setup: func(th *machine.Thread) { x = th.Alloc("x", 0) },
					Workers: []func(*machine.Thread){
						func(th *machine.Thread) { th.Write(x, 1, memory.Rel) },
					},
					Final: func(th *machine.Thread) { th.Read(x, memory.Acq) },
				}
			},
		},
	}
}

// fresh pins a fixture that matches extraction.
//
//compass:plan-fixture fresh.json
func fresh() {} // ok: fixture is current

// stale pins a fixture whose content has drifted from the sources.
//
//compass:plan-fixture stale.json
func stale() {} // want `plan fixture stale\.json is stale`

// missing pins a fixture that was never generated.
//
//compass:plan-fixture missing.json
func missing() {} // want `plan fixture missing\.json does not exist`

// bare forgets the path argument.
//
//compass:plan-fixture
func bare() {} // want `plan-fixture directive needs a path argument`
