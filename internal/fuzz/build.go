package fuzz

import (
	"compass/internal/check"
	"compass/internal/core"
	"compass/internal/deque"
	"compass/internal/exchanger"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/queue"
	"compass/internal/refine"
	"compass/internal/spec"
	"compass/internal/stack"
	"compass/internal/view"
)

// oracleMaxEvents bounds the SC-oracle linearizability search; bigger
// histories report unknown instead of burning exponential time. Generated
// programs stay well under this.
const oracleMaxEvents = 20

// ringCap sizes the bounded structures (HW queue, Chase-Lev deque) — far
// above any generated program's op count, so capacity never interferes.
const ringCap = 64

// Instance is a runnable, checkable instantiation of a Program: a fresh
// machine.Program (fresh library object, locations, recorders) plus the
// spec and SC-oracle evaluation over the graphs it commits. Instances are
// single-use — build a new one for every execution.
type Instance struct {
	Checked check.Checked
	// Graphs returns the library event graph(s) committed by the run (the
	// elimination stack contributes three); nil for lib "none".
	Graphs func() []*core.Graph
}

// libOps are the per-library interpretations of the four library op kinds.
// Build fills them so the worker interpreter is library-agnostic; the
// normalization documented on the Op kinds lives here.
type libOps struct {
	produce  func(th *machine.Thread, t int, op Op)
	consume  func(th *machine.Thread, t int, op Op)
	steal    func(th *machine.Thread, t int, op Op)
	exchange func(th *machine.Thread, t int, op Op)
}

func patience(op Op) int {
	p := int(op.Arg)
	if p < 0 {
		p = 0
	}
	if p > 4 {
		p = 4
	}
	return p
}

// Build instantiates the program. The returned instance's Checked carries
// all three cross-checks: the library's structural spec at a level its
// correct implementation provably satisfies, the SC refinement oracle over
// the observed history, and — via the machine itself plus the inline
// coherence assertions in the raw-op interpreter — race/UB-freedom and
// per-location monotonicity. Any violation on an unmutated program is a
// bug in the machine or a library; on a mutated program it is the injected
// bug resurfacing.
func Build(p Program) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inst := &Instance{}
	var (
		locs []view.Loc // shared raw atomic locations
		priv []view.Loc // one private non-atomic cell per thread
		ops  libOps
	)

	// Per-library state, populated by setup; the checks read the recorders
	// after the run through these same pointers.
	var (
		ms *queue.MSQueue
		hw *queue.HWQueue
		tr *stack.Treiber
		es *stack.ElimStack
		ex *exchanger.Exchanger
		dq *deque.Deque
	)

	noop := func(th *machine.Thread, t int, op Op) { th.Yield() }

	var setupLib func(th *machine.Thread)
	switch p.Lib {
	case "none":
		ops = libOps{produce: noop, consume: noop, steal: noop, exchange: noop}
		setupLib = func(th *machine.Thread) {}
	case "msqueue":
		setupLib = func(th *machine.Thread) { ms = newMSQueue(th, p.Mutant) }
		enq := func(th *machine.Thread, t int, op Op) { ms.Enqueue(th, op.Val) }
		deq := func(th *machine.Thread, t int, op Op) { ms.TryDequeue(th) }
		ops = libOps{produce: enq, consume: deq, steal: deq, exchange: deq}
		inst.Graphs = func() []*core.Graph { return []*core.Graph{ms.Recorder().Graph()} }
		inst.Checked.Check = func() ([]spec.Violation, int) {
			return check.Collect(spec.CheckQueue(ms.Recorder().Graph(), spec.LevelAbsHB))
		}
		inst.Checked.Oracle = func() ([]spec.Violation, int) {
			return check.SCOracle(ms.Recorder().Graph(), spec.SeqQueue{}, oracleMaxEvents, false)
		}
		inst.Checked.Refine = refine.Checker(refine.Queue, func() *core.Graph { return ms.Recorder().Graph() })
	case "hwqueue":
		setupLib = func(th *machine.Thread) { hw = newHWQueue(th, p.Mutant, ringCap) }
		enq := func(th *machine.Thread, t int, op Op) { hw.Enqueue(th, op.Val) }
		deq := func(th *machine.Thread, t int, op Op) { hw.TryDequeue(th) }
		ops = libOps{produce: enq, consume: deq, steal: deq, exchange: deq}
		inst.Graphs = func() []*core.Graph { return []*core.Graph{hw.Recorder().Graph()} }
		inst.Checked.Check = func() ([]spec.Violation, int) {
			return check.Collect(spec.CheckQueue(hw.Recorder().Graph(), spec.LevelHB))
		}
		inst.Checked.Oracle = func() ([]spec.Violation, int) {
			return check.SCOracle(hw.Recorder().Graph(), spec.SeqQueue{}, oracleMaxEvents, false)
		}
		inst.Checked.Refine = refine.Checker(refine.Queue, func() *core.Graph { return hw.Recorder().Graph() })
	case "treiber":
		setupLib = func(th *machine.Thread) { tr = newTreiber(th, p.Mutant) }
		push := func(th *machine.Thread, t int, op Op) { tr.Push(th, op.Val) }
		pop := func(th *machine.Thread, t int, op Op) { tr.Pop(th) }
		ops = libOps{produce: push, consume: pop, steal: pop, exchange: pop}
		inst.Graphs = func() []*core.Graph { return []*core.Graph{tr.Recorder().Graph()} }
		inst.Checked.Check = func() ([]spec.Violation, int) {
			return check.Collect(spec.CheckStack(tr.Recorder().Graph(), spec.LevelHB))
		}
		inst.Checked.Oracle = func() ([]spec.Violation, int) {
			return check.SCOracle(tr.Recorder().Graph(), spec.SeqStack{}, oracleMaxEvents, true)
		}
		inst.Checked.Refine = refine.Checker(refine.Stack, func() *core.Graph { return tr.Recorder().Graph() })
	case "elimstack":
		setupLib = func(th *machine.Thread) { es = stack.NewElim(th, "es") }
		push := func(th *machine.Thread, t int, op Op) { es.Push(th, op.Val) }
		pop := func(th *machine.Thread, t int, op Op) { es.Pop(th) }
		ops = libOps{produce: push, consume: pop, steal: pop, exchange: pop}
		inst.Graphs = func() []*core.Graph {
			return []*core.Graph{
				es.Recorder().Graph(),
				es.Base().Recorder().Graph(),
				es.Exchanger().Recorder().Graph(),
			}
		}
		inst.Checked.Check = func() ([]spec.Violation, int) {
			// The compositional obligation of §4.1: the ES graph at the
			// stack spec, plus the component specs it relies on.
			return check.Collect(
				spec.CheckStack(es.Recorder().Graph(), spec.LevelHB),
				spec.CheckStack(es.Base().Recorder().Graph(), spec.LevelHB),
				spec.CheckExchanger(es.Exchanger().Recorder().Graph()),
			)
		}
		inst.Checked.Oracle = func() ([]spec.Violation, int) {
			return check.SCOracle(es.Recorder().Graph(), spec.SeqStack{}, oracleMaxEvents, true)
		}
		// The compositional refinement obligation mirrors Check's: every
		// constituent graph refines its own abstract object.
		inst.Checked.Refine = refine.Checkers(
			refine.Checker(refine.Stack, func() *core.Graph { return es.Recorder().Graph() }),
			refine.Checker(refine.Stack, func() *core.Graph { return es.Base().Recorder().Graph() }),
			refine.Checker(refine.Exchanger, func() *core.Graph { return es.Exchanger().Recorder().Graph() }),
		)
	case "exchanger":
		setupLib = func(th *machine.Thread) { ex = newExchanger(th, p.Mutant) }
		xch := func(th *machine.Thread, t int, op Op) { ex.Exchange(th, op.Val, patience(op)) }
		// Consumes have no value to offer; give them a scheduling point.
		ops = libOps{produce: xch, consume: noop, steal: noop, exchange: xch}
		inst.Graphs = func() []*core.Graph { return []*core.Graph{ex.Recorder().Graph()} }
		inst.Checked.Check = func() ([]spec.Violation, int) {
			return check.Collect(spec.CheckExchanger(ex.Recorder().Graph()))
		}
		inst.Checked.Refine = refine.Checker(refine.Exchanger, func() *core.Graph { return ex.Recorder().Graph() })
	case "deque":
		setupLib = func(th *machine.Thread) { dq = newDeque(th, p.Mutant, ringCap) }
		// Worker 0 owns the deque; its steals degrade to takes, and every
		// other thread's owner ops degrade to steals.
		ops = libOps{
			produce: func(th *machine.Thread, t int, op Op) {
				if t == 0 {
					dq.PushBottom(th, op.Val)
				} else {
					dq.Steal(th)
				}
			},
			consume: func(th *machine.Thread, t int, op Op) {
				if t == 0 {
					dq.TakeBottom(th)
				} else {
					dq.Steal(th)
				}
			},
		}
		ops.steal = ops.consume
		ops.exchange = ops.consume
		inst.Graphs = func() []*core.Graph { return []*core.Graph{dq.Recorder().Graph()} }
		inst.Checked.Check = func() ([]spec.Violation, int) {
			return check.Collect(spec.CheckDeque(dq.Recorder().Graph(), spec.LevelHB))
		}
		inst.Checked.Oracle = func() ([]spec.Violation, int) {
			return check.SCOracle(dq.Recorder().Graph(), spec.SeqDeque{}, oracleMaxEvents, false)
		}
		inst.Checked.Refine = refine.Checker(refine.Deque, func() *core.Graph { return dq.Recorder().Graph() })
	}
	if p.NoRefine {
		inst.Checked.Refine = nil
	}

	workers := make([]func(*machine.Thread), len(p.Threads))
	for t := range p.Threads {
		t := t
		thOps := p.Threads[t]
		workers[t] = func(th *machine.Thread) {
			// lastTS[l] is the coherence frontier: the thread's view of raw
			// location l after its latest access. The machine maintains Cur
			// monotonically, so a backwards step here is a machine bug.
			lastTS := make([]view.Time, len(locs))
			coherent := func(l int) {
				ts := th.TV().Cur.V.Get(locs[l])
				if ts < lastTS[l] {
					th.Failf("coherence violated: T%d view of raw loc %d went backwards (%d < %d)",
						t, l, ts, lastTS[l])
				}
				lastTS[l] = ts
			}
			for _, op := range thOps {
				switch op.Kind {
				case OpProduce:
					ops.produce(th, t, op)
				case OpConsume:
					ops.consume(th, t, op)
				case OpSteal:
					ops.steal(th, t, op)
				case OpExchange:
					ops.exchange(th, t, op)
				case OpRead:
					m, _ := readMode(op.RMode)
					th.Read(locs[op.Loc], m)
					coherent(op.Loc)
				case OpWrite:
					m, _ := writeMode(op.WMode)
					th.Write(locs[op.Loc], op.Val, m)
					coherent(op.Loc)
				case OpCAS:
					rm, _ := readMode(op.RMode)
					wm, _ := writeMode(op.WMode)
					th.CAS(locs[op.Loc], op.Arg, op.Val, rm, wm)
					coherent(op.Loc)
				case OpFAA:
					rm, _ := readMode(op.RMode)
					wm, _ := writeMode(op.WMode)
					th.FetchAdd(locs[op.Loc], op.Val, rm, wm)
					coherent(op.Loc)
				case OpFenceAcq:
					th.Fence(true, false)
				case OpFenceRel:
					th.Fence(false, true)
				case OpFenceSC:
					th.FenceSC()
				case OpNA:
					// The private cell is only ever touched by this thread,
					// so non-atomic accesses are race-free by construction
					// and the read-back must see the write.
					th.Write(priv[t], op.Val, memory.NA)
					if got := th.Read(priv[t], memory.NA); got != op.Val {
						th.Failf("non-atomic read-back: wrote %d, read %d", op.Val, got)
					}
				case OpYield:
					th.Yield()
				}
			}
		}
	}

	inst.Checked.Prog = machine.Program{
		Name: "fuzz-" + p.Lib,
		Setup: func(th *machine.Thread) {
			setupLib(th)
			locs = make([]view.Loc, p.Locs)
			for i := range locs {
				locs[i] = th.Alloc("raw", 0)
			}
			priv = make([]view.Loc, len(p.Threads))
			for i := range priv {
				priv[i] = th.Alloc("priv", 0)
			}
		},
		Workers: workers,
	}
	return inst, nil
}
