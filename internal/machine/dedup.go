package machine

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// DefaultDedupCap is the visited-set entry cap when NewDedup is given a
// non-positive one. At 40 bytes of map+list overhead per 16-byte key this
// bounds the set near 64 MiB — large enough that the litmus and library
// corpora never evict (evictions make run counts order-dependent; see
// Dedup.CheckAndMark).
const DefaultDedupCap = 1 << 20

// fingerprintLen is the visited-set key width: the first 16 bytes of a
// SHA-256 over the canonical state encoding. 128 bits keeps the
// accidental-collision probability below 2^-88 even at a billion states,
// and a collision is the only way dedup could unsoundly cut a subtree —
// canonicalization collisions are by construction isomorphic states.
const fingerprintLen = 16

// Fingerprint is a canonical state digest used as a visited-set key.
type Fingerprint [fingerprintLen]byte

// fingerprintOf digests one canonical state encoding.
func fingerprintOf(canon []byte) Fingerprint {
	sum := sha256.Sum256(canon)
	var fp Fingerprint
	copy(fp[:], sum[:fingerprintLen])
	return fp
}

// Dedup is a bounded set of canonical state fingerprints shared by the
// runs of one exhaustive exploration. The first run to reach a state
// claims its fingerprint and explores the subtree; every later arrival
// is cut short as Deduped. Bounded: at the cap the least-recently-hit
// fingerprint is evicted (counted in telemetry), after which its state
// can be claimed — and its subtree explored — again. That never loses
// outcomes, only pruning.
//
// Safe for concurrent use by the parallel explorer's workers.
type Dedup struct {
	mu  sync.Mutex
	cap int
	m   map[Fingerprint]*list.Element
	lru *list.List // front = most recently hit; values are Fingerprint
}

// NewDedup returns an empty visited set holding at most cap fingerprints
// (DefaultDedupCap if cap <= 0).
func NewDedup(cap int) *Dedup {
	if cap <= 0 {
		cap = DefaultDedupCap
	}
	return &Dedup{
		cap: cap,
		m:   make(map[Fingerprint]*list.Element),
		lru: list.New(),
	}
}

// Cap returns the entry cap.
func (d *Dedup) Cap() int { return d.cap }

// Len returns the current entry count.
func (d *Dedup) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}

// checkAndMark claims the fingerprint of the given canonical encoding.
// It returns true when the fingerprint was already present (the caller's
// state is a duplicate and its subtree must be cut), false when this
// caller claimed it first. Hits refresh LRU position; first claims may
// evict the coldest entry.
func (d *Dedup) checkAndMark(canon []byte, stats *telemetry.Stats) bool {
	fp := fingerprintOf(canon)
	d.mu.Lock()
	if el, ok := d.m[fp]; ok {
		d.lru.MoveToFront(el)
		d.mu.Unlock()
		stats.DedupHit()
		return true
	}
	d.m[fp] = d.lru.PushFront(fp)
	evicted := false
	if d.lru.Len() > d.cap {
		back := d.lru.Back()
		delete(d.m, back.Value.(Fingerprint))
		d.lru.Remove(back)
		evicted = true
	}
	d.mu.Unlock()
	stats.DedupMiss()
	if evicted {
		stats.DedupEvicted()
	}
	return false
}

// freeDecider is implemented by strategies that can distinguish free
// scheduling decisions from prefix-pinned replays. The runner consults
// the dedup set only at free decisions: a replayed prefix retraces a path
// whose states were claimed by the run that pushed the prefix, and
// cutting a replay there would abandon the very subtree the prefix
// assigns. TraceStrategy implements it; random strategies do not, which
// is what keeps dedup an exhaustive-exploration-only mechanism.
type freeDecider interface {
	// FreeDecisions reports whether scheduling decisions are now free
	// (the replay prefix, if any, is exhausted).
	FreeDecisions() bool
}

// Per-thread op-history opcodes. Folded with each operation's canonical
// operands and observed results, they pin a deterministic thread body's
// program position: equal histories mean the thread has performed the
// same operation sequence with the same results, hence sits at the same
// local state.
const (
	opAlloc uint64 = iota + 1
	opRead
	opWrite
	opFree
	opFence
	opFenceSC
	opCAS
	opFAA
	opXchg
	opUpdate
	opYield
	opReport
)

// foldOp folds one completed operation into thread tid's rolling
// op-history hash. Two independent 64-bit lanes (different mix constants
// and pre-rotation) push accidental-collision probability far below the
// fingerprint's own 128-bit budget. No-op unless dedup is armed.
func (c *controller) foldOp(tid int, vs ...uint64) {
	if c.opHist == nil {
		return
	}
	h := &c.opHist[tid]
	for _, v := range vs {
		h[0] = (h[0] ^ v) * 1099511628211
		h[1] = (h[1] ^ bits.RotateLeft64(v, 31)) * 0xff51afd7ed558ccd
	}
}

// canonLoc returns the stable canonical ID assigned to l at Alloc time
// (0 when dedup is off and no IDs are tracked).
func (c *controller) canonLoc(l view.Loc) uint64 {
	if c.opHist == nil {
		return 0
	}
	return c.locCanon[l]
}

// b2u encodes a bool for hashing.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// strHash is FNV-1a over a string, for outcome and report names.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// appendDedupState appends the canonical encoding of everything that
// determines the run's continuation beyond the caller-supplied thread
// lifecycle bytes: the memory (histories, views, SC clock), each
// thread's view state and op history, the POR bookkeeping (pending
// accesses, sleep and done masks, read floors — included because two
// paths can reach isomorphic states with different sleep sets, and
// cutting a run whose sleep set is smaller than the claimant's would
// unsoundly drop the continuations only the smaller set explores), and
// the outcome map in sorted name order (cross-thread report interleaving
// on the same name is invisible to per-thread histories).
func (c *controller) appendDedupState(buf []byte, tvs []*memory.ThreadView) []byte {
	o := c.mem.CanonicalOrder()
	buf = c.mem.AppendCanon(buf, o)
	for tid, tv := range tvs {
		if tv == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			buf = o.AppendCanonThread(buf, tv)
		}
		h := c.opHist[tid]
		buf = binary.LittleEndian.AppendUint64(buf, h[0])
		buf = binary.LittleEndian.AppendUint64(buf, h[1])
		if c.por != POROff {
			p := c.pending[tid]
			buf = append(buf, byte(p.Kind))
			switch p.Kind {
			case memory.AccRead, memory.AccWrite, memory.AccRMW, memory.AccFree:
				buf = binary.LittleEndian.AppendUint64(buf, c.locCanon[p.Loc])
			case memory.AccReport:
				buf = binary.LittleEndian.AppendUint64(buf, strHash(p.Name))
			}
			if c.floors != nil {
				buf = binary.AppendUvarint(buf, uint64(c.floors[tid]))
			}
		}
	}
	if c.por != POROff {
		buf = binary.LittleEndian.AppendUint64(buf, c.sleep)
		buf = binary.LittleEndian.AppendUint64(buf, c.doneMask)
	}
	// Keys are collected and then sorted, so visit order cannot leak
	// into the fingerprint.
	//compass:orderinsensitive
	names := make([]string, 0, len(c.outcome))
	for k := range c.outcome {
		names = append(names, k)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, k := range names {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendVarint(buf, c.outcome[k])
	}
	return buf
}

// dedupJSON is the serialized form: the cap plus the fingerprints in LRU
// order (most recent first), hex-encoded. Serializing the visited set
// into checkpoints is what keeps a resumed dedup job's run count
// byte-identical to an uninterrupted one: without it, states claimed
// before the kill would be re-claimed after.
type dedupJSON struct {
	Cap  int      `json:"cap"`
	Keys []string `json:"keys"`
}

// MarshalJSON serializes the cap and all fingerprints in LRU order.
func (d *Dedup) MarshalJSON() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := dedupJSON{Cap: d.cap, Keys: make([]string, 0, d.lru.Len())}
	for el := d.lru.Front(); el != nil; el = el.Next() {
		fp := el.Value.(Fingerprint)
		j.Keys = append(j.Keys, hex.EncodeToString(fp[:]))
	}
	return json.Marshal(j)
}

// UnmarshalJSON rebuilds the set with the serialized LRU order.
func (d *Dedup) UnmarshalJSON(data []byte) error {
	var j dedupJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Cap <= 0 {
		j.Cap = DefaultDedupCap
	}
	if len(j.Keys) > j.Cap {
		return fmt.Errorf("machine: dedup snapshot has %d keys, cap %d", len(j.Keys), j.Cap)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cap = j.Cap
	d.m = make(map[Fingerprint]*list.Element, len(j.Keys))
	d.lru = list.New()
	for _, k := range j.Keys {
		raw, err := hex.DecodeString(k)
		if err != nil || len(raw) != fingerprintLen {
			return fmt.Errorf("machine: bad dedup key %q", k)
		}
		var fp Fingerprint
		copy(fp[:], raw)
		if _, dup := d.m[fp]; dup {
			return fmt.Errorf("machine: duplicate dedup key %q", k)
		}
		d.m[fp] = d.lru.PushBack(fp) // keys arrive most-recent-first
	}
	return nil
}
