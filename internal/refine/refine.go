// Package refine implements the refinement (forward-simulation) oracle:
// an operational characterization of each library, independent of the
// declarative consistency predicates in internal/spec.
//
// Each library gets an abstract-object transition system (ATS): abstract
// states are the object's contents as *producer events* (not bare
// values), and transitions consume or produce elements with explicit
// visibility obligations. The checker searches for an abstract trace —
// a total order of the committed events, each step a legal ATS
// transition — that the concrete execution refines. The search order
// must extend two relations derived independently of the spec layer's
// synchronized-with edges:
//
//   - the recorded logical view (lhb): an event fires after everything
//     it has observed;
//   - the po floor: program order per thread, re-derived from Thread and
//     StartStep, so an operation can never "forget" its own thread's
//     earlier operations even if its recorded view claims otherwise.
//
// Consuming transitions (Deq/Pop/Steal, matched exchanges, lock
// acquisitions) carry a view-transfer obligation: the producer (the
// matched element's enqueue, the exchange partner, the previous release)
// must be in the consumer's effective view. Failing operations (empty
// dequeues/pops/steals, failed exchanges) are *external steps* in the
// sense of Dalvandi & Dongol's refinement treatment of C11 libraries:
// they fire without changing the abstract state, and a stale empty
// observation is legal exactly when no currently-present element's
// producer is in the observer's effective view — the thread could not
// have known the object was non-empty. The deque weakens this to the
// existence-only DEQUE-EMP rule (a visible present element only refutes
// emptiness if nobody ever consumes it): the owner's take claims its
// element with a transient bottom decrement before the take commits, so
// a thief can honestly observe emptiness while a visible element is
// still abstractly present.
//
// Disagreement between this oracle and the consistency predicates is the
// differential fuzzer's highest-value signal: one of the two library
// characterizations is wrong.
package refine

import (
	"fmt"
	"math/bits"
	"sort"

	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/spec"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// Library selects the abstract transition system to simulate against.
type Library int

// The five abstract objects with transition systems.
const (
	Queue Library = iota
	Stack
	Deque
	Exchanger
	Lock
)

func (l Library) String() string {
	switch l {
	case Queue:
		return "queue"
	case Stack:
		return "stack"
	case Deque:
		return "deque"
	case Exchanger:
		return "exchanger"
	case Lock:
		return "lock"
	}
	return fmt.Sprintf("Library(%d)", int(l))
}

// DefaultMaxEvents bounds the simulation search instance size; graphs
// with more committed events report unknown rather than failure.
const DefaultMaxEvents = 24

// Options configures one refinement check.
type Options struct {
	// MaxEvents bounds the search instance (0 = DefaultMaxEvents; the
	// hard cap is 62 events, the bitmask width).
	MaxEvents int
	// Stats receives the abstract-state fan-out histogram (the number of
	// enabled transitions at each expanded search node) and may be nil.
	Stats *telemetry.Stats
}

// ctx is the per-check precomputation: committed events, the
// must-precede masks (recorded view ∪ po floor) and the effective-view
// masks used by the transition obligations.
type ctx struct {
	events []*core.Event
	n      int
	// preds[i] is the bitmask of events that must fire before event i in
	// any abstract trace.
	preds []uint64
	// eff[i] is event i's effective view: its recorded logical view plus
	// the po floor — every po-earlier same-thread event and everything
	// those events observed. Recorded logical views are transitively
	// closed (they are clock joins), so eff is too.
	eff []uint64
	// partner[i] is the exchange partner's index for successful
	// exchanges, -1 otherwise.
	partner []int
	// consumedVal marks values some consuming event (Deq/Pop/Steal)
	// takes somewhere in the graph — the deque's existence-only empty
	// rule quantifies over it.
	consumedVal map[int64]bool
	stats       *telemetry.Stats
}

// newCtx derives the precedence and effective-view masks from the graph.
// The po floor is re-derived from Thread and StartStep — deliberately
// not from the recorded views, so a spec-encoding bug that forgets a
// thread's own history cannot blind the simulation.
func newCtx(g *core.Graph, stats *telemetry.Stats) *ctx {
	events := g.Events()
	c := &ctx{events: events, n: len(events), stats: stats}
	pos := map[view.EventID]int{}
	for i, e := range events {
		pos[e.ID] = i
	}
	logmask := make([]uint64, c.n)
	c.consumedVal = map[int64]bool{}
	for i, e := range events {
		for _, p := range e.LogView.Events() {
			if j, ok := pos[p]; ok {
				logmask[i] |= 1 << uint(j)
			}
		}
		if e.Kind == core.Deq || e.Kind == core.Pop || e.Kind == core.Steal {
			c.consumedVal[e.Val] = true
		}
	}
	c.preds = make([]uint64, c.n)
	c.eff = make([]uint64, c.n)
	copy(c.preds, logmask)
	copy(c.eff, logmask)
	// Per-thread program order: all events of one thread are totally
	// ordered by StartStep (commit-order index breaks the rare tie of an
	// instantaneous commit followed immediately by the next Begin).
	byThread := map[int][]int{}
	for i, e := range events {
		byThread[e.Thread] = append(byThread[e.Thread], i)
	}
	for _, idxs := range byThread {
		sort.Slice(idxs, func(a, b int) bool {
			ia, ib := idxs[a], idxs[b]
			if events[ia].StartStep != events[ib].StartStep {
				return events[ia].StartStep < events[ib].StartStep
			}
			return ia < ib
		})
		var floor, poMask uint64
		for _, i := range idxs {
			c.preds[i] |= poMask
			c.eff[i] |= floor
			poMask |= 1 << uint(i)
			floor |= 1<<uint(i) | logmask[i]
		}
	}
	return c
}

// sees reports whether event i's effective view contains event j.
func (c *ctx) sees(i, j int) bool { return c.eff[i]&(1<<uint(j)) != 0 }

// state is one abstract object state. apply attempts to fire event i:
// it returns the successor state, a mask of partner events fired
// together with i (exchanger pairs), and whether the transition is
// enabled. mask is the set of already-fired events.
type state interface {
	key() string
	apply(c *ctx, i int, mask uint64) (state, uint64, bool)
}

// kindsOK verifies the graph contains only the library's event kinds.
func kindsOK(lib Library, k core.Kind) bool {
	switch lib {
	case Queue:
		return k == core.Enq || k == core.Deq || k == core.EmpDeq
	case Stack:
		return k == core.Push || k == core.Pop || k == core.EmpPop
	case Deque:
		return k == core.Push || k == core.Pop || k == core.EmpPop ||
			k == core.Steal || k == core.EmpSteal
	case Exchanger:
		return k == core.Exchange
	case Lock:
		return k == core.LockAcq || k == core.LockRel
	}
	return false
}

// initState returns the library's initial abstract state.
func initState(lib Library) state {
	switch lib {
	case Queue:
		return seqElems{kind: Queue}
	case Stack:
		return seqElems{kind: Stack}
	case Deque:
		return seqElems{kind: Deque}
	case Exchanger:
		return exchState{}
	case Lock:
		return lockState{holder: -1, lastRel: -1}
	}
	panic("refine: unknown library")
}

// seqElems is the abstract state of the container objects: the present
// elements as producer-event indices, front first. The queue consumes at
// the front, the stack at the back (its push end), the deque at the back
// for owner takes and at the front for steals.
type seqElems struct {
	kind  Library
	elems string // one byte per producer index (n ≤ 62 fits a byte)
}

func (s seqElems) key() string { return s.elems }

// knownNonEmpty reports whether any present element's producer is in
// event i's effective view — the condition under which an empty
// observation is illegal (the thread knew of an unconsumed element).
func (s seqElems) knownNonEmpty(c *ctx, i int) bool {
	for k := 0; k < len(s.elems); k++ {
		if c.sees(i, int(s.elems[k])) {
			return true
		}
	}
	return false
}

// consume fires consumer i against the element at position at: the
// value must match and the producer must be in the consumer's effective
// view (view transfer from producer to consumer).
func (s seqElems) consume(c *ctx, i, at int) (state, bool) {
	j := int(s.elems[at])
	if c.events[j].Val != c.events[i].Val || !c.sees(i, j) {
		return s, false
	}
	s.elems = s.elems[:at] + s.elems[at+1:]
	return s, true
}

func (s seqElems) apply(c *ctx, i int, mask uint64) (state, uint64, bool) {
	e := c.events[i]
	switch e.Kind {
	case core.Enq, core.Push:
		s.elems += string(byte(i))
		return s, 0, true
	case core.Deq, core.Steal: // FIFO end
		if len(s.elems) == 0 {
			return s, 0, false
		}
		next, ok := s.consume(c, i, 0)
		return next, 0, ok
	case core.Pop: // LIFO end
		if len(s.elems) == 0 {
			return s, 0, false
		}
		next, ok := s.consume(c, i, len(s.elems)-1)
		return next, 0, ok
	case core.EmpDeq, core.EmpPop, core.EmpSteal:
		if s.kind == Deque {
			// The deque's empty rule is existence-only, mirroring
			// DEQUE-EMP: the owner's take claims its element (a transient
			// bottom decrement) before committing, so a thief can honestly
			// observe emptiness while a visible element is still abstractly
			// present — as long as that element is consumed somewhere. Only
			// a visible element nobody ever consumes refutes the
			// observation.
			for k := 0; k < len(s.elems); k++ {
				j := int(s.elems[k])
				if c.sees(i, j) && !c.consumedVal[c.events[j].Val] {
					return s, 0, false
				}
			}
			return s, 0, true
		}
		// External step: legal iff the observer knows of no present
		// element (stale emptiness about unobserved elements is allowed).
		return s, 0, !s.knownNonEmpty(c, i)
	}
	return s, 0, false
}

// exchState is the exchanger's abstract state: empty — matched pairs
// fire atomically and failed exchanges are external steps.
type exchState struct{}

func (exchState) key() string { return "" }

func (s exchState) apply(c *ctx, i int, mask uint64) (state, uint64, bool) {
	if c.events[i].Val2 == core.ExFail {
		// External step: an exchange that observed no partner.
		return s, 0, true
	}
	j := c.partner[i]
	if j < 0 || mask&(1<<uint(j)) != 0 {
		return s, 0, false
	}
	// The pair fires atomically; each side may cite the other as a
	// predecessor, but everything else both sides require must have
	// fired. At least one side must have observed the other — a matched
	// exchange with no visibility in either direction transferred
	// nothing and refines no atomic exchange.
	pairBits := uint64(1)<<uint(i) | uint64(1)<<uint(j)
	if c.preds[i]&^mask&^pairBits != 0 || c.preds[j]&^mask&^pairBits != 0 {
		return s, 0, false
	}
	if !c.sees(i, j) && !c.sees(j, i) {
		return s, 0, false
	}
	return s, 1 << uint(j), true
}

// lockState is the lock's abstract state: the holding acquisition's
// event index (-1 when free) and the last release's index.
type lockState struct {
	holder, lastRel int
}

func (s lockState) key() string { return fmt.Sprintf("%d,%d", s.holder, s.lastRel) }

func (s lockState) apply(c *ctx, i int, mask uint64) (state, uint64, bool) {
	switch c.events[i].Kind {
	case core.LockAcq:
		if s.holder >= 0 {
			return s, 0, false
		}
		// View transfer: the critical section's effects reach the next
		// holder — the previous release must be in the acquirer's
		// effective view.
		if s.lastRel >= 0 && !c.sees(i, s.lastRel) {
			return s, 0, false
		}
		s.holder = i
		return s, 0, true
	case core.LockRel:
		if s.holder < 0 || c.events[s.holder].Thread != c.events[i].Thread {
			return s, 0, false
		}
		s.lastRel = i
		s.holder = -1
		return s, 0, true
	}
	return s, 0, false
}

// matchExchanges pairs successful exchanges by crossed payloads
// (e.Val2 == p.Val ∧ e.Val == p.Val2), each event in exactly one pair.
// Pairs with identical crossed payloads are interchangeable, so greedy
// matching in commit order is complete. Returns false if some
// successful exchange has no partner.
func (c *ctx) matchExchanges() (int, bool) {
	c.partner = make([]int, c.n)
	for i := range c.partner {
		c.partner[i] = -1
	}
	for i, e := range c.events {
		if e.Val2 == core.ExFail || c.partner[i] >= 0 {
			continue
		}
		for j := i + 1; j < c.n; j++ {
			p := c.events[j]
			if p.Val2 == core.ExFail || c.partner[j] >= 0 {
				continue
			}
			if p.Val == e.Val2 && p.Val2 == e.Val {
				c.partner[i], c.partner[j] = j, i
				break
			}
		}
		if c.partner[i] < 0 {
			return i, false
		}
	}
	return 0, true
}

// Check searches for an abstract trace of lib's transition system that
// the committed events of g refine. It returns the violations found and
// the number of undecided checks (instances exceeding the search bound
// report unknown, not failure).
func Check(lib Library, g *core.Graph, opt Options) ([]spec.Violation, int) {
	maxEvents := opt.MaxEvents
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	c := newCtx(g, opt.Stats)
	for _, e := range c.events {
		if !kindsOK(lib, e.Kind) {
			return []spec.Violation{{
				Rule:   "REFINE-KINDS",
				Detail: fmt.Sprintf("foreign event %v in %s graph", e, lib),
			}}, 0
		}
	}
	if lib == Exchanger {
		if i, ok := c.matchExchanges(); !ok {
			return []spec.Violation{{
				Rule: "REFINE-MATCH",
				Detail: fmt.Sprintf("successful exchange %v has no partner with crossed payloads",
					c.events[i]),
			}}, 0
		}
	}
	if c.n > maxEvents || c.n > 62 {
		return nil, 1
	}
	full := uint64(1)<<uint(c.n) - 1
	failed := map[string]bool{}
	best := 0
	var dfs func(mask uint64, st state) bool
	dfs = func(mask uint64, st state) bool {
		if n := bits.OnesCount64(mask); n > best {
			best = n
		}
		if mask == full {
			return true
		}
		key := fmt.Sprintf("%x|%s", mask, st.key())
		if failed[key] {
			return false
		}
		fanout := 0
		done := false
		for i := 0; i < c.n && !done; i++ {
			bit := uint64(1) << uint(i)
			// An exchange pair fires atomically, so each side may cite
			// the other as a predecessor; apply rechecks both sides.
			excl := bit
			if c.partner != nil && c.partner[i] >= 0 {
				excl |= 1 << uint(c.partner[i])
			}
			if mask&bit != 0 || c.preds[i]&^mask&^excl != 0 {
				continue
			}
			next, extra, ok := st.apply(c, i, mask)
			if !ok {
				continue
			}
			fanout++
			if dfs(mask|bit|extra, next) {
				done = true
			}
		}
		opt.Stats.RefineFanout(fanout)
		if done {
			return true
		}
		failed[key] = true
		return false
	}
	if dfs(0, initState(lib)) {
		return nil, 0
	}
	return []spec.Violation{{
		Rule: "REFINE-SIM",
		Detail: fmt.Sprintf("no abstract %s trace refines the %d committed events (longest simulated prefix %d)",
			lib, c.n, best),
	}}, 0
}

// CheckTrace is Check plus the step-stream cross-validation: when the
// result carries the typed StepEvent stream (Runner.Trace), the
// committed events' step stamps are checked against the instructions
// the machine actually executed (rule REFINE-STREAM).
func CheckTrace(lib Library, g *core.Graph, r *machine.Result, opt Options) ([]spec.Violation, int) {
	viols := streamCheck(g, r)
	v, unknown := Check(lib, g, opt)
	return append(viols, v...), unknown
}

// streamCheck validates the committed events against the typed step
// stream. Each recorded StepEvent corresponds 1:1, in order, to one
// memory step — the counter Begin/Commit snapshot — so the k-th stream
// entry is memory step k. The checks:
//
//   - an event's [StartStep, CommitStep] window lies within the stream;
//   - the operation's own thread executed at least one instruction in a
//     non-empty window (instantaneous commits have an empty window);
//   - per thread, operations are serial: program order (by StartStep)
//     has nondecreasing commit steps and the next operation begins no
//     earlier than the previous one committed.
func streamCheck(g *core.Graph, r *machine.Result) []spec.Violation {
	if r == nil || len(r.Events) == 0 {
		return nil
	}
	var viols []spec.Violation
	addf := func(format string, args ...interface{}) {
		viols = append(viols, spec.Violation{Rule: "REFINE-STREAM", Detail: fmt.Sprintf(format, args...)})
	}
	steps := len(r.Events)
	byThread := map[int][]*core.Event{}
	for _, e := range g.Events() {
		if e.StartStep < 0 || e.CommitStep < e.StartStep || e.CommitStep > steps {
			addf("%v has step window [%d,%d] outside the %d-step stream", e, e.StartStep, e.CommitStep, steps)
			continue
		}
		if e.StartStep < e.CommitStep {
			own := false
			for s := e.StartStep; s < e.CommitStep; s++ {
				if r.Events[s].Thread == e.Thread {
					own = true
					break
				}
			}
			if !own {
				addf("%v spans steps [%d,%d) but thread %d executed none of them", e, e.StartStep, e.CommitStep, e.Thread)
			}
		}
		byThread[e.Thread] = append(byThread[e.Thread], e)
	}
	for tid, evs := range byThread {
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].StartStep != evs[b].StartStep {
				return evs[a].StartStep < evs[b].StartStep
			}
			return evs[a].CommitStep < evs[b].CommitStep
		})
		for i := 1; i < len(evs); i++ {
			if evs[i].StartStep < evs[i-1].CommitStep {
				addf("thread %d operations overlap: %v began at step %d before %v committed at step %d",
					tid, evs[i], evs[i].StartStep, evs[i-1], evs[i-1].CommitStep)
			}
		}
	}
	return viols
}

// A CheckFunc is the harness-facing shape of the oracle: judge one
// completed execution, recording fan-out telemetry into stats.
type CheckFunc func(r *machine.Result, stats *telemetry.Stats) ([]spec.Violation, int)

// Checker adapts one library graph to the harness: the returned
// function runs CheckTrace against the graph the accessor yields at
// evaluation time.
func Checker(lib Library, graph func() *core.Graph) CheckFunc {
	return func(r *machine.Result, stats *telemetry.Stats) ([]spec.Violation, int) {
		return CheckTrace(lib, graph(), r, Options{Stats: stats})
	}
}

// CheckerMax is Checker with an explicit search bound.
func CheckerMax(lib Library, maxEvents int, graph func() *core.Graph) CheckFunc {
	return func(r *machine.Result, stats *telemetry.Stats) ([]spec.Violation, int) {
		return CheckTrace(lib, graph(), r, Options{MaxEvents: maxEvents, Stats: stats})
	}
}

// Checkers merges several per-graph refinement checks (composed
// libraries check each constituent graph against its own ATS).
func Checkers(parts ...CheckFunc) CheckFunc {
	return func(r *machine.Result, stats *telemetry.Stats) ([]spec.Violation, int) {
		var viols []spec.Violation
		unknown := 0
		for _, p := range parts {
			v, u := p(r, stats)
			viols = append(viols, v...)
			unknown += u
		}
		return viols, unknown
	}
}
