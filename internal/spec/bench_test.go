package spec

import (
	"testing"

	"compass/internal/core"
	"compass/internal/view"
)

// benchQueueGraph builds a well-formed queue graph with n matched
// enqueue/dequeue pairs (FIFO, fully lhb-chained).
func benchQueueGraph(n int) *core.Graph {
	b := core.NewGraphBuilder("q")
	var prev view.EventID = view.NoEvent
	enqs := make([]view.EventID, n)
	for i := 0; i < n; i++ {
		if prev == view.NoEvent {
			enqs[i] = b.Add(core.Enq, int64(i+1), 0)
		} else {
			enqs[i] = b.Add(core.Enq, int64(i+1), 0, prev)
		}
		prev = enqs[i]
	}
	for i := 0; i < n; i++ {
		d := b.Add(core.Deq, int64(i+1), 0, prev, enqs[i])
		b.So(enqs[i], d)
		prev = d
	}
	return b.Graph()
}

func BenchmarkCheckQueueHB32(b *testing.B) {
	g := benchQueueGraph(16) // 32 events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := CheckQueue(g, LevelHB); !r.OK() {
			b.Fatal(r.Violations)
		}
	}
}

func BenchmarkCheckQueueAbs32(b *testing.B) {
	g := benchQueueGraph(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := CheckQueue(g, LevelAbsHB); !r.OK() {
			b.Fatal(r.Violations)
		}
	}
}

func BenchmarkReplayCommitOrder128(b *testing.B) {
	g := benchQueueGraph(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res Result
		ReplayCommitOrder(g, SeqQueue{}, true, &res)
		if len(res.Violations) != 0 {
			b.Fatal(res.Violations)
		}
	}
}

func BenchmarkLinearizableSearch(b *testing.B) {
	// A graph whose commit order is not a strict witness (stale empty
	// dequeue), forcing the memoized search.
	builder := core.NewGraphBuilder("q")
	var enqs []view.EventID
	for i := 0; i < 6; i++ {
		enqs = append(enqs, builder.Add(core.Enq, int64(i+1), 0))
	}
	builder.Add(core.EmpDeq, 0, 0) // unconstrained: must move first
	for i := 0; i < 6; i++ {
		d := builder.Add(core.Deq, int64(i+1), 0, enqs[i])
		builder.So(enqs[i], d)
	}
	g := builder.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, unknown := Linearizable(g, SeqQueue{}, 0)
		if !ok || unknown {
			b.Fatalf("ok=%v unknown=%v", ok, unknown)
		}
	}
}
