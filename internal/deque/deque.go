// Package deque implements the Chase-Lev work-stealing deque [12] with the
// C11 access modes of Lê, Pop, Cohen and Zappa Nardelli [50] — the library
// the paper names as future work for the COMPASS approach (§6: "we would
// like to apply the COMPASS approach to more sophisticated RMC libraries
// such as work-stealing queues"). The owner pushes and takes at the
// bottom; thieves steal from the top.
//
// The take/steal race on the last element is the deque's famous weak-
// memory subtlety: the owner's take decrements bottom and reads top, while
// a thief increments top and reads bottom — a store-buffering shape that
// plain release/acquire cannot order. Correctness requires the SC fences
// of [50]; the NewBuggyNoSCFence variant omits them, and the consistency
// checker catches the resulting double consumption (see the ablation
// experiments).
package deque

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// Deque is a bounded Chase-Lev work-stealing deque. Values must be
// positive. The owner (the thread that calls PushBottom/TakeBottom) must
// be a single thread; any thread may Steal.
type Deque struct {
	top    view.Loc
	bottom view.Loc
	items  []view.Loc
	eids   []view.Loc
	rec    *core.Recorder

	scFence bool // use the SC fences of [50] (true for the correct deque)
}

// New allocates a Chase-Lev deque with the given capacity (the bound on
// live elements; the buffer is not grown).
func New(th *machine.Thread, name string, cap int) *Deque {
	return newDeque(th, name, cap, true)
}

// NewBuggyNoSCFence is the ablation variant without the SC fences in
// take/steal: the last-element race can double-consume an element.
func NewBuggyNoSCFence(th *machine.Thread, name string, cap int) *Deque {
	return newDeque(th, name, cap, false)
}

func newDeque(th *machine.Thread, name string, cap int, sc bool) *Deque {
	d := &Deque{
		top:     th.Alloc(name+".top", 0),
		bottom:  th.Alloc(name+".bottom", 0),
		rec:     core.NewRecorder(name),
		scFence: sc,
	}
	d.items = make([]view.Loc, cap)
	d.eids = make([]view.Loc, cap)
	for i := 0; i < cap; i++ {
		d.items[i] = th.Alloc(name+".item", 0)
		d.eids[i] = th.Alloc(name+".eid", -1)
	}
	return d
}

// Recorder exposes the deque's event graph recorder.
func (d *Deque) Recorder() *core.Recorder { return d.rec }

// slot and eid decode a ring index out of a memory-held counter value:
// the workload's static plan is ⊤.
//
//compass:loctrack-top ring slot selected by a memory-held counter
func (d *Deque) slot(i int64) view.Loc { return d.items[int(i)%len(d.items)] }

//compass:loctrack-top ring slot selected by a memory-held counter
func (d *Deque) eid(i int64) view.Loc { return d.eids[int(i)%len(d.items)] }

func (d *Deque) fence(th *machine.Thread) {
	if d.scFence {
		th.FenceSC()
	}
}

// PushBottom pushes v at the owner's end. Fails the execution if the
// deque is full (size workloads accordingly).
func (d *Deque) PushBottom(th *machine.Thread, v int64) {
	if v <= 0 {
		th.Failf("deque: values must be positive, got %d", v)
	}
	b := th.Read(d.bottom, memory.Rlx)
	t := th.Read(d.top, memory.Acq)
	if b-t >= int64(len(d.items)) {
		th.Failf("deque: capacity %d exceeded", len(d.items))
	}
	id := d.rec.Begin(th, core.Push, v)
	th.Write(d.slot(b), v, memory.Rlx)
	th.Write(d.eid(b), int64(id), memory.Rlx)
	d.rec.Arm(th, id)
	th.Fence(false, true)               // release fence: publish the slot to thieves
	th.Write(d.bottom, b+1, memory.Rlx) // commit point: the bottom bump
	d.rec.Commit(th, id)
}

// TakeBottom pops from the owner's end (the paper's "take"). Returns
// (0, false) if the owner saw an empty deque.
func (d *Deque) TakeBottom(th *machine.Thread) (int64, bool) {
	b := th.Read(d.bottom, memory.Rlx) - 1
	th.Write(d.bottom, b, memory.Rlx)
	d.fence(th) // SC fence: order the bottom write against the top read
	t := th.Read(d.top, memory.Rlx)
	if t > b {
		// Deque was empty: restore bottom.
		th.Write(d.bottom, b+1, memory.Rlx)
		d.rec.CommitNew(th, core.EmpPop, 0)
		return 0, false
	}
	x := th.Read(d.slot(b), memory.Rlx)
	eid := th.Read(d.eid(b), memory.Rlx)
	if t == b {
		// Last element: race against thieves for it.
		_, won := th.CAS(d.top, t, t+1, memory.AcqRel, memory.AcqRel)
		th.Write(d.bottom, b+1, memory.Rlx)
		if !won {
			d.rec.CommitNew(th, core.EmpPop, 0) // a thief got it
			return 0, false
		}
		p := d.rec.CommitNew(th, core.Pop, x) // commit point: the top CAS
		d.rec.AddSo(view.EventID(eid), p)
		return x, true
	}
	p := d.rec.CommitNew(th, core.Pop, x) // commit point: the slot read
	d.rec.AddSo(view.EventID(eid), p)
	return x, true
}

// Steal takes from the top (thief end). Returns (0, false) if the thief
// saw an empty deque or lost the race.
func (d *Deque) Steal(th *machine.Thread) (int64, bool) {
	t := th.Read(d.top, memory.Acq)
	d.fence(th) // SC fence: order the top read against the bottom read
	b := th.Read(d.bottom, memory.Acq)
	if t >= b {
		d.rec.CommitNew(th, core.EmpSteal, 0)
		return 0, false
	}
	x := th.Read(d.slot(t), memory.Rlx)
	eid := th.Read(d.eid(t), memory.Rlx)
	if _, won := th.CAS(d.top, t, t+1, memory.AcqRel, memory.AcqRel); !won {
		return 0, false // lost the race (FAIL_RACE: no event)
	}
	s := d.rec.CommitNew(th, core.Steal, x) // commit point: the top CAS
	d.rec.AddSo(view.EventID(eid), s)
	return x, true
}
