package footprint

import (
	"strings"
	"testing"

	"compass/internal/analysis/staticplan"
	"compass/internal/memory"
)

// twoThreadPlan builds a precise plan where thread 1 owns "scratch"
// (reads+writes it relaxed), both threads read "cfg" relaxed, and thread
// 2 writes "flag".
func twoThreadPlan(name string) *memory.Plan {
	p := &memory.Plan{Program: name, Threads: make([]memory.ThreadPlan, 3)}
	rlxR := memory.SiteUse{Kinds: memory.PlanRead, ReadModes: memory.ModeBit(memory.Rlx)}
	rlxW := memory.SiteUse{Kinds: memory.PlanWrite, WriteModes: memory.ModeBit(memory.Rlx)}
	p.Threads[1].AddSite("scratch", rlxR)
	p.Threads[1].AddSite("scratch", rlxW)
	p.Threads[1].AddSite("cfg", rlxR)
	p.Threads[2].AddSite("cfg", rlxR)
	p.Threads[2].AddSite("flag", rlxW)
	return p
}

func TestGateNilGatesNothing(t *testing.T) {
	fp := &memory.Footprint{Name: "p", Locs: []memory.LocCert{{Class: memory.ClassExclusive, Name: "x"}}}
	if err := Gate(nil, twoThreadPlan("p"), 3); err != nil {
		t.Errorf("nil footprint refused: %v", err)
	}
	if err := Gate(fp, nil, 3); err != nil {
		t.Errorf("nil plan refused: %v", err)
	}
}

func TestGateNameMismatch(t *testing.T) {
	fp := &memory.Footprint{Name: "other"}
	err := Gate(fp, twoThreadPlan("p"), 3)
	if err == nil || !strings.Contains(err.Detail, `certificate is for program "other"`) {
		t.Fatalf("mismatch not refused: %v", err)
	}
}

func TestGateAdmitsConsistentCertificate(t *testing.T) {
	fp := &memory.Footprint{
		Name: "p",
		Locs: []memory.LocCert{
			{Class: memory.ClassExclusive, Name: "scratch", Owner: 1},
			{Class: memory.ClassReadOnly, Name: "cfg"},
			{Class: memory.ClassShared, Name: "flag"},
		},
	}
	if err := Gate(fp, twoThreadPlan("p"), 3); err != nil {
		t.Fatalf("consistent certificate refused: %v", err)
	}
}

func TestGateRefusesExclusiveViolation(t *testing.T) {
	// The plan has thread 2 reading cfg, so an exclusive-to-1 claim on cfg
	// is statically doomed.
	fp := &memory.Footprint{Name: "p", Locs: []memory.LocCert{
		{Class: memory.ClassExclusive, Name: "cfg", Owner: 1},
	}}
	err := Gate(fp, twoThreadPlan("p"), 3)
	if err == nil {
		t.Fatal("under-covering exclusive claim admitted")
	}
	if err.Thread != 2 || err.Name != "cfg" || !strings.Contains(err.Detail, "exclusive to thread 1") {
		t.Errorf("refusal = %v, want thread 2 violating cfg exclusivity", err)
	}
}

func TestGateRefusesReadOnlyViolation(t *testing.T) {
	fp := &memory.Footprint{Name: "p", Locs: []memory.LocCert{
		{Class: memory.ClassReadOnly, Name: "flag"},
	}}
	err := Gate(fp, twoThreadPlan("p"), 3)
	if err == nil || !strings.Contains(err.Detail, "claims flag read-only") {
		t.Fatalf("read-only claim over a planned write admitted: %v", err)
	}
}

func TestGateRefusesAllAtomicViolations(t *testing.T) {
	plan := twoThreadPlan("p")
	plan.Threads[1].AddSite("scratch", memory.SiteUse{Kinds: memory.PlanWrite, WriteModes: memory.ModeBit(memory.NA)})
	fp := &memory.Footprint{Name: "p", AllAtomic: true}
	err := Gate(fp, plan, 3)
	if err == nil || !strings.Contains(err.Detail, "all accesses atomic") {
		t.Fatalf("NA-using plan admitted under AllAtomic: %v", err)
	}

	plan2 := twoThreadPlan("p")
	plan2.Threads[2].AddSite("node", memory.SiteUse{Kinds: memory.PlanAlloc})
	err = Gate(fp, plan2, 3)
	if err == nil || !strings.Contains(err.Detail, "all allocation is in setup") {
		t.Fatalf("worker-allocating plan admitted under AllAtomic: %v", err)
	}
}

func TestGateRefusesUnnamedClaims(t *testing.T) {
	fp := &memory.Footprint{Name: "p", Locs: []memory.LocCert{
		{Class: memory.ClassExclusive, Owner: 1},
	}}
	err := Gate(fp, twoThreadPlan("p"), 3)
	if err == nil || !strings.Contains(err.Detail, "unnamed location") {
		t.Fatalf("unnamed exclusive claim admitted: %v", err)
	}
}

// TestGateRefusesSeededDequeCertificate is the regression for the §9
// deque caveat: the Chase-Lev deque's sharing is schedule-dependent, so a
// certificate extracted from recording schedules can claim locations
// exclusive that a steal makes shared, and enforcement used to abort
// executions mid-exploration. The static plan for lib/deque is ⊤ (its
// locations round-trip through simulated memory), so the gate refuses
// any such certificate before exploration starts.
func TestGateRefusesSeededDequeCertificate(t *testing.T) {
	plan := staticplan.PlanFor("lib/deque")
	if plan == nil {
		t.Fatal("fixture has no plan for lib/deque")
	}
	// The seeded under-covering certificate: recordings where the thief
	// never wins the race would classify the owner's slot exclusive.
	fp := &memory.Footprint{
		Name: "deque-worksteal",
		Locs: []memory.LocCert{
			{Class: memory.ClassExclusive, Name: "d.item", Owner: 1, SetupMax: 1},
		},
	}
	err := Gate(fp, plan, 4)
	if err == nil {
		t.Fatal("seeded under-covering deque certificate admitted")
	}
	want := "static gate: certificate claims d.item exclusive to thread 1, but thread 0's plan is ⊤"
	if !strings.Contains(err.Detail, want) {
		t.Errorf("refusal detail = %q, want it to contain %q", err.Detail, want)
	}
	if !strings.Contains(err.Detail, "recovered from memory-held values") {
		t.Errorf("refusal detail = %q, want the ⊤ reason surfaced", err.Detail)
	}
}
