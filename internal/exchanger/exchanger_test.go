package exchanger_test

import (
	"testing"

	"compass/internal/check"
	"compass/internal/core"
	"compass/internal/exchanger"
	"compass/internal/machine"
	"compass/internal/spec"
)

func good(th *machine.Thread) *exchanger.Exchanger { return exchanger.New(th, "ex") }

func requirePass(t *testing.T, rep *check.Report) {
	t.Helper()
	if !rep.Passed() {
		t.Fatalf("%s", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("no execution completed: %s", rep)
	}
}

func requireFailureFound(t *testing.T, rep *check.Report) {
	t.Helper()
	if rep.Passed() {
		t.Fatalf("expected violations, none found: %s", rep)
	}
}

func TestExchangerPairOf2(t *testing.T) {
	requirePass(t, check.Run("ex/2",
		check.ExchangerPairs(good, 2, 6), check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestExchangerPairsOf4(t *testing.T) {
	requirePass(t, check.Run("ex/4",
		check.ExchangerPairs(good, 4, 6), check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestExchangerOddThreads(t *testing.T) {
	// With 3 threads someone must fail; consistency must still hold.
	requirePass(t, check.Run("ex/3",
		check.ExchangerPairs(good, 3, 3), check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestExchangerLoneThreadFails(t *testing.T) {
	build := func() check.Checked {
		var x *exchanger.Exchanger
		return check.Checked{
			Prog: machine.Program{
				Setup: func(th *machine.Thread) { x = good(th) },
				Workers: []func(*machine.Thread){func(th *machine.Thread) {
					if r := x.Exchange(th, 5, 2); r != core.ExFail {
						th.Failf("lone exchange returned %d, want ⊥", r)
					}
				}},
			},
			Check: func() ([]spec.Violation, int) {
				g := x.Recorder().Graph()
				viols, u := check.Collect(spec.CheckExchanger(g))
				if len(g.Events()) != 1 || g.Events()[0].Val2 != core.ExFail {
					viols = append(viols, spec.Violation{Rule: "TEST", Detail: "expected one failed event"})
				}
				return viols, u
			},
		}
	}
	requirePass(t, check.Run("ex/lone", build, check.Options{Executions: 50}))
}

func TestExchangerMatchedExchangesSucceed(t *testing.T) {
	// With 2 threads and generous patience, matches do happen: require
	// that at least one execution produced a matched pair.
	matched := 0
	build := check.ExchangerPairs(good, 2, 8)
	wrapped := func() check.Checked {
		c := build()
		inner := c.Check
		c.Check = func() ([]spec.Violation, int) {
			// count via graph inspection happens inside inner anyway; we
			// re-derive it by rebuilding the closure is not possible, so
			// this wrapper just delegates.
			return inner()
		}
		return c
	}
	rep := check.Run("ex/matched", wrapped, check.Options{Executions: 300, StaleBias: 0.3})
	requirePass(t, rep)
	// Rerun a handful of executions and count matches directly.
	for seed := int64(1); seed <= 50; seed++ {
		c := build()
		res := (&machine.Runner{}).Run(c.Prog, machine.NewRandomBiased(seed, 0.3))
		if res.Status != machine.OK {
			continue
		}
		if res.Outcome["r"] != core.ExFail {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no exchange ever matched across 50 executions")
	}
}

func TestExchangerResourceTransfer(t *testing.T) {
	requirePass(t, check.Run("ex/resource",
		check.ResourceExchange(good), check.Options{Executions: 400, StaleBias: 0.5}))
}

func TestExchangerBuggyRelaxedOfferCaught(t *testing.T) {
	f := func(th *machine.Thread) *exchanger.Exchanger { return exchanger.NewBuggyRelaxedOffer(th, "ex") }
	requireFailureFound(t, check.Run("ex/buggy-offer",
		check.ExchangerPairs(f, 2, 8), check.Options{Executions: 600, StaleBias: 0.6}))
}

func TestExchangerBuggyRelaxedResponseCaught(t *testing.T) {
	f := func(th *machine.Thread) *exchanger.Exchanger { return exchanger.NewBuggyRelaxedResponse(th, "ex") }
	requireFailureFound(t, check.Run("ex/buggy-resp",
		check.ResourceExchange(f), check.Options{Executions: 600, StaleBias: 0.6}))
}

func TestExchangerHelpeeLearnsBothEvents(t *testing.T) {
	// The offeror (helpee) must, after its exchange returns, have both
	// events of the pair in its logical view (the paper's local
	// postcondition with SeenExchanges(x, G'', M')).
	found := false
	for seed := int64(1); seed <= 80 && !found; seed++ {
		var x *exchanger.Exchanger
		var ok0 bool
		var seen0 bool
		prog := machine.Program{
			Setup: func(th *machine.Thread) { x = good(th) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) {
					r := x.Exchange(th, 100, 8)
					ok0 = r != core.ExFail
					if ok0 {
						s := core.Seen(th)
						g := x.Recorder().Graph()
						n := 0
						for _, e := range g.Events() {
							if e.Val2 != core.ExFail && s.Has(e.ID) {
								n++
							}
						}
						seen0 = n >= 2
					}
				},
				func(th *machine.Thread) { x.Exchange(th, 200, 8) },
			},
		}
		res := (&machine.Runner{}).Run(prog, machine.NewRandomBiased(seed, 0.3))
		if res.Status == machine.OK && ok0 {
			if !seen0 {
				t.Fatalf("seed %d: matched offeror missing pair events in its logical view", seed)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no matched execution found")
	}
}
