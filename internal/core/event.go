// Package core implements the COMPASS specification framework: event
// graphs over library operations (§3.1 of the paper), logical views, the
// synchronized-with relation so, the derived local-happens-before relation
// lhb, and the commit recorder through which library implementations
// register their operations' commit (linearization) points.
//
// The recorder realizes logical atomicity executably: a library calls
// Commit adjacent to the single machine instruction at which its operation
// takes effect; because the scheduler serializes machine steps and no step
// occurs between the instruction and the Commit call, the event insertion
// is atomic with respect to all other threads. The resulting total commit
// order is the execution's linearization-candidate order, and the logical
// views that ride on the memory's release/acquire clocks yield exactly the
// paper's lhb approximation.
package core

import (
	"fmt"
	"sync/atomic"

	"compass/internal/view"
)

// Kind is the type of a library event (the paper's event type component).
type Kind uint8

// Event kinds for the library types studied in the paper.
const (
	// Queue events (§3.1).
	Enq    Kind = iota // Enq(v): enqueue of Val
	Deq                // Deq(v): successful dequeue returning Val
	EmpDeq             // Deq(ε): failing (empty) dequeue
	// Stack events (§3.3, §4).
	Push   // Push(v)
	Pop    // Pop(v): successful pop returning Val
	EmpPop // Pop(ε): failing (empty) pop
	// Exchanger events (§4.2). Val is the offered value; Val2 the received
	// value, or ExFail for a failed exchange.
	Exchange
	// Work-stealing deque events (§6 future work; Chase-Lev [12, 50]).
	// Owner pushes/takes reuse Push/Pop/EmpPop; thieves use Steal/EmpSteal.
	Steal
	EmpSteal
	// Lock events (substrate demos).
	LockAcq
	LockRel
)

func (k Kind) String() string {
	switch k {
	case Enq:
		return "Enq"
	case Deq:
		return "Deq"
	case EmpDeq:
		return "Deq(ε)"
	case Push:
		return "Push"
	case Pop:
		return "Pop"
	case EmpPop:
		return "Pop(ε)"
	case Exchange:
		return "Exchange"
	case Steal:
		return "Steal"
	case EmpSteal:
		return "Steal(ε)"
	case LockAcq:
		return "LockAcq"
	case LockRel:
		return "LockRel"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ExFail is the ⊥ return value of a failed exchange.
const ExFail int64 = -0x7fffffffffffffff

// Event is one library operation in an event graph, mirroring the paper's
// Event type: an event type plus payload values, a physical view, and a
// logical view.
type Event struct {
	ID   view.EventID
	Kind Kind
	Val  int64 // primary payload (enqueued/pushed/popped/offered value)
	Val2 int64 // secondary payload (exchanger: received value)

	Thread     int // thread that performed the operation's call
	StartStep  int // machine step at which the operation began
	CommitStep int // machine step at which the operation committed

	// PhysView is the committing thread's physical view at the commit
	// point (after the commit instruction).
	PhysView view.View
	// LogView is the event's logical view: the set of events that
	// happen-before this event in the library's local-happens-before
	// relation (lhb). It never contains the event itself.
	LogView view.LogView

	Committed bool
}

func (e *Event) String() string {
	switch {
	case e.Kind == Exchange && e.Val2 == ExFail:
		return fmt.Sprintf("e%d:Exchange(%d,⊥)", e.ID.Local(), e.Val)
	case e.Kind == Exchange:
		return fmt.Sprintf("e%d:Exchange(%d,%d)", e.ID.Local(), e.Val, e.Val2)
	case e.Kind == EmpDeq || e.Kind == EmpPop || e.Kind == EmpSteal:
		return fmt.Sprintf("e%d:%s", e.ID.Local(), e.Kind)
	default:
		return fmt.Sprintf("e%d:%s(%d)", e.ID.Local(), e.Kind, e.Val)
	}
}

// Graph is the event graph of one library object: the committed events,
// the synchronized-with relation so, and the total commit order (the
// logical-atomicity order in which commits occurred).
type Graph struct {
	Name string
	// tag is this object's globally unique tag, embedded in its EventIDs.
	tag int64
	// events, indexed by EventID; entries may be uncommitted (pending).
	events []*Event
	// so edges in insertion order.
	so [][2]view.EventID
	// soFrom/soTo adjacency.
	soFrom map[view.EventID][]view.EventID
	soTo   map[view.EventID][]view.EventID
	// CommitOrder lists committed event IDs in commit order.
	CommitOrder []view.EventID
}

// graphTag issues globally unique object tags (atomic: graphs may be
// created from concurrently running machines in tests and benchmarks).
var graphTag int64

// NewGraph returns an empty event graph.
func NewGraph(name string) *Graph {
	return &Graph{
		Name:   name,
		tag:    atomic.AddInt64(&graphTag, 1),
		soFrom: map[view.EventID][]view.EventID{},
		soTo:   map[view.EventID][]view.EventID{},
	}
}

// Tag returns the graph's globally unique object tag.
func (g *Graph) Tag() int64 { return g.tag }

// ResetTagsForTesting resets the global tag counter. EventIDs (and values
// derived from them, like eid cells visible in step traces) embed the
// tag, so tests that golden-compare traced executions call this to be
// independent of how many graphs earlier tests created. Only safe when
// no graph from before the reset is still in use.
func ResetTagsForTesting() { atomic.StoreInt64(&graphTag, 0) }

// Owns reports whether the event ID belongs to this graph's object.
func (g *Graph) Owns(id view.EventID) bool { return id.Object() == g.tag }

// Event returns the event with the given ID (committed or pending). The ID
// must belong to this graph.
func (g *Graph) Event(id view.EventID) *Event {
	if !g.Owns(id) {
		panic(fmt.Sprintf("core: event %d does not belong to graph %s", id, g.Name))
	}
	return g.events[id.Local()]
}

// NumEvents returns the number of allocated events, committed or pending.
func (g *Graph) NumEvents() int { return len(g.events) }

// Events returns the committed events in commit order.
func (g *Graph) Events() []*Event {
	out := make([]*Event, 0, len(g.CommitOrder))
	for _, id := range g.CommitOrder {
		out = append(out, g.events[id.Local()])
	}
	return out
}

// Pending returns the events that were begun but never committed (e.g.
// retracted exchanger offers).
func (g *Graph) Pending() []*Event {
	var out []*Event
	for _, e := range g.events {
		if !e.Committed {
			out = append(out, e)
		}
	}
	return out
}

// So returns the so edges in insertion order.
func (g *Graph) So() [][2]view.EventID {
	out := make([][2]view.EventID, len(g.so))
	copy(out, g.so)
	return out
}

// SoFrom returns the events d with (e, d) ∈ so.
func (g *Graph) SoFrom(e view.EventID) []view.EventID { return g.soFrom[e] }

// SoTo returns the events e with (e, d) ∈ so.
func (g *Graph) SoTo(d view.EventID) []view.EventID { return g.soTo[d] }

// Lhb reports whether e happens-before d in the library's
// local-happens-before relation, i.e. e ∈ G(d).logview. e may belong to a
// different object (cross-library lhb through shared thread clocks); d
// must belong to this graph.
func (g *Graph) Lhb(e, d view.EventID) bool {
	return g.Event(d).LogView.Has(e)
}

// addSo records (a, b) ∈ so.
func (g *Graph) addSo(a, b view.EventID) {
	g.so = append(g.so, [2]view.EventID{a, b})
	g.soFrom[a] = append(g.soFrom[a], b)
	g.soTo[b] = append(g.soTo[b], a)
}

// String renders the graph compactly: events in commit order plus so.
func (g *Graph) String() string {
	s := fmt.Sprintf("Graph %s: %d events", g.Name, len(g.CommitOrder))
	for _, e := range g.Events() {
		s += "\n  " + e.String() + " lview=" + e.LogView.String()
	}
	if len(g.so) > 0 {
		s += "\n  so:"
		for _, p := range g.so {
			s += fmt.Sprintf(" (e%d,e%d)", p[0].Local(), p[1].Local())
		}
	}
	return s
}
