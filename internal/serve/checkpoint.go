package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"compass/internal/telemetry"
)

// CheckpointVersion identifies the checkpoint file layout; bump on
// breaking changes so a daemon never misreads state written by an
// incompatible build.
const CheckpointVersion = 1

// Checkpoint is the durable state of one job at a quiescent pause point:
// everything a restarted compassd needs to continue the job — or to
// refuse it as stale. Engine holds the kind-specific resumable state
// (the frontier of pinned decision prefixes plus the partial
// report/histogram); Telemetry is the cumulative compass/telemetry/v1
// snapshot, restored via telemetry.Restore so the resumed job continues
// the same monotone stream.
type Checkpoint struct {
	Version  int     `json:"version"`
	SpecHash string  `json:"spec_hash"`
	JobID    string  `json:"job_id"`
	Spec     JobSpec `json:"spec"`
	Runs     int     `json:"runs"`
	Done     bool    `json:"done"`
	Error    string  `json:"error,omitempty"`
	// Engine is the kind-specific state: litmus.JobState, exhaustState,
	// or ReportState.
	Engine json.RawMessage `json:"engine"`
	// Result is the rendered outcome, present once Done.
	Result    *JobResult          `json:"result,omitempty"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Shard is a coordinator job's lease table: unleased prefixes,
	// outstanding leases (reclaimed under a bumped epoch on resume), and
	// completed lease IDs (for idempotent re-acks).
	Shard *ShardState `json:"shard,omitempty"`
}

// Store persists checkpoints in a state directory, one JSON file per
// job, written atomically: the bytes go to a temp file in the same
// directory which is then renamed over the target, so a kill at any
// instant leaves either the previous or the new checkpoint — a torn
// write can only ever be a leftover .tmp file, which loading ignores.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(jobID string) string {
	return filepath.Join(st.dir, jobID+".json")
}

// validJobID guards the filename-derived namespace (and Load against
// path traversal).
func validJobID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Save writes the checkpoint atomically and returns the encoded size.
func (st *Store) Save(cp *Checkpoint) (int64, error) {
	if !validJobID(cp.JobID) {
		return 0, fmt.Errorf("invalid job id %q", cp.JobID)
	}
	cp.Version = CheckpointVersion
	cp.SpecHash = cp.Spec.Hash()
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	tmp := st.path(cp.JobID) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, st.path(cp.JobID)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(len(data)), nil
}

// Load reads and validates one checkpoint. A checkpoint is refused as
// stale when its format version is not this build's, when its recorded
// spec no longer hashes to its recorded spec_hash (an edited file or a
// drifted canonicalization), or when the file is torn (invalid JSON —
// impossible via Save's rename, but defended anyway).
func (st *Store) Load(jobID string) (*Checkpoint, error) {
	if !validJobID(jobID) {
		return nil, fmt.Errorf("invalid job id %q", jobID)
	}
	data, err := os.ReadFile(st.path(jobID))
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("checkpoint %s: torn or corrupt: %w", jobID, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint %s: stale format version %d (want %d)", jobID, cp.Version, CheckpointVersion)
	}
	if got := cp.Spec.Hash(); got != cp.SpecHash {
		return nil, fmt.Errorf("checkpoint %s: stale spec hash %.12s (recorded %.12s)", jobID, got, cp.SpecHash)
	}
	if cp.JobID != jobID {
		return nil, fmt.Errorf("checkpoint %s: names job %q", jobID, cp.JobID)
	}
	return &cp, nil
}

// List returns the job IDs with a committed checkpoint, sorted. Leftover
// .tmp files from a kill mid-write are ignored (and are never loaded).
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if validJobID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}
