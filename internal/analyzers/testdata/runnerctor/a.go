// Package runnerctor is the golden corpus for the runnerctor analyzer.
package runnerctor

import "compass/internal/machine"

func direct(budget int) *machine.Runner {
	return &machine.Runner{Budget: budget} // want `machine.Runner constructed directly`
}

func directValue() machine.Runner {
	return machine.Runner{Trace: true} // want `machine.Runner constructed directly`
}

// build is a sanctioned constructor in the style of check.Options.Runner.
//
//compass:runner-ctor
func build(budget int, trace bool) *machine.Runner {
	return &machine.Runner{Budget: budget, Trace: trace} // ok: sanctioned constructor
}

func viaConstructor(budget int) *machine.Runner {
	return build(budget, false) // ok: goes through the constructor
}

func directOpts(maxRuns int) machine.ExploreOpts {
	return machine.ExploreOpts{MaxRuns: maxRuns} // want `machine.ExploreOpts constructed directly`
}

func directOptsPOR() machine.ExploreOpts {
	return machine.ExploreOpts{POR: machine.PORSleep} // want `machine.ExploreOpts constructed directly`
}

// buildOpts is a sanctioned constructor in the style of
// check.Options.ExploreOpts.
//
//compass:explore-ctor
func buildOpts(maxRuns int, por machine.PORMode) machine.ExploreOpts {
	return machine.ExploreOpts{MaxRuns: maxRuns, POR: por} // ok: sanctioned constructor
}

func viaOptsConstructor(maxRuns int) machine.ExploreOpts {
	return buildOpts(maxRuns, machine.PORSleep) // ok: goes through the constructor
}

// runnerCtorDoesNotSanctionOpts mixes the two: a runner-ctor directive
// must not bless ExploreOpts literals.
//
//compass:runner-ctor
func runnerCtorDoesNotSanctionOpts() machine.ExploreOpts {
	return machine.ExploreOpts{Workers: 4} // want `machine.ExploreOpts constructed directly`
}
