package experiments

import (
	"fmt"
	"strings"

	"compass/internal/check"
	"compass/internal/core"
	"compass/internal/exchanger"
	"compass/internal/litmus"
	"compass/internal/machine"
	"compass/internal/spec"
	"compass/internal/stack"
)

// L1Litmus validates the ORC11 machine itself against the litmus suite
// (exhaustive exploration — a proof for these bounded programs).
func L1Litmus(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## L1 — ORC11 model validation (litmus suite, exhaustive)\n\n")
	cfg.printf("| test | executions | complete | verdict | note |\n|---|---:|---|---|---|\n")
	ok := true
	total := 0
	for _, t := range litmus.Suite() {
		res := litmus.Run(t, 400000)
		verdict := "PASS"
		if !res.OK() {
			verdict = "FAIL"
			ok = false
		}
		total += res.Runs
		cfg.printf("| %s | %d | %v | %s | %s |\n", t.Name, res.Runs, res.Complete, verdict, t.Note)
	}
	return Summary{Name: "L1 litmus suite", OK: ok,
		Detail: fmt.Sprintf("%d exhaustive executions across %d tests", total, len(litmus.Suite()))}
}

// Fig1MP reproduces Figure 1: the MP client's right-thread dequeue can
// never be empty with the release flag, and can be empty without it.
func Fig1MP(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## F1 — Fig. 1 Message-Passing client with queues\n\n")
	cfg.printf("| queue | flag | executions | verdict |\n|---|---|---:|---|\n")
	ok := true
	for _, impl := range queueImpls() {
		level := spec.LevelHB
		if impl.Name == "SC queue (lock)" {
			level = spec.LevelSC
		}
		rel := check.Run("mp/"+impl.Name, check.MPQueue(impl.Factory, level, true), cfg.opts())
		expectPass(&ok, rel)
		cfg.printf("| %s | rel/acq | %d | %s |\n", impl.Name, rel.Executions, cell(rel))
	}
	// Ablation: relaxed flag — expect the property to fail for the weak
	// queues (the SC queue's lock synchronizes regardless, so it may pass).
	relaxedOpts := cfg.opts()
	relaxedOpts.StaleBias = 0.7
	relaxedOpts.Executions = cfg.Executions * 3
	hw := queueImpls()[2]
	rep := check.Run("mp/relaxed", check.MPQueue(hw.Factory, spec.LevelHB, false), relaxedOpts)
	expectFail(&ok, rep)
	verdict := "empty dequeue observed (expected)"
	if rep.Passed() {
		verdict = "no failure found (UNEXPECTED)"
	}
	cfg.printf("| %s | rlx (ablation) | %d | %s |\n", hw.Name, rep.Executions, verdict)
	return Summary{Name: "F1 MP client", OK: ok,
		Detail: "right dequeue never empty under rel/acq; empty witnessed under rlx flag"}
}

// Fig2SpecMatrix reproduces the spec hierarchy of Fig. 2: which
// implementation satisfies which spec style.
func Fig2SpecMatrix(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## F2 — Fig. 2 spec matrix (implementation × spec style)\n\n")
	cfg.printf("| implementation |")
	for _, l := range levelNames {
		cfg.printf(" %s |", l.Name)
	}
	cfg.printf("\n|---|")
	for range levelNames {
		cfg.printf("---|")
	}
	cfg.printf("\n")

	type cellres struct{ impl, level, val string }
	var cells []cellres
	for _, impl := range queueImpls() {
		cfg.printf("| %s (queue) |", impl.Name)
		for _, l := range levelNames {
			rep := check.Run("f2", check.QueueMixed(impl.Factory, l.Level, 2, 3, 2, 4), cfg.opts())
			c := cell(rep)
			cells = append(cells, cellres{impl.Name, l.Name, c})
			cfg.printf(" %s |", c)
		}
		cfg.printf("\n")
	}
	for _, impl := range stackImpls() {
		cfg.printf("| %s (stack) |", impl.Name)
		for _, l := range levelNames {
			rep := check.Run("f2", check.StackMixed(impl.Factory, l.Level, 2, 3, 2, 4), cfg.opts())
			c := cell(rep)
			cells = append(cells, cellres{impl.Name, l.Name, c})
			cfg.printf(" %s |", c)
		}
		cfg.printf("\n")
	}

	// The paper-critical shape: SC baselines satisfy everything;
	// Michael-Scott satisfies abs but not SC; Herlihy-Wing satisfies hb
	// but not abs; Treiber satisfies hist but not SC.
	want := map[[2]string]bool{ // true = must pass, false = must fail
		{"SC queue (lock)", "SC"}:       true,
		{"Michael-Scott", "LAT_hb^abs"}: true,
		{"Michael-Scott", "SC"}:         false,
		{"Herlihy-Wing", "LAT_hb"}:      true,
		{"Herlihy-Wing", "LAT_hb^abs"}:  false,
		{"SC stack (lock)", "SC"}:       true,
		{"Treiber", "LAT_hb^hist"}:      true,
		{"Treiber", "SC"}:               false,
		{"Elimination", "LAT_hb"}:       true,
	}
	ok := true
	for _, c := range cells {
		mustPass, constrained := want[[2]string{c.impl, c.level}]
		if !constrained {
			continue
		}
		passed := strings.HasPrefix(c.val, "✓")
		if passed != mustPass {
			ok = false
		}
	}
	return Summary{Name: "F2 spec matrix", OK: ok,
		Detail: "MS ⊨ abs ⊭ SC; HW ⊨ hb ⊭ abs; Treiber ⊨ hist ⊭ SC; SC baselines ⊨ all"}
}

// Fig3DeqPerm reproduces the Fig. 3 proof sketch: MP with dequeue
// permissions — at most two successful dequeues ever exist, and the
// right-hand dequeue derives a contradiction from QUEUE-EMPDEQ.
func Fig3DeqPerm(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## F3 — Fig. 3 MP proof sketch with dequeue permissions\n\n")
	ok := true
	// Run the MP client; the checker enforces the Fig. 3 permission
	// accounting (CLIENT-DEQPERM: size(G.so) ≤ 2) on every execution,
	// alongside QUEUE-EMPDEQ which rules out the empty right dequeue.
	f := queueImpls()[1].Factory // Michael-Scott
	for i := 0; i < cfg.Executions; i++ {
		c := check.MPQueue(f, spec.LevelHB, true)()
		res := check.Options{}.Runner(false).Run(c.Prog, machine.NewRandomBiased(cfg.Seed+int64(i), cfg.StaleBias))
		if res.Status != machine.OK {
			ok = false
			continue
		}
		if viols, _ := c.Check(); len(viols) > 0 {
			ok = false
		}
	}
	cfg.printf("executions: %d, all satisfied deqPerm accounting (size(G.so) ≤ 2) and QUEUE-EMPDEQ\n", cfg.Executions)
	return Summary{Name: "F3 deqPerm MP", OK: ok,
		Detail: "≤2 successful dequeues per execution; empty right-dequeue contradiction never materializes"}
}

// Fig4HistStack reproduces Fig. 4: the Treiber stack admits a
// linearization to ⊇ lhb ∪ com — executably, the commit order is the com-
// augmented candidate, and stale empty pops force the search fallback.
func Fig4HistStack(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## F4 — Fig. 4 LAT_hb^hist linearizable Treiber stack\n\n")
	ok := true
	fastPath, searchPath, fail := 0, 0, 0
	events := 0
	for i := 0; i < cfg.Executions; i++ {
		var s *stack.Treiber
		c := check.StackMixed(func(th *machine.Thread) stack.Stack {
			s = stack.NewTreiber(th, "trb")
			return s
		}, spec.LevelHB, 2, 2, 2, 3)()
		res := check.Options{}.Runner(false).Run(c.Prog, machine.NewRandomBiased(cfg.Seed+int64(i), cfg.StaleBias))
		if res.Status != machine.OK {
			continue
		}
		g := s.Recorder().Graph()
		events += len(g.Events())
		var probe spec.Result
		spec.ReplayCommitOrder(g, spec.SeqStack{}, true, &probe)
		if len(probe.Violations) == 0 {
			fastPath++ // the commit order itself is a strict linearization
			continue
		}
		found, unknown := spec.Linearizable(g, spec.SeqStack{}, 0)
		if unknown || !found {
			fail++
			ok = false
		} else {
			searchPath++ // reordering (stale empty pops) was necessary
		}
	}
	cfg.printf("| metric | value |\n|---|---:|\n")
	cfg.printf("| executions | %d |\n", cfg.Executions)
	cfg.printf("| commit order already linearizes (fast path) | %d |\n", fastPath)
	cfg.printf("| reordering needed (stale empty pops, §3.3) | %d |\n", searchPath)
	cfg.printf("| linearization not found | %d |\n", fail)
	cfg.printf("| total events checked | %d |\n", events)
	if searchPath == 0 {
		ok = false // the interesting §3.3 phenomenon must occur
	}
	return Summary{Name: "F4 hist Treiber", OK: ok,
		Detail: fmt.Sprintf("every execution linearizable; %d/%d needed reordering of stale empty pops",
			searchPath, fastPath+searchPath)}
}

// Fig5Exchanger reproduces the Fig. 5 exchanger spec: symmetric matching,
// value swaps, atomic pair commits (helping), call overlap.
func Fig5Exchanger(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## F5 — Fig. 5 exchanger spec with helping\n\n")
	ok := true
	matched, failed := 0, 0
	for i := 0; i < cfg.Executions; i++ {
		c := check.ExchangerPairs(newExchanger, 4, 6)()
		res := check.Options{}.Runner(false).Run(c.Prog, machine.NewRandomBiased(cfg.Seed+int64(i), cfg.StaleBias))
		if res.Status != machine.OK {
			ok = false
			continue
		}
		viols, _ := c.Check()
		if len(viols) > 0 {
			ok = false
		}
	}
	// Count matches on a sample.
	for i := 0; i < cfg.Executions; i++ {
		var x *exchanger.Exchanger
		workers := make([]func(*machine.Thread), 4)
		for w := range workers {
			w := w
			workers[w] = func(th *machine.Thread) { x.Exchange(th, int64(100+w), 6) }
		}
		prog := machine.Program{
			Setup:   func(th *machine.Thread) { x = exchanger.New(th, "ex") },
			Workers: workers,
		}
		res := check.Options{}.Runner(false).Run(prog, machine.NewRandomBiased(cfg.Seed+int64(i), cfg.StaleBias))
		if res.Status != machine.OK {
			continue
		}
		for _, e := range x.Recorder().Graph().Events() {
			if e.Val2 != core.ExFail {
				matched++
			} else {
				failed++
			}
		}
	}
	if matched == 0 {
		ok = false
	}
	cfg.printf("| metric | value |\n|---|---:|\n")
	cfg.printf("| executions | %d |\n", cfg.Executions)
	cfg.printf("| matched exchange events | %d |\n", matched)
	cfg.printf("| failed exchange events (⊥) | %d |\n", failed)
	cfg.printf("| ExchangerConsistent violations | %s |\n", map[bool]string{true: "0", false: ">0"}[ok])
	return Summary{Name: "F5 exchanger", OK: ok,
		Detail: fmt.Sprintf("%d matched pairs, all committed atomically adjacent with swapped values", matched)}
}

// E1ElimStack reproduces §4.1: the composed elimination stack satisfies
// the same stack specs as its base, checked together with the component
// graphs.
func E1ElimStack(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## E1 — §4.1 elimination stack composition\n\n")
	ok := true
	cfg.printf("| check | executions | verdict |\n|---|---:|---|\n")
	hb := check.Run("es-hb", check.ElimStackComposed(spec.LevelHB, 2, 2), cfg.opts())
	expectPass(&ok, hb)
	cfg.printf("| ES + base + exchanger at LAT_hb | %d | %s |\n", hb.Executions, cell(hb))
	hist := check.Run("es-hist", check.ElimStackComposed(spec.LevelHist, 2, 2), cfg.opts())
	expectPass(&ok, hist)
	cfg.printf("| ES graph at LAT_hb^hist (§4.1 conjecture) | %d | %s |\n", hist.Executions, cell(hist))
	return Summary{Name: "E1 elimination stack", OK: ok,
		Detail: "composed ES satisfies the base's specs, incl. the conjectured hist level"}
}

// E2SPSC reproduces §3.2: the SPSC client transfers arrays FIFO.
func E2SPSC(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## E2 — §3.2 SPSC client\n\n")
	ok := true
	cfg.printf("| queue | executions | verdict |\n|---|---:|---|\n")
	for _, impl := range queueImpls() {
		rep := check.Run("spsc", check.SPSC(impl.Factory, spec.LevelHB, 6), cfg.opts())
		expectPass(&ok, rep)
		cfg.printf("| %s | %d | %s |\n", impl.Name, rep.Executions, cell(rep))
	}
	return Summary{Name: "E2 SPSC", OK: ok, Detail: "a_c == a_p (FIFO) on every explored execution"}
}

// newExchanger is the default exchanger factory for the F5 experiment.
func newExchanger(th *machine.Thread) *exchanger.Exchanger { return exchanger.New(th, "ex") }
