package check

import (
	"testing"

	"compass/internal/core"
	"compass/internal/spec"
)

func TestSCOraclePassesValidHistory(t *testing.T) {
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	e2 := b.Add(core.Enq, 2, 0, e1)
	b.Add(core.Deq, 1, 0, e1)
	b.Add(core.Deq, 2, 0, e2)
	viols, unknown := SCOracle(b.Graph(), spec.SeqQueue{}, 0, true)
	if len(viols) != 0 || unknown != 0 {
		t.Fatalf("valid history rejected: %v (unknown %d)", viols, unknown)
	}
}

func TestSCOracleCatchesDuplicatedElement(t *testing.T) {
	// The take/steal-race shape: one push consumed twice. No linearization
	// of {Enq(1), Deq(1), Deq(1)} exists.
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	b.Add(core.Deq, 1, 0, e1)
	b.Add(core.Deq, 1, 0, e1)
	viols, _ := SCOracle(b.Graph(), spec.SeqQueue{}, 0, true)
	if len(viols) == 0 {
		t.Fatal("duplicated consumption not caught by the oracle")
	}
}

func TestSCOracleReadOnlyFiltering(t *testing.T) {
	// Enq(1) ⊏ Deq(ε) ⊏ Deq(1) in lhb: every linearization runs the empty
	// dequeue on a nonempty queue — inconsistent under the strict oracle,
	// but legal once read-only events are dropped (weak-emptiness levels).
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 1, 0)
	emp := b.Add(core.EmpDeq, 0, 0, e1)
	b.Add(core.Deq, 1, 0, e1, emp)
	if viols, _ := SCOracle(b.Graph(), spec.SeqQueue{}, 0, true); len(viols) == 0 {
		t.Fatal("strict oracle must reject a stale empty dequeue after its enqueue (in lhb)")
	}
	if viols, _ := SCOracle(b.Graph(), spec.SeqQueue{}, 0, false); len(viols) != 0 {
		t.Fatalf("read-only-filtered oracle must accept: %v", viols)
	}
}

func TestSCOracleUnknownOnOversizedInstance(t *testing.T) {
	b := core.NewGraphBuilder("q")
	for i := 0; i < 8; i++ {
		b.Add(core.Enq, int64(i+1), 0)
	}
	viols, unknown := SCOracle(b.Graph(), spec.SeqQueue{}, 4, true)
	if len(viols) != 0 || unknown != 1 {
		t.Fatalf("oversized instance: viols=%v unknown=%d, want none/1", viols, unknown)
	}
}
