package litmus

import (
	"reflect"
	"sort"
	"testing"

	"compass/internal/analysis/footprint"
)

// outcomeKeySet returns the sorted set of distinct outcome keys observed
// by a result — the invariant POR preserves. (The histogram counts are
// NOT preserved: POR's whole point is visiting fewer representatives of
// each equivalence class.)
func outcomeKeySet(r *Result) []string {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestPOREquivalence is the soundness gate for sleep-set partial-order
// reduction, modeled on TestFootprintEquivalence but asserting the
// weaker (and correct) invariant: for every litmus test in the suite
// plus the footprint-rich workloads, exhaustive exploration with POR
// must produce the identical outcome *set* — and therefore the
// identical verdict — as exploration without it, with no more runs.
func TestPOREquivalence(t *testing.T) {
	tests := append(Suite(), FootprintSuite()...)
	for _, tc := range tests {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			plain := Run(tc, 0, WithWorkers(1))
			reduced := Run(tc, 0, WithWorkers(1), WithPOR(true))
			if !plain.Complete || !reduced.Complete {
				t.Fatalf("completeness diverged or lost: plain=%v por=%v", plain.Complete, reduced.Complete)
			}
			if got, want := outcomeKeySet(reduced), outcomeKeySet(plain); !reflect.DeepEqual(got, want) {
				t.Errorf("outcome sets diverged:\nwithout POR: %v\nwith POR:    %v", want, got)
			}
			if plain.OK() != reduced.OK() {
				t.Errorf("verdict diverged: plain=%v por=%v", plain.OK(), reduced.OK())
			}
			if reduced.Runs > plain.Runs {
				t.Errorf("POR explored more runs (%d) than full exploration (%d)", reduced.Runs, plain.Runs)
			}
		})
	}
}

// TestPORReductionBites pins the acceptance bar: at least three tests of
// the core litmus suite must explore at least 3x fewer executions under
// POR at identical outcome sets. (Currently SB, LB and IRIW clear the
// bar; IRIW — four threads, two locations — collapses by ~88x.)
func TestPORReductionBites(t *testing.T) {
	hits := 0
	for _, tc := range Suite() {
		plain := Run(tc, 0, WithWorkers(1))
		reduced := Run(tc, 0, WithWorkers(1), WithPOR(true))
		if !reflect.DeepEqual(outcomeKeySet(plain), outcomeKeySet(reduced)) {
			t.Fatalf("%s: outcome sets diverged", tc.Name)
		}
		if reduced.Runs*3 <= plain.Runs {
			hits++
			t.Logf("%s: %d -> %d executions (%.1fx)", tc.Name, plain.Runs, reduced.Runs,
				float64(plain.Runs)/float64(reduced.Runs))
		}
	}
	if hits < 3 {
		t.Fatalf("only %d suite tests achieved a 3x reduction, want >= 3", hits)
	}
}

// TestPORComposesWithFootprintAndWorkers exercises the full stack at
// once: POR plus a footprint certificate plus parallel subtree
// exploration must visit exactly the runs the serial POR exploration
// does and observe the same outcome set.
func TestPORComposesWithFootprintAndWorkers(t *testing.T) {
	tests := append(Suite(), FootprintSuite()...)
	for _, tc := range tests {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			fp, err := footprint.Extract(tc.Build)
			if err != nil {
				t.Fatalf("extracting footprint: %v", err)
			}
			serial := Run(tc, 0, WithWorkers(1), WithPOR(true))
			stacked := Run(tc, 0, WithWorkers(4), WithPOR(true), WithFootprint(fp))
			if stacked.Runs != serial.Runs {
				t.Errorf("runs diverged: serial POR %d, POR+footprint+workers %d", serial.Runs, stacked.Runs)
			}
			if !reflect.DeepEqual(outcomeKeySet(serial), outcomeKeySet(stacked)) {
				t.Errorf("outcome sets diverged:\nserial:  %v\nstacked: %v",
					outcomeKeySet(serial), outcomeKeySet(stacked))
			}
			if serial.OK() != stacked.OK() {
				t.Errorf("verdict diverged: serial=%v stacked=%v", serial.OK(), stacked.OK())
			}
		})
	}
}
