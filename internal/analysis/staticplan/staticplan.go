// Package staticplan extracts static access plans (memory.Plan) from the
// Go sources of compass programs: for every worker closure (and the main
// thread's final phase) it computes the may-set of (allocation-site name,
// access kind, mode) the thread can ever perform, by abstract
// interpretation of the closure body.
//
// The analysis is deliberately simple and deliberately honest about its
// limits. It tracks view.Loc values through:
//
//   - locals and := / = assignments,
//   - pointer-out parameters (*x = th.Alloc(...) in a setup helper),
//   - struct fields assigned from allocations (composite literals and
//     field stores), with one abstract object per allocation,
//   - slices and arrays of view.Loc (all elements merged into one cell),
//   - calls to statically resolvable functions and methods, inlined to a
//     bounded depth with arguments bound (constant strings and modes
//     propagate, so names like name+".head" fold),
//   - both branches of conditionals, every switch case, and loop bodies
//     (iterated to a fixpoint of the monotone weak updates).
//
// Whenever a location's identity leaves that fragment — it is converted
// to or from an integer (stored in simulated memory), passed to a call
// that cannot be resolved to source, obtained through an interface whose
// dynamic type is unknown, or allocated under a non-constant name — the
// thread's plan collapses to ⊤ ("may touch anything") with a reason.
// ⊤ is a verdict, not an error: consumers (the certificate gate and the
// POR oracle in internal/memory/plan.go) treat ⊤ threads as able to
// touch every site, so an imprecise analysis can cost pruning but never
// soundness.
//
// Thread numbering matches the machine: plan thread 0 is the main
// thread's final phase only — setup runs before any concurrency exists,
// so its accesses are interpreted for their binding effects (which
// variable names which site) but contribute no plan sites. Worker i is
// plan thread i+1.
package staticplan

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"compass/internal/analyzers/lint"
	"compass/internal/memory"
)

// maxInlineDepth bounds call inlining; deeper chains yield ⊤.
const maxInlineDepth = 8

// maxLoopPasses bounds loop-body fixpoint iteration; instability beyond
// it yields ⊤ (the lattice is finite, so this fires only on pathological
// inputs).
const maxLoopPasses = 32

// allModes is the conservative mode mask for unfoldable mode arguments.
const allModes = memory.ModeMask(1<<(memory.AcqRel+1)) - 1

// Interp interprets program-constructor functions of one or more loaded
// packages. Packages are indexed by import path; function declarations by
// (package path, receiver, name) strings, so declarations resolve across
// packages even though separate loads yield distinct types.Package
// identities.
type Interp struct {
	fset  *token.FileSet
	pkgs  []*pkgInfo
	decls map[string]*declInfo
}

type pkgInfo struct {
	pkg  *lint.Package
	info *types.Info
}

type declInfo struct {
	decl *ast.FuncDecl
	pkg  *pkgInfo
}

// NewInterp returns an interpreter over the given packages (all loaded
// through the same lint.Loader, or a single testdata package).
func NewInterp(pkgs ...*lint.Package) *Interp {
	in := &Interp{decls: map[string]*declInfo{}}
	for _, p := range pkgs {
		if in.fset == nil {
			in.fset = p.Fset
		}
		pi := &pkgInfo{pkg: p, info: p.TypesInfo}
		in.pkgs = append(in.pkgs, pi)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				in.decls[declKey(p.PkgPath, fd)] = &declInfo{decl: fd, pkg: pi}
			}
		}
	}
	return in
}

// declKey renders a function declaration's cross-package identity.
func declKey(pkgPath string, fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			recv = id.Name + "."
		}
	}
	return pkgPath + "." + recv + fd.Name.Name
}

// objKey renders the key a types.Object for a function resolves to.
func objKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, name, ok := lint.NamedTypePath(sig.Recv().Type()); ok {
			recv = name + "."
		}
	}
	return fn.Pkg().Path() + "." + recv + fn.Name()
}

// --- abstract values -------------------------------------------------

type valKind uint8

const (
	kBottom valKind = iota // unset cell
	kAny                   // unknown value the analysis does not track
	kConst                 // compile-time constant (string, int, bool)
	kLoc                   // view.Loc: may-set of site names, or ⊤
	kPtr                   // pointer to a tracked cell
	kObj                   // struct / slice / array instance with tracked cells
	kFunc                  // function value (closure with captured frame)
	kThread                // the *machine.Thread handle
)

type val struct {
	kind   valKind
	c      constant.Value  // kConst
	names  map[string]bool // kLoc (top set ⇒ ⊤)
	top    bool            // kLoc ⊤
	reason string          // kLoc ⊤ reason
	cell   *cell           // kPtr
	obj    *object         // kObj
	fn     *funcVal        // kFunc
}

func anyVal() val           { return val{kind: kAny} }
func topLoc(why string) val { return val{kind: kLoc, top: true, reason: why} }

func locVal(names ...string) val {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return val{kind: kLoc, names: m}
}

// object is one abstract struct/slice/array instance. Slice and array
// elements all merge into the single cell keyed elemKey.
type object struct {
	typeKey string // "pkgpath.Type", for method dispatch
	fields  map[string]*cell
}

const elemKey = "[]"

func (o *object) cell(name string) *cell {
	if o.fields == nil {
		o.fields = map[string]*cell{}
	}
	c := o.fields[name]
	if c == nil {
		c = &cell{}
		o.fields[name] = c
	}
	return c
}

// funcVal is a function value: either a closure literal with its
// captured frame, or a resolved declaration (possibly a bound method).
type funcVal struct {
	lit  *ast.FuncLit
	pkg  *pkgInfo
	fr   *frame // defining frame (captured variables), for lit
	decl *declInfo
	recv val // bound receiver, for method values
}

// cell is one storage slot (a variable, field, or merged slice element).
type cell struct{ v val }

func mergeVal(a, b val) val {
	if a.kind == kBottom {
		return b
	}
	if b.kind == kBottom {
		return a
	}
	if a.kind != b.kind {
		// A slot holding a location in one branch and something untracked
		// in another is no longer a trackable location.
		if a.kind == kLoc || b.kind == kLoc {
			return topLoc("location merged with an untracked value")
		}
		return anyVal()
	}
	switch a.kind {
	case kConst:
		if a.c != nil && b.c != nil && a.c.Kind() == b.c.Kind() && constant.Compare(a.c, token.EQL, b.c) {
			return a
		}
		return anyVal()
	case kLoc:
		if a.top {
			return a
		}
		if b.top {
			return b
		}
		m := map[string]bool{}
		for n := range a.names {
			m[n] = true
		}
		for n := range b.names {
			m[n] = true
		}
		return val{kind: kLoc, names: m}
	case kPtr:
		if a.cell == b.cell {
			return a
		}
		return anyVal()
	case kObj:
		if a.obj == b.obj {
			return a
		}
		return anyVal()
	case kFunc:
		if a.fn == b.fn {
			return a
		}
		return anyVal()
	}
	return anyVal()
}

// valEq reports lattice equality, for fixpoint detection.
func valEq(a, b val) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case kConst:
		return a.c == b.c || (a.c != nil && b.c != nil && a.c.Kind() == b.c.Kind() && constant.Compare(a.c, token.EQL, b.c))
	case kLoc:
		if a.top != b.top {
			return false
		}
		if a.top {
			return true
		}
		if len(a.names) != len(b.names) {
			return false
		}
		for n := range a.names {
			if !b.names[n] {
				return false
			}
		}
		return true
	case kPtr:
		return a.cell == b.cell
	case kObj:
		return a.obj == b.obj
	case kFunc:
		return a.fn == b.fn
	}
	return true
}

// frame is one lexical environment, with a parent chain so closures see
// their defining scope.
type frame struct {
	vars   map[types.Object]*cell
	parent *frame
}

func newFrame(parent *frame) *frame {
	return &frame{vars: map[types.Object]*cell{}, parent: parent}
}

func (fr *frame) lookup(o types.Object) *cell {
	for f := fr; f != nil; f = f.parent {
		if c, ok := f.vars[o]; ok {
			return c
		}
	}
	return nil
}

func (fr *frame) define(o types.Object) *cell {
	c := &cell{}
	fr.vars[o] = c
	return c
}

// --- the interpreter -------------------------------------------------

// exec is one thread-body interpretation: it accumulates plan sites into
// sink (nil while interpreting setup, whose accesses predate concurrency)
// and collapses to ⊤ on the first escape.
type exec struct {
	in    *Interp
	pkg   *pkgInfo
	sink  *memory.ThreadPlan
	ret   *retSlot
	depth int
	gen   int // bumped on every cell change, for loop fixpoints
	// active guards against recursion.
	active map[ast.Node]bool
}

// mset weak-updates a cell, tracking whether anything changed.
func (e *exec) mset(c *cell, v val) {
	nv := mergeVal(c.v, v)
	if !valEq(c.v, nv) {
		c.v = nv
		e.gen++
	}
}

func (e *exec) top(why string) {
	if e.sink != nil && !e.sink.Top {
		e.sink.Top = true
		e.sink.TopReason = why
	}
}

func (e *exec) topf(format string, args ...interface{}) {
	e.top(fmt.Sprintf(format, args...))
}

// done reports whether further interpretation of this thread is
// pointless (⊤ absorbs everything).
func (e *exec) done() bool { return e.sink != nil && e.sink.Top }

func (e *exec) info() *types.Info { return e.pkg.info }

// fixpoint iterates body until no cell changes (or ⊤).
func (e *exec) fixpoint(body func()) {
	for i := 0; i < maxLoopPasses; i++ {
		g := e.gen
		body()
		if e.done() || e.gen == g {
			return
		}
	}
	e.top("loop analysis did not stabilize")
}

// isLocType reports whether t is view.Loc.
func isLocType(t types.Type) bool {
	path, name, ok := lint.NamedTypePath(t)
	return ok && name == "Loc" && strings.HasSuffix(path, "internal/view")
}

func isThreadType(t types.Type) bool {
	path, name, ok := lint.NamedTypePath(t)
	return ok && name == "Thread" && strings.HasSuffix(path, "internal/machine")
}

// hasLoc reports whether the abstract value carries location identity —
// the escape test for arguments of unresolvable calls.
func hasLoc(v val, seen map[*object]bool) bool {
	switch v.kind {
	case kLoc:
		return true
	case kPtr:
		if v.cell != nil {
			return hasLoc(v.cell.v, seen)
		}
	case kObj:
		if v.obj == nil || seen[v.obj] {
			return false
		}
		if seen == nil {
			seen = map[*object]bool{}
		}
		seen[v.obj] = true
		for _, c := range v.obj.fields {
			if hasLoc(c.v, seen) {
				return true
			}
		}
	case kFunc:
		// A closure may capture locations through its defining frames.
		if v.fn != nil && v.fn.fr != nil {
			for f := v.fn.fr; f != nil; f = f.parent {
				for _, c := range f.vars {
					if c.v.kind == kLoc || c.v.kind == kObj || c.v.kind == kPtr {
						return true
					}
				}
			}
		}
	}
	return false
}

// stmt interprets one statement.
func (e *exec) stmt(fr *frame, s ast.Stmt) {
	if e.done() || s == nil {
		return
	}
	switch st := s.(type) {
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := e.info().Defs[name]
				if obj == nil {
					continue
				}
				c := fr.define(obj)
				if i < len(vs.Values) {
					e.mset(c, e.eval(fr, vs.Values[i]))
				}
			}
		}
	case *ast.AssignStmt:
		e.assign(fr, st)
	case *ast.ExprStmt:
		e.eval(fr, st.X)
	case *ast.IncDecStmt:
		e.eval(fr, st.X)
	case *ast.BlockStmt:
		for _, s := range st.List {
			e.stmt(fr, s)
		}
	case *ast.IfStmt:
		e.stmt(fr, st.Init)
		e.eval(fr, st.Cond)
		e.stmt(fr, st.Body)
		e.stmt(fr, st.Else)
	case *ast.ForStmt:
		e.stmt(fr, st.Init)
		e.fixpoint(func() {
			if st.Cond != nil {
				e.eval(fr, st.Cond)
			}
			e.stmt(fr, st.Body)
			e.stmt(fr, st.Post)
		})
	case *ast.RangeStmt:
		x := e.eval(fr, st.X)
		e.fixpoint(func() {
			bind := func(expr ast.Expr, v val) {
				id, ok := expr.(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				if obj := e.info().Defs[id]; obj != nil {
					c := fr.lookup(obj)
					if c == nil {
						c = fr.define(obj)
					}
					e.mset(c, v)
				} else if c := e.lvalue(fr, id); c != nil {
					e.mset(c, v)
				}
			}
			if st.Key != nil {
				bind(st.Key, anyVal())
			}
			if st.Value != nil {
				ev := anyVal()
				if x.kind == kObj && x.obj != nil {
					ev = x.obj.cell(elemKey).v
				}
				bind(st.Value, ev)
			}
			e.stmt(fr, st.Body)
		})
	case *ast.SwitchStmt:
		e.stmt(fr, st.Init)
		if st.Tag != nil {
			e.eval(fr, st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, x := range cc.List {
				e.eval(fr, x)
			}
			for _, s := range cc.Body {
				e.stmt(fr, s)
			}
		}
	case *ast.TypeSwitchStmt:
		e.stmt(fr, st.Init)
		e.stmt(fr, st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, s := range cc.Body {
				e.stmt(fr, s)
			}
		}
	case *ast.ReturnStmt:
		for i, r := range st.Results {
			v := e.eval(fr, r)
			if e.ret != nil {
				if i < len(e.ret.vals) {
					e.ret.vals[i] = mergeVal(e.ret.vals[i], v)
				} else {
					e.ret.vals = append(e.ret.vals, v)
				}
			}
		}
	case *ast.DeferStmt:
		e.call(fr, st.Call)
	case *ast.GoStmt:
		// A goroutine inside a thread body would run outside the machine's
		// scheduling; nothing analyzable does this.
		e.top("thread body spawns a goroutine")
	case *ast.SendStmt:
		if hasLoc(e.eval(fr, st.Value), nil) {
			e.top("location sent on a channel")
		}
		e.eval(fr, st.Chan)
	case *ast.LabeledStmt:
		e.stmt(fr, st.Stmt)
	case *ast.SelectStmt:
		e.top("thread body uses select")
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// assign handles = / := / op= statements.
func (e *exec) assign(fr *frame, st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value assignment: evaluate for effects; individual results
		// are not tracked, so location-typed targets go unknown (their use
		// sites then report ⊤).
		e.eval(fr, st.Rhs[0])
		for _, lhs := range st.Lhs {
			e.bind(fr, st.Tok, lhs, anyVal())
		}
		return
	}
	for i, lhs := range st.Lhs {
		var rv val
		if i < len(st.Rhs) {
			rv = e.eval(fr, st.Rhs[i])
		}
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
			rv = anyVal() // x += ... never yields a trackable location
		}
		e.bind(fr, st.Tok, lhs, rv)
	}
}

func (e *exec) bind(fr *frame, tok token.Token, lhs ast.Expr, rv val) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if tok == token.DEFINE {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := e.info().Defs[id]; obj != nil {
				e.mset(fr.define(obj), rv)
				return
			}
		}
	}
	if c := e.lvalue(fr, lhs); c != nil {
		e.mset(c, rv)
		return
	}
	// Untracked destination (package-level var, map entry, field of an
	// unknown object): a location stored there can come back through a
	// path the analysis cannot see.
	if hasLoc(rv, nil) {
		e.topf("location stored into untracked destination %s", types.ExprString(lhs))
	}
}

// lvalue resolves an assignable expression to its cell, or nil.
func (e *exec) lvalue(fr *frame, lhs ast.Expr) *cell {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := e.info().Uses[x]; obj != nil {
			if c := fr.lookup(obj); c != nil {
				return c
			}
		}
		if obj := e.info().Defs[x]; obj != nil {
			if c := fr.lookup(obj); c != nil {
				return c
			}
		}
	case *ast.StarExpr:
		if p := e.eval(fr, x.X); p.kind == kPtr && p.cell != nil {
			return p.cell
		}
	case *ast.SelectorExpr:
		base := e.eval(fr, x.X)
		if base.kind == kObj && base.obj != nil {
			return base.obj.cell(x.Sel.Name)
		}
	case *ast.IndexExpr:
		base := e.eval(fr, x.X)
		e.eval(fr, x.Index)
		if base.kind == kObj && base.obj != nil {
			return base.obj.cell(elemKey)
		}
	}
	return nil
}

// eval interprets one expression.
func (e *exec) eval(fr *frame, x ast.Expr) val {
	if x == nil || e.done() {
		return anyVal()
	}
	if tv, ok := e.info().Types[x]; ok && tv.Value != nil {
		return val{kind: kConst, c: tv.Value}
	}
	switch ex := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := e.info().Uses[ex]
		if obj == nil {
			obj = e.info().Defs[ex]
		}
		if obj == nil {
			return anyVal()
		}
		if c := fr.lookup(obj); c != nil {
			return c.v
		}
		if fn, ok := obj.(*types.Func); ok {
			if di := e.in.decls[objKey(fn)]; di != nil {
				return val{kind: kFunc, fn: &funcVal{decl: di}}
			}
			return anyVal()
		}
		if isLocType(obj.Type()) {
			return topLoc(fmt.Sprintf("location %s is not bound in the tracked scope", ex.Name))
		}
		return anyVal()
	case *ast.SelectorExpr:
		if sel, ok := e.info().Selections[ex]; ok {
			base := e.eval(fr, ex.X)
			switch sel.Kind() {
			case types.FieldVal:
				if base.kind == kObj && base.obj != nil {
					return base.obj.cell(ex.Sel.Name).v
				}
				if tv, ok := e.info().Types[ex]; ok && isLocType(tv.Type) {
					return topLoc(fmt.Sprintf("location field %s of untracked value", types.ExprString(ex)))
				}
				return anyVal()
			case types.MethodVal:
				if di := e.resolveMethod(base, ex.Sel); di != nil {
					return val{kind: kFunc, fn: &funcVal{decl: di, recv: base}}
				}
				return anyVal()
			}
			return anyVal()
		}
		// Package-qualified function or variable.
		if obj := e.info().Uses[ex.Sel]; obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				if di := e.in.decls[objKey(fn)]; di != nil {
					return val{kind: kFunc, fn: &funcVal{decl: di}}
				}
				return anyVal()
			}
			if isLocType(obj.Type()) {
				return topLoc(fmt.Sprintf("package-level location %s", types.ExprString(ex)))
			}
		}
		return anyVal()
	case *ast.UnaryExpr:
		if ex.Op == token.AND {
			if c := e.lvalue(fr, ex.X); c != nil {
				return val{kind: kPtr, cell: c}
			}
			v := e.eval(fr, ex.X)
			if v.kind == kObj {
				return v // &T{...}: the object stands for the pointer too
			}
			return anyVal()
		}
		return e.eval(fr, ex.X)
	case *ast.StarExpr:
		p := e.eval(fr, ex.X)
		if p.kind == kPtr && p.cell != nil {
			return p.cell.v
		}
		if p.kind == kObj {
			return p
		}
		if tv, ok := e.info().Types[x]; ok && isLocType(tv.Type) {
			return topLoc("location loaded through an untracked pointer")
		}
		return anyVal()
	case *ast.BinaryExpr:
		a := e.eval(fr, ex.X)
		b := e.eval(fr, ex.Y)
		if ex.Op == token.ADD && a.kind == kConst && b.kind == kConst &&
			a.c != nil && b.c != nil && a.c.Kind() == constant.String && b.c.Kind() == constant.String {
			return val{kind: kConst, c: constant.BinaryOp(a.c, token.ADD, b.c)}
		}
		return anyVal()
	case *ast.CallExpr:
		return e.call(fr, ex)
	case *ast.FuncLit:
		return val{kind: kFunc, fn: &funcVal{lit: ex, pkg: e.pkg, fr: fr}}
	case *ast.CompositeLit:
		return e.composite(fr, ex)
	case *ast.IndexExpr:
		base := e.eval(fr, ex.X)
		e.eval(fr, ex.Index)
		if base.kind == kObj && base.obj != nil {
			return base.obj.cell(elemKey).v
		}
		if tv, ok := e.info().Types[x]; ok && isLocType(tv.Type) {
			return topLoc(fmt.Sprintf("location element of untracked container %s", types.ExprString(ex.X)))
		}
		return anyVal()
	case *ast.SliceExpr:
		return e.eval(fr, ex.X)
	case *ast.TypeAssertExpr:
		e.eval(fr, ex.X)
		if tv, ok := e.info().Types[x]; ok && isLocType(tv.Type) {
			return topLoc("location recovered through a type assertion")
		}
		return anyVal()
	}
	if tv, ok := e.info().Types[x]; ok && isLocType(tv.Type) {
		return topLoc(fmt.Sprintf("unhandled location expression %s", types.ExprString(x)))
	}
	return anyVal()
}

// composite interprets a composite literal into an abstract object.
func (e *exec) composite(fr *frame, cl *ast.CompositeLit) val {
	tv, ok := e.info().Types[cl]
	if !ok {
		return anyVal()
	}
	switch tt := tv.Type.Underlying().(type) {
	case *types.Struct:
		obj := &object{}
		if path, name, ok := lint.NamedTypePath(tv.Type); ok {
			obj.typeKey = path + "." + name
		}
		for i, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					e.mset(obj.cell(key.Name), e.eval(fr, kv.Value))
					continue
				}
				e.eval(fr, kv.Value)
				continue
			}
			if i < tt.NumFields() {
				e.mset(obj.cell(tt.Field(i).Name()), e.eval(fr, el))
			}
		}
		return val{kind: kObj, obj: obj}
	case *types.Slice, *types.Array:
		obj := &object{}
		for _, el := range cl.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			e.mset(obj.cell(elemKey), e.eval(fr, v))
		}
		return val{kind: kObj, obj: obj}
	case *types.Map:
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if hasLoc(e.eval(fr, kv.Value), nil) {
					e.top("location stored in a map literal")
				}
			}
		}
		return anyVal()
	}
	return anyVal()
}

// resolveMethod resolves a method selection on an abstract receiver to
// its source declaration: through the receiver object's concrete type
// when known (which also resolves interface calls whose dynamic type the
// interpreter itself constructed), otherwise through the static type.
func (e *exec) resolveMethod(base val, sel *ast.Ident) *declInfo {
	if base.kind == kObj && base.obj != nil && base.obj.typeKey != "" {
		if dot := strings.LastIndex(base.obj.typeKey, "."); dot >= 0 {
			key := base.obj.typeKey[:dot] + "." + base.obj.typeKey[dot+1:] + "." + sel.Name
			if di := e.in.decls[key]; di != nil {
				return di
			}
		}
	}
	if fn, ok := e.info().Uses[sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				return nil // interface dispatch with unknown dynamic type
			}
		}
		if di := e.in.decls[objKey(fn)]; di != nil {
			return di
		}
	}
	return nil
}
