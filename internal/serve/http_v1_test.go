package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// decodeEnvelope asserts a non-2xx response carries the uniform
// {"error", "code"} JSON envelope and returns it.
func decodeEnvelope(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	defer resp.Body.Close()
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v", err)
	}
	if ae.Error == "" || ae.Code == "" {
		t.Fatalf("envelope missing fields: %+v", ae)
	}
	return ae
}

// TestHTTPV1Lifecycle walks the whole job lifecycle over the canonical
// /v1 paths: submit, get, list, events, workloads, stats, healthz.
func TestHTTPV1Lifecycle(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t)

	var names []string
	if code := getJSON(t, srv.URL+"/v1/workloads", &names); code != http.StatusOK || len(names) == 0 {
		t.Fatalf("GET /v1/workloads: code %d, %d names", code, len(names))
	}
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("GET /v1/healthz: %d", code)
	}

	body, _ := json.Marshal(JobSpec{Workload: "litmus/SB", POR: "sleep"})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for view.Status == StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", view.ID)
		}
		time.Sleep(10 * time.Millisecond)
		if code := getJSON(t, srv.URL+"/v1/jobs/"+view.ID, &view); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: %d", view.ID, code)
		}
	}
	if view.Status != StatusDone || view.Result == nil || !view.Result.Passed {
		t.Fatalf("job did not pass: %+v", view)
	}

	var list []JobView
	if code := getJSON(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("GET /v1/jobs: code %d, %d jobs", code, len(list))
	}
	eresp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/{id}/events: %d", eresp.StatusCode)
	}
	if code := getJSON(t, srv.URL+"/v1/stats", nil); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}
}

// TestHTTPDeprecationAliases: every pre-versioning path answers
// identically to its /v1 successor but flags itself deprecated with a
// Deprecation header and a successor-version Link; the /v1 paths carry
// neither.
func TestHTTPDeprecationAliases(t *testing.T) {
	t.Parallel()
	srv, _ := newTestServer(t)

	paths := []string{"/jobs", "/workloads", "/stats", "/healthz"}
	for _, path := range paths {
		old, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		old.Body.Close()
		canon, err := http.Get(srv.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		canon.Body.Close()
		if old.StatusCode != canon.StatusCode {
			t.Errorf("%s: alias %d vs canonical %d", path, old.StatusCode, canon.StatusCode)
		}
		if got := old.Header.Get("Deprecation"); got != "true" {
			t.Errorf("GET %s: Deprecation header = %q, want \"true\"", path, got)
		}
		wantLink := `</v1` + path + `>; rel="successor-version"`
		if got := old.Header.Get("Link"); got != wantLink {
			t.Errorf("GET %s: Link = %q, want %q", path, got, wantLink)
		}
		if got := canon.Header.Get("Deprecation"); got != "" {
			t.Errorf("GET /v1%s: unexpected Deprecation header %q", path, got)
		}
	}

	// POST /jobs alias carries the headers too (on the error path here:
	// empty spec is refused, which also proves the alias shares the
	// handler).
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("POST /jobs alias missing Deprecation header")
	}
	if ae := decodeEnvelope(t, resp); ae.Code != codeBadRequest {
		t.Errorf("empty spec code = %q, want %q", ae.Code, codeBadRequest)
	}

	// The lease endpoints postdate versioning: /v1-only, no alias.
	lresp, err := http.Post(srv.URL+"/shard/leases", "application/json", strings.NewReader(`{"peer":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusNotFound {
		t.Errorf("unversioned lease path answered %d, want 404 (no alias)", lresp.StatusCode)
	}
}

// TestHTTPErrorEnvelope pins the {"error","code"} envelope and its code
// vocabulary across the API's failure modes.
func TestHTTPErrorEnvelope(t *testing.T) {
	t.Parallel()
	srv, m := newTestServer(t)

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// bad_request: malformed body and invalid spec.
	if ae := decodeEnvelope(t, post("/v1/jobs", `{not json`)); ae.Code != codeBadRequest {
		t.Errorf("malformed body code = %q", ae.Code)
	}
	if ae := decodeEnvelope(t, post("/v1/jobs", `{"workload":"no/such"}`)); ae.Code != codeBadRequest {
		t.Errorf("unknown workload code = %q", ae.Code)
	}

	// not_found: unknown job.
	resp, err := http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/jobs/nope: %d, want 404", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != codeNotFound {
		t.Errorf("unknown job code = %q", ae.Code)
	}

	// no_work: acquiring with no coordinator job sharded.
	resp = post("/v1/shard/leases", `{"peer":"idle"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("acquire with no work: %d, want 404", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != codeNoWork {
		t.Errorf("no-work code = %q", ae.Code)
	}

	// stale_lease: renewing and returning under a dead lease.
	resp = post("/v1/shard/leases/renew", `{"job_id":"gone","lease_id":"gone-l0","epoch":0}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale renew: %d, want 409", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != codeStaleLease {
		t.Errorf("stale renew code = %q", ae.Code)
	}
	resp = post("/v1/shard/leases/return", `{"job_id":"gone","lease_id":"gone-l0","epoch":0}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale return: %d, want 409", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != codeStaleLease {
		t.Errorf("stale return code = %q", ae.Code)
	}

	// shutting_down: submission once the drain began.
	m.Shutdown()
	resp = post("/v1/jobs", `{"workload":"litmus/SB","por":"sleep"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != codeShuttingDown {
		t.Errorf("drain code = %q", ae.Code)
	}
}

// TestHTTPV1LeaseRoundTrip drives the lease protocol over HTTP directly:
// acquire → renew → return, asserting grant shape and the renew/return
// happy paths the Peer client depends on.
func TestHTTPV1LeaseRoundTrip(t *testing.T) {
	t.Parallel()
	m, err := NewManager(Config{StateDir: t.TempDir(), Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(srv.Close)
	j, err := m.Submit(JobSpec{Workload: "litmus/SB", POR: "off", Coordinator: true,
		LeasePrefixes: 2, LeaseTTLMillis: 60000})
	if err != nil {
		t.Fatal(err)
	}
	waitShardPending(t, j)

	postJSON := func(path string, in, out interface{}) *http.Response {
		t.Helper()
		body, _ := json.Marshal(in)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp
	}

	var grant LeaseGrant
	if resp := postJSON("/v1/shard/leases", map[string]string{"peer": "rt"}, &grant); resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire: %d", resp.StatusCode)
	}
	if grant.JobID != j.ID || grant.LeaseID == "" || grant.Frontier == nil || grant.Frontier.Len() == 0 {
		t.Fatalf("malformed grant: %+v", grant)
	}
	if grant.Spec.Coordinator {
		t.Error("granted spec still flagged Coordinator; peers must not re-shard")
	}
	if grant.TTLMillis <= 0 {
		t.Errorf("grant TTL = %d, want positive", grant.TTLMillis)
	}

	renew := map[string]interface{}{"job_id": grant.JobID, "lease_id": grant.LeaseID, "epoch": grant.Epoch}
	if resp := postJSON("/v1/shard/leases/renew", renew, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("renew: %d", resp.StatusCode)
	}
	// Wrong epoch → 409.
	badRenew := map[string]interface{}{"job_id": grant.JobID, "lease_id": grant.LeaseID, "epoch": grant.Epoch + 1}
	if resp := postJSON("/v1/shard/leases/renew", badRenew, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("bad-epoch renew: %d, want 409", resp.StatusCode)
	}

	ret := runLeaseLocal(t, &grant)
	if resp := postJSON("/v1/shard/leases/return", ret, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("return: %d", resp.StatusCode)
	}
	// Drain the rest so the manager can wind down.
	for {
		var g LeaseGrant
		resp := postJSON("/v1/shard/leases", map[string]string{"peer": "rt"}, &g)
		if resp.StatusCode == http.StatusNotFound {
			v := j.View()
			if v.Status != StatusRunning {
				break
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drain acquire: %d", resp.StatusCode)
		}
		if resp := postJSON("/v1/shard/leases/return", runLeaseLocal(t, &g), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("drain return: %d", resp.StatusCode)
		}
	}
	m.Wait()
	if v := j.View(); v.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", v.Status, v.Error)
	}
}
