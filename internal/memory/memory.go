// Package memory implements a view-based operational machine for the ORC11
// memory model (the RC11 variant used by iRC11 and COMPASS): per-location
// totally ordered write histories with timestamps, per-thread views,
// non-atomic / relaxed / acquire / release accesses, release and acquire
// fences, and atomic read-modify-write operations.
//
// The machine is exactly the model sketched in §2.3 of the COMPASS paper:
// a write appends a message (value, view) to the location's history at a
// fresh timestamp; a read picks a message whose timestamp is at least the
// reader's current view of the location; release writes publish the
// writer's current view into the message, and acquire reads join the
// message view into the reader's view. Because a read can never observe a
// message that has not yet been appended, po ∪ rf is acyclic by
// construction — load-buffering behaviours are forbidden, as ORC11
// requires.
//
// Every message and every thread carries a Clock: a physical view paired
// with a logical view (a set of library event IDs, §3.1 of the paper).
// Logical views thus ride on physical views through exactly the same
// release/acquire channels.
package memory

import (
	"fmt"

	"compass/internal/view"
)

// Mode is a memory access mode. Fences use FenceAcq/FenceRel/FenceAcqRel.
type Mode uint8

// Access and fence modes, from weakest to strongest.
const (
	NA     Mode = iota // non-atomic: racy accesses are undefined behaviour
	Rlx                // relaxed atomic
	Acq                // acquire (loads, RMW read side)
	Rel                // release (stores, RMW write side)
	AcqRel             // acquire-release (RMWs)
)

func (m Mode) String() string {
	switch m {
	case NA:
		return "na"
	case Rlx:
		return "rlx"
	case Acq:
		return "acq"
	case Rel:
		return "rel"
	case AcqRel:
		return "acq_rel"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// acquires reports whether the mode includes acquire semantics on reads.
func (m Mode) acquires() bool { return m == Acq || m == AcqRel }

// releases reports whether the mode includes release semantics on writes.
func (m Mode) releases() bool { return m == Rel || m == AcqRel }

// Message is a single write event in a location's history. Messages are
// ordered by timestamp; the timestamp order is the location's modification
// order (mo).
type Message struct {
	T      view.Time  // timestamp: position in modification order, from 1
	Val    int64      // the written value
	Clk    view.Clock // the message clock (view released by the writer)
	Writer int        // writing thread's ID (diagnostics)
	Step   int        // global machine step at which the write happened
	IsRMW  bool       // whether this message was produced by an RMW
}

// UAFError reports an access to a freed location (use-after-free) or a
// double free — undefined behaviour, treated like a race by the checker.
// Safe memory reclamation schemes (hazard pointers, §6 of the paper) are
// verified by the absence of UAFError across explored executions.
type UAFError struct {
	Loc    view.Loc
	Name   string
	Kind   string // "read", "write", "rmw", "free"
	Thread int
}

func (e *UAFError) Error() string {
	return fmt.Sprintf("use-after-free: %s of freed %s (l%d) by thread %d",
		e.Kind, e.Name, e.Loc, e.Thread)
}

// Free marks a location as deallocated. Any subsequent access (or second
// free) is undefined behaviour and is reported.
func (m *Memory) Free(tv *ThreadView, l view.Loc) error {
	m.step++
	loc := m.locs[l]
	if loc.freed {
		return &UAFError{Loc: l, Name: loc.name, Kind: "free", Thread: tv.ID}
	}
	if c := m.cert(l); c != nil {
		// Freeing is a write-like event: only the certified owner of an
		// exclusive location may do it, and read-only locations stay live.
		if err := m.validateWrite(c, tv, l, "free"); err != nil {
			return err
		}
	}
	loc.freed = true
	return nil
}

// RaceError reports a data race on a non-atomic access. In ORC11 races on
// non-atomics are undefined behaviour; the checker treats any detected race
// as a verification failure (the paper's logic proves race freedom).
type RaceError struct {
	Loc    view.Loc
	Name   string
	Kind   string // "read" or "write"
	Thread int
	Detail string
}

func (e *RaceError) Error() string {
	return fmt.Sprintf("data race: na %s of %s (l%d) by thread %d: %s",
		e.Kind, e.Name, e.Loc, e.Thread, e.Detail)
}

// Chooser resolves read nondeterminism: when a relaxed/acquire read has n
// visible candidate messages, Choose(n) picks which one is read. The
// scheduler supplies deterministic, replayable choosers.
type Chooser interface {
	Choose(n int) int
}

// location is the per-location state.
type location struct {
	name     string
	hist     []Message // hist[i].T == Time(i+1)
	readView view.View // join of na-readers' current views (race detection)
	hasRead  bool
	freed    bool // set by Free; any later access is use-after-free
}

func (l *location) maxT() view.Time { return view.Time(len(l.hist)) }

func (l *location) last() *Message { return &l.hist[len(l.hist)-1] }

// Memory is the shared state of the machine: all allocated locations plus
// a global step counter. Access is serialized by the scheduler (one memory
// event per machine step), so Memory needs no internal locking.
type Memory struct {
	locs []*location
	step int
	// sc is the global SC-fence clock (see FenceSC).
	sc view.Clock

	// Footprint certificate state (see footprint.go). fp is installed by
	// Certify; sealed flips at SealSetup, after which certified locations
	// take validated fast paths counted by prunedReads / raceSkips.
	fp          *Footprint
	sealed      bool
	prunedReads int64
	raceSkips   int64
}

// New returns an empty memory.
func New() *Memory { return &Memory{sc: view.NewClock()} }

// Step returns the number of memory events executed so far.
func (m *Memory) Step() int { return m.step }

// NumLocs returns the number of allocated locations.
func (m *Memory) NumLocs() int { return len(m.locs) }

// Name returns the debug name of location l.
func (m *Memory) Name(l view.Loc) string { return m.locs[l].name }

// History returns a copy of the message history (modification order) of l.
func (m *Memory) History(l view.Loc) []Message {
	h := m.locs[l].hist
	out := make([]Message, len(h))
	copy(out, h)
	return out
}

// MaxTime returns the timestamp of the latest write to l.
func (m *Memory) MaxTime(l view.Loc) view.Time { return m.locs[l].maxT() }

// ThreadView is the per-thread view state of the ORC11 machine:
//
//   - Cur: the thread's current clock (what it has observed; grows
//     monotonically; ⊑ Acq).
//   - Acq: like Cur but additionally includes clocks obtained by relaxed
//     reads, which an acquire fence promotes into Cur.
//   - RelLoc: per-location release clocks, modelling C11 release sequences:
//     a relaxed write to l still carries the clock of the thread's previous
//     release write to l.
//   - FRel: the release-fence clock; a release fence sets it to Cur, and
//     subsequent relaxed writes carry it.
type ThreadView struct {
	ID     int
	Cur    view.Clock
	Acq    view.Clock
	RelLoc map[view.Loc]view.Clock
	FRel   view.Clock
}

// NewThreadView returns a fresh thread view with the given ID, starting
// from the bottom clock.
func NewThreadView(id int) *ThreadView {
	return &ThreadView{
		ID:     id,
		Cur:    view.NewClock(),
		Acq:    view.NewClock(),
		RelLoc: map[view.Loc]view.Clock{},
		FRel:   view.NewClock(),
	}
}

// Fork returns a thread view for a newly spawned thread that inherits the
// parent's current clock (thread creation synchronizes, as in C11/pthreads).
func (tv *ThreadView) Fork(childID int) *ThreadView {
	c := NewThreadView(childID)
	c.Cur = tv.Cur.Clone()
	c.Acq = tv.Cur.Clone()
	return c
}

// JoinClock joins an external clock into the thread's current view. Used
// by the machine for join-edges (waiting for a thread to finish) and by
// the event-graph recorder when an operation locally observes events.
func (tv *ThreadView) JoinClock(c view.Clock) {
	tv.Cur.JoinInto(c)
	tv.Acq.JoinInto(c)
}

// Alloc allocates a fresh location with a debug name and an initial value.
// The initializing write happens-before everything the allocating thread
// subsequently releases: its message carries the allocator's current clock.
func (m *Memory) Alloc(tv *ThreadView, name string, init int64) view.Loc {
	l := view.Loc(len(m.locs))
	m.step++
	clk := view.NewClockCap(int(l) + 1)
	clk.JoinInto(tv.Cur)
	clk.V.Set(l, 1)
	m.locs = append(m.locs, &location{
		name: name,
		hist: []Message{{T: 1, Val: init, Clk: clk, Writer: tv.ID, Step: m.step}},
	})
	tv.Cur.V.Set(l, 1)
	tv.Acq.V.Set(l, 1)
	return l
}

// Read performs a load of l with the given mode.
//
// Non-atomic reads must observe the latest write and be properly
// synchronized, otherwise a RaceError is returned. Atomic reads pick, via
// the chooser, any message with timestamp ≥ the reader's current view of l
// (per-location coherence). Acquire reads join the message clock into Cur;
// relaxed reads stash it in Acq for a later acquire fence.
func (m *Memory) Read(tv *ThreadView, l view.Loc, mode Mode, ch Chooser) (int64, error) {
	return m.ReadFloored(tv, l, mode, ch, 0)
}

// ReadFloored is Read with a source-DPOR wakeup constraint: when floor is
// nonzero, the visible window is additionally bounded below by floor, so
// the read only considers messages at timestamps ≥ floor. The machine
// passes the timestamp of the write that woke a sleeping reader: the
// stale messages below it were all readable when the reader went to
// sleep, so every continuation reading one of them is state-identical to
// a continuation of the already-scheduled sibling in which the reader ran
// first — re-enumerating them here would only replay that sibling's
// equivalence classes. Non-atomic and certified reads ignore the floor
// (they never branch on a message choice). If the floor exceeds the
// history (the waking RMW never wrote), the window clamps to the latest
// message.
func (m *Memory) ReadFloored(tv *ThreadView, l view.Loc, mode Mode, ch Chooser, floor view.Time) (int64, error) {
	loc := m.locs[l]
	m.step++
	if loc.freed {
		return 0, &UAFError{Loc: l, Name: loc.name, Kind: "read", Thread: tv.ID}
	}
	if mode == NA {
		if err := m.checkNA(tv, l, "read"); err != nil {
			return 0, err
		}
		if c := m.cert(l); c != nil {
			// Certified fast path: validateRead's saturation check is
			// exactly the race condition below, and the read-view join is
			// provably redundant (only the certified owner, or nobody,
			// writes this location after setup).
			if err := m.validateRead(c, tv, l); err != nil {
				return 0, err
			}
			m.raceSkips++
			return loc.last().Val, nil
		}
		if tv.Cur.V.Get(l) < loc.maxT() {
			return 0, &RaceError{Loc: l, Name: loc.name, Kind: "read", Thread: tv.ID,
				Detail: fmt.Sprintf("reader has observed t=%d but latest write is t=%d (write not happens-before read)",
					tv.Cur.V.Get(l), loc.maxT())}
		}
		msg := loc.last()
		// Record the reader's view so a future na write can check that it
		// happens-after this read.
		if !loc.hasRead {
			loc.readView = view.New()
			loc.hasRead = true
		}
		loc.readView.JoinInto(tv.Cur.V)
		return msg.Val, nil
	}
	if c := m.cert(l); c != nil {
		// Certified fast path: the reader's view saturates the history
		// (validated), so the visible window is exactly {last}, the
		// strategy would never be consulted, and the message clock is
		// already below the reader's view — every join below is a no-op.
		if err := m.validateRead(c, tv, l); err != nil {
			return 0, err
		}
		m.prunedReads++
		return loc.last().Val, nil
	}
	// Visible candidates: timestamps ≥ Cur(l), raised to the wakeup floor.
	lo := tv.Cur.V.Get(l)
	if lo == 0 {
		lo = 1
	}
	if floor > lo {
		lo = floor
		if lo > loc.maxT() {
			lo = loc.maxT()
		}
	}
	n := int(loc.maxT()-lo) + 1
	var idx int
	if n > 1 {
		idx = ch.Choose(n)
	}
	msg := &loc.hist[int(lo)-1+idx]
	tv.Cur.V.Set(l, msg.T)
	tv.Acq.V.Set(l, msg.T)
	if mode.acquires() {
		tv.Cur.JoinInto(msg.Clk)
		tv.Acq.JoinInto(msg.Clk)
	} else {
		tv.Acq.JoinInto(msg.Clk)
	}
	return msg.Val, nil
}

// Write performs a store of v to l with the given mode, appending a message
// at a fresh timestamp. Release writes publish the writer's current clock;
// relaxed writes carry only the location's release-sequence clock and the
// release-fence clock. Non-atomic writes race unless every previous access
// happens-before them.
func (m *Memory) Write(tv *ThreadView, l view.Loc, v int64, mode Mode) error {
	loc := m.locs[l]
	m.step++
	if loc.freed {
		return &UAFError{Loc: l, Name: loc.name, Kind: "write", Thread: tv.ID}
	}
	t := loc.maxT() + 1
	if mode == NA {
		if err := m.checkNA(tv, l, "write"); err != nil {
			return err
		}
		if c := m.cert(l); c != nil {
			// Certified fast path: ownership (validated) implies both race
			// checks below pass — the owner performed every prior access.
			if err := m.validateWrite(c, tv, l, "write"); err != nil {
				return err
			}
			if got := tv.Cur.V.Get(l); got != loc.maxT() {
				return &CertError{Loc: l, Name: loc.name, Thread: tv.ID, Detail: fmt.Sprintf(
					"writer view t=%d does not saturate certified history t=%d", got, loc.maxT())}
			}
			m.raceSkips++
			clk := tv.Cur.Clone()
			clk.V.Set(l, t)
			loc.hist = append(loc.hist, Message{T: t, Val: v, Clk: clk, Writer: tv.ID, Step: m.step})
			tv.Cur.V.Set(l, t)
			tv.Acq.V.Set(l, t)
			return nil
		}
		if tv.Cur.V.Get(l) < loc.maxT() {
			return &RaceError{Loc: l, Name: loc.name, Kind: "write", Thread: tv.ID,
				Detail: fmt.Sprintf("writer has observed t=%d but latest write is t=%d",
					tv.Cur.V.Get(l), loc.maxT())}
		}
		if loc.hasRead && !loc.readView.Leq(tv.Cur.V) {
			return &RaceError{Loc: l, Name: loc.name, Kind: "write", Thread: tv.ID,
				Detail: "a previous na read does not happen-before this write"}
		}
		clk := tv.Cur.Clone()
		clk.V.Set(l, t)
		loc.hist = append(loc.hist, Message{T: t, Val: v, Clk: clk, Writer: tv.ID, Step: m.step})
		tv.Cur.V.Set(l, t)
		tv.Acq.V.Set(l, t)
		return nil
	}
	if c := m.cert(l); c != nil {
		// Atomic writes have no instrumentation to skip, but the
		// certificate is still enforced: a write the recording never saw
		// must fail loudly, not invalidate later fast-path reads.
		if err := m.validateWrite(c, tv, l, "write"); err != nil {
			return err
		}
	}
	rl, hasRL := tv.RelLoc[l]
	w := int(l) + 1
	if hasRL && rl.V.Width() > w {
		w = rl.V.Width()
	}
	if tv.FRel.V.Width() > w {
		w = tv.FRel.V.Width()
	}
	if mode.releases() && tv.Cur.V.Width() > w {
		w = tv.Cur.V.Width()
	}
	base := view.NewClockCap(w) // one allocation covers every join below
	base.V.Set(l, t)
	if hasRL {
		base.JoinInto(rl)
	}
	base.JoinInto(tv.FRel)
	if mode.releases() {
		base.JoinInto(tv.Cur)
		// The release clock may share storage with the message clock:
		// neither is ever mutated once published (Disarm only removes IDs
		// armed after this write, which neither clock can contain).
		tv.RelLoc[l] = base
	}
	loc.hist = append(loc.hist, Message{T: t, Val: v, Clk: base, Writer: tv.ID, Step: m.step})
	tv.Cur.V.Set(l, t)
	tv.Acq.V.Set(l, t)
	return nil
}

// Fence performs a memory fence. FenceAcq promotes relaxed-acquired clocks
// into the current clock; FenceRel snapshots the current clock so that
// subsequent relaxed writes release it.
func (m *Memory) Fence(tv *ThreadView, acquire, release bool) {
	m.step++
	if acquire {
		tv.Cur.JoinInto(tv.Acq)
	}
	if release {
		tv.FRel.JoinInto(tv.Cur)
	}
}

// FenceSC performs a sequentially consistent fence: all SC fences are
// totally ordered through a global fence clock — each fence acquires
// everything released by all earlier SC fences and releases the thread's
// accumulated observations to all later ones. This forbids store-buffering
// behaviours between fenced accesses (the RC11 sc-fence semantics in the
// view machine), and is what the Chase-Lev deque's take/steal race needs.
func (m *Memory) FenceSC(tv *ThreadView) {
	m.step++
	tv.Cur.JoinInto(tv.Acq) // an SC fence is at least acquire
	tv.Cur.JoinInto(m.sc)
	tv.Acq.JoinInto(m.sc)
	m.sc.JoinInto(tv.Cur)
	tv.FRel.JoinInto(tv.Cur) // and at least release
}

// UpdateFunc decides an RMW: given the current (mo-maximal) value it
// returns the value to write and whether to write at all.
type UpdateFunc func(old int64) (new int64, write bool)

// Update performs an atomic read-modify-write on l. The read part always
// observes the mo-maximal message (this models strong RMWs: a successful
// CAS reads the coherence-latest write), and on write the new message is
// placed immediately after it in modification order. RMW messages carry
// the read message's clock in addition to the usual release clocks,
// modelling C11 release sequences through RMWs.
//
// readMode governs the read side (Rlx or Acq/AcqRel); writeMode governs
// the write side (Rlx or Rel/AcqRel). Returns the value read and whether
// the update was applied.
// Update panics with a UAFError on a freed location (RMWs have no error
// channel; the machine converts the panic into an aborted execution).
func (m *Memory) Update(tv *ThreadView, l view.Loc, f UpdateFunc, readMode, writeMode Mode) (int64, bool) {
	loc := m.locs[l]
	m.step++
	if loc.freed {
		panic(&UAFError{Loc: l, Name: loc.name, Kind: "rmw", Thread: tv.ID})
	}
	if c := m.cert(l); c != nil {
		// RMWs already read the mo-maximal message, so there is nothing
		// to prune — but certificate violations must still abort (Update
		// has no error channel; the machine converts the panic).
		if err := m.validateWrite(c, tv, l, "rmw"); err != nil {
			panic(err)
		}
	}
	msg := loc.last()
	old := msg.Val
	// Read side.
	tv.Cur.V.Set(l, msg.T)
	tv.Acq.V.Set(l, msg.T)
	if readMode.acquires() {
		tv.Cur.JoinInto(msg.Clk)
		tv.Acq.JoinInto(msg.Clk)
	} else {
		tv.Acq.JoinInto(msg.Clk)
	}
	nv, doWrite := f(old)
	if !doWrite {
		return old, false
	}
	t := loc.maxT() + 1
	rl, hasRL := tv.RelLoc[l]
	w := int(l) + 1
	if msg.Clk.V.Width() > w {
		w = msg.Clk.V.Width()
	}
	if hasRL && rl.V.Width() > w {
		w = rl.V.Width()
	}
	if tv.FRel.V.Width() > w {
		w = tv.FRel.V.Width()
	}
	if writeMode.releases() && tv.Cur.V.Width() > w {
		w = tv.Cur.V.Width()
	}
	base := view.NewClockCap(w)
	base.V.Set(l, t)
	base.JoinInto(msg.Clk) // release sequence through RMW
	if hasRL {
		base.JoinInto(rl)
	}
	base.JoinInto(tv.FRel)
	if writeMode.releases() {
		base.JoinInto(tv.Cur)
		tv.RelLoc[l] = base // shared with the message clock; see Write
	}
	loc.hist = append(loc.hist, Message{T: t, Val: nv, Clk: base, Writer: tv.ID, Step: m.step, IsRMW: true})
	tv.Cur.V.Set(l, t)
	tv.Acq.V.Set(l, t)
	return old, true
}

// CAS performs a strong compare-and-swap: if the mo-maximal message of l
// holds expected, it is atomically replaced by newv. Returns the value
// read and whether the swap succeeded.
func (m *Memory) CAS(tv *ThreadView, l view.Loc, expected, newv int64, readMode, writeMode Mode) (int64, bool) {
	return m.Update(tv, l, func(old int64) (int64, bool) {
		return newv, old == expected
	}, readMode, writeMode)
}

// FetchAdd atomically adds d to l, returning the previous value.
func (m *Memory) FetchAdd(tv *ThreadView, l view.Loc, d int64, readMode, writeMode Mode) int64 {
	old, _ := m.Update(tv, l, func(o int64) (int64, bool) { return o + d, true }, readMode, writeMode)
	return old
}

// Exchange atomically replaces the value of l with v, returning the
// previous value.
func (m *Memory) Exchange(tv *ThreadView, l view.Loc, v int64, readMode, writeMode Mode) int64 {
	old, _ := m.Update(tv, l, func(int64) (int64, bool) { return v, true }, readMode, writeMode)
	return old
}
