package queue

import (
	"compass/internal/core"
	"compass/internal/lock"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// SCQueue is the coarse-grained, lock-based baseline: every operation runs
// under a spin lock, so every operation synchronizes with every other and
// the commit order is exactly the critical-section order. It satisfies the
// strongest spec level (SC, §2.2): an empty dequeue commits only when the
// abstract state is truly empty at the commit point.
type SCQueue struct {
	lk   *lock.SpinLock
	buf  []view.Loc
	eids []view.Loc
	hd   view.Loc // head index (non-atomic, lock-protected)
	tl   view.Loc // tail index (non-atomic, lock-protected)
	rec  *core.Recorder
}

// NewSC allocates a lock-based bounded queue. cap bounds the total number
// of enqueues per execution (a ring buffer is unnecessary for bounded
// workloads and keeps index reasoning trivial).
func NewSC(th *machine.Thread, name string, cap int) *SCQueue {
	q := &SCQueue{
		lk:  lock.New(th, name+".lock"),
		hd:  th.Alloc(name+".hd", 0),
		tl:  th.Alloc(name+".tl", 0),
		rec: core.NewRecorder(name),
	}
	q.buf = make([]view.Loc, cap)
	q.eids = make([]view.Loc, cap)
	for i := 0; i < cap; i++ {
		q.buf[i] = th.Alloc(name+".buf", 0)
		q.eids[i] = th.Alloc(name+".eid", -1)
	}
	return q
}

// Recorder implements Queue.
func (q *SCQueue) Recorder() *core.Recorder { return q.rec }

// Enqueue implements Queue.
//
//compass:loctrack-top buffer slot selected by a memory-held head/tail index
func (q *SCQueue) Enqueue(th *machine.Thread, v int64) {
	q.lk.Lock(th)
	t := th.Read(q.tl, memory.NA)
	if int(t) >= len(q.buf) {
		th.Failf("scqueue: capacity %d exceeded", len(q.buf))
	}
	id := q.rec.Begin(th, core.Enq, v)
	th.Write(q.buf[t], v, memory.NA)
	th.Write(q.eids[t], int64(id), memory.NA)
	q.rec.Arm(th, id)
	th.Write(q.tl, t+1, memory.NA) // commit point: the tail bump
	q.rec.Commit(th, id)
	q.lk.Unlock(th)
}

// TryDequeue implements Queue. Under the lock, emptiness is exact.
//
//compass:loctrack-top buffer slot selected by a memory-held head/tail index
func (q *SCQueue) TryDequeue(th *machine.Thread) (int64, bool) {
	q.lk.Lock(th)
	h := th.Read(q.hd, memory.NA)
	t := th.Read(q.tl, memory.NA)
	if h == t {
		q.rec.CommitNew(th, core.EmpDeq, 0)
		q.lk.Unlock(th)
		return 0, false
	}
	v := th.Read(q.buf[h], memory.NA)
	eid := th.Read(q.eids[h], memory.NA)
	th.Write(q.hd, h+1, memory.NA) // commit point: the head bump
	d := q.rec.CommitNew(th, core.Deq, v)
	q.rec.AddSo(view.EventID(eid), d)
	q.lk.Unlock(th)
	return v, true
}
