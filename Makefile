# Developer entry points. `make check` is the gate for every change: the
# harness and explorer are concurrent, so the race detector is mandatory.

GO ?= go

.PHONY: check build vet test race bench benchreport

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark pass over the tier-1 set (see cmd/benchreport).
bench:
	$(GO) test -run '^$$' -bench 'ViewClone16|ReleaseWrite|T1EffortTable|ExhaustiveMP' -benchmem . ./internal/view ./internal/memory

# Full tier-1 snapshot written to BENCH_<date>.json.
benchreport:
	$(GO) run ./cmd/benchreport
