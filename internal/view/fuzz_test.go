package view

import (
	"testing"
)

// fuzzViewLocs bounds the location space so collisions (and therefore
// interesting joins) are common.
const fuzzViewLocs = 6

// FuzzViewOps drives byte-string-derived Set/JoinInto/Join/Clone sequences
// over a small pool of views against the map reference model from
// prop_test.go, checking the lattice laws the memory subsystem relies on:
// pointwise max semantics, Leq as the pointwise order, join as a least
// upper bound (commutative, idempotent, an upper bound of both operands),
// and clone independence. The seeded-PRNG property tests cover typical
// distributions; the fuzzer hunts the adversarial op orders they miss.
func FuzzViewOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 5})
	f.Add([]byte{0, 0, 1, 5, 0, 1, 1, 9, 1, 0, 1, 0})
	f.Add([]byte{0, 2, 3, 200, 2, 2, 0, 0, 3, 1, 2, 0, 0, 1, 5, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		const pool = 3
		views := make([]View, pool)
		refs := make([]refView, pool)
		for i := range refs {
			refs[i] = refView{}
		}
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 4
			x := int(data[i+1]) % pool
			y := int(data[i+2]) % pool
			l := Loc(data[i+2]) % fuzzViewLocs
			ts := Time(data[i+3])
			switch op {
			case 0: // Set keeps the max: views only grow.
				views[x].Set(l, ts)
				refs[x].Set(l, ts)
			case 1: // JoinInto mutates the target only.
				views[x].JoinInto(views[y])
				refs[x].JoinInto(refs[y])
				agree(t, "JoinInto operand", views[y], refs[y])
			case 2: // Join is a fresh lub, operands untouched.
				j := views[x].Join(views[y])
				jr := refs[x].Clone()
				jr.JoinInto(refs[y])
				agree(t, "Join result", j, jr)
				agree(t, "Join left operand", views[x], refs[x])
				agree(t, "Join right operand", views[y], refs[y])
				if !views[x].Leq(j) || !views[y].Leq(j) {
					t.Fatalf("join %v of %v and %v is not an upper bound", j, views[x], views[y])
				}
				if !j.Equal(views[y].Join(views[x])) {
					t.Fatalf("join not commutative: %v vs %v", j, views[y].Join(views[x]))
				}
				if !views[x].Join(views[x]).Equal(views[x]) {
					t.Fatalf("join not idempotent on %v", views[x])
				}
			case 3: // Clone is independent of the original.
				c := views[x].Clone()
				orig := refs[x].Clone()
				c.Set(l, ts+1)
				agree(t, "Clone original after mutation", views[x], orig)
			}
			// Cross-view order agreement with the reference on every step.
			for a := 0; a < pool; a++ {
				agree(t, "pool", views[a], refs[a])
				for b := 0; b < pool; b++ {
					if got, want := views[a].Leq(views[b]), refs[a].Leq(refs[b]); got != want {
						t.Fatalf("Leq(%v, %v) = %v, reference %v", views[a], views[b], got, want)
					}
				}
			}
		}
	})
}
