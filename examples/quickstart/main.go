// Command quickstart demonstrates the COMPASS workflow end to end: build a
// relaxed queue on the simulated ORC11 memory, run a small concurrent
// program against it, print the resulting event graph, and check it
// against the LAT_hb^abs queue spec.
package main

import (
	"flag"
	"fmt"

	"compass"
)

func main() {
	seed := flag.Int64("seed", 7, "scheduler seed (executions replay deterministically)")
	flag.Parse()

	var q compass.Queue
	prog := compass.Program{
		Name: "quickstart",
		Setup: func(th *compass.Thread) {
			q = compass.NewMSQueue(th, "q")
		},
		Workers: []func(*compass.Thread){
			func(th *compass.Thread) {
				q.Enqueue(th, 41)
				q.Enqueue(th, 42)
			},
			func(th *compass.Thread) {
				for i := 0; i < 3; i++ {
					if v, ok := q.TryDequeue(th); ok {
						th.Report(fmt.Sprintf("deq%d", i), v)
					}
				}
			},
		},
	}

	res := compass.CheckOptions{}.Runner(false).Run(prog, compass.NewRandomStrategy(*seed))
	fmt.Printf("execution status: %v (%d machine steps)\n", res.Status, res.Steps)
	for k, v := range res.Outcome {
		fmt.Printf("  %s = %d\n", k, v)
	}

	g := q.Recorder().Graph()
	fmt.Println("\nevent graph:")
	fmt.Println(g)

	for _, lvl := range compass.SpecLevels {
		r := compass.CheckQueue(g, lvl)
		verdict := "PASS"
		if !r.OK() {
			verdict = "FAIL"
		}
		fmt.Printf("\nspec %-12v %s\n", lvl, verdict)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
}
