package memory

import "compass/internal/view"

// This file is the dynamic side of the partial-order reduction oracle:
// where Independent (access.go) is the static, symmetric relation sleep
// sets prune with, Conflicting is the relation source-DPOR reverses on —
// two accesses that really contend for the same piece of ORC11 state in
// the execution at hand. The machine consults it when a granted operation
// meets a sleeping thread's pending operation: a dynamic conflict is a
// race whose reversal must be explored (a backtrack point), everything
// else keeps the sleeper asleep.

// Conflicting reports whether two accesses dynamically conflict: they
// touch the same location and at least one of them has a write side
// (write or RMW), or one of them is a conservative operation (fence,
// alloc, free) that orders against every memory operation, or they are
// reports racing on the same outcome name.
//
// Conflicting is a strict refinement of the static oracle: whenever it
// returns true, Independent(a, b) is false (the property test in
// conflict_test.go pins this), but it returns false for pairs the static
// relation only conservatively orders — most importantly RMWs against
// accesses of other locations, which is where CAS-loop-heavy library
// workloads regain their schedule freedom.
func Conflicting(a, b Access) bool {
	if a.Kind == AccNone || b.Kind == AccNone {
		return false
	}
	if a.Kind == AccReport || b.Kind == AccReport {
		return a.Kind == b.Kind && a.Name == b.Name
	}
	if a.Kind == AccFence || b.Kind == AccFence ||
		a.Kind == AccAlloc || b.Kind == AccAlloc ||
		a.Kind == AccFree || b.Kind == AccFree {
		return true
	}
	// Reads, writes, and RMWs carry their location: disjoint locations
	// touch disjoint per-location histories and commute outright.
	if a.Loc != b.Loc {
		return false
	}
	return a.Kind != AccRead || b.Kind != AccRead
}

// Observes reports whether the clock c has observed the write at
// timestamp t to location l — the local-happens-before query source-DPOR
// asks of message clocks: a message m2 whose clock observes m1 is
// lhb-ordered after it, while two same-location writes neither of whose
// clocks observes the other are a genuine race (mo orders them, lhb does
// not), and reversing their order is the only way to reach the outcomes
// of the other coherence placement.
func Observes(c view.Clock, l view.Loc, t view.Time) bool {
	return c.V.Get(l) >= t
}
