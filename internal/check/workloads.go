package check

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/queue"
	"compass/internal/refine"
	"compass/internal/spec"
)

// QueueFactory constructs a fresh queue on the machine (called in Setup).
type QueueFactory func(th *machine.Thread) queue.Queue

// QueueMixed is the general queue verification workload: producers×
// perProducer unique enqueues racing consumers×attempts try-dequeues, with
// the final graph checked at the given spec level. Unconsumed elements and
// empty dequeues are expected and legal.
func QueueMixed(f QueueFactory, level spec.Level, producers, perProducer, consumers, attempts int) func() Checked {
	return func() Checked {
		var q queue.Queue
		workers := make([]func(*machine.Thread), 0, producers+consumers)
		for p := 0; p < producers; p++ {
			p := p
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < perProducer; i++ {
					q.Enqueue(th, int64(1000*(p+1)+i+1))
				}
			})
		}
		for c := 0; c < consumers; c++ {
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < attempts; i++ {
					q.TryDequeue(th)
				}
			})
		}
		return Checked{
			Prog: machine.Program{
				Name:    "queue-mixed",
				Setup:   func(th *machine.Thread) { q = f(th) },
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return Collect(spec.CheckQueue(q.Recorder().Graph(), level))
			},
			Refine: refine.Checker(refine.Queue, func() *core.Graph { return q.Recorder().Graph() }),
		}
	}
}

// QueueDrain is a workload in which consumers dequeue (with retry) exactly
// as many elements as are produced, so the final graph has no unmatched
// enqueues; used for throughput-style checks and FIFO-order scrutiny.
func QueueDrain(f QueueFactory, level spec.Level, producers, perProducer, consumers int) func() Checked {
	total := producers * perProducer
	return func() Checked {
		var q queue.Queue
		workers := make([]func(*machine.Thread), 0, producers+consumers)
		for p := 0; p < producers; p++ {
			p := p
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < perProducer; i++ {
					q.Enqueue(th, int64(1000*(p+1)+i+1))
				}
			})
		}
		for c := 0; c < consumers; c++ {
			c := c
			n := total / consumers
			if c < total%consumers {
				n++
			}
			workers = append(workers, func(th *machine.Thread) {
				for i := 0; i < n; i++ {
					queue.Dequeue(q, th)
				}
			})
		}
		return Checked{
			Prog: machine.Program{
				Name:    "queue-drain",
				Setup:   func(th *machine.Thread) { q = f(th) },
				Workers: workers,
			},
			Check: func() ([]spec.Violation, int) {
				return Collect(spec.CheckQueue(q.Recorder().Graph(), level))
			},
			Refine: refine.Checker(refine.Queue, func() *core.Graph { return q.Recorder().Graph() }),
		}
	}
}
