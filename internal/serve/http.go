package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"compass/internal/telemetry"
)

// Error envelope codes. Every non-2xx response carries the uniform JSON
// body {"error": <message>, "code": <one of these>}.
const (
	codeBadRequest   = "bad_request"
	codeNotFound     = "not_found"
	codeShuttingDown = "shutting_down"
	codeNoWork       = "no_work"
	codeStaleLease   = "stale_lease"
)

// Handler builds the compassd HTTP API on a manager. The canonical
// surface is versioned under /v1:
//
//	POST /v1/jobs                submit a JobSpec, returns the JobView (202)
//	GET  /v1/jobs                list all jobs
//	GET  /v1/jobs/{id}           one job's status/result
//	GET  /v1/jobs/{id}/events    NDJSON stream: one compass/telemetry/v1
//	                             snapshot per completed segment, closing
//	                             with the final totals when the job ends
//	GET  /v1/workloads           registry names
//	GET  /v1/stats               service-level telemetry snapshot
//	GET  /v1/healthz             liveness
//	POST /v1/shard/leases        acquire a lease of frontier prefixes
//	POST /v1/shard/leases/renew  extend a lease's deadline
//	POST /v1/shard/leases/return return a completed lease's delta
//
// Errors are the uniform JSON envelope {"error", "code"}. The
// pre-versioning unversioned paths (POST /jobs, GET /jobs, ...) remain
// as deprecated aliases answering identically plus a "Deprecation: true"
// header and a Link to their /v1 successor; the lease endpoints are
// /v1-only (they postdate versioning).
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	// handle registers the /v1 route and, when alias is set, the legacy
	// unversioned route wrapped with the deprecation headers.
	handle := func(method, path string, alias bool, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
		if alias {
			successor := "/v1" + path
			mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
				h(w, r)
			})
		}
	}

	handle("POST", "/jobs", true, func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decode job spec: %w", err))
			return
		}
		j, err := m.Submit(spec)
		if err != nil {
			if errors.Is(err, ErrShuttingDown) {
				httpError(w, http.StatusServiceUnavailable, codeShuttingDown, err)
				return
			}
			httpError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	})
	handle("GET", "/jobs", true, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.JobViews())
	})
	handle("GET", "/jobs/{id}", true, func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})
	handle("GET", "/jobs/{id}/events", true, func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		streamEvents(w, r, j)
	})
	handle("GET", "/workloads", true, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, WorkloadNames())
	})
	handle("GET", "/stats", true, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats().Snapshot())
	})
	handle("GET", "/healthz", true, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	// Lease protocol: /v1-only.
	handle("POST", "/shard/leases", false, func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Peer string `json:"peer"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decode acquire request: %w", err))
			return
		}
		grant, err := m.AcquireLease(req.Peer)
		if err != nil {
			if errors.Is(err, ErrNoWork) {
				httpError(w, http.StatusNotFound, codeNoWork, err)
				return
			}
			httpError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, grant)
	})
	handle("POST", "/shard/leases/renew", false, func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			JobID   string `json:"job_id"`
			LeaseID string `json:"lease_id"`
			Epoch   int64  `json:"epoch"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decode renew request: %w", err))
			return
		}
		if err := m.RenewLease(req.JobID, req.LeaseID, req.Epoch); err != nil {
			if errors.Is(err, ErrStaleLease) {
				httpError(w, http.StatusConflict, codeStaleLease, err)
				return
			}
			httpError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	handle("POST", "/shard/leases/return", false, func(w http.ResponseWriter, r *http.Request) {
		var ret LeaseReturn
		if err := json.NewDecoder(r.Body).Decode(&ret); err != nil {
			httpError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decode lease return: %w", err))
			return
		}
		if err := m.ReturnLease(&ret); err != nil {
			if errors.Is(err, ErrStaleLease) {
				httpError(w, http.StatusConflict, codeStaleLease, err)
				return
			}
			httpError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

// streamEvents writes the job's telemetry stream as NDJSON: each line is
// one complete compass/telemetry/v1 snapshot (the same schema statcheck
// validates), flushed per event. The stream ends when the job reaches a
// terminal state or the client disconnects.
func streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	events, cancel := j.Subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	write := func(snap telemetry.Snapshot) bool {
		if err := enc.Encode(snap); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		select {
		case snap, ok := <-events:
			if !ok {
				return
			}
			if !write(snap) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes the uniform error envelope {"error", "code"}.
func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}
