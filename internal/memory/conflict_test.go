package memory

import (
	"testing"

	"compass/internal/view"
)

// accessCorpus enumerates a representative set of accesses: every kind,
// two distinct locations, two distinct report names.
func accessCorpus() []Access {
	return []Access{
		{},
		{Kind: AccNone},
		{Kind: AccRead, Loc: 1},
		{Kind: AccRead, Loc: 2},
		{Kind: AccWrite, Loc: 1},
		{Kind: AccWrite, Loc: 2},
		{Kind: AccRMW, Loc: 1},
		{Kind: AccRMW, Loc: 2},
		{Kind: AccFence},
		{Kind: AccAlloc},
		{Kind: AccFree, Loc: 1},
		{Kind: AccReport, Name: "a"},
		{Kind: AccReport, Name: "b"},
	}
}

// TestConflictingImpliesDependent exhaustively checks the contract
// between the two oracles over the corpus: a dynamically conflicting
// pair is never statically independent. Conflicting is the wake relation
// of source-DPOR and Independent the (negated) wake relation of
// sleep-set mode; if a pair could be both conflicting and independent,
// source mode would branch on a reversal that sleep mode proved
// unnecessary — or worse, the independence oracle would be unsound.
// The converse is deliberately false: Independent is conservative, so
// dependent-but-not-conflicting pairs (e.g. an RMW against a write to a
// different location) are exactly where source-DPOR wins.
func TestConflictingImpliesDependent(t *testing.T) {
	corpus := accessCorpus()
	witness := false
	for _, a := range corpus {
		for _, b := range corpus {
			if Conflicting(a, b) && Independent(a, b) {
				t.Errorf("Conflicting(%+v, %+v) but Independent: wake relations contradict", a, b)
			}
			if !Conflicting(a, b) && !Independent(a, b) {
				witness = true // source-DPOR strictly finer here
			}
		}
	}
	if !witness {
		t.Error("no dependent-but-not-conflicting pair in corpus: source-DPOR would never beat sleep sets")
	}
}

// TestConflictingSymmetry pins that the wake relation is symmetric: a
// race is a property of the pair, not of which side observed it.
func TestConflictingSymmetry(t *testing.T) {
	corpus := accessCorpus()
	for _, a := range corpus {
		for _, b := range corpus {
			if Conflicting(a, b) != Conflicting(b, a) {
				t.Errorf("Conflicting(%+v, %+v) != Conflicting(%+v, %+v)", a, b, b, a)
			}
		}
	}
}

// FuzzConflictingImpliesDependent drives the same implication over
// fuzzer-chosen access pairs, covering kind/location/name combinations
// the hand corpus misses.
func FuzzConflictingImpliesDependent(f *testing.F) {
	f.Add(uint8(1), uint16(1), "", uint8(2), uint16(1), "")
	f.Add(uint8(3), uint16(1), "", uint8(2), uint16(2), "")
	f.Add(uint8(7), uint16(0), "a", uint8(7), uint16(0), "a")
	f.Fuzz(func(t *testing.T, ka uint8, la uint16, na string, kb uint8, lb uint16, nb string) {
		a := Access{Kind: AccessKind(ka % 8), Loc: view.Loc(la), Name: na}
		b := Access{Kind: AccessKind(kb % 8), Loc: view.Loc(lb), Name: nb}
		if Conflicting(a, b) && Independent(a, b) {
			t.Fatalf("Conflicting(%+v, %+v) but Independent", a, b)
		}
		if Conflicting(a, b) != Conflicting(b, a) {
			t.Fatalf("Conflicting not symmetric on (%+v, %+v)", a, b)
		}
	})
}

// TestObserves pins the happens-before query used by conflict reasoning:
// a clock observes exactly the timestamps at or below its per-location
// entry.
func TestObserves(t *testing.T) {
	var c view.Clock
	c.V.Set(3, 5)
	if !Observes(c, 3, 5) || !Observes(c, 3, 1) {
		t.Error("clock must observe its own entry and everything below")
	}
	if Observes(c, 3, 6) {
		t.Error("clock observes a timestamp above its entry")
	}
	if Observes(c, 4, 1) {
		t.Error("clock observes an unknown location")
	}
}
