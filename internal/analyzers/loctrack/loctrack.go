// Package loctrack patrols the library implementations for location
// flow the static access-plan analysis (internal/analysis/staticplan)
// can or cannot follow. Allocation sites must stay analyzable — a
// statically derivable name, a result that lands somewhere — and every
// place a location's identity round-trips through simulated memory (a
// slice of cells indexed by a value read back from memory, the node-
// table pattern) must be annotated //compass:loctrack-top <reason>, so
// the ⊤ verdict in the committed plans is documented at the source line
// that causes it rather than silent.
package loctrack

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"compass/internal/analyzers/lint"
)

// Analyzer is the loctrack pass.
var Analyzer = &lint.Analyzer{
	Name: "loctrack",
	Doc: `keep library allocation sites analyzable and location-decoding sites annotated

Thread.Alloc calls must use statically derivable names (constants,
string parameters, and their concatenations) and must not discard or
convert away their result. Reading a view.Loc (or a struct of them) out
of a slice at a non-constant index recovers a location from a
memory-held value — the escape that makes a workload's static plan ⊤ —
and the enclosing function must carry //compass:loctrack-top <reason>
acknowledging it.`,
	Run: run,
}

// TopDirective acknowledges a deliberate location-identity escape.
const TopDirective = "loctrack-top"

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		parent := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkAlloc(pass, file, parent, x)
			case *ast.IndexExpr:
				checkIndexRead(pass, file, parent, x)
			}
			return true
		})
	}
	return nil
}

// parents maps every node in the file to its syntactic parent.
func parents(file *ast.File) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

func isLoc(t types.Type) bool {
	path, name, ok := lint.NamedTypePath(t)
	return ok && name == "Loc" && strings.HasSuffix(path, "internal/view")
}

// containsLoc reports whether a value of type t carries location
// identity (view.Loc itself, or a struct/array/pointer holding one).
func containsLoc(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	if isLoc(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLoc(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLoc(u.Elem(), depth+1)
	case *types.Pointer:
		return containsLoc(u.Elem(), depth+1)
	}
	return false
}

// threadAlloc reports whether the call is machine.Thread.Alloc.
func threadAlloc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Alloc" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path, name, ok := lint.NamedTypePath(sig.Recv().Type())
	return ok && name == "Thread" && strings.HasSuffix(path, "internal/machine")
}

// derivableName reports whether the allocation-name expression folds
// statically: constants, string-typed identifiers and field selections
// (parameters and struct config), and concatenations of those.
func derivableName(info *types.Info, x ast.Expr) bool {
	x = ast.Unparen(x)
	if tv, ok := info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return true
	}
	switch e := x.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		tv, ok := info.Types[x]
		if !ok {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	case *ast.BinaryExpr:
		return derivableName(info, e.X) && derivableName(info, e.Y)
	}
	return false
}

func checkAlloc(pass *lint.Pass, file *ast.File, parent map[ast.Node]ast.Node, call *ast.CallExpr) {
	if !threadAlloc(pass.TypesInfo, call) {
		return
	}
	if lint.FuncDirective(file, call.Pos(), TopDirective) {
		return
	}
	if len(call.Args) > 0 && !derivableName(pass.TypesInfo, call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(),
			"allocation name is not statically derivable (use constants, string parameters, and concatenations): the static plan cannot identify this site")
	}
	switch p := parent[call].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(),
			"allocation result discarded: the location leaves the analyzable flow at birth")
	case *ast.CallExpr:
		// An argument position is tracked flow; a conversion away from
		// view.Loc erases the location's identity.
		if tv, ok := pass.TypesInfo.Types[p.Fun]; ok && tv.IsType() && !isLoc(tv.Type) {
			pass.Reportf(call.Pos(),
				"allocation result converted away from view.Loc: the location's identity is erased for the static plan")
		}
	}
}

// checkIndexRead flags rvalue reads of location-carrying slice/array
// elements at non-constant indices: the location's identity depends on a
// runtime value, which is exactly what the static plan cannot follow.
func checkIndexRead(pass *lint.Pass, file *ast.File, parent map[ast.Node]ast.Node, ix *ast.IndexExpr) {
	btv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return
	}
	bt := btv.Type.Underlying()
	if p, ok := bt.(*types.Pointer); ok {
		bt = p.Elem().Underlying()
	}
	var elem types.Type
	switch u := bt.(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return
	}
	if !containsLoc(elem, 0) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[ix.Index]; ok && tv.Value != nil {
		return // constant index: still a fixed site
	}
	// Stores into the slice are tracked flow (the analysis merges all
	// elements into one cell); only reads recover an identity.
	if as, ok := parent[ix].(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if lhs == ix {
				return
			}
		}
	}
	if lint.FuncDirective(file, ix.Pos(), TopDirective) {
		return
	}
	pass.Reportf(ix.Pos(),
		"location recovered by a non-constant index: workloads using this path get a ⊤ static plan; mark the decoder //compass:loctrack-top <reason> to acknowledge it")
}
