// Package speccover is the golden corpus for the speccover analyzer.
package speccover

import (
	"compass/internal/core"
	"compass/internal/refine"
	"compass/internal/spec"
)

func graph() *core.Graph { return nil }

// paired registers the matching refinement checker for the spec it
// checks.
func paired(level spec.Level) {
	_ = spec.CheckQueue(graph(), level) // ok: refine.Checker(refine.Queue) below
	_ = refine.Checker(refine.Queue, graph)
}

func unpaired(level spec.Level) {
	_ = spec.CheckQueue(graph(), level) // want `workload checks the queue spec but registers no refine\.Queue checker`
}

// spscPairsWithQueue: the SPSC spec variant refines against the base
// queue model, and CheckerMax counts as registering it.
func spscPairsWithQueue() {
	_ = spec.CheckQueueSPSC(graph())
	_ = refine.CheckerMax(refine.Queue, 8, graph)
}

// wrongLibrary registers a checker, but for a different library than the
// spec it consults.
func wrongLibrary(level spec.Level) {
	_ = spec.CheckStack(graph(), level) // want `workload checks the stack spec but registers no refine\.Stack checker`
	_ = refine.Checker(refine.Queue, graph)
}

// predicateOnly deliberately checks the spec predicate without a
// refinement checker: the verdict is the client's own invariant.
//
//compass:speccover-skip client workload: the verdict is the client invariant
func predicateOnly(level spec.Level) {
	_ = spec.CheckQueue(graph(), level) // ok: speccover-skip with a reason
}

// twoLibs must pair each consulted spec independently.
func twoLibs(level spec.Level) {
	_ = spec.CheckQueue(graph(), level)
	_ = spec.CheckExchanger(graph()) // want `workload checks the exchanger spec but registers no refine\.Exchanger checker`
	_ = refine.Checker(refine.Queue, graph)
}
