package telemetry

import (
	"fmt"
	"math/bits"
)

// Restore rebuilds a live Stats from a snapshot, so a process resumed
// from a checkpoint continues the exact cumulative telemetry stream the
// killed process was emitting: Restore(s.Snapshot()).Snapshot() equals
// s.Snapshot() field for field. Derived values (means, rates) are not
// stored — they recompute from the restored cells. The snapshot must
// carry the current schema.
func Restore(snap Snapshot) (*Stats, error) {
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("telemetry restore: schema %q, want %q", snap.Schema, SnapshotSchema)
	}
	s := New()
	m := &s.Machine
	for name, n := range snap.Machine.ExecsByStatus {
		idx := -1
		for i, sn := range statusNames {
			if sn == name {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("telemetry restore: unknown status %q", name)
		}
		m.Execs[idx].Add(n)
	}
	m.Steps.Add(snap.Machine.Steps)
	if err := m.StepsPerExec.restore(snap.Machine.StepsPerExec); err != nil {
		return nil, fmt.Errorf("telemetry restore: steps_per_exec: %w", err)
	}
	m.ReadChoices.Add(snap.Machine.ReadChoices)
	m.StaleReads.Add(snap.Machine.StaleReads)
	if err := m.ReadFanout.restore(snap.Machine.ReadFanout); err != nil {
		return nil, fmt.Errorf("telemetry restore: read_fanout: %w", err)
	}
	if len(snap.Machine.ThreadPicks) > len(m.ThreadPicks) {
		return nil, fmt.Errorf("telemetry restore: %d thread_picks, track at most %d",
			len(snap.Machine.ThreadPicks), len(m.ThreadPicks))
	}
	for i, n := range snap.Machine.ThreadPicks {
		m.ThreadPicks[i].Add(n)
	}
	m.PrunedReads.Add(snap.Machine.PrunedReads)
	m.RaceChecksSkipped.Add(snap.Machine.RaceChecksSkipped)
	m.CertRefusals.Add(snap.Machine.CertRefusals)

	e := &s.Explore
	e.Prefixes.Add(snap.Explore.Prefixes)
	e.Children.Add(snap.Explore.Children)
	if err := e.PrefixDepth.restore(snap.Explore.PrefixDepth); err != nil {
		return nil, fmt.Errorf("telemetry restore: prefix_depth: %w", err)
	}
	e.FrontierPeak.SetMax(snap.Explore.FrontierPeak)
	e.EarlyStops.Add(snap.Explore.EarlyStops)
	e.DepthCapped.Add(snap.Explore.DepthCapped)
	e.PORBranchesSkipped.Add(snap.Explore.PORBranchesSkipped)
	if err := e.SleepSetSize.restore(snap.Explore.SleepSetSize); err != nil {
		return nil, fmt.Errorf("telemetry restore: sleep_set_size: %w", err)
	}
	e.PORRacesReversed.Add(snap.Explore.PORRacesReversed)
	e.PORStaleReadsSkipped.Add(snap.Explore.PORStaleReadsSkipped)
	e.PORDisabledThreads.Add(snap.Explore.PORDisabledThreads)
	if err := e.WakeupTreeSize.restore(snap.Explore.WakeupTreeSize); err != nil {
		return nil, fmt.Errorf("telemetry restore: wakeup_tree_size: %w", err)
	}
	e.PlanSites.Add(snap.Explore.PlanSites)
	e.PlanChecks.Add(snap.Explore.PlanChecks)
	e.PlanConflictsRefuted.Add(snap.Explore.PlanConflictsRefuted)
	e.DedupStates.Add(snap.Explore.DedupStates)
	e.DedupHits.Add(snap.Explore.DedupHits)
	e.DedupEvictions.Add(snap.Explore.DedupEvictions)

	f := &s.Fuzz
	f.Programs.Add(snap.Fuzz.Programs)
	f.Execs.Add(snap.Fuzz.Execs)
	f.Discarded.Add(snap.Fuzz.Discarded)
	f.Failures.Add(snap.Fuzz.Failures)
	f.ShrinkAttempts.Add(snap.Fuzz.ShrinkAttempts)
	f.ShrinkAccepted.Add(snap.Fuzz.ShrinkAccepted)
	f.Artifacts.Add(snap.Fuzz.Artifacts)

	r := &s.Refine
	r.TracesChecked.Add(snap.Refine.TracesChecked)
	r.Disagreements.Add(snap.Refine.Disagreements)
	if err := r.StateFanout.restore(snap.Refine.StateFanout); err != nil {
		return nil, fmt.Errorf("telemetry restore: refine_state_fanout: %w", err)
	}

	v := &s.Serve
	v.JobsSubmitted.Add(snap.Serve.JobsSubmitted)
	v.JobsResumed.Add(snap.Serve.JobsResumed)
	v.JobsDone.Add(snap.Serve.JobsDone)
	v.JobsFailed.Add(snap.Serve.JobsFailed)
	v.Checkpoints.Add(snap.Serve.Checkpoints)
	v.CheckpointBytes.Add(snap.Serve.CheckpointBytes)
	if err := v.SegmentRuns.restore(snap.Serve.SegmentRuns); err != nil {
		return nil, fmt.Errorf("telemetry restore: segment_runs: %w", err)
	}
	v.LeasesGranted.Add(snap.Serve.LeasesGranted)
	v.LeasesRenewed.Add(snap.Serve.LeasesRenewed)
	v.LeasesReturned.Add(snap.Serve.LeasesReturned)
	v.LeasesReclaimed.Add(snap.Serve.LeasesReclaimed)
	return s, nil
}

// restore rebuilds the histogram cells from their snapshot. The
// power-of-two bucket layout is invertible: a bucket's Lo pins its index
// (Lo == 0 is bucket 0, otherwise Lo == 1<<(i-1)), so the restored
// histogram re-snapshots to the identical value.
func (h *Histogram) restore(s HistogramSnapshot) error {
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	h.max.SetMax(s.Max)
	var total int64
	for _, b := range s.Buckets {
		i := 0
		if b.Lo > 0 {
			if b.Lo&(b.Lo-1) != 0 {
				return fmt.Errorf("bucket lo %d is not a power of two", b.Lo)
			}
			i = bits.Len64(uint64(b.Lo))
		}
		if i >= histBuckets {
			return fmt.Errorf("bucket lo %d out of range", b.Lo)
		}
		if b.Count < 0 {
			return fmt.Errorf("negative bucket count %d", b.Count)
		}
		h.buckets[i].Add(b.Count)
		total += b.Count
	}
	if total != s.Count {
		return fmt.Errorf("buckets sum to %d, count is %d", total, s.Count)
	}
	return nil
}
