package footprint

import (
	"fmt"

	"compass/internal/memory"
	"compass/internal/view"
)

// Gate checks a dynamic footprint certificate against a static access
// plan before exploration begins. Extraction records a small family of
// schedules, so a branch taken only under other schedules can hide an
// access and yield an under-covering certificate; enforcement would then
// abort mid-exploration on the first execution that exercises the hidden
// access. The gate refuses such a certificate up front: a claim the plan
// contradicts can never survive, because the plan is a may-over-
// approximation of every schedule.
//
// Soundness direction: the gate can only refuse (never widen a
// certificate), so a false refusal costs pruning, never correctness.
// Admission is meaningful precisely when every thread's plan is non-⊤ —
// a ⊤ thread may touch anything, so it contradicts every exclusivity or
// read-only claim and vetoes certification outright rather than being
// guessed about.
//
// threads is the machine's thread count (workers + main); plan threads
// out of range answer like ⊤. A nil plan or a nil footprint gates
// nothing. A non-nil result is the refusal, phrased as the CertError the
// enforcement would eventually have raised.
func Gate(fp *memory.Footprint, plan *memory.Plan, threads int) *memory.CertError {
	if fp == nil || plan == nil {
		return nil
	}
	if fp.Name != "" && plan.Program != "" && fp.Name != plan.Program {
		return &memory.CertError{Detail: fmt.Sprintf(
			"static gate: certificate is for program %q but the plan is for %q", fp.Name, plan.Program)}
	}
	for l, c := range fp.Locs {
		switch c.Class {
		case memory.ClassShared:
			continue
		case memory.ClassExclusive:
			if c.Name == "" {
				return &memory.CertError{Loc: view.Loc(l), Thread: c.Owner, Detail: fmt.Sprintf(
					"static gate: exclusive claim on unnamed location %d cannot be checked against the plan", l)}
			}
			for t := 0; t < threads; t++ {
				if t == c.Owner {
					continue
				}
				if plan.MayTouch(t, c.Name, memory.PlanRead|memory.PlanWrite|memory.PlanFree) {
					return &memory.CertError{Loc: view.Loc(l), Name: c.Name, Thread: t, Detail: fmt.Sprintf(
						"static gate: certificate claims %s exclusive to thread %d, but thread %d's plan %s",
						c.Name, c.Owner, t, planWhy(plan, t))}
				}
			}
		case memory.ClassReadOnly:
			if c.Name == "" {
				return &memory.CertError{Loc: view.Loc(l), Detail: fmt.Sprintf(
					"static gate: read-only claim on unnamed location %d cannot be checked against the plan", l)}
			}
			for t := 0; t < threads; t++ {
				if plan.MayTouch(t, c.Name, memory.PlanWrite|memory.PlanFree) {
					return &memory.CertError{Loc: view.Loc(l), Name: c.Name, Thread: t, Detail: fmt.Sprintf(
						"static gate: certificate claims %s read-only, but thread %d's plan %s",
						c.Name, t, planWhy(plan, t))}
				}
			}
		}
	}
	if fp.AllAtomic {
		for t := 0; t < threads; t++ {
			if plan.Thread(t).UsesNA() {
				return &memory.CertError{Thread: t, Detail: fmt.Sprintf(
					"static gate: certificate claims all accesses atomic, but thread %d's plan %s",
					t, planWhy(plan, t))}
			}
			if plan.Thread(t).Allocates() {
				return &memory.CertError{Thread: t, Detail: fmt.Sprintf(
					"static gate: certificate claims all allocation is in setup, but thread %d's plan %s",
					t, planWhy(plan, t))}
			}
		}
	}
	return nil
}

// planWhy renders the reason a thread's plan contradicts a claim: ⊤ with
// its reason, or the concrete may-access.
func planWhy(plan *memory.Plan, t int) string {
	tp := plan.Thread(t)
	if tp == nil {
		return "is out of the plan's range (treated as ⊤)"
	}
	if tp.Top {
		if tp.TopReason != "" {
			return fmt.Sprintf("is ⊤ (%s)", tp.TopReason)
		}
		return "is ⊤"
	}
	return "admits a conflicting access"
}
