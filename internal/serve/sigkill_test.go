package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"
)

const (
	killChildEnv = "COMPASS_SERVE_KILL_CHILD"
	killDirEnv   = "COMPASS_SERVE_KILL_DIR"
)

// TestMain lets the SIGKILL test re-exec this binary as a compassd-like
// child process that can be killed for real, mid-job.
func TestMain(m *testing.M) {
	if os.Getenv(killChildEnv) == "1" {
		runKillChild()
		return
	}
	os.Exit(m.Run())
}

// runKillChild is the re-exec'd process: it starts a manager on the
// state dir from the environment, submits one long job, announces the
// job ID on stdout, and runs until killed.
func runKillChild() {
	m, err := NewManager(Config{
		StateDir:        os.Getenv(killDirEnv),
		Workers:         2,
		CheckpointEvery: 200,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	j, err := m.Submit(JobSpec{Workload: "litmus/IRIW", POR: "off"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(j.ID)
	m.Wait()
}

// TestSIGKILLResume is the end-to-end crash test: a separate process
// runs a job, is SIGKILLed mid-frontier (no deferred cleanup, no
// graceful pause), and a fresh manager resumes from whatever checkpoint
// the dead process last committed — on a different worker count — with a
// final result byte-identical to an uninterrupted run's.
func TestSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec smoke test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), killChildEnv+"=1", killDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("child produced no job ID: %v", sc.Err())
	}
	id := sc.Text()

	// Wait for the child's first committed checkpoint, then kill it hard.
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cp *Checkpoint
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint for job %s within deadline", id)
		}
		if c, err := st.Load(id); err == nil && c.Runs > 0 {
			cp = c
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if cp.Done {
		t.Fatalf("job finished (%d runs) before the kill; raise the workload size", cp.Runs)
	}
	t.Logf("killed child at >= %d runs", cp.Runs)

	// Resume on a different worker count and compare against an
	// uninterrupted run.
	m, err := NewManager(Config{StateDir: dir, Workers: 4, CheckpointEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	resumed, finished, errs := m.Resume()
	if len(errs) > 0 {
		t.Fatalf("resume errors: %v", errs)
	}
	if resumed != 1 || finished != 0 {
		t.Fatalf("resumed %d finished %d, want 1/0", resumed, finished)
	}
	j, ok := m.Job(id)
	if !ok {
		t.Fatalf("job %s not registered after resume", id)
	}
	m.Wait()
	got := j.View()
	if got.Status != StatusDone {
		t.Fatalf("resumed job status %s (err %q)", got.Status, got.Error)
	}

	want := baseline(t, JobSpec{Workload: "litmus/IRIW", POR: "off"}, 2)
	g, err := json.Marshal(got.Result)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("post-SIGKILL result diverged from uninterrupted run\n got: %s\nwant: %s", g, w)
	}
	if got.Runs != want.Runs {
		t.Errorf("runs = %d, want %d", got.Runs, want.Runs)
	}
}
