// Package machine executes concurrent programs against the ORC11 memory
// simulator with fully controlled nondeterminism. Programs are plain Go
// closures over a *Thread handle; every memory access is a scheduling
// point. A pluggable Strategy resolves the two sources of relaxed-memory
// nondeterminism: which thread steps next, and which visible message a
// relaxed/acquire read observes.
//
// Threads run as goroutines but proceed in strict lockstep with the
// scheduler: exactly one thread is ever between "granted" and "parked", so
// the shared memory needs no locking and executions are deterministic
// functions of the strategy's decisions (enabling replay and exhaustive
// exploration).
package machine

import (
	"errors"
	"fmt"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// Program is a concurrent test program: a setup phase run by the main
// thread, N worker bodies run concurrently, and a final phase run by the
// main thread after all workers have finished (joining their views, as a
// pthread_join would).
type Program struct {
	Name    string
	Setup   func(*Thread)
	Workers []func(*Thread)
	Final   func(*Thread)
}

// Status classifies how an execution ended.
type Status uint8

const (
	// OK: the program ran to completion.
	OK Status = iota
	// Racy: a data race on a non-atomic access was detected (UB in ORC11).
	Racy
	// Budget: the step budget was exhausted (e.g. an unlucky spin loop);
	// the execution is discarded, it is neither a pass nor a violation.
	Budget
	// Failed: the program itself reported a failure via Thread.Failf.
	Failed
	// Pruned: sleep-set partial-order reduction proved every continuation
	// of the execution replays an equivalence class explored elsewhere, so
	// the run was cut short (only under Runner.POR). Neither a pass nor a
	// violation: the outcomes of its continuations are all observed in
	// sibling subtrees, which is what keeps exhaustive outcome sets
	// identical with POR on and off.
	Pruned
	// Deduped: the run reached a state whose canonical fingerprint was
	// already in the exhaustive explorer's visited set (only under
	// Runner.Dedup). Like Pruned, neither a pass nor a violation: the
	// first run to claim the fingerprint explores every continuation, so
	// this run's continuations are all observed elsewhere.
	Deduped
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Racy:
		return "racy"
	case Budget:
		return "budget"
	case Failed:
		return "failed"
	case Pruned:
		return "pruned"
	case Deduped:
		return "deduped"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Result is the outcome of one execution.
type Result struct {
	Status  Status
	Err     error
	Mem     *memory.Memory
	Steps   int
	Outcome map[string]int64 // values reported by Thread.Report
	// Events is the typed per-step operation log (only when Runner.Trace
	// is set). Use Trace() for the legacy string rendering.
	Events []StepEvent
}

// Trace renders the recorded events as the legacy human-readable
// per-step lines (one string per traced operation).
func (r *Result) Trace() []string {
	if len(r.Events) == 0 {
		return nil
	}
	out := make([]string, len(r.Events))
	for i, e := range r.Events {
		out[i] = e.String()
	}
	return out
}

// Strategy resolves scheduling and read nondeterminism. Implementations
// must be deterministic given their own state so executions can be
// replayed.
type Strategy interface {
	// PickThread picks the next thread to step among the runnable ones
	// (indices into the program's thread list; 0 is the main thread).
	// Called only when len(runnable) > 1.
	PickThread(runnable []int) int
	// Choose picks among n > 1 visible messages for a read.
	Choose(n int) int
}

// abort is the panic payload used to unwind a thread on race/budget/kill.
type abort struct {
	status Status
	err    error
}

type killed struct{}

// accessAbort classifies a memory-access error: footprint-certificate
// violations are harness failures (the recording pre-pass under-covered
// the program — Failed), everything else is undefined behaviour (Racy).
func accessAbort(err error) abort {
	var ce *memory.CertError
	if errors.As(err, &ce) {
		return abort{status: Failed, err: err}
	}
	return abort{status: Racy, err: err}
}

// Thread is the handle through which program code accesses the simulated
// memory. All methods are scheduling points.
type Thread struct {
	id int
	tv *memory.ThreadView
	mc *controller
}

// ID returns the thread's index: 0 for the main thread, 1..N for workers.
func (t *Thread) ID() int { return t.id }

// TV exposes the underlying ORC11 thread view (used by the event-graph
// recorder to snapshot and extend clocks at commit points).
func (t *Thread) TV() *memory.ThreadView { return t.tv }

// step parks the thread until the scheduler grants it its next event. op
// describes the operation the thread will perform once granted; under
// partial-order reduction the controller consults it to decide which
// pending steps commute. The write to pending happens-before the
// controller's read via the events channel send.
func (t *Thread) step(op memory.Access) {
	if t.mc.por != POROff {
		t.mc.pending[t.id] = op
	}
	select {
	case t.mc.events <- event{tid: t.id, kind: evRequest}:
	case <-t.mc.kill:
		panic(killed{})
	}
	select {
	case <-t.mc.grants[t.id]:
	case <-t.mc.kill:
		panic(killed{})
	}
	t.mc.steps++
	if t.mc.steps > t.mc.budget {
		panic(abort{status: Budget, err: errors.New("step budget exhausted")})
	}
}

// Alloc allocates a fresh named location initialized to init.
func (t *Thread) Alloc(name string, init int64) view.Loc {
	t.step(memory.Access{Kind: memory.AccAlloc})
	l := t.mc.mem.Alloc(t.tv, name, init)
	if t.mc.opHist != nil {
		t.mc.locCanon = append(t.mc.locCanon, t.mc.mem.CanonLocID(l))
		t.mc.foldOp(t.id, opAlloc, t.mc.locCanon[l], uint64(init))
	}
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepAlloc, Loc: l, LocName: name, Val: init})
	}
	return l
}

// Read loads from l with the given access mode.
func (t *Thread) Read(l view.Loc, mode memory.Mode) int64 {
	t.step(memory.Access{Kind: memory.AccRead, Loc: l})
	v, err := t.mc.mem.ReadFloored(t.tv, l, mode, &t.mc.reads, t.takeFloor(l, mode))
	if err != nil {
		if t.mc.tracing {
			t.mc.record(StepEvent{Thread: t.id, Kind: StepRead, Loc: l, LocName: t.mc.mem.Name(l), RMode: mode, Race: true})
		}
		panic(accessAbort(err))
	}
	t.mc.foldOp(t.id, opRead, t.mc.canonLoc(l), uint64(mode), uint64(v))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepRead, Loc: l, LocName: t.mc.mem.Name(l), RMode: mode, Val: v})
	}
	return v
}

// takeFloor consumes the thread's pending source-DPOR wakeup constraint,
// if any (see controller.sourceWake): the read about to execute is the
// announced operation the floor was attached to. It also accounts the
// stale read-value branches the floor prunes.
//
//compass:accounting
func (t *Thread) takeFloor(l view.Loc, mode memory.Mode) view.Time {
	c := t.mc
	if c.por != PORSource {
		return 0
	}
	f := c.floors[t.id]
	if f == 0 {
		return 0
	}
	c.floors[t.id] = 0
	if mode == memory.NA {
		return 0 // na reads never branch on a message choice
	}
	lo := t.tv.Cur.V.Get(l)
	if lo == 0 {
		lo = 1
	}
	eff := f
	if m := c.mem.MaxTime(l); eff > m {
		eff = m
	}
	if eff > lo {
		c.stats.PORStaleReadsSkipped(int64(eff - lo))
	}
	return f
}

// Write stores v to l with the given access mode.
func (t *Thread) Write(l view.Loc, v int64, mode memory.Mode) {
	t.step(memory.Access{Kind: memory.AccWrite, Loc: l})
	if err := t.mc.mem.Write(t.tv, l, v, mode); err != nil {
		if t.mc.tracing {
			t.mc.record(StepEvent{Thread: t.id, Kind: StepWrite, Loc: l, LocName: t.mc.mem.Name(l), WMode: mode, Race: true})
		}
		panic(accessAbort(err))
	}
	t.mc.foldOp(t.id, opWrite, t.mc.canonLoc(l), uint64(mode), uint64(v))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepWrite, Loc: l, LocName: t.mc.mem.Name(l), WMode: mode, Val: v})
	}
}

// Free deallocates a location; any later access by any thread is
// use-after-free, aborting the execution as undefined behaviour.
func (t *Thread) Free(l view.Loc) {
	t.step(memory.Access{Kind: memory.AccFree, Loc: l})
	if err := t.mc.mem.Free(t.tv, l); err != nil {
		panic(accessAbort(err))
	}
	t.mc.foldOp(t.id, opFree, t.mc.canonLoc(l))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepFree, Loc: l, LocName: t.mc.mem.Name(l)})
	}
}

// Fence issues a fence: acquire, release, or both.
func (t *Thread) Fence(acquire, release bool) {
	t.step(memory.Access{Kind: memory.AccFence})
	t.mc.mem.Fence(t.tv, acquire, release)
	t.mc.foldOp(t.id, opFence, b2u(acquire), b2u(release))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepFence, Acquire: acquire, Release: release})
	}
}

// FenceSC issues a sequentially consistent fence (totally ordered with all
// other SC fences; forbids store-buffering between fenced accesses).
func (t *Thread) FenceSC() {
	t.step(memory.Access{Kind: memory.AccFence})
	t.mc.mem.FenceSC(t.tv)
	t.mc.foldOp(t.id, opFenceSC)
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepFenceSC})
	}
}

// CAS atomically compares-and-swaps l from expected to newv. readMode
// governs the read side, writeMode the write side.
func (t *Thread) CAS(l view.Loc, expected, newv int64, readMode, writeMode memory.Mode) (int64, bool) {
	t.step(memory.Access{Kind: memory.AccRMW, Loc: l})
	old, ok := t.updateChecked(l, func(o int64) (int64, bool) { return newv, o == expected }, readMode, writeMode)
	t.mc.foldOp(t.id, opCAS, t.mc.canonLoc(l), uint64(readMode), uint64(writeMode), uint64(expected), uint64(newv), uint64(old), b2u(ok))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepCAS, Loc: l, LocName: t.mc.mem.Name(l),
			RMode: readMode, WMode: writeMode, Arg: expected, Val: newv, Old: old, OK: ok})
	}
	return old, ok
}

// FetchAdd atomically adds d to l and returns the previous value.
func (t *Thread) FetchAdd(l view.Loc, d int64, readMode, writeMode memory.Mode) int64 {
	t.step(memory.Access{Kind: memory.AccRMW, Loc: l})
	old, _ := t.updateChecked(l, func(o int64) (int64, bool) { return o + d, true }, readMode, writeMode)
	t.mc.foldOp(t.id, opFAA, t.mc.canonLoc(l), uint64(readMode), uint64(writeMode), uint64(d), uint64(old))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepFAA, Loc: l, LocName: t.mc.mem.Name(l),
			RMode: readMode, WMode: writeMode, Val: d, Old: old})
	}
	return old
}

// Exchange atomically swaps the value of l for v and returns the previous
// value.
func (t *Thread) Exchange(l view.Loc, v int64, readMode, writeMode memory.Mode) int64 {
	t.step(memory.Access{Kind: memory.AccRMW, Loc: l})
	old, _ := t.updateChecked(l, func(int64) (int64, bool) { return v, true }, readMode, writeMode)
	t.mc.foldOp(t.id, opXchg, t.mc.canonLoc(l), uint64(readMode), uint64(writeMode), uint64(v), uint64(old))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepXchg, Loc: l, LocName: t.mc.mem.Name(l),
			RMode: readMode, WMode: writeMode, Val: v, Old: old})
	}
	return old
}

// Update applies an arbitrary atomic read-modify-write.
func (t *Thread) Update(l view.Loc, f memory.UpdateFunc, readMode, writeMode memory.Mode) (int64, bool) {
	t.step(memory.Access{Kind: memory.AccRMW, Loc: l})
	old, wrote := t.updateChecked(l, f, readMode, writeMode)
	t.mc.foldOp(t.id, opUpdate, t.mc.canonLoc(l), uint64(readMode), uint64(writeMode), uint64(old), b2u(wrote))
	if t.mc.tracing {
		t.mc.record(StepEvent{Thread: t.id, Kind: StepUpdate, Loc: l, LocName: t.mc.mem.Name(l),
			RMode: readMode, WMode: writeMode, Old: old, OK: wrote})
	}
	return old, wrote
}

// updateChecked converts a UAFError or CertError panic from the memory's
// RMW path into an execution abort.
func (t *Thread) updateChecked(l view.Loc, f memory.UpdateFunc, readMode, writeMode memory.Mode) (int64, bool) {
	defer func() {
		if p := recover(); p != nil {
			switch e := p.(type) {
			case *memory.UAFError:
				panic(abort{status: Racy, err: e})
			case *memory.CertError:
				panic(abort{status: Failed, err: e})
			}
			panic(p)
		}
	}()
	return t.mc.mem.Update(t.tv, l, f, readMode, writeMode)
}

// Yield is a pure scheduling point (no memory effect). Spin loops should
// yield so other threads can make progress under any strategy.
func (t *Thread) Yield() {
	t.step(memory.Access{Kind: memory.AccNone})
	// Folded into the op history even though memory is untouched: a yield
	// advances the thread's program position, and dedup soundness rests on
	// the op history pinning that position.
	t.mc.foldOp(t.id, opYield)
}

// Report records a named outcome value for this execution (e.g. the value
// returned by a dequeue), for litmus-style outcome histograms.
func (t *Thread) Report(name string, v int64) {
	t.step(memory.Access{Kind: memory.AccReport, Name: name})
	t.mc.outcome[name] = v
	t.mc.foldOp(t.id, opReport, strHash(name), uint64(v))
}

// Failf aborts the execution, marking it Failed. Used by programs to
// report violated client-level assertions.
func (t *Thread) Failf(format string, args ...interface{}) {
	panic(abort{status: Failed, err: fmt.Errorf(format, args...)})
}

// Mem exposes the underlying memory (read-only use: histories, names).
func (t *Thread) Mem() *memory.Memory { return t.mc.mem }

// event kinds flowing from threads to the controller.
const (
	evRequest = iota // thread wants to take its next step
	evFinished
	evAborted
	evSpawn // main thread is ready for workers to start
)

type event struct {
	tid    int
	kind   int
	status Status
	err    error
}

type controller struct {
	mem     *memory.Memory
	strat   Strategy
	stats   *telemetry.Stats // nil when telemetry is disabled
	reads   readChooser      // constructed once per run, not per Read
	events  chan event
	grants  []chan struct{}
	kill    chan struct{}
	steps   int
	budget  int
	outcome map[string]int64
	trace   []StepEvent // per-step op log (only when tracing is enabled)
	tracing bool
	// Partial-order reduction state (only when por != POROff).
	// pending[tid] is the operation thread tid announced at its last park;
	// sleep is a bitmask of parked threads whose pending operation commutes
	// with every operation executed since they were last a scheduling
	// candidate, so granting them now would only replay an interleaving
	// that an explored sibling branch covers. Under PORSleep sleepers wake
	// on the static memory.Independent oracle; under PORSource they wake
	// only on dynamic conflicts (sourceWake), possibly carrying a read
	// floor in floors[tid] that restricts their next read to the messages
	// appended since they slept. All of it evolves as a deterministic
	// function of the decision sequence, which is what lets the
	// prefix-replay explorers reproduce it branch for branch.
	por      PORMode
	pending  []memory.Access
	sleep    uint64
	awake    []int // scratch for porCandidates, reused across grants
	floors   []view.Time
	doneMask uint64 // finished threads (valid while por != POROff, so <= 64 threads)
	wakes    int    // source-mode wake events this run (wakeup-tree size)
	// plan is the static access-plan oracle (only under PORSource with a
	// matching Runner.Plan); nil means no static knowledge.
	plan *memory.PlanOracle
	// State-space dedup (only when Runner.Dedup is set and the strategy
	// replays a prefix — see freeDecider). opHist[tid] is the rolling
	// 2-lane hash of every operation thread tid has completed, with its
	// observed results; together with the canonical memory + view
	// encoding it pins the thread's local continuation (thread bodies are
	// deterministic functions of their observation sequence). locCanon
	// maps raw locations to their stable canonical IDs (see
	// memory.CanonLocID), assigned at Alloc. canonBuf is the reused
	// encoding scratch.
	dedup    *Dedup
	opHist   [][2]uint64
	locCanon []uint64
	canonBuf []byte
}

// porCandidates filters the runnable threads down to those not asleep and
// records the reduction telemetry. A nil result means every runnable
// thread is asleep: each pending step commutes with everything since that
// thread was last a candidate, so every continuation of this state
// replays an equivalence class that an explored sibling subtree covers —
// the classic sleep-set prune point. The caller cuts the run as Pruned.
//
//compass:accounting
func (c *controller) porCandidates(runnable []int) []int {
	awake := c.awake[:0]
	for _, tid := range runnable {
		if c.sleep&(1<<uint(tid)) == 0 {
			awake = append(awake, tid)
		}
	}
	c.awake = awake
	if len(runnable) > 1 {
		c.stats.PORSchedulePoint(len(runnable)-max(len(awake), 1), sleepSize(c.sleep))
	}
	if len(awake) == 0 {
		return nil
	}
	return awake
}

// porCommit updates the sleep set after the scheduler granted cand[idx]:
// candidates ordered before it are explored (or will be, under the
// explorers' in-order sibling enumeration) as sibling branches of this
// very decision, so within this branch their next step goes to sleep;
// then the granted thread's operation wakes every sleeper whose pending
// operation does not commute with it. Sleep-set theory (Godefroid)
// guarantees the pruned tree still reaches every reachable state of the
// full tree, hence every terminal outcome; only the number of
// interleavings shrinks.
func (c *controller) porCommit(cand []int, idx int) {
	for _, u := range cand[:idx] {
		c.sleep |= 1 << uint(u)
	}
	pick := cand[idx]
	if c.sleep != 0 {
		op := c.pending[pick]
		for u := range c.pending {
			if c.sleep&(1<<uint(u)) == 0 {
				continue
			}
			if c.por == PORSource {
				c.sourceWake(u, op)
			} else if !memory.Independent(c.pending[u], op) {
				c.sleep &^= 1 << uint(u)
			}
		}
	}
	c.sleep &^= 1 << uint(pick)
}

// sleepSize counts the threads currently asleep.
func sleepSize(mask uint64) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

// record appends a typed event to the execution trace, stamping the
// current step index. Callers must guard with c.tracing so disabled
// tracing costs nothing.
func (c *controller) record(e StepEvent) {
	e.Step = c.steps
	c.trace = append(c.trace, e)
}

// readChooser validates the strategy's read choices and records the
// fanout/staleness telemetry. One value lives on the controller for the
// whole run so the per-Read chooser lookup allocates nothing.
type readChooser struct {
	strat Strategy
	stats *telemetry.Stats
}

func (rc *readChooser) Choose(n int) int {
	i := rc.strat.Choose(n)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("machine: strategy chose %d of %d", i, n))
	}
	rc.stats.ReadChoice(n, i)
	return i
}

// Runner executes programs.
type Runner struct {
	// Budget is the maximum number of machine steps per execution
	// (default 100000).
	Budget int
	// Trace records a typed per-step operation log into the Result (for
	// diagnosing counterexamples; costs time and memory).
	Trace bool
	// Stats, when non-nil, receives step-level telemetry (thread picks,
	// read-choice fanout, stale reads). Execution-level counters
	// (ExecDone) are recorded by whichever layer accounts for results —
	// the explorer or the check harness — so that telemetry totals always
	// agree with reported totals even when parallel workers overshoot an
	// early stop. Safe to share one Stats across concurrent Runners.
	Stats *telemetry.Stats
	// Footprint, when non-nil, is a location-footprint certificate
	// (extracted by internal/analysis/footprint) installed into each
	// execution's memory: certified locations take validated fast paths
	// that skip race instrumentation and read-window computation, and any
	// access pattern the certificate does not cover aborts the execution
	// as Failed. Pruning never changes outcomes — see memory/footprint.go.
	Footprint *memory.Footprint
	// POR selects the partial-order reduction mode. PORSleep excludes
	// from scheduling any thread whose pending operation commutes with
	// everything executed since it was last a candidate (see
	// memory.Independent); PORSource additionally wakes sleepers only on
	// dynamically observed conflicts and prunes stale read-value branches
	// via wakeup read floors (see PORMode). Either way the set of
	// reachable outcomes is unchanged; the number of executions needed to
	// cover it shrinks, and under the exhaustive explorers Complete still
	// means every outcome of the bounded program was observed. Programs
	// with more than 63 workers fall back to full exploration (the sleep
	// set is a 64-bit mask); the fallback bumps the por_disabled_threads
	// counter and fires the SetPORFallbackWarn hook.
	POR PORMode
	// Plan, when non-nil, is a static access plan (extracted by
	// internal/analysis/staticplan) consulted only under PORSource, and
	// only when its Program matches the program's name (anonymous
	// programs trust the caller's pairing): the plan oracle
	// refutes conservative dynamic conflict verdicts before a sleeper is
	// woken, and proves pending reads/writes invisible (no other live
	// thread's may-set conflicts with them) so they form singleton
	// persistent sets. The plan is a may-over-approximation, so
	// consulting it never loses a reachable outcome; with Plan nil the
	// explorer behaves bit-identically to the plan-less one.
	Plan *memory.Plan
	// Dedup, when non-nil, is the shared visited set of canonical state
	// fingerprints: at every free scheduling decision (one the strategy is
	// not replaying from a pinned prefix — see freeDecider) the runner
	// fingerprints the full machine state and cuts the run as Deduped if
	// the fingerprint was already claimed by an earlier run. Only
	// consulted when the strategy implements freeDecider (the explorers'
	// TraceStrategy does; random strategies never dedup). Safe to share
	// one Dedup across concurrent Runners of the same exploration.
	Dedup *Dedup
}

// Run executes prog under the given strategy and returns the result.
// Run is the lockstep scheduler: the only place simulator goroutines are
// spawned, and they run strictly one at a time under controller grants.
// It also records the per-execution footprint-pruning totals, which are
// facts about the finished execution's memory rather than result
// accounting (they cannot overshoot an early stop).
//
//compass:scheduler
//compass:accounting
func (r *Runner) Run(prog Program, strat Strategy) *Result {
	budget := r.Budget
	if budget <= 0 {
		budget = 100000
	}
	nw := len(prog.Workers)
	por := r.POR
	if por != POROff && nw+1 > 64 {
		// The sleep set is a 64-bit mask: too many threads means running
		// unreduced. Formerly silent; now counted and warned about once.
		por = POROff
		r.Stats.PORDisabled()
		porFallbackWarn(nw + 1)
	}
	c := &controller{
		mem:     memory.New(),
		strat:   strat,
		stats:   r.Stats,
		reads:   readChooser{strat: strat, stats: r.Stats},
		events:  make(chan event),
		grants:  make([]chan struct{}, nw+1),
		kill:    make(chan struct{}),
		budget:  budget,
		outcome: map[string]int64{},
		tracing: r.Trace,
		por:     por,
	}
	if c.por != POROff {
		c.pending = make([]memory.Access, nw+1)
		c.awake = make([]int, 0, nw+1)
	}
	if c.por == PORSource {
		c.floors = make([]view.Time, nw+1)
		if r.Plan != nil && (prog.Name == "" || r.Plan.Program == prog.Name) {
			c.plan = memory.NewPlanOracle(r.Plan, c.mem)
		}
	}
	for i := range c.grants {
		c.grants[i] = make(chan struct{})
	}
	var freeStrat freeDecider
	if r.Dedup != nil {
		if fd, ok := strat.(freeDecider); ok {
			freeStrat = fd
			c.dedup = r.Dedup
			c.opHist = make([][2]uint64, nw+1)
		}
	}
	if r.Footprint != nil {
		c.mem.Certify(r.Footprint)
	}

	mainTV := memory.NewThreadView(0)
	mainTh := &Thread{id: 0, tv: mainTV, mc: c}
	workers := make([]*Thread, nw)
	for i := 0; i < nw; i++ {
		workers[i] = &Thread{id: i + 1, mc: c} // tv filled at spawn time
	}

	runBody := func(t *Thread, body func(*Thread), spawnAfterSetup bool) {
		defer func() {
			if p := recover(); p != nil {
				switch a := p.(type) {
				case abort:
					c.events <- event{tid: t.id, kind: evAborted, status: a.status, err: a.err}
				case killed:
					// controller is tearing the run down; exit silently
				default:
					panic(p)
				}
				return
			}
			c.events <- event{tid: t.id, kind: evFinished}
		}()
		body(t)
		_ = spawnAfterSetup
	}

	// Main thread body: setup, spawn workers, wait, final.
	go runBody(mainTh, func(t *Thread) {
		if prog.Setup != nil {
			prog.Setup(t)
		}
		// Setup is over: validate and seal the footprint certificate (if
		// any) so certified fast paths activate exactly when concurrency
		// begins. A seal failure means the certificate is stale.
		if err := t.mc.mem.SealSetup(); err != nil {
			panic(abort{status: Failed, err: err})
		}
		// Signal the controller to start the workers; block until they all
		// finish (the controller re-grants main afterwards).
		select {
		case c.events <- event{tid: 0, kind: evSpawn}:
		case <-c.kill:
			panic(killed{})
		}
		select {
		case <-c.grants[0]:
		case <-c.kill:
			panic(killed{})
		}
		if prog.Final != nil {
			prog.Final(t)
		}
	}, false)

	// Controller loop.
	type tstate uint8
	const (
		computing tstate = iota // between grant and next park
		parked                  // waiting for a grant
		blocked                 // main waiting for workers
		done                    // finished or aborted
		unstarted
	)
	states := make([]tstate, nw+1)
	states[0] = computing
	for i := 1; i <= nw; i++ {
		states[i] = unstarted
	}
	var tvScratch []*memory.ThreadView
	if c.dedup != nil {
		tvScratch = make([]*memory.ThreadView, nw+1)
	}
	var final *Result
	finish := func(st Status, err error) {
		final = &Result{Status: st, Err: err, Mem: c.mem, Steps: c.steps, Outcome: c.outcome, Events: c.trace}
		c.stats.FootprintPruned(c.mem.PrunedReads(), c.mem.RaceChecksSkipped())
		if c.por == PORSource {
			// One histogram sample per execution: how many race reversals
			// (wakes) this run's wakeup bookkeeping carried.
			c.stats.PORRunWakeups(c.wakes)
		}
	}

	for final == nil {
		// Wait until no thread is computing.
		anyComputing := false
		for _, s := range states {
			if s == computing {
				anyComputing = true
			}
		}
		if anyComputing {
			ev := <-c.events
			switch ev.kind {
			case evRequest:
				states[ev.tid] = parked
			case evFinished:
				states[ev.tid] = done
				if c.por != POROff {
					c.doneMask |= 1 << uint(ev.tid)
				}
				if ev.tid == 0 {
					finish(OK, nil)
				}
			case evAborted:
				finish(ev.status, ev.err)
			case evSpawn:
				states[0] = blocked
				for i := 1; i <= nw; i++ {
					// Fork the views now (main is blocked and won't move),
					// but start the goroutines one at a time below: the
					// segment of a worker body before its first machine
					// operation runs unscheduled, so a simultaneous start
					// would race on the shared recorder.
					workers[i-1].tv = mainTV.Fork(i)
				}
				if nw == 0 {
					states[0] = parked // will be resumed below
				}
			}
			continue
		}
		// Start the next unstarted worker, serially in thread order: it
		// computes alone until its first park, preserving the
		// one-thread-at-a-time invariant without adding decision points.
		if startedNext := func() bool {
			for i := 1; i <= nw; i++ {
				if states[i] == unstarted && states[0] == blocked {
					states[i] = computing
					go runBody(workers[i-1], prog.Workers[i-1], false)
					return true
				}
			}
			return false
		}(); startedNext {
			continue
		}
		// All threads parked/blocked/done. If workers are all done and main
		// is blocked, join worker views and resume main.
		if states[0] == blocked {
			allDone := true
			for i := 1; i <= nw; i++ {
				if states[i] != done {
					allDone = false
				}
			}
			if allDone {
				for i := 0; i < nw; i++ {
					mainTV.JoinClock(workers[i].tv.Cur)
				}
				states[0] = computing
				c.grants[0] <- struct{}{}
				continue
			}
		}
		// Pick a parked thread to grant.
		runnable := runnable(states[:], int(parked))
		if len(runnable) == 0 {
			finish(Failed, errors.New("machine: deadlock (no runnable thread)"))
			break
		}
		cand := runnable
		if c.por != POROff {
			if cand = c.porCandidates(runnable); cand == nil {
				finish(Pruned, nil)
				break
			}
			if c.por == PORSource && len(cand) > 1 {
				if i := c.forceInvisible(cand); i >= 0 {
					cand = cand[i : i+1]
				}
			}
		}
		if c.dedup != nil && freeStrat.FreeDecisions() {
			// Fingerprint the state at every free scheduling decision —
			// prefix-pinned decisions were claimed by the run that pushed
			// the prefix, so checking only free ones keeps the set of
			// checked points a deterministic function of each decision
			// path (and therefore run counts identical serial vs parallel).
			buf := c.canonBuf[:0]
			for _, s := range states {
				buf = append(buf, byte(s))
			}
			tvScratch[0] = mainTV
			for i, w := range workers {
				tvScratch[i+1] = w.tv
			}
			buf = c.appendDedupState(buf, tvScratch)
			c.canonBuf = buf
			if c.dedup.checkAndMark(buf, r.Stats) {
				finish(Deduped, nil)
				break
			}
		}
		idx := 0
		if len(cand) > 1 {
			idx = strat.PickThread(cand)
		}
		pick := cand[idx]
		if c.por != POROff {
			c.porCommit(cand, idx)
		}
		c.stats.ThreadPick(pick)
		states[pick] = computing
		c.grants[pick] <- struct{}{}
	}

	close(c.kill)
	return final
}

func runnable[T ~uint8](states []T, parked int) []int {
	var out []int
	for i, s := range states {
		if int(s) == parked {
			out = append(out, i)
		}
	}
	return out
}
