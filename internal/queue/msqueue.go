package queue

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// MSQueue is the Michael–Scott lock-free queue [56] with release/acquire
// synchronization, as verified in the paper against the LAT_hb^abs queue
// specs (§3.2): "a purely release-acquire implementation of the
// Michael-Scott queue satisfies the LAT_hb^abs specs".
//
// Access modes: the link CAS (the enqueue's commit point) is a release
// write; reads of head/tail/next are acquire; the head-advancing CAS (the
// dequeue's commit point) has an acquire read side; node value/event-ID
// cells are non-atomic, published by the link release.
type MSQueue struct {
	head view.Loc
	tail view.Loc
	nt   nodeTable
	rec  *core.Recorder

	// linkMode is the write mode of the link CAS (Rel; the buggy variant
	// uses Rlx, dropping the publication edge).
	linkMode memory.Mode
	// readMode is the read mode of head/tail/next loads (Acq; the buggy
	// variant uses Rlx, dropping the acquisition edge).
	readMode memory.Mode
	// fencedPublish makes the enqueue publish through a release fence
	// followed by relaxed CASes (NewMSFenced).
	fencedPublish bool
	// blindEmpty makes each thread's first TryDequeue lie: it reports
	// empty without inspecting the queue and records the EmpDeq with a
	// blinded (empty) logical view (NewMSBlindEmpty).
	blindEmpty bool
	blindSeen  map[int]bool
}

// NewMS allocates a Michael–Scott queue with the paper's access modes.
func NewMS(th *machine.Thread, name string) *MSQueue {
	return newMS(th, name, memory.Rel, memory.Acq)
}

// NewMSBuggyRelaxedLink allocates the ablation variant whose link CAS is
// relaxed instead of release: the enqueue no longer publishes the node's
// contents, so dequeues race on the value cells (DESIGN.md ablation 1).
func NewMSBuggyRelaxedLink(th *machine.Thread, name string) *MSQueue {
	return newMS(th, name, memory.Rlx, memory.Acq)
}

// NewMSBuggyRelaxedRead allocates the ablation variant whose pointer loads
// are relaxed instead of acquire.
func NewMSBuggyRelaxedRead(th *machine.Thread, name string) *MSQueue {
	return newMS(th, name, memory.Rel, memory.Rlx)
}

// NewMSFenced allocates a Michael-Scott queue whose enqueue publishes via
// an explicit release *fence* followed by relaxed CASes, instead of
// release CASes — exercising the ORC11 fence rules (§5 mentions that the
// COMPASS interface must support fences). The dequeue side is unchanged
// (acquire reads). Verified against the same specs as NewMS.
func NewMSFenced(th *machine.Thread, name string) *MSQueue {
	q := newMS(th, name, memory.Rlx, memory.Acq)
	q.fencedPublish = true
	return q
}

// NewMSBlindEmpty is a seeded *spec-encoding* weakening (not a memory-
// ordering ablation): each thread's first TryDequeue unconditionally
// reports empty and commits the EmpDeq through CommitNewBlind, so the
// recorded logical view is empty no matter what the thread has observed.
// Consistency predicates that quantify over the recorded view see a
// thread that legitimately knows nothing and pass; the refinement
// oracle's po floor still knows the thread's own earlier enqueues, so a
// produce-then-dequeue thread is caught claiming emptiness about an
// element it provably knew about.
func NewMSBlindEmpty(th *machine.Thread, name string) *MSQueue {
	q := newMS(th, name, memory.Rel, memory.Acq)
	q.blindEmpty = true
	q.blindSeen = map[int]bool{}
	return q
}

func newMS(th *machine.Thread, name string, linkMode, readMode memory.Mode) *MSQueue {
	q := &MSQueue{rec: core.NewRecorder(name), linkMode: linkMode, readMode: readMode}
	sentinel := q.nt.alloc(th, name+".sentinel", 0, -1)
	q.head = th.Alloc(name+".head", sentinel)
	q.tail = th.Alloc(name+".tail", sentinel)
	return q
}

// Recorder implements Queue.
func (q *MSQueue) Recorder() *core.Recorder { return q.rec }

// Enqueue implements Queue: allocate a node, link it after the current
// tail with a release CAS (the commit point), then advance the tail.
func (q *MSQueue) Enqueue(th *machine.Thread, v int64) {
	id := q.rec.Begin(th, core.Enq, v)
	n := q.nt.alloc(th, "msq.node", v, int64(id))
	for {
		t := th.Read(q.tail, q.readMode)
		tn := q.nt.at(t)
		next := th.Read(tn.next, q.readMode)
		if next != 0 {
			// Tail is lagging; help advance it.
			th.CAS(q.tail, t, next, memory.Rlx, q.linkMode)
			continue
		}
		q.rec.Arm(th, id)
		if q.fencedPublish {
			// Release fence: the relaxed link CAS below carries everything
			// observed so far, including the armed event and node cells.
			th.Fence(false, true)
		}
		if _, ok := th.CAS(tn.next, 0, n, memory.Rlx, q.linkMode); ok {
			q.rec.Commit(th, id) // commit point: the link CAS
			th.CAS(q.tail, t, n, memory.Rlx, q.linkMode)
			return
		}
		q.rec.Disarm(th, id)
	}
}

// TryDequeue implements Queue: read the head's successor; if there is
// none, commit an empty dequeue (the weak behaviour: the queue may in fact
// be non-empty); otherwise swing the head with an acquire CAS (the commit
// point) and return the successor's value.
func (q *MSQueue) TryDequeue(th *machine.Thread) (int64, bool) {
	if q.blindEmpty && !q.blindSeen[th.ID()] {
		// Library code between machine steps runs exclusively, so the
		// map needs no locking (same discipline as the recorder).
		q.blindSeen[th.ID()] = true
		q.rec.CommitNewBlind(th, core.EmpDeq, 0)
		return 0, false
	}
	for {
		h := th.Read(q.head, q.readMode)
		hn := q.nt.at(h)
		next := th.Read(hn.next, q.readMode)
		if next == 0 {
			q.rec.CommitNew(th, core.EmpDeq, 0) // commit point: the next read
			return 0, false
		}
		// Read the successor's payload before the CAS (its cells are
		// immutable and were acquired by the next read), so the commit can
		// be recorded adjacent to the CAS with no machine step in between.
		n := q.nt.at(next)
		v := th.Read(n.val, memory.NA)
		eid := th.Read(n.eid, memory.NA)
		if _, ok := th.CAS(q.head, h, next, memory.Acq, memory.Rlx); ok {
			d := q.rec.CommitNew(th, core.Deq, v) // commit point: the head CAS
			q.rec.AddSo(view.EventID(eid), d)
			return v, true
		}
		th.Yield()
	}
}
