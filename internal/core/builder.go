package core

import (
	"compass/internal/view"
)

// GraphBuilder constructs event graphs directly, without running the
// machine. It is used by spec unit tests and by property-based fuzzing of
// the consistency checkers against hand-crafted (including deliberately
// inconsistent) graphs.
type GraphBuilder struct {
	g    *Graph
	step int
}

// NewGraphBuilder returns a builder for an empty graph.
func NewGraphBuilder(name string) *GraphBuilder {
	return &GraphBuilder{g: NewGraph(name)}
}

// Add appends a committed event with the given kind, payloads, and logical
// view (the IDs of events that happen-before it). Events are committed in
// call order; commit steps are consecutive. Returns the new event's ID.
func (b *GraphBuilder) Add(kind Kind, val, val2 int64, lhb ...view.EventID) view.EventID {
	id := view.MakeEventID(b.g.tag, len(b.g.events))
	b.step++
	lv := view.NewLog()
	for _, e := range lhb {
		lv.Add(e)
		// lhb is transitive: inherit predecessors' logviews.
		lv.JoinInto(b.g.Event(e).LogView)
	}
	pv := view.New()
	b.g.events = append(b.g.events, &Event{
		ID: id, Kind: kind, Val: val, Val2: val2,
		StartStep: b.step, CommitStep: b.step,
		PhysView: pv, LogView: lv, Committed: true,
	})
	b.g.CommitOrder = append(b.g.CommitOrder, id)
	return id
}

// So records (a, b) ∈ so.
func (b *GraphBuilder) So(a, d view.EventID) { b.g.addSo(a, d) }

// SetPhysView overrides the physical view of an event (for view-transfer
// checker tests).
func (b *GraphBuilder) SetPhysView(id view.EventID, v view.View) {
	b.g.Event(id).PhysView = v
}

// SetSteps overrides the start/commit steps of an event (for overlap
// checker tests).
func (b *GraphBuilder) SetSteps(id view.EventID, start, commit int) {
	b.g.Event(id).StartStep = start
	b.g.Event(id).CommitStep = commit
}

// AddLhb inserts e into d's logical view directly, without transitive
// closure or commit-order validation (for testing checkers on malformed
// graphs).
func (b *GraphBuilder) AddLhb(e, d view.EventID) {
	b.g.Event(d).LogView.Add(e)
}

// Graph returns the constructed graph.
func (b *GraphBuilder) Graph() *Graph { return b.g }
