package machine

import (
	"reflect"
	"sort"
	"testing"

	"compass/internal/memory"
	"compass/internal/telemetry"
	"compass/internal/view"
)

// outcomeSet explores build exhaustively and returns the sorted set of
// distinct outcome strings, plus the explorer verdict.
func outcomeSet(t *testing.T, build func() Program, opts ExploreOpts) ([]string, ExploreResult) {
	t.Helper()
	seen := map[string]bool{}
	res := Explore(build, opts, func(r *Result) bool {
		if r.Status == OK {
			seen[outcomeString(r.Outcome)] = true
		}
		return true
	})
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, res
}

func outcomeString(o map[string]int64) string {
	keys := make([]string, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + string(rune('0'+o[k])) + " "
	}
	return s
}

// disjointProgram has two workers touching entirely disjoint locations:
// every interleaving is equivalent, so POR should collapse the schedule
// tree to a handful of runs.
func disjointProgram() Program {
	var x, y view.Loc
	return Program{
		Setup: func(th *Thread) {
			x = th.Alloc("x", 0)
			y = th.Alloc("y", 0)
		},
		Workers: []func(*Thread){
			func(th *Thread) {
				th.Write(x, 1, memory.Rlx)
				th.Write(x, 2, memory.Rlx)
			},
			func(th *Thread) {
				th.Write(y, 1, memory.Rlx)
				th.Write(y, 2, memory.Rlx)
			},
		},
		Final: func(th *Thread) {
			th.Report("x", th.Read(x, memory.Rlx))
			th.Report("y", th.Read(y, memory.Rlx))
		},
	}
}

// sbProgram is store buffering: genuinely conflicting accesses, so POR
// must preserve all four outcomes.
func sbProgram() Program {
	var x, y view.Loc
	return Program{
		Setup: func(th *Thread) {
			x = th.Alloc("x", 0)
			y = th.Alloc("y", 0)
		},
		Workers: []func(*Thread){
			func(th *Thread) {
				th.Write(x, 1, memory.Rlx)
				th.Report("r1", th.Read(y, memory.Rlx))
			},
			func(th *Thread) {
				th.Write(y, 1, memory.Rlx)
				th.Report("r2", th.Read(x, memory.Rlx))
			},
		},
	}
}

func TestPORPreservesOutcomesAndPrunes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() Program
	}{
		{"disjoint", disjointProgram},
		{"sb", sbProgram},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full, fres := outcomeSet(t, tc.build, ExploreOpts{})
			for _, mode := range []PORMode{PORSleep, PORSource} {
				red, rres := outcomeSet(t, tc.build, ExploreOpts{POR: mode})
				if !reflect.DeepEqual(full, red) {
					t.Fatalf("outcome sets differ under %v:\n full: %v\n  por: %v", mode, full, red)
				}
				if rres.Runs > fres.Runs {
					t.Fatalf("%v explored more runs (%d) than full exploration (%d)", mode, rres.Runs, fres.Runs)
				}
				t.Logf("runs: full=%d %v=%d outcomes=%d", fres.Runs, mode, rres.Runs, len(full))
			}
		})
	}
}

// TestSourceNoWorseThanSleep pins the point of the upgrade: on every
// conflicting workload here, source-DPOR's dynamic race reversal must
// explore no more runs than the static sleep-set oracle.
func TestSourceNoWorseThanSleep(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() Program
	}{
		{"disjoint", disjointProgram},
		{"disjoint3", disjointProgram3},
		{"sb", sbProgram},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, sleep := outcomeSet(t, tc.build, ExploreOpts{POR: PORSleep})
			_, source := outcomeSet(t, tc.build, ExploreOpts{POR: PORSource})
			if source.Runs > sleep.Runs {
				t.Fatalf("source-DPOR explored more runs (%d) than sleep sets (%d)", source.Runs, sleep.Runs)
			}
			t.Logf("runs: sleep=%d source=%d", sleep.Runs, source.Runs)
		})
	}
}

// disjointProgram3 is disjointProgram with a third independent worker.
func disjointProgram3() Program {
	var x, y, z view.Loc
	return Program{
		Setup: func(th *Thread) {
			x = th.Alloc("x", 0)
			y = th.Alloc("y", 0)
			z = th.Alloc("z", 0)
		},
		Workers: []func(*Thread){
			func(th *Thread) {
				th.Write(x, 1, memory.Rlx)
				th.Write(x, 2, memory.Rlx)
			},
			func(th *Thread) {
				th.Write(y, 1, memory.Rlx)
				th.Write(y, 2, memory.Rlx)
			},
			func(th *Thread) {
				th.Write(z, 1, memory.Rlx)
				th.Write(z, 2, memory.Rlx)
			},
		},
		Final: func(th *Thread) {
			th.Report("x", th.Read(x, memory.Rlx))
			th.Report("y", th.Read(y, memory.Rlx))
			th.Report("z", th.Read(z, memory.Rlx))
		},
	}
}

// TestPORDisjointCollapses pins that the reduction actually bites: with
// three fully commuting workers the reduced tree must be at least 3x
// smaller (sleep sets alone do not reach the single-trace optimum, but
// the blowup they remove grows with the number of commuting threads).
func TestPORDisjointCollapses(t *testing.T) {
	full, fres := outcomeSet(t, disjointProgram3, ExploreOpts{})
	for _, mode := range []PORMode{PORSleep, PORSource} {
		red, rres := outcomeSet(t, disjointProgram3, ExploreOpts{POR: mode})
		if !reflect.DeepEqual(full, red) {
			t.Fatalf("outcome sets differ under %v:\n full: %v\n  por: %v", mode, full, red)
		}
		if rres.Runs*3 > fres.Runs {
			t.Fatalf("expected ≥3x reduction on disjoint workers under %v: full=%d por=%d", mode, fres.Runs, rres.Runs)
		}
		t.Logf("runs: full=%d %v=%d", fres.Runs, mode, rres.Runs)
	}
}

// TestPORParallelMatchesSequential asserts the reduced decision tree is
// the same tree for the sequential and the subtree-partitioned parallel
// explorer: identical run counts and outcome sets.
func TestPORParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() Program
	}{
		{"disjoint", disjointProgram},
		{"sb", sbProgram},
	} {
		for _, mode := range []PORMode{PORSleep, PORSource} {
			t.Run(tc.name+"/"+mode.String(), func(t *testing.T) {
				seqSet, seq := outcomeSet(t, tc.build, ExploreOpts{POR: mode})
				parSeen := map[string]bool{}
				var mu chan struct{} = make(chan struct{}, 1)
				mu <- struct{}{}
				par := ExploreParallel(ExploreOpts{POR: mode, Workers: 4},
					func() (func() Program, func(*Result) bool) {
						return tc.build, func(r *Result) bool {
							if r.Status == OK {
								<-mu
								parSeen[outcomeString(r.Outcome)] = true
								mu <- struct{}{}
							}
							return true
						}
					})
				if !par.Complete {
					t.Fatalf("parallel exploration incomplete after %d runs", par.Runs)
				}
				if par.Runs != seq.Runs {
					t.Fatalf("parallel POR runs %d != sequential %d", par.Runs, seq.Runs)
				}
				parSet := make([]string, 0, len(parSeen))
				for k := range parSeen {
					parSet = append(parSet, k)
				}
				sort.Strings(parSet)
				if !reflect.DeepEqual(seqSet, parSet) {
					t.Fatalf("outcome sets differ:\n seq: %v\n par: %v", seqSet, parSet)
				}
			})
		}
	}
}

// TestPORTelemetry asserts the POR counters move when the reduction runs
// and stay zero when it is off.
func TestPORTelemetry(t *testing.T) {
	off := telemetry.New()
	Explore(disjointProgram, ExploreOpts{Stats: off}, func(*Result) bool { return true })
	if n := off.Explore.PORBranchesSkipped.Load(); n != 0 {
		t.Fatalf("por_branches_skipped = %d without POR", n)
	}
	on := telemetry.New()
	Explore(disjointProgram, ExploreOpts{Stats: on, POR: PORSleep}, func(*Result) bool { return true })
	if n := on.Explore.PORBranchesSkipped.Load(); n == 0 {
		t.Fatalf("por_branches_skipped stayed 0 with POR on a fully commuting program")
	}
	snap := on.Snapshot()
	if snap.Explore.PORBranchesSkipped == 0 || snap.Explore.SleepSetSize.Count == 0 {
		t.Fatalf("snapshot missing POR counters: %+v", snap.Explore)
	}
}

// TestSourceTelemetry asserts the source-DPOR counters move on a racy
// program and that the wakeup-tree histogram books one sample per
// execution with sum equal to the races-reversed counter.
func TestSourceTelemetry(t *testing.T) {
	st := telemetry.New()
	res := Explore(sbProgram, ExploreOpts{Stats: st, POR: PORSource}, func(*Result) bool { return true })
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
	snap := st.Snapshot()
	e := snap.Explore
	if e.PORRacesReversed == 0 {
		t.Fatalf("por_races_reversed stayed 0 on store buffering under source-DPOR")
	}
	if e.WakeupTreeSize.Count == 0 {
		t.Fatalf("wakeup_tree_size histogram empty under source-DPOR")
	}
	if e.WakeupTreeSize.Sum != e.PORRacesReversed {
		t.Fatalf("wakeup_tree_size sum %d != por_races_reversed %d", e.WakeupTreeSize.Sum, e.PORRacesReversed)
	}
	off := telemetry.New()
	Explore(sbProgram, ExploreOpts{Stats: off, POR: PORSleep}, func(*Result) bool { return true })
	if n := off.Explore.PORRacesReversed.Load(); n != 0 {
		t.Fatalf("por_races_reversed = %d under sleep-set mode", n)
	}
}

// TestSourceReadFloorPrunes pins the wakeup-constraint refinement: a
// reader put to sleep and then woken by a same-location write re-enters
// with a read floor, so its read enumerates only post-sleep messages.
// The stale branches it skips are covered by the reader-first sibling,
// so the outcome set is unchanged while por_stale_reads_skipped moves.
func TestSourceReadFloorPrunes(t *testing.T) {
	build := func() Program {
		var x view.Loc
		return Program{
			Setup: func(th *Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*Thread){
				func(th *Thread) { th.Report("r", th.Read(x, memory.Rlx)) },
				func(th *Thread) {
					th.Write(x, 1, memory.Rlx)
					th.Write(x, 2, memory.Rlx)
				},
			},
		}
	}
	full, fres := outcomeSet(t, build, ExploreOpts{})
	st := telemetry.New()
	seen := map[string]bool{}
	res := Explore(build, ExploreOpts{POR: PORSource, Stats: st}, func(r *Result) bool {
		if r.Status == OK {
			seen[outcomeString(r.Outcome)] = true
		}
		return true
	})
	if !res.Complete {
		t.Fatalf("source exploration incomplete after %d runs", res.Runs)
	}
	got := make([]string, 0, len(seen))
	for k := range seen {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(full, got) {
		t.Fatalf("outcome sets differ:\n full: %v\n  src: %v", full, got)
	}
	if n := st.Explore.PORStaleReadsSkipped.Load(); n == 0 {
		t.Fatalf("por_stale_reads_skipped stayed 0: read floors never pruned")
	}
	if res.Runs >= fres.Runs {
		t.Fatalf("source-DPOR did not reduce: full=%d source=%d", fres.Runs, res.Runs)
	}
	t.Logf("runs: full=%d source=%d stale-skipped=%d", fres.Runs, res.Runs, st.Explore.PORStaleReadsSkipped.Load())
}

// TestPORFallbackManyThreads pins the >64-thread behavior: POR silently
// degrading was a bug; now the disabled-run counter moves and the
// one-time warning hook fires with the offending thread count.
func TestPORFallbackManyThreads(t *testing.T) {
	build := func() Program {
		var x view.Loc
		workers := make([]func(*Thread), 65)
		for i := range workers {
			workers[i] = func(th *Thread) {}
		}
		workers[0] = func(th *Thread) { th.Write(x, 1, memory.Rlx) }
		return Program{
			Setup:   func(th *Thread) { x = th.Alloc("x", 0) },
			Workers: workers,
		}
	}
	warned := 0
	gotThreads := 0
	SetPORFallbackWarn(func(threads int) { warned++; gotThreads = threads })
	defer SetPORFallbackWarn(nil)
	st := telemetry.New()
	r := &Runner{POR: PORSource, Stats: st}
	if res := r.Run(build(), NewRandom(1)); res.Status != OK {
		t.Fatalf("run failed: %v", res.Status)
	}
	if n := st.Explore.PORDisabledThreads.Load(); n == 0 {
		t.Fatalf("por_disabled_threads stayed 0 with 66 threads")
	}
	if warned != 1 || gotThreads != 66 {
		t.Fatalf("fallback warn: fired %d times with threads=%d, want once with 66", warned, gotThreads)
	}
	// A second over-limit run must not warn again.
	if res := r.Run(build(), NewRandom(2)); res.Status != OK {
		t.Fatalf("second run failed: %v", res.Status)
	}
	if warned != 1 {
		t.Fatalf("fallback warning fired %d times, want exactly once", warned)
	}
}
