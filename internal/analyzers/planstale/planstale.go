// Package planstale keeps committed static-plan fixtures in sync with
// the sources they were extracted from. A function carrying
// //compass:plan-fixture <relpath> declares that the JSON file at
// <relpath> (relative to the declaring file) is the canonical
// staticplan.Marshal rendering of the current sources; the pass
// re-extracts and byte-compares, so a workload edit that silently
// changes its access plan fails lint until `make plan` refreshes the
// fixture the certificate gate and POR oracle consume.
package planstale

import (
	"bytes"
	"errors"
	"go/ast"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"compass/internal/analysis/staticplan"
	"compass/internal/analyzers/lint"
	"compass/internal/memory"
)

// Analyzer is the planstale pass.
var Analyzer = &lint.Analyzer{
	Name: "planstale",
	Doc: `fail when a committed static-plan fixture drifts from the sources

//compass:plan-fixture <relpath> on a function pins the JSON file at
<relpath> to the canonical extraction output. By default the pass
re-extracts the //compass:plan-suite functions of its own package; with
//compass:plan-module also present it re-extracts the whole module's
suites (staticplan.ExtractAll), which is how the embedded fixture behind
staticplan.Plans() is checked. Refresh stale fixtures with make plan.`,
	Run: run,
}

// FixtureDirective pins a fixture file; its argument is the path
// relative to the file declaring the directive.
const FixtureDirective = "plan-fixture"

// ModuleDirective widens extraction from the pass's own package to the
// whole module's plan suites.
const ModuleDirective = "plan-module"

// Module-wide extraction is shared across every package the pass visits
// in one process: the fixture content does not depend on which package
// carried the directive.
var (
	moduleOnce  sync.Once
	moduleBytes []byte
	moduleErr   error
)

func moduleRender() ([]byte, error) {
	moduleOnce.Do(func() {
		var l *lint.Loader
		l, moduleErr = lint.NewLoader(".")
		if moduleErr != nil {
			return
		}
		var plans map[string]*memory.Plan
		plans, moduleErr = staticplan.ExtractAll(l)
		if moduleErr != nil {
			return
		}
		moduleBytes, moduleErr = staticplan.Marshal(plans)
	})
	return moduleBytes, moduleErr
}

// packageRender extracts the plan suites of the pass's own package and
// renders them canonically.
func packageRender(pass *lint.Pass) ([]byte, error) {
	pkg := &lint.Package{
		PkgPath:   pass.Pkg.Path(),
		Fset:      pass.Fset,
		Files:     pass.Files,
		Types:     pass.Pkg,
		TypesInfo: pass.TypesInfo,
	}
	plans, err := staticplan.ExtractSuites(staticplan.NewInterp(pkg), pkg)
	if err != nil {
		return nil, err
	}
	return staticplan.Marshal(plans)
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			rel, ok := lint.DirectiveArg(fd.Doc, FixtureDirective)
			if !ok {
				continue
			}
			if rel == "" {
				pass.Reportf(fd.Pos(), "plan-fixture directive needs a path argument (relative to this file)")
				continue
			}
			path := filepath.Join(filepath.Dir(pass.Fset.Position(fd.Pos()).Filename), rel)
			var got []byte
			var err error
			if lint.HasDirective(fd.Doc, ModuleDirective) {
				got, err = moduleRender()
			} else {
				got, err = packageRender(pass)
			}
			if err != nil {
				pass.Reportf(fd.Pos(), "extracting plans for fixture %s: %v", rel, err)
				continue
			}
			want, err := os.ReadFile(path)
			if errors.Is(err, fs.ErrNotExist) {
				pass.Reportf(fd.Pos(), "plan fixture %s does not exist: run `make plan` to generate it", rel)
				continue
			}
			if err != nil {
				pass.Reportf(fd.Pos(), "reading plan fixture %s: %v", rel, err)
				continue
			}
			if !bytes.Equal(got, want) {
				pass.Reportf(fd.Pos(), "plan fixture %s is stale: the sources extract a different plan set; run `make plan` to refresh it", rel)
			}
		}
	}
	return nil
}
