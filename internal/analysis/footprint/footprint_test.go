package footprint

import (
	"strings"
	"testing"

	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

func TestExtractClassifiesLocations(t *testing.T) {
	build := func() machine.Program {
		var cfg, scratch, contended view.Loc
		return machine.Program{
			Name: "classify",
			Setup: func(th *machine.Thread) {
				cfg = th.Alloc("cfg", 5)
				th.Write(cfg, 6, memory.NA) // second setup write: SetupMax 2
				scratch = th.Alloc("scratch", 0)
				contended = th.Alloc("contended", 0)
			},
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) {
					th.Write(scratch, th.Read(cfg, memory.Rlx), memory.NA)
					th.Write(contended, 1, memory.Rlx)
				},
				func(th *machine.Thread) {
					th.Report("r", th.Read(contended, memory.Rlx)+th.Read(cfg, memory.Rlx))
				},
			},
		}
	}
	fp, err := Extract(build)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name != "classify" || fp.SetupLocs != 3 || len(fp.Locs) != 3 {
		t.Fatalf("unexpected footprint shape: %s", fp)
	}
	if c := fp.Locs[0]; c.Class != memory.ClassReadOnly || c.SetupMax != 2 {
		t.Errorf("cfg = {%v, max %d}, want read-only with setup max 2", c.Class, c.SetupMax)
	}
	if c := fp.Locs[1]; c.Class != memory.ClassExclusive || c.Owner != 1 {
		t.Errorf("scratch = {%v, owner %d}, want exclusive to thread 1", c.Class, c.Owner)
	}
	if c := fp.Locs[2]; c.Class != memory.ClassShared {
		t.Errorf("contended = %v, want shared", c.Class)
	}
	if fp.AllAtomic {
		t.Error("AllAtomic set despite na accesses after setup")
	}
}

func TestExtractAllAtomic(t *testing.T) {
	build := func() machine.Program {
		var x view.Loc
		return machine.Program{
			Name:  "atomic-only",
			Setup: func(th *machine.Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) { th.Write(x, 1, memory.Rel) },
				func(th *machine.Thread) { th.Report("r", th.Read(x, memory.Acq)) },
			},
		}
	}
	fp, err := Extract(build)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.AllAtomic {
		t.Error("AllAtomic not set for a program without na accesses")
	}
}

func TestExtractWorkerAllocationsAreNotCertified(t *testing.T) {
	build := func() machine.Program {
		var x view.Loc
		return machine.Program{
			Name:  "worker-alloc",
			Setup: func(th *machine.Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) {
					local := th.Alloc("local", 0)
					th.Write(local, th.Read(x, memory.Rlx), memory.Rlx)
				},
			},
		}
	}
	fp, err := Extract(build)
	if err != nil {
		t.Fatal(err)
	}
	if fp.SetupLocs != 1 || len(fp.Locs) != 1 {
		t.Fatalf("worker allocation leaked into the certificate: %s", fp)
	}
}

func TestExtractRefusesUnusableRecordings(t *testing.T) {
	noWorkers := func() machine.Program {
		return machine.Program{Name: "nw", Setup: func(th *machine.Thread) { th.Alloc("x", 0) }}
	}
	if _, err := Extract(noWorkers); err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Errorf("Extract(no workers) = %v, want refusal", err)
	}
	idleWorkers := func() machine.Program {
		return machine.Program{
			Name:    "idle",
			Setup:   func(th *machine.Thread) { th.Alloc("x", 0) },
			Workers: []func(*machine.Thread){func(th *machine.Thread) {}},
		}
	}
	if _, err := Extract(idleWorkers); err == nil || !strings.Contains(err.Error(), "no worker activity") {
		t.Errorf("Extract(idle workers) = %v, want refusal", err)
	}
	failing := func() machine.Program {
		var x view.Loc
		return machine.Program{
			Name:  "failing",
			Setup: func(th *machine.Thread) { x = th.Alloc("x", 0) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) { th.Write(x, 1, memory.Rlx); th.Failf("boom") },
			},
		}
	}
	if _, err := Extract(failing); err == nil || !strings.Contains(err.Error(), "ended failed") {
		t.Errorf("Extract(failing program) = %v, want refusal", err)
	}
}
