package loctrack_test

import (
	"testing"

	"compass/internal/analyzers/lint/linttest"
	"compass/internal/analyzers/loctrack"
)

// TestGolden diffs the analyzer against its testdata corpus: every
// `// want` line must produce a matching diagnostic and nothing else
// may be reported.
func TestGolden(t *testing.T) {
	linttest.Run(t, loctrack.Analyzer, "../testdata/loctrack")
}
