// Package modecheck requires memory-ordering arguments to be named
// constants. A raw integer in a memory.Mode position type-checks but
// hides the ordering decision (and silently changes meaning if the
// constant order is ever touched), so every call site must say
// memory.NA/Rlx/Acq/Rel/AcqRel — or pass a variable that was.
package modecheck

import (
	"go/ast"
	"go/types"

	"compass/internal/analyzers/lint"
)

// Analyzer is the modecheck pass.
var Analyzer = &lint.Analyzer{
	Name: "modecheck",
	Doc: `forbid raw integers in memory.Mode argument positions

Memory access call sites must pass a named ordering constant (NA, Rlx,
Acq, Rel, AcqRel, or the fence modes), never a numeric literal or an
untyped constant expression: modecheck flags any constant Mode argument
that is not spelled as a reference to a declared constant.`,
	Run: run,
}

const memoryPath = "compass/internal/memory"

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	tvFun, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tvFun.IsType() {
		// Conversion: memory.Mode(2) — flag constant operands here so the
		// conversion cannot be used to smuggle a raw integer past the
		// parameter check.
		if isModeType(tvFun.Type) && len(call.Args) == 1 {
			checkArg(pass, call.Args[0])
		}
		return
	}
	sig, ok := tvFun.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if slice, ok := pt.(*types.Slice); ok && !hasEllipsis(call) {
				pt = slice.Elem()
			}
		}
		if isModeType(pt) {
			checkArg(pass, arg)
		}
	}
}

func hasEllipsis(call *ast.CallExpr) bool { return call.Ellipsis.IsValid() }

// isModeType reports whether t is compass/internal/memory.Mode.
func isModeType(t types.Type) bool {
	pkgPath, name, ok := lint.NamedTypePath(t)
	return ok && pkgPath == memoryPath && name == "Mode"
}

// checkArg flags arg when it is a constant not written as a reference to
// a declared constant (identifier or selector).
func checkArg(pass *lint.Pass, arg ast.Expr) {
	e := ast.Unparen(arg)
	switch e := e.(type) {
	case *ast.CallExpr:
		// A conversion like memory.Mode(2) is reported once, at its
		// operand, by the conversion branch of checkCall.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return
		}
	case *ast.Ident:
		if _, isConst := pass.TypesInfo.Uses[e].(*types.Const); isConst {
			return
		}
	case *ast.SelectorExpr:
		if _, isConst := pass.TypesInfo.Uses[e.Sel].(*types.Const); isConst {
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return // variable, field, or call result — assume it was named upstream
	}
	pass.Reportf(arg.Pos(), "raw constant in memory.Mode position: name the ordering (memory.NA/Rlx/Acq/Rel/AcqRel) instead of %s", tv.Value)
}
