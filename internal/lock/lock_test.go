package lock_test

import (
	"testing"

	"compass/internal/lock"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/spec"
	"compass/internal/view"
)

// runAll explores the program over many random schedules, requiring every
// execution to end in the expected status.
func runAll(t *testing.T, build func() machine.Program, want machine.Status, n int) {
	t.Helper()
	for seed := int64(1); seed <= int64(n); seed++ {
		r := (&machine.Runner{}).Run(build(), machine.NewRandomBiased(seed, 0.5))
		if r.Status != want {
			t.Fatalf("seed %d: status = %v (err %v), want %v", seed, r.Status, r.Err, want)
		}
	}
}

func TestLockMutualExclusionAndPublication(t *testing.T) {
	// Three threads increment a non-atomic counter under the lock: no
	// races (the lock publishes), and the final value is exact (mutual
	// exclusion).
	build := func() machine.Program {
		var lk *lock.SpinLock
		var counter view.Loc
		return machine.Program{
			Setup: func(th *machine.Thread) {
				lk = lock.New(th, "lk")
				counter = th.Alloc("counter", 0)
			},
			Workers: []func(*machine.Thread){
				increment(&lk, &counter, 2),
				increment(&lk, &counter, 2),
				increment(&lk, &counter, 2),
			},
			Final: func(th *machine.Thread) {
				if v := th.Read(counter, memory.NA); v != 6 {
					th.Failf("counter = %d, want 6", v)
				}
			},
		}
	}
	runAll(t, build, machine.OK, 200)
}

func increment(lk **lock.SpinLock, counter *view.Loc, times int) func(*machine.Thread) {
	return func(th *machine.Thread) {
		for i := 0; i < times; i++ {
			(*lk).Lock(th)
			v := th.Read(*counter, memory.NA)
			th.Write(*counter, v+1, memory.NA)
			(*lk).Unlock(th)
		}
	}
}

func TestWithoutLockRaces(t *testing.T) {
	build := func() machine.Program {
		var counter view.Loc
		return machine.Program{
			Setup: func(th *machine.Thread) { counter = th.Alloc("counter", 0) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) { th.Write(counter, 1, memory.NA) },
				func(th *machine.Thread) { th.Write(counter, 2, memory.NA) },
			},
		}
	}
	racy := 0
	for seed := int64(1); seed <= 100; seed++ {
		r := (&machine.Runner{}).Run(build(), machine.NewRandom(seed))
		if r.Status == machine.Racy {
			racy++
		}
	}
	if racy == 0 {
		t.Fatal("unsynchronized counter never raced")
	}
}

func TestRecordedLockSatisfiesLockConsistent(t *testing.T) {
	// Three threads contend on a recorded lock; every execution's event
	// graph must satisfy LockConsistent (alternation, ownership, so from
	// each release to the next acquire).
	for seed := int64(1); seed <= 300; seed++ {
		var lk *lock.SpinLock
		var counter view.Loc
		prog := machine.Program{
			Setup: func(th *machine.Thread) {
				lk = lock.NewRecorded(th, "lk")
				counter = th.Alloc("counter", 0)
			},
			Workers: []func(*machine.Thread){
				increment(&lk, &counter, 2),
				increment(&lk, &counter, 2),
				increment(&lk, &counter, 2),
			},
		}
		r := (&machine.Runner{}).Run(prog, machine.NewRandomBiased(seed, 0.5))
		if r.Status != machine.OK {
			t.Fatalf("seed %d: %v (%v)", seed, r.Status, r.Err)
		}
		res := spec.CheckLock(lk.Recorder().Graph())
		if !res.OK() {
			t.Fatalf("seed %d: %v\n%s", seed, res.Violations, lk.Recorder().Graph())
		}
		if n := len(lk.Recorder().Graph().Events()); n != 12 {
			t.Fatalf("seed %d: %d lock events, want 12", seed, n)
		}
	}
}

func TestPetersonMutualExclusion(t *testing.T) {
	// Two contenders increment a non-atomic counter in their critical
	// sections: a mutual-exclusion failure shows up as a data race (the
	// detector is the judge), and the final count must be exact.
	build := func() machine.Program {
		var p *lock.Peterson
		var counter view.Loc
		body := func(who int) func(*machine.Thread) {
			return func(th *machine.Thread) {
				for i := 0; i < 2; i++ {
					p.Lock(th, who)
					v := th.Read(counter, memory.NA)
					th.Write(counter, v+1, memory.NA)
					p.Unlock(th, who)
				}
			}
		}
		return machine.Program{
			Setup: func(th *machine.Thread) {
				p = lock.NewPeterson(th, "pl")
				counter = th.Alloc("counter", 0)
			},
			Workers: []func(*machine.Thread){body(0), body(1)},
			Final: func(th *machine.Thread) {
				if v := th.Read(counter, memory.NA); v != 4 {
					th.Failf("counter = %d, want 4", v)
				}
			},
		}
	}
	ok, discarded := 0, 0
	for seed := int64(1); seed <= 600; seed++ {
		r := (&machine.Runner{Budget: 5000}).Run(build(), machine.NewRandomBiased(seed, 0.6))
		switch r.Status {
		case machine.OK:
			ok++
		case machine.Budget:
			discarded++ // unlucky spin; neither pass nor fail
		default:
			t.Fatalf("seed %d: %v (%v)", seed, r.Status, r.Err)
		}
	}
	if ok == 0 {
		t.Fatalf("no execution completed (%d discarded)", discarded)
	}
}

func TestPetersonBuggyNoFenceCaught(t *testing.T) {
	build := func() machine.Program {
		var p *lock.Peterson
		var counter view.Loc
		body := func(who int) func(*machine.Thread) {
			return func(th *machine.Thread) {
				p.Lock(th, who)
				v := th.Read(counter, memory.NA)
				th.Write(counter, v+1, memory.NA)
				p.Unlock(th, who)
			}
		}
		return machine.Program{
			Setup: func(th *machine.Thread) {
				p = lock.NewPetersonBuggyNoFence(th, "pl")
				counter = th.Alloc("counter", 0)
			},
			Workers: []func(*machine.Thread){body(0), body(1)},
		}
	}
	broken := 0
	for seed := int64(1); seed <= 1000; seed++ {
		r := (&machine.Runner{Budget: 5000}).Run(build(), machine.NewRandomBiased(seed, 0.7))
		if r.Status == machine.Racy {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("fence-less Peterson never violated mutual exclusion")
	}
	t.Logf("mutual exclusion broken in %d/1000 executions", broken)
}

func TestTryLock(t *testing.T) {
	prog := machine.Program{
		Workers: []func(*machine.Thread){func(th *machine.Thread) {
			lk := lock.New(th, "lk")
			if !lk.TryLock(th) {
				th.Failf("TryLock on a free lock failed")
			}
			if lk.TryLock(th) {
				th.Failf("TryLock on a held lock succeeded")
			}
			lk.Unlock(th)
			if !lk.TryLock(th) {
				th.Failf("TryLock after unlock failed")
			}
		}},
	}
	r := (&machine.Runner{}).Run(prog, machine.NewRandom(1))
	if r.Status != machine.OK {
		t.Fatalf("status = %v, err = %v", r.Status, r.Err)
	}
}
