// Package footprint extracts location-footprint certificates from
// concurrent programs by running a small family of recording executions
// (one deterministic schedule per worker-priority rotation) and
// classifying every setup-allocated location by its post-setup access
// pattern across all of them:
//
//   - exclusive: touched by exactly one thread after setup (thread-local
//     scratch state);
//   - read-only: never written after setup (configuration written once
//     during setup);
//   - shared: everything else (no claim; general simulation path).
//
// A certificate lets the machine skip race instrumentation on exclusive
// and read-only locations and answer their reads without scanning the
// write history or consulting the exploration strategy — provably without
// changing any execution's outcome (see internal/memory/footprint.go for
// the argument; the litmus package's equivalence test asserts bit-identical
// outcome histograms under exhaustive exploration with and without a
// certificate).
//
// Even a family of recorded schedules can under-approximate the program's
// behaviour (a branch on a read value may hide accesses), so certificates
// are not trusted: every fast path revalidates its claim and a violation
// aborts the execution as Failed. Extraction is best-effort static-ish
// analysis; enforcement makes it sound.
package footprint

import (
	"fmt"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// rotStrategy is the deterministic recording schedule: always advance the
// rot-th runnable thread (run-to-completion with a rotated priority) and
// always read the latest visible message, so spin-free programs terminate
// quickly. Rotating rot across recordings varies which threads get to run
// first — exactly the schedule dimension that decides which thread wins a
// CAS or finds a queue empty, and therefore which accesses exist at all.
type rotStrategy struct{ rot int }

func (s *rotStrategy) PickThread(runnable []int) int { return s.rot % len(runnable) }
func (s *rotStrategy) Choose(n int) int              { return n - 1 }

// Extract derives a footprint certificate from a small family of recorded
// executions of build's program: one deterministic run per worker, each
// with a different thread-priority rotation. Accessor sets and write
// counts are unioned across the recordings, so a location is only
// certified exclusive or read-only when every recorded schedule agrees —
// a single schedule routinely under-covers (the thread that wins a race
// in one schedule loses it in another), and under-coverage turns into
// spurious certificate aborts at verification time.
//
// It fails rather than guess when the recordings cannot support a
// certificate: the program has no workers (the setup/concurrent boundary
// is invisible in the trace), no worker ever performed a machine
// operation, a recording did not complete with status OK (spin-wait
// programs can livelock under run-to-completion priorities), or the
// recordings disagree about the setup phase (which seal-time validation
// assumes is schedule-independent).
func Extract(build func() machine.Program) (*memory.Footprint, error) {
	name := build().Name
	nw := len(build().Workers)
	if nw == 0 {
		return nil, fmt.Errorf("footprint %s: program has no workers; nothing to certify", name)
	}

	setupLocs := -1
	var setupMax []int64
	var setupNames []string
	var accessors []map[int]bool
	var writes []int
	allAtomic := true
	for rot := 0; rot < nw; rot++ {
		r := check.Options{}.Runner(true).Run(build(), &rotStrategy{rot: rot})
		if r.Status != machine.OK {
			return nil, fmt.Errorf("footprint %s: recording execution (rotation %d) ended %v: %v", name, rot, r.Status, r.Err)
		}
		boundary := -1
		for i, e := range r.Events {
			if e.Thread != 0 {
				boundary = i
				break
			}
		}
		if boundary < 0 {
			return nil, fmt.Errorf("footprint %s: recording shows no worker activity; the setup boundary is undetectable", name)
		}

		// Setup phase: count allocations and per-location write
		// timestamps. Setup is single-threaded and decision-free (its
		// reads see only its own writes), so the allocation order — and
		// therefore every location index below — must be identical in
		// every recording; the machine revalidates this at seal time.
		locs := 0
		var max []int64
		var names []string
		for _, e := range r.Events[:boundary] {
			switch e.Kind {
			case machine.StepAlloc:
				locs++
				max = append(max, 1)
				names = append(names, e.LocName)
			case machine.StepWrite, machine.StepFAA, machine.StepXchg:
				max[e.Loc]++
			case machine.StepCAS, machine.StepUpdate:
				if e.OK {
					max[e.Loc]++
				}
			}
		}
		if setupLocs < 0 {
			setupLocs = locs
			setupMax = max
			setupNames = names
			accessors = make([]map[int]bool, locs)
			writes = make([]int, locs)
		} else if locs != setupLocs {
			return nil, fmt.Errorf("footprint %s: setup allocated %d locations in one recording and %d in another; setup is not schedule-independent", name, setupLocs, locs)
		} else {
			for l, t := range max {
				if setupMax[l] != t {
					return nil, fmt.Errorf("footprint %s: setup history of loc %d differs between recordings (t=%d vs t=%d)", name, l, setupMax[l], t)
				}
			}
		}

		// Concurrent phase (worker bodies and the main thread's final
		// phase): union accessor sets and write counts per setup location
		// into the cross-recording summary. Any RMW counts as a write
		// even when it does not publish a message (a failed CAS still
		// takes the RMW path, which the machine validates as a write),
		// and so does Free.
		for _, e := range r.Events[boundary:] {
			switch e.Kind {
			case machine.StepAlloc:
				// A worker-phase allocation marks a dynamic data
				// structure: node initialization and payload reads are
				// non-atomic and — unlike accesses to setup locations —
				// which of them run is highly schedule-dependent (a
				// dequeue that finds the queue empty performs none). The
				// recorded family cannot support a whole-program
				// all-atomic claim for such programs, so refuse it rather
				// than risk a spurious certificate abort.
				allAtomic = false
				continue
			case machine.StepFence, machine.StepFenceSC:
				continue
			}
			// The all-atomic claim covers every post-setup access,
			// including worker-allocated locations (enforcement does not
			// consult the per-location table): one NA access anywhere
			// falsifies it.
			if (e.Kind == machine.StepRead && e.RMode == memory.NA) ||
				(e.Kind == machine.StepWrite && e.WMode == memory.NA) {
				allAtomic = false
			}
			if int(e.Loc) >= setupLocs {
				continue // worker-allocated; schedule-dependent index, never certified
			}
			if accessors[e.Loc] == nil {
				accessors[e.Loc] = map[int]bool{}
			}
			accessors[e.Loc][e.Thread] = true
			switch e.Kind {
			case machine.StepWrite, machine.StepCAS, machine.StepFAA, machine.StepXchg, machine.StepUpdate, machine.StepFree:
				writes[e.Loc]++
			}
		}
	}

	fp := &memory.Footprint{Name: name, SetupLocs: setupLocs, Locs: make([]memory.LocCert, setupLocs), AllAtomic: allAtomic}
	for l := 0; l < setupLocs; l++ {
		c := &fp.Locs[l]
		c.Name = setupNames[l]
		c.SetupMax = view.Time(setupMax[l])
		switch {
		case len(accessors[l]) == 0:
			// Never touched after setup in any recording: certifying it
			// read-only would risk a spurious abort for zero saved work.
			c.Class = memory.ClassShared
		case writes[l] == 0:
			c.Class = memory.ClassReadOnly
		case len(accessors[l]) == 1:
			c.Class = memory.ClassExclusive
			for tid := range accessors[l] {
				c.Owner = tid
			}
		default:
			c.Class = memory.ClassShared
		}
	}
	return fp, nil
}
