package runnerctor

import (
	"compass/internal/check"
	"compass/internal/litmus"
	"compass/internal/machine"
)

func callsDeprecatedExhaustive(build func() check.Checked) *check.Report {
	return check.Exhaustive("x", build, 100, 0) // want `call to deprecated check.Exhaustive`
}

func callsDeprecatedExhaustiveOpt(build func() check.Checked) *check.Report {
	return check.ExhaustiveOpt("x", build, check.Options{}) // want `call to deprecated check.ExhaustiveOpt`
}

func callsConsolidatedRun(build func() check.Checked) *check.Report {
	return check.Run("x", build, check.Options{Mode: check.ModeExhaustive}) // ok: consolidated entry point
}

func callsDeprecatedRunWorkers(t litmus.Test) *litmus.Result {
	return litmus.RunWorkers(t, 100, 2) // want `call to deprecated litmus.RunWorkers`
}

func callsConsolidatedLitmusRun(t litmus.Test) *litmus.Result {
	return litmus.Run(t, 100, litmus.WithWorkers(2)) // ok: consolidated entry point
}

func callsDeprecatedRunRandom(build func() machine.Program) int {
	return machine.RunRandom(build, 1, 0, 0, nil) // want `call to deprecated machine.RunRandom`
}
