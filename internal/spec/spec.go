// Package spec implements the COMPASS specification styles as executable
// consistency checkers over event graphs (§3 of the paper):
//
//   - LAT_hb (graph specs, §3.2): per-library consistency conditions over
//     the event graph — MATCHES, FIFO/LIFO, EMPDEQ/EMPPOP — stated against
//     the local-happens-before relation lhb, plus the view-transfer content
//     of the so relation (the LAT_so^abs / Cosmo part).
//   - LAT_hb^abs (abstract-state specs, §3.1): additionally, the total
//     commit order must interpret successful operations against the
//     sequential abstract state (a dequeue takes the head of vs at its
//     commit point).
//   - LAT_hb^hist (linearizable-history specs, §3.3): additionally there
//     must exist a total order to ⊇ lhb that is a valid *sequential*
//     history including the read-only operations (an empty pop happens
//     only when the stack is truly empty in to).
//   - SC (§2.2 reference point): the commit order itself must be a valid
//     sequential history including read-only operations.
//
// A proof in the paper says "every execution's graph satisfies C"; here
// the checkers evaluate C on every explored execution and report detailed
// violations.
package spec

import (
	"fmt"

	"compass/internal/core"
	"compass/internal/view"
)

// Level identifies a specification style, from weakest to strongest.
type Level uint8

const (
	// LevelHB is the LAT_hb graph-based style (§3.2): satisfiable by the
	// weakest implementations (e.g. the relaxed Herlihy-Wing queue).
	LevelHB Level = iota
	// LevelAbsHB is the LAT_hb^abs style (§3.1): abstract state must be
	// constructible at commit points.
	LevelAbsHB
	// LevelHist is the LAT_hb^hist style (§3.3): a linearization to ⊇ lhb
	// must exist that also validates read-only operations.
	LevelHist
	// LevelSC is the SC logical-atomicity spec (§2.2): the commit order
	// itself is a valid sequential history (empty dequeues happen only on
	// truly empty state at the commit point).
	LevelSC
)

func (l Level) String() string {
	switch l {
	case LevelHB:
		return "LAT_hb"
	case LevelAbsHB:
		return "LAT_hb^abs"
	case LevelHist:
		return "LAT_hb^hist"
	case LevelSC:
		return "SC"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Levels lists all levels from weakest to strongest.
var Levels = []Level{LevelHB, LevelAbsHB, LevelHist, LevelSC}

// Violation is one failed consistency condition.
type Violation struct {
	Rule   string // e.g. "QUEUE-FIFO"
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Result is the verdict of checking one graph at one level.
type Result struct {
	Level      Level
	Violations []Violation
	// Unknown is set when the checker could not decide (e.g. the
	// linearizability search exceeded its budget).
	Unknown bool
}

// OK reports whether the check passed definitively.
func (r Result) OK() bool { return len(r.Violations) == 0 && !r.Unknown }

func (r *Result) addf(rule, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// commitIndex returns a map from event ID to its position in the commit
// order.
func commitIndex(g *core.Graph) map[view.EventID]int {
	idx := make(map[view.EventID]int, len(g.CommitOrder))
	for i, id := range g.CommitOrder {
		idx[id] = i
	}
	return idx
}

// matchOf returns, for producer→consumer libraries (queues, stacks), the
// unique so-successor of each producer event and the unique so-predecessor
// of each consumer event; well-formedness of the shape is checked
// separately.
func matchOf(g *core.Graph) (prodToCons, consToProd map[view.EventID]view.EventID) {
	prodToCons = map[view.EventID]view.EventID{}
	consToProd = map[view.EventID]view.EventID{}
	for _, p := range g.So() {
		prodToCons[p[0]] = p[1]
		consToProd[p[1]] = p[0]
	}
	return
}

// checkSoImpliesLhbAndViews checks, for asymmetric so edges (e, d), the
// two facts every COMPASS spec exposes about a matched pair: the pair is
// in lhb (the consumer's logical view contains the producer), and the
// physical view released by the producer at its commit was acquired by the
// consumer (the LAT_so^abs / Cosmo view-transfer content, §2.3).
func checkSoImpliesLhbAndViews(g *core.Graph, res *Result) {
	for _, p := range g.So() {
		e, d := p[0], p[1]
		if e == d {
			continue // symmetric exchanger self-pairs are checked elsewhere
		}
		ev, dv := g.Event(e), g.Event(d)
		if ev.Kind == core.Exchange {
			continue // exchanger so is symmetric; handled by CheckExchanger
		}
		if !g.Lhb(e, d) {
			res.addf("SO-LHB", "%v matched with %v but not in its logical view", ev, dv)
		}
		if !ev.PhysView.Leq(dv.PhysView) {
			res.addf("SO-VIEW", "physical view of %v not transferred to %v", ev, dv)
		}
	}
}

// checkLogviewCommitClosed verifies the structural soundness invariant of
// the recorder: an event's logical view contains only events that
// committed strictly earlier, i.e. lhb ⊆ commit order. This is what makes
// the commit order a legitimate linearization candidate (logical
// atomicity).
func checkLogviewCommitClosed(g *core.Graph, res *Result) {
	idx := commitIndex(g)
	for _, d := range g.Events() {
		for _, e := range d.LogView.Events() {
			if !g.Owns(e) {
				continue // another library's event observed through the clock
			}
			ie, ok := idx[e]
			if !ok {
				res.addf("LHB-COMMITTED", "%v has uncommitted event e%d in its logical view", d, e)
				continue
			}
			if ie >= idx[d.ID] {
				res.addf("LHB-ORDER", "%v has e%d in its logical view but commits before it", d, e)
			}
		}
	}
}
