// Command workstealing exercises the Chase-Lev work-stealing deque — the
// library the paper names as future work for the COMPASS approach (§6) —
// under owner/thief contention, checking the deque consistency conditions
// on every execution. With -no-sc-fence the SC fences of Lê et al. are
// dropped and the harness finds the classic take/steal race: the last
// element is consumed twice (a DEQUE-UNIQ violation).
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	thieves := flag.Int("thieves", 2, "stealing threads")
	perOwner := flag.Int("ops", 4, "elements pushed by the owner")
	execs := flag.Int("n", 1000, "number of random executions")
	noFence := flag.Bool("no-sc-fence", false, "drop the SC fences (ablation: double-consume)")
	flag.Parse()

	factory := func(th *compass.Thread) *compass.WorkStealingDeque {
		return compass.NewWorkStealingDeque(th, "wsq", 64)
	}
	if *noFence {
		// The buggy variant is internal (ablation); reach it through the
		// harness workload with a dedicated factory.
		factory = buggyFactory
	}

	rep := compass.RunChecked("work-stealing",
		compass.DequeWorkStealingWorkload(factory, compass.LevelHB, *perOwner, *thieves, 3),
		compass.CheckOptions{Executions: *execs, StaleBias: 0.7})
	fmt.Println(rep)
	if !rep.Passed() {
		if *noFence {
			fmt.Println("\n(expected: without SC fences the take/steal race double-consumes an element)")
			return
		}
		os.Exit(1)
	}
	fmt.Println("\nChase-Lev deque consistency verified on every explored execution.")
}

// buggyFactory is wired through the internal ablation constructor.
var buggyFactory = func() compass.DequeFactory {
	return func(th *compass.Thread) *compass.WorkStealingDeque {
		return compass.NewWorkStealingDequeBuggyNoSCFence(th, "wsq", 64)
	}
}()
