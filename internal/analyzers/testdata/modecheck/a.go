// Package modecheck is the golden corpus for the modecheck analyzer.
package modecheck

import "compass/internal/memory"

func access(mode memory.Mode) {}

func pair(read, write memory.Mode) {}

const localMode = memory.Acq

func callSites(m memory.Mode) {
	access(2)                    // want `raw constant in memory.Mode position`
	access(memory.Mode(2))       // want `raw constant in memory.Mode position`
	access(memory.Rlx)           // ok: named constant
	access(localMode)            // ok: locally named constant
	access(m)                    // ok: variable, named upstream
	pair(memory.Acq, 3)          // want `raw constant in memory.Mode position`
	pair(memory.Acq, memory.Rel) // ok
}
