package spec

import (
	"testing"

	"compass/internal/core"
)

func TestDequeValid(t *testing.T) {
	// Owner pushes 1, 2; takes 2 (back); thief steals 1 (front); then
	// owner sees empty.
	b := core.NewGraphBuilder("d")
	e1 := b.Add(core.Push, 1, 0)
	e2 := b.Add(core.Push, 2, 0, e1)
	p := b.Add(core.Pop, 2, 0, e2)
	s := b.Add(core.Steal, 1, 0, e1)
	emp := b.Add(core.EmpPop, 0, 0, e1, e2, p, s)
	b.So(e2, p)
	b.So(e1, s)
	g := b.Graph()
	g.Event(e1).Thread = 1
	g.Event(e2).Thread = 1
	g.Event(p).Thread = 1
	g.Event(emp).Thread = 1
	g.Event(s).Thread = 2
	for _, lvl := range Levels {
		requireOK(t, CheckDeque(g, lvl))
	}
}

func TestDequeDoubleConsume(t *testing.T) {
	// The take/steal race: the same push consumed by both the owner's take
	// and a thief's steal.
	b := core.NewGraphBuilder("d")
	e := b.Add(core.Push, 1, 0)
	p := b.Add(core.Pop, 1, 0, e)
	s := b.Add(core.Steal, 1, 0, e)
	b.So(e, p)
	b.So(e, s)
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-UNIQ")
}

func TestDequeValueMismatch(t *testing.T) {
	b := core.NewGraphBuilder("d")
	e := b.Add(core.Push, 1, 0)
	s := b.Add(core.Steal, 99, 0, e)
	b.So(e, s)
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-MATCHES")
}

func TestDequeTwoOwnersRejected(t *testing.T) {
	b := core.NewGraphBuilder("d")
	e1 := b.Add(core.Push, 1, 0)
	e2 := b.Add(core.Push, 2, 0)
	b.Graph().Event(e1).Thread = 1
	b.Graph().Event(e2).Thread = 2
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-OWNER")
}

func TestDequeUnmatchedConsumer(t *testing.T) {
	b := core.NewGraphBuilder("d")
	b.Add(core.Steal, 1, 0)
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-MATCHED")
}

func TestDequeEmpViolation(t *testing.T) {
	// A push visible to the empty steal but never consumed.
	b := core.NewGraphBuilder("d")
	e := b.Add(core.Push, 1, 0)
	b.Add(core.EmpSteal, 0, 0, e)
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-EMP")
}

func TestDequeBadSoShape(t *testing.T) {
	b := core.NewGraphBuilder("d")
	e := b.Add(core.Push, 1, 0)
	s := b.Add(core.EmpSteal, 0, 0, e)
	b.So(e, s)
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-SO-SHAPE")
}

func TestDequeForeignKind(t *testing.T) {
	b := core.NewGraphBuilder("d")
	b.Add(core.Enq, 1, 0)
	requireRule(t, CheckDeque(b.Graph(), LevelHB), "DEQUE-KINDS")
}

func TestDequeAbsLevelOrdering(t *testing.T) {
	// Owner takes the front element via Pop (back semantics) — the commit
	// order cannot be interpreted by SeqDeque.
	b := core.NewGraphBuilder("d")
	e1 := b.Add(core.Push, 1, 0)
	e2 := b.Add(core.Push, 2, 0, e1)
	p := b.Add(core.Pop, 1, 0, e1, e2) // back is 2, not 1
	b.So(e1, p)
	requireOK(t, CheckDeque(b.Graph(), LevelHB))
	requireRule(t, CheckDeque(b.Graph(), LevelAbsHB), "ABS-STATE")
}

func TestSeqDequeSemantics(t *testing.T) {
	st := SeqDeque{}.Init()
	apply := func(k core.Kind, v int64, want bool) {
		t.Helper()
		next, ok := st.Apply(&core.Event{Kind: k, Val: v}, true)
		if ok != want {
			t.Fatalf("Apply(%v,%d) = %v, want %v (state %s)", k, v, ok, want, st.Key())
		}
		if ok {
			st = next
		}
	}
	apply(core.EmpSteal, 0, true)
	apply(core.Push, 1, true)
	apply(core.Push, 2, true)
	apply(core.Steal, 2, false) // steal takes the front
	apply(core.Steal, 1, true)
	apply(core.Pop, 2, true) // owner takes the back
	apply(core.EmpPop, 0, true)
}
