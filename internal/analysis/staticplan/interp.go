package staticplan

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"compass/internal/analyzers/lint"
	"compass/internal/memory"
)

// retSlot collects an inlined call's return values, merged positionally
// across return statements.
type retSlot struct{ vals []val }

// call interprets a call expression: type conversions, builtins,
// machine.Thread operations (the access sites the plan exists to
// record), and resolvable function/method calls (inlined). Anything
// else is an escape when location identity flows into it.
func (e *exec) call(fr *frame, ce *ast.CallExpr) val {
	if e.done() {
		return anyVal()
	}
	// Type conversion.
	if tv, ok := e.info().Types[ce.Fun]; ok && tv.IsType() {
		arg := anyVal()
		if len(ce.Args) == 1 {
			arg = e.eval(fr, ce.Args[0])
		}
		if isLocType(tv.Type) {
			if arg.kind == kLoc {
				return arg
			}
			if arg.kind == kConst {
				return topLoc("location built from a literal value")
			}
			return topLoc("location recovered from a memory-held value")
		}
		if arg.kind == kConst {
			return arg // numeric/string conversions keep constants foldable
		}
		return anyVal()
	}
	// Builtins.
	if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); ok {
		if _, ok := e.info().Uses[id].(*types.Builtin); ok {
			return e.builtin(fr, id.Name, ce)
		}
	}
	// Thread operations.
	if sel, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok {
		if recv := e.eval(fr, sel.X); recv.kind == kThread {
			return e.threadOp(fr, sel.Sel.Name, ce)
		}
	}
	// Resolvable function value (declaration, closure, or method value).
	fn := e.eval(fr, ce.Fun)
	if fn.kind == kFunc && fn.fn != nil {
		args := make([]val, len(ce.Args))
		for i, a := range ce.Args {
			args[i] = e.eval(fr, a)
		}
		return e.inline(fn.fn, args, ce)
	}
	// Unresolvable: evaluate arguments; location-carrying arguments (or
	// receivers) escape the tracked flow.
	if sel, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok {
		if recv := e.eval(fr, sel.X); hasLoc(recv, nil) {
			e.topf("call to unresolvable %s with location-carrying receiver", types.ExprString(ce.Fun))
		}
	}
	for _, a := range ce.Args {
		if hasLoc(e.eval(fr, a), nil) {
			e.topf("location passed to unresolvable call %s", types.ExprString(ce.Fun))
		}
	}
	if tv, ok := e.info().Types[ce]; ok && isLocType(tv.Type) {
		return topLoc(fmt.Sprintf("location returned by unresolvable call %s", types.ExprString(ce.Fun)))
	}
	return anyVal()
}

func (e *exec) builtin(fr *frame, name string, ce *ast.CallExpr) val {
	switch name {
	case "make", "new":
		if tv, ok := e.info().Types[ce]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			switch t.Underlying().(type) {
			case *types.Struct, *types.Slice, *types.Array:
				obj := &object{}
				if path, tn, ok := lint.NamedTypePath(t); ok {
					obj.typeKey = path + "." + tn
				}
				return val{kind: kObj, obj: obj}
			}
		}
		return anyVal()
	case "append":
		if len(ce.Args) == 0 {
			return anyVal()
		}
		base := e.eval(fr, ce.Args[0])
		for _, a := range ce.Args[1:] {
			v := e.eval(fr, a)
			if base.kind == kObj && base.obj != nil {
				e.mset(base.obj.cell(elemKey), v)
			} else if hasLoc(v, nil) {
				e.top("location appended to an untracked slice")
			}
		}
		return base
	case "copy":
		if len(ce.Args) == 2 {
			dst := e.eval(fr, ce.Args[0])
			src := e.eval(fr, ce.Args[1])
			if dst.kind == kObj && dst.obj != nil {
				if src.kind == kObj && src.obj != nil {
					e.mset(dst.obj.cell(elemKey), src.obj.cell(elemKey).v)
				} else if hasLoc(src, nil) {
					e.mset(dst.obj.cell(elemKey), topLoc("copy from untracked source"))
				}
			} else if hasLoc(src, nil) {
				e.top("location copied into an untracked slice")
			}
		}
		return anyVal()
	default:
		for _, a := range ce.Args {
			e.eval(fr, a)
		}
		return anyVal()
	}
}

// threadOp interprets one machine.Thread method call — the plan's unit
// of observation.
func (e *exec) threadOp(fr *frame, method string, ce *ast.CallExpr) val {
	arg := func(i int) val {
		if i < len(ce.Args) {
			return e.eval(fr, ce.Args[i])
		}
		return anyVal()
	}
	mode := func(i int) memory.ModeMask {
		v := arg(i)
		if v.kind == kConst && v.c != nil && v.c.Kind() == constant.Int {
			if m, ok := constant.Int64Val(v.c); ok && m >= 0 && m <= int64(memory.AcqRel) {
				return memory.ModeBit(memory.Mode(m))
			}
		}
		return allModes
	}
	// site records one access of the loc argument's may-set.
	site := func(l val, u memory.SiteUse, what string) {
		if e.sink == nil {
			return
		}
		switch {
		case l.kind == kLoc && l.top:
			e.topf("%s of unanalyzable location: %s", what, l.reason)
		case l.kind == kLoc:
			for n := range l.names {
				e.sink.AddSite(n, u)
			}
		default:
			e.topf("%s of location value the analysis lost track of", what)
		}
	}
	switch method {
	case "Alloc":
		n := arg(0)
		arg(1)
		if n.kind == kConst && n.c != nil && n.c.Kind() == constant.String {
			name := constant.StringVal(n.c)
			if e.sink != nil {
				e.sink.AddSite(name, memory.SiteUse{Kinds: memory.PlanAlloc})
			}
			return locVal(name)
		}
		e.top("allocation name is not statically derivable")
		return topLoc("allocation name is not statically derivable")
	case "Read":
		site(arg(0), memory.SiteUse{Kinds: memory.PlanRead, ReadModes: mode(1)}, "read")
		return anyVal()
	case "Write":
		arg(1)
		site(arg(0), memory.SiteUse{Kinds: memory.PlanWrite, WriteModes: mode(2)}, "write")
		return anyVal()
	case "Free":
		site(arg(0), memory.SiteUse{Kinds: memory.PlanFree}, "free")
		return anyVal()
	case "CAS":
		arg(1)
		arg(2)
		site(arg(0), memory.SiteUse{Kinds: memory.PlanRead | memory.PlanWrite, ReadModes: mode(3), WriteModes: mode(4)}, "CAS")
		return anyVal()
	case "FetchAdd", "Exchange", "Update":
		arg(1)
		site(arg(0), memory.SiteUse{Kinds: memory.PlanRead | memory.PlanWrite, ReadModes: mode(2), WriteModes: mode(3)}, strings.ToLower(method))
		return anyVal()
	case "Fence", "FenceSC", "Yield", "Report", "Failf", "ID", "TV", "Mem":
		for _, a := range ce.Args {
			e.eval(fr, a)
		}
		return anyVal()
	}
	e.topf("unknown Thread method %s", method)
	return anyVal()
}

// inline interprets a resolved callee with bound arguments. ce is the
// call site, for diagnostics.
func (e *exec) inline(fv *funcVal, args []val, ce *ast.CallExpr) val {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	var pkg *pkgInfo
	var key ast.Node
	if fv.lit != nil {
		body, ftype, pkg, key = fv.lit.Body, fv.lit.Type, fv.pkg, fv.lit
	} else if fv.decl != nil {
		body, ftype, pkg, key = fv.decl.decl.Body, fv.decl.decl.Type, fv.decl.pkg, fv.decl.decl
	}
	if body == nil || pkg == nil {
		return anyVal()
	}
	escape := func(why string) val {
		if hasLoc(fv.recv, nil) {
			e.top(why)
		}
		for _, a := range args {
			if hasLoc(a, nil) {
				e.top(why)
				break
			}
		}
		if tv, ok := e.info().Types[ce]; ok && isLocType(tv.Type) {
			return topLoc(why)
		}
		return anyVal()
	}
	if e.depth >= maxInlineDepth {
		return escape(fmt.Sprintf("call depth limit at %s", types.ExprString(ce.Fun)))
	}
	if e.active[key] {
		return escape(fmt.Sprintf("recursive call at %s", types.ExprString(ce.Fun)))
	}

	// The callee's frame: closures see their captured scope, declarations
	// start fresh (package-level state is untracked by design).
	var parent *frame
	if fv.lit != nil {
		parent = fv.fr
	}
	fr := newFrame(parent)

	// Bind the receiver.
	if fv.decl != nil && fv.decl.decl.Recv != nil && len(fv.decl.decl.Recv.List) > 0 {
		f := fv.decl.decl.Recv.List[0]
		if len(f.Names) == 1 && f.Names[0].Name != "_" {
			if obj := pkg.info.Defs[f.Names[0]]; obj != nil {
				e.mset(fr.define(obj), fv.recv)
			}
		}
	}
	// Bind parameters positionally; a variadic tail merges into one
	// element cell.
	i := 0
	params := ftype.Params.List
	for pi, f := range params {
		variadic := pi == len(params)-1 && isEllipsis(f.Type)
		for _, name := range f.Names {
			var v val
			switch {
			case variadic:
				obj := &object{}
				for ; i < len(args); i++ {
					e.mset(obj.cell(elemKey), args[i])
				}
				v = val{kind: kObj, obj: obj}
			case i < len(args):
				v = args[i]
				i++
			default:
				v = anyVal()
			}
			if isThreadParam(pkg.info, name) && v.kind == kAny {
				v = val{kind: kThread}
			}
			if name.Name == "_" {
				continue
			}
			if obj := pkg.info.Defs[name]; obj != nil {
				e.mset(fr.define(obj), v)
			}
		}
		if len(f.Names) == 0 && !variadic && i < len(args) {
			i++ // unnamed parameter consumes its argument
		}
	}

	// Interpret the body with the callee's package in scope.
	savedPkg, savedRet := e.pkg, e.ret
	e.pkg, e.ret = pkg, &retSlot{}
	if e.active == nil {
		e.active = map[ast.Node]bool{}
	}
	e.active[key] = true
	e.depth++
	e.stmt(fr, body)
	e.depth--
	delete(e.active, key)
	ret := e.ret
	e.pkg, e.ret = savedPkg, savedRet

	if len(ret.vals) > 0 {
		return ret.vals[0]
	}
	if tv, ok := e.info().Types[ce]; ok && isLocType(tv.Type) {
		return topLoc("call returned no tracked location")
	}
	return anyVal()
}

func isEllipsis(t ast.Expr) bool {
	_, ok := t.(*ast.Ellipsis)
	return ok
}

func isThreadParam(info *types.Info, name *ast.Ident) bool {
	obj := info.Defs[name]
	return obj != nil && isThreadType(obj.Type())
}

// invokeThreadBody runs a closure value as one machine thread's body,
// recording accesses into sink. A non-function value yields ⊤.
func (e *exec) invokeThreadBody(fn val, sink *memory.ThreadPlan, what string) {
	saved := e.sink
	e.sink = sink
	if fn.kind != kFunc || fn.fn == nil {
		if sink != nil {
			sink.Top = true
			sink.TopReason = fmt.Sprintf("%s is not a statically resolvable function", what)
		}
		e.sink = saved
		return
	}
	fakeCall := &ast.CallExpr{Fun: &ast.Ident{Name: what}}
	e.inline(fn.fn, []val{{kind: kThread}}, fakeCall)
	e.sink = saved
}

// PlanBuild interprets a Build-style niladic function declared in pkg —
// its body must return a machine.Program composite literal — and
// extracts the program's access plan. program names the plan (litmus
// programs are anonymous; the suite entry name identifies them).
func (in *Interp) PlanBuild(pkg *pkgInfo, build *ast.FuncLit, program string) *memory.Plan {
	e := &exec{in: in, pkg: pkg, active: map[ast.Node]bool{}}
	fr := newFrame(nil)

	lit, fr2 := e.findProgramLit(fr, build.Body)
	if lit == nil {
		return topPlan(program, "program is not built as a machine.Program literal")
	}
	return e.planProgramLit(fr2, lit, program)
}

// findProgramLit interprets statements until a return of a
// machine.Program composite literal, which it hands back with the frame
// in effect at that point.
func (e *exec) findProgramLit(fr *frame, body *ast.BlockStmt) (*ast.CompositeLit, *frame) {
	for _, s := range body.List {
		if ret, ok := s.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if cl, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit); ok {
				if tv, ok := e.info().Types[cl]; ok {
					if path, name, ok := lint.NamedTypePath(tv.Type); ok &&
						name == "Program" && strings.HasSuffix(path, "internal/machine") {
						return cl, fr
					}
				}
			}
			return nil, fr
		}
		e.stmt(fr, s)
	}
	return nil, fr
}

// planProgramLit analyzes one machine.Program composite literal: Setup
// binds (accesses predate concurrency and are not recorded), each
// Workers element becomes plan thread i+1, Final becomes plan thread 0.
func (e *exec) planProgramLit(fr *frame, lit *ast.CompositeLit, program string) *memory.Plan {
	var setup, final ast.Expr
	var workerExprs []ast.Expr
	workersSplit := true
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Setup":
			setup = kv.Value
		case "Final":
			final = kv.Value
		case "Workers":
			if wl, ok := ast.Unparen(kv.Value).(*ast.CompositeLit); ok {
				workerExprs = wl.Elts
			} else {
				workersSplit = false
			}
		}
	}
	if !workersSplit {
		return topPlan(program, "worker list is not a slice literal; threads cannot be separated")
	}

	plan := &memory.Plan{Program: program, Threads: make([]memory.ThreadPlan, len(workerExprs)+1)}

	// Setup first: its assignments bind the shared location variables the
	// worker closures capture.
	if setup != nil {
		e.invokeThreadBody(e.eval(fr, setup), nil, "Setup")
	}
	for i, w := range workerExprs {
		e.invokeThreadBody(e.eval(fr, w), &plan.Threads[i+1], fmt.Sprintf("worker %d", i))
	}
	if final != nil {
		e.invokeThreadBody(e.eval(fr, final), &plan.Threads[0], "Final")
	}
	return plan
}

// topPlan is the all-⊤ plan: one ⊤ thread entry; every other thread
// index resolves out of range, which consumers also treat as ⊤.
func topPlan(program, reason string) *memory.Plan {
	return &memory.Plan{Program: program, Threads: []memory.ThreadPlan{{Top: true, TopReason: reason}}}
}
