package memory

import (
	"fmt"
	"sort"
	"strings"
)

// This file defines static access plans: per-thread may-sets of
// (allocation-site name, access kind, mode) extracted ahead of time from a
// program's Go source by internal/analysis/staticplan. A plan is the
// static dual of a dynamic footprint certificate — instead of recording
// what one schedule did, it over-approximates what every schedule can do.
//
// Two consumers rely on the over-approximation in opposite directions:
//
//   - The certificate gate (internal/analysis/footprint.Gate) refuses a
//     dynamic certificate whose claims a statically-reachable access could
//     violate. Because the plan is a may-set, every access any execution
//     performs is covered by some plan site (or the thread is ⊤), so a
//     certificate the gate admits can only abort on genuinely
//     plan-invisible behaviour — and a ⊤ thread vetoes certification
//     outright rather than being guessed about.
//
//   - The POR oracle (PlanOracle) answers "can thread t ever touch this
//     site conflictingly?" with "no" only when the plan has a non-⊤
//     may-set for t that excludes the site or the conflicting kind.
//     Exploration soundness needs exactly that direction: a false "no"
//     could prune a reachable interleaving, so ⊤ and out-of-range threads
//     always answer "yes".
//
// Sites are identified by allocation name, not location index: location
// indices are schedule-dependent for worker-phase allocations, while the
// name is the static identity of the Alloc call site. Distinct names never
// alias (each location carries exactly one name for its lifetime); one
// name may cover several locations (a slice of slots allocated in a loop),
// which only coarsens the may-set.

// PlanKind is a bitmask of access kinds a plan site may perform. RMWs
// contribute both PlanRead and PlanWrite.
type PlanKind uint8

const (
	PlanRead PlanKind = 1 << iota
	PlanWrite
	PlanFree
	// PlanAlloc marks sites the thread itself may allocate (worker-phase
	// allocations). It never matches a conflict query — a fresh location
	// cannot be anyone's pending location — but the certificate gate uses
	// it: a worker-phase allocation falsifies an all-atomic claim the same
	// way the dynamic extractor's recording does.
	PlanAlloc
)

func (k PlanKind) String() string {
	var parts []string
	if k&PlanRead != 0 {
		parts = append(parts, "r")
	}
	if k&PlanWrite != 0 {
		parts = append(parts, "w")
	}
	if k&PlanFree != 0 {
		parts = append(parts, "f")
	}
	if k&PlanAlloc != 0 {
		parts = append(parts, "a")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "")
}

// ModeMask is a bitmask over Mode values: bit i set means Mode(i) may be
// used at the site.
type ModeMask uint8

// ModeBit returns the mask bit for one mode.
func ModeBit(m Mode) ModeMask { return 1 << m }

// Has reports whether the mask includes the mode.
func (mm ModeMask) Has(m Mode) bool { return mm&ModeBit(m) != 0 }

func (mm ModeMask) String() string {
	var parts []string
	for m := NA; m <= AcqRel; m++ {
		if mm.Has(m) {
			parts = append(parts, m.String())
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// SiteUse summarizes how one thread may access one allocation site.
type SiteUse struct {
	Kinds PlanKind `json:"kinds"`
	// ReadModes are the modes the site may be loaded with (including the
	// read side of RMWs); WriteModes the store side. Free carries no mode.
	ReadModes  ModeMask `json:"read_modes,omitempty"`
	WriteModes ModeMask `json:"write_modes,omitempty"`
}

// merge unions another use into the receiver.
func (u SiteUse) merge(v SiteUse) SiteUse {
	return SiteUse{
		Kinds:      u.Kinds | v.Kinds,
		ReadModes:  u.ReadModes | v.ReadModes,
		WriteModes: u.WriteModes | v.WriteModes,
	}
}

// ThreadPlan is the may-set for one machine thread. Thread 0 covers only
// the main thread's *final* phase — setup runs before any concurrency
// exists, so its accesses can neither race nor need reversal, and
// including them would make every setup-initialized site look contended
// for the whole run. Worker i is thread i+1, matching the machine's
// numbering.
type ThreadPlan struct {
	// Top marks the thread unanalyzable: a view.Loc escaped the tracked
	// dataflow (stored in an untracked structure, passed through an
	// interface, ...). A ⊤ thread may touch anything; TopReason says why,
	// for diagnostics and the loctrack pass.
	Top       bool   `json:"top,omitempty"`
	TopReason string `json:"top_reason,omitempty"`
	// Sites maps allocation-site name → may-use.
	Sites map[string]SiteUse `json:"sites,omitempty"`
}

// MayTouch reports whether the thread may access the named site with any
// of the given kinds. ⊤ threads may touch anything.
func (tp *ThreadPlan) MayTouch(name string, kinds PlanKind) bool {
	if tp == nil || tp.Top {
		return true
	}
	return tp.Sites[name].Kinds&kinds != 0
}

// UsesNA reports whether any site may be accessed non-atomically (⊤
// threads conservatively may). The map scan is an existential query;
// visit order cannot change the answer.
//
//compass:orderinsensitive
func (tp *ThreadPlan) UsesNA() bool {
	if tp == nil || tp.Top {
		return true
	}
	for _, u := range tp.Sites {
		if u.ReadModes.Has(NA) || u.WriteModes.Has(NA) {
			return true
		}
	}
	return false
}

// Allocates reports whether the thread may allocate locations itself (⊤
// threads conservatively may). The map scan is an existential query;
// visit order cannot change the answer.
//
//compass:orderinsensitive
func (tp *ThreadPlan) Allocates() bool {
	if tp == nil || tp.Top {
		return true
	}
	for _, u := range tp.Sites {
		if u.Kinds&PlanAlloc != 0 {
			return true
		}
	}
	return false
}

// AddSite unions a use into the thread's may-set.
func (tp *ThreadPlan) AddSite(name string, u SiteUse) {
	if tp.Sites == nil {
		tp.Sites = map[string]SiteUse{}
	}
	tp.Sites[name] = tp.Sites[name].merge(u)
}

// Plan is a whole-program static access plan.
type Plan struct {
	// Program is the program name the plan was extracted for; consumers
	// must not apply a plan to a differently-named program.
	Program string       `json:"program"`
	Threads []ThreadPlan `json:"threads"`
}

// Thread returns the plan for machine thread t, or nil (treated as ⊤)
// when t is out of range.
func (p *Plan) Thread(t int) *ThreadPlan {
	if p == nil || t < 0 || t >= len(p.Threads) {
		return nil
	}
	return &p.Threads[t]
}

// MayTouch reports whether thread t may access the named site with any of
// the given kinds; out-of-range and ⊤ threads may.
func (p *Plan) MayTouch(t int, name string, kinds PlanKind) bool {
	return p.Thread(t).MayTouch(name, kinds)
}

// SiteCount returns the total number of (thread, site) entries, the
// granularity the plan_sites telemetry counter reports.
func (p *Plan) SiteCount() int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.Threads {
		n += len(p.Threads[i].Sites)
	}
	return n
}

// String renders the plan compactly for logs. Site names are collected
// and sorted before printing, so map visit order never reaches the
// output.
//
//compass:orderinsensitive
func (p *Plan) String() string {
	if p == nil {
		return "plan(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan(%s:", p.Program)
	for t := range p.Threads {
		tp := &p.Threads[t]
		fmt.Fprintf(&b, " T%d{", t)
		if tp.Top {
			b.WriteString("⊤")
			if tp.TopReason != "" {
				fmt.Fprintf(&b, ": %s", tp.TopReason)
			}
		} else {
			names := make([]string, 0, len(tp.Sites))
			for n := range tp.Sites {
				names = append(names, n)
			}
			sort.Strings(names)
			for i, n := range names {
				if i > 0 {
					b.WriteString(" ")
				}
				u := tp.Sites[n]
				fmt.Fprintf(&b, "%s:%s", n, u.Kinds)
			}
		}
		b.WriteString("}")
	}
	b.WriteString(")")
	return b.String()
}

// PlanOracle binds a plan to a live Memory so conflict queries over
// pending concrete accesses can resolve locations to their allocation
// names. Source-DPOR consults it before waking sleepers (Refutes) and
// before inserting backtrack points (MayConflict, via the machine's
// invisible-step forcing).
type PlanOracle struct {
	plan *Plan
	mem  *Memory
}

// NewPlanOracle returns an oracle over plan and m; nil plan yields a nil
// oracle (callers treat nil as "no static knowledge").
func NewPlanOracle(plan *Plan, m *Memory) *PlanOracle {
	if plan == nil {
		return nil
	}
	return &PlanOracle{plan: plan, mem: m}
}

// SiteCount reports the bound plan's size for telemetry.
func (o *PlanOracle) SiteCount() int { return o.plan.SiteCount() }

// MayConflict reports whether thread t's plan admits any access that
// conflicts with the pending concrete access op (announced by a different
// thread). Answering false requires a non-⊤ may-set for t whose entry for
// op's site excludes every conflicting kind:
//
//   - a pending read conflicts only with writes and frees of its site;
//   - a pending write or RMW conflicts with reads, writes, and frees;
//   - a pending free conflicts with any access of the site.
//
// Every other pending kind (fences, allocations, reports, unannounced
// steps) conservatively answers true: the plan tracks locations, and those
// operations' effects are not per-location.
func (o *PlanOracle) MayConflict(t int, op Access) bool {
	if o == nil {
		return true
	}
	var kinds PlanKind
	switch op.Kind {
	case AccRead:
		kinds = PlanWrite | PlanFree
	case AccWrite, AccRMW:
		kinds = PlanRead | PlanWrite | PlanFree
	case AccFree:
		kinds = PlanRead | PlanWrite | PlanFree
	default:
		return true
	}
	return o.plan.MayTouch(t, o.mem.Name(op.Loc), kinds)
}

// Refutes reports whether a Conflicting(a, b) verdict of true is provably
// spurious for the two pending accesses — the conservative dynamic oracle
// treats allocations and frees as dependent with everything, but:
//
//   - an allocation's fresh location cannot be the already-allocated
//     location of a pending read/write/RMW/free (location IDs are
//     assigned in order, and neither side reads the allocation counter
//     the way the other writes it), so the pair commutes;
//   - two frees, or a free against a read/write/RMW, commute whenever
//     their concrete locations differ (a free touches only its own
//     location's freed flag).
//
// Fences are never refuted: SC fences order through the global SC clock
// and the announcement does not distinguish SC from thread-local fences.
// Refutation is only consulted when a plan is installed, so plan-off
// exploration is bit-identical to the pre-plan explorer.
func (o *PlanOracle) Refutes(a, b Access) bool {
	if o == nil {
		return false
	}
	if a.Kind == AccFence || b.Kind == AccFence {
		return false
	}
	concrete := func(k AccessKind) bool {
		return k == AccRead || k == AccWrite || k == AccRMW || k == AccFree
	}
	if a.Kind == AccAlloc {
		return concrete(b.Kind)
	}
	if b.Kind == AccAlloc {
		return concrete(a.Kind)
	}
	if (a.Kind == AccFree || b.Kind == AccFree) && concrete(a.Kind) && concrete(b.Kind) {
		return a.Loc != b.Loc
	}
	return false
}
