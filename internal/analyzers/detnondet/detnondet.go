// Package detnondet forbids nondeterminism sources inside the simulator
// core (internal/{machine,memory,view,core}). Executions must be pure
// functions of the strategy's decision sequence — that is what makes
// replay, golden traces, shrinking, and prefix-partitioned parallel
// exploration sound — so the core may not read wall clocks, draw from
// the global math/rand stream, iterate maps in observable order, or
// spawn goroutines outside the lockstep scheduler.
package detnondet

import (
	"go/ast"
	"go/types"

	"compass/internal/analyzers/lint"
)

// Analyzer is the detnondet pass.
var Analyzer = &lint.Analyzer{
	Name: "detnondet",
	Doc: `forbid nondeterminism sources in the simulator core

Inside internal/{machine,memory,view,core}, executions must be
deterministic functions of strategy decisions. Forbidden: time.Now/
Since/Until (wall clock), package-level math/rand functions (process-
global stream; seeded *rand.Rand via rand.New(rand.NewSource(seed)) is
fine), iteration over maps unless the enclosing function is marked
//compass:orderinsensitive, and go statements unless the enclosing
function is marked //compass:scheduler.`,
	Run: run,
}

// clockFuncs are the wall-clock reads in package time.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededCtors are the math/rand entry points that build an explicitly
// seeded generator and are therefore deterministic.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, file, n)
			case *ast.GoStmt:
				if !lint.FuncDirective(file, n.Pos(), "scheduler") {
					pass.Reportf(n.Pos(), "goroutine spawned outside the scheduler; all concurrency in the core must go through the lockstep scheduler (mark the scheduler itself //compass:scheduler)")
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	obj := lint.PkgFunc(pass.TypesInfo, call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Signature().Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch lint.ObjPkgPath(obj) {
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "call to time.%s: wall-clock reads make executions irreproducible; derive timing from step counts", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededCtors[fn.Name()] {
			pass.Reportf(call.Pos(), "call to global math/rand %s: the process-global stream breaks replay; use a seeded *rand.Rand owned by the strategy", fn.Name())
		}
	}
}

func checkRange(pass *lint.Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if lint.FuncDirective(file, rs.Pos(), "orderinsensitive") {
		return
	}
	pass.Reportf(rs.Pos(), "iteration over map: order is nondeterministic; sort the keys or mark the function //compass:orderinsensitive after checking no decision depends on visit order")
}
