package spec

import (
	"compass/internal/core"
)

// CheckQueueSoAbs checks only the LAT_so^abs (Cosmo-style, §2.3) fragment
// of the queue spec: well-formedness, the view transfer along matched
// so pairs, and constructibility of the abstract state at commit points —
// but deliberately *not* the graph-based conditions (QUEUE-FIFO against
// lhb, QUEUE-EMPDEQ). This is the executable rendering of the paper's
// observation that Cosmo's specs expose only the internal synchronization
// of matched pairs: behaviours that the LAT_hb^abs style excludes through
// lhb — such as the Fig. 1 empty dequeue after external synchronization —
// are *consistent* under LAT_so^abs (see the F1b experiment).
func CheckQueueSoAbs(g *core.Graph) Result {
	res := Result{Level: LevelAbsHB}
	checkQueueWellFormed(g, &res)
	// View transfer along so (the Cosmo content), without the lhb half.
	for _, p := range g.So() {
		e, d := g.Event(p[0]), g.Event(p[1])
		if !e.PhysView.Leq(d.PhysView) {
			res.addf("SO-VIEW", "physical view of %v not transferred to %v", e, d)
		}
	}
	// Abstract state constructible at commits; empty dequeues say nothing
	// ("the LAT_so^abs specs do not give us any new facts about vs").
	ReplayCommitOrder(g, SeqQueue{}, false, &res)
	return res
}

// CheckQueueSPSC checks the derived single-producer single-consumer queue
// spec of §3.2: because one thread performs all enqueues and one thread
// all dequeues, lhb totally orders each side, and QUEUE-FIFO strengthens
// to exact order correspondence — the i-th successful dequeue consumes the
// i-th enqueue. The base LAT_hb conditions are checked as well.
func CheckQueueSPSC(g *core.Graph) Result {
	res := CheckQueue(g, LevelHB)
	var enqs, deqs []*core.Event
	prodThread, consThread := -1, -1
	for _, e := range g.Events() {
		switch e.Kind {
		case core.Enq:
			enqs = append(enqs, e)
			if prodThread == -1 {
				prodThread = e.Thread
			} else if e.Thread != prodThread {
				res.addf("SPSC-SINGLE-PRODUCER", "enqueues from threads %d and %d", prodThread, e.Thread)
				return res
			}
		case core.Deq, core.EmpDeq:
			if e.Kind == core.Deq {
				deqs = append(deqs, e)
			}
			if consThread == -1 {
				consThread = e.Thread
			} else if e.Thread != consThread {
				res.addf("SPSC-SINGLE-CONSUMER", "dequeues from threads %d and %d", consThread, e.Thread)
				return res
			}
		}
	}
	_, consToProd := matchOf(g)
	for i, d := range deqs {
		if i >= len(enqs) {
			res.addf("SPSC-ORDER", "more successful dequeues than enqueues")
			break
		}
		e, ok := consToProd[d.ID]
		if !ok {
			continue // flagged by QUEUE-MATCHED already
		}
		if e != enqs[i].ID {
			res.addf("SPSC-ORDER",
				"dequeue #%d (%v) consumed %v, want the #%d enqueue %v",
				i, d, g.Event(e), i, enqs[i])
		}
	}
	return res
}
