// Package exchanger implements the elimination exchanger of Scherer, Lea
// and Scott [63] on the simulated ORC11 memory, with the helping structure
// the paper's exchanger spec captures (§4.2, Fig. 5):
//
// A thread installs an offer (a node with its value) into the slot with a
// release CAS and waits for a partner. A partner claims the offer with an
// acquire CAS — the commit point of BOTH exchanges: the claimer is the
// *helper*, and it commits the offeror's (*helpee's*) event immediately
// followed by its own, so a matched pair is atomic in the commit order and
// no other operation can observe the intermediate state. The helper then
// release-writes its value into the offer's response cell, which hands the
// offeror its result and — through the clock carried by the release — the
// logical view containing both events (the paper's local postcondition
// SeenExchanges(x, G”, M')).
//
// A timed-out offeror retracts its offer with a CAS; if the retraction
// fails, a partner has already claimed the offer and the response is
// guaranteed to arrive. Exchanges that never match commit a failed event
// Exchange(v, ⊥).
package exchanger

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// MatchFunc is invoked by the helper immediately after it commits a
// matched pair — still atomically with the pair's commits (no machine step
// occurs before the callback runs). The elimination stack uses it to
// commit its own push/pop pair at the same point (§4.1).
type MatchFunc func(th *machine.Thread, helpee, helper view.EventID, helpeeVal, helperVal int64)

// exNode is one offer: an immutable value and event-ID cell (published by
// the offer's release CAS) plus an atomic response cell (0 = no response).
type exNode struct {
	val  view.Loc
	eid  view.Loc
	resp view.Loc
}

// Exchanger is a single-slot exchanger object.
type Exchanger struct {
	slot  view.Loc
	nodes []exNode
	rec   *core.Recorder

	offerMode memory.Mode // write mode of the offer CAS (Rel; buggy: Rlx)
	respMode  memory.Mode // write mode of the response (Rel; buggy: Rlx)

	// WaitSpins bounds how long an offeror waits for a partner before
	// retracting (default 6).
	WaitSpins int
}

// New allocates an exchanger with the paper's access modes.
func New(th *machine.Thread, name string) *Exchanger {
	return newEx(th, name, memory.Rel, memory.Rel)
}

// NewBuggyRelaxedOffer is the ablation variant whose offer CAS is relaxed:
// the claimer races on the offer's value cell.
func NewBuggyRelaxedOffer(th *machine.Thread, name string) *Exchanger {
	return newEx(th, name, memory.Rlx, memory.Rel)
}

// NewBuggyRelaxedResponse is the ablation variant whose response write is
// relaxed: the offeror gets its partner's value without synchronizing with
// the partner, breaking resource transfer (the §4.2 derived spec).
func NewBuggyRelaxedResponse(th *machine.Thread, name string) *Exchanger {
	return newEx(th, name, memory.Rel, memory.Rlx)
}

func newEx(th *machine.Thread, name string, offerMode, respMode memory.Mode) *Exchanger {
	return &Exchanger{
		slot:      th.Alloc(name+".slot", 0),
		rec:       core.NewRecorder(name),
		offerMode: offerMode,
		respMode:  respMode,
		WaitSpins: 6,
	}
}

// Recorder exposes the exchanger's event graph recorder.
func (x *Exchanger) Recorder() *core.Recorder { return x.rec }

func (x *Exchanger) alloc(th *machine.Thread, v, eid int64) int64 {
	n := exNode{
		val:  th.Alloc("ex.val", v),
		eid:  th.Alloc("ex.eid", eid),
		resp: th.Alloc("ex.resp", 0),
	}
	x.nodes = append(x.nodes, n)
	return int64(len(x.nodes))
}

// Exchange offers v (which must be nonzero and not ⊥) for up to
// patience+1 attempts. It returns the partner's value on success, or
// core.ExFail (⊥) if no partner was found.
func (x *Exchanger) Exchange(th *machine.Thread, v int64, patience int) int64 {
	return x.ExchangeMatch(th, v, patience, nil)
}

// ExchangeMatch is Exchange with a helper-side match callback (see
// MatchFunc).
//
//compass:loctrack-top offer node selected by a memory-held offer handle
func (x *Exchanger) ExchangeMatch(th *machine.Thread, v int64, patience int, onMatch MatchFunc) int64 {
	if v == 0 || v == core.ExFail {
		th.Failf("exchanger: reserved value %d offered", v)
	}
	id := x.rec.Begin(th, core.Exchange, v)
	for attempt := 0; attempt <= patience; attempt++ {
		s := th.Read(x.slot, memory.Acq)
		if s == 0 {
			n := x.alloc(th, v, int64(id))
			if _, ok := th.CAS(x.slot, 0, n, memory.Rlx, x.offerMode); !ok {
				th.Yield() // lost the installation race
				continue
			}
			if r, ok := x.awaitResponse(th, n, x.WaitSpins); ok {
				return r
			}
			// Timed out: retract. Failure means a partner claimed the
			// offer concurrently; its response is then guaranteed.
			if _, ok := th.CAS(x.slot, n, 0, memory.Rlx, memory.Rlx); !ok {
				r, _ := x.awaitResponse(th, n, -1)
				return r
			}
			continue
		}
		// An offer is present: try to claim it.
		if _, ok := th.CAS(x.slot, s, 0, memory.Acq, memory.Rlx); ok {
			other := x.nodes[s-1]
			theirVal := th.Read(other.val, memory.NA)
			theirEid := view.EventID(th.Read(other.eid, memory.NA))
			// Helper: commit the helpee's event, then our own —
			// atomically (no machine step in between).
			x.rec.CommitForeign(th, theirEid, v)
			x.rec.Commit(th, id)
			x.rec.SetVal2(id, theirVal)
			x.rec.AddSo(theirEid, id)
			x.rec.AddSo(id, theirEid)
			if onMatch != nil {
				onMatch(th, theirEid, id, theirVal, v)
			}
			th.Write(other.resp, v, x.respMode)
			return theirVal
		}
		th.Yield()
	}
	x.rec.Commit(th, id) // failed exchange: Exchange(v, ⊥)
	return core.ExFail
}

// awaitResponse polls the offer's response cell. spins < 0 waits
// indefinitely (bounded by the machine's step budget).
//
//compass:loctrack-top offer node selected by a memory-held offer handle
func (x *Exchanger) awaitResponse(th *machine.Thread, n int64, spins int) (int64, bool) {
	node := x.nodes[n-1]
	for i := 0; spins < 0 || i < spins; i++ {
		if r := th.Read(node.resp, memory.Acq); r != 0 {
			return r, true
		}
		th.Yield()
	}
	return 0, false
}
