package queue

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// HWQueue is the (weak) Herlihy–Wing array queue [34], in the relaxed
// variant the paper verifies against the LAT_hb queue specs (§3.1–§3.2):
// "enqueues use release operations, and dequeues use acquire ones", and
// lhb is ensured only between matching enqueue-dequeue pairs. The abstract
// state is not constructible at the commit points (§3.2), so this
// implementation satisfies LAT_hb but not LAT_hb^abs — the checkers
// demonstrate exactly that split (experiment F2).
//
// Layout: a bounded array of slots plus a back counter. An enqueue
// fetch-and-adds back (release, so the counter chain carries the
// enqueuer's observations) and release-writes its value into the obtained
// slot (the commit point). A dequeue acquire-reads back, then scans the
// slots with atomic exchanges (which read the coherence-latest value);
// finding a value commits a successful dequeue, an exhausted scan commits
// an empty dequeue. Event-ID cells are relaxed atomics: the acquire of the
// slot write guarantees the matching dequeue reads the real ID.
type HWQueue struct {
	back  view.Loc
	items []view.Loc
	eids  []view.Loc
	rec   *core.Recorder

	slotMode memory.Mode // Rel; buggy variant Rlx
	scanMode memory.Mode // Acq; buggy variant Rlx
	faaMode  memory.Mode // Rel; buggy variant Rlx
}

// NewHW allocates a Herlihy–Wing queue with the given slot capacity and
// the paper's access modes. Workloads must bound total enqueues by cap.
func NewHW(th *machine.Thread, name string, cap int) *HWQueue {
	return newHW(th, name, cap, memory.Rel, memory.Acq, memory.Rel)
}

// NewHWBuggyRelaxedSlot is the ablation variant whose slot write is
// relaxed instead of release: the enqueue's commit no longer publishes the
// enqueuer's observations, so the matched pair loses its lhb edge and view
// transfer (SO-LHB/SO-VIEW violations) and the dequeue may read a stale
// event ID (QUEUE-MATCHED violation).
func NewHWBuggyRelaxedSlot(th *machine.Thread, name string, cap int) *HWQueue {
	return newHW(th, name, cap, memory.Rlx, memory.Acq, memory.Rel)
}

// NewHWBuggyRelaxedScan is the ablation variant whose dequeue side is
// fully relaxed (back read and slot exchanges): the dequeuer no longer
// acquires the enqueue it consumes.
func NewHWBuggyRelaxedScan(th *machine.Thread, name string, cap int) *HWQueue {
	return newHW(th, name, cap, memory.Rel, memory.Rlx, memory.Rlx)
}

func newHW(th *machine.Thread, name string, cap int, slotMode, scanMode, faaMode memory.Mode) *HWQueue {
	q := &HWQueue{
		rec:      core.NewRecorder(name),
		back:     th.Alloc(name+".back", 0),
		slotMode: slotMode,
		scanMode: scanMode,
		faaMode:  faaMode,
	}
	q.items = make([]view.Loc, cap)
	q.eids = make([]view.Loc, cap)
	for i := 0; i < cap; i++ {
		q.items[i] = th.Alloc(name+".item", 0)
		q.eids[i] = th.Alloc(name+".eid", -1)
	}
	return q
}

// Recorder implements Queue.
func (q *HWQueue) Recorder() *core.Recorder { return q.rec }

// Enqueue implements Queue. Fails the execution if capacity is exceeded
// (workloads must size the queue).
//
//compass:loctrack-top slot selected by a memory-held ticket counter
func (q *HWQueue) Enqueue(th *machine.Thread, v int64) {
	if v <= 0 {
		th.Failf("hwqueue: values must be positive, got %d", v)
	}
	id := q.rec.Begin(th, core.Enq, v)
	i := th.FetchAdd(q.back, 1, memory.Rlx, q.faaMode)
	if int(i) >= len(q.items) {
		th.Failf("hwqueue: capacity %d exceeded", len(q.items))
	}
	th.Write(q.eids[i], int64(id), memory.Rlx)
	q.rec.Arm(th, id)
	th.Write(q.items[i], v, q.slotMode) // commit point: the slot write
	q.rec.Commit(th, id)
}

// TryDequeue implements Queue: one scan pass over the announced range;
// empty-handed completion commits an empty dequeue.
//
// The empty dequeue's commit views are snapshotted at the back read: the
// scan's slot exchanges acquire clocks from recycled empty-slot messages
// (which carry the clocks of the dequeues that emptied them), and an empty
// dequeue must not be charged with those later observations — its
// knowledge at the moment it decided the observable range is what
// QUEUE-EMPDEQ constrains. This mirrors the paper's remark that the
// Herlihy-Wing commit points are subtle (§3.2).
//
//compass:loctrack-top slot selected by a memory-held ticket counter
func (q *HWQueue) TryDequeue(th *machine.Thread) (int64, bool) {
	rng := th.Read(q.back, q.scanMode)
	empID := q.rec.Begin(th, core.EmpDeq, 0) // snapshot at the back read
	if int(rng) > len(q.items) {
		rng = int64(len(q.items))
	}
	for i := int64(0); i < rng; i++ {
		x := th.Exchange(q.items[i], 0, q.scanMode, memory.Rlx)
		if x != 0 {
			d := q.rec.CommitNew(th, core.Deq, x) // commit point: the exchange
			eid := th.Read(q.eids[i], memory.Rlx)
			if eid >= 0 {
				q.rec.AddSo(view.EventID(eid), d)
			}
			return x, true
		}
	}
	q.rec.CommitStale(th, empID) // commit now, with the back-read snapshot
	return 0, false
}
