// Command spsc reproduces the single-producer single-consumer client of
// §3.2: the producer enqueues the contents of an array in order, the
// consumer dequeues them into its own array, and FIFO requires the two
// arrays to be equal at the end. The client-level property is checked on
// every execution alongside the queue's LAT_hb consistency conditions.
package main

import (
	"flag"
	"fmt"
	"os"

	"compass"
)

func main() {
	impl := flag.String("impl", "ms", "queue implementation: ms, hw, sc")
	n := flag.Int("len", 6, "array length")
	execs := flag.Int("n", 1000, "number of random executions")
	flag.Parse()

	var factory compass.QueueFactory
	switch *impl {
	case "ms":
		factory = func(th *compass.Thread) compass.Queue { return compass.NewMSQueue(th, "q") }
	case "hw":
		factory = func(th *compass.Thread) compass.Queue { return compass.NewHWQueue(th, "q", *n+4) }
	case "sc":
		factory = func(th *compass.Thread) compass.Queue { return compass.NewSCQueue(th, "q", *n+4) }
	default:
		fmt.Fprintf(os.Stderr, "unknown -impl %q\n", *impl)
		os.Exit(2)
	}

	rep := compass.RunChecked(fmt.Sprintf("SPSC/%s", *impl),
		compass.SPSCClient(factory, compass.LevelHB, *n),
		compass.CheckOptions{Executions: *execs, StaleBias: 0.5})
	fmt.Println(rep)
	if !rep.Passed() {
		os.Exit(1)
	}
	fmt.Printf("\nFIFO transfer of %d elements verified on every explored execution.\n", *n)
}
