package litmus

import (
	"encoding/json"
	"fmt"
	"testing"

	"compass/internal/check"
)

// findTest pulls one suite test by name.
func findTest(t *testing.T, name string) Test {
	t.Helper()
	for _, tt := range Suite() {
		if tt.Name == name {
			return tt
		}
	}
	t.Fatalf("no litmus test %q in suite", name)
	return Test{}
}

// TestJobStateResumeIdentical proves the litmus checkpoint invariant: a
// job paused every few runs, serialized to JSON (the exact bytes compassd
// checkpoints), decoded, and resumed on a rotating worker count produces
// a Result byte-identical to an uninterrupted Run — verdict, run count,
// and full outcome histogram — in every POR mode.
func TestJobStateResumeIdentical(t *testing.T) {
	tt := findTest(t, "SB")
	for _, por := range []check.PORMode{check.POROff, check.PORSleep, check.PORSource} {
		t.Run(fmt.Sprint(por), func(t *testing.T) {
			want := Run(tt, 0, WithPORMode(por), WithWorkers(1))
			if !want.Complete {
				t.Fatalf("baseline incomplete: %s", want)
			}

			s := NewJob()
			workers := []int{1, 4, 2}
			segments := 0
			for !s.Done {
				s.RunSegment(tt, 0, 4, WithPORMode(por), WithWorkers(workers[segments%len(workers)]))
				segments++
				if s.Done {
					break
				}
				// Model a process death: the state survives only as the
				// checkpoint bytes.
				data, err := json.Marshal(s)
				if err != nil {
					t.Fatalf("marshal job state: %v", err)
				}
				s = &JobState{}
				if err := json.Unmarshal(data, s); err != nil {
					t.Fatalf("unmarshal job state: %v", err)
				}
			}
			if segments < 2 {
				t.Fatalf("job finished in %d segment(s); want an actual pause", segments)
			}
			got := s.Finish(tt)
			if got.String() != want.String() {
				t.Fatalf("resumed result diverged after %d segments:\nuninterrupted:\n%s\nresumed:\n%s",
					segments, want, got)
			}
		})
	}
}

// TestJobStateMaxRunsSpansSegments pins that maxRuns bounds the job, not
// the segment.
func TestJobStateMaxRunsSpansSegments(t *testing.T) {
	tt := findTest(t, "SB")
	s := NewJob()
	for !s.Done {
		s.RunSegment(tt, 9, 4, WithWorkers(1))
	}
	if s.Complete {
		t.Fatal("maxRuns 9 unexpectedly completed the tree")
	}
	if s.Runs != 9 {
		t.Fatalf("job ran %d executions across segments; maxRuns is 9", s.Runs)
	}
}
