package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one event in the Chrome trace_event format (the JSON
// understood by chrome://tracing and Perfetto). Only the fields the
// exporters use are modelled:
//
//   - Ph "X": a complete event spanning [TS, TS+Dur).
//   - Ph "i": an instant event.
//   - Ph "M": metadata (thread_name / process_name).
//
// Timestamps are in microseconds by convention; the machine exporter
// uses the deterministic machine-step index instead of wall clock so a
// replayed schedule exports byte-identical traces (golden-testable).
type TraceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   int64                  `json:"ts"`
	Dur  int64                  `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace_event container (JSON Object
// Format).
type ChromeTrace struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// NewChromeTrace returns an empty trace container.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
}

// Append adds events to the trace.
func (t *ChromeTrace) Append(events ...TraceEvent) {
	t.TraceEvents = append(t.TraceEvents, events...)
}

// ProcessName returns a metadata event naming a pid.
func ProcessName(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]interface{}{"name": name}}
}

// ThreadName returns a metadata event naming a tid within a pid.
func ThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]interface{}{"name": name}}
}

// WriteJSON writes the trace as indented JSON (encoding/json sorts map
// keys, so the output is deterministic for deterministic inputs).
func (t *ChromeTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// validTracePhases are the event phases the exporters emit.
var validTracePhases = map[string]bool{"X": true, "i": true, "M": true}

// ValidateChromeTraceJSON checks that data is a well-formed trace_event
// file as emitted by WriteJSON: parseable, known phases, non-negative
// timestamps, and named events. This is the validation CI runs against
// emitted trace files.
func ValidateChromeTraceJSON(data []byte) error {
	var t ChromeTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if t.TraceEvents == nil {
		return fmt.Errorf("chrome trace: missing traceEvents array")
	}
	for i, ev := range t.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("chrome trace: event %d has no name", i)
		}
		if !validTracePhases[ev.Ph] {
			return fmt.Errorf("chrome trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			return fmt.Errorf("chrome trace: event %d has negative time", i)
		}
		if ev.PID < 0 || ev.TID < 0 {
			return fmt.Errorf("chrome trace: event %d has negative pid/tid", i)
		}
	}
	return nil
}
