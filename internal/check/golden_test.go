package check_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"compass/internal/check"
	"compass/internal/machine"
	"compass/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestExhaustiveEmitsValidArtifacts is the acceptance path for the check
// harness: an exhaustive run with telemetry on must produce a snapshot
// that round-trips through the JSON schema validator, and a representative
// traced replay must export a valid — and byte-stable — Chrome trace.
func TestExhaustiveEmitsValidArtifacts(t *testing.T) {
	stats := telemetry.New()
	rep := check.Run("racy-reads", racyReads, check.Options{Mode: check.ModeExhaustive, Stats: stats})
	if !rep.Complete {
		t.Fatalf("tiny workload should be fully explored: %s", rep)
	}
	var snap bytes.Buffer
	if err := stats.WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateSnapshotJSON(snap.Bytes()); err != nil {
		t.Fatalf("snapshot does not validate: %v", err)
	}

	res, _ := check.TraceCheckedOpt(racyReads, 3, check.Options{StaleBias: check.BiasZero})
	if len(res.Events) == 0 {
		t.Fatal("traced replay recorded no step events")
	}
	tr := telemetry.NewChromeTrace()
	tr.Append(machine.ChromeTraceEvents(0, "racy-reads seed 3", res)...)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_check.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden (run with -update to regenerate):\n%s", buf.Bytes())
	}
}
