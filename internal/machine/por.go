package machine

import (
	"fmt"
	"sync"

	"compass/internal/memory"
)

// PORMode selects the partial-order reduction applied by a Runner (and,
// through ExploreOpts, by the exhaustive explorers).
type PORMode uint8

const (
	// POROff explores the full decision tree.
	POROff PORMode = iota
	// PORSleep prunes with classic sleep sets over the static
	// memory.Independent oracle: a thread whose announced next operation
	// commutes with everything executed since it was last a scheduling
	// candidate is excluded from scheduling until a statically dependent
	// operation wakes it.
	PORSleep
	// PORSource replaces the static wake oracle with source-DPOR: a
	// sleeping thread wakes only when the granted operation dynamically
	// conflicts with its pending one (memory.Conflicting — same location
	// with a write side, or a conservative fence/alloc/free), so a wake
	// is precisely an observed race whose reversal gets explored, and the
	// only backtrack points inserted are at prefixes where such a race
	// occurred. Two refinements prune further while preserving outcome
	// sets exactly:
	//
	//   - a sleeping writer (or RMW) stays asleep across reads of its
	//     location: the sibling branch that scheduled the writer first
	//     also lets the read observe every pre-write message, so reads
	//     never insert backtrack points;
	//   - a sleeping reader woken by a same-location write re-enters
	//     scheduling with a wakeup constraint (a read floor): its read
	//     enumerates only the messages appended since it went to sleep,
	//     because each stale choice yields a continuation state-identical
	//     to one of the writer-last sibling's.
	//
	// Both explorers replay the reduced tree as a pure function of the
	// decision prefix, so serial and parallel run counts stay identical.
	PORSource
)

func (m PORMode) String() string {
	switch m {
	case POROff:
		return "off"
	case PORSleep:
		return "sleep"
	case PORSource:
		return "source"
	}
	return fmt.Sprintf("por(%d)", uint8(m))
}

// ParsePORMode parses a -por flag value. "on" is accepted as an alias for
// "sleep" (the PR 5 flag was a boolean enabling sleep sets).
func ParsePORMode(s string) (PORMode, error) {
	switch s {
	case "", "off", "false":
		return POROff, nil
	case "sleep", "on", "true":
		return PORSleep, nil
	case "source":
		return PORSource, nil
	}
	return POROff, fmt.Errorf("unknown POR mode %q (want off, sleep, or source)", s)
}

// The sleep set is a 64-bit mask, so programs with more than 64 threads
// (main + workers) run unreduced. The fallback used to be silent; now it
// bumps the por_disabled_threads telemetry counter and, when a command
// installed a hook via SetPORFallbackWarn, warns once per process.
var (
	porWarnMu sync.Mutex
	porWarnFn func(threads int)
	porWarned bool
)

// SetPORFallbackWarn installs a hook invoked at most once per process
// when a Runner requested POR but had to disable it because the program's
// thread count exceeds the 64-thread sleep-mask limit. Commands use it to
// emit a one-time stderr warning; a nil hook clears it (and re-arms the
// once).
func SetPORFallbackWarn(f func(threads int)) {
	porWarnMu.Lock()
	porWarnFn = f
	porWarned = false
	porWarnMu.Unlock()
}

func porFallbackWarn(threads int) {
	porWarnMu.Lock()
	f := porWarnFn
	fire := f != nil && !porWarned
	if fire {
		porWarned = true
	}
	porWarnMu.Unlock()
	if fire {
		f(threads)
	}
}

// forceInvisible returns the index in cand of the first candidate whose
// pending operation is invisible — independent of every operation any
// other live thread can take — or -1 if there is none. An invisible
// pending operation forms a singleton persistent set (Godefroid): no
// other thread can ever perform a dependent operation before it, so
// granting it immediately with no sibling branches (and no sleeps)
// reaches exactly the states the full branching would. Two kinds
// qualify:
//
//   - AccNone (Yield): a pure scheduling point with no memory effect,
//     dependent on nothing;
//   - AccReport: dependent only on same-name reports. It is forced only
//     when no other live thread's announced pending operation is a
//     same-name report; an unannounced future same-name report is
//     covered, because forcing glues each report to its program-order
//     predecessor, and both relative orders of two such blocks are still
//     reached through the ordinary branching on the predecessors.
//   - With a static access plan installed (c.plan), a pending read,
//     write, or RMW whose site no other live thread's may-set can touch
//     conflictingly (memory.PlanOracle.MayConflict). The plan covers
//     each thread's entire future behaviour, so no dependent operation
//     can ever precede the forced step — the defining property of a
//     singleton persistent set. Unstarted workers are covered too (their
//     plans are total over their bodies); only finished threads are
//     excluded. Allocations are never forced: two allocations swap
//     location IDs, and the plan does not speak about fresh locations.
//
// The forced grant skips the strategy (candidate fan-out 1), so the
// decision tree simply loses these nodes; being a pure function of
// pending announcements, the done mask, and the (per-program constant)
// plan, it replays identically under both explorers.
func (c *controller) forceInvisible(cand []int) int {
	for i, tid := range cand {
		p := c.pending[tid]
		switch p.Kind {
		case memory.AccNone:
			return i
		case memory.AccReport:
			clash := false
			for v := range c.pending {
				if v == tid || c.doneMask&(1<<uint(v)) != 0 {
					continue
				}
				if q := c.pending[v]; q.Kind == memory.AccReport && q.Name == p.Name {
					clash = true
					break
				}
			}
			if !clash {
				return i
			}
		case memory.AccRead, memory.AccWrite, memory.AccRMW:
			if c.plan == nil {
				continue
			}
			c.stats.PlanCheck()
			clash := false
			for v := range c.pending {
				if v == tid || c.doneMask&(1<<uint(v)) != 0 {
					continue
				}
				if c.plan.MayConflict(v, p) {
					clash = true
					break
				}
			}
			if !clash {
				return i
			}
		}
	}
	return -1
}

// sourceWake decides, under PORSource, whether the granted operation op
// wakes the sleeping thread u (whose announced next operation is
// c.pending[u]). Waking is exactly the insertion of a backtrack point:
// once awake, u becomes a scheduling candidate again and the explorers
// branch on scheduling it before the operations that follow — the
// race reversal. Staying asleep is sound whenever u's pending operation,
// executed later, can be commuted backwards over op without changing the
// resulting state (see PORSource).
func (c *controller) sourceWake(u int, op memory.Access) {
	p := c.pending[u]
	if !memory.Conflicting(p, op) {
		return
	}
	if c.plan != nil {
		// The dynamic oracle is conservative about allocations and frees
		// (dependent with everything); the plan oracle refutes the
		// verdicts that are provably spurious for the two concrete
		// pending accesses (an allocation's fresh location cannot be an
		// existing one; frees commute with accesses to other locations).
		// Gated on plan presence so plan-off exploration is bit-identical.
		c.stats.PlanCheck()
		if c.plan.Refutes(p, op) {
			c.stats.PlanConflictRefuted()
			return
		}
	}
	pWrites := p.Kind == memory.AccWrite || p.Kind == memory.AccRMW
	opWrites := op.Kind == memory.AccWrite || op.Kind == memory.AccRMW
	if p.Loc == op.Loc && pWrites && op.Kind == memory.AccRead {
		// A read of the sleeping writer's location: the read cannot
		// observe the unwritten message, so (read; …; write) is
		// state-identical to the sibling (write; read-stale; …) that the
		// writer-first branch explores. No reversal needed.
		return
	}
	c.sleep &^= 1 << uint(u)
	c.wakes++
	c.stats.PORRaceReversed()
	if p.Kind == memory.AccRead && opWrites && p.Loc == op.Loc {
		// Wakeup constraint: u's read must explore only the messages this
		// write (or RMW) is about to append — the stale window was fully
		// readable when u went to sleep, so the writer-last sibling
		// already covers those continuations. The granted thread executes
		// its announced operation immediately next, so the new message's
		// timestamp is exactly maxT+1 (a failed RMW appends nothing; the
		// floored read then clamps to the latest message).
		c.floors[u] = c.mem.MaxTime(op.Loc) + 1
	}
}
