// Package tallysite is the golden corpus for the tallysite analyzer.
package tallysite

import "compass/internal/telemetry"

func unaccounted(s *telemetry.Stats, status uint8, steps int) {
	s.ExecDone(status, steps) // want `telemetry ExecDone outside a //compass:accounting function`
}

func rawCounter(c *telemetry.Counter) {
	c.Inc()      // want `telemetry Inc outside a //compass:accounting function`
	c.Add(3)     // want `telemetry Add outside a //compass:accounting function`
	_ = c.Load() // ok: reads are not accounting
}

func instrumentation(s *telemetry.Stats) {
	s.ReadChoice(4, 1) // ok: per-event instrumentation, not result accounting
	s.ThreadPick(0)    // ok
}

// tally is a result-accounting layer: it records exactly one ExecDone
// per accounted execution.
//
//compass:accounting
func tally(s *telemetry.Stats, status uint8, steps int) {
	s.ExecDone(status, steps) // ok: designated accounting function
}
