// Package lock provides mutual-exclusion locks on the simulated ORC11
// memory: a test-and-set spin lock (the synchronization substrate for the
// coarse-grained SC baselines) and Peterson's lock (a client of the
// machine's SC fences). The spin lock can optionally record LockAcq and
// LockRel events on a COMPASS recorder, checked by spec.CheckLock —
// making the lock itself a specified library in the paper's sense.
package lock

import (
	"compass/internal/core"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// lockedSentinel is the cell value while the lock is held. Unlocked states
// hold 0 (initial) or the releasing LockRel event's ID + 1 (so the next
// acquirer can record its so edge).
const lockedSentinel int64 = -1

// SpinLock is a test-and-set spin lock.
type SpinLock struct {
	cell view.Loc
	rec  *core.Recorder // nil unless NewRecorded
}

// New allocates an unlocked spin lock (no event recording).
func New(th *machine.Thread, name string) *SpinLock {
	return &SpinLock{cell: th.Alloc(name, 0)}
}

// NewRecorded allocates a spin lock that records LockAcq/LockRel events,
// for checking against spec.CheckLock.
func NewRecorded(th *machine.Thread, name string) *SpinLock {
	return &SpinLock{cell: th.Alloc(name, 0), rec: core.NewRecorder(name)}
}

// Recorder exposes the lock's event recorder (nil for New).
func (l *SpinLock) Recorder() *core.Recorder { return l.rec }

// acquire is the single acquisition attempt: an RMW that takes the lock
// if the cell holds any unlocked value, acquiring the previous releaser's
// clock. Returns the previous cell value.
func (l *SpinLock) acquire(th *machine.Thread) (int64, bool) {
	return th.Update(l.cell, func(old int64) (int64, bool) {
		if old == lockedSentinel {
			return 0, false
		}
		return lockedSentinel, true
	}, memory.Acq, memory.Rlx)
}

// record commits a LockAcq event matched to the releasing LockRel (if any).
func (l *SpinLock) record(th *machine.Thread, old int64) {
	if l.rec == nil {
		return
	}
	a := l.rec.CommitNew(th, core.LockAcq, 0)
	if old > 0 {
		l.rec.AddSo(view.EventID(old-1), a)
	}
}

// Lock spins until the lock is acquired. The successful RMW has acquire
// semantics, so everything released by the previous Unlock is observed.
func (l *SpinLock) Lock(th *machine.Thread) {
	for {
		if old, ok := l.acquire(th); ok {
			l.record(th, old)
			return
		}
		th.Yield()
	}
}

// TryLock attempts to acquire the lock once.
func (l *SpinLock) TryLock(th *machine.Thread) bool {
	old, ok := l.acquire(th)
	if ok {
		l.record(th, old)
	}
	return ok
}

// Unlock releases the lock, publishing the critical section's effects.
func (l *SpinLock) Unlock(th *machine.Thread) {
	if l.rec == nil {
		th.Write(l.cell, 0, memory.Rel)
		return
	}
	id := l.rec.Begin(th, core.LockRel, 0)
	l.rec.Arm(th, id)
	th.Write(l.cell, int64(id)+1, memory.Rel) // commit point: the release
	l.rec.Commit(th, id)
}
