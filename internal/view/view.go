// Package view implements the view lattices that form the backbone of the
// COMPASS framework: physical views (maps from memory locations to
// timestamps, §2.3 of the paper) and logical views (sets of library event
// identifiers, §3.1). Both are join-semilattices; threads carry a current
// view that only grows, and synchronization is modelled as transferring
// (joining) views between threads through memory messages.
package view

import (
	"fmt"
	"sort"
	"strings"
)

// Loc identifies a memory location in the simulated ORC11 machine.
// Locations are allocated densely starting from 0.
type Loc int32

// Time is a per-location timestamp: an index into the modification order
// (the totally ordered sequence of writes) of a single location. Timestamp
// 0 means "has not observed any write to this location"; the initializing
// write of every allocated location has timestamp 1.
type Time int32

// EventID identifies a library event (an enqueue, a dequeue, a push, ...).
// Because logical views flow through thread clocks that are shared by all
// library objects a thread uses, IDs must be globally unique: an ID
// composes the owning object's tag with a dense per-object local index.
// The sentinel NoEvent denotes the absence of an event.
type EventID int64

// NoEvent is the sentinel "no such event" identifier.
const NoEvent EventID = -1

// eventIDLocalBits is the width of the local-index part of an EventID.
const eventIDLocalBits = 32

// MakeEventID composes an object tag and a local event index.
func MakeEventID(obj int64, local int) EventID {
	return EventID(obj<<eventIDLocalBits | int64(local))
}

// Local returns the per-object event index.
func (e EventID) Local() int { return int(int64(e) & (1<<eventIDLocalBits - 1)) }

// Object returns the owning object's tag.
func (e EventID) Object() int64 { return int64(e) >> eventIDLocalBits }

// View is a physical view: a finite map from locations to timestamps,
// recording, for each location, the latest write the owner has observed.
//
// Because locations are allocated densely from 0, the map is represented
// as a growable dense slice indexed by location (timestamp 0 = unobserved),
// so Get/Set/JoinInto/Leq are index and loop operations and Clone is a
// single allocation — the vector-clock representation model checkers rely
// on for throughput. The zero value is the empty view (bottom) and is
// ready for use; views handed out by Clone and Join are independent.
//
// Mutating methods (Set, JoinInto) use pointer receivers because growing
// the slice reassigns it; call them on the canonical owner of a view, and
// use Clone when an independent copy is needed (a plain struct copy shares
// storage with the original until one of them grows).
//
// Views form a join-semilattice under pointwise maximum, with pointwise ≤
// as the partial order (the paper's ⊑).
type View struct {
	ts []Time // ts[l] is the timestamp for location l; trailing zeros allowed
}

// New returns an empty view (bottom of the lattice).
func New() View { return View{} }

// NewCap returns an empty view with room for locs locations pre-allocated,
// so hot paths that immediately Set/JoinInto within that span do not
// reallocate.
func NewCap(locs int) View {
	if locs <= 0 {
		return View{}
	}
	return View{ts: make([]Time, 0, locs)}
}

// Get returns the timestamp recorded for l, or 0 if l is unobserved.
func (v View) Get(l Loc) Time {
	if int(l) >= len(v.ts) {
		return 0
	}
	return v.ts[l]
}

// grow extends the dense span of v to at least n locations.
func (v *View) grow(n int) {
	if n <= len(v.ts) {
		return
	}
	if n <= cap(v.ts) {
		v.ts = v.ts[:n]
		return
	}
	c := 2 * cap(v.ts)
	if c < n {
		c = n
	}
	if c < 8 {
		c = 8
	}
	ns := make([]Time, n, c)
	copy(ns, v.ts)
	v.ts = ns
}

// Set records timestamp t for location l, keeping the maximum of the
// existing entry and t (views only grow).
func (v *View) Set(l Loc, t Time) {
	if int(l) < len(v.ts) {
		if t > v.ts[l] {
			v.ts[l] = t
		}
		return
	}
	if t == 0 {
		return
	}
	v.grow(int(l) + 1)
	v.ts[l] = t
}

// Len reports the number of locations with a nonzero entry.
func (v View) Len() int {
	n := 0
	for _, t := range v.ts {
		if t != 0 {
			n++
		}
	}
	return n
}

// Width reports the dense span of the view: one past the largest location
// it has storage for (zero entries included). Used to pre-size joins.
func (v View) Width() int { return len(v.ts) }

// Clone returns an independent copy of v.
func (v View) Clone() View {
	if len(v.ts) == 0 {
		return View{}
	}
	ts := make([]Time, len(v.ts))
	copy(ts, v.ts)
	return View{ts: ts}
}

// JoinInto joins o into v in place: v := v ⊔ o.
func (v *View) JoinInto(o View) {
	v.grow(len(o.ts))
	ts := v.ts
	for l, t := range o.ts {
		if t > ts[l] {
			ts[l] = t
		}
	}
}

// Join returns a fresh view v ⊔ o, leaving both operands untouched.
func (v View) Join(o View) View {
	n := len(v.ts)
	if len(o.ts) > n {
		n = len(o.ts)
	}
	if n == 0 {
		return View{}
	}
	ts := make([]Time, n)
	copy(ts, v.ts)
	c := View{ts: ts}
	c.JoinInto(o)
	return c
}

// Leq reports whether v ⊑ o, i.e. pointwise v(l) ≤ o(l).
func (v View) Leq(o View) bool {
	ts, ots := v.ts, o.ts
	n := len(ts)
	if len(ots) < n {
		n = len(ots)
	}
	for l := 0; l < n; l++ {
		if ts[l] > ots[l] {
			return false
		}
	}
	for l := n; l < len(ts); l++ {
		if ts[l] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o record exactly the same observations.
func (v View) Equal(o View) bool { return v.Leq(o) && o.Leq(v) }

// String renders the view as {l0@t0, l1@t1, ...} in location order.
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for l, t := range v.ts {
		if t == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "l%d@%d", l, t)
	}
	b.WriteByte('}')
	return b.String()
}

// LogView is a logical view: a finite set of library event identifiers.
// An event e being in the logical view of an event d means e happens-before
// d in the library's local happens-before relation (lhb, §3.1). Logical
// views ride on physical views: they are attached to memory messages and
// joined on acquire reads exactly like physical views.
//
// The zero value is the empty logical view, ready for use; the backing set
// is allocated lazily on the first Add/JoinInto, so the (very common)
// empty logical views carried by memory messages cost nothing. As with
// View, mutating methods use pointer receivers; use Clone for independent
// copies.
//
// LogViews form a join-semilattice under set union, ordered by inclusion.
type LogView struct {
	m map[EventID]struct{}
}

// NewLog returns an empty logical view.
func NewLog() LogView { return LogView{} }

// Has reports whether event e is in the logical view.
func (lv LogView) Has(e EventID) bool {
	_, ok := lv.m[e]
	return ok
}

// Add inserts event e into the logical view.
func (lv *LogView) Add(e EventID) {
	if lv.m == nil {
		lv.m = make(map[EventID]struct{}, 4)
	}
	lv.m[e] = struct{}{}
}

// Remove deletes event e from the logical view (used to disarm an event
// whose publishing instruction failed and has therefore leaked nowhere).
func (lv LogView) Remove(e EventID) { delete(lv.m, e) }

// Len reports the number of events in the logical view.
func (lv LogView) Len() int { return len(lv.m) }

// Clone returns an independent copy of lv. Iteration order is
// unobservable: it only populates a set.
//
//compass:orderinsensitive
func (lv LogView) Clone() LogView {
	if len(lv.m) == 0 {
		return LogView{}
	}
	c := LogView{m: make(map[EventID]struct{}, len(lv.m))}
	for e := range lv.m {
		c.m[e] = struct{}{}
	}
	return c
}

// JoinInto unions o into lv in place. Iteration order is unobservable:
// set union is commutative.
//
//compass:orderinsensitive
func (lv *LogView) JoinInto(o LogView) {
	if len(o.m) == 0 {
		return
	}
	if lv.m == nil {
		lv.m = make(map[EventID]struct{}, len(o.m))
	}
	for e := range o.m {
		lv.m[e] = struct{}{}
	}
}

// Join returns a fresh logical view lv ∪ o.
func (lv LogView) Join(o LogView) LogView {
	c := lv.Clone()
	c.JoinInto(o)
	return c
}

// Subset reports whether lv ⊆ o. Iteration order is unobservable: the
// conjunction of membership tests is order-independent.
//
//compass:orderinsensitive
func (lv LogView) Subset(o LogView) bool {
	if len(lv.m) > len(o.m) {
		return false
	}
	for e := range lv.m {
		if !o.Has(e) {
			return false
		}
	}
	return true
}

// Equal reports whether lv and o contain exactly the same events.
func (lv LogView) Equal(o LogView) bool { return lv.Subset(o) && o.Subset(lv) }

// Events returns the member event IDs in ascending order. Iteration
// order is unobservable: the collected keys are sorted before return.
//
//compass:orderinsensitive
func (lv LogView) Events() []EventID {
	es := make([]EventID, 0, len(lv.m))
	for e := range lv.m {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	return es
}

// String renders the logical view as {o1:e0, o2:e3, ...} in event order,
// where o is the owning object's tag and e the per-object event index.
func (lv LogView) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range lv.Events() {
		if i > 0 {
			b.WriteString(", ")
		}
		if e.Object() != 0 {
			fmt.Fprintf(&b, "o%d:e%d", e.Object(), e.Local())
		} else {
			fmt.Fprintf(&b, "e%d", e.Local())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Clock bundles a physical view with a logical view. Every memory message
// carries a clock, and every thread carries clocks (current, acquire,
// per-location release, release-fence); synchronization transfers both
// components at once. This realizes the paper's observation that "logical
// views ride on physical views": the logical view of a library operation is
// propagated through exactly the same release/acquire channels as the
// physical view.
//
// The zero value is the bottom clock, ready for use.
type Clock struct {
	V View
	L LogView
}

// NewClock returns an empty clock (bottom of the product lattice).
func NewClock() Clock { return Clock{} }

// NewClockCap returns an empty clock whose physical view has room for locs
// locations pre-allocated (see NewCap).
func NewClockCap(locs int) Clock { return Clock{V: NewCap(locs)} }

// Clone returns an independent copy of c.
func (c Clock) Clone() Clock { return Clock{V: c.V.Clone(), L: c.L.Clone()} }

// JoinInto joins o into c in place.
func (c *Clock) JoinInto(o Clock) {
	c.V.JoinInto(o.V)
	c.L.JoinInto(o.L)
}

// Join returns a fresh clock c ⊔ o.
func (c Clock) Join(o Clock) Clock {
	n := c.Clone()
	n.JoinInto(o)
	return n
}

// Leq reports whether c ⊑ o in the product order.
func (c Clock) Leq(o Clock) bool { return c.V.Leq(o.V) && c.L.Subset(o.L) }

// String renders the clock as V;L.
func (c Clock) String() string { return c.V.String() + ";" + c.L.String() }
