package detnondet_test

import (
	"testing"

	"compass/internal/analyzers/detnondet"
	"compass/internal/analyzers/lint/linttest"
)

// TestGolden diffs the analyzer against its testdata corpus: every
// `// want` line must produce a matching diagnostic and nothing else
// may be reported.
func TestGolden(t *testing.T) {
	linttest.Run(t, detnondet.Analyzer, "../testdata/detnondet")
}
