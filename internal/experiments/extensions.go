package experiments

import (
	"fmt"

	"compass/internal/check"
	"compass/internal/core"
	"compass/internal/deque"
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/queue"
	"compass/internal/spec"
	"compass/internal/stack"
	"compass/internal/view"
)

// F1bSpecStrength is the executable rendering of the paper's §1.1
// motivation: the behaviour the Fig. 1 client must exclude — an empty
// dequeue that happens-after two enqueues of which at most one was
// consumed — is *consistent* under the Cosmo-style LAT_so^abs specs
// (which expose only matched-pair synchronization), but inconsistent
// under the LAT_hb specs (QUEUE-EMPDEQ). A Cosmo client therefore cannot
// rule it out, while a COMPASS client can.
func F1bSpecStrength(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## F1b — §1.1 spec strength: why Cosmo cannot verify Fig. 1\n\n")
	b := core.NewGraphBuilder("q")
	e1 := b.Add(core.Enq, 41, 0)
	e2 := b.Add(core.Enq, 42, 0, e1)
	d := b.Add(core.Deq, 41, 0, e1)
	b.So(e1, d)
	b.Add(core.EmpDeq, 0, 0, e1, e2) // the right thread's empty dequeue
	g := b.Graph()

	soAbs := spec.CheckQueueSoAbs(g)
	hb := spec.CheckQueue(g, spec.LevelHB)
	cfg.printf("behaviour: Enq(41) → Enq(42) → Deq(41); Deq(ε) with both enqueues in its logical view\n\n")
	cfg.printf("| spec style | verdict on the bad behaviour |\n|---|---|\n")
	cfg.printf("| LAT_so^abs (Cosmo, §2.3) | consistent (%d violations) — cannot be excluded |\n", len(soAbs.Violations))
	first := "—"
	if len(hb.Violations) > 0 {
		first = hb.Violations[0].String()
	}
	cfg.printf("| LAT_hb (COMPASS, §3.1) | inconsistent: %s |\n", first)
	ok := soAbs.OK() && !hb.OK()
	return Summary{Name: "F1b spec strength", OK: ok,
		Detail: "Fig. 1's bad behaviour is LAT_so^abs-consistent but violates QUEUE-EMPDEQ"}
}

// X1Exhaustive runs bounded *proofs*: exhaustive exploration of every
// interleaving and read choice for small library instances, checking each
// execution — the closest executable analogue of the paper's theorems.
func X1Exhaustive(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## X1 — exhaustive (bounded-proof) library verification\n\n")
	cfg.printf("| instance | executions | complete | verdict |\n|---|---:|---|---|\n")
	ok := true
	rows := []struct {
		name  string
		build func() check.Checked
		// expectPass: a complete pass is required; otherwise a violation
		// must be found somewhere in the space.
		expectPass bool
	}{
		{"MS queue 1×1 enq, 1×1 deq @ abs", check.QueueMixed(func(th *machine.Thread) queue.Queue {
			return queue.NewMS(th, "q")
		}, spec.LevelAbsHB, 1, 1, 1, 1), true},
		{"MS queue 1×2 enq, 1×2 deq @ abs", check.QueueMixed(func(th *machine.Thread) queue.Queue {
			return queue.NewMS(th, "q")
		}, spec.LevelAbsHB, 1, 2, 1, 2), true},
		{"HW queue 2×1 enq, 1×2 deq @ hb", check.QueueMixed(func(th *machine.Thread) queue.Queue {
			return queue.NewHW(th, "q", 8)
		}, spec.LevelHB, 2, 1, 1, 2), true},
		{"HW queue 2×1 enq, 1×2 deq @ abs", check.QueueMixed(func(th *machine.Thread) queue.Queue {
			return queue.NewHW(th, "q", 8)
		}, spec.LevelAbsHB, 2, 1, 1, 2), false},
		{"Treiber 1×2 push, 1×2 pop @ hist", check.StackMixed(func(th *machine.Thread) stack.Stack {
			return stack.NewTreiber(th, "s")
		}, spec.LevelHist, 1, 2, 1, 2), true},
		{"Chase-Lev 2 push/1 take, 1 thief @ hb", check.DequeWorkStealing(func(th *machine.Thread) *deque.Deque {
			return deque.New(th, "wsq", 8)
		}, spec.LevelHB, 1, 1, 1), true},
	}
	for _, r := range rows {
		rep := check.Run(r.name, r.build, check.Options{Mode: check.ModeExhaustive, MaxRuns: 500000, Budget: 3000})
		verdict := "PASS (proof for the instance)"
		good := rep.Passed() && rep.Complete
		if !r.expectPass {
			verdict = "violation found (expected)"
			good = !rep.Passed()
		} else if !rep.Complete {
			verdict = "INCOMPLETE"
			good = false
		} else if !rep.Passed() {
			verdict = "FAIL"
		}
		if !good {
			ok = false
		}
		cfg.printf("| %s | %d | %v | %s |\n", r.name, rep.Executions, rep.Complete, verdict)
	}
	return Summary{Name: "X1 exhaustive verification", OK: ok,
		Detail: "bounded instances proved exhaustively; HW abs-violation found exhaustively"}
}

// M1RingQueue places the bounded MPMC ring (the Cosmo-lineage bounded
// queue of Mével and Jourdan [53]) in the spec hierarchy: it satisfies the
// graph conditions except QUEUE-EMPDEQ (a dequeuer can observe a claimed
// but unpublished slot), and like the Herlihy-Wing queue its abstract
// state is not constructible at commit points under multiple producers.
func M1RingQueue(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## M1 — bounded MPMC ring (Cosmo's bounded-queue lineage)\n\n")
	ok := true
	ringF := func(th *machine.Thread) queue.Queue { return queue.NewRing(th, "ring", 64) }
	cfg.printf("| check | executions | verdict |\n|---|---:|---|\n")

	weak := func() check.Checked {
		var q queue.Queue
		c := check.QueueMixed(func(th *machine.Thread) queue.Queue {
			q = ringF(th)
			return q
		}, spec.LevelHB, 2, 3, 2, 4)()
		c.Check = func() ([]spec.Violation, int) {
			return check.Collect(spec.CheckQueueWeakEmpty(q.Recorder().Graph(), spec.LevelHB))
		}
		return c
	}
	w := check.Run("ring-weak", weak, cfg.opts())
	expectPass(&ok, w)
	cfg.printf("| weak-empty LAT_hb spec (2 producers) | %d | %s |\n", w.Executions, cell(w))

	single := check.Run("ring-1p", check.QueueMixed(ringF, spec.LevelHB, 1, 4, 2, 4), cfg.opts())
	expectPass(&ok, single)
	cfg.printf("| full LAT_hb spec, single producer | %d | %s |\n", single.Executions, cell(single))

	// Two producers + external flag: EMPDEQ becomes observable and fails.
	empdeq := func() check.Checked {
		var q queue.Queue
		var flag view.Loc
		return check.Checked{
			Prog: machine.Program{
				Name: "ring-mp-2prod",
				Setup: func(th *machine.Thread) {
					q = ringF(th)
					flag = th.Alloc("flag", 0)
				},
				Workers: []func(*machine.Thread){
					func(th *machine.Thread) { q.Enqueue(th, 1001) },
					func(th *machine.Thread) {
						q.Enqueue(th, 2001)
						th.Write(flag, 1, memory.Rel)
					},
					func(th *machine.Thread) {
						for th.Read(flag, memory.Acq) == 0 {
							th.Yield()
						}
						q.TryDequeue(th)
					},
				},
			},
			Check: func() ([]spec.Violation, int) {
				return check.Collect(spec.CheckQueue(q.Recorder().Graph(), spec.LevelHB))
			},
		}
	}
	mpOpts := cfg.opts()
	mpOpts.Executions = cfg.Executions * 5
	mpOpts.StaleBias = 0.6
	bad := check.Run("ring-empdeq", empdeq, mpOpts)
	expectFail(&ok, bad)
	verdict := "QUEUE-EMPDEQ violated (expected: claimed-but-unpublished hole)"
	if bad.Passed() {
		verdict = "no violation found (UNEXPECTED)"
	}
	cfg.printf("| full LAT_hb spec, 2 producers + external flag | %d | %s |\n", bad.Executions, verdict)
	return Summary{Name: "M1 MPMC ring", OK: ok,
		Detail: "ring ⊨ weak-empty LAT_hb; full EMPDEQ holds single-producer, fails multi-producer"}
}

// W1WorkStealing reproduces the §6 future-work item: the Chase-Lev
// work-stealing deque verified against a COMPASS-style spec, with the
// missing-SC-fence ablation caught by DEQUE-UNIQ.
func W1WorkStealing(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## W1 — §6 future work: Chase-Lev work-stealing deque\n\n")
	ok := true
	cfg.printf("| check | executions | verdict |\n|---|---:|---|\n")
	good := func(th *machine.Thread) *deque.Deque { return deque.New(th, "wsq", 64) }
	hb := check.Run("wsq-hb", check.DequeWorkStealing(good, spec.LevelHB, 4, 2, 3), cfg.opts())
	expectPass(&ok, hb)
	cfg.printf("| deque at LAT_hb (SC fences per Lê et al.) | %d | %s |\n", hb.Executions, cell(hb))
	hist := check.Run("wsq-hist", check.DequeWorkStealing(good, spec.LevelHist, 3, 2, 2), cfg.opts())
	expectPass(&ok, hist)
	cfg.printf("| deque at LAT_hb^hist | %d | %s |\n", hist.Executions, cell(hist))
	buggyOpts := cfg.opts()
	buggyOpts.Executions = cfg.Executions * 5
	buggyOpts.StaleBias = 0.7
	buggy := check.Run("wsq-nofence", check.DequeWorkStealing(func(th *machine.Thread) *deque.Deque {
		return deque.NewBuggyNoSCFence(th, "wsq", 64)
	}, spec.LevelHB, 4, 2, 3), buggyOpts)
	expectFail(&ok, buggy)
	verdict := "double consumption caught (expected)"
	if buggy.Passed() {
		verdict = "no violation found (UNEXPECTED)"
	}
	cfg.printf("| ablation: no SC fences | %d | %s |\n", buggy.Executions, verdict)
	return Summary{Name: "W1 work-stealing deque", OK: ok,
		Detail: "Chase-Lev verified at LAT_hb/hist; missing SC fences caught via DEQUE-UNIQ"}
}

// W2Reclamation reproduces the paper's other §6 future-work item: safe
// memory reclamation for lock-free data structures (hazard pointers [55]).
// The hazard-protected Treiber stack must never access a freed node while
// still making reclamation progress; the eager-free ablation must be
// caught as use-after-free by the machine.
func W2Reclamation(cfg Config) Summary {
	cfg = cfg.withDefaults()
	cfg.printf("\n## W2 — §6 future work: hazard-pointer reclamation\n\n")
	ok := true
	workload := func(useHP bool) func() check.Checked {
		return func() check.Checked {
			var s *stack.TreiberHP
			workers := []func(*machine.Thread){
				func(th *machine.Thread) {
					for i := int64(1); i <= 3; i++ {
						s.Push(th, 1000+i)
					}
				},
				func(th *machine.Thread) {
					for i := int64(1); i <= 3; i++ {
						s.Push(th, 2000+i)
					}
				},
				func(th *machine.Thread) {
					for i := 0; i < 4; i++ {
						s.Pop(th)
					}
				},
				func(th *machine.Thread) {
					for i := 0; i < 4; i++ {
						s.Pop(th)
					}
				},
			}
			return check.Checked{
				Prog: machine.Program{
					Name: "treiber-hp",
					Setup: func(th *machine.Thread) {
						if useHP {
							s = stack.NewTreiberHP(th, "hps", 5)
						} else {
							s = stack.NewTreiberEagerFree(th, "hps")
						}
					},
					Workers: workers,
				},
				Check: func() ([]spec.Violation, int) {
					return check.Collect(spec.CheckStack(s.Recorder().Graph(), spec.LevelHB))
				},
			}
		}
	}
	cfg.printf("| check | executions | verdict |\n|---|---:|---|\n")
	safe := check.Run("hp-safe", workload(true), cfg.opts())
	expectPass(&ok, safe)
	cfg.printf("| hazard-protected Treiber: no UAF, spec holds | %d | %s |\n", safe.Executions, cell(safe))

	// Reclamation progress.
	freed, popped := 0, 0
	for seed := int64(1); seed <= int64(cfg.Executions); seed++ {
		var s *stack.TreiberHP
		prog := machine.Program{
			Setup: func(th *machine.Thread) { s = stack.NewTreiberHP(th, "hps", 4) },
			Workers: []func(*machine.Thread){
				func(th *machine.Thread) {
					for i := int64(1); i <= 3; i++ {
						s.Push(th, i)
					}
				},
				func(th *machine.Thread) {
					for i := 0; i < 4; i++ {
						if _, okp := s.Pop(th); okp {
							popped++
						}
					}
				},
			},
		}
		r := check.Options{}.Runner(false).Run(prog, machine.NewRandomBiased(seed, 0.5))
		if r.Status != machine.OK {
			ok = false
			continue
		}
		freed += s.FreedNodes()
	}
	if freed == 0 {
		ok = false
	}
	cfg.printf("| reclamation progress | %d | %d/%d popped nodes freed |\n", cfg.Executions, freed, popped)

	eagerOpts := cfg.opts()
	eagerOpts.Executions = cfg.Executions * 5
	eagerOpts.StaleBias = 0.6
	eager := check.Run("hp-eager", workload(false), eagerOpts)
	expectFail(&ok, eager)
	verdict := "use-after-free caught (expected)"
	if eager.Passed() {
		verdict = "no UAF found (UNEXPECTED)"
	}
	cfg.printf("| ablation: eager free, no protection | %d | %s |\n", eager.Executions, verdict)
	return Summary{Name: "W2 hazard-pointer reclamation", OK: ok,
		Detail: fmt.Sprintf("protected stack UAF-free with %d nodes reclaimed; eager free caught", freed)}
}
