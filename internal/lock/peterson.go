package lock

import (
	"compass/internal/machine"
	"compass/internal/memory"
	"compass/internal/view"
)

// Peterson is Peterson's two-thread mutual-exclusion lock, implemented
// with relaxed accesses plus SC fences — the classic algorithm that is
// broken under plain release/acquire (its entry protocol is a
// store-buffering shape) and needs the global fence order. It serves as a
// second client of the machine's SC fences next to the Chase-Lev deque.
type Peterson struct {
	flag [2]view.Loc
	turn view.Loc
	// scFence disables the fences in the buggy variant.
	scFence bool
}

// NewPeterson allocates a Peterson lock for threads 0 and 1.
func NewPeterson(th *machine.Thread, name string) *Peterson {
	return newPeterson(th, name, true)
}

// NewPetersonBuggyNoFence is the ablation variant with a fully relaxed
// entry protocol (relaxed turn exchange, no SC fence): both threads can
// read each other's flag stale and enter the critical section
// simultaneously.
func NewPetersonBuggyNoFence(th *machine.Thread, name string) *Peterson {
	return newPeterson(th, name, false)
}

func newPeterson(th *machine.Thread, name string, sc bool) *Peterson {
	return &Peterson{
		flag:    [2]view.Loc{th.Alloc(name+".flag0", 0), th.Alloc(name+".flag1", 0)},
		turn:    th.Alloc(name+".turn", 0),
		scFence: sc,
	}
}

// Lock acquires the lock as contender who (0 or 1). The turn handoff is
// an acq_rel exchange: yielding the turn must acquire the observations of
// the contender that yielded before us (otherwise our stale read of their
// flag lets both threads enter); the SC fence rules out the symmetric
// store-buffering case where both contenders read both flags stale.
//
//compass:loctrack-top flag cell selected by the contender index
func (p *Peterson) Lock(th *machine.Thread, who int) {
	other := 1 - who
	th.Write(p.flag[who], 1, memory.Rlx)
	turnMode := memory.AcqRel
	if !p.scFence {
		turnMode = memory.Rlx // ablation: no ordering at all
	}
	th.Exchange(p.turn, int64(other), turnMode, turnMode)
	if p.scFence {
		th.FenceSC()
	}
	for {
		if th.Read(p.flag[other], memory.Acq) == 0 {
			return
		}
		if th.Read(p.turn, memory.Acq) != int64(other) {
			return
		}
		th.Yield()
	}
}

// Unlock releases the lock.
//
//compass:loctrack-top flag cell selected by the contender index
func (p *Peterson) Unlock(th *machine.Thread, who int) {
	th.Write(p.flag[who], 0, memory.Rel)
}
